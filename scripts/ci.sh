#!/usr/bin/env bash
# Tier-1 gate, fully offline: no registry access, no third-party crates.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release, offline) =="
cargo build --workspace --release --offline

echo "== tests (offline) =="
cargo test -q --workspace --offline

echo "== formatting =="
cargo fmt --all --check

echo "== lints (clippy, offline) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== profiling throughput (smoke) =="
cargo bench -p cayman-bench --bench profiling --offline -- --smoke

echo "== selection schedulers (smoke: fronts bit-identical) =="
cargo bench -p cayman-bench --bench selection --offline -- --smoke

echo "ci: OK"
