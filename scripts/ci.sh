#!/usr/bin/env bash
# Tier-1 gate, fully offline: no registry access, no third-party crates.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release, offline) =="
cargo build --workspace --release --offline

echo "== tests (offline) =="
cargo test -q --workspace --offline

echo "== formatting =="
cargo fmt --all --check

echo "== lints (clippy, offline) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== profiling throughput (smoke) =="
cargo bench -p cayman-bench --bench profiling --offline -- --smoke

echo "== selection schedulers (smoke: fronts bit-identical) =="
cargo bench -p cayman-bench --bench selection --offline -- --smoke

echo "== incremental re-analysis (smoke: fronts bit-identical, warm toggles cache-hit) =="
cargo bench -p cayman-bench --bench incremental --offline -- --smoke

echo "== interface ablation (smoke: extended model strictly improves >=5 stencil kernels) =="
cargo bench -p cayman-bench --bench interfaces --offline -- --smoke

echo "== design store (smoke: fronts bit-identical cold/disk-warm, zero model evals warm) =="
cargo bench -p cayman-bench --bench store --offline -- --smoke

echo "== store server (smoke: served front bit-identical, restart serves disk-warm with zero cold evals) =="
cargo run -q --release -p cayman-store --offline --bin serversmoke

echo "== service latency (smoke: concurrent clients, merged histogram quantiles ordered) =="
cargo bench -p cayman-bench --bench service --offline -- --smoke

echo "== metrics surface (smoke: concurrent clients, exposition validates — no duplicate series, monotone buckets) =="
cargo run -q --release -p cayman-store --offline --bin metricsmoke

echo "== warm store directory serves table2 with zero cold accel evaluations =="
store_dir="$(mktemp -d /tmp/cayman-store.XXXXXX)"
CAYMAN_STORE_DIR="$store_dir" cargo run -q --release -p cayman-bench --offline --bin table2 -- --json trisolv bicg >/dev/null
warm_json="$(CAYMAN_STORE_DIR="$store_dir" cargo run -q --release -p cayman-bench --offline --bin table2 -- --json trisolv bicg)"
echo "$warm_json" | grep -q '"corrupt": 0' || { echo "error: store reported corruption" >&2; exit 1; }
# cold_stats.configs_evaluated shows up in cache disk hits: the warm run must
# have answered every model query from the store (no writes beyond run 1).
echo "$warm_json" | grep -q '"writes": 0' || { echo "error: warm table2 re-ran the model (store writes > 0)" >&2; exit 1; }
rm -rf "$store_dir"

echo "== differential fuzz (smoke: 50 seeded programs + corpus gate + O1-vs-O2 staging + incremental equivalence) =="
cargo run -q --release -p cayman-bench --offline --bin fuzz -- \
  --seed 0xCA11 --count 50 --corpus-gate --incremental --incremental-corpus 20

echo "== trace capture (smoke: one traced benchmark, validated) =="
trace="$(mktemp /tmp/cayman-trace.XXXXXX.json)"
CAYMAN_TRACE="$trace" cargo run -q --release -p cayman-bench --offline --bin table2 -- trisolv >/dev/null
cargo run -q --release -p cayman-bench --offline --bin tracecheck -- "$trace" \
  --require-prefix normalize. --require-prefix profile. --require-prefix select. \
  --require-prefix model. --require-prefix merge. --require-prefix inc.query. \
  --require-lane select.worker.
rm -f "$trace"

echo "== library crates stay silent (diagnostics go through cayman-obs) =="
if grep -rn --include='*.rs' -E '\b(println!|eprintln!|print!|eprint!)' \
    crates/ir/src crates/analysis/src crates/hls/src crates/merge/src crates/select/src crates/core/src; then
  echo "error: library crate prints directly; route diagnostics through cayman_obs::diag" >&2
  exit 1
fi

echo "ci: OK"
