//! Generative differential fuzzing of the full pipeline as a property test:
//! `testkit::program` modules must agree across every crossed configuration
//! (decoded vs reference interpreter, `-O0` vs `-O1`, static vs work-steal
//! scheduler at 2/3/8 threads, merged best solutions).
//!
//! On failure, `prop_check!` shrinks the derivation and this test prints the
//! minimal counterexample as a re-parseable text kernel — paste it into a
//! `.cir` file (or `Module::parse_text`) to replay without the generator.
//!
//! The `fuzz` binary in `cayman-bench` runs the same `diff::check_module`
//! surfaces at CI scale; this test keeps the property wired into plain
//! `cargo test` with shrinking.

use cayman_bench::diff::check_module;
use cayman_testkit::program::{arbitrary_module, arbitrary_module_with, GenOptions};
use cayman_testkit::{prop_assert, prop_check};

#[test]
fn generated_programs_agree_across_all_configurations() {
    prop_check!(cases = 32, |rng| {
        let m = arbitrary_module(rng);
        match check_module(&m) {
            Ok(_) => Ok(()),
            Err(f) => {
                prop_assert!(false, "{f}\nkernel (re-parseable):\n{}", m.to_text());
                unreachable!()
            }
        }
    });
}

#[test]
fn trapping_programs_trap_identically_on_both_engines() {
    let opts = GenOptions {
        allow_trap: true,
        ..GenOptions::default()
    };
    prop_check!(cases = 24, |rng| {
        let m = arbitrary_module_with(rng, &opts);
        match check_module(&m) {
            Ok(_) => Ok(()),
            Err(f) => {
                prop_assert!(false, "{f}\nkernel (re-parseable):\n{}", m.to_text());
                unreachable!()
            }
        }
    });
}

/// The shrinking machinery itself must hand the pipeline valid programs:
/// a shrunk replay of any seed still checks cleanly end to end.
#[test]
fn shrunk_replays_remain_valid_pipeline_inputs() {
    for seed in [3u64, 11, 29] {
        for factor in cayman_testkit::SHRINK_FACTORS {
            let m = arbitrary_module(&mut cayman_testkit::Rng::with_shrink(seed, factor));
            check_module(&m).unwrap_or_else(|e| panic!("seed {seed} factor {factor}: {e}"));
        }
    }
}
