//! Structural invariants of the wPST and the profile across every benchmark:
//! the representation-level guarantees Algorithm 1's correctness rests on.

use cayman::analysis::regions::RegionKind;
use cayman::analysis::wpst::WpstKind;
use cayman::Framework;

#[test]
fn wpst_tree_is_well_formed_for_every_benchmark() {
    for w in cayman::workloads::all() {
        let fw = Framework::from_workload(&w).expect("analyses");
        let wpst = &fw.app.wpst;
        // Root is a Root node with one child per function.
        assert!(matches!(wpst.node(wpst.root()).kind, WpstKind::Root));
        assert_eq!(
            wpst.node(wpst.root()).children.len(),
            fw.app.module.functions.len(),
            "{}",
            w.name
        );
        for id in wpst.ids() {
            let node = wpst.node(id);
            // parent/child coherence
            if let Some(p) = node.parent {
                assert!(
                    wpst.node(p).children.contains(&id),
                    "{}: broken parent link",
                    w.name
                );
            } else {
                assert_eq!(id, wpst.root(), "{}: only the root is parentless", w.name);
            }
            for &c in &node.children {
                assert_eq!(
                    wpst.node(c).parent,
                    Some(id),
                    "{}: broken child link",
                    w.name
                );
            }
        }
    }
}

#[test]
fn region_block_sets_nest_properly() {
    for w in cayman::workloads::all() {
        let fw = Framework::from_workload(&w).expect("analyses");
        let wpst = &fw.app.wpst;
        for id in wpst.ids() {
            let Some((region, func)) = wpst.region(id) else {
                continue;
            };
            // children region blocks ⊆ parent region blocks
            for &c in &wpst.node(id).children {
                let (child, cfunc) = wpst.region(c).expect("region children are regions");
                assert_eq!(func, cfunc, "{}", w.name);
                assert!(
                    child.blocks.iter().all(|b| region.blocks.contains(b)),
                    "{}: child region escapes parent",
                    w.name
                );
            }
            // bb regions have exactly one block; ctrl-flow more than one is
            // typical but single-block self-loops are permitted
            if let RegionKind::Bb(b) = region.kind {
                assert_eq!(region.blocks, vec![b], "{}", w.name);
            }
        }
    }
}

#[test]
fn profile_is_conserved_up_the_tree() {
    for w in cayman::workloads::all() {
        let fw = Framework::from_workload(&w).expect("analyses");
        let wpst = &fw.app.wpst;
        let prof = &fw.app.profile;
        // Every region's cycles are bounded by its parent region's cycles.
        for id in wpst.ids() {
            if wpst.region(id).is_none() {
                continue;
            }
            if let Some(p) = wpst.node(id).parent {
                if wpst.region(p).is_some() {
                    assert!(
                        prof.of(id).cycles <= prof.of(p).cycles,
                        "{}: child outweighs parent",
                        w.name
                    );
                }
            }
        }
        // Root accounts for the entire run.
        assert_eq!(prof.of(wpst.root()).cycles, prof.total_cycles, "{}", w.name);
        // Function cycles sum to at most the total (call instr overhead is
        // attributed to the caller's blocks, so the sum is exact).
        let func_sum: u64 = wpst
            .ids()
            .filter(|&n| matches!(wpst.node(n).kind, WpstKind::Func(_)))
            .map(|n| prof.of(n).cycles)
            .sum();
        assert_eq!(func_sum, prof.total_cycles, "{}", w.name);
    }
}

#[test]
fn every_hot_region_is_a_legal_candidate_shape() {
    for w in cayman::workloads::all() {
        let fw = Framework::from_workload(&w).expect("analyses");
        let wpst = &fw.app.wpst;
        let prof = &fw.app.profile;
        for id in wpst.ids() {
            let Some((region, _)) = wpst.region(id) else {
                continue;
            };
            // Accelerable regions must be SESE.
            if region.accelerable {
                assert!(region.sese, "{}: accelerable but not SESE", w.name);
            }
        }
        // Hot regions must exist: at least one region holds a meaningful
        // share of time. The bar is low on purpose — loops-all-mid-10k-sp
        // distributes its heat over a dozen small loops by design.
        let hot = wpst
            .ids()
            .filter(|&n| wpst.region(n).is_some())
            .any(|n| prof.share(n) > 0.04);
        assert!(hot, "{}: no hotspot region found", w.name);
    }
}
