//! Cross-crate end-to-end invariants: every benchmark flows through
//! profiling → analysis → selection → merging and the results satisfy the
//! structural guarantees the paper's method relies on.

use cayman::{Framework, SelectOptions, CVA6_TILE_AREA};

/// A cheap subset used for the heavier checks (the full 28 run in
/// `all_benchmarks_complete_the_flow`).
const FAST: [&str; 6] = ["atax", "trisolv", "spmv", "nw", "epic", "parser-125k"];

#[test]
fn all_benchmarks_complete_the_flow() {
    for w in cayman::workloads::all() {
        let fw = Framework::from_workload(&w).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let sel = fw.select(&SelectOptions::default());
        assert!(
            !sel.pareto.is_empty(),
            "{}: selection must return at least the empty solution",
            w.name
        );
        // Pareto front is strictly increasing in both axes.
        for pair in sel.pareto.windows(2) {
            assert!(pair[1].area > pair[0].area, "{}: area order", w.name);
            assert!(
                pair[1].saved_seconds > pair[0].saved_seconds,
                "{}: saving order",
                w.name
            );
        }
        // Every benchmark must be accelerable at all (speedup > 1 at 65%).
        let rep = fw.report(&sel, 0.65);
        assert!(rep.speedup > 1.0, "{}: no acceleration found", w.name);
    }
}

#[test]
fn budget_constraints_are_respected() {
    for name in FAST {
        let w = cayman::workloads::by_name(name).expect("exists");
        let fw = Framework::from_workload(&w).expect("analyses");
        let sel = fw.select(&SelectOptions::default());
        for budget in [0.05, 0.25, 0.65, 1.0] {
            let sol = sel.best_under(budget * CVA6_TILE_AREA);
            assert!(
                sol.area <= budget * CVA6_TILE_AREA,
                "{name}: {budget} budget violated"
            );
        }
        // monotone in budget
        let s25 = fw.report(&sel, 0.25).speedup;
        let s65 = fw.report(&sel, 0.65).speedup;
        assert!(s65 >= s25, "{name}: more area must not hurt");
    }
}

#[test]
fn selected_kernels_never_overlap() {
    for name in FAST {
        let w = cayman::workloads::by_name(name).expect("exists");
        let fw = Framework::from_workload(&w).expect("analyses");
        let sel = fw.select(&SelectOptions::default());
        for sol in &sel.pareto {
            for i in 0..sol.kernels.len() {
                for j in (i + 1)..sol.kernels.len() {
                    let a = &sol.kernels[i].design;
                    let b = &sol.kernels[j].design;
                    if a.func == b.func {
                        assert!(
                            a.blocks.iter().all(|x| !b.blocks.contains(x)),
                            "{name}: overlapping kernels in one solution"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn cayman_dominates_both_baselines() {
    for name in FAST {
        let w = cayman::workloads::by_name(name).expect("exists");
        let fw = Framework::from_workload(&w).expect("analyses");
        let opts = SelectOptions::default();
        let budget = 0.65 * CVA6_TILE_AREA;
        let sp_c = fw.speedup(fw.select(&opts).best_under(budget));
        let sp_n = fw.speedup(fw.select_novia(&opts).best_under(budget));
        let sp_q = fw.speedup(fw.select_qscores(&opts).best_under(budget));
        assert!(sp_c >= sp_n, "{name}: cayman {sp_c} < novia {sp_n}");
        assert!(sp_c >= sp_q, "{name}: cayman {sp_c} < qscores {sp_q}");
        assert!(
            sp_n >= 1.0 && sp_q >= 1.0,
            "{name}: baselines never regress"
        );
    }
}

#[test]
fn merging_savings_are_bounded_and_consistent() {
    for name in FAST {
        let w = cayman::workloads::by_name(name).expect("exists");
        let fw = Framework::from_workload(&w).expect("analyses");
        let sel = fw.select(&SelectOptions::default());
        for sol in &sel.pareto {
            let m = fw.merge(sol);
            let frac = m.saving_fraction();
            assert!((0.0..1.0).contains(&frac), "{name}: saving {frac}");
            assert!(m.area_after <= m.area_before + 1e-9, "{name}");
            // merged groups only contain valid kernel indices, each once
            for r in &m.reusable {
                assert!(r.kernels.len() >= 2);
                for &k in &r.kernels {
                    assert!(k < sol.kernels.len(), "{name}: bogus kernel index");
                }
            }
        }
    }
}

#[test]
fn determinism_across_runs() {
    let w = cayman::workloads::by_name("bicg").expect("exists");
    let fw1 = Framework::from_workload(&w).expect("analyses");
    let fw2 = Framework::from_workload(&w).expect("analyses");
    assert_eq!(fw1.app.total_cycles(), fw2.app.total_cycles());
    let s1 = fw1.select(&SelectOptions::default());
    let s2 = fw2.select(&SelectOptions::default());
    assert_eq!(s1.pareto.len(), s2.pareto.len());
    for (a, b) in s1.pareto.iter().zip(&s2.pareto) {
        assert_eq!(a.area, b.area);
        assert_eq!(a.saved_seconds, b.saved_seconds);
    }
}

/// The `-O2` staging contract, end to end, over the full 132-kernel corpus:
/// the executed module is the `-O1` body (the shadow only feeds analysis),
/// so profiles and interpreter results are bit-identical — and so are the
/// selected Pareto fronts, kernel for kernel, bit for bit. A corpus kernel
/// whose analysis shadow differs from its executed body would change its
/// content fingerprints (and may legitimately refine its front); this test
/// additionally pins that the checked-in corpus is canonical enough that
/// this never happens silently.
#[test]
fn o2_is_bit_identical_to_o1_on_the_full_corpus() {
    use cayman::AnalyseOptions;
    let mut checked = 0;
    for w in cayman::workloads::full() {
        let o1 = Framework::from_workload_with(&w, &AnalyseOptions::default())
            .unwrap_or_else(|e| panic!("{}: -O1 pipeline failed: {e}", w.name));
        let o2 = Framework::from_workload_with(&w, &AnalyseOptions::o2())
            .unwrap_or_else(|e| panic!("{}: -O2 pipeline failed: {e}", w.name));

        // Identical executed program and profile: -O2 never changes what runs.
        assert_eq!(
            o1.app.module.to_text(),
            o2.app.module.to_text(),
            "{}: -O2 executed module is not the -O1 body",
            w.name
        );
        assert_eq!(
            o1.app.profile.block_counts, o2.app.profile.block_counts,
            "{}: block counts diverge",
            w.name
        );
        assert_eq!(
            o1.app.total_cycles(),
            o2.app.total_cycles(),
            "{}: cycle totals diverge",
            w.name
        );
        let same_value = match (&o1.app.exec.return_value, &o2.app.exec.return_value) {
            (Some(cayman::ir::interp::Value::F(x)), Some(cayman::ir::interp::Value::F(y))) => {
                x.to_bits() == y.to_bits()
            }
            (x, y) => x == y,
        };
        assert!(same_value, "{}: return values diverge", w.name);

        // Bit-identical fronts, kernel for kernel.
        let s1 = o1.select(&SelectOptions::default());
        let s2 = o2.select(&SelectOptions::default());
        assert_eq!(s1.pareto.len(), s2.pareto.len(), "{}: front size", w.name);
        for (a, b) in s1.pareto.iter().zip(&s2.pareto) {
            assert_eq!(a.area.to_bits(), b.area.to_bits(), "{}: area", w.name);
            assert_eq!(
                a.saved_seconds.to_bits(),
                b.saved_seconds.to_bits(),
                "{}: savings",
                w.name
            );
            assert_eq!(a.kernels.len(), b.kernels.len(), "{}: kernel count", w.name);
            for (x, y) in a.kernels.iter().zip(&b.kernels) {
                assert_eq!(x.node, y.node, "{}: selected vertex", w.name);
                assert_eq!(x.design.blocks, y.design.blocks, "{}: blocks", w.name);
                assert_eq!(
                    x.design.interfaces, y.design.interfaces,
                    "{}: interface assignment",
                    w.name
                );
            }
        }
        checked += 1;
    }
    assert_eq!(checked, 132, "expected the full 132-kernel workload set");
}
