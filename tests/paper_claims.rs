//! Reproduction checks for the paper's §IV-B qualitative claims — the
//! "shape" of Table II and Fig. 6 rather than absolute numbers.

use cayman::{Framework, ModelOptions, SelectOptions, CVA6_TILE_AREA};

fn coupled_only_opts() -> SelectOptions {
    SelectOptions {
        model: ModelOptions::coupled_only(),
        ..Default::default()
    }
}

/// "decoupled and scratchpad interfaces are widely adopted, occupying 83%
/// and 81% on average for two budgets" — specialised interfaces must
/// dominate the mix across the suite.
#[test]
fn specialised_interfaces_dominate() {
    let mut spec = 0usize;
    let mut total = 0usize;
    for w in cayman::workloads::all() {
        let fw = Framework::from_workload(&w).expect("analyses");
        let sel = fw.select(&SelectOptions::default());
        for budget in [0.25, 0.65] {
            let rep = fw.report(&sel, budget);
            spec += rep.d + rep.s;
            total += rep.c + rep.d + rep.s;
        }
    }
    let frac = spec as f64 / total.max(1) as f64;
    assert!(
        frac > 0.5,
        "decoupled+scratchpad should dominate: {frac:.2} of {total}"
    );
}

/// "Cayman achieves superior performance ... the speedup increases when the
/// budget is 65%" — the suite-average speedup must grow with the budget.
#[test]
fn average_speedup_grows_with_budget() {
    let mut s25 = 0.0;
    let mut s65 = 0.0;
    let mut n = 0.0;
    for w in cayman::workloads::all() {
        let fw = Framework::from_workload(&w).expect("analyses");
        let sel = fw.select(&SelectOptions::default());
        s25 += fw.report(&sel, 0.25).speedup;
        s65 += fw.report(&sel, 0.65).speedup;
        n += 1.0;
    }
    assert!(
        s65 / n > 1.1 * (s25 / n),
        "65% budget should clearly beat 25%: {:.2} vs {:.2}",
        s65 / n,
        s25 / n
    );
}

/// "compared to full Cayman solutions, coupled-only ones achieve lower
/// speedup for most benchmarks. The only exception is loops-all-mid-10k-sp
/// ... loop-carried dependencies between floating-point operations
/// restrict the achievable II" — the coupled-only gap must be large on a
/// streaming benchmark and small on loops-all.
#[test]
fn coupled_only_gap_shrinks_on_fp_recurrences() {
    let gap = |name: &str| -> f64 {
        let w = cayman::workloads::by_name(name).expect("exists");
        let fw = Framework::from_workload(&w).expect("analyses");
        let budget = 0.65 * CVA6_TILE_AREA;
        let full = fw.speedup(fw.select(&SelectOptions::default()).best_under(budget));
        let coupled = fw.speedup(fw.select(&coupled_only_opts()).best_under(budget));
        full / coupled
    };
    let stream_gap = gap("jacobi-2d");
    let recurrence_gap = gap("loops-all-mid-10k-sp");
    assert!(stream_gap > 1.5, "streaming gap {stream_gap:.2}");
    assert!(
        recurrence_gap < stream_gap,
        "loops-all gap ({recurrence_gap:.2}) must be smaller than the streaming gap ({stream_gap:.2})"
    );
}

/// "the area saving percentage goes up to 74% and 70% for the 3mm benchmark,
/// which includes 3 loops with identical basic blocks" — 3mm must be a
/// merging outlier on the high side; "Cayman only saves 5% area for the
/// doitgen benchmark since [it] only includes one hotspot region" — doitgen
/// on the low side.
#[test]
fn merging_extremes_match_the_paper() {
    let saving = |name: &str| -> f64 {
        let w = cayman::workloads::by_name(name).expect("exists");
        let fw = Framework::from_workload(&w).expect("analyses");
        let sel = fw.select(&SelectOptions::default());
        fw.report(&sel, 0.25).area_saving_pct
    };
    let s3mm = saving("3mm");
    let sdoitgen = saving("doitgen");
    assert!(s3mm > 20.0, "3mm merges heavily: {s3mm:.0}%");
    assert!(
        sdoitgen < s3mm,
        "doitgen ({sdoitgen:.0}%) merges less than 3mm ({s3mm:.0}%)"
    );
}

/// Benchmarks the paper reports with *identical* 25%/65% rows (centralised
/// hotspots already fit in the small budget) must be budget-insensitive here
/// too.
#[test]
fn centralised_hotspots_are_budget_insensitive() {
    for name in ["cholesky", "lu", "trisolv", "floyd-warshall"] {
        let w = cayman::workloads::by_name(name).expect("exists");
        let fw = Framework::from_workload(&w).expect("analyses");
        let sel = fw.select(&SelectOptions::default());
        let s25 = fw.report(&sel, 0.25).speedup;
        let s65 = fw.report(&sel, 0.65).speedup;
        assert!(
            (s65 - s25) / s25 < 0.05,
            "{name}: expected flat rows, got {s25:.2} → {s65:.2}"
        );
    }
}

/// "each of which accelerates 3 distinct program regions on average" —
/// reusable accelerators must serve multiple regions.
#[test]
fn reusable_accelerators_serve_multiple_regions() {
    let mut sum = 0.0;
    let mut n = 0usize;
    for w in cayman::workloads::all() {
        let fw = Framework::from_workload(&w).expect("analyses");
        let sel = fw.select(&SelectOptions::default());
        let rep = fw.report(&sel, 0.65);
        if rep.reusable > 0 {
            sum += rep.avg_regions_per_reusable;
            n += 1;
        }
    }
    assert!(n > 5, "several benchmarks must merge at all");
    let avg = sum / n as f64;
    assert!(
        (2.0..=6.0).contains(&avg),
        "≈3 regions per reusable accelerator expected, got {avg:.1}"
    );
}

/// NOVIA solutions sit in the lower-left corner of Fig. 6: tiny area, tiny
/// speedup — its largest solution must be smaller *and* slower than
/// Cayman's.
#[test]
fn novia_sits_lower_left() {
    for name in ["3mm", "cjpeg"] {
        let w = cayman::workloads::by_name(name).expect("exists");
        let fw = Framework::from_workload(&w).expect("analyses");
        let opts = SelectOptions::default();
        let novia = fw.select_novia(&opts);
        let full = fw.select(&opts);
        let nb = novia.pareto.last().expect("front");
        let fb = full.pareto.last().expect("front");
        assert!(nb.area <= fb.area, "{name}: NOVIA area");
        assert!(fw.speedup(nb) <= fw.speedup(fb), "{name}: NOVIA speedup");
    }
}
