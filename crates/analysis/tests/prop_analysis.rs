//! Property-based tests for the analysis layer: LinExpr algebra, SCEV on
//! generated loop nests, and trip-count agreement between static analysis and
//! profiling.

use cayman_analysis::access::{static_trip_count, AccessAnalysis};
use cayman_analysis::ctx::FuncCtx;
use cayman_analysis::scev::{LinExpr, Scev};
use cayman_ir::builder::ModuleBuilder;
use cayman_ir::interp::Interp;
use cayman_ir::loops::LoopId;
use cayman_ir::{FuncId, Type};
use cayman_testkit::{prop_assert, prop_assert_eq, prop_check, Rng};

/// A random linear expression: a constant plus up to three IV terms.
fn gen_linexpr(rng: &mut Rng) -> LinExpr {
    let mut e = LinExpr::constant(rng.range_i64(-1000, 1000));
    for _ in 0..rng.range_usize(0, 4) {
        let l = LoopId(rng.range_u32(0, 5));
        let k = rng.range_i64(-50, 50);
        e = e.add(&LinExpr::iv(l, k));
    }
    e
}

/// LinExpr forms a commutative group under `add` with `scale`
/// distributing — the algebra SCEV composition relies on.
#[test]
fn linexpr_ring_axioms() {
    prop_check!(|rng| {
        let a = gen_linexpr(rng);
        let b = gen_linexpr(rng);
        let c = gen_linexpr(rng);
        let k = rng.range_i64(-20, 20);
        // commutativity and associativity
        prop_assert_eq!(a.add(&b), b.add(&a));
        prop_assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)));
        // identity and inverse
        let zero = LinExpr::constant(0);
        prop_assert_eq!(a.add(&zero), a.clone());
        prop_assert_eq!(a.sub(&a), zero.clone());
        // scaling distributes over addition
        prop_assert_eq!(a.add(&b).scale(k), a.scale(k).add(&b.scale(k)));
        // scale by zero annihilates
        prop_assert_eq!(a.scale(0), zero);
        Ok(())
    });
}

/// For arbitrary rectangular loop nests, SCEV recovers the exact per-loop
/// stride of a row-major access and the static trip counts match the loop
/// bounds.
#[test]
fn scev_strides_on_generated_nests() {
    prop_check!(|rng| {
        let n = rng.range_usize(2, 12);
        let m = rng.range_usize(2, 12);
        let stride = rng.range_i64(1, 4);
        let mut mb = ModuleBuilder::new("prop");
        // allocate generously so strided accesses stay in bounds
        let rows = n * stride as usize + 1;
        let a = mb.array("A", Type::F64, &[rows, m]);
        mb.function("main", &[], None, |fb| {
            fb.counted_loop(0, n as i64, 1, |fb, i| {
                fb.counted_loop(0, m as i64, 1, |fb, j| {
                    let s = fb.iconst(stride);
                    let si = fb.mul(i, s);
                    let v = fb.load_idx(a, &[si, j]);
                    fb.store_idx(a, &[si, j], v);
                });
            });
            fb.ret(None);
        });
        let module = mb.finish();
        module.verify().expect("verifies");
        let f = module.function(FuncId(0));
        let ctx = FuncCtx::compute(f);
        let mut scev = Scev::new(f, &ctx);
        let aa = AccessAnalysis::run(&module, f, &ctx, &mut scev);

        let outer = ctx
            .forest
            .ids()
            .find(|&l| ctx.forest.get(l).depth == 1)
            .expect("outer");
        let inner = ctx
            .forest
            .ids()
            .find(|&l| ctx.forest.get(l).depth == 2)
            .expect("inner");
        prop_assert_eq!(static_trip_count(f, &ctx, outer), Some(n as u64));
        prop_assert_eq!(static_trip_count(f, &ctx, inner), Some(m as u64));

        for acc in &aa.accesses {
            let addr = acc.addr.as_ref().expect("affine");
            // row-major: coefficient of outer IV = stride·m, inner IV = 1
            prop_assert_eq!(addr.coeff(outer), stride * m as i64);
            prop_assert_eq!(addr.coeff(inner), 1);
            prop_assert!(acc.is_stream_within(&ctx.forest.get(outer).blocks));
        }
        Ok(())
    });
}

/// The interpreter's profiled average trip count agrees with the static trip
/// count on counted loops — the two sources `trip_count` arbitrates between
/// must never disagree.
#[test]
fn static_and_profiled_trips_agree() {
    prop_check!(|rng| {
        let n = rng.range_i64(1, 30);
        let mut mb = ModuleBuilder::new("prop");
        let x = mb.array("x", Type::F64, &[30]);
        mb.function("main", &[], None, |fb| {
            fb.counted_loop(0, n, 1, |fb, i| {
                let v = fb.load_idx(x, &[i]);
                fb.store_idx(x, &[i], v);
            });
            fb.ret(None);
        });
        let module = mb.finish();
        module.verify().expect("verifies");
        let wpst = cayman_analysis::wpst::Wpst::build(&module);
        let exec = Interp::new(&module).run(&[]).expect("runs");
        let profile = cayman_analysis::profile::Profile::aggregate(&module, &wpst, &exec);
        let f = FuncId(0);
        let ctx = &wpst.func_ctxs[0];
        let l = ctx.forest.ids().next().expect("loop");
        let stat = static_trip_count(module.function(f), ctx, l).expect("static");
        let prof = profile.avg_trip(&wpst, f, l).expect("profiled");
        prop_assert_eq!(stat as f64, prof);
        Ok(())
    });
}
