//! Property-based tests for the analysis layer: LinExpr algebra, SCEV on
//! generated loop nests, and trip-count agreement between static analysis and
//! profiling.

use cayman_analysis::access::{static_trip_count, AccessAnalysis};
use cayman_analysis::ctx::FuncCtx;
use cayman_analysis::scev::{LinExpr, Scev};
use cayman_ir::builder::ModuleBuilder;
use cayman_ir::interp::Interp;
use cayman_ir::loops::LoopId;
use cayman_ir::{FuncId, Type};
use cayman_testkit::{prop_assert, prop_assert_eq, prop_check, Rng};

/// A random linear expression: a constant plus up to three IV terms.
fn gen_linexpr(rng: &mut Rng) -> LinExpr {
    let mut e = LinExpr::constant(rng.range_i64(-1000, 1000));
    for _ in 0..rng.range_usize(0, 4) {
        let l = LoopId(rng.range_u32(0, 5));
        let k = rng.range_i64(-50, 50);
        e = e.add(&LinExpr::iv(l, k));
    }
    e
}

/// LinExpr forms a commutative group under `add` with `scale`
/// distributing — the algebra SCEV composition relies on.
#[test]
fn linexpr_ring_axioms() {
    prop_check!(|rng| {
        let a = gen_linexpr(rng);
        let b = gen_linexpr(rng);
        let c = gen_linexpr(rng);
        let k = rng.range_i64(-20, 20);
        // commutativity and associativity
        prop_assert_eq!(a.add(&b), b.add(&a));
        prop_assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)));
        // identity and inverse
        let zero = LinExpr::constant(0);
        prop_assert_eq!(a.add(&zero), a.clone());
        prop_assert_eq!(a.sub(&a), zero.clone());
        // scaling distributes over addition
        prop_assert_eq!(a.add(&b).scale(k), a.scale(k).add(&b.scale(k)));
        // scale by zero annihilates
        prop_assert_eq!(a.scale(0), zero);
        Ok(())
    });
}

/// For arbitrary rectangular loop nests, SCEV recovers the exact per-loop
/// stride of a row-major access and the static trip counts match the loop
/// bounds.
#[test]
fn scev_strides_on_generated_nests() {
    prop_check!(|rng| {
        let n = rng.range_usize(2, 12);
        let m = rng.range_usize(2, 12);
        let stride = rng.range_i64(1, 4);
        let mut mb = ModuleBuilder::new("prop");
        // allocate generously so strided accesses stay in bounds
        let rows = n * stride as usize + 1;
        let a = mb.array("A", Type::F64, &[rows, m]);
        mb.function("main", &[], None, |fb| {
            fb.counted_loop(0, n as i64, 1, |fb, i| {
                fb.counted_loop(0, m as i64, 1, |fb, j| {
                    let s = fb.iconst(stride);
                    let si = fb.mul(i, s);
                    let v = fb.load_idx(a, &[si, j]);
                    fb.store_idx(a, &[si, j], v);
                });
            });
            fb.ret(None);
        });
        let module = mb.finish();
        module.verify().expect("verifies");
        let f = module.function(FuncId(0));
        let ctx = FuncCtx::compute(f);
        let mut scev = Scev::new(f, &ctx);
        let aa = AccessAnalysis::run(&module, f, &ctx, &mut scev);

        let outer = ctx
            .forest
            .ids()
            .find(|&l| ctx.forest.get(l).depth == 1)
            .expect("outer");
        let inner = ctx
            .forest
            .ids()
            .find(|&l| ctx.forest.get(l).depth == 2)
            .expect("inner");
        prop_assert_eq!(static_trip_count(f, &ctx, outer), Some(n as u64));
        prop_assert_eq!(static_trip_count(f, &ctx, inner), Some(m as u64));

        for acc in &aa.accesses {
            let addr = acc.addr.as_ref().expect("affine");
            // row-major: coefficient of outer IV = stride·m, inner IV = 1
            prop_assert_eq!(addr.coeff(outer), stride * m as i64);
            prop_assert_eq!(addr.coeff(inner), 1);
            prop_assert!(acc.is_stream_within(&ctx.forest.get(outer).blocks));
        }
        Ok(())
    });
}

/// The interpreter's profiled average trip count agrees with the static trip
/// count on counted loops — the two sources `trip_count` arbitrates between
/// must never disagree.
#[test]
fn static_and_profiled_trips_agree() {
    prop_check!(|rng| {
        let n = rng.range_i64(1, 30);
        let mut mb = ModuleBuilder::new("prop");
        let x = mb.array("x", Type::F64, &[30]);
        mb.function("main", &[], None, |fb| {
            fb.counted_loop(0, n, 1, |fb, i| {
                let v = fb.load_idx(x, &[i]);
                fb.store_idx(x, &[i], v);
            });
            fb.ret(None);
        });
        let module = mb.finish();
        module.verify().expect("verifies");
        let wpst = cayman_analysis::wpst::Wpst::build(&module);
        let exec = Interp::new(&module).run(&[]).expect("runs");
        let profile = cayman_analysis::profile::Profile::aggregate(&module, &wpst, &exec);
        let f = FuncId(0);
        let ctx = &wpst.func_ctxs[0];
        let l = ctx.forest.ids().next().expect("loop");
        let stat = static_trip_count(module.function(f), ctx, l).expect("static");
        let prof = profile.avg_trip(&wpst, f, l).expect("profiled");
        prop_assert_eq!(stat as f64, prof);
        Ok(())
    });
}

/// Bank-conflict legality against a brute-force oracle: the analyzer must
/// never call a conflicting access conflict-free, and it must not be
/// needlessly conservative either — `bank_conflict_free` is *exactly*
/// pairwise distinctness of the copies' banks under cyclic interleaving.
#[test]
fn bank_conflict_freedom_matches_brute_force() {
    use cayman_analysis::banking::{bank_conflict_free, max_conflict_free_unroll};
    prop_check!(cases = 500, |rng| {
        let stride = match rng.range_usize(0, 3) {
            0 => rng.range_i64(-8, 9),
            1 => rng.range_i64(-(1 << 20), 1 << 20),
            _ => rng.range_i64(i64::MIN / 4, i64::MAX / 4),
        };
        let banks = *rng.choose(&[1u32, 2, 3, 4, 5, 6, 8, 12, 16, 32]);
        let unroll = rng.range_u32(0, 20);
        // Oracle: compute every copy's bank in i128 (no overflow) and check
        // pairwise distinctness directly.
        let mut seen = std::collections::HashSet::new();
        let oracle = (0..unroll.max(1)).all(|c| {
            let bank = (i128::from(stride) * i128::from(c)).rem_euclid(i128::from(banks));
            seen.insert(bank)
        });
        prop_assert_eq!(bank_conflict_free(stride, banks, unroll), oracle);
        // The claimed maximum is tight: conflict-free there, conflicting
        // one past it (when one more copy exists to conflict with).
        let max = max_conflict_free_unroll(stride, banks);
        prop_assert!(bank_conflict_free(stride, banks, max));
        prop_assert!(!bank_conflict_free(stride, banks, max + 1));
        Ok(())
    });
}

/// A stencil window reported by the analyzer really covers every load: each
/// offset re-composes as `r * row_stride + c` inside the claimed rectangle,
/// and translating all addresses by a common amount never changes the
/// window shape.
#[test]
fn stencil_windows_cover_their_loads() {
    use cayman_analysis::banking::stencil_window;
    use cayman_analysis::scev::LinExpr;
    use cayman_ir::loops::LoopId;
    prop_check!(cases = 300, |rng| {
        let (row, col) = (LoopId(0), LoopId(1));
        let w = rng.range_i64(2, 64);
        let n = rng.range_usize(1, 12);
        let offs: Vec<i64> = (0..n)
            .map(|_| rng.range_i64(-2, 3) * w + rng.range_i64(-2, 3))
            .collect();
        let addrs: Vec<LinExpr> = offs
            .iter()
            .map(|&o| {
                LinExpr::iv(row, w)
                    .add(&LinExpr::iv(col, 1))
                    .add(&LinExpr::constant(o))
            })
            .collect();
        if let Some(win) = stencil_window(&addrs, row, col) {
            let base = offs.iter().copied().min().unwrap();
            prop_assert!(win.rows >= 2);
            prop_assert!(win.row_stride == w);
            for &o in &offs {
                let d = o - base;
                let (r, c) = (d.div_euclid(w), d.rem_euclid(w));
                prop_assert!(
                    r < i64::from(win.rows) && c < i64::from(win.cols),
                    "load offset {o} escapes the {}x{} window",
                    win.rows,
                    win.cols
                );
            }
            // Shape is translation-invariant.
            let shift = rng.range_i64(-100, 100);
            let shifted: Vec<LinExpr> = addrs
                .iter()
                .map(|a| a.add(&LinExpr::constant(shift)))
                .collect();
            prop_assert_eq!(stencil_window(&shifted, row, col), Some(win));
        }
        Ok(())
    });
}
