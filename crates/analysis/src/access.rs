//! Memory-access pattern analysis: *stream* classification and access
//! footprints (Fig. 2d ②③).
//!
//! For every `load`/`store`, the flat element address is expressed as a
//! [`LinExpr`] over loop iteration counters. An access is a **stream** with
//! respect to a region when its address sequence is statically computable
//! there: the expression is affine and every opaque symbol is defined
//! *outside* the region. The **footprint** is the number of distinct
//! addresses touched per region entry — the scratchpad sizing input.

use crate::ctx::FuncCtx;
use crate::profile::Profile;
use crate::scev::{LinExpr, Scev};
use crate::wpst::Wpst;
use cayman_ir::instr::Instr;
use cayman_ir::loops::LoopId;
use cayman_ir::{ArrayId, BlockId, FuncId, Function, InstrId, Module};

/// Analysis record for one memory access instruction.
#[derive(Debug, Clone)]
pub struct AccessInfo {
    /// The access instruction.
    pub instr: InstrId,
    /// Its containing block.
    pub block: BlockId,
    /// Accessed array.
    pub array: ArrayId,
    /// Whether this is a store.
    pub is_store: bool,
    /// Flat element address as a linear expression (`None` when the gep
    /// itself could not be resolved — e.g. pointer passed across calls).
    pub addr: Option<LinExpr>,
    /// Defining block of each opaque symbol appearing in `addr`, in the
    /// symbols' iteration order. Lets consumers check stream-ness without
    /// re-running SCEV.
    pub sym_defs: Vec<BlockId>,
}

impl AccessInfo {
    /// Whether the address is affine with all symbols defined outside the
    /// given block set — i.e. the access is a *stream* within that region
    /// (its address sequence is statically computable there, §III-B).
    pub fn is_stream_within(&self, region_blocks: &[BlockId]) -> bool {
        self.addr.is_some() && self.sym_defs.iter().all(|b| !region_blocks.contains(b))
    }
}

/// All memory accesses of one function, with address expressions.
#[derive(Debug, Clone)]
pub struct AccessAnalysis {
    /// One record per load/store, in instruction order.
    pub accesses: Vec<AccessInfo>,
}

impl AccessAnalysis {
    /// Analyses every memory access of `func`.
    pub fn run(module: &Module, func: &Function, ctx: &FuncCtx, scev: &mut Scev<'_>) -> Self {
        let _s = cayman_obs::span!("analyse.access");
        let mut accesses = Vec::new();
        for b in func.block_ids() {
            if !ctx.cfg.is_reachable(b) {
                continue;
            }
            for &iid in &func.block(b).instrs {
                let (ptr, is_store) = match func.instr(iid) {
                    Instr::Load { ptr, .. } => (*ptr, false),
                    Instr::Store { ptr, .. } => (*ptr, true),
                    _ => continue,
                };
                // Resolve the pointer to a gep.
                let gep = ptr.as_value().and_then(|v| match func.values[v.index()] {
                    cayman_ir::module::ValueDef::Instr(g) => match func.instr(g) {
                        Instr::Gep { array, indices } => Some((*array, indices.clone())),
                        _ => None,
                    },
                    _ => None,
                });
                let Some((array, indices)) = gep else {
                    continue;
                };
                let decl = module.array(array);
                let strides = decl.strides();
                let mut addr = Some(LinExpr::constant(0));
                for (k, idx) in indices.iter().enumerate() {
                    match (addr.take(), scev.analyse_operand(*idx)) {
                        (Some(acc), Some(e)) => {
                            addr = Some(acc.add(&e.scale(strides[k] as i64)));
                        }
                        _ => {
                            addr = None;
                            break;
                        }
                    }
                }
                let sym_defs = addr
                    .as_ref()
                    .map(|e| e.symbols.keys().map(|&s| scev.def_block_of(s)).collect())
                    .unwrap_or_default();
                accesses.push(AccessInfo {
                    instr: iid,
                    block: b,
                    array,
                    is_store,
                    addr,
                    sym_defs,
                });
            }
        }
        AccessAnalysis { accesses }
    }

    /// Accesses whose block is inside `region_blocks`.
    pub fn within<'a>(
        &'a self,
        region_blocks: &'a [BlockId],
    ) -> impl Iterator<Item = &'a AccessInfo> + 'a {
        self.accesses
            .iter()
            .filter(move |a| region_blocks.contains(&a.block))
    }

    /// The access record for a given instruction.
    pub fn of_instr(&self, i: InstrId) -> Option<&AccessInfo> {
        self.accesses.iter().find(|a| a.instr == i)
    }
}

/// Trip count of a loop: static if the bounds are constants, else the
/// profiled average, else `None`.
pub fn trip_count(
    wpst: &Wpst,
    profile: &Profile,
    func: &Function,
    f: FuncId,
    l: LoopId,
) -> Option<f64> {
    static_trip_count(func, &wpst.func_ctxs[f.index()], l)
        .map(|t| t as f64)
        .or_else(|| profile.avg_trip(wpst, f, l))
}

/// Statically determined trip count for canonical counted loops
/// (`phi = [start]; cmp lt/gt phi, end; step const`).
pub fn static_trip_count(func: &Function, ctx: &FuncCtx, l: LoopId) -> Option<u64> {
    use cayman_ir::instr::{CmpPred, Imm, Operand, Terminator};
    let lp = ctx.forest.get(l);
    let header = func.block(lp.header);
    let Terminator::CondBr { cond, .. } = header.terminator() else {
        return None;
    };
    let cv = cond.as_value()?;
    let cayman_ir::module::ValueDef::Instr(ci) = func.values[cv.index()] else {
        return None;
    };
    let Instr::Cmp { pred, lhs, rhs, .. } = func.instr(ci) else {
        return None;
    };
    // lhs must be an IV phi with constant start/step; rhs a constant.
    let (start, step) = iv_const_parts(func, ctx, l, *lhs)?;
    let end = match rhs {
        Operand::Const(Imm::Int(e)) => *e,
        _ => return None,
    };
    let trips = match (pred, step > 0) {
        (CmpPred::Lt, true) => (end - start + step - 1) / step,
        (CmpPred::Le, true) => (end - start) / step + 1,
        (CmpPred::Gt, false) => (start - end + (-step) - 1) / (-step),
        (CmpPred::Ge, false) => (start - end) / (-step) + 1,
        _ => return None,
    };
    (trips > 0).then_some(trips as u64)
}

fn iv_const_parts(
    func: &Function,
    ctx: &FuncCtx,
    l: LoopId,
    op: cayman_ir::Operand,
) -> Option<(i64, i64)> {
    use cayman_ir::instr::{Imm, Operand};
    let v = op.as_value()?;
    let scev = Scev::new(func, ctx);
    let (lid, step) = scev.iv_of(v)?;
    if lid != l {
        return None;
    }
    // start: non-latch incoming must be a constant.
    let cayman_ir::module::ValueDef::Instr(iid) = func.values[v.index()] else {
        return None;
    };
    let Instr::Phi { incomings, .. } = func.instr(iid) else {
        return None;
    };
    let lp = ctx.forest.get(l);
    let start = incomings
        .iter()
        .find(|(b, _)| !lp.latches.contains(b))
        .map(|(_, o)| *o)?;
    match start {
        Operand::Const(Imm::Int(s)) => Some((s, step)),
        _ => None,
    }
}

/// Footprint: distinct flat addresses per entry of a region, for one access.
///
/// Computed as the product of trip counts of the loops *inside the region*
/// that the address actually varies with (Fig. 2d ③: `ld A`/`ld B` have
/// footprint `M` inside the `dot_product` loop, `ld z`/`st z` footprint 1).
/// Overlapping strides are ignored (upper bound), which is the safe direction
/// for scratchpad sizing. Returns `None` when the address is not a stream
/// within the region or a needed trip count is unavailable.
pub fn footprint(
    access: &AccessInfo,
    region_blocks: &[BlockId],
    loops_in_region: &[(LoopId, f64)],
) -> Option<f64> {
    let addr = access.addr.as_ref()?;
    if !access.is_stream_within(region_blocks) {
        return None;
    }
    let mut fp = 1.0;
    for &(l, trips) in loops_in_region {
        if addr.varies_with(l) {
            fp *= trips.max(1.0);
        }
    }
    Some(fp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cayman_ir::builder::ModuleBuilder;
    use cayman_ir::{FuncId, Type};

    /// The paper's Fig. 2 dot-product loop: `z[i] += A[i][j] * B[i][j]`.
    fn dot_product_module(n: usize, m: usize) -> Module {
        let mut mb = ModuleBuilder::new("t");
        let a = mb.array("A", Type::F64, &[n, m]);
        let b = mb.array("B", Type::F64, &[n, m]);
        let z = mb.array("z", Type::F64, &[n]);
        mb.function("f", &[], None, |fb| {
            fb.counted_loop(0, n as i64, 1, |fb, i| {
                fb.counted_loop(0, m as i64, 1, |fb, j| {
                    let av = fb.load_idx(a, &[i, j]);
                    let bv = fb.load_idx(b, &[i, j]);
                    let p = fb.fmul(av, bv);
                    let zv = fb.load_idx(z, &[i]);
                    let s = fb.fadd(zv, p);
                    fb.store_idx(z, &[i], s);
                });
            });
            fb.ret(None);
        });
        mb.finish()
    }

    #[test]
    fn fig2d_footprints() {
        let m = dot_product_module(16, 8);
        let f = m.function(FuncId(0));
        let ctx = FuncCtx::compute(f);
        let mut scev = Scev::new(f, &ctx);
        let aa = AccessAnalysis::run(&m, f, &ctx, &mut scev);
        assert_eq!(aa.accesses.len(), 4); // ld A, ld B, ld z, st z

        let inner = ctx
            .forest
            .ids()
            .find(|&l| ctx.forest.get(l).depth == 2)
            .expect("inner");
        let inner_blocks = ctx.forest.get(inner).blocks.clone();
        let loops = vec![(
            inner,
            static_trip_count(f, &ctx, inner).expect("static") as f64,
        )];

        // All four accesses are streams within the inner loop.
        for a in &aa.accesses {
            assert!(a.is_stream_within(&inner_blocks), "{a:?}");
        }
        // ld A / ld B footprint = M = 8; ld z / st z footprint = 1.
        let fps: Vec<f64> = aa
            .accesses
            .iter()
            .map(|a| footprint(a, &inner_blocks, &loops).expect("stream"))
            .collect();
        assert_eq!(fps, vec![8.0, 8.0, 1.0, 1.0]);
    }

    #[test]
    fn static_trip_counts() {
        let m = dot_product_module(16, 8);
        let f = m.function(FuncId(0));
        let ctx = FuncCtx::compute(f);
        let outer = ctx
            .forest
            .ids()
            .find(|&l| ctx.forest.get(l).depth == 1)
            .expect("outer");
        let inner = ctx
            .forest
            .ids()
            .find(|&l| ctx.forest.get(l).depth == 2)
            .expect("inner");
        assert_eq!(static_trip_count(f, &ctx, outer), Some(16));
        assert_eq!(static_trip_count(f, &ctx, inner), Some(8));
    }

    #[test]
    fn indirect_access_is_not_a_stream() {
        let mut mb = ModuleBuilder::new("t");
        let idx = mb.array("idx", Type::I64, &[8]);
        let x = mb.array("x", Type::F64, &[8]);
        mb.function("f", &[], None, |fb| {
            fb.counted_loop(0, 8, 1, |fb, i| {
                let k = fb.load_idx_ty(idx, &[i], Type::I64);
                let v = fb.load_idx(x, &[k]);
                fb.store_idx(x, &[k], v);
            });
            fb.ret(None);
        });
        let m = mb.finish();
        let f = m.function(FuncId(0));
        let ctx = FuncCtx::compute(f);
        let mut scev = Scev::new(f, &ctx);
        let aa = AccessAnalysis::run(&m, f, &ctx, &mut scev);
        let l = ctx.forest.ids().next().expect("loop");
        let blocks = ctx.forest.get(l).blocks.clone();
        // idx[i] is a stream; x[k] is not (k defined inside the loop by a load).
        let idx_access = &aa.accesses[0];
        let x_load = &aa.accesses[1];
        assert!(idx_access.is_stream_within(&blocks));
        assert!(!x_load.is_stream_within(&blocks));
        assert!(footprint(x_load, &blocks, &[(l, 8.0)]).is_none());
    }
}
