//! SCEV-lite: affine scalar evolution over loop induction variables.
//!
//! The paper runs LLVM's `ScalarEvolution` to analyse access footprints and a
//! custom pass to identify *stream* patterns (address sequences that can be
//! computed statically, §III-B). This module reproduces the needed fragment:
//! every analysable value is a **linear expression**
//!
//! ```text
//!   c0 + Σ c_L · ι_L + Σ c_s · sym_s
//! ```
//!
//! where `ι_L` is the canonical iteration counter of loop `L` (0,1,2,… per
//! entry) and `sym_s` are opaque-but-single-assignment SSA values (function
//! parameters, unanalysable phis, loads used as indices, …).

use crate::ctx::FuncCtx;
use cayman_ir::instr::{BinOp, Imm, Instr, Operand, UnaryOp};
use cayman_ir::loops::LoopId;
use cayman_ir::module::ValueDef;
use cayman_ir::{BlockId, Function, ValueId};
use std::collections::{BTreeMap, HashMap};

/// A linear expression over loop iteration counters and opaque symbols.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LinExpr {
    /// Constant term.
    pub constant: i64,
    /// Coefficient per loop iteration counter (absent = 0).
    pub iv_coeffs: BTreeMap<LoopId, i64>,
    /// Coefficient per opaque symbol (absent = 0).
    pub symbols: BTreeMap<ValueId, i64>,
}

impl LinExpr {
    /// The constant expression `c`.
    pub fn constant(c: i64) -> Self {
        LinExpr {
            constant: c,
            ..Default::default()
        }
    }

    /// The opaque symbol `v`.
    pub fn symbol(v: ValueId) -> Self {
        let mut symbols = BTreeMap::new();
        symbols.insert(v, 1);
        LinExpr {
            constant: 0,
            iv_coeffs: BTreeMap::new(),
            symbols,
        }
    }

    /// The iteration counter of loop `l` scaled by `c`.
    pub fn iv(l: LoopId, c: i64) -> Self {
        let mut iv_coeffs = BTreeMap::new();
        iv_coeffs.insert(l, c);
        LinExpr {
            constant: 0,
            iv_coeffs,
            symbols: BTreeMap::new(),
        }
    }

    /// Sum of two expressions.
    pub fn add(&self, other: &LinExpr) -> LinExpr {
        let mut r = self.clone();
        r.constant += other.constant;
        for (&l, &c) in &other.iv_coeffs {
            *r.iv_coeffs.entry(l).or_insert(0) += c;
        }
        for (&s, &c) in &other.symbols {
            *r.symbols.entry(s).or_insert(0) += c;
        }
        r.normalise();
        r
    }

    /// Difference of two expressions.
    pub fn sub(&self, other: &LinExpr) -> LinExpr {
        self.add(&other.scale(-1))
    }

    /// Scales every coefficient by `k`.
    pub fn scale(&self, k: i64) -> LinExpr {
        let mut r = self.clone();
        r.constant *= k;
        for c in r.iv_coeffs.values_mut() {
            *c *= k;
        }
        for c in r.symbols.values_mut() {
            *c *= k;
        }
        r.normalise();
        r
    }

    fn normalise(&mut self) {
        self.iv_coeffs.retain(|_, c| *c != 0);
        self.symbols.retain(|_, c| *c != 0);
    }

    /// Coefficient of loop `l`'s iteration counter.
    pub fn coeff(&self, l: LoopId) -> i64 {
        self.iv_coeffs.get(&l).copied().unwrap_or(0)
    }

    /// Whether the expression is a plain constant.
    pub fn is_constant(&self) -> bool {
        self.iv_coeffs.is_empty() && self.symbols.is_empty()
    }

    /// Whether the expression varies with loop `l`.
    pub fn varies_with(&self, l: LoopId) -> bool {
        self.coeff(l) != 0
    }
}

/// Affine scalar-evolution analysis for one function.
#[derive(Debug)]
pub struct Scev<'f> {
    func: &'f Function,
    cache: HashMap<ValueId, Option<LinExpr>>,
    /// Header-phi → (loop, step, latch blocks) for recognised induction
    /// variables.
    iv_info: HashMap<ValueId, (LoopId, i64, Vec<BlockId>)>,
    /// Defining block per value (params → entry).
    def_block: Vec<BlockId>,
}

impl<'f> Scev<'f> {
    /// Prepares the analysis (recognises induction variables eagerly).
    pub fn new(func: &'f Function, ctx: &FuncCtx) -> Self {
        let mut def_block = vec![func.entry(); func.values.len()];
        for b in func.block_ids() {
            for &iid in &func.block(b).instrs {
                if let Some(v) = func.result_of(iid) {
                    def_block[v.index()] = b;
                }
            }
        }

        // Recognise induction variables: a phi in a loop header whose
        // latch incoming is `phi ± const`.
        let mut iv_info = HashMap::new();
        for lid in ctx.forest.ids() {
            let l = ctx.forest.get(lid);
            for &iid in &func.block(l.header).instrs {
                let Instr::Phi { incomings, .. } = func.instr(iid) else {
                    break;
                };
                let Some(phi_val) = func.result_of(iid) else {
                    continue;
                };
                // Find the latch incoming(s); single-latch loops only.
                let latch_in: Vec<&Operand> = incomings
                    .iter()
                    .filter(|(b, _)| l.latches.contains(b))
                    .map(|(_, v)| v)
                    .collect();
                let next = match latch_in.as_slice() {
                    [Operand::Value(v)] => *v,
                    _ => continue,
                };
                let ValueDef::Instr(next_i) = func.values[next.index()] else {
                    continue;
                };
                let step = match func.instr(next_i) {
                    Instr::Binary {
                        op: BinOp::Add,
                        lhs,
                        rhs,
                        ..
                    } => match (lhs, rhs) {
                        (Operand::Value(v), Operand::Const(Imm::Int(c))) if *v == phi_val => {
                            Some(*c)
                        }
                        (Operand::Const(Imm::Int(c)), Operand::Value(v)) if *v == phi_val => {
                            Some(*c)
                        }
                        _ => None,
                    },
                    Instr::Binary {
                        op: BinOp::Sub,
                        lhs: Operand::Value(v),
                        rhs: Operand::Const(Imm::Int(c)),
                        ..
                    } if *v == phi_val => Some(-*c),
                    _ => None,
                };
                if let Some(step) = step {
                    iv_info.insert(phi_val, (lid, step, l.latches.clone()));
                }
            }
        }

        Scev {
            func,
            cache: HashMap::new(),
            iv_info,
            def_block,
        }
    }

    /// Whether `v` is a recognised induction variable, and for which loop
    /// (with its constant step).
    pub fn iv_of(&self, v: ValueId) -> Option<(LoopId, i64)> {
        self.iv_info.get(&v).map(|(l, s, _)| (*l, *s))
    }

    /// The defining block of a value.
    pub fn def_block_of(&self, v: ValueId) -> BlockId {
        self.def_block[v.index()]
    }

    /// The linear expression of an operand, or `None` if not affine.
    pub fn analyse_operand(&mut self, op: Operand) -> Option<LinExpr> {
        match op {
            Operand::Const(Imm::Int(c)) => Some(LinExpr::constant(c)),
            Operand::Const(_) => None,
            Operand::Value(v) => self.analyse(v),
        }
    }

    /// The linear expression of a value, or `None` if not affine.
    ///
    /// Unanalysable values become opaque symbols *of themselves* — the
    /// expression still counts as affine; stream-ness is then decided by
    /// where those symbols are defined relative to the candidate region.
    pub fn analyse(&mut self, v: ValueId) -> Option<LinExpr> {
        if let Some(hit) = self.cache.get(&v) {
            return hit.clone();
        }
        // Seed with a symbol to break recursion cycles (recurrences through
        // non-IV phis resolve to opaque symbols).
        self.cache.insert(v, Some(LinExpr::symbol(v)));
        let result = self.analyse_uncached(v);
        self.cache.insert(v, result.clone());
        result
    }

    fn analyse_uncached(&mut self, v: ValueId) -> Option<LinExpr> {
        // Induction variable: start + step·ι.
        if let Some((l, step, latches)) = self.iv_info.get(&v).cloned() {
            let ValueDef::Instr(iid) = self.func.values[v.index()] else {
                return Some(LinExpr::symbol(v));
            };
            let Instr::Phi { incomings, .. } = self.func.instr(iid).clone() else {
                return Some(LinExpr::symbol(v));
            };
            // start = the non-latch incoming
            let start = incomings
                .iter()
                .find(|(b, _)| !latches.contains(b))
                .map(|(_, o)| *o)?;
            let start_expr = self.analyse_operand(start).unwrap_or_else(|| match start {
                Operand::Value(sv) => LinExpr::symbol(sv),
                _ => LinExpr::constant(0),
            });
            return Some(start_expr.add(&LinExpr::iv(l, step)));
        }

        let def = self.func.values[v.index()];
        let ValueDef::Instr(iid) = def else {
            // Parameter: loop-invariant symbol.
            return Some(LinExpr::symbol(v));
        };
        match self.func.instr(iid).clone() {
            Instr::Binary { op, lhs, rhs, .. } => {
                let l = self.analyse_operand(lhs);
                let r = self.analyse_operand(rhs);
                match (op, l, r) {
                    (BinOp::Add, Some(a), Some(b)) => Some(a.add(&b)),
                    (BinOp::Sub, Some(a), Some(b)) => Some(a.sub(&b)),
                    (BinOp::Mul, Some(a), Some(b)) => {
                        if a.is_constant() {
                            Some(b.scale(a.constant))
                        } else if b.is_constant() {
                            Some(a.scale(b.constant))
                        } else {
                            Some(LinExpr::symbol(v))
                        }
                    }
                    (BinOp::Shl, Some(a), Some(b)) if b.is_constant() && b.constant < 32 => {
                        Some(a.scale(1 << b.constant))
                    }
                    _ => Some(LinExpr::symbol(v)),
                }
            }
            Instr::Unary {
                op: UnaryOp::Neg,
                val,
                ..
            } => self.analyse_operand(val).map(|e| e.scale(-1)),
            // Everything else (loads, selects, calls, float maths, non-IV
            // phis) is an opaque symbol.
            _ => Some(LinExpr::symbol(v)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cayman_ir::builder::ModuleBuilder;
    use cayman_ir::{FuncId, Type};

    fn analyse_last_gep(m: &cayman_ir::Module) -> (Option<LinExpr>, FuncCtx) {
        let f = m.function(FuncId(0));
        let ctx = FuncCtx::compute(f);
        let mut scev = Scev::new(f, &ctx);
        // find the last gep and analyse its flat index manually via indices
        let mut expr = None;
        for b in f.block_ids() {
            for &iid in &f.block(b).instrs {
                if let Instr::Gep { array, indices } = f.instr(iid) {
                    let decl = m.array(*array);
                    let strides = decl.strides();
                    let mut acc = LinExpr::constant(0);
                    let mut ok = true;
                    for (k, idx) in indices.iter().enumerate() {
                        match scev.analyse_operand(*idx) {
                            Some(e) => acc = acc.add(&e.scale(strides[k] as i64)),
                            None => ok = false,
                        }
                    }
                    expr = if ok { Some(acc) } else { None };
                }
            }
        }
        (expr, ctx)
    }

    #[test]
    fn iv_recognised_with_stride() {
        let mut mb = ModuleBuilder::new("t");
        let a = mb.array("A", Type::F64, &[8, 4]);
        mb.function("f", &[], None, |fb| {
            fb.counted_loop(0, 8, 1, |fb, i| {
                fb.counted_loop(0, 4, 1, |fb, j| {
                    let v = fb.load_idx(a, &[i, j]);
                    fb.store_idx(a, &[i, j], v);
                });
            });
            fb.ret(None);
        });
        let m = mb.finish();
        let (expr, ctx) = analyse_last_gep(&m);
        let e = expr.expect("gep index is affine");
        // A[i][j] row-major with dims (8,4): flat = 4·i + j.
        let outer = ctx
            .forest
            .ids()
            .find(|&l| ctx.forest.get(l).depth == 1)
            .expect("outer");
        let inner = ctx
            .forest
            .ids()
            .find(|&l| ctx.forest.get(l).depth == 2)
            .expect("inner");
        assert_eq!(e.coeff(outer), 4, "{e:?}");
        assert_eq!(e.coeff(inner), 1, "{e:?}");
        assert!(e.symbols.is_empty(), "{e:?}");
        assert_eq!(e.constant, 0);
    }

    #[test]
    fn loop_invariant_index_has_zero_coeff() {
        let mut mb = ModuleBuilder::new("t");
        let z = mb.array("z", Type::F64, &[8]);
        mb.function("f", &[], None, |fb| {
            fb.counted_loop(0, 8, 1, |fb, i| {
                fb.counted_loop(0, 4, 1, |fb, _j| {
                    // z[i] inside the j loop: invariant w.r.t. j
                    let v = fb.load_idx(z, &[i]);
                    fb.store_idx(z, &[i], v);
                });
            });
            fb.ret(None);
        });
        let m = mb.finish();
        let (expr, ctx) = analyse_last_gep(&m);
        let e = expr.expect("affine");
        let inner = ctx
            .forest
            .ids()
            .find(|&l| ctx.forest.get(l).depth == 2)
            .expect("inner");
        assert_eq!(e.coeff(inner), 0);
        assert!(!e.varies_with(inner));
    }

    #[test]
    fn scaled_and_offset_indices() {
        let mut mb = ModuleBuilder::new("t");
        let x = mb.array("x", Type::F64, &[64]);
        mb.function("f", &[], None, |fb| {
            fb.counted_loop(0, 8, 1, |fb, i| {
                // x[3*i + 5]
                let three = fb.iconst(3);
                let five = fb.iconst(5);
                let t = fb.mul(three, i);
                let idx = fb.add(t, five);
                let v = fb.load_idx(x, &[idx]);
                fb.store_idx(x, &[idx], v);
            });
            fb.ret(None);
        });
        let m = mb.finish();
        let (expr, ctx) = analyse_last_gep(&m);
        let e = expr.expect("affine");
        let l = ctx.forest.ids().next().expect("loop");
        assert_eq!(e.coeff(l), 3);
        assert_eq!(e.constant, 5);
    }

    #[test]
    fn indirect_index_becomes_symbol() {
        let mut mb = ModuleBuilder::new("t");
        let idx = mb.array("idx", Type::I64, &[8]);
        let x = mb.array("x", Type::F64, &[8]);
        mb.function("f", &[], None, |fb| {
            fb.counted_loop(0, 8, 1, |fb, i| {
                let k = fb.load_idx_ty(idx, &[i], Type::I64);
                let v = fb.load_idx(x, &[k]);
                fb.store_idx(x, &[k], v);
            });
            fb.ret(None);
        });
        let m = mb.finish();
        let (expr, _ctx) = analyse_last_gep(&m);
        let e = expr.expect("still representable");
        // the loaded index is an opaque symbol, not an IV term
        assert!(!e.symbols.is_empty());
    }

    #[test]
    fn linexpr_algebra() {
        let a = LinExpr::constant(3).add(&LinExpr::iv(LoopId(0), 2));
        let b = LinExpr::constant(1).add(&LinExpr::iv(LoopId(0), 2));
        let d = a.sub(&b);
        assert_eq!(d, LinExpr::constant(2));
        assert!(d.is_constant());
        let s = a.scale(0);
        assert_eq!(s, LinExpr::constant(0));
    }
}
