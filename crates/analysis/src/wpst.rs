//! The whole-application program structure tree (wPST, §III-B).
//!
//! The wPST extends the classic program structure tree with a root vertex for
//! the entire application and one vertex per function; under each function
//! vertex hang that function's SESE regions ([`RegionTree`]). Region vertices
//! (both *bb* and *ctrl-flow*) are the acceleration candidates; root and
//! function vertices only combine their children's solutions (Algorithm 1's
//! `otherwise` case).

use crate::ctx::FuncCtx;
use crate::regions::{Region, RegionId, RegionKind, RegionTree};
use cayman_ir::{FuncId, Module};
use std::fmt::Write as _;

/// Identifies a node in the [`Wpst`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WpstNodeId(pub u32);

impl WpstNodeId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The kind of a wPST vertex.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WpstKind {
    /// The application root.
    Root,
    /// A function vertex.
    Func(FuncId),
    /// A region vertex (bb or ctrl-flow) of `func`.
    Region {
        /// Containing function.
        func: FuncId,
        /// Region within that function's [`RegionTree`].
        region: RegionId,
    },
}

/// One wPST vertex.
#[derive(Debug, Clone)]
pub struct WpstNode {
    /// Vertex kind.
    pub kind: WpstKind,
    /// Children in the tree.
    pub children: Vec<WpstNodeId>,
    /// Parent (`None` for the root).
    pub parent: Option<WpstNodeId>,
}

/// The whole-application program structure tree.
#[derive(Debug)]
pub struct Wpst {
    /// All vertices; `WpstNodeId(0)` is the root.
    pub nodes: Vec<WpstNode>,
    /// Per-function region trees (indexed by `FuncId`).
    pub region_trees: Vec<RegionTree>,
    /// Per-function analysis contexts (indexed by `FuncId`).
    pub func_ctxs: Vec<FuncCtx>,
}

impl Wpst {
    /// Builds the wPST of a module.
    pub fn build(module: &Module) -> Self {
        let _s = cayman_obs::span!("analyse.wpst", functions = module.functions.len());
        let mut region_trees = Vec::with_capacity(module.functions.len());
        let mut func_ctxs = Vec::with_capacity(module.functions.len());
        for f in module.function_ids() {
            let func = module.function(f);
            let ctx = FuncCtx::compute(func);
            region_trees.push(RegionTree::build(func, &ctx));
            func_ctxs.push(ctx);
        }
        Self::from_parts(region_trees, func_ctxs)
    }

    /// Assembles a wPST from per-function analyses computed (or cached)
    /// elsewhere. [`Wpst::build`] is exactly `from_parts` over freshly
    /// computed parts, so the node numbering is identical between the two —
    /// each function's subtree occupies a contiguous id range determined
    /// only by the preceding functions' region counts and its own region
    /// tree. Incremental re-analysis relies on this: a cached per-function
    /// `(FuncCtx, RegionTree)` pair reassembles into a wPST bit-identical
    /// to a from-scratch build.
    pub fn from_parts(region_trees: Vec<RegionTree>, func_ctxs: Vec<FuncCtx>) -> Self {
        assert_eq!(region_trees.len(), func_ctxs.len());
        let mut nodes = vec![WpstNode {
            kind: WpstKind::Root,
            children: Vec::new(),
            parent: None,
        }];

        for (fidx, tree) in region_trees.iter().enumerate() {
            let f = FuncId(fidx as u32);
            let fnode = WpstNodeId(nodes.len() as u32);
            nodes.push(WpstNode {
                kind: WpstKind::Func(f),
                children: Vec::new(),
                parent: Some(WpstNodeId(0)),
            });
            nodes[0].children.push(fnode);

            // Insert regions depth-first so that children exist after their
            // parents; map RegionId -> WpstNodeId.
            let mut map = vec![WpstNodeId(0); tree.regions.len()];
            let mut stack: Vec<(RegionId, WpstNodeId)> =
                tree.top.iter().map(|&r| (r, fnode)).collect();
            while let Some((r, parent)) = stack.pop() {
                let id = WpstNodeId(nodes.len() as u32);
                nodes.push(WpstNode {
                    kind: WpstKind::Region { func: f, region: r },
                    children: Vec::new(),
                    parent: Some(parent),
                });
                nodes[parent.index()].children.push(id);
                map[r.index()] = id;
                for &c in &tree.get(r).children {
                    stack.push((c, id));
                }
            }
        }

        Wpst {
            nodes,
            region_trees,
            func_ctxs,
        }
    }

    /// The root vertex.
    pub fn root(&self) -> WpstNodeId {
        WpstNodeId(0)
    }

    /// Node lookup.
    pub fn node(&self, id: WpstNodeId) -> &WpstNode {
        &self.nodes[id.index()]
    }

    /// Iterate node ids.
    pub fn ids(&self) -> impl Iterator<Item = WpstNodeId> + '_ {
        (0..self.nodes.len() as u32).map(WpstNodeId)
    }

    /// The region behind a `Region` vertex.
    pub fn region(&self, id: WpstNodeId) -> Option<(&Region, FuncId)> {
        match self.node(id).kind {
            WpstKind::Region { func, region } => {
                Some((self.region_trees[func.index()].get(region), func))
            }
            _ => None,
        }
    }

    /// Whether a vertex is a *bb* region.
    pub fn is_bb(&self, id: WpstNodeId) -> bool {
        matches!(
            self.region(id),
            Some((
                Region {
                    kind: RegionKind::Bb(_),
                    ..
                },
                _
            ))
        )
    }

    /// Whether a vertex is a *ctrl-flow* region.
    pub fn is_ctrl_flow(&self, id: WpstNodeId) -> bool {
        matches!(self.region(id), Some((r, _)) if r.kind.is_ctrl_flow())
    }

    /// Total number of region vertices.
    pub fn region_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n.kind, WpstKind::Region { .. }))
            .count()
    }

    /// Renders the tree as indented text (Fig. 2c style).
    pub fn to_text(&self, module: &Module) -> String {
        let mut out = String::new();
        self.render(module, self.root(), 0, &mut out);
        out
    }

    fn render(&self, module: &Module, id: WpstNodeId, depth: usize, out: &mut String) {
        let indent = "  ".repeat(depth);
        match self.node(id).kind {
            WpstKind::Root => {
                let _ = writeln!(out, "{indent}root ({})", module.name);
            }
            WpstKind::Func(f) => {
                let _ = writeln!(out, "{indent}func @{}", module.function(f).name);
            }
            WpstKind::Region { func, region } => {
                let r = self.region_trees[func.index()].get(region);
                let fun = module.function(func);
                match r.kind {
                    RegionKind::Bb(b) => {
                        let _ = writeln!(out, "{indent}bb {} ({})", b, fun.block(b).name);
                    }
                    RegionKind::Loop(l) => {
                        let header = self.func_ctxs[func.index()].forest.get(l).header;
                        let _ = writeln!(
                            out,
                            "{indent}ctrl-flow loop@{header} [{} blocks]{}",
                            r.blocks.len(),
                            if r.accelerable {
                                ""
                            } else {
                                " (not accelerable)"
                            }
                        );
                    }
                    RegionKind::Cond { head, join } => {
                        let _ = writeln!(
                            out,
                            "{indent}ctrl-flow cond@{head}..{join} [{} blocks]",
                            r.blocks.len()
                        );
                    }
                }
            }
        }
        // Render children deterministically: sorted by id.
        let mut kids = self.node(id).children.clone();
        kids.sort_unstable();
        for c in kids {
            self.render(module, c, depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cayman_ir::builder::ModuleBuilder;
    use cayman_ir::Type;

    /// Builds the two-function program of Fig. 2a: `func0` with the `linear`
    /// loop and `func1` with the `outer`/`dot_product` nest.
    pub(crate) fn fig2_module() -> Module {
        const N: usize = 16;
        const M: usize = 8;
        let mut mb = ModuleBuilder::new("fig2");
        let x = mb.array("x", Type::F64, &[N]);
        let y = mb.array("y", Type::F64, &[N]);
        let a = mb.array("A", Type::F64, &[N, M]);
        let b = mb.array("B", Type::F64, &[N, M]);
        let z = mb.array("z", Type::F64, &[N]);
        let f0 = mb.function("func0", &[], None, |fb| {
            fb.counted_loop(0, N as i64, 1, |fb, i| {
                let xv = fb.load_idx(x, &[i]);
                let k = fb.fconst(2.0);
                let c = fb.fconst(1.0);
                let t = fb.fmul(k, xv);
                let v = fb.fadd(t, c);
                fb.store_idx(y, &[i], v);
            });
            fb.ret(None);
        });
        let f1 = mb.function("func1", &[], None, |fb| {
            fb.counted_loop(0, N as i64, 1, |fb, i| {
                fb.counted_loop(0, M as i64, 1, |fb, j| {
                    let av = fb.load_idx(a, &[i, j]);
                    let bv = fb.load_idx(b, &[i, j]);
                    let p = fb.fmul(av, bv);
                    let zv = fb.load_idx(z, &[i]);
                    let s = fb.fadd(zv, p);
                    fb.store_idx(z, &[i], s);
                });
            });
            fb.ret(None);
        });
        mb.function("main", &[], None, |fb| {
            fb.call(f0, &[], None);
            fb.call(f1, &[], None);
            fb.ret(None);
        });
        mb.finish()
    }

    #[test]
    fn fig2_wpst_shape() {
        let m = fig2_module();
        m.verify().expect("verifies");
        let wpst = Wpst::build(&m);
        // root has three function children
        assert_eq!(wpst.node(wpst.root()).children.len(), 3);
        // func1 contains two nested ctrl-flow regions
        let text = wpst.to_text(&m);
        assert!(text.contains("func @func0"), "{text}");
        assert!(text.contains("func @func1"), "{text}");
        let ctrl_count = wpst.ids().filter(|&n| wpst.is_ctrl_flow(n)).count();
        assert_eq!(ctrl_count, 3, "linear + outer + dot_product:\n{text}");
        // every non-root node's parent links back
        for id in wpst.ids() {
            if let Some(p) = wpst.node(id).parent {
                assert!(wpst.node(p).children.contains(&id));
            }
        }
    }

    #[test]
    fn bb_and_ctrl_flow_classification() {
        let m = fig2_module();
        let wpst = Wpst::build(&m);
        let bbs = wpst.ids().filter(|&n| wpst.is_bb(n)).count();
        let ctrls = wpst.ids().filter(|&n| wpst.is_ctrl_flow(n)).count();
        assert_eq!(bbs + ctrls, wpst.region_count());
        assert!(bbs > ctrls);
        // root/function vertices are neither
        assert!(!wpst.is_bb(wpst.root()));
        assert!(!wpst.is_ctrl_flow(wpst.root()));
    }
}
