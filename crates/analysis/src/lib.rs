//! # cayman-analysis
//!
//! Program representation, profiling and data-access analysis for the Cayman
//! reproduction (paper §III-B):
//!
//! * [`ctx`] — per-function CFG/dominator/loop bundle,
//! * [`regions`] — SESE region discovery (the PST slice of one function),
//! * [`wpst`] — the whole-application program structure tree,
//! * [`profile`] — region-level execution counts and durations from an
//!   interpreter run,
//! * [`scev`] — affine scalar evolution over loop induction variables,
//! * [`access`] — *stream* access-pattern classification and footprints,
//! * [`banking`] — bank-conflict legality and stencil-window detection for
//!   partitioned memory interfaces,
//! * [`memdep`] — loop-carried dependence analysis (memory and scalar
//!   recurrences).
//!
//! ## Example
//!
//! ```
//! use cayman_ir::builder::ModuleBuilder;
//! use cayman_ir::interp::Interp;
//! use cayman_ir::Type;
//! use cayman_analysis::wpst::Wpst;
//! use cayman_analysis::profile::Profile;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut mb = ModuleBuilder::new("app");
//! let x = mb.array("x", Type::F64, &[32]);
//! mb.function("main", &[], None, |fb| {
//!     fb.counted_loop(0, 32, 1, |fb, i| {
//!         let v = fb.load_idx(x, &[i]);
//!         let w = fb.fadd(v, fb.fconst(1.0));
//!         fb.store_idx(x, &[i], w);
//!     });
//!     fb.ret(None);
//! });
//! let module = mb.finish();
//! module.verify()?;
//!
//! let wpst = Wpst::build(&module);
//! let exec = Interp::new(&module).run(&[])?;
//! let profile = Profile::aggregate(&module, &wpst, &exec);
//! assert!(profile.total_cycles > 0);
//! # Ok(())
//! # }
//! ```

pub mod access;
pub mod banking;
pub mod ctx;
pub mod memdep;
pub mod profile;
pub mod regions;
pub mod scev;
pub mod wpst;

pub use access::{AccessAnalysis, AccessInfo};
pub use banking::{bank_conflict_free, max_conflict_free_unroll, stencil_window, StencilWindow};
pub use ctx::FuncCtx;
pub use memdep::{analyse_loop_deps, LoopDeps, MemRecurrence, ScalarRecurrence};
pub use profile::{Profile, RegionProfile};
pub use regions::{Region, RegionId, RegionKind, RegionTree};
pub use scev::{LinExpr, Scev};
pub use wpst::{Wpst, WpstKind, WpstNode, WpstNodeId};
