//! Per-function analysis bundle shared by every pass in this crate.

use cayman_ir::cfg::Cfg;
use cayman_ir::dom::DomTree;
use cayman_ir::loops::LoopForest;
use cayman_ir::module::NO_BLOCK;
use cayman_ir::{BlockId, Function, InstrId};

/// CFG + dominators + post-dominators + loop forest for one function, plus an
/// instruction→block map.
#[derive(Debug, Clone)]
pub struct FuncCtx {
    /// Control-flow graph.
    pub cfg: Cfg,
    /// Dominator tree.
    pub dom: DomTree,
    /// Post-dominator tree.
    pub pdom: DomTree,
    /// Natural-loop forest.
    pub forest: LoopForest,
    /// Snapshot of [`Function::instr_block_map`] (raw block ids, `NO_BLOCK`
    /// for unplaced instructions).
    block_of_instr: Box<[u32]>,
}

impl FuncCtx {
    /// Computes all CFG-level analyses for `func`.
    pub fn compute(func: &Function) -> Self {
        let cfg = Cfg::compute(func);
        let dom = DomTree::dominators(func, &cfg);
        let pdom = DomTree::post_dominators(func, &cfg);
        let forest = LoopForest::compute(func, &cfg, &dom);
        FuncCtx {
            cfg,
            dom,
            pdom,
            forest,
            block_of_instr: func.instr_block_map().into(),
        }
    }

    /// The block containing `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is not attached to any block (malformed function).
    pub fn block_of(&self, i: InstrId) -> BlockId {
        let b = self.block_of_instr[i.index()];
        assert_ne!(b, NO_BLOCK, "{i} is not attached to any block");
        BlockId(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cayman_ir::builder::ModuleBuilder;
    use cayman_ir::{FuncId, Type};

    #[test]
    fn bundles_all_analyses() {
        let mut mb = ModuleBuilder::new("t");
        let x = mb.array("x", Type::F64, &[4]);
        mb.function("f", &[], None, |fb| {
            fb.counted_loop(0, 4, 1, |fb, i| {
                let v = fb.load_idx(x, &[i]);
                fb.store_idx(x, &[i], v);
            });
            fb.ret(None);
        });
        let m = mb.finish();
        let f = m.function(FuncId(0));
        let ctx = FuncCtx::compute(f);
        assert_eq!(ctx.forest.loops.len(), 1);
        // every instruction maps to a block
        for b in f.block_ids() {
            for &iid in &f.block(b).instrs {
                assert_eq!(ctx.block_of(iid), b);
            }
        }
    }
}
