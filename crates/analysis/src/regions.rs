//! Single-entry-single-exit (SESE) region discovery and the per-function
//! region tree — the function-local slice of the paper's wPST (§III-B).
//!
//! Two *ctrl-flow* region shapes cover the structured CFGs our builder (and
//! `-O3`-compiled benchmark code) produces:
//!
//! * **loop regions** — natural loops; SESE iff the loop has a single exit
//!   block,
//! * **conditional regions** — a branch block `b` (not a loop header) whose
//!   immediate post-dominator `j` joins all paths, with every block strictly
//!   between dominated by `b`.
//!
//! Every basic block additionally forms a *bb* region. Regions containing
//! `call` instructions are kept in the tree for structure but marked
//! non-accelerable (the paper's candidates are intra-procedural; cross-call
//! offload would break the entry/exit synchronisation argument of §III-B).

use crate::ctx::FuncCtx;
use cayman_ir::instr::{Instr, Terminator};
use cayman_ir::loops::LoopId;
use cayman_ir::{BlockId, Function};
use std::fmt;

/// Identifies a region within a [`RegionTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(pub u32);

impl RegionId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// The shape of a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionKind {
    /// A single basic block (*bb* region in the paper).
    Bb(BlockId),
    /// A natural loop (*ctrl-flow* region).
    Loop(LoopId),
    /// A conditional diamond (*ctrl-flow* region): branch head and join.
    Cond {
        /// The branching block (region entry).
        head: BlockId,
        /// The join block (region exit; not part of the region).
        join: BlockId,
    },
}

impl RegionKind {
    /// Whether this is a *ctrl-flow* region (loop or conditional).
    pub fn is_ctrl_flow(self) -> bool {
        !matches!(self, RegionKind::Bb(_))
    }
}

/// One region in the tree.
#[derive(Debug, Clone)]
pub struct Region {
    /// Shape.
    pub kind: RegionKind,
    /// All blocks spanned by the region (for `Bb`, exactly one; for
    /// ctrl-flow regions, every contained block including nested regions').
    pub blocks: Vec<BlockId>,
    /// Child regions, outermost-first in block order.
    pub children: Vec<RegionId>,
    /// Parent region (`None` for function-top-level regions).
    pub parent: Option<RegionId>,
    /// Whether the region is single-entry-single-exit (a legal acceleration
    /// candidate shape).
    pub sese: bool,
    /// Whether the region may be offloaded: SESE and free of `call`
    /// instructions.
    pub accelerable: bool,
}

/// The region tree of one function.
#[derive(Debug, Clone)]
pub struct RegionTree {
    /// All regions.
    pub regions: Vec<Region>,
    /// Regions with no parent (direct children of the function vertex in the
    /// wPST).
    pub top: Vec<RegionId>,
}

impl RegionTree {
    /// Builds the region tree for `func`.
    pub fn build(func: &Function, ctx: &FuncCtx) -> Self {
        let mut regions: Vec<Region> = Vec::new();

        // --- ctrl-flow regions: loops --------------------------------------
        for lid in ctx.forest.ids() {
            let l = ctx.forest.get(lid);
            let sese = l.single_exit().is_some();
            regions.push(Region {
                kind: RegionKind::Loop(lid),
                blocks: l.blocks.clone(),
                children: Vec::new(),
                parent: None,
                sese,
                accelerable: sese,
            });
        }

        // --- ctrl-flow regions: conditionals --------------------------------
        for b in func.block_ids() {
            if !ctx.cfg.is_reachable(b) {
                continue;
            }
            // Loop headers' conditional branches are loop control, not
            // diamonds.
            if ctx.forest.loops.iter().any(|l| l.header == b) {
                continue;
            }
            let Terminator::CondBr { .. } = func.block(b).terminator() else {
                continue;
            };
            let Some(join) = ctx.pdom.idom_of(b) else {
                continue;
            };
            if join == b {
                continue;
            }
            // Forward walk from b, stopping at join.
            let mut blocks = vec![b];
            let mut stack = vec![b];
            let mut ok = true;
            while let Some(x) = stack.pop() {
                for &s in &ctx.cfg.succs[x.index()] {
                    if s == join || blocks.contains(&s) {
                        continue;
                    }
                    if !ctx.dom.dominates(b, s) {
                        ok = false; // side entry: not single-entry
                        break;
                    }
                    blocks.push(s);
                    stack.push(s);
                }
                if !ok {
                    break;
                }
            }
            if !ok {
                continue;
            }
            // The diamond must stay within b's loop context: every block's
            // innermost loop must contain (or equal) b's.
            let b_loop = ctx.forest.innermost_loop(b);
            let contextual = blocks.iter().all(|&x| {
                match (b_loop, ctx.forest.innermost_loop(x)) {
                    (None, None) => true,
                    (None, Some(_)) => true, // nested loop fully inside arm
                    (Some(bl), Some(xl)) => ctx.forest.contains(bl, xl),
                    (Some(_), None) => false, // escapes the loop: impossible if dominated, but be safe
                }
            });
            if !contextual {
                continue;
            }
            regions.push(Region {
                kind: RegionKind::Cond { head: b, join },
                blocks,
                children: Vec::new(),
                parent: None,
                sese: true,
                accelerable: true,
            });
        }

        // --- bb regions ------------------------------------------------------
        for b in func.block_ids() {
            if !ctx.cfg.is_reachable(b) {
                continue;
            }
            regions.push(Region {
                kind: RegionKind::Bb(b),
                blocks: vec![b],
                children: Vec::new(),
                parent: None,
                sese: true,
                accelerable: true,
            });
        }

        // --- parenting: smallest strictly-containing ctrl region ------------
        let ids: Vec<RegionId> = (0..regions.len() as u32).map(RegionId).collect();
        let contains = |outer: &Region, inner: &Region| -> bool {
            if !outer.kind.is_ctrl_flow() {
                return false;
            }
            // strict containment: superset of blocks and not the same region
            if outer.blocks.len() < inner.blocks.len() {
                return false;
            }
            let strict = outer.blocks.len() > inner.blocks.len() || outer.kind != inner.kind;
            strict && inner.blocks.iter().all(|b| outer.blocks.contains(b))
        };
        for &r in &ids {
            let mut best: Option<RegionId> = None;
            for &o in &ids {
                if o == r {
                    continue;
                }
                if contains(&regions[o.index()], &regions[r.index()]) {
                    best = match best {
                        None => Some(o),
                        Some(cur) => {
                            if regions[o.index()].blocks.len() < regions[cur.index()].blocks.len() {
                                Some(o)
                            } else {
                                best
                            }
                        }
                    };
                }
            }
            regions[r.index()].parent = best;
        }
        let mut top = Vec::new();
        for &r in &ids {
            match regions[r.index()].parent {
                Some(p) => regions[p.index()].children.push(r),
                None => top.push(r),
            }
        }

        // --- accelerability: calls poison the region and its ancestors ------
        let mut has_call = vec![false; regions.len()];
        for &r in &ids {
            let reg = &regions[r.index()];
            has_call[r.index()] = reg.blocks.iter().any(|&b| {
                func.block(b)
                    .instrs
                    .iter()
                    .any(|&i| matches!(func.instr(i), Instr::Call { .. }))
            });
        }
        for &r in &ids {
            if has_call[r.index()] {
                regions[r.index()].accelerable = false;
            }
        }

        RegionTree { regions, top }
    }

    /// Region lookup.
    pub fn get(&self, id: RegionId) -> &Region {
        &self.regions[id.index()]
    }

    /// Iterate region ids.
    pub fn ids(&self) -> impl Iterator<Item = RegionId> + '_ {
        (0..self.regions.len() as u32).map(RegionId)
    }

    /// The *bb* region for a block.
    pub fn bb_region(&self, b: BlockId) -> Option<RegionId> {
        self.ids().find(|&r| self.get(r).kind == RegionKind::Bb(b))
    }

    /// The region for a loop.
    pub fn loop_region(&self, l: LoopId) -> Option<RegionId> {
        self.ids()
            .find(|&r| self.get(r).kind == RegionKind::Loop(l))
    }

    /// Number of ctrl-flow regions.
    pub fn ctrl_flow_count(&self) -> usize {
        self.regions
            .iter()
            .filter(|r| r.kind.is_ctrl_flow())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cayman_ir::builder::ModuleBuilder;
    use cayman_ir::{FuncId, Type};

    fn build_tree(m: &cayman_ir::Module, f: FuncId) -> RegionTree {
        let func = m.function(f);
        let ctx = FuncCtx::compute(func);
        RegionTree::build(func, &ctx)
    }

    #[test]
    fn nested_loop_tree_shape() {
        let mut mb = ModuleBuilder::new("t");
        let a = mb.array("A", Type::F64, &[4, 4]);
        let f = mb.function("f", &[], None, |fb| {
            fb.counted_loop(0, 4, 1, |fb, i| {
                fb.counted_loop(0, 4, 1, |fb, j| {
                    let v = fb.load_idx(a, &[i, j]);
                    fb.store_idx(a, &[i, j], v);
                });
            });
            fb.ret(None);
        });
        let m = mb.finish();
        let t = build_tree(&m, f);
        // 2 loop regions + 7 reachable bbs
        assert_eq!(t.ctrl_flow_count(), 2);
        let outer = t
            .ids()
            .find(|&r| matches!(t.get(r).kind, RegionKind::Loop(_)) && t.get(r).parent.is_none())
            .expect("outer loop is top-level");
        let inner = t
            .ids()
            .find(|&r| {
                matches!(t.get(r).kind, RegionKind::Loop(_)) && t.get(r).parent == Some(outer)
            })
            .expect("inner loop nests under outer");
        assert!(t.get(outer).sese && t.get(outer).accelerable);
        assert!(t.get(inner).sese);
        // the inner loop's bbs parent to the inner region
        for &b in &t.get(inner).blocks {
            let bb = t.bb_region(b).expect("bb region exists");
            assert_eq!(
                t.get(bb).parent,
                Some(inner),
                "bb {b} parents to inner loop"
            );
        }
        // top-level regions: outer loop + entry bb + two exit bbs
        assert!(t.top.contains(&outer));
    }

    #[test]
    fn conditional_region_detected() {
        let mut mb = ModuleBuilder::new("t");
        let x = mb.array("x", Type::F64, &[8]);
        let f = mb.function("f", &[], None, |fb| {
            fb.counted_loop(0, 8, 1, |fb, i| {
                let v = fb.load_idx(x, &[i]);
                let c = fb.fcmp_gt(v, fb.fconst(0.0));
                fb.if_then_else(
                    c,
                    |fb| fb.store_idx(x, &[i], v),
                    |fb| {
                        let n = fb.unary(cayman_ir::UnaryOp::FNeg, Type::F64, v);
                        fb.store_idx(x, &[i], n)
                    },
                );
            });
            fb.ret(None);
        });
        let m = mb.finish();
        let t = build_tree(&m, f);
        let cond = t
            .ids()
            .find(|&r| matches!(t.get(r).kind, RegionKind::Cond { .. }))
            .expect("cond region found");
        let reg = t.get(cond);
        assert!(reg.sese && reg.accelerable);
        // diamond = head + then + else = 3 blocks
        assert_eq!(reg.blocks.len(), 3);
        // the cond nests inside the loop region
        let parent = reg.parent.expect("cond has a parent");
        assert!(matches!(t.get(parent).kind, RegionKind::Loop(_)));
    }

    #[test]
    fn call_poisons_accelerability() {
        let mut mb = ModuleBuilder::new("t");
        let g = mb.function("g", &[], None, |fb| fb.ret(None));
        let f = mb.function("f", &[], None, |fb| {
            fb.counted_loop(0, 4, 1, |fb, _i| {
                fb.call(g, &[], None);
            });
            fb.ret(None);
        });
        let m = mb.finish();
        let t = build_tree(&m, f);
        let lr = t
            .ids()
            .find(|&r| matches!(t.get(r).kind, RegionKind::Loop(_)))
            .expect("loop region");
        assert!(t.get(lr).sese, "loop is still SESE");
        assert!(!t.get(lr).accelerable, "but not accelerable due to call");
    }

    #[test]
    fn every_block_has_a_bb_region() {
        let mut mb = ModuleBuilder::new("t");
        let f = mb.function("f", &[], None, |fb| fb.ret(None));
        let m = mb.finish();
        let t = build_tree(&m, f);
        assert!(t.bb_region(cayman_ir::BlockId(0)).is_some());
    }
}
