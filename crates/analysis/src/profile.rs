//! Region-level profiling aggregation (Fig. 2d ①).
//!
//! The interpreter yields dynamic per-block execution counts; this module
//! folds them onto wPST vertices: per-region *entry counts* and *durations*
//! (CPU cycles), plus loop trip counts. These are the `R` inputs of
//! Algorithm 1 — `prune` keys off the duration share and the accelerator
//! model keys off entry and trip counts.

use crate::wpst::{Wpst, WpstKind, WpstNodeId};
use cayman_ir::cpu_model::block_cycles;
use cayman_ir::interp::ExecProfile;
use cayman_ir::loops::LoopId;
use cayman_ir::{FuncId, Module};

/// Profiling data for one wPST vertex.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionProfile {
    /// Number of times the region was entered.
    pub entries: u64,
    /// Total CPU cycles spent inside the region (including nested regions).
    pub cycles: u64,
}

/// Region-level profile for the whole application.
#[derive(Debug)]
pub struct Profile {
    per_node: Vec<RegionProfile>,
    /// `block_count[f][b]`: dynamic executions per block.
    pub block_counts: Vec<Vec<u64>>,
    /// Total program CPU cycles (`T_all` numerator basis of Eq. (1)).
    pub total_cycles: u64,
}

impl Profile {
    /// Aggregates an interpreter run onto the wPST.
    pub fn aggregate(module: &Module, wpst: &Wpst, exec: &ExecProfile) -> Self {
        let _s = cayman_obs::span!("profile.aggregate");
        // Static per-block cycles.
        let static_cycles: Vec<Vec<u64>> = module
            .functions
            .iter()
            .map(|f| f.block_ids().map(|b| block_cycles(f, b)).collect())
            .collect();

        let count = |f: FuncId, b: cayman_ir::BlockId| exec.count(f, b);

        let mut per_node = Vec::with_capacity(wpst.nodes.len());
        for id in wpst.ids() {
            let node = wpst.node(id);
            let rp = match node.kind {
                WpstKind::Root => RegionProfile {
                    entries: 1,
                    cycles: exec.total_cycles,
                },
                WpstKind::Func(f) => {
                    let func = module.function(f);
                    let cycles = func
                        .block_ids()
                        .map(|b| count(f, b) * static_cycles[f.index()][b.index()])
                        .sum();
                    RegionProfile {
                        entries: count(f, func.entry()),
                        cycles,
                    }
                }
                WpstKind::Region { func: f, region } => {
                    let tree = &wpst.region_trees[f.index()];
                    let ctx = &wpst.func_ctxs[f.index()];
                    let reg = tree.get(region);
                    let cycles = reg
                        .blocks
                        .iter()
                        .map(|&b| count(f, b) * static_cycles[f.index()][b.index()])
                        .sum();
                    let entries = match reg.kind {
                        crate::regions::RegionKind::Bb(b) => count(f, b),
                        crate::regions::RegionKind::Cond { head, .. } => count(f, head),
                        crate::regions::RegionKind::Loop(l) => {
                            let lp = ctx.forest.get(l);
                            let back: u64 = lp.latches.iter().map(|&b| count(f, b)).sum();
                            count(f, lp.header).saturating_sub(back)
                        }
                    };
                    RegionProfile { entries, cycles }
                }
            };
            per_node.push(rp);
        }

        Profile {
            per_node,
            block_counts: exec.block_counts.clone(),
            total_cycles: exec.total_cycles,
        }
    }

    /// Profile of one vertex.
    pub fn of(&self, id: WpstNodeId) -> RegionProfile {
        self.per_node[id.index()]
    }

    /// Fraction of total program time spent in a vertex.
    pub fn share(&self, id: WpstNodeId) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        self.of(id).cycles as f64 / self.total_cycles as f64
    }

    /// Dynamic execution count of one block.
    pub fn block_count(&self, f: FuncId, b: cayman_ir::BlockId) -> u64 {
        self.block_counts[f.index()][b.index()]
    }

    /// Average trip count of a loop: body entries per loop entry.
    ///
    /// Returns `None` if the loop never ran.
    pub fn avg_trip(&self, wpst: &Wpst, f: FuncId, l: LoopId) -> Option<f64> {
        let ctx = &wpst.func_ctxs[f.index()];
        let lp = ctx.forest.get(l);
        let back: u64 = lp.latches.iter().map(|&b| self.block_count(f, b)).sum();
        let header = self.block_count(f, lp.header);
        let entries = header.saturating_sub(back);
        if entries == 0 {
            None
        } else {
            // iterations = back-edge traversals + ... for a rotated loop the
            // body runs `back + 0..entries` times; header-tested loops run
            // the body exactly `back` times... the body count equals total
            // iterations:
            Some(back as f64 / entries as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wpst::Wpst;
    use cayman_ir::builder::ModuleBuilder;
    use cayman_ir::interp::Interp;
    use cayman_ir::Type;

    fn run(module: &Module) -> ExecProfile {
        let mut interp = Interp::new(module);
        interp.run(&[]).expect("program runs")
    }

    #[test]
    fn loop_entries_and_trip_counts() {
        let mut mb = ModuleBuilder::new("t");
        let a = mb.array("A", Type::F64, &[6, 4]);
        mb.function("main", &[], None, |fb| {
            fb.counted_loop(0, 6, 1, |fb, i| {
                fb.counted_loop(0, 4, 1, |fb, j| {
                    let v = fb.load_idx(a, &[i, j]);
                    fb.store_idx(a, &[i, j], v);
                });
            });
            fb.ret(None);
        });
        let m = mb.finish();
        let wpst = Wpst::build(&m);
        let prof = Profile::aggregate(&m, &wpst, &run(&m));

        let f = cayman_ir::FuncId(0);
        let ctx = &wpst.func_ctxs[0];
        let outer = ctx
            .forest
            .ids()
            .find(|&l| ctx.forest.get(l).depth == 1)
            .expect("outer");
        let inner = ctx
            .forest
            .ids()
            .find(|&l| ctx.forest.get(l).depth == 2)
            .expect("inner");
        assert_eq!(prof.avg_trip(&wpst, f, outer), Some(6.0));
        assert_eq!(prof.avg_trip(&wpst, f, inner), Some(4.0));

        // Loop region entries: outer entered once, inner 6 times.
        let tree = &wpst.region_trees[0];
        let outer_r = tree.loop_region(outer).expect("region");
        let inner_r = tree.loop_region(inner).expect("region");
        let outer_node = wpst
            .ids()
            .find(|&n| {
                wpst.node(n).kind
                    == WpstKind::Region {
                        func: f,
                        region: outer_r,
                    }
            })
            .expect("node");
        let inner_node = wpst
            .ids()
            .find(|&n| {
                wpst.node(n).kind
                    == WpstKind::Region {
                        func: f,
                        region: inner_r,
                    }
            })
            .expect("node");
        assert_eq!(prof.of(outer_node).entries, 1);
        assert_eq!(prof.of(inner_node).entries, 6);
        // the nest dominates program time
        assert!(prof.share(outer_node) > 0.8, "{}", prof.share(outer_node));
        assert!(prof.of(outer_node).cycles > prof.of(inner_node).cycles);
        // root accounts for everything
        assert_eq!(prof.of(wpst.root()).cycles, prof.total_cycles);
    }
}
