//! Loop-carried dependence analysis (§III-B: "Cayman identifies loop-carried
//! dependencies for every loop region").
//!
//! Two dependence species feed the accelerator model:
//!
//! * **memory recurrences** — a store and a load hit the *same* address in
//!   different iterations (the paper's `z[i] += …` example: `st z`/`ld z` are
//!   invariant in the `j` loop, so the accumulation is carried through
//!   memory). Conservative fallbacks apply when addresses are not affine.
//! * **scalar recurrences** — a header phi whose latch value depends on the
//!   phi itself through non-trivial operations (register-carried
//!   accumulation). Plain induction variables (`phi + const`) are excluded;
//!   they never constrain pipelining beyond II = 1.
//!
//! The recorded dependence cycles (instruction chains) are what the HLS model
//! turns into recMII.

use crate::access::AccessAnalysis;
use crate::ctx::FuncCtx;
use crate::scev::Scev;
use cayman_ir::instr::{Instr, Operand};
use cayman_ir::loops::LoopId;
use cayman_ir::module::ValueDef;
use cayman_ir::{Function, InstrId};

/// A loop-carried dependence through memory.
#[derive(Debug, Clone)]
pub struct MemRecurrence {
    /// The store side.
    pub store: InstrId,
    /// The load side.
    pub load: InstrId,
    /// Dependence distance in iterations (`1` = next iteration; conservative
    /// default when unknown).
    pub distance: u64,
    /// Instructions on the load→store value chain (inclusive), whose summed
    /// latency bounds the II.
    pub chain: Vec<InstrId>,
}

/// A loop-carried dependence through a register (header phi).
#[derive(Debug, Clone)]
pub struct ScalarRecurrence {
    /// The carrying phi.
    pub phi: InstrId,
    /// Instructions on the phi→phi cycle (excluding the phi itself).
    pub chain: Vec<InstrId>,
}

/// All loop-carried dependencies of one loop.
#[derive(Debug, Clone, Default)]
pub struct LoopDeps {
    /// Memory-carried recurrences.
    pub mem: Vec<MemRecurrence>,
    /// Register-carried recurrences (excluding pure induction variables).
    pub scalar: Vec<ScalarRecurrence>,
    /// Whether some access in the loop could not be analysed and a
    /// dependence had to be assumed conservatively.
    pub conservative: bool,
}

impl LoopDeps {
    /// Whether the loop carries any dependence (the paper's unrolling
    /// eligibility test: "tries unrolling loops without loop-carried
    /// dependencies").
    pub fn has_carried(&self) -> bool {
        !self.mem.is_empty() || !self.scalar.is_empty() || self.conservative
    }

    /// Whether every carried dependence is a *pure scalar reduction*: a
    /// register accumulation through one commutative operation. Such loops
    /// can still be unrolled by splitting the accumulator into partial sums
    /// (the standard HLS reduction transform); the recurrence II is untouched
    /// but throughput scales with the unroll factor.
    pub fn is_reduction_only(&self, func: &Function) -> bool {
        use cayman_ir::instr::BinOp;
        if !self.mem.is_empty() || self.conservative || self.scalar.is_empty() {
            return false;
        }
        self.scalar.iter().all(|r| {
            matches!(r.chain.as_slice(), [single] if matches!(
                func.instr(*single),
                Instr::Binary {
                    op: BinOp::Add
                        | BinOp::Mul
                        | BinOp::FAdd
                        | BinOp::FMul
                        | BinOp::Min
                        | BinOp::Max
                        | BinOp::FMin
                        | BinOp::FMax,
                    ..
                }
            ))
        })
    }
}

/// Computes [`LoopDeps`] for every loop of a function.
pub fn analyse_loop_deps(
    func: &Function,
    ctx: &FuncCtx,
    scev: &mut Scev<'_>,
    accesses: &AccessAnalysis,
) -> Vec<LoopDeps> {
    let _s = cayman_obs::span!("analyse.memdep");
    ctx.forest
        .ids()
        .map(|l| analyse_one_loop(func, ctx, scev, accesses, l))
        .collect()
}

fn analyse_one_loop(
    func: &Function,
    ctx: &FuncCtx,
    scev: &mut Scev<'_>,
    accesses: &AccessAnalysis,
    l: LoopId,
) -> LoopDeps {
    let lp = ctx.forest.get(l);
    let blocks = &lp.blocks;
    let mut deps = LoopDeps::default();

    // ---- memory recurrences ------------------------------------------------
    let in_loop: Vec<&crate::access::AccessInfo> = accesses.within(blocks).collect();
    for st in in_loop.iter().filter(|a| a.is_store) {
        for ld in in_loop.iter().filter(|a| !a.is_store) {
            if st.array != ld.array {
                continue;
            }
            match (&st.addr, &ld.addr) {
                (Some(sa), Some(la)) => {
                    // Symbols defined inside the loop make the comparison
                    // unreliable → conservative dependence.
                    let symbolic_inside = sa
                        .symbols
                        .keys()
                        .chain(la.symbols.keys())
                        .any(|&s| blocks.contains(&scev.def_block_of(s)));
                    if symbolic_inside {
                        deps.conservative = true;
                        continue;
                    }
                    let diff = sa.sub(la);
                    let sc = sa.coeff(l);
                    let lc = la.coeff(l);
                    if sc == lc {
                        // Same per-iteration movement. Remaining difference
                        // decides the distance.
                        let mut rest = diff.clone();
                        rest.iv_coeffs.remove(&l);
                        if !rest.is_constant() {
                            // Differ by an inner/outer IV or symbol: may
                            // collide across iterations → conservative.
                            deps.conservative = true;
                            continue;
                        }
                        let delta = rest.constant;
                        if sc == 0 {
                            if delta == 0 {
                                // Identical, loop-invariant address: carried
                                // every iteration (the z[i] accumulation).
                                deps.mem.push(MemRecurrence {
                                    store: st.instr,
                                    load: ld.instr,
                                    distance: 1,
                                    chain: value_chain(func, ld.instr, st.instr, blocks),
                                });
                            }
                            // delta != 0 with both invariant: disjoint
                            // addresses, no dependence.
                        } else if delta % sc == 0 {
                            let d = delta / sc;
                            if d > 0 {
                                // store[i] read back d iterations later
                                deps.mem.push(MemRecurrence {
                                    store: st.instr,
                                    load: ld.instr,
                                    distance: d as u64,
                                    chain: value_chain(func, ld.instr, st.instr, blocks),
                                });
                            }
                            // d == 0: same-iteration flow, handled by intra-
                            // iteration scheduling; d < 0: anti direction,
                            // no pipeline constraint in our model.
                        }
                        // non-divisible delta: accesses interleave without
                        // colliding.
                    } else {
                        // Different strides over the same array: assume a
                        // dependence (conservative).
                        deps.conservative = true;
                    }
                }
                _ => {
                    deps.conservative = true;
                }
            }
        }
    }

    // ---- scalar recurrences ------------------------------------------------
    for &iid in &func.block(lp.header).instrs {
        let Instr::Phi { incomings, .. } = func.instr(iid) else {
            break;
        };
        let Some(phi_val) = func.result_of(iid) else {
            continue;
        };
        // Pure IVs are exempt.
        if scev.iv_of(phi_val).is_some() {
            continue;
        }
        // Does the latch incoming reach back to the phi?
        let latch_vals: Vec<Operand> = incomings
            .iter()
            .filter(|(b, _)| lp.latches.contains(b))
            .map(|(_, v)| *v)
            .collect();
        for lv in latch_vals {
            let Some(start) = lv.as_value() else { continue };
            if let Some(chain) = def_chain_to(func, start, phi_val, blocks) {
                deps.scalar.push(ScalarRecurrence { phi: iid, chain });
                break;
            }
        }
    }

    deps
}

/// DFS over value definitions from `from` back to `target` (a phi), staying
/// inside `blocks`. Returns the instructions on one such path.
fn def_chain_to(
    func: &Function,
    from: cayman_ir::ValueId,
    target: cayman_ir::ValueId,
    blocks: &[cayman_ir::BlockId],
) -> Option<Vec<InstrId>> {
    fn go(
        func: &Function,
        v: cayman_ir::ValueId,
        target: cayman_ir::ValueId,
        blocks: &[cayman_ir::BlockId],
        seen: &mut Vec<cayman_ir::ValueId>,
        path: &mut Vec<InstrId>,
    ) -> bool {
        if v == target {
            return true;
        }
        if seen.contains(&v) {
            return false;
        }
        seen.push(v);
        let ValueDef::Instr(iid) = func.values[v.index()] else {
            return false;
        };
        let Some(b) = func.containing_block(iid) else {
            return false;
        };
        if !blocks.contains(&b) {
            return false;
        }
        // Phis other than the target stop the walk (they carry other values).
        if matches!(func.instr(iid), Instr::Phi { .. }) {
            return false;
        }
        path.push(iid);
        let mut found = false;
        func.instr(iid).for_each_operand(|op| {
            if found {
                return;
            }
            if let Operand::Value(u) = op {
                if go(func, u, target, blocks, seen, path) {
                    found = true;
                }
            }
        });
        if !found {
            path.pop();
        }
        found
    }
    let mut seen = Vec::new();
    let mut path = Vec::new();
    go(func, from, target, blocks, &mut seen, &mut path).then_some(path)
}

/// Instructions on the load→store value chain (both inclusive).
fn value_chain(
    func: &Function,
    load: InstrId,
    store: InstrId,
    blocks: &[cayman_ir::BlockId],
) -> Vec<InstrId> {
    // The store's value operand leads back to the load result.
    let Instr::Store { value, .. } = func.instr(store) else {
        return vec![load, store];
    };
    let Some(load_val) = func.result_of(load) else {
        return vec![load, store];
    };
    let mut chain = vec![load];
    if let Some(start) = value.as_value() {
        if let Some(mid) = def_chain_to_instr(func, start, load_val, blocks) {
            chain.extend(mid);
        }
    }
    chain.push(store);
    chain
}

fn def_chain_to_instr(
    func: &Function,
    from: cayman_ir::ValueId,
    target: cayman_ir::ValueId,
    blocks: &[cayman_ir::BlockId],
) -> Option<Vec<InstrId>> {
    fn go(
        func: &Function,
        v: cayman_ir::ValueId,
        target: cayman_ir::ValueId,
        blocks: &[cayman_ir::BlockId],
        seen: &mut Vec<cayman_ir::ValueId>,
        path: &mut Vec<InstrId>,
    ) -> bool {
        if v == target {
            return true;
        }
        if seen.contains(&v) {
            return false;
        }
        seen.push(v);
        let ValueDef::Instr(iid) = func.values[v.index()] else {
            return false;
        };
        let Some(b) = func.containing_block(iid) else {
            return false;
        };
        if !blocks.contains(&b) {
            return false;
        }
        path.push(iid);
        let mut found = false;
        func.instr(iid).for_each_operand(|op| {
            if found {
                return;
            }
            if let Operand::Value(u) = op {
                if go(func, u, target, blocks, seen, path) {
                    found = true;
                }
            }
        });
        if !found {
            path.pop();
        }
        found
    }
    let mut seen = Vec::new();
    let mut path = Vec::new();
    go(func, from, target, blocks, &mut seen, &mut path).then_some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cayman_ir::builder::ModuleBuilder;
    use cayman_ir::{FuncId, Type};

    fn deps_for(m: &cayman_ir::Module) -> (Vec<LoopDeps>, FuncCtx) {
        let f = m.function(FuncId(0));
        let ctx = FuncCtx::compute(f);
        let mut scev = Scev::new(f, &ctx);
        let aa = AccessAnalysis::run(m, f, &ctx, &mut scev);
        let deps = analyse_loop_deps(f, &ctx, &mut scev, &aa);
        (deps, ctx)
    }

    #[test]
    fn memory_accumulation_is_carried_in_inner_loop_only() {
        // z[i] += A[i][j]*B[i][j]: inner loop carries (z invariant in j),
        // outer loop does not (z[i] moves with i).
        let mut mb = ModuleBuilder::new("t");
        let a = mb.array("A", Type::F64, &[8, 4]);
        let b = mb.array("B", Type::F64, &[8, 4]);
        let z = mb.array("z", Type::F64, &[8]);
        mb.function("f", &[], None, |fb| {
            fb.counted_loop(0, 8, 1, |fb, i| {
                fb.counted_loop(0, 4, 1, |fb, j| {
                    let av = fb.load_idx(a, &[i, j]);
                    let bv = fb.load_idx(b, &[i, j]);
                    let p = fb.fmul(av, bv);
                    let zv = fb.load_idx(z, &[i]);
                    let s = fb.fadd(zv, p);
                    fb.store_idx(z, &[i], s);
                });
            });
            fb.ret(None);
        });
        let m = mb.finish();
        let (deps, ctx) = deps_for(&m);
        let inner = ctx
            .forest
            .ids()
            .find(|&l| ctx.forest.get(l).depth == 2)
            .expect("inner");
        let outer = ctx
            .forest
            .ids()
            .find(|&l| ctx.forest.get(l).depth == 1)
            .expect("outer");
        assert!(deps[inner.index()].has_carried(), "inner carries z[i]");
        assert_eq!(deps[inner.index()].mem.len(), 1);
        let rec = &deps[inner.index()].mem[0];
        assert_eq!(rec.distance, 1);
        // chain includes load z, fadd, store z (≥3 instrs)
        assert!(rec.chain.len() >= 3, "{:?}", rec.chain);
        assert!(
            !deps[outer.index()].has_carried(),
            "outer iterations touch disjoint z[i]"
        );
    }

    #[test]
    fn elementwise_loop_has_no_deps() {
        let mut mb = ModuleBuilder::new("t");
        let x = mb.array("x", Type::F64, &[8]);
        let y = mb.array("y", Type::F64, &[8]);
        mb.function("f", &[], None, |fb| {
            fb.counted_loop(0, 8, 1, |fb, i| {
                let v = fb.load_idx(x, &[i]);
                let w = fb.fmul(v, fb.fconst(2.0));
                fb.store_idx(y, &[i], w);
            });
            fb.ret(None);
        });
        let m = mb.finish();
        let (deps, _) = deps_for(&m);
        assert!(!deps[0].has_carried());
    }

    #[test]
    fn scalar_reduction_is_carried() {
        let mut mb = ModuleBuilder::new("t");
        let x = mb.array("x", Type::F64, &[8]);
        mb.function("f", &[], Some(Type::F64), |fb| {
            let init = fb.fconst(0.0);
            let f = fb.counted_loop_carry(0, 8, 1, &[(Type::F64, init)], |fb, i, c| {
                let v = fb.load_idx(x, &[i]);
                vec![fb.fadd(c[0], v)]
            });
            fb.ret(Some(f[0]));
        });
        let m = mb.finish();
        let (deps, _) = deps_for(&m);
        assert!(deps[0].has_carried());
        assert_eq!(deps[0].scalar.len(), 1);
        // the chain contains the fadd
        assert!(!deps[0].scalar[0].chain.is_empty());
        assert!(deps[0].mem.is_empty(), "reduction is register-carried");
    }

    #[test]
    fn indirect_store_is_conservative() {
        let mut mb = ModuleBuilder::new("t");
        let idx = mb.array("idx", Type::I64, &[8]);
        let x = mb.array("x", Type::F64, &[8]);
        mb.function("f", &[], None, |fb| {
            fb.counted_loop(0, 8, 1, |fb, i| {
                let k = fb.load_idx_ty(idx, &[i], Type::I64);
                let v = fb.load_idx(x, &[k]);
                fb.store_idx(x, &[k], v);
            });
            fb.ret(None);
        });
        let m = mb.finish();
        let (deps, _) = deps_for(&m);
        assert!(deps[0].conservative);
        assert!(deps[0].has_carried());
    }

    #[test]
    fn shifted_stream_has_distance() {
        // y[i] = y[i-1] + x[i] as: load y[i-1+1... store y[i], load y[i-1]
        let mut mb = ModuleBuilder::new("t");
        let x = mb.array("x", Type::F64, &[9]);
        let y = mb.array("y", Type::F64, &[9]);
        mb.function("f", &[], None, |fb| {
            fb.counted_loop(1, 9, 1, |fb, i| {
                let one = fb.iconst(1);
                let im1 = fb.sub(i, one);
                let prev = fb.load_idx(y, &[im1]);
                let xv = fb.load_idx(x, &[i]);
                let s = fb.fadd(prev, xv);
                fb.store_idx(y, &[i], s);
            });
            fb.ret(None);
        });
        let m = mb.finish();
        let (deps, _) = deps_for(&m);
        assert_eq!(deps[0].mem.len(), 1, "y store feeds y load");
        assert_eq!(deps[0].mem[0].distance, 1);
    }
}
