//! Legality analysis for partitioned memory interfaces.
//!
//! Two questions the HLS layer asks before it may assign an extended
//! interface to an array:
//!
//! * **Banked scratchpads** — do the `unroll` copies of an access with a
//!   known [`LinExpr`](crate::scev::LinExpr) stride hit pairwise-distinct
//!   banks under cyclic interleaving ([`bank_conflict_free`])? Only then do
//!   the extra bank ports actually raise throughput; a conflicting
//!   assignment would serialize at the bank and the modeled II would be a
//!   lie.
//! * **Line buffers** — do an array's loads inside a loop nest form a
//!   sliding window over two adjacent loop dimensions
//!   ([`stencil_window`])? Then rows can be retained in shift registers and
//!   only one new element fetched per iteration.
//!
//! Both are pure integer lemmas over analysis facts; they live here rather
//! than in `cayman-hls` so the property tests can pin them against
//! brute-force oracles without pulling in the cost model.

use crate::scev::LinExpr;
use cayman_ir::loops::LoopId;

/// Greatest common divisor (non-negative inputs, `gcd(0, b) = b`).
fn gcd(mut a: u64, mut b: u64) -> u64 {
    while a != 0 {
        (a, b) = (b % a, a);
    }
    b
}

/// The largest unroll factor for which an access of the given element
/// stride is conflict-free across `banks` cyclically interleaved banks.
///
/// Unrolled copy `c` touches address `base + stride * c`; its bank is that
/// address mod `banks`. The bank sequence is periodic with period
/// `banks / gcd(|stride| mod banks, banks)`, so that period is exactly the
/// number of leading copies with pairwise-distinct banks. A stride that is
/// a multiple of `banks` (including 0) keeps every copy in one bank and
/// returns 1.
pub fn max_conflict_free_unroll(stride: i64, banks: u32) -> u32 {
    assert!(banks > 0, "a memory has at least one bank");
    let b = u64::from(banks);
    let s = stride.unsigned_abs() % b;
    (b / gcd(s, b)) as u32
}

/// Whether `unroll` parallel copies of an access with the given stride are
/// pairwise conflict-free across `banks` cyclic banks.
///
/// `unroll == 0` (no copies) and `unroll == 1` are trivially conflict-free.
pub fn bank_conflict_free(stride: i64, banks: u32, unroll: u32) -> bool {
    unroll <= 1 || unroll <= max_conflict_free_unroll(stride, banks)
}

/// A rectangular sliding window detected over an array's loads — the
/// legality fact behind a line-buffer interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StencilWindow {
    /// Window height: distinct row offsets (≥ 2, or a plain stream would do).
    pub rows: u32,
    /// Window width: distinct column offsets within a row.
    pub cols: u32,
    /// Elements per row of the underlying array (the `col_loop`-to-next-row
    /// distance); the line buffer stores `rows - 1` rows of this length.
    pub row_stride: i64,
}

/// Detects a stencil window over the flat affine addresses of one array's
/// loads, relative to a `(row_loop, col_loop)` nest.
///
/// Requirements, checked in order:
///
/// * every address is affine with **no** symbolic terms (a symbol means the
///   access pattern is input-dependent and no reuse window is provable);
/// * all addresses share identical IV coefficients — they are translates of
///   one another, differing only in the constant offset;
/// * the column coefficient is exactly 1 (unit stride along the streamed
///   dimension) and the row coefficient `W` is ≥ 2 (the array's row
///   length);
/// * the constant offsets, relative to the smallest, decompose as
///   `r * W + c` with `0 ≤ c < W`; the window is `(max r + 1)` rows by
///   `(max c + 1)` columns;
/// * at least two rows and at most `W` columns — a one-row window is an
///   ordinary stream and wants no line buffer.
pub fn stencil_window(
    addrs: &[LinExpr],
    row_loop: LoopId,
    col_loop: LoopId,
) -> Option<StencilWindow> {
    let (first, rest) = addrs.split_first()?;
    if !first.symbols.is_empty() || rest.iter().any(|a| !a.symbols.is_empty()) {
        return None;
    }
    if rest.iter().any(|a| a.iv_coeffs != first.iv_coeffs) {
        return None;
    }
    let w = first.coeff(row_loop);
    if first.coeff(col_loop) != 1 || w < 2 {
        return None;
    }
    let base = addrs.iter().map(|a| a.constant).min()?;
    let mut rows = 0i64;
    let mut cols = 0i64;
    for a in addrs {
        let delta = a.constant.checked_sub(base)?;
        let (r, c) = (delta.div_euclid(w), delta.rem_euclid(w));
        rows = rows.max(r + 1);
        cols = cols.max(c + 1);
    }
    // The decomposition is only meaningful while the window is narrower
    // than a row; `rows >= 2` is what distinguishes a stencil from a
    // stream.
    if rows < 2 || cols > w {
        return None;
    }
    Some(StencilWindow {
        rows: rows as u32,
        cols: cols as u32,
        row_stride: w,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cayman_ir::loops::LoopId;

    #[test]
    fn unit_stride_fills_every_bank() {
        assert_eq!(max_conflict_free_unroll(1, 4), 4);
        assert_eq!(max_conflict_free_unroll(-1, 4), 4);
        assert!(bank_conflict_free(1, 4, 4));
        assert!(!bank_conflict_free(1, 4, 5));
    }

    #[test]
    fn even_stride_on_power_of_two_banks_conflicts() {
        // stride 2 over 4 banks: copies hit banks {0, 2, 0, 2}.
        assert_eq!(max_conflict_free_unroll(2, 4), 2);
        assert!(bank_conflict_free(2, 4, 2));
        assert!(!bank_conflict_free(2, 4, 3));
        // stride 4 over 4 banks: everything lands in one bank.
        assert_eq!(max_conflict_free_unroll(4, 4), 1);
        assert!(!bank_conflict_free(4, 4, 2));
    }

    #[test]
    fn odd_strides_are_coprime_with_power_of_two_banks() {
        for s in [1i64, 3, 5, 7, 9, 31] {
            assert_eq!(max_conflict_free_unroll(s, 8), 8, "stride {s}");
        }
    }

    #[test]
    fn zero_and_degenerate_unrolls() {
        assert!(bank_conflict_free(0, 4, 1));
        assert!(bank_conflict_free(0, 4, 0));
        assert!(!bank_conflict_free(0, 4, 2));
    }

    fn addr(row: LoopId, col: LoopId, w: i64, off: i64) -> LinExpr {
        LinExpr::iv(row, w)
            .add(&LinExpr::iv(col, 1))
            .add(&LinExpr::constant(off))
    }

    #[test]
    fn three_by_three_window_is_detected() {
        let (row, col) = (LoopId(0), LoopId(1));
        let w = 7;
        let addrs: Vec<LinExpr> = (-1..=1)
            .flat_map(|r| (-1..=1).map(move |c| (r, c)))
            .map(|(r, c)| addr(row, col, w, r * w + c))
            .collect();
        let win = stencil_window(&addrs, row, col).expect("3x3 window");
        assert_eq!(
            win,
            StencilWindow {
                rows: 3,
                cols: 3,
                row_stride: w
            }
        );
    }

    #[test]
    fn single_row_is_not_a_stencil() {
        let (row, col) = (LoopId(0), LoopId(1));
        let addrs: Vec<LinExpr> = (0..3).map(|c| addr(row, col, 16, c)).collect();
        assert_eq!(stencil_window(&addrs, row, col), None);
    }

    #[test]
    fn mismatched_coefficients_or_symbols_bail() {
        let (row, col) = (LoopId(0), LoopId(1));
        let mut addrs = vec![addr(row, col, 8, 0), addr(row, col, 8, 8)];
        // A second load with a different column stride is no translate.
        addrs.push(LinExpr::iv(row, 8).add(&LinExpr::iv(col, 2)));
        assert_eq!(stencil_window(&addrs, row, col), None);

        let sym = LinExpr::symbol(cayman_ir::ValueId(3));
        let addrs = vec![addr(row, col, 8, 0), addr(row, col, 8, 8).add(&sym)];
        assert_eq!(stencil_window(&addrs, row, col), None);
    }

    #[test]
    fn vertical_only_window_counts_rows() {
        // Loads at offsets {-W, 0, +W}: a 3x1 column window.
        let (row, col) = (LoopId(0), LoopId(1));
        let w = 12;
        let addrs: Vec<LinExpr> = [-w, 0, w].iter().map(|&o| addr(row, col, w, o)).collect();
        let win = stencil_window(&addrs, row, col).expect("3x1 window");
        assert_eq!(win.rows, 3);
        assert_eq!(win.cols, 1);
    }
}
