//! Per-pass unit tests for the normalization pipeline, written against
//! textual IR fixtures: each test parses a small module exhibiting exactly
//! one rewrite opportunity, runs one pass (or the whole pipeline), and
//! checks both the structural rewrite and unchanged semantics.

use cayman_ir::instr::{Imm, Instr, Operand, Terminator};
use cayman_ir::interp::{Interp, Value};
use cayman_ir::transform::{
    normalize, Changed, Compact, ConstFold, Dce, Gvn, OptLevel, Pass, PassManager, SimplifyCfg,
};
use cayman_ir::Module;

fn parse(src: &str) -> Module {
    let m = Module::parse_text(src).expect("fixture parses");
    m.verify().expect("fixture verifies");
    m
}

/// Total placed instructions across all blocks of the entry function.
fn placed_instrs(m: &Module) -> usize {
    let f = &m.functions[0];
    f.block_ids().map(|b| f.block(b).instrs.len()).sum()
}

fn run_i64(m: &Module, args: &[Value]) -> Option<Value> {
    Interp::new(m).run(args).expect("runs").return_value
}

#[test]
fn simplify_cfg_folds_constant_branches_and_merges_chains() {
    let mut m = parse(
        "; module t
fn @main() -> i64 {
bb0: ; entry
  br true ? bb1 : bb2
bb1: ; taken
  ret 1
bb2: ; dead
  ret 2
}
",
    );
    assert_eq!(SimplifyCfg.run(&mut m), Changed::Yes);
    m.verify().expect("still verifies");
    // Constant branch folded, dead block dropped, chain merged: one block
    // that returns the taken value directly.
    let f = &m.functions[0];
    assert_eq!(f.blocks.len(), 1);
    assert!(matches!(
        f.block(f.entry()).terminator(),
        Terminator::Ret(Some(Operand::Const(Imm::Int(1))))
    ));
    assert_eq!(run_i64(&m, &[]), Some(Value::I(1)));
    // Idempotent on the simplified module.
    assert_eq!(SimplifyCfg.run(&mut m), Changed::No);
}

#[test]
fn simplify_cfg_prunes_phi_incomings_from_deleted_predecessors() {
    let mut m = parse(
        "; module t
fn @main(i64 %0) -> i64 {
bb0: ; entry
  br false ? bb1 : bb2
bb1: ; dead
  br bb3
bb2: ; live
  br bb3
bb3: ; join
  %1 = phi i64 [bb1: 7], [bb2: %0]
  ret %1
}
",
    );
    assert_eq!(SimplifyCfg.run(&mut m), Changed::Yes);
    m.verify().expect("still verifies");
    // bb1 died with the folded branch; its phi incoming must go with it,
    // and the then-single-incoming phi is forwarded through block merging.
    let f = &m.functions[0];
    assert_eq!(f.blocks.len(), 1);
    assert_eq!(run_i64(&m, &[Value::I(41)]), Some(Value::I(41)));
}

#[test]
fn simplify_cfg_dedupes_same_target_conditional_branches() {
    // `br %c ? bb1 : bb1` must become a plain `br bb1`, keeping the first
    // incoming of bb1's phi (the walker's `find` semantics).
    let mut m = parse(
        "; module t
fn @main(i1 %0) -> i64 {
bb0: ; entry
  br %0 ? bb1 : bb1
bb1: ; join
  %1 = phi i64 [bb0: 5], [bb0: 9]
  ret %1
}
",
    );
    let before = run_i64(&m, &[Value::B(false)]);
    assert_eq!(SimplifyCfg.run(&mut m), Changed::Yes);
    m.verify().expect("still verifies");
    assert_eq!(run_i64(&m, &[Value::B(false)]), before);
    assert_eq!(run_i64(&m, &[Value::B(true)]), Some(Value::I(5)));
}

#[test]
fn constfold_evaluates_constant_expressions() {
    let mut m = parse(
        "; module t
fn @main() -> i64 {
bb0: ; entry
  %0 = add i64 2, 3
  %1 = mul i64 %0, 4
  %2 = smax i64 %1, 7
  ret %2
}
",
    );
    assert_eq!(ConstFold.run(&mut m), Changed::Yes);
    m.verify().expect("still verifies");
    let f = &m.functions[0];
    assert!(matches!(
        f.block(f.entry()).terminator(),
        Terminator::Ret(Some(Operand::Const(Imm::Int(20))))
    ));
    assert_eq!(run_i64(&m, &[]), Some(Value::I(20)));
}

#[test]
fn constfold_leaves_trapping_constants_alone() {
    // `sdiv 1, 0` errors at runtime; folding it away (or into anything)
    // would change observable behavior, so it must survive and still trap.
    let mut m = parse(
        "; module t
fn @main() -> i64 {
bb0: ; entry
  %0 = sdiv i64 1, 0
  ret %0
}
",
    );
    assert_eq!(ConstFold.run(&mut m), Changed::No);
    let e = Interp::new(&m).run(&[]).expect_err("still traps");
    assert_eq!(e.message, "integer division by zero");
}

#[test]
fn constfold_forwards_single_value_phis() {
    let mut m = parse(
        "; module t
fn @main(i1 %0) -> i64 {
bb0: ; entry
  br %0 ? bb1 : bb2
bb1: ; a
  br bb3
bb2: ; b
  br bb3
bb3: ; join
  %1 = phi i64 [bb1: 11], [bb2: 11]
  %2 = add i64 %1, 1
  ret %2
}
",
    );
    assert_eq!(ConstFold.run(&mut m), Changed::Yes);
    m.verify().expect("still verifies");
    // The all-same phi's uses collapse to the constant.
    let f = &m.functions[0];
    let adds_const = f.block_ids().any(|b| {
        f.block(b).instrs.iter().any(|&i| {
            matches!(
                f.instr(i),
                Instr::Binary {
                    lhs: Operand::Const(Imm::Int(11)),
                    ..
                }
            )
        })
    });
    assert!(
        adds_const,
        "add should now read the folded constant:\n{}",
        m.to_text()
    );
    assert_eq!(run_i64(&m, &[Value::B(true)]), Some(Value::I(12)));
}

#[test]
fn gvn_deduplicates_dominating_address_computations() {
    let mut m = parse(
        "; module t
array f64 @A [8]

fn @main(i64 %0) -> f64 {
bb0: ; entry
  %1 = gep @A[%0]
  %2 = load f64, %1
  br bb1
bb1: ; again
  %3 = gep @A[%0]
  %4 = load f64, %3
  %5 = fadd f64 %2, %4
  ret %5
}
",
    );
    assert_eq!(placed_instrs(&m), 5);
    assert_eq!(Gvn.run(&mut m), Changed::Yes);
    m.verify().expect("still verifies");
    // The dominated duplicate gep is gone; the loads (never value-numbered:
    // memory may change between them) both read through the surviving one.
    assert_eq!(placed_instrs(&m), 4);
    let f = &m.functions[0];
    let geps = f
        .block_ids()
        .flat_map(|b| f.block(b).instrs.iter())
        .filter(|&&i| matches!(f.instr(i), Instr::Gep { .. }))
        .count();
    assert_eq!(geps, 1);
    let mut interp = Interp::new(&m);
    let a = m.array_ids().next().expect("array");
    interp.memory.set_f64(a, 3, 2.5);
    let out = interp.run(&[Value::I(3)]).expect("runs").return_value;
    assert_eq!(out, Some(Value::F(5.0)));
}

#[test]
fn gvn_does_not_merge_across_sibling_branches() {
    // The same expression in two sibling arms: neither dominates the other,
    // so both must survive.
    let mut m = parse(
        "; module t
fn @main(i1 %0, i64 %1) -> i64 {
bb0: ; entry
  br %0 ? bb1 : bb2
bb1: ; a
  %2 = add i64 %1, 1
  br bb3
bb2: ; b
  %3 = add i64 %1, 1
  br bb3
bb3: ; join
  %4 = phi i64 [bb1: %2], [bb2: %3]
  ret %4
}
",
    );
    assert_eq!(Gvn.run(&mut m), Changed::No);
    assert_eq!(placed_instrs(&m), 3);
}

#[test]
fn dce_removes_dead_trap_free_code_but_keeps_potential_traps() {
    let mut m = parse(
        "; module t
fn @main(i64 %0) -> i64 {
bb0: ; entry
  %1 = add i64 %0, 1
  %2 = mul i64 %1, %1
  %3 = sdiv i64 1, %0
  ret %0
}
",
    );
    assert_eq!(Dce.run(&mut m), Changed::Yes);
    m.verify().expect("still verifies");
    // %1/%2 are dead and provably trap-free → gone. %3 is dead but divides
    // by a runtime value → must stay and still trap on zero.
    assert_eq!(placed_instrs(&m), 1);
    assert_eq!(run_i64(&m, &[Value::I(7)]), Some(Value::I(7)));
    let e = Interp::new(&m)
        .run(&[Value::I(0)])
        .expect_err("still traps");
    assert_eq!(e.message, "integer division by zero");
}

#[test]
fn dce_keeps_stores_and_calls() {
    let mut m = parse(
        "; module t
array i64 @A [4]

fn @helper() -> i64 {
bb0: ; entry
  %0 = gep @A[0]
  store i64 9, %0
  ret 0
}

fn @main() -> i64 {
bb0: ; entry
  %0 = call i64 @helper()
  %1 = gep @A[0]
  %2 = load i64, %1
  ret %2
}
",
    );
    // The call's result is dead but the callee stores; the store itself has
    // no result at all. Neither may be deleted.
    Dce.run(&mut m);
    m.verify().expect("still verifies");
    assert_eq!(run_i64(&m, &[]), Some(Value::I(9)));
}

#[test]
fn compact_rebuilds_the_arena_after_unlinking() {
    let mut m = parse(
        "; module t
fn @main(i64 %0) -> i64 {
bb0: ; entry
  %1 = add i64 %0, 2
  %2 = add i64 %0, 2
  %3 = add i64 %1, %2
  ret %3
}
",
    );
    // GVN unlinks the duplicate but leaves it in the arena...
    assert_eq!(Gvn.run(&mut m), Changed::Yes);
    let arena_before = m.functions[0].instrs.len();
    assert_eq!(arena_before, 3);
    assert_eq!(placed_instrs(&m), 2);
    // ...and Compact renumbers it away.
    assert_eq!(Compact.run(&mut m), Changed::Yes);
    m.verify().expect("still verifies");
    assert_eq!(m.functions[0].instrs.len(), 2);
    assert_eq!(placed_instrs(&m), 2);
    assert_eq!(run_i64(&m, &[Value::I(5)]), Some(Value::I(14)));
    // Nothing left to drop.
    assert_eq!(Compact.run(&mut m), Changed::No);
}

#[test]
fn pass_manager_reports_stats_and_reaches_a_fixed_point() {
    let mut m = parse(
        "; module t
fn @main(i64 %0) -> i64 {
bb0: ; entry
  %1 = add i64 2, 3
  %2 = add i64 %0, %1
  %3 = add i64 %0, %1
  %4 = add i64 %2, %3
  br true ? bb1 : bb2
bb1: ; live
  ret %4
bb2: ; dead
  ret 0
}
",
    );
    let before = run_i64(&m, &[Value::I(10)]);
    let stats = PassManager::standard()
        .verify_each_pass(true)
        .run(&mut m)
        .expect("pipeline verifies between passes");
    m.verify().expect("result verifies");
    assert_eq!(run_i64(&m, &[Value::I(10)]), before);

    assert!(stats.total_changes() > 0);
    assert!(stats.iterations >= 2, "fixed point needs a no-change sweep");
    assert!(stats.verify_runs >= 2);
    let line = stats.to_string();
    for pass in ["simplify-cfg", "constfold", "gvn", "dce", "compact"] {
        assert!(line.contains(pass), "missing `{pass}` in `{line}`");
    }
    assert!(line.starts_with("normalize:"), "{line}");

    // Re-running the whole pipeline is a no-op.
    let again = PassManager::standard().run(&mut m).expect("no verify");
    assert_eq!(again.total_changes(), 0);
}

#[test]
fn normalize_o0_is_identity_and_o1_shrinks() {
    let src = "; module t
fn @main() -> i64 {
bb0: ; entry
  %0 = add i64 20, 1
  %1 = mul i64 %0, 2
  ret %1
}
";
    let mut m0 = parse(src);
    let stats0 = normalize(&mut m0, OptLevel::O0, true).expect("O0");
    assert_eq!(stats0.iterations, 0);
    assert_eq!(m0.to_text(), parse(src).to_text());

    let mut m1 = parse(src);
    let stats1 = normalize(&mut m1, OptLevel::O1, true).expect("O1");
    assert!(stats1.total_changes() > 0);
    assert_eq!(placed_instrs(&m1), 0);
    assert_eq!(run_i64(&m1, &[]), Some(Value::I(42)));
}
