//! Property-based tests of the interpreter against host-side oracles.

use cayman_ir::builder::ModuleBuilder;
use cayman_ir::interp::{Interp, Value};
use cayman_ir::{BinOp, Operand, Type};
use cayman_testkit::{prop_assert_eq, prop_check, Rng};

/// A small integer-expression AST mirrored on the host.
#[derive(Debug, Clone)]
enum Expr {
    Const(i32),
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    Min(Box<Expr>, Box<Expr>),
    Max(Box<Expr>, Box<Expr>),
}

/// A random expression of depth at most `depth` (leaves become more likely
/// as the depth budget shrinks).
fn gen_expr(rng: &mut Rng, depth: u32) -> Expr {
    if depth == 0 || rng.range_u32(0, 4) == 0 {
        return Expr::Const(rng.next_u32() as i32);
    }
    let a = Box::new(gen_expr(rng, depth - 1));
    let b = Box::new(gen_expr(rng, depth - 1));
    match rng.range_u32(0, 5) {
        0 => Expr::Add(a, b),
        1 => Expr::Sub(a, b),
        2 => Expr::Mul(a, b),
        3 => Expr::Min(a, b),
        _ => Expr::Max(a, b),
    }
}

fn eval_host(e: &Expr) -> i64 {
    match e {
        Expr::Const(c) => *c as i64,
        Expr::Add(a, b) => eval_host(a).wrapping_add(eval_host(b)),
        Expr::Sub(a, b) => eval_host(a).wrapping_sub(eval_host(b)),
        Expr::Mul(a, b) => eval_host(a).wrapping_mul(eval_host(b)),
        Expr::Min(a, b) => eval_host(a).min(eval_host(b)),
        Expr::Max(a, b) => eval_host(a).max(eval_host(b)),
    }
}

fn emit(fb: &mut cayman_ir::builder::FunctionBuilder, e: &Expr) -> Operand {
    match e {
        Expr::Const(c) => fb.iconst(*c as i64),
        Expr::Add(a, b) => {
            let (x, y) = (emit(fb, a), emit(fb, b));
            fb.add(x, y)
        }
        Expr::Sub(a, b) => {
            let (x, y) = (emit(fb, a), emit(fb, b));
            fb.sub(x, y)
        }
        Expr::Mul(a, b) => {
            let (x, y) = (emit(fb, a), emit(fb, b));
            fb.mul(x, y)
        }
        Expr::Min(a, b) => {
            let (x, y) = (emit(fb, a), emit(fb, b));
            fb.binary(BinOp::Min, Type::I64, x, y)
        }
        Expr::Max(a, b) => {
            let (x, y) = (emit(fb, a), emit(fb, b));
            fb.binary(BinOp::Max, Type::I64, x, y)
        }
    }
}

/// Straight-line integer expressions match the host oracle exactly.
#[test]
fn interpreter_matches_host_arithmetic() {
    prop_check!(|rng| {
        let e = gen_expr(rng, 4);
        let mut mb = ModuleBuilder::new("prop");
        mb.function("main", &[], Some(Type::I64), |fb| {
            let v = emit(fb, &e);
            fb.ret(Some(v));
        });
        let m = mb.finish();
        m.verify().expect("straight-line programs always verify");
        let got = Interp::new(&m).run(&[]).expect("runs").return_value;
        prop_assert_eq!(got, Some(Value::I(eval_host(&e))));
        Ok(())
    });
}

/// A counted loop computing a prefix sum matches the closed form, for
/// arbitrary bounds and strides.
#[test]
fn loop_sums_match_closed_form() {
    prop_check!(|rng| {
        let n = rng.range_i64(1, 200);
        let step = rng.range_i64(1, 7);
        let mut mb = ModuleBuilder::new("prop");
        mb.function("main", &[], Some(Type::I64), |fb| {
            let zero = fb.iconst(0);
            let f = fb.counted_loop_carry(0, n, step, &[(Type::I64, zero)], |fb, i, c| {
                vec![fb.add(c[0], i)]
            });
            fb.ret(Some(f[0]));
        });
        let m = mb.finish();
        m.verify().expect("verifies");
        let got = Interp::new(&m).run(&[]).expect("runs").return_value;
        let expect: i64 = (0..n).step_by(step as usize).sum();
        prop_assert_eq!(got, Some(Value::I(expect)));
        Ok(())
    });
}

/// Memory write→read roundtrips through gep/store/load at arbitrary 2-D
/// coordinates.
#[test]
fn memory_roundtrip() {
    prop_check!(|rng| {
        let rows = rng.range_usize(1, 12);
        let cols = rng.range_usize(1, 12);
        let seed = rng.next_u64();
        let mut mb = ModuleBuilder::new("prop");
        let a = mb.array("A", Type::I64, &[rows, cols]);
        let r = (seed % rows as u64) as i64;
        let c = ((seed / 7) % cols as u64) as i64;
        let v = (seed % 100_003) as i64;
        mb.function("main", &[], Some(Type::I64), |fb| {
            let ri = fb.iconst(r);
            let ci = fb.iconst(c);
            let vi = fb.iconst(v);
            fb.store_idx_ty(a, &[ri, ci], vi, Type::I64);
            let back = fb.load_idx_ty(a, &[ri, ci], Type::I64);
            fb.ret(Some(back));
        });
        let m = mb.finish();
        m.verify().expect("verifies");
        let mut interp = Interp::new(&m);
        let got = interp.run(&[]).expect("runs").return_value;
        prop_assert_eq!(got, Some(Value::I(v)));
        // the flat host-side view agrees
        prop_assert_eq!(interp.memory.get_i64(a, r as usize * cols + c as usize), v);
        Ok(())
    });
}

/// Nested counted loops execute header/body blocks exactly the expected
/// number of times (the profiling substrate must count precisely).
#[test]
fn block_counts_are_exact() {
    prop_check!(|rng| {
        let n = rng.range_i64(1, 20);
        let m = rng.range_i64(1, 20);
        let mut mb = ModuleBuilder::new("prop");
        let a = mb.array("A", Type::F64, &[20, 20]);
        mb.function("main", &[], None, |fb| {
            fb.counted_loop(0, n, 1, |fb, i| {
                fb.counted_loop(0, m, 1, |fb, j| {
                    let v = fb.load_idx(a, &[i, j]);
                    fb.store_idx(a, &[i, j], v);
                });
            });
            fb.ret(None);
        });
        let md = mb.finish();
        md.verify().expect("verifies");
        let prof = Interp::new(&md).run(&[]).expect("runs");
        let f = cayman_ir::FuncId(0);
        // block creation order: 0 entry, 1 outer header, 2 outer body
        // (= inner preheader), 3 outer exit, then the nested loop's blocks:
        // 4 inner header, 5 inner body, 6 inner exit (= outer latch)
        prop_assert_eq!(prof.count(f, cayman_ir::BlockId(1)), (n + 1) as u64);
        prop_assert_eq!(prof.count(f, cayman_ir::BlockId(3)), 1);
        prop_assert_eq!(prof.count(f, cayman_ir::BlockId(4)), (n * (m + 1)) as u64);
        prop_assert_eq!(prof.count(f, cayman_ir::BlockId(5)), (n * m) as u64);
        Ok(())
    });
}
