//! Verifier edge cases: degenerate shapes the pipeline must either reject
//! cleanly (empty function, unreachable block, duplicate phi incomings,
//! operand type mismatches) or handle exactly (zero-trip loops).

use cayman_ir::builder::ModuleBuilder;
use cayman_ir::interp::Interp;
use cayman_ir::{Module, Type};

#[test]
fn empty_function_is_rejected() {
    let mut m = Module::parse_text("fn @f() -> void {\nbb0: ; entry\n  ret\n}\n").expect("parses");
    m.functions[0].blocks.clear();
    let e = m
        .verify()
        .expect_err("a function with no blocks must not verify");
    assert!(e.message.contains("no blocks"), "{e}");
    assert_eq!(e.func, "f");
}

#[test]
fn unreachable_block_is_rejected() {
    let src = "fn @f() -> void {\n\
               bb0: ; entry\n  ret\n\
               bb1: ; island\n  ret\n}\n";
    let m = Module::parse_text(src).expect("parses");
    let e = m.verify().expect_err("unreachable block must not verify");
    assert!(e.message.contains("unreachable"), "{e}");
}

#[test]
fn phi_with_duplicate_incoming_edges_is_rejected() {
    // bb2 has exactly one predecessor (bb1) yet the phi claims two incomings
    // from it — the incoming multiset must match the CFG predecessors.
    let src = "fn @f() -> i64 {\n\
               bb0: ; entry\n  br bb1\n\
               bb1: ; mid\n  br bb2\n\
               bb2: ; join\n  %0 = phi i64 [bb1: 1], [bb1: 2]\n  ret %0\n}\n";
    let m = Module::parse_text(src).expect("parses");
    let e = m
        .verify()
        .expect_err("duplicate phi incomings must not verify");
    assert!(e.message.contains("do not match predecessors"), "{e}");
}

#[test]
fn phi_missing_a_predecessor_is_rejected() {
    // bb2 is reached from both bb0 and bb1 but the phi only covers bb1.
    let src = "fn @f(i1 %0) -> i64 {\n\
               bb0: ; entry\n  br %0 ? bb1 : bb2\n\
               bb1: ; then\n  br bb2\n\
               bb2: ; join\n  %1 = phi i64 [bb1: 1]\n  ret %1\n}\n";
    let m = Module::parse_text(src).expect("parses");
    let e = m.verify().expect_err("incomplete phi must not verify");
    assert!(e.message.contains("do not match predecessors"), "{e}");
}

#[test]
fn binary_operand_type_mismatch_is_rejected() {
    let src = "fn @f() -> f64 {\n\
               bb0: ; entry\n  %0 = add i64 1, 2\n  %1 = fadd f64 %0, 2.0\n  ret %1\n}\n";
    let m = Module::parse_text(src).expect("parses");
    let e = m
        .verify()
        .expect_err("i64 fed to an f64 fadd must not verify");
    assert!(e.message.contains("expected f64"), "{e}");
}

#[test]
fn select_condition_must_be_i1() {
    let src = "fn @f() -> i64 {\n\
               bb0: ; entry\n  %0 = add i64 1, 2\n  %1 = select i64 %0, 1, 2\n  ret %1\n}\n";
    let m = Module::parse_text(src).expect("parses");
    let e = m
        .verify()
        .expect_err("non-i1 select condition must not verify");
    assert!(e.message.contains("expected i1"), "{e}");
}

#[test]
fn store_value_type_mismatch_is_rejected() {
    let src = "; module m\narray f64 @x [4]\n\
               fn @f() -> void {\n\
               bb0: ; entry\n  %0 = add i64 1, 2\n  %1 = gep @x[0]\n  store f64 %0, %1\n  ret\n}\n";
    let m = Module::parse_text(src).expect("parses");
    let e = m.verify().expect_err("i64 stored as f64 must not verify");
    assert!(e.message.contains("expected f64"), "{e}");
}

#[test]
fn zero_trip_loop_verifies_and_never_runs_its_body() {
    // A counted loop over [0, 0): the body must verify like any other loop
    // body and execute exactly zero times.
    let mut mb = ModuleBuilder::new("zero-trip");
    let x = mb.array("x", Type::F64, &[4]);
    mb.function("main", &[], Some(Type::F64), |fb| {
        let zero = fb.fconst(0.0);
        let sum = fb.counted_loop_carry(0, 0, 1, &[(Type::F64, zero)], |fb, i, c| {
            let v = fb.load_idx(x, &[i]);
            vec![fb.fadd(c[0], v)]
        });
        fb.ret(Some(sum[0]));
    });
    let m = mb.finish();
    m.verify().expect("zero-trip loop verifies");

    let mut interp = Interp::new(&m);
    for i in 0..4 {
        interp.memory.set_f64(x, i, 9.0);
    }
    let p = interp.run(&[]).expect("runs");
    assert_eq!(
        p.return_value,
        Some(cayman_ir::interp::Value::F(0.0)),
        "body must not execute"
    );
    // The body block runs zero times; entry and exit still run once each.
    let body_counts = &p.block_counts[0];
    assert!(
        body_counts.contains(&0),
        "some block (the loop body) must have count 0: {body_counts:?}"
    );
}
