//! Property-based differential testing of the pre-decoded engine against
//! the reference tree walker: random loop nests, carried reductions
//! (including swapped carries, which need parallel phi moves), branches,
//! calls, memory traffic, division-by-zero and step-limit error paths must
//! all be observationally identical across both engines.

use cayman_ir::builder::ModuleBuilder;
use cayman_ir::interp::{ExecProfile, Interp, InterpError, Memory, Value};
use cayman_ir::{Module, Type};
use cayman_testkit::{prop_assert, prop_assert_eq, prop_check};

/// Bit-level comparison of two optional return values (`f64` compared via
/// `to_bits` so a NaN-producing program can't silently pass).
fn values_bit_equal(a: &Option<Value>, b: &Option<Value>) -> bool {
    match (a, b) {
        (Some(Value::F(x)), Some(Value::F(y))) => x.to_bits() == y.to_bits(),
        (x, y) => x == y,
    }
}

fn profiles_bit_equal(a: &ExecProfile, b: &ExecProfile) -> bool {
    a.block_counts == b.block_counts
        && a.total_cycles == b.total_cycles
        && values_bit_equal(&a.return_value, &b.return_value)
}

/// Runs `module` under both engines (same memory image, same step limit) and
/// checks the outcomes are identical — profile-for-profile or
/// error-for-error.
fn check_both(
    module: &Module,
    memory: &Memory,
    limit: Option<u64>,
) -> Result<Result<ExecProfile, InterpError>, String> {
    let mut dec = Interp::new(module);
    if dec.engine_name() != "decoded" {
        return Err("verified builder module did not decode".into());
    }
    let mut walk = Interp::reference(module);
    dec.memory = memory.clone();
    walk.memory = memory.clone();
    if let Some(l) = limit {
        dec = dec.with_step_limit(l);
        walk = walk.with_step_limit(l);
    }
    let d = dec.run(&[]);
    let w = walk.run(&[]);
    match (&d, &w) {
        (Ok(dp), Ok(wp)) => {
            if !profiles_bit_equal(dp, wp) {
                return Err(format!(
                    "profiles diverge: decoded {:?}/{} vs walker {:?}/{}",
                    dp.return_value, dp.total_cycles, wp.return_value, wp.total_cycles
                ));
            }
        }
        (Err(de), Err(we)) => {
            if de != we {
                return Err(format!("errors diverge: decoded {de:?} vs walker {we:?}"));
            }
        }
        _ => {
            return Err(format!(
                "outcomes diverge: decoded {:?} vs walker {:?}",
                d.as_ref().map(|p| &p.return_value),
                w.as_ref().map(|p| &p.return_value)
            ))
        }
    }
    Ok(d)
}

/// Random nested loop nests with carried reductions, branches, calls and
/// memory traffic behave identically under both engines.
#[test]
fn decoded_matches_walker_on_random_programs() {
    prop_check!(cases = 96, |rng| {
        // Pre-draw every random choice so the builder closures stay simple.
        let size = rng.range_usize(4, 12);
        let outer = rng.range_i64(1, 10);
        let inner = rng.range_i64(1, 8);
        let swap = rng.bool();
        let with_if = rng.bool();
        let with_call = rng.bool();
        let divisor = rng.range_i64(0, 4); // 0 → division-by-zero error path
        let c0 = rng.range_f64(-2.0, 2.0);
        let c1 = rng.range_f64(-2.0, 2.0);
        let limit = if rng.range_u32(0, 4) == 0 {
            Some(rng.range_i64(1, 200) as u64) // sometimes trip the limit
        } else {
            None
        };
        let fill_seed: Vec<f64> = (0..size * size).map(|_| rng.range_f64(-4.0, 4.0)).collect();

        let mut mb = ModuleBuilder::new("prop");
        let a = mb.array("A", Type::F64, &[size, size]);
        let helper = mb.function("helper", &[Type::I64], Some(Type::I64), |fb| {
            let p = fb.param(0);
            let one = fb.iconst(1);
            let r = fb.add(p, one);
            fb.ret(Some(r));
        });
        mb.function("main", &[], Some(Type::F64), |fb| {
            let init0 = fb.fconst(c0);
            let init1 = fb.fconst(c1);
            let sz = fb.iconst(size as i64);
            let finals = fb.counted_loop_carry(
                0,
                outer,
                1,
                &[(Type::F64, init0), (Type::F64, init1)],
                |fb, i, c| {
                    // Keep indices in bounds via modulo; division errors (not
                    // OOB) are this test's deliberate error path.
                    let im = fb.srem(i, sz);
                    let zero = fb.fconst(0.0);
                    let inner_fin =
                        fb.counted_loop_carry(0, inner, 1, &[(Type::F64, zero)], |fb, j, cc| {
                            let jm = fb.srem(j, sz);
                            let v = fb.load_idx(a, &[im, jm]);
                            vec![fb.fadd(cc[0], v)]
                        });
                    let mut x = inner_fin[0];
                    if with_if {
                        let two = fb.iconst(2);
                        let rem = fb.srem(i, two);
                        let one = fb.iconst(1);
                        let odd = fb.icmp_eq(rem, one);
                        x = fb.if_then_else_val(
                            odd,
                            Type::F64,
                            |fb| fb.fmul(x, fb.fconst(1.5)),
                            |fb| fb.fsub(x, fb.fconst(0.25)),
                        );
                    }
                    let idx = if with_call {
                        let next = fb.call(helper, &[im], Some(Type::I64)).expect("returns");
                        fb.srem(next, sz)
                    } else {
                        im
                    };
                    let dvs = fb.iconst(divisor);
                    let q = fb.sdiv(i, dvs); // divisor 0 errors identically
                    let qf = fb.sitofp(q);
                    let y = fb.fadd(c[1], qf);
                    fb.store_idx(a, &[idx, im], x);
                    let n0 = fb.fadd(c[0], x);
                    // Swapped carries force a genuine parallel phi move.
                    if swap {
                        vec![y, n0]
                    } else {
                        vec![n0, y]
                    }
                },
            );
            let out = fb.fadd(finals[0], finals[1]);
            fb.ret(Some(out));
        });
        let m = mb.finish();
        m.verify().expect("builder modules verify");

        let mut mem = Memory::for_module(&m);
        for (flat, &v) in fill_seed.iter().enumerate() {
            mem.set_f64(a, flat, v);
        }
        let outcome = check_both(&m, &mem, limit)?;
        if divisor == 0 && limit.is_none() {
            let err = outcome.err().ok_or("division by zero must error")?;
            prop_assert!(
                err.message.contains("division by zero"),
                "unexpected error: {}",
                err.message
            );
        }
        Ok(())
    });
}

/// Both engines leave bit-identical memory behind, not just identical
/// profiles (stores must land in the same cells with the same values).
#[test]
fn decoded_and_walker_leave_identical_memory() {
    prop_check!(cases = 48, |rng| {
        let size = rng.range_usize(2, 10);
        let n = rng.range_i64(1, 20);
        let scale = rng.range_f64(0.5, 3.0);
        let fill: Vec<f64> = (0..size).map(|_| rng.range_f64(-8.0, 8.0)).collect();

        let mut mb = ModuleBuilder::new("prop");
        let a = mb.array("A", Type::F64, &[size]);
        mb.function("main", &[], None, |fb| {
            let sz = fb.iconst(size as i64);
            fb.counted_loop(0, n, 1, |fb, i| {
                let im = fb.srem(i, sz);
                let v = fb.load_idx(a, &[im]);
                let w = fb.fmul(v, fb.fconst(scale));
                fb.store_idx(a, &[im], w);
            });
            fb.ret(None);
        });
        let m = mb.finish();
        m.verify().expect("verifies");

        let mut mem = Memory::for_module(&m);
        for (flat, &v) in fill.iter().enumerate() {
            mem.set_f64(a, flat, v);
        }
        let mut dec = Interp::new(&m);
        let mut walk = Interp::reference(&m);
        dec.memory = mem.clone();
        walk.memory = mem;
        dec.run(&[]).expect("decoded runs");
        walk.run(&[]).expect("walker runs");
        for flat in 0..size {
            prop_assert_eq!(
                dec.memory.get_f64(a, flat).to_bits(),
                walk.memory.get_f64(a, flat).to_bits()
            );
        }
        Ok(())
    });
}
