//! Property-based differential testing of the normalization pipeline:
//! random loop nests (carried reductions, branches, calls, memory traffic,
//! division-by-zero paths) must behave identically before and after `-O1`
//! normalization — same return value bits, same final memory image, same
//! error message when execution traps — with the verifier green after every
//! changing pass.
//!
//! No step limits here: block merging legitimately changes the step count,
//! so a shared limit could make one side trip it and not the other.

use cayman_ir::builder::ModuleBuilder;
use cayman_ir::interp::{Interp, InterpError, Memory, Value};
use cayman_ir::transform::{normalize, OptLevel};
use cayman_ir::{Module, Type};
use cayman_testkit::{prop_assert, prop_check};

fn values_bit_equal(a: &Option<Value>, b: &Option<Value>) -> bool {
    match (a, b) {
        (Some(Value::F(x)), Some(Value::F(y))) => x.to_bits() == y.to_bits(),
        (x, y) => x == y,
    }
}

fn cell_bits_equal(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::F(x), Value::F(y)) => x.to_bits() == y.to_bits(),
        (x, y) => x == y,
    }
}

/// Runs `module` to completion on a copy of `memory`, returning the outcome
/// and the final memory image.
fn run(module: &Module, memory: &Memory) -> (Result<Option<Value>, InterpError>, Vec<Value>) {
    let mut interp = Interp::new(module);
    interp.memory = memory.clone();
    let out = interp.run(&[]).map(|p| p.return_value);
    let cells = interp.memory.cells().to_vec();
    (out, cells)
}

/// The random program generator from the decode differential, reused: loop
/// nests with carried reductions, optional branches and calls, stores, and a
/// sometimes-zero divisor for the error path.
#[allow(clippy::too_many_arguments)]
fn random_program(
    size: usize,
    outer: i64,
    inner: i64,
    swap: bool,
    with_if: bool,
    with_call: bool,
    divisor: i64,
    c0: f64,
    c1: f64,
) -> Module {
    let mut mb = ModuleBuilder::new("prop");
    let a = mb.array("A", Type::F64, &[size, size]);
    let helper = mb.function("helper", &[Type::I64], Some(Type::I64), |fb| {
        let p = fb.param(0);
        let one = fb.iconst(1);
        let r = fb.add(p, one);
        fb.ret(Some(r));
    });
    mb.function("main", &[], Some(Type::F64), |fb| {
        let init0 = fb.fconst(c0);
        let init1 = fb.fconst(c1);
        let sz = fb.iconst(size as i64);
        let finals = fb.counted_loop_carry(
            0,
            outer,
            1,
            &[(Type::F64, init0), (Type::F64, init1)],
            |fb, i, c| {
                let im = fb.srem(i, sz);
                let zero = fb.fconst(0.0);
                let inner_fin =
                    fb.counted_loop_carry(0, inner, 1, &[(Type::F64, zero)], |fb, j, cc| {
                        let jm = fb.srem(j, sz);
                        let v = fb.load_idx(a, &[im, jm]);
                        vec![fb.fadd(cc[0], v)]
                    });
                let mut x = inner_fin[0];
                if with_if {
                    let two = fb.iconst(2);
                    let rem = fb.srem(i, two);
                    let one = fb.iconst(1);
                    let odd = fb.icmp_eq(rem, one);
                    x = fb.if_then_else_val(
                        odd,
                        Type::F64,
                        |fb| fb.fmul(x, fb.fconst(1.5)),
                        |fb| fb.fsub(x, fb.fconst(0.25)),
                    );
                }
                let idx = if with_call {
                    let next = fb.call(helper, &[im], Some(Type::I64)).expect("returns");
                    fb.srem(next, sz)
                } else {
                    im
                };
                let dvs = fb.iconst(divisor);
                let q = fb.sdiv(i, dvs); // divisor 0 errors identically
                let qf = fb.sitofp(q);
                let y = fb.fadd(c[1], qf);
                fb.store_idx(a, &[idx, im], x);
                let n0 = fb.fadd(c[0], x);
                if swap {
                    vec![y, n0]
                } else {
                    vec![n0, y]
                }
            },
        );
        let out = fb.fadd(finals[0], finals[1]);
        fb.ret(Some(out));
    });
    mb.finish()
}

#[test]
fn normalized_programs_match_raw_semantics() {
    prop_check!(cases = 96, |rng| {
        let size = rng.range_usize(4, 12);
        let outer = rng.range_i64(1, 10);
        let inner = rng.range_i64(1, 8);
        let swap = rng.bool();
        let with_if = rng.bool();
        let with_call = rng.bool();
        let divisor = rng.range_i64(0, 4); // 0 → division-by-zero error path
        let c0 = rng.range_f64(-2.0, 2.0);
        let c1 = rng.range_f64(-2.0, 2.0);
        let fill: Vec<f64> = (0..size * size).map(|_| rng.range_f64(-4.0, 4.0)).collect();

        let m = random_program(
            size, outer, inner, swap, with_if, with_call, divisor, c0, c1,
        );
        m.verify().expect("builder modules verify");
        let mut mem = Memory::for_module(&m);
        let array = m.array_ids().next().expect("array A");
        for (flat, &v) in fill.iter().enumerate() {
            mem.set_f64(array, flat, v);
        }

        let mut opt = m.clone();
        let stats = normalize(&mut opt, OptLevel::O1, true)
            .map_err(|e| format!("pipeline verification failed: {e}"))?;
        opt.verify()
            .map_err(|e| format!("result fails verify: {e}"))?;
        prop_assert!(
            opt.functions.iter().map(|f| f.instr_count()).sum::<usize>()
                <= m.functions.iter().map(|f| f.instr_count()).sum::<usize>(),
            "normalization grew the module ({stats})"
        );

        let (raw_out, raw_cells) = run(&m, &mem);
        let (opt_out, opt_cells) = run(&opt, &mem);
        match (&raw_out, &opt_out) {
            (Ok(rv), Ok(ov)) => {
                prop_assert!(
                    values_bit_equal(rv, ov),
                    "return values diverge: raw {rv:?} vs normalized {ov:?}"
                );
            }
            (Err(re), Err(oe)) => {
                prop_assert!(re == oe, "errors diverge: raw {re:?} vs normalized {oe:?}");
            }
            _ => {
                return Err(format!(
                    "outcomes diverge: raw {raw_out:?} vs normalized {opt_out:?}"
                ));
            }
        }
        prop_assert!(
            raw_cells.len() == opt_cells.len()
                && raw_cells
                    .iter()
                    .zip(&opt_cells)
                    .all(|(a, b)| cell_bits_equal(a, b)),
            "final memory images diverge"
        );
        if divisor == 0 {
            let err = raw_out.err().ok_or("division by zero must error")?;
            prop_assert!(
                err.message.contains("division by zero"),
                "unexpected error: {}",
                err.message
            );
        }
        Ok(())
    });
}

#[test]
fn normalization_is_idempotent_on_random_programs() {
    prop_check!(cases = 32, |rng| {
        let size = rng.range_usize(4, 10);
        let outer = rng.range_i64(1, 6);
        let inner = rng.range_i64(1, 5);
        let m = random_program(
            size,
            outer,
            inner,
            rng.bool(),
            rng.bool(),
            rng.bool(),
            rng.range_i64(1, 4),
            rng.range_f64(-1.0, 1.0),
            rng.range_f64(-1.0, 1.0),
        );
        let mut opt = m.clone();
        normalize(&mut opt, OptLevel::O1, true).map_err(|e| e.to_string())?;
        let text = opt.to_text();
        let again = normalize(&mut opt, OptLevel::O1, true).map_err(|e| e.to_string())?;
        prop_assert!(
            again.total_changes() == 0,
            "second normalize still changed things: {again}"
        );
        prop_assert!(opt.to_text() == text, "module text changed on re-run");
        Ok(())
    });
}
