//! Dominator and post-dominator trees (Cooper–Harvey–Kennedy iterative
//! algorithm).
//!
//! Single-entry-single-exit region discovery in `cayman-analysis` — the basis
//! of the paper's wPST — is phrased in terms of *`a` dominates `b`* and *`b`
//! post-dominates `a`*, so both trees live here.

use crate::cfg::Cfg;
use crate::module::{BlockId, Function};

/// A dominator tree (or post-dominator tree; see [`DomTree::post_dominators`]).
#[derive(Debug, Clone)]
pub struct DomTree {
    /// Immediate dominator per block (`None` for the root and unreachable
    /// blocks).
    pub idom: Vec<Option<BlockId>>,
    /// The tree root (entry block for dominators, virtual-exit representative
    /// for post-dominators).
    pub root: Option<BlockId>,
    /// Depth of each block in the tree (root = 0); `usize::MAX` if absent.
    depth: Vec<usize>,
}

impl DomTree {
    /// Computes the dominator tree of `func`.
    pub fn dominators(func: &Function, cfg: &Cfg) -> Self {
        Self::compute(cfg.block_count(), Some(func.entry()), &cfg.rpo, |b| {
            cfg.preds[b.index()].clone()
        })
    }

    /// Computes the post-dominator tree of `func`.
    ///
    /// Multiple `ret` blocks are handled by iterating from all exits; when
    /// there is exactly one exit (the common case for builder-generated
    /// functions) the tree is rooted there. With multiple exits the root is
    /// the first exit and blocks that reach other exits only may have no
    /// post-dominator within the tree — region analysis treats those blocks
    /// conservatively (they never form SESE regions).
    pub fn post_dominators(func: &Function, cfg: &Cfg) -> Self {
        // Reverse CFG: post-order of the reverse graph ≈ reverse of rpo.
        // Compute an RPO of the reverse CFG starting from all exits.
        let n = cfg.block_count();
        let mut visited = vec![false; n];
        let mut post: Vec<BlockId> = Vec::with_capacity(n);
        let mut stack: Vec<(BlockId, usize)> = Vec::new();
        for &e in &cfg.exits {
            if visited[e.index()] {
                continue;
            }
            visited[e.index()] = true;
            stack.push((e, 0));
            while let Some(&mut (b, ref mut i)) = stack.last_mut() {
                let preds = &cfg.preds[b.index()];
                if *i < preds.len() {
                    let p = preds[*i];
                    *i += 1;
                    if !visited[p.index()] {
                        visited[p.index()] = true;
                        stack.push((p, 0));
                    }
                } else {
                    post.push(b);
                    stack.pop();
                }
            }
        }
        let rrpo: Vec<BlockId> = post.into_iter().rev().collect();
        let root = cfg.exits.first().copied();
        let _ = func;
        Self::compute(n, root, &rrpo, |b| cfg.succs[b.index()].clone())
    }

    /// Shared CHK fixpoint. `order` must be an RPO of the (possibly reversed)
    /// graph; `preds` returns that graph's predecessors.
    fn compute(
        n: usize,
        root: Option<BlockId>,
        order: &[BlockId],
        preds: impl Fn(BlockId) -> Vec<BlockId>,
    ) -> Self {
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        let Some(root) = root else {
            return DomTree {
                idom,
                root: None,
                depth: vec![usize::MAX; n],
            };
        };
        let mut order_index = vec![usize::MAX; n];
        for (i, b) in order.iter().enumerate() {
            order_index[b.index()] = i;
        }
        idom[root.index()] = Some(root);

        let intersect = |idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| -> BlockId {
            while a != b {
                while order_index[a.index()] > order_index[b.index()] {
                    a = idom[a.index()].expect("processed node has idom");
                }
                while order_index[b.index()] > order_index[a.index()] {
                    b = idom[b.index()].expect("processed node has idom");
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in order {
                if b == root {
                    continue;
                }
                let mut new_idom: Option<BlockId> = None;
                for p in preds(b) {
                    if idom[p.index()].is_none() {
                        continue; // not yet processed / unreachable
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cur, p),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }

        // Root's self-idom is an implementation detail; expose None.
        idom[root.index()] = None;

        // Depths by walking up (graphs are small; O(n·depth) is fine).
        let mut depth = vec![usize::MAX; n];
        depth[root.index()] = 0;
        for &b in order {
            if depth[b.index()] != usize::MAX {
                continue;
            }
            let mut chain = vec![b];
            let mut cur = b;
            while let Some(p) = idom[cur.index()] {
                if depth[p.index()] != usize::MAX {
                    break;
                }
                chain.push(p);
                cur = p;
            }
            let start = idom[cur.index()].map(|p| depth[p.index()] + 1).unwrap_or(0);
            for (d, &c) in (start..).zip(chain.iter().rev()) {
                depth[c.index()] = d;
            }
        }

        DomTree {
            idom,
            root: Some(root),
            depth,
        }
    }

    /// Whether `a` dominates `b` (reflexively).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.depth[b.index()] == usize::MAX || self.depth[a.index()] == usize::MAX {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.index()] {
                Some(p) => cur = p,
                None => return false,
            }
        }
    }

    /// Whether `a` strictly dominates `b`.
    pub fn strictly_dominates(&self, a: BlockId, b: BlockId) -> bool {
        a != b && self.dominates(a, b)
    }

    /// The immediate dominator of `b`.
    pub fn idom_of(&self, b: BlockId) -> Option<BlockId> {
        self.idom[b.index()]
    }

    /// Whether `b` is in the tree (reachable in the relevant direction).
    pub fn contains(&self, b: BlockId) -> bool {
        self.depth[b.index()] != usize::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::types::Type;

    fn loop_func() -> crate::module::Module {
        let mut mb = ModuleBuilder::new("t");
        let x = mb.array("x", Type::F64, &[4]);
        mb.function("f", &[], None, |fb| {
            fb.counted_loop(0, 4, 1, |fb, i| {
                let v = fb.load_idx(x, &[i]);
                fb.store_idx(x, &[i], v);
            });
            fb.ret(None);
        });
        mb.finish()
    }

    #[test]
    fn loop_dominators() {
        let m = loop_func();
        let f = m.function(crate::module::FuncId(0));
        let cfg = Cfg::compute(f);
        let dom = DomTree::dominators(f, &cfg);
        // entry(0) dominates everything; header(1) dominates body(2)+exit(3).
        assert!(dom.dominates(BlockId(0), BlockId(3)));
        assert!(dom.dominates(BlockId(1), BlockId(2)));
        assert!(dom.dominates(BlockId(1), BlockId(3)));
        assert!(!dom.dominates(BlockId(2), BlockId(3)));
        assert_eq!(dom.idom_of(BlockId(1)), Some(BlockId(0)));
        assert_eq!(dom.idom_of(BlockId(2)), Some(BlockId(1)));
        assert_eq!(dom.idom_of(BlockId(3)), Some(BlockId(1)));
        assert!(dom.strictly_dominates(BlockId(0), BlockId(1)));
        assert!(!dom.strictly_dominates(BlockId(1), BlockId(1)));
    }

    #[test]
    fn loop_post_dominators() {
        let m = loop_func();
        let f = m.function(crate::module::FuncId(0));
        let cfg = Cfg::compute(f);
        let pdom = DomTree::post_dominators(f, &cfg);
        // exit(3) post-dominates everything; header(1) post-dominates
        // body(2) and entry(0).
        assert!(pdom.dominates(BlockId(3), BlockId(0)));
        assert!(pdom.dominates(BlockId(1), BlockId(2)));
        assert!(pdom.dominates(BlockId(1), BlockId(0)));
        assert!(!pdom.dominates(BlockId(2), BlockId(1)));
        assert_eq!(pdom.root, Some(BlockId(3)));
    }

    #[test]
    fn diamond_dominators() {
        let mut mb = ModuleBuilder::new("t");
        mb.function("g", &[Type::I64], Some(Type::I64), |fb| {
            let p = fb.param(0);
            let z = fb.iconst(0);
            let c = fb.icmp_lt(p, z);
            let r = fb.if_then_else_val(c, Type::I64, |_| Operand::int(1), |_| Operand::int(2));
            fb.ret(Some(r));
        });
        use crate::instr::Operand;
        let m = mb.finish();
        let f = m.function(crate::module::FuncId(0));
        let cfg = Cfg::compute(f);
        let dom = DomTree::dominators(f, &cfg);
        let pdom = DomTree::post_dominators(f, &cfg);
        // entry(0) -> then(1)/else(2) -> join(3)
        assert_eq!(dom.idom_of(BlockId(3)), Some(BlockId(0)));
        assert!(pdom.dominates(BlockId(3), BlockId(1)));
        assert!(pdom.dominates(BlockId(3), BlockId(0)));
    }
}
