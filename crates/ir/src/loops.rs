//! Natural-loop discovery and the loop-nest forest.
//!
//! A back edge `latch → header` (where `header` dominates `latch`) defines a
//! natural loop; loops sharing a header are united. The loop nest drives both
//! the wPST *ctrl-flow* regions and the control-flow optimisation decisions
//! (which loops to unroll, which innermost loops to pipeline).

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::module::{BlockId, Function};

/// Identifies a loop within a [`LoopForest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LoopId(pub u32);

impl LoopId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One natural loop.
#[derive(Debug, Clone)]
pub struct Loop {
    /// The loop header (target of the back edge(s)).
    pub header: BlockId,
    /// All blocks in the loop, header first.
    pub blocks: Vec<BlockId>,
    /// Latch blocks (sources of back edges).
    pub latches: Vec<BlockId>,
    /// Blocks outside the loop that loop blocks branch to.
    pub exit_blocks: Vec<BlockId>,
    /// The parent loop if this loop is nested, else `None`.
    pub parent: Option<LoopId>,
    /// Directly nested loops.
    pub children: Vec<LoopId>,
    /// Nesting depth (outermost = 1).
    pub depth: usize,
}

impl Loop {
    /// Whether this is an innermost loop (no nested loops).
    pub fn is_innermost(&self) -> bool {
        self.children.is_empty()
    }

    /// Whether the loop has a single exit block — required for it to be a
    /// single-entry-single-exit region.
    pub fn single_exit(&self) -> Option<BlockId> {
        match self.exit_blocks.as_slice() {
            [e] => Some(*e),
            _ => None,
        }
    }
}

/// All natural loops of a function, organised as a forest.
#[derive(Debug, Clone)]
pub struct LoopForest {
    /// Loops, in discovery order (outer loops may appear after inner ones).
    pub loops: Vec<Loop>,
    /// Innermost containing loop per block (`None` = not in any loop).
    pub loop_of_block: Vec<Option<LoopId>>,
}

impl LoopForest {
    /// Discovers the natural loops of `func`.
    pub fn compute(func: &Function, cfg: &Cfg, dom: &DomTree) -> Self {
        let n = cfg.block_count();

        // 1. Find back edges and group them by header.
        let mut headers: Vec<BlockId> = Vec::new();
        let mut latches_of: Vec<Vec<BlockId>> = Vec::new();
        for b in func.block_ids() {
            if !cfg.is_reachable(b) {
                continue;
            }
            for &s in &cfg.succs[b.index()] {
                if dom.dominates(s, b) {
                    // back edge b -> s
                    match headers.iter().position(|&h| h == s) {
                        Some(i) => latches_of[i].push(b),
                        None => {
                            headers.push(s);
                            latches_of.push(vec![b]);
                        }
                    }
                }
            }
        }

        // 2. Collect each loop's body: reverse reachability from latches,
        //    stopping at the header.
        let mut loops: Vec<Loop> = Vec::new();
        for (h, latches) in headers.iter().zip(&latches_of) {
            let mut in_loop = vec![false; n];
            in_loop[h.index()] = true;
            let mut stack: Vec<BlockId> = latches.clone();
            for l in latches {
                in_loop[l.index()] = true;
            }
            while let Some(b) = stack.pop() {
                if b == *h {
                    continue;
                }
                for &p in &cfg.preds[b.index()] {
                    if !in_loop[p.index()] {
                        in_loop[p.index()] = true;
                        stack.push(p);
                    }
                }
            }
            let mut blocks: Vec<BlockId> = vec![*h];
            blocks.extend(
                (0..n)
                    .map(|i| BlockId(i as u32))
                    .filter(|&b| b != *h && in_loop[b.index()]),
            );
            let mut exit_blocks: Vec<BlockId> = Vec::new();
            for &b in &blocks {
                for &s in &cfg.succs[b.index()] {
                    if !in_loop[s.index()] && !exit_blocks.contains(&s) {
                        exit_blocks.push(s);
                    }
                }
            }
            loops.push(Loop {
                header: *h,
                blocks,
                latches: latches.clone(),
                exit_blocks,
                parent: None,
                children: Vec::new(),
                depth: 0,
            });
        }

        // 3. Nesting: loop A is nested in B iff B contains A's header and
        //    A != B. Parent = smallest containing loop.
        let ids: Vec<LoopId> = (0..loops.len() as u32).map(LoopId).collect();
        for &a in &ids {
            let mut best: Option<LoopId> = None;
            for &b in &ids {
                if a == b {
                    continue;
                }
                let la = loops[a.index()].header;
                if loops[b.index()].blocks.contains(&la) && loops[b.index()].header != la {
                    best = match best {
                        None => Some(b),
                        Some(cur) => {
                            if loops[b.index()].blocks.len() < loops[cur.index()].blocks.len() {
                                Some(b)
                            } else {
                                Some(cur)
                            }
                        }
                    };
                }
            }
            loops[a.index()].parent = best;
        }
        for &a in &ids {
            if let Some(p) = loops[a.index()].parent {
                loops[p.index()].children.push(a);
            }
        }
        // Depths.
        for &a in &ids {
            let mut d = 1;
            let mut cur = loops[a.index()].parent;
            while let Some(p) = cur {
                d += 1;
                cur = loops[p.index()].parent;
            }
            loops[a.index()].depth = d;
        }

        // 4. Innermost loop per block.
        let mut loop_of_block: Vec<Option<LoopId>> = vec![None; n];
        for &a in &ids {
            for &b in &loops[a.index()].blocks {
                loop_of_block[b.index()] = match loop_of_block[b.index()] {
                    None => Some(a),
                    Some(cur) => {
                        if loops[a.index()].blocks.len() < loops[cur.index()].blocks.len() {
                            Some(a)
                        } else {
                            Some(cur)
                        }
                    }
                };
            }
        }

        LoopForest {
            loops,
            loop_of_block,
        }
    }

    /// The innermost loop containing `b`.
    pub fn innermost_loop(&self, b: BlockId) -> Option<LoopId> {
        self.loop_of_block[b.index()]
    }

    /// Whether loop `outer` (transitively) contains loop `inner`.
    pub fn contains(&self, outer: LoopId, inner: LoopId) -> bool {
        let mut cur = Some(inner);
        while let Some(l) = cur {
            if l == outer {
                return true;
            }
            cur = self.loops[l.index()].parent;
        }
        false
    }

    /// Loop lookup.
    pub fn get(&self, id: LoopId) -> &Loop {
        &self.loops[id.index()]
    }

    /// Iterate loop ids.
    pub fn ids(&self) -> impl Iterator<Item = LoopId> + '_ {
        (0..self.loops.len() as u32).map(LoopId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::module::FuncId;
    use crate::types::Type;

    #[test]
    fn nested_loops_form_a_nest() {
        let mut mb = ModuleBuilder::new("t");
        let a = mb.array("A", Type::F64, &[4, 4]);
        mb.function("f", &[], None, |fb| {
            fb.counted_loop(0, 4, 1, |fb, i| {
                fb.counted_loop(0, 4, 1, |fb, j| {
                    let v = fb.load_idx(a, &[i, j]);
                    fb.store_idx(a, &[i, j], v);
                });
            });
            fb.ret(None);
        });
        let m = mb.finish();
        let f = m.function(FuncId(0));
        let cfg = Cfg::compute(f);
        let dom = DomTree::dominators(f, &cfg);
        let forest = LoopForest::compute(f, &cfg, &dom);
        assert_eq!(forest.loops.len(), 2);
        let outer = forest
            .ids()
            .find(|&l| forest.get(l).depth == 1)
            .expect("outer loop");
        let inner = forest
            .ids()
            .find(|&l| forest.get(l).depth == 2)
            .expect("inner loop");
        assert!(forest.get(inner).is_innermost());
        assert!(!forest.get(outer).is_innermost());
        assert_eq!(forest.get(inner).parent, Some(outer));
        assert_eq!(forest.get(outer).children, vec![inner]);
        assert!(forest.contains(outer, inner));
        assert!(!forest.contains(inner, outer));
        // Both loops are single-exit (builder emits canonical shape).
        assert!(forest.get(inner).single_exit().is_some());
        assert!(forest.get(outer).single_exit().is_some());
        // Inner loop blocks map to the inner loop.
        let ih = forest.get(inner).header;
        assert_eq!(forest.innermost_loop(ih), Some(inner));
    }

    #[test]
    fn straight_line_has_no_loops() {
        let mut mb = ModuleBuilder::new("t");
        mb.function("f", &[], None, |fb| fb.ret(None));
        let m = mb.finish();
        let f = m.function(FuncId(0));
        let cfg = Cfg::compute(f);
        let dom = DomTree::dominators(f, &cfg);
        let forest = LoopForest::compute(f, &cfg, &dom);
        assert!(forest.loops.is_empty());
        assert_eq!(forest.innermost_loop(BlockId(0)), None);
    }
}
