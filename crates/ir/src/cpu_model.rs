//! CVA6-like in-order CPU cycle model.
//!
//! The paper profiles applications natively on a CVA6 RISC-V tile (§IV-A,
//! ref \[32\]: ~1.7 GHz application-class in-order core). We substitute a
//! static per-instruction cycle model applied by the interpreter; what the
//! downstream selection algorithm needs is only the *relative* hotspot
//! structure and a consistent time base for Equation (1).

use crate::instr::{BinOp, Instr, Terminator, UnaryOp};

/// Modelled CPU clock frequency in Hz (CVA6-class).
pub const CPU_FREQ_HZ: f64 = 1.5e9;

/// Cycles charged for one dynamic execution of `instr` on the CPU.
///
/// Loads are charged an average cache-hit latency; stores post to a store
/// buffer; integer division and floating division/transcendentals are
/// iterative units.
pub fn instr_cycles(instr: &Instr) -> u64 {
    match instr {
        Instr::Binary { op, .. } => match op {
            BinOp::Add
            | BinOp::Sub
            | BinOp::And
            | BinOp::Or
            | BinOp::Xor
            | BinOp::Shl
            | BinOp::Shr
            | BinOp::Min
            | BinOp::Max => 1,
            BinOp::Mul => 4,
            BinOp::Div | BinOp::Rem => 20,
            // CVA6's FPU is not pipelined: back-to-back FP issue stalls.
            BinOp::FAdd | BinOp::FSub | BinOp::FMin | BinOp::FMax => 5,
            BinOp::FMul => 6,
            BinOp::FDiv => 24,
        },
        Instr::Unary { op, .. } => match op {
            UnaryOp::Neg | UnaryOp::Not | UnaryOp::FNeg | UnaryOp::FAbs => 1,
            UnaryOp::Sqrt => 20,
            UnaryOp::Exp | UnaryOp::Log => 40,
            UnaryOp::SiToFp | UnaryOp::FpToSi => 2,
        },
        Instr::Cmp { .. } => 1,
        Instr::Select { .. } => 1,
        // Address computation folds into the addressing mode most of the
        // time; charge one ALU cycle.
        Instr::Gep { .. } => 1,
        // Average over L1 hits and misses on the small CVA6 data cache.
        Instr::Load { .. } => 4,
        Instr::Store { .. } => 2,
        // Phis are resolved by register allocation; free at runtime.
        Instr::Phi { .. } => 0,
        // Call/return bookkeeping (the callee's body is charged separately).
        Instr::Call { .. } => 8,
    }
}

/// Cycles charged for one dynamic execution of a block terminator.
pub fn terminator_cycles(term: &Terminator) -> u64 {
    match term {
        Terminator::Br(_) => 1,
        // Average of taken/mispredicted conditional branch (in-order
        // front-end refill).
        Terminator::CondBr { .. } => 3,
        Terminator::Ret(_) => 3,
    }
}

/// Static CPU cycles for one execution of a block (instructions plus
/// terminator).
pub fn block_cycles(func: &crate::module::Function, b: crate::module::BlockId) -> u64 {
    let blk = func.block(b);
    let body: u64 = blk
        .instrs
        .iter()
        .map(|&i| instr_cycles(func.instr(i)))
        .sum();
    body + terminator_cycles(blk.terminator())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::module::FuncId;
    use crate::types::Type;

    #[test]
    fn fp_ops_cost_more_than_int() {
        use crate::instr::Operand;
        let fadd = Instr::Binary {
            op: BinOp::FAdd,
            ty: Type::F64,
            lhs: Operand::float(1.0),
            rhs: Operand::float(2.0),
        };
        let add = Instr::Binary {
            op: BinOp::Add,
            ty: Type::I64,
            lhs: Operand::int(1),
            rhs: Operand::int(2),
        };
        assert!(instr_cycles(&fadd) > instr_cycles(&add));
    }

    #[test]
    fn block_cycles_sums_body_and_terminator() {
        let mut mb = ModuleBuilder::new("t");
        mb.function("f", &[], Some(Type::I64), |fb| {
            let a = fb.add(Operand::int(1), Operand::int(2));
            let b = fb.mul(a, Operand::int(3));
            fb.ret(Some(b));
        });
        use crate::instr::Operand;
        let m = mb.finish();
        let f = m.function(FuncId(0));
        // add(1) + mul(4) + ret(3) = 8
        assert_eq!(block_cycles(f, f.entry()), 8);
    }
}
