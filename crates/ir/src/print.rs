//! Textual IR printing, LLVM-flavoured, for debugging and golden tests.

use crate::instr::{Instr, Operand, Terminator};
use crate::module::{Function, Module};
use std::fmt::Write as _;

impl Module {
    /// Renders the whole module as text.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "; module {}", self.name);
        for a in self.array_ids() {
            let d = self.array(a);
            let dims: Vec<String> = d.dims.iter().map(|x| x.to_string()).collect();
            let _ = writeln!(out, "array {} @{} [{}]", d.elem, d.name, dims.join("x"));
        }
        for f in self.function_ids() {
            out.push('\n');
            out.push_str(&self.function_to_text(self.function(f)));
        }
        out
    }

    /// Renders one function as text.
    pub fn function_to_text(&self, func: &Function) -> String {
        let mut out = String::new();
        let params: Vec<String> = func
            .params
            .iter()
            .enumerate()
            .map(|(i, t)| format!("{t} %{i}"))
            .collect();
        let ret = func
            .ret
            .map(|t| t.to_string())
            .unwrap_or_else(|| "void".into());
        let _ = writeln!(
            out,
            "fn @{}({}) -> {} {{",
            func.name,
            params.join(", "),
            ret
        );
        for b in func.block_ids() {
            let blk = func.block(b);
            let _ = writeln!(out, "{b}: ; {}", blk.name);
            for &iid in &blk.instrs {
                let instr = func.instr(iid);
                let res = func
                    .result_of(iid)
                    .map(|v| format!("{v} = "))
                    .unwrap_or_default();
                let _ = writeln!(out, "  {res}{}", self.instr_to_text(instr));
            }
            if let Some(t) = &blk.term {
                let _ = writeln!(out, "  {}", term_to_text(t));
            }
        }
        out.push_str("}\n");
        out
    }

    fn instr_to_text(&self, instr: &Instr) -> String {
        match instr {
            Instr::Binary { op, ty, lhs, rhs } => {
                format!("{} {ty} {}, {}", op.mnemonic(), op_str(*lhs), op_str(*rhs))
            }
            Instr::Unary { op, ty, val } => {
                format!("{} {ty} {}", op.mnemonic(), op_str(*val))
            }
            Instr::Cmp { pred, ty, lhs, rhs } => format!(
                "cmp {} {ty} {}, {}",
                pred.mnemonic(),
                op_str(*lhs),
                op_str(*rhs)
            ),
            Instr::Select {
                cond,
                ty,
                then_val,
                else_val,
            } => format!(
                "select {ty} {}, {}, {}",
                op_str(*cond),
                op_str(*then_val),
                op_str(*else_val)
            ),
            Instr::Gep { array, indices } => {
                let name = &self.array(*array).name;
                let idx: Vec<String> = indices.iter().map(|o| op_str(*o)).collect();
                format!("gep @{name}[{}]", idx.join("]["))
            }
            Instr::Load { ptr, ty } => format!("load {ty}, {}", op_str(*ptr)),
            Instr::Store { ptr, value, ty } => {
                format!("store {ty} {}, {}", op_str(*value), op_str(*ptr))
            }
            Instr::Phi { ty, incomings } => {
                let inc: Vec<String> = incomings
                    .iter()
                    .map(|(b, v)| format!("[{b}: {}]", op_str(*v)))
                    .collect();
                format!("phi {ty} {}", inc.join(", "))
            }
            Instr::Call { callee, args, ty } => {
                let name = &self.function(*callee).name;
                let a: Vec<String> = args.iter().map(|o| op_str(*o)).collect();
                let t = ty.map(|t| t.to_string()).unwrap_or_else(|| "void".into());
                format!("call {t} @{name}({})", a.join(", "))
            }
        }
    }
}

fn op_str(op: Operand) -> String {
    match op {
        Operand::Value(v) => v.to_string(),
        Operand::Const(c) => c.to_string(),
    }
}

fn term_to_text(t: &Terminator) -> String {
    match t {
        Terminator::Br(b) => format!("br {b}"),
        Terminator::CondBr {
            cond,
            then_bb,
            else_bb,
        } => format!("br {} ? {then_bb} : {else_bb}", op_str(*cond)),
        Terminator::Ret(None) => "ret".into(),
        Terminator::Ret(Some(v)) => format!("ret {}", op_str(*v)),
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::ModuleBuilder;
    use crate::types::Type;

    #[test]
    fn printed_module_mentions_everything() {
        let mut mb = ModuleBuilder::new("demo");
        let x = mb.array("x", Type::F64, &[8]);
        mb.function("f", &[], None, |fb| {
            fb.counted_loop(0, 8, 1, |fb, i| {
                let v = fb.load_idx(x, &[i]);
                let w = fb.fmul(v, fb.fconst(2.0));
                fb.store_idx(x, &[i], w);
            });
            fb.ret(None);
        });
        let m = mb.finish();
        let text = m.to_text();
        assert!(text.contains("module demo"));
        assert!(text.contains("array f64 @x [8]"));
        assert!(text.contains("fn @f() -> void"));
        assert!(text.contains("phi i64"));
        assert!(text.contains("gep @x["));
        assert!(text.contains("fmul f64"));
        assert!(text.contains("store f64"));
        assert!(text.contains("ret"));
    }
}
