//! IR interpreter with profiling counters — the reproduction's substitute for
//! the paper's instrumentation-pass-plus-native-execution profiling flow.
//!
//! Executing a module yields an [`ExecProfile`]: per-block dynamic execution
//! counts and a total CPU cycle count under the [`crate::cpu_model`]. The
//! analysis crate aggregates these into per-region durations and execution
//! counts (Fig. 2d ①).
//!
//! Two execution engines share the [`Interp::run`] API and semantics:
//!
//! * the **decoded engine** ([`crate::decode`], the default) — each function
//!   is lowered once into flat opcode streams with operand slots resolved to
//!   register indices, phi moves compiled into per-predecessor edge tables
//!   and terminators decoded to direct block indices, then executed over a
//!   flat register file;
//! * the **reference walker** ([`Interp::reference`]) — the original
//!   tree-walking evaluator, kept for differential testing and as the
//!   fallback for modules the decoder's verifier-backed init check rejects.

use crate::cpu_model::{block_cycles, CPU_FREQ_HZ};
use crate::instr::{BinOp, CmpPred, Imm, Instr, Operand, Terminator, UnaryOp};
use crate::module::{ArrayId, BlockId, FuncId, Function, Module, ValueDef, ValueId};
use crate::types::Type;
use std::error::Error;
use std::fmt;

/// A dynamic value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// Integer (all integer widths share `i64` storage).
    I(i64),
    /// Float (both widths share `f64` storage).
    F(f64),
    /// Boolean.
    B(bool),
    /// Pointer: a flat element index into [`Memory`].
    P(usize),
}

impl Value {
    pub(crate) fn as_i(self) -> Result<i64, InterpError> {
        match self {
            Value::I(v) => Ok(v),
            other => Err(InterpError::new(format!("expected int, got {other:?}"))),
        }
    }
    pub(crate) fn as_f(self) -> Result<f64, InterpError> {
        match self {
            Value::F(v) => Ok(v),
            other => Err(InterpError::new(format!("expected float, got {other:?}"))),
        }
    }
    pub(crate) fn as_b(self) -> Result<bool, InterpError> {
        match self {
            Value::B(v) => Ok(v),
            other => Err(InterpError::new(format!("expected bool, got {other:?}"))),
        }
    }
    pub(crate) fn as_p(self) -> Result<usize, InterpError> {
        match self {
            Value::P(v) => Ok(v),
            other => Err(InterpError::new(format!("expected ptr, got {other:?}"))),
        }
    }
}

/// Interpreter failure (out-of-bounds access, step-limit exhaustion, type
/// confusion — the latter indicates an unverified module).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterpError {
    /// Human-readable description.
    pub message: String,
}

impl InterpError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        InterpError {
            message: message.into(),
        }
    }
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "interpreter error: {}", self.message)
    }
}

impl Error for InterpError {}

/// Flat, element-addressed memory backing all declared arrays.
#[derive(Debug, Clone)]
pub struct Memory {
    pub(crate) cells: Vec<Value>,
    base: Vec<usize>,
    len: Vec<usize>,
}

impl Memory {
    /// Allocates zero-initialised storage for every array in `module`.
    pub fn for_module(module: &Module) -> Self {
        let mut base = Vec::with_capacity(module.arrays.len());
        let mut len = Vec::with_capacity(module.arrays.len());
        let mut total = 0usize;
        for a in &module.arrays {
            base.push(total);
            len.push(a.len());
            total += a.len();
        }
        let mut cells = Vec::with_capacity(total);
        for a in &module.arrays {
            let zero = if a.elem.is_float() {
                Value::F(0.0)
            } else {
                Value::I(0)
            };
            cells.extend(std::iter::repeat_n(zero, a.len()));
        }
        Memory { cells, base, len }
    }

    pub(crate) fn addr(&self, array: ArrayId, flat: usize) -> Result<usize, InterpError> {
        if flat >= self.len[array.index()] {
            return Err(InterpError::new(format!(
                "out-of-bounds access: {array} index {flat} >= {}",
                self.len[array.index()]
            )));
        }
        Ok(self.base[array.index()] + flat)
    }

    /// Writes an `f64` element (row-major flat index).
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds (host-side setup error).
    pub fn set_f64(&mut self, array: ArrayId, flat: usize, v: f64) {
        let a = self.addr(array, flat).expect("host write out of bounds");
        self.cells[a] = Value::F(v);
    }

    /// Reads an `f64` element (row-major flat index).
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds or the cell holds an integer.
    pub fn get_f64(&self, array: ArrayId, flat: usize) -> f64 {
        let a = self.addr(array, flat).expect("host read out of bounds");
        match self.cells[a] {
            Value::F(v) => v,
            other => panic!("expected f64 cell, got {other:?}"),
        }
    }

    /// Writes an integer element (row-major flat index).
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    pub fn set_i64(&mut self, array: ArrayId, flat: usize, v: i64) {
        let a = self.addr(array, flat).expect("host write out of bounds");
        self.cells[a] = Value::I(v);
    }

    /// Reads an integer element (row-major flat index).
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds or the cell holds a float.
    pub fn get_i64(&self, array: ArrayId, flat: usize) -> i64 {
        let a = self.addr(array, flat).expect("host read out of bounds");
        match self.cells[a] {
            Value::I(v) => v,
            other => panic!("expected i64 cell, got {other:?}"),
        }
    }

    /// The raw memory image: every array's elements, concatenated in
    /// declaration order. Two runs over modules with identical array
    /// declarations are bit-comparable cell by cell (differential tests).
    pub fn cells(&self) -> &[Value] {
        &self.cells
    }
}

/// Profiling outcome of one execution.
#[derive(Debug, Clone)]
pub struct ExecProfile {
    /// `block_counts[f][b]` = dynamic executions of block `b` of function `f`.
    pub block_counts: Vec<Vec<u64>>,
    /// Total CPU cycles under the [`crate::cpu_model`].
    pub total_cycles: u64,
    /// The entry function's return value, if any.
    pub return_value: Option<Value>,
}

impl ExecProfile {
    /// Total wall-clock seconds on the modelled CPU (`T_all` in Eq. (1)).
    pub fn total_seconds(&self) -> f64 {
        self.total_cycles as f64 / CPU_FREQ_HZ
    }

    /// Dynamic execution count of one block.
    pub fn count(&self, f: FuncId, b: BlockId) -> u64 {
        self.block_counts[f.index()][b.index()]
    }

    /// Total dynamic block executions across all functions (the interpreter's
    /// unit of profiling work — what the `profiling` bench reports per
    /// second).
    pub fn blocks_executed(&self) -> u64 {
        self.block_counts
            .iter()
            .map(|per_block| per_block.iter().sum::<u64>())
            .sum()
    }

    /// Total dynamic instructions executed (block counts weighted by each
    /// block's static instruction count, terminator included). The headline
    /// metric for normalization: fewer dynamic instructions for the same
    /// observable results.
    pub fn dynamic_instrs(&self, module: &Module) -> u64 {
        let mut total = 0u64;
        for (f, per_block) in self.block_counts.iter().enumerate() {
            let func = &module.functions[f];
            for (b, &count) in per_block.iter().enumerate() {
                let static_len = func.blocks[b].instrs.len() as u64 + 1;
                total += count * static_len;
            }
        }
        total
    }
}

/// One function's pre-decoded opcode streams, detached from the whole-module
/// [`crate::decode::DecodedModule`] so incremental pipelines can cache
/// decodings per *function content* and reassemble an interpreter after an
/// edit without re-running the decoder's init check (CFG + dominance walks)
/// on untouched functions.
///
/// Obtain one with [`decode_function`]; hand a full, index-aligned set back
/// to [`Interp::from_cached_decode`]. A handle is only meaningful for a
/// function structurally identical to the one it was decoded from — key it
/// by [`crate::fingerprint::fingerprint_function`].
#[derive(Debug, Clone)]
pub struct DecodedFunction(pub(crate) crate::decode::DecodedFunc);

/// Decodes a single function for caching, or `None` if it fails the
/// decoder's init check (such a function forces the whole module onto the
/// reference walker, exactly as in [`Interp::new`]).
pub fn decode_function(module: &Module, func: FuncId) -> Option<DecodedFunction> {
    crate::decode::decode_func(module, module.function(func)).map(DecodedFunction)
}

/// Which execution engine an [`Interp`] uses.
#[derive(Debug)]
enum Engine {
    /// Pre-decoded flat opcode streams (see [`crate::decode`]).
    Decoded(crate::decode::DecodedModule),
    /// The original tree-walking evaluator.
    Reference,
}

/// The interpreter. Holds the module, memory and counters.
#[derive(Debug)]
pub struct Interp<'m> {
    module: &'m Module,
    /// Memory image (inputs written by the host before [`Interp::run`],
    /// outputs readable after).
    pub memory: Memory,
    counts: Vec<Vec<u64>>,
    steps: u64,
    step_limit: u64,
    /// Pre-computed static cycles per block.
    static_cycles: Vec<Vec<u64>>,
    engine: Engine,
}

impl<'m> Interp<'m> {
    /// Default dynamic step limit (blocks executed) guarding against
    /// non-terminating inputs.
    pub const DEFAULT_STEP_LIMIT: u64 = 200_000_000;

    /// Creates an interpreter with zeroed memory, using the decoded engine.
    ///
    /// Modules that fail the decoder's one-time init check (e.g. unverified
    /// modules with structural irregularities) silently fall back to the
    /// reference walker, so `run` semantics — including errors and panics —
    /// are identical either way.
    pub fn new(module: &'m Module) -> Self {
        let engine = match crate::decode::decode(module) {
            Some(dm) => Engine::Decoded(dm),
            None => {
                // Library code never prints; the silent fallback becomes a
                // structured diagnostic in the trace instead.
                cayman_obs::counter("profile.decode_fallback", 1);
                cayman_obs::diag("interp.fallback", || {
                    "decoder rejected module; using reference walker".to_string()
                });
                Engine::Reference
            }
        };
        Self::with_engine(module, engine)
    }

    /// Creates an interpreter from per-function decodings cached across
    /// edits. `funcs` must index-align with [`Module::functions`]; pass
    /// `None` for any function whose decoding failed — that forces the
    /// whole module onto the reference walker with the same fallback
    /// diagnostics as [`Interp::new`], keeping `run` semantics identical.
    pub fn from_cached_decode(module: &'m Module, funcs: Vec<Option<DecodedFunction>>) -> Self {
        debug_assert_eq!(funcs.len(), module.functions.len());
        let all: Option<Vec<crate::decode::DecodedFunc>> =
            funcs.into_iter().map(|f| f.map(|d| d.0)).collect();
        let engine = match all {
            Some(fs) if fs.len() == module.functions.len() => {
                Engine::Decoded(crate::decode::DecodedModule::from_funcs(fs))
            }
            _ => {
                cayman_obs::counter("profile.decode_fallback", 1);
                cayman_obs::diag("interp.fallback", || {
                    "decoder rejected module; using reference walker".to_string()
                });
                Engine::Reference
            }
        };
        Self::with_engine(module, engine)
    }

    /// Creates an interpreter that uses the original tree-walking evaluator.
    ///
    /// Kept for differential testing against the decoded engine; both must
    /// produce bit-identical [`ExecProfile`]s and errors.
    pub fn reference(module: &'m Module) -> Self {
        Self::with_engine(module, Engine::Reference)
    }

    fn with_engine(module: &'m Module, engine: Engine) -> Self {
        let counts = module
            .functions
            .iter()
            .map(|f| vec![0u64; f.blocks.len()])
            .collect();
        let static_cycles = module
            .functions
            .iter()
            .map(|f| f.block_ids().map(|b| block_cycles(f, b)).collect())
            .collect();
        Interp {
            module,
            memory: Memory::for_module(module),
            counts,
            steps: 0,
            step_limit: Self::DEFAULT_STEP_LIMIT,
            static_cycles,
            engine,
        }
    }

    /// Overrides the dynamic step limit.
    pub fn with_step_limit(mut self, limit: u64) -> Self {
        self.step_limit = limit;
        self
    }

    /// Which engine this interpreter executes with: `"decoded"` or
    /// `"reference"`.
    pub fn engine_name(&self) -> &'static str {
        match self.engine {
            Engine::Decoded(_) => "decoded",
            Engine::Reference => "reference",
        }
    }

    /// Runs the module entry function (`main`, or the first function) with
    /// the given arguments and returns the profile.
    ///
    /// # Errors
    ///
    /// Fails on out-of-bounds memory access, division by zero being fed to
    /// integer division, step-limit exhaustion, or dynamic type confusion
    /// (the latter indicates the module was not [verified](Module::verify)).
    pub fn run(&mut self, args: &[Value]) -> Result<ExecProfile, InterpError> {
        let span = cayman_obs::timed_with("profile.interp", || {
            vec![("engine", cayman_obs::ArgValue::from(self.engine_name()))]
        });
        let result = self.run_inner(args);
        let nanos = span.finish();
        if let Ok(profile) = &result {
            let blocks = profile.blocks_executed();
            cayman_obs::counter("profile.blocks", blocks);
            if nanos > 0 {
                cayman_obs::gauge(
                    "profile.blocks_per_sec",
                    blocks as f64 / (nanos as f64 / 1e9),
                );
            }
        }
        result
    }

    fn run_inner(&mut self, args: &[Value]) -> Result<ExecProfile, InterpError> {
        // A previous `run` moved the count table into its profile; rebuild
        // zeroed counts so each run profiles independently.
        if self.counts.len() != self.module.functions.len() {
            self.counts = self
                .module
                .functions
                .iter()
                .map(|f| vec![0u64; f.blocks.len()])
                .collect();
        }
        let entry = self
            .module
            .entry_function()
            .ok_or_else(|| InterpError::new("module has no functions"))?;
        let ret = if let Engine::Decoded(dm) = &self.engine {
            let mut ctx = crate::decode::ExecCtx {
                module: self.module,
                dm,
                memory: &mut self.memory,
                counts: &mut self.counts,
                steps: &mut self.steps,
                step_limit: self.step_limit,
                scratch: Vec::new(),
            };
            ctx.call(entry, args)?
        } else {
            self.call(entry, args)?
        };
        let block_counts = std::mem::take(&mut self.counts);
        let mut total = 0u64;
        for (f, per_block) in block_counts.iter().enumerate() {
            for (b, &c) in per_block.iter().enumerate() {
                total += c * self.static_cycles[f][b];
            }
        }
        Ok(ExecProfile {
            block_counts,
            total_cycles: total,
            return_value: ret,
        })
    }

    fn call(&mut self, f: FuncId, args: &[Value]) -> Result<Option<Value>, InterpError> {
        let func = self.module.function(f);
        if args.len() != func.params.len() {
            return Err(InterpError::new(format!(
                "function `{}` expects {} args, got {}",
                func.name,
                func.params.len(),
                args.len()
            )));
        }
        let mut vals: Vec<Option<Value>> = vec![None; func.values.len()];
        for (i, &a) in args.iter().enumerate() {
            vals[i] = Some(a);
        }

        let mut block = func.entry();
        let mut prev: Option<BlockId> = None;
        loop {
            self.steps += 1;
            if self.steps > self.step_limit {
                return Err(InterpError::new("step limit exceeded"));
            }
            self.counts[f.index()][block.index()] += 1;
            let blk = func.block(block);

            // Phase 1: evaluate phis in parallel against the incoming edge.
            let mut phi_updates: Vec<(ValueId, Value)> = Vec::new();
            for &iid in &blk.instrs {
                let Instr::Phi { incomings, .. } = func.instr(iid) else {
                    break;
                };
                let p = prev.ok_or_else(|| InterpError::new("phi encountered in entry block"))?;
                let (_, op) = incomings
                    .iter()
                    .find(|(pb, _)| *pb == p)
                    .ok_or_else(|| InterpError::new(format!("phi missing incoming for {p}")))?;
                let v = self.eval_operand(func, &vals, *op)?;
                let res = func.result_of(iid).expect("phi produces a value");
                phi_updates.push((res, v));
            }
            for (r, v) in phi_updates {
                vals[r.index()] = Some(v);
            }

            // Phase 2: the rest of the block.
            for &iid in &blk.instrs {
                let instr = func.instr(iid);
                if matches!(instr, Instr::Phi { .. }) {
                    continue;
                }
                let result = self.exec_instr(func, &vals, instr)?;
                if let Some(res) = func.result_of(iid) {
                    vals[res.index()] = Some(result.ok_or_else(|| {
                        InterpError::new("value-producing instruction produced nothing")
                    })?);
                }
            }

            match blk.terminator() {
                Terminator::Br(t) => {
                    prev = Some(block);
                    block = *t;
                }
                Terminator::CondBr {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    let c = self.eval_operand(func, &vals, *cond)?.as_b()?;
                    prev = Some(block);
                    block = if c { *then_bb } else { *else_bb };
                }
                Terminator::Ret(v) => {
                    return match v {
                        Some(op) => Ok(Some(self.eval_operand(func, &vals, *op)?)),
                        None => Ok(None),
                    };
                }
            }
        }
    }

    fn eval_operand(
        &self,
        func: &Function,
        vals: &[Option<Value>],
        op: Operand,
    ) -> Result<Value, InterpError> {
        match op {
            Operand::Const(Imm::Int(v)) => Ok(Value::I(v)),
            Operand::Const(Imm::Float(v)) => Ok(Value::F(v)),
            Operand::Const(Imm::Bool(v)) => Ok(Value::B(v)),
            Operand::Value(v) => vals[v.index()].ok_or_else(|| {
                let what = match func.values[v.index()] {
                    ValueDef::Param(i, _) => format!("param {i}"),
                    ValueDef::Instr(i) => format!("instr {i}"),
                };
                InterpError::new(format!("use of undefined value {v} ({what})"))
            }),
        }
    }

    fn exec_instr(
        &mut self,
        func: &Function,
        vals: &[Option<Value>],
        instr: &Instr,
    ) -> Result<Option<Value>, InterpError> {
        match instr {
            Instr::Binary { op, ty, lhs, rhs } => {
                let l = self.eval_operand(func, vals, *lhs)?;
                let r = self.eval_operand(func, vals, *rhs)?;
                Ok(Some(exec_binary(*op, *ty, l, r)?))
            }
            Instr::Unary { op, val, .. } => {
                let v = self.eval_operand(func, vals, *val)?;
                Ok(Some(exec_unary(*op, v)?))
            }
            Instr::Cmp { pred, ty, lhs, rhs } => {
                let l = self.eval_operand(func, vals, *lhs)?;
                let r = self.eval_operand(func, vals, *rhs)?;
                Ok(Some(Value::B(exec_cmp(*pred, *ty, l, r)?)))
            }
            Instr::Select {
                cond,
                then_val,
                else_val,
                ..
            } => {
                let c = self.eval_operand(func, vals, *cond)?.as_b()?;
                let v = if c {
                    self.eval_operand(func, vals, *then_val)?
                } else {
                    self.eval_operand(func, vals, *else_val)?
                };
                Ok(Some(v))
            }
            Instr::Gep { array, indices } => {
                let decl = self.module.array(*array);
                let strides = decl.strides();
                let mut flat: i64 = 0;
                for (k, idx) in indices.iter().enumerate() {
                    let i = self.eval_operand(func, vals, *idx)?.as_i()?;
                    if i < 0 || i as usize >= decl.dims[k] {
                        return Err(InterpError::new(format!(
                            "index {i} out of bounds for dim {k} (size {}) of `{}`",
                            decl.dims[k], decl.name
                        )));
                    }
                    flat += i * strides[k] as i64;
                }
                let a = self.memory.addr(*array, flat as usize)?;
                Ok(Some(Value::P(a)))
            }
            Instr::Load { ptr, .. } => {
                let p = self.eval_operand(func, vals, *ptr)?.as_p()?;
                Ok(Some(self.memory.cells[p]))
            }
            Instr::Store { ptr, value, .. } => {
                let p = self.eval_operand(func, vals, *ptr)?.as_p()?;
                let v = self.eval_operand(func, vals, *value)?;
                self.memory.cells[p] = v;
                Ok(None)
            }
            Instr::Phi { .. } => unreachable!("phis handled in block prologue"),
            Instr::Call { callee, args, ty } => {
                let mut argv = Vec::with_capacity(args.len());
                for a in args {
                    argv.push(self.eval_operand(func, vals, *a)?);
                }
                let r = self.call(*callee, &argv)?;
                match (r, ty) {
                    (Some(v), Some(_)) => Ok(Some(v)),
                    (None, None) => Ok(None),
                    _ => Err(InterpError::new("call result arity mismatch")),
                }
            }
        }
    }
}

pub(crate) fn exec_binary(op: BinOp, ty: Type, l: Value, r: Value) -> Result<Value, InterpError> {
    if op.is_float() {
        let (a, b) = (l.as_f()?, r.as_f()?);
        let v = match op {
            BinOp::FAdd => a + b,
            BinOp::FSub => a - b,
            BinOp::FMul => a * b,
            BinOp::FDiv => a / b,
            BinOp::FMin => a.min(b),
            BinOp::FMax => a.max(b),
            _ => unreachable!(),
        };
        Ok(Value::F(v))
    } else {
        let (a, b) = (l.as_i()?, r.as_i()?);
        let v = match op {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => {
                if b == 0 {
                    return Err(InterpError::new("integer division by zero"));
                }
                a.wrapping_div(b)
            }
            BinOp::Rem => {
                if b == 0 {
                    return Err(InterpError::new("integer remainder by zero"));
                }
                a.wrapping_rem(b)
            }
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => a.wrapping_shl((b & 63) as u32),
            BinOp::Shr => a.wrapping_shr((b & 63) as u32),
            BinOp::Min => a.min(b),
            BinOp::Max => a.max(b),
            _ => unreachable!(),
        };
        let v = match ty {
            Type::I32 => (v as i32) as i64,
            _ => v,
        };
        Ok(Value::I(v))
    }
}

pub(crate) fn exec_unary(op: UnaryOp, v: Value) -> Result<Value, InterpError> {
    Ok(match op {
        UnaryOp::Neg => Value::I(v.as_i()?.wrapping_neg()),
        UnaryOp::Not => Value::I(!v.as_i()?),
        UnaryOp::FNeg => Value::F(-v.as_f()?),
        UnaryOp::FAbs => Value::F(v.as_f()?.abs()),
        UnaryOp::Sqrt => Value::F(v.as_f()?.sqrt()),
        UnaryOp::Exp => Value::F(v.as_f()?.exp()),
        UnaryOp::Log => Value::F(v.as_f()?.ln()),
        UnaryOp::SiToFp => Value::F(v.as_i()? as f64),
        UnaryOp::FpToSi => Value::I(v.as_f()? as i64),
    })
}

pub(crate) fn exec_cmp(pred: CmpPred, ty: Type, l: Value, r: Value) -> Result<bool, InterpError> {
    if ty.is_float() {
        let (a, b) = (l.as_f()?, r.as_f()?);
        Ok(match pred {
            CmpPred::Eq => a == b,
            CmpPred::Ne => a != b,
            CmpPred::Lt => a < b,
            CmpPred::Le => a <= b,
            CmpPred::Gt => a > b,
            CmpPred::Ge => a >= b,
        })
    } else {
        let (a, b) = (l.as_i()?, r.as_i()?);
        Ok(match pred {
            CmpPred::Eq => a == b,
            CmpPred::Ne => a != b,
            CmpPred::Lt => a < b,
            CmpPred::Le => a <= b,
            CmpPred::Gt => a > b,
            CmpPred::Ge => a >= b,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;

    #[test]
    fn saxpy_executes_correctly() {
        let mut mb = ModuleBuilder::new("t");
        let x = mb.array("x", Type::F64, &[8]);
        let y = mb.array("y", Type::F64, &[8]);
        mb.function("main", &[], None, |fb| {
            fb.counted_loop(0, 8, 1, |fb, i| {
                let xv = fb.load_idx(x, &[i]);
                let k = fb.fconst(3.0);
                let b = fb.fconst(1.0);
                let t = fb.fmul(k, xv);
                let v = fb.fadd(t, b);
                fb.store_idx(y, &[i], v);
            });
            fb.ret(None);
        });
        let m = mb.finish();
        m.verify().expect("verifies");
        let mut interp = Interp::new(&m);
        for i in 0..8 {
            interp.memory.set_f64(x, i, i as f64);
        }
        let prof = interp.run(&[]).expect("runs");
        for i in 0..8 {
            assert_eq!(interp.memory.get_f64(y, i), 3.0 * i as f64 + 1.0);
        }
        // entry 1, header 9, body 8, exit 1
        assert_eq!(prof.count(FuncId(0), BlockId(0)), 1);
        assert_eq!(prof.count(FuncId(0), BlockId(1)), 9);
        assert_eq!(prof.count(FuncId(0), BlockId(2)), 8);
        assert_eq!(prof.count(FuncId(0), BlockId(3)), 1);
        assert!(prof.total_cycles > 0);
        assert!(prof.total_seconds() > 0.0);
    }

    #[test]
    fn carried_reduction_returns_sum() {
        let mut mb = ModuleBuilder::new("t");
        let x = mb.array("x", Type::F64, &[4]);
        mb.function("main", &[], Some(Type::F64), |fb| {
            let init = fb.fconst(0.0);
            let f = fb.counted_loop_carry(0, 4, 1, &[(Type::F64, init)], |fb, i, c| {
                let v = fb.load_idx(x, &[i]);
                vec![fb.fadd(c[0], v)]
            });
            fb.ret(Some(f[0]));
        });
        let m = mb.finish();
        m.verify().expect("verifies");
        let mut interp = Interp::new(&m);
        for i in 0..4 {
            interp.memory.set_f64(x, i, (i + 1) as f64);
        }
        let prof = interp.run(&[]).expect("runs");
        assert_eq!(prof.return_value, Some(Value::F(10.0)));
    }

    #[test]
    fn conditional_branches_both_ways() {
        let mut mb = ModuleBuilder::new("t");
        let out = mb.array("out", Type::I64, &[8]);
        mb.function("main", &[], None, |fb| {
            fb.counted_loop(0, 8, 1, |fb, i| {
                let four = fb.iconst(4);
                let c = fb.icmp_lt(i, four);
                fb.if_then_else(
                    c,
                    |fb| fb.store_idx_ty(out, &[i], Operand::int(1), Type::I64),
                    |fb| fb.store_idx_ty(out, &[i], Operand::int(2), Type::I64),
                );
            });
            fb.ret(None);
        });
        let m = mb.finish();
        m.verify().expect("verifies");
        let mut interp = Interp::new(&m);
        interp.run(&[]).expect("runs");
        for i in 0..8 {
            assert_eq!(interp.memory.get_i64(out, i), if i < 4 { 1 } else { 2 });
        }
    }

    #[test]
    fn calls_transfer_args_and_results() {
        let mut mb = ModuleBuilder::new("t");
        let sq = mb.function("square", &[Type::I64], Some(Type::I64), |fb| {
            let p = fb.param(0);
            let r = fb.mul(p, p);
            fb.ret(Some(r));
        });
        mb.function("main", &[], Some(Type::I64), |fb| {
            let five = fb.iconst(5);
            let r = fb.call(sq, &[five], Some(Type::I64)).expect("value");
            fb.ret(Some(r));
        });
        let m = mb.finish();
        m.verify().expect("verifies");
        let mut interp = Interp::new(&m);
        let prof = interp.run(&[]).expect("runs");
        assert_eq!(prof.return_value, Some(Value::I(25)));
        // callee blocks were counted too
        assert_eq!(prof.count(FuncId(0), BlockId(0)), 1);
    }

    #[test]
    fn out_of_bounds_is_an_error() {
        let mut mb = ModuleBuilder::new("t");
        let x = mb.array("x", Type::F64, &[4]);
        mb.function("main", &[], None, |fb| {
            let i = fb.iconst(9);
            let _ = fb.load_idx(x, &[i]);
            fb.ret(None);
        });
        let m = mb.finish();
        let mut interp = Interp::new(&m);
        let e = interp.run(&[]).expect_err("must fail");
        assert!(e.message.contains("out of bounds"), "{e}");
    }

    #[test]
    fn step_limit_stops_infinite_loops() {
        let mut mb = ModuleBuilder::new("t");
        mb.function("main", &[], None, |fb| {
            let spin = fb.new_block("spin");
            fb.br(spin);
            fb.switch_to(spin);
            fb.br(spin);
        });
        let m = mb.finish();
        let mut interp = Interp::new(&m).with_step_limit(1000);
        let e = interp.run(&[]).expect_err("must fail");
        assert!(e.message.contains("step limit"), "{e}");
    }

    use crate::instr::Operand;
    use crate::module::{BlockId, FuncId};
}
