//! Textual IR parsing — the inverse of [`crate::print`].
//!
//! Accepts exactly the surface syntax [`Module::to_text`] emits, so modules
//! round-trip: `parse(m.to_text())` is structurally equivalent to `m` (value
//! numbering may differ; semantics and shape are preserved). Useful for
//! writing kernels as text fixtures and for golden tests.
//!
//! ```text
//! ; module demo
//! array f64 @x [8]
//!
//! fn @f() -> void {
//! bb0: ; entry
//!   %0 = gep @x[3]
//!   %1 = load f64, %0
//!   store f64 %1, %0
//!   ret
//! }
//! ```

use crate::instr::{BinOp, CmpPred, Imm, Instr, Operand, Terminator, UnaryOp};
use crate::module::{
    ArrayDecl, ArrayId, Block, BlockId, FuncId, Function, InstrId, Module, ValueDef, ValueId,
};
use crate::types::Type;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A parse failure with its 1-based source position and, when one can be
/// identified, the offending token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column of the offending token within the source line
    /// (`1` when no more precise position is known).
    pub col: usize,
    /// The offending token, empty when the failure concerns the line or
    /// construct as a whole (e.g. an unterminated function body).
    pub token: String,
    /// Human-readable description.
    pub message: String,
}

impl ParseError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParseError {
            line,
            col: 1,
            token: String::new(),
            message: message.into(),
        }
    }

    /// Positions the error at `token`'s first occurrence in `source_line`.
    fn at_token(
        line: usize,
        source_line: &str,
        token: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        let token = token.into();
        let col = if token.is_empty() {
            1
        } else {
            source_line.find(&token).map_or(1, |i| i + 1)
        };
        ParseError {
            line,
            col,
            token,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at line {}, column {}: {}",
            self.line, self.col, self.message
        )
    }
}

impl Error for ParseError {}

impl Module {
    /// Parses a module from the textual form produced by
    /// [`Module::to_text`].
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] pointing at the first malformed line.
    /// Successful parses are *not* implicitly verified; run
    /// [`Module::verify`] afterwards.
    pub fn parse_text(text: &str) -> Result<Module, ParseError> {
        Parser::new(text).run()
    }
}

struct Parser<'a> {
    lines: Vec<(usize, &'a str)>,
    pos: usize,
    module: Module,
    array_names: HashMap<String, ArrayId>,
    func_names: HashMap<String, FuncId>,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        let lines = text
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l.trim_end()))
            .filter(|(_, l)| !l.trim().is_empty())
            .collect();
        Parser {
            lines,
            pos: 0,
            module: Module::new("parsed"),
            array_names: HashMap::new(),
            func_names: HashMap::new(),
        }
    }

    fn err<T>(&self, line: usize, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError::new(line, msg))
    }

    fn peek(&self) -> Option<(usize, &'a str)> {
        self.lines.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<(usize, &'a str)> {
        let l = self.peek();
        if l.is_some() {
            self.pos += 1;
        }
        l
    }

    fn run(mut self) -> Result<Module, ParseError> {
        while let Some((ln, line)) = self.peek() {
            let t = line.trim();
            if let Some(rest) = t.strip_prefix("; module ") {
                self.module.name = rest.trim().to_string();
                self.pos += 1;
            } else if t.starts_with(';') {
                self.pos += 1;
            } else if t.starts_with("array ") {
                self.parse_array(ln, t)?;
                self.pos += 1;
            } else if t.starts_with("fn @") {
                self.parse_function()?;
            } else {
                return self.err(ln, format!("unexpected top-level line `{t}`"));
            }
        }
        Ok(self.module)
    }

    fn parse_array(&mut self, ln: usize, t: &str) -> Result<(), ParseError> {
        // array f64 @x [4x5]
        let rest = t.strip_prefix("array ").expect("checked");
        let mut parts = rest.split_whitespace();
        let ty = self.parse_type(ln, t, parts.next().unwrap_or(""))?;
        let name = parts
            .next()
            .and_then(|s| s.strip_prefix('@'))
            .ok_or_else(|| ParseError::new(ln, "expected `@name`"))?;
        let dims_str = parts
            .next()
            .and_then(|s| s.strip_prefix('['))
            .and_then(|s| s.strip_suffix(']'))
            .ok_or_else(|| ParseError::new(ln, "expected `[dims]`"))?;
        let dims: Result<Vec<usize>, _> = dims_str.split('x').map(str::parse).collect();
        let dims = dims
            .map_err(|e| ParseError::at_token(ln, t, dims_str, format!("bad dimensions: {e}")))?;
        let id = ArrayId(self.module.arrays.len() as u32);
        self.module.arrays.push(ArrayDecl {
            name: name.to_string(),
            elem: ty,
            dims,
        });
        self.array_names.insert(name.to_string(), id);
        Ok(())
    }

    fn parse_type(&self, ln: usize, source_line: &str, s: &str) -> Result<Type, ParseError> {
        match s {
            "i1" => Ok(Type::I1),
            "i32" => Ok(Type::I32),
            "i64" => Ok(Type::I64),
            "f32" => Ok(Type::F32),
            "f64" => Ok(Type::F64),
            "ptr" => Ok(Type::Ptr),
            other => Err(ParseError::at_token(
                ln,
                source_line,
                other,
                format!("unknown type `{other}`"),
            )),
        }
    }

    fn parse_function(&mut self) -> Result<(), ParseError> {
        let (hln, header) = self.next().expect("caller checked");
        // fn @name(i64 %0, f64 %1) -> void {
        let h = header.trim();
        let open = h
            .find('(')
            .ok_or_else(|| ParseError::new(hln, "missing `(`"))?;
        let close = h
            .rfind(')')
            .ok_or_else(|| ParseError::new(hln, "missing `)`"))?;
        let name = h["fn @".len()..open].to_string();
        let params_str = &h[open + 1..close];
        let mut params = Vec::new();
        if !params_str.trim().is_empty() {
            for p in params_str.split(',') {
                let ty_tok = p.split_whitespace().next().unwrap_or("");
                params.push(self.parse_type(hln, header, ty_tok)?);
            }
        }
        let ret_part = h[close + 1..]
            .trim()
            .strip_prefix("->")
            .map(|s| s.trim().trim_end_matches('{').trim().to_string())
            .ok_or_else(|| ParseError::new(hln, "missing `-> ret {`"))?;
        let ret = if ret_part == "void" {
            None
        } else {
            Some(self.parse_type(hln, header, &ret_part)?)
        };

        // Collect the body lines up to the closing `}`. Raw (untrimmed)
        // lines are kept so error columns refer to the real source text.
        let mut body: Vec<(usize, &str)> = Vec::new();
        loop {
            let Some((ln, line)) = self.next() else {
                return Err(ParseError::at_token(
                    hln,
                    header,
                    h,
                    format!("unterminated body of function `@{}`", name),
                ));
            };
            if line.trim() == "}" {
                break;
            }
            body.push((ln, line));
        }

        // Pass 1: block labels and value-id mapping (supports forward refs).
        let mut blocks: Vec<Block> = Vec::new();
        let mut block_names: HashMap<String, BlockId> = HashMap::new();
        let mut value_map: HashMap<u32, ValueId> = HashMap::new();
        let mut next_value = params.len() as u32;
        for (i, &ty) in params.iter().enumerate() {
            let _ = ty;
            value_map.insert(i as u32, ValueId(i as u32));
        }
        for &(ln, raw) in &body {
            let line = raw.trim();
            if let Some(label) = line
                .strip_suffix(':')
                .or_else(|| line.split_once(": ;").map(|(l, _)| l))
            {
                if label.starts_with("bb") && !label.contains(' ') {
                    let id = BlockId(blocks.len() as u32);
                    let name = line
                        .split_once("; ")
                        .map(|(_, n)| n.trim().to_string())
                        .unwrap_or_else(|| label.to_string());
                    blocks.push(Block {
                        name,
                        instrs: Vec::new(),
                        term: None,
                    });
                    block_names.insert(label.to_string(), id);
                    continue;
                }
            }
            // value-producing instruction?
            if let Some((lhs, _)) = line.split_once(" = ") {
                let lhs = lhs.trim();
                let Some(num) = lhs.strip_prefix('%').and_then(|s| s.parse::<u32>().ok()) else {
                    return Err(ParseError::at_token(
                        ln,
                        raw,
                        lhs,
                        format!("bad result `{lhs}`"),
                    ));
                };
                value_map.insert(num, ValueId(next_value));
                next_value += 1;
            }
        }
        if blocks.is_empty() {
            return self.err(hln, "function has no blocks");
        }

        // Pass 2: instructions and terminators.
        let mut func = Function {
            name,
            params: params.clone(),
            ret,
            blocks,
            instrs: Vec::new(),
            values: params
                .iter()
                .enumerate()
                .map(|(i, &ty)| ValueDef::Param(i as u32, ty))
                .collect(),
            instr_results: Vec::new(),
            block_map: Default::default(),
        };
        let mut cur: Option<BlockId> = None;
        let mut next_value = params.len() as u32;
        for &(ln, raw) in &body {
            let line = raw.trim();
            if line.starts_with("bb")
                && (line.ends_with(':') || line.contains(": ;"))
                && !line.contains('=')
            {
                let label = line.split(&[':', ' '][..]).next().unwrap_or("");
                cur = block_names.get(label).copied();
                continue;
            }
            let Some(b) = cur else {
                return self.err(ln, "instruction before first block label");
            };
            let ctx = LineCtx {
                ln,
                text: raw,
                value_map: &value_map,
                block_names: &block_names,
                array_names: &self.array_names,
                func_names: &self.func_names,
            };
            if let Some(term) = parse_terminator(line, &ctx)? {
                func.blocks[b.index()].term = Some(term);
                continue;
            }
            let (result, instr) = parse_instr(line, &ctx, self)?;
            let iid = InstrId(func.instrs.len() as u32);
            func.instrs.push(instr);
            let res = result.map(|_| {
                let v = ValueId(next_value);
                next_value += 1;
                func.values.push(ValueDef::Instr(iid));
                v
            });
            func.instr_results.push(res);
            func.blocks[b.index()].instrs.push(iid);
        }

        let id = FuncId(self.module.functions.len() as u32);
        self.func_names.insert(func.name.clone(), id);
        self.module.functions.push(func);
        Ok(())
    }
}

struct LineCtx<'a> {
    ln: usize,
    /// The raw source line, used to locate offending tokens by column.
    text: &'a str,
    value_map: &'a HashMap<u32, ValueId>,
    block_names: &'a HashMap<String, BlockId>,
    array_names: &'a HashMap<String, ArrayId>,
    func_names: &'a HashMap<String, FuncId>,
}

impl LineCtx<'_> {
    fn operand(&self, tok: &str) -> Result<Operand, ParseError> {
        let t = tok.trim().trim_end_matches(',');
        if let Some(num) = t.strip_prefix('%') {
            let n: u32 = num
                .parse()
                .map_err(|_| self.et(t, format!("bad value `{t}`")))?;
            let v = self
                .value_map
                .get(&n)
                .ok_or_else(|| self.et(t, format!("undefined value `{t}`")))?;
            return Ok(Operand::Value(*v));
        }
        if t == "true" || t == "false" {
            return Ok(Operand::Const(Imm::Bool(t == "true")));
        }
        if t.contains('.') || t.contains("inf") || t.contains("NaN") || t.contains('e') {
            let f: f64 = t
                .parse()
                .map_err(|_| self.et(t, format!("bad float `{t}`")))?;
            return Ok(Operand::Const(Imm::Float(f)));
        }
        let i: i64 = t
            .parse()
            .map_err(|_| self.et(t, format!("bad operand `{t}`")))?;
        Ok(Operand::Const(Imm::Int(i)))
    }

    fn block(&self, tok: &str) -> Result<BlockId, ParseError> {
        self.block_names
            .get(tok.trim())
            .copied()
            .ok_or_else(|| self.et(tok.trim(), format!("unknown block `{}`", tok.trim())))
    }

    fn e(&self, message: String) -> ParseError {
        ParseError::new(self.ln, message)
    }

    /// An error located at `token` within this line.
    fn et(&self, token: &str, message: String) -> ParseError {
        ParseError::at_token(self.ln, self.text, token, message)
    }
}

fn parse_terminator(line: &str, ctx: &LineCtx<'_>) -> Result<Option<Terminator>, ParseError> {
    if line == "ret" {
        return Ok(Some(Terminator::Ret(None)));
    }
    if let Some(v) = line.strip_prefix("ret ") {
        return Ok(Some(Terminator::Ret(Some(ctx.operand(v)?))));
    }
    if let Some(rest) = line.strip_prefix("br ") {
        if let Some((cond, arms)) = rest.split_once(" ? ") {
            let (t, e) = arms
                .split_once(" : ")
                .ok_or_else(|| ctx.e("bad cond br".into()))?;
            return Ok(Some(Terminator::CondBr {
                cond: ctx.operand(cond)?,
                then_bb: ctx.block(t)?,
                else_bb: ctx.block(e)?,
            }));
        }
        return Ok(Some(Terminator::Br(ctx.block(rest)?)));
    }
    Ok(None)
}

/// Parses one instruction line; returns `(has_result, instr)`.
fn parse_instr(
    line: &str,
    ctx: &LineCtx<'_>,
    p: &Parser<'_>,
) -> Result<(Option<()>, Instr), ParseError> {
    let (result, body) = match line.split_once(" = ") {
        Some((_, b)) => (Some(()), b.trim()),
        None => (None, line),
    };
    let mut toks = body.split_whitespace();
    let op = toks
        .next()
        .ok_or_else(|| ctx.e("empty instruction".into()))?;
    let rest: Vec<&str> = toks.collect();

    let bin = |o: BinOp| -> Result<Instr, ParseError> {
        let ty = p.parse_type(ctx.ln, ctx.text, rest.first().copied().unwrap_or(""))?;
        Ok(Instr::Binary {
            op: o,
            ty,
            lhs: ctx.operand(rest.get(1).copied().unwrap_or(""))?,
            rhs: ctx.operand(rest.get(2).copied().unwrap_or(""))?,
        })
    };
    let un = |o: UnaryOp| -> Result<Instr, ParseError> {
        let ty = p.parse_type(ctx.ln, ctx.text, rest.first().copied().unwrap_or(""))?;
        Ok(Instr::Unary {
            op: o,
            ty,
            val: ctx.operand(rest.get(1).copied().unwrap_or(""))?,
        })
    };

    let instr = match op {
        "add" => bin(BinOp::Add)?,
        "sub" => bin(BinOp::Sub)?,
        "mul" => bin(BinOp::Mul)?,
        "sdiv" => bin(BinOp::Div)?,
        "srem" => bin(BinOp::Rem)?,
        "and" => bin(BinOp::And)?,
        "or" => bin(BinOp::Or)?,
        "xor" => bin(BinOp::Xor)?,
        "shl" => bin(BinOp::Shl)?,
        "ashr" => bin(BinOp::Shr)?,
        "smin" => bin(BinOp::Min)?,
        "smax" => bin(BinOp::Max)?,
        "fadd" => bin(BinOp::FAdd)?,
        "fsub" => bin(BinOp::FSub)?,
        "fmul" => bin(BinOp::FMul)?,
        "fdiv" => bin(BinOp::FDiv)?,
        "fmin" => bin(BinOp::FMin)?,
        "fmax" => bin(BinOp::FMax)?,
        "neg" => un(UnaryOp::Neg)?,
        "not" => un(UnaryOp::Not)?,
        "fneg" => un(UnaryOp::FNeg)?,
        "fabs" => un(UnaryOp::FAbs)?,
        "sqrt" => un(UnaryOp::Sqrt)?,
        "exp" => un(UnaryOp::Exp)?,
        "log" => un(UnaryOp::Log)?,
        "sitofp" => un(UnaryOp::SiToFp)?,
        "fptosi" => un(UnaryOp::FpToSi)?,
        "cmp" => {
            let pred = match rest.first().copied().unwrap_or("") {
                "eq" => CmpPred::Eq,
                "ne" => CmpPred::Ne,
                "lt" => CmpPred::Lt,
                "le" => CmpPred::Le,
                "gt" => CmpPred::Gt,
                "ge" => CmpPred::Ge,
                other => return Err(ctx.et(other, format!("bad predicate `{other}`"))),
            };
            let ty = p.parse_type(ctx.ln, ctx.text, rest.get(1).copied().unwrap_or(""))?;
            Instr::Cmp {
                pred,
                ty,
                lhs: ctx.operand(rest.get(2).copied().unwrap_or(""))?,
                rhs: ctx.operand(rest.get(3).copied().unwrap_or(""))?,
            }
        }
        "select" => {
            let ty = p.parse_type(ctx.ln, ctx.text, rest.first().copied().unwrap_or(""))?;
            Instr::Select {
                ty,
                cond: ctx.operand(rest.get(1).copied().unwrap_or(""))?,
                then_val: ctx.operand(rest.get(2).copied().unwrap_or(""))?,
                else_val: ctx.operand(rest.get(3).copied().unwrap_or(""))?,
            }
        }
        "gep" => {
            // gep @name[i][j]
            let spec = rest.concat();
            let name_end = spec
                .find('[')
                .ok_or_else(|| ctx.e("gep missing `[`".into()))?;
            let name = spec[..name_end]
                .strip_prefix('@')
                .ok_or_else(|| ctx.e("gep missing `@`".into()))?;
            let array = ctx
                .array_names
                .get(name)
                .copied()
                .ok_or_else(|| ctx.e(format!("unknown array `@{name}`")))?;
            let mut indices = Vec::new();
            for part in spec[name_end..].split(']') {
                let part = part.trim_start_matches('[');
                if part.is_empty() {
                    continue;
                }
                indices.push(ctx.operand(part)?);
            }
            Instr::Gep { array, indices }
        }
        "load" => {
            // load f64, %7
            let ty = p.parse_type(
                ctx.ln,
                ctx.text,
                rest.first().copied().unwrap_or("").trim_end_matches(','),
            )?;
            Instr::Load {
                ty,
                ptr: ctx.operand(rest.get(1).copied().unwrap_or(""))?,
            }
        }
        "store" => {
            // store f64 %8, %7
            let ty = p.parse_type(ctx.ln, ctx.text, rest.first().copied().unwrap_or(""))?;
            Instr::Store {
                ty,
                value: ctx.operand(rest.get(1).copied().unwrap_or(""))?,
                ptr: ctx.operand(rest.get(2).copied().unwrap_or(""))?,
            }
        }
        "phi" => {
            // phi i64 [bb0: 0], [bb2: %8]
            let ty = p.parse_type(ctx.ln, ctx.text, rest.first().copied().unwrap_or(""))?;
            let mut incomings = Vec::new();
            let joined = rest[1..].join(" ");
            for part in joined.split("],") {
                let part = part.trim().trim_start_matches('[').trim_end_matches(']');
                if part.is_empty() {
                    continue;
                }
                let (bb, val) = part
                    .split_once(':')
                    .ok_or_else(|| ctx.e("bad phi incoming".into()))?;
                incomings.push((ctx.block(bb)?, ctx.operand(val)?));
            }
            Instr::Phi { ty, incomings }
        }
        "call" => {
            // call f64 @g(%1, 2)  |  call void @g()
            let ty_tok = rest.first().copied().unwrap_or("");
            let ty = if ty_tok == "void" {
                None
            } else {
                Some(p.parse_type(ctx.ln, ctx.text, ty_tok)?)
            };
            let spec = rest[1..].join(" ");
            let open = spec
                .find('(')
                .ok_or_else(|| ctx.e("call missing `(`".into()))?;
            let name = spec[..open]
                .trim()
                .strip_prefix('@')
                .ok_or_else(|| ctx.e("call missing `@`".into()))?;
            let callee = ctx.func_names.get(name).copied().ok_or_else(|| {
                ctx.e(format!(
                    "unknown function `@{name}` (forward calls unsupported)"
                ))
            })?;
            let args_str = spec[open + 1..].trim_end_matches(')').trim();
            let mut args = Vec::new();
            if !args_str.is_empty() {
                for a in args_str.split(',') {
                    args.push(ctx.operand(a)?);
                }
            }
            Instr::Call { callee, args, ty }
        }
        other => return Err(ctx.et(other, format!("unknown opcode `{other}`"))),
    };
    Ok((result, instr))
}

#[cfg(test)]
mod tests {
    use crate::builder::ModuleBuilder;
    use crate::interp::Interp;
    use crate::module::Module;
    use crate::types::Type;

    fn demo() -> Module {
        let mut mb = ModuleBuilder::new("demo");
        let x = mb.array("x", Type::F64, &[16]);
        let y = mb.array("y", Type::F64, &[16]);
        let g = mb.function("g", &[Type::I64], Some(Type::I64), |fb| {
            let p = fb.param(0);
            let two = fb.iconst(2);
            let r = fb.mul(p, two);
            fb.ret(Some(r));
        });
        mb.function("main", &[], None, |fb| {
            fb.counted_loop(0, 16, 1, |fb, i| {
                let v = fb.load_idx(x, &[i]);
                let c = fb.fcmp_gt(v, fb.fconst(0.5));
                fb.if_then_else(
                    c,
                    |fb| {
                        let w = fb.fmul(v, fb.fconst(2.0));
                        fb.store_idx(y, &[i], w);
                    },
                    |fb| {
                        let w = fb.fadd(v, fb.fconst(1.0));
                        fb.store_idx(y, &[i], w);
                    },
                );
                let _ = fb.call(g, &[i], Some(Type::I64));
            });
            fb.ret(None);
        });
        mb.finish()
    }

    #[test]
    fn round_trip_preserves_structure_and_semantics() {
        let original = demo();
        original.verify().expect("original verifies");
        let text = original.to_text();
        let parsed = Module::parse_text(&text).expect("parses");
        parsed.verify().expect("parsed module verifies");

        assert_eq!(parsed.name, original.name);
        assert_eq!(parsed.functions.len(), original.functions.len());
        assert_eq!(parsed.arrays.len(), original.arrays.len());
        for (a, b) in parsed.functions.iter().zip(&original.functions) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.blocks.len(), b.blocks.len());
            assert_eq!(a.instrs.len(), b.instrs.len());
        }

        // Semantics: run both with identical inputs; outputs must agree.
        let x = parsed.array_ids().next().expect("array x");
        let y = parsed.array_ids().nth(1).expect("array y");
        let mut i1 = Interp::new(&original);
        let mut i2 = Interp::new(&parsed);
        for i in 0..16 {
            i1.memory.set_f64(x, i, i as f64 / 10.0);
            i2.memory.set_f64(x, i, i as f64 / 10.0);
        }
        let p1 = i1.run(&[]).expect("original runs");
        let p2 = i2.run(&[]).expect("parsed runs");
        assert_eq!(p1.total_cycles, p2.total_cycles);
        for i in 0..16 {
            assert_eq!(i1.memory.get_f64(y, i), i2.memory.get_f64(y, i), "y[{i}]");
        }
    }

    #[test]
    fn second_round_trip_is_a_fixpoint() {
        let original = demo();
        let once = Module::parse_text(&original.to_text()).expect("parses");
        let twice = Module::parse_text(&once.to_text()).expect("parses again");
        assert_eq!(once.to_text(), twice.to_text(), "printer/parser fixpoint");
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let bad =
            "; module m\nfn @f() -> void {\nbb0: ; entry\n  %0 = frobnicate i64 1, 2\n  ret\n}\n";
        let e = Module::parse_text(bad).expect_err("must fail");
        assert_eq!(e.line, 4);
        assert!(e.message.contains("frobnicate"), "{e}");
        // `  %0 = frobnicate ...` — the opcode starts at column 8.
        assert_eq!(e.token, "frobnicate");
        assert_eq!(e.col, 8);
    }

    #[test]
    fn unterminated_function_body_is_reported_at_the_header() {
        let bad = "; module m\nfn @f() -> void {\nbb0: ; entry\n  ret\n";
        let e = Module::parse_text(bad).expect_err("must fail");
        assert_eq!(e.line, 2, "{e}");
        assert!(e.message.contains("unterminated"), "{e}");
        assert!(e.message.contains("@f"), "{e}");
    }

    #[test]
    fn undefined_value_reports_token_and_column() {
        let bad = "fn @f() -> i64 {\nbb0: ; entry\n  %0 = add i64 1, %9\n  ret %0\n}\n";
        let e = Module::parse_text(bad).expect_err("must fail");
        assert_eq!(e.line, 3, "{e}");
        assert_eq!(e.token, "%9", "{e}");
        // `  %0 = add i64 1, %9` — the undefined operand starts at column 19.
        assert_eq!(e.col, 19, "{e}");
        assert!(e.message.contains("undefined value"), "{e}");
    }

    #[test]
    fn unknown_type_reports_token_and_column() {
        let bad = "fn @f() -> void {\nbb0: ; entry\n  %0 = add i65 1, 2\n  ret\n}\n";
        let e = Module::parse_text(bad).expect_err("must fail");
        assert_eq!(e.line, 3, "{e}");
        assert_eq!(e.token, "i65", "{e}");
        assert_eq!(e.col, 12, "{e}");
        assert!(e.message.contains("unknown type"), "{e}");
    }

    #[test]
    fn unknown_block_reports_token() {
        let bad = "fn @f() -> void {\nbb0: ; entry\n  br bb7\n}\n";
        let e = Module::parse_text(bad).expect_err("must fail");
        assert_eq!(e.line, 3, "{e}");
        assert_eq!(e.token, "bb7", "{e}");
        assert!(e.message.contains("unknown block"), "{e}");
    }

    #[test]
    fn type_mismatch_is_caught_by_verify_after_parsing() {
        // Parses fine (syntax is well-formed) but feeding the i64 result of
        // `add` into an f64 `fadd` must be rejected by the verifier — the
        // documented division of labour between `parse_text` and `verify`.
        let src = "fn @f() -> f64 {\nbb0: ; entry\n  %0 = add i64 1, 2\n  %1 = fadd f64 %0, 2.0\n  ret %1\n}\n";
        let m = Module::parse_text(src).expect("syntax is fine");
        let e = m
            .verify()
            .expect_err("verify must reject the type mismatch");
        let msg = e.to_string();
        assert!(
            msg.contains("type i64, expected f64") || msg.contains("expected"),
            "unexpected verifier message: {msg}"
        );
    }

    #[test]
    fn display_includes_line_and_column() {
        let bad = "fn @f() -> void {\nbb0: ; entry\n  %0 = add i65 1, 2\n  ret\n}\n";
        let e = Module::parse_text(bad).expect_err("must fail");
        let shown = e.to_string();
        assert!(shown.contains("line 3"), "{shown}");
        assert!(shown.contains("column 12"), "{shown}");
    }

    #[test]
    fn hand_written_text_parses() {
        let src = r#"
; module hand
array f64 @v [4]

fn @main() -> f64 {
bb0: ; entry
  %0 = gep @v[2]
  store f64 3.5, %0
  %1 = load f64, %0
  %2 = fadd f64 %1, 1.0
  ret %2
}
"#;
        let m = Module::parse_text(src).expect("parses");
        m.verify().expect("verifies");
        let got = Interp::new(&m).run(&[]).expect("runs").return_value;
        assert_eq!(got, Some(crate::interp::Value::F(4.5)));
    }

    #[test]
    fn all_round_trips_for_a_loop_with_phis() {
        let mut mb = ModuleBuilder::new("loopy");
        let x = mb.array("x", Type::F64, &[8]);
        mb.function("main", &[], Some(Type::F64), |fb| {
            let zero = fb.fconst(0.0);
            let f = fb.counted_loop_carry(0, 8, 1, &[(Type::F64, zero)], |fb, i, c| {
                let v = fb.load_idx(x, &[i]);
                vec![fb.fadd(c[0], v)]
            });
            fb.ret(Some(f[0]));
        });
        let m = mb.finish();
        let parsed = Module::parse_text(&m.to_text()).expect("parses");
        parsed.verify().expect("verifies");
        let mut i1 = Interp::new(&m);
        let mut i2 = Interp::new(&parsed);
        for i in 0..8 {
            i1.memory.set_f64(x, i, (i + 1) as f64);
            i2.memory.set_f64(x, i, (i + 1) as f64);
        }
        assert_eq!(
            i1.run(&[]).expect("runs").return_value,
            i2.run(&[]).expect("runs").return_value
        );
    }
}
