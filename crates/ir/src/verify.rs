//! Structural and SSA verification.

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::instr::{Instr, Operand, Terminator};
use crate::module::{BlockId, FuncId, Function, Module, ValueDef};
use crate::types::Type;
use std::error::Error;
use std::fmt;

/// A verification failure, pointing at the offending function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Offending function.
    pub func: String,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "verify failed in `{}`: {}", self.func, self.message)
    }
}

impl Error for VerifyError {}

impl Module {
    /// Verifies the module:
    ///
    /// * every block is terminated and branch targets are in range,
    /// * phi incomings cover exactly the block's CFG predecessors,
    /// * every used value is defined and definitions dominate uses
    ///   (phi uses checked at the incoming edge),
    /// * gep index counts match array dimensionality; load/store element
    ///   types match the array declaration where statically known,
    /// * call arity/typing matches the callee signature.
    ///
    /// # Errors
    ///
    /// Returns the first [`VerifyError`] found.
    pub fn verify(&self) -> Result<(), VerifyError> {
        for id in self.function_ids() {
            self.verify_function(id)?;
        }
        Ok(())
    }

    fn verify_function(&self, id: FuncId) -> Result<(), VerifyError> {
        let func = self.function(id);
        let err = |m: String| VerifyError {
            func: func.name.clone(),
            message: m,
        };

        if func.blocks.is_empty() {
            return Err(err("function has no blocks".into()));
        }

        // Terminators and target ranges.
        for b in func.block_ids() {
            let blk = func.block(b);
            let Some(term) = blk.term.as_ref() else {
                return Err(err(format!("block {b} ({}) has no terminator", blk.name)));
            };
            for t in term.successors() {
                if t.index() >= func.blocks.len() {
                    return Err(err(format!("branch target {t} out of range in {b}")));
                }
            }
            if let Terminator::Ret(v) = term {
                match (v, func.ret) {
                    (Some(_), None) => return Err(err("void function returns a value".into())),
                    (None, Some(_)) => return Err(err("non-void function returns nothing".into())),
                    _ => {}
                }
            }
        }

        let cfg = Cfg::compute(func);
        let dom = DomTree::dominators(func, &cfg);

        // Map each value to its defining block (params → entry).
        let mut def_block: Vec<BlockId> = vec![func.entry(); func.values.len()];
        for b in func.block_ids() {
            for &iid in &func.block(b).instrs {
                if let Some(v) = func.result_of(iid) {
                    def_block[v.index()] = b;
                }
            }
        }

        for b in func.block_ids() {
            if !cfg.is_reachable(b) {
                return Err(err(format!("block {b} is unreachable")));
            }
            let blk = func.block(b);
            let mut seen_non_phi = false;
            for (pos, &iid) in blk.instrs.iter().enumerate() {
                let instr = func.instr(iid);
                match instr {
                    Instr::Phi { incomings, ty } => {
                        if seen_non_phi {
                            return Err(err(format!(
                                "phi not at top of block {b} (position {pos})"
                            )));
                        }
                        let mut preds = cfg.preds[b.index()].clone();
                        preds.sort_unstable();
                        let mut inc: Vec<BlockId> = incomings.iter().map(|(p, _)| *p).collect();
                        inc.sort_unstable();
                        if preds != inc {
                            return Err(err(format!(
                                "phi in {b} incomings {inc:?} do not match predecessors {preds:?}"
                            )));
                        }
                        for (p, v) in incomings {
                            self.check_operand_type(func, *v, Some(*ty)).map_err(&err)?;
                            if let Operand::Value(vid) = v {
                                // Definition must dominate the incoming edge,
                                // i.e. dominate the predecessor block.
                                if !dom.dominates(def_block[vid.index()], *p) {
                                    return Err(err(format!(
                                        "phi incoming {vid} from {p} not dominated by its definition"
                                    )));
                                }
                            }
                        }
                    }
                    _ => {
                        seen_non_phi = true;
                        let mut problem: Option<String> = None;
                        instr.for_each_operand(|op| {
                            if problem.is_some() {
                                return;
                            }
                            if let Operand::Value(v) = op {
                                if v.index() >= func.values.len() {
                                    problem = Some(format!("use of undefined value {v}"));
                                } else if !dom.dominates(def_block[v.index()], b) {
                                    // Same-block ordering: defs must precede uses.
                                    if def_block[v.index()] == b {
                                        // fall through to ordering check below
                                    } else {
                                        problem = Some(format!(
                                            "use of {v} in {b} not dominated by its definition in {}",
                                            def_block[v.index()]
                                        ));
                                    }
                                }
                            }
                        });
                        if let Some(p) = problem {
                            return Err(err(p));
                        }
                        self.check_instr(func, instr).map_err(&err)?;
                    }
                }
            }
            // Same-block def-before-use ordering.
            let mut defined_here: Vec<bool> = vec![false; func.values.len()];
            for &iid in &blk.instrs {
                let instr = func.instr(iid);
                if !matches!(instr, Instr::Phi { .. }) {
                    let mut bad = None;
                    instr.for_each_operand(|op| {
                        if bad.is_some() {
                            return;
                        }
                        if let Operand::Value(v) = op {
                            if def_block[v.index()] == b
                                && !defined_here[v.index()]
                                && !matches!(func.values[v.index()], ValueDef::Param(..))
                                && !is_phi_def(func, v)
                            {
                                bad = Some(format!("value {v} used before definition in {b}"));
                            }
                        }
                    });
                    if let Some(m) = bad {
                        return Err(err(m));
                    }
                }
                if let Some(v) = func.result_of(iid) {
                    defined_here[v.index()] = true;
                }
            }
        }
        Ok(())
    }

    fn check_operand_type(
        &self,
        func: &Function,
        op: Operand,
        expect: Option<Type>,
    ) -> Result<(), String> {
        if let (Operand::Value(v), Some(want)) = (op, expect) {
            if let Some(got) = func.value_type(v) {
                if got != want {
                    return Err(format!("operand {v} has type {got}, expected {want}"));
                }
            }
        }
        Ok(())
    }

    fn check_instr(&self, func: &Function, instr: &Instr) -> Result<(), String> {
        match instr {
            Instr::Binary { ty, lhs, rhs, .. } => {
                self.check_operand_type(func, *lhs, Some(*ty))?;
                self.check_operand_type(func, *rhs, Some(*ty))?;
            }
            // `ty` is the result type; the conversions (sitofp/fptosi) take
            // an operand of the other class, so only same-type ops are
            // checked.
            Instr::Unary { op, ty, val }
                if !matches!(
                    op,
                    crate::instr::UnaryOp::SiToFp | crate::instr::UnaryOp::FpToSi
                ) =>
            {
                self.check_operand_type(func, *val, Some(*ty))?;
            }
            Instr::Cmp { ty, lhs, rhs, .. } => {
                self.check_operand_type(func, *lhs, Some(*ty))?;
                self.check_operand_type(func, *rhs, Some(*ty))?;
            }
            Instr::Select {
                ty,
                cond,
                then_val,
                else_val,
            } => {
                self.check_operand_type(func, *cond, Some(Type::I1))?;
                self.check_operand_type(func, *then_val, Some(*ty))?;
                self.check_operand_type(func, *else_val, Some(*ty))?;
            }
            Instr::Gep { array, indices } => {
                if array.index() >= self.arrays.len() {
                    return Err(format!("gep references undeclared array {array}"));
                }
                let decl = self.array(*array);
                if indices.len() != decl.dims.len() {
                    return Err(format!(
                        "gep into `{}` has {} indices for {} dimensions",
                        decl.name,
                        indices.len(),
                        decl.dims.len()
                    ));
                }
            }
            Instr::Load { ptr, ty } | Instr::Store { ptr, ty, .. } => {
                if let Instr::Store { value, .. } = instr {
                    self.check_operand_type(func, *value, Some(*ty))?;
                }
                // Where the pointer is a direct gep result we can check the
                // element type.
                if let Operand::Value(v) = ptr {
                    if let ValueDef::Instr(iid) = func.values[v.index()] {
                        if let Instr::Gep { array, .. } = func.instr(iid) {
                            let decl = self.array(*array);
                            if decl.elem != *ty {
                                return Err(format!(
                                    "access type {ty} mismatches `{}` element type {}",
                                    decl.name, decl.elem
                                ));
                            }
                        }
                    }
                }
            }
            Instr::Call { callee, args, ty } => {
                if callee.index() >= self.functions.len() {
                    return Err(format!("call to undeclared function {callee}"));
                }
                let target = self.function(*callee);
                if args.len() != target.params.len() {
                    return Err(format!(
                        "call to `{}` passes {} args for {} params",
                        target.name,
                        args.len(),
                        target.params.len()
                    ));
                }
                if *ty != target.ret {
                    return Err(format!("call to `{}` result type mismatch", target.name));
                }
            }
            _ => {}
        }
        Ok(())
    }
}

fn is_phi_def(func: &Function, v: crate::module::ValueId) -> bool {
    matches!(
        func.values[v.index()],
        ValueDef::Instr(iid) if matches!(func.instr(iid), Instr::Phi { .. })
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;

    #[test]
    fn builder_output_verifies() {
        let mut mb = ModuleBuilder::new("t");
        let a = mb.array("A", Type::F64, &[4, 4]);
        mb.function("f", &[Type::I64], Some(Type::F64), |fb| {
            let p = fb.param(0);
            let acc = fb.fconst(0.0);
            let finals = fb.counted_loop_carry(0, 4, 1, &[(Type::F64, acc)], |fb, i, c| {
                let v = fb.load_idx(a, &[i, p]);
                vec![fb.fadd(c[0], v)]
            });
            fb.ret(Some(finals[0]));
        });
        let m = mb.finish();
        m.verify().expect("builder output must verify");
    }

    #[test]
    fn missing_terminator_is_rejected() {
        let mut mb = ModuleBuilder::new("t");
        mb.function("f", &[], None, |fb| {
            // create an orphan block without a terminator
            fb.new_block("orphan");
            fb.ret(None);
        });
        let m = mb.finish();
        let e = m.verify().expect_err("must fail");
        assert!(e.message.contains("no terminator"), "{e}");
    }

    #[test]
    fn gep_arity_is_checked() {
        let mut mb = ModuleBuilder::new("t");
        let a = mb.array("A", Type::F64, &[4, 4]);
        mb.function("f", &[], None, |fb| {
            let i = fb.iconst(0);
            let _p = fb.gep(a, &[i]); // 1 index for 2-D array
            fb.ret(None);
        });
        let m = mb.finish();
        let e = m.verify().expect_err("must fail");
        assert!(e.message.contains("indices"), "{e}");
    }

    #[test]
    fn access_type_mismatch_is_rejected() {
        let mut mb = ModuleBuilder::new("t");
        let a = mb.array("A", Type::F64, &[4]);
        mb.function("f", &[], None, |fb| {
            let i = fb.iconst(0);
            let _ = fb.load_idx_ty(a, &[i], Type::I64);
            fb.ret(None);
        });
        let m = mb.finish();
        let e = m.verify().expect_err("must fail");
        assert!(e.message.contains("mismatches"), "{e}");
    }

    #[test]
    fn void_return_mismatch_is_rejected() {
        let mut mb = ModuleBuilder::new("t");
        mb.function("f", &[], None, |fb| {
            let v = fb.iconst(3);
            fb.ret(Some(v));
        });
        let m = mb.finish();
        let e = m.verify().expect_err("must fail");
        assert!(e.message.contains("void"), "{e}");
    }

    #[test]
    fn call_arity_is_checked() {
        let mut mb = ModuleBuilder::new("t");
        let g = mb.function("g", &[Type::I64], None, |fb| fb.ret(None));
        mb.function("f", &[], None, |fb| {
            fb.call(g, &[], None);
            fb.ret(None);
        });
        let m = mb.finish();
        let e = m.verify().expect_err("must fail");
        assert!(e.message.contains("args"), "{e}");
    }
}
