//! # cayman-ir
//!
//! A compact, typed, SSA-form compiler intermediate representation that plays
//! the role LLVM IR plays in the Cayman paper (DAC 2025).
//!
//! The Cayman framework consumes *applications*, not hand-extracted kernels,
//! so it needs a real IR with functions, basic blocks, branches, phis and
//! explicit memory operations. This crate provides:
//!
//! * the IR itself ([`Module`], [`Function`], [`Block`], [`Instr`]) with a
//!   GEP-style address instruction over globally declared arrays,
//! * a [`builder`] API for constructing programs,
//! * a structural [`verify`]er,
//! * a textual [`mod@print`]er and the inverse [`parse`]r (modules
//!   round-trip through text),
//! * CFG analyses: predecessors/successors ([`mod@cfg`]), dominators and
//!   post-dominators ([`dom`]), natural loops ([`loops`]),
//! * an [`interp`]reter with a CVA6-like in-order CPU cycle model
//!   ([`cpu_model`]) used as the profiling substrate (the paper instruments
//!   LLVM bitcode and runs natively; we interpret and count cycles instead).
//!
//! ## Example
//!
//! ```
//! use cayman_ir::builder::ModuleBuilder;
//! use cayman_ir::types::Type;
//!
//! let mut mb = ModuleBuilder::new("demo");
//! let x = mb.array("x", Type::F64, &[16]);
//! let y = mb.array("y", Type::F64, &[16]);
//! let f = mb.function("scale", &[], None, |fb| {
//!     fb.counted_loop(0, 16, 1, |fb, i| {
//!         let xv = fb.load_idx(x, &[i]);
//!         let two = fb.fconst(2.0);
//!         let v = fb.fmul(xv, two);
//!         fb.store_idx(y, &[i], v);
//!     });
//!     fb.ret(None);
//! });
//! let module = mb.finish();
//! module.verify().expect("well-formed");
//! assert_eq!(module.function(f).name, "scale");
//! ```

pub mod builder;
pub mod cfg;
pub mod cpu_model;
mod decode;
pub mod dom;
pub mod fingerprint;
pub mod instr;
pub mod interp;
pub mod loops;
pub mod module;
pub mod parse;
pub mod print;
pub mod transform;
pub mod types;
pub mod verify;

pub use decode::generic_dispatch_mix;
pub use fingerprint::{
    fingerprint_arrays, fingerprint_function, fingerprint_memory, fingerprint_module,
    fingerprint_module_from_parts,
};
pub use instr::{BinOp, CmpPred, Imm, Instr, Operand, Terminator, UnaryOp};
pub use interp::{decode_function, DecodedFunction};
pub use module::{ArrayDecl, ArrayId, Block, BlockId, FuncId, Function, InstrId, Module, ValueId};
pub use types::Type;
