//! Structural content fingerprints for incremental re-analysis.
//!
//! The incremental pipeline (`cayman-core`'s `IncrementalApp`) keys every
//! query by *content*, not by revision counters: two module states whose
//! functions hash equal get bit-identical analysis results, so an edit that
//! restores earlier content re-hits every cache (the salsa "change it back"
//! green path). That only works if the fingerprint covers **everything an
//! analysis can observe** about a function — parameter and return types,
//! block structure, instruction operands (float immediates by IEEE bits),
//! terminators and the value arena — and nothing it cannot (the lazily
//! cached `instr → block` map is derived state and excluded).
//!
//! The hash is FNV-1a over a canonical field walk with a splitmix64
//! finaliser, the same dep-free construction `cayman-select`'s `DesignCache`
//! uses for stripe picking. It is a few ns per instruction: cheap enough to
//! run on the edited function inside a sub-millisecond re-selection budget.
//! Fingerprints are 64-bit, so collisions are possible in principle; every
//! incremental result is additionally pinned bit-identical to fresh analysis
//! by the differential gates in `cayman-bench`.

use crate::instr::{Imm, Instr, Operand, Terminator};
use crate::interp::{Memory, Value};
use crate::module::{ArrayDecl, Function, Module, ValueDef};

/// Incremental FNV-1a/splitmix64 hasher over IR structure.
struct Fnv(u64);

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Fnv {
        Fnv(Self::OFFSET)
    }

    fn u8(&mut self, b: u8) {
        self.0 = (self.0 ^ u64::from(b)).wrapping_mul(Self::PRIME);
    }

    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.u8(b);
        }
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn str(&mut self, s: &str) {
        self.usize(s.len());
        for b in s.as_bytes() {
            self.u8(*b);
        }
    }

    fn opnd(&mut self, o: &Operand) {
        match *o {
            Operand::Value(v) => {
                self.u8(0);
                self.u64(u64::from(v.0));
            }
            Operand::Const(imm) => {
                self.u8(1);
                match imm {
                    Imm::Int(i) => {
                        self.u8(0);
                        self.u64(i as u64);
                    }
                    Imm::Float(f) => {
                        self.u8(1);
                        self.u64(f.to_bits());
                    }
                    Imm::Bool(b) => {
                        self.u8(2);
                        self.u8(u8::from(b));
                    }
                }
            }
        }
    }

    /// splitmix64 finaliser: FNV alone mixes low bits poorly, and these
    /// digests feed `HashMap` keys and cache-stripe picks directly.
    fn finish(self) -> u64 {
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

fn hash_instr(h: &mut Fnv, ins: &Instr) {
    match ins {
        Instr::Binary { op, ty, lhs, rhs } => {
            h.u8(0);
            h.u8(*op as u8);
            h.u8(*ty as u8);
            h.opnd(lhs);
            h.opnd(rhs);
        }
        Instr::Unary { op, ty, val } => {
            h.u8(1);
            h.u8(*op as u8);
            h.u8(*ty as u8);
            h.opnd(val);
        }
        Instr::Cmp { pred, ty, lhs, rhs } => {
            h.u8(2);
            h.u8(*pred as u8);
            h.u8(*ty as u8);
            h.opnd(lhs);
            h.opnd(rhs);
        }
        Instr::Select {
            cond,
            ty,
            then_val,
            else_val,
        } => {
            h.u8(3);
            h.u8(*ty as u8);
            h.opnd(cond);
            h.opnd(then_val);
            h.opnd(else_val);
        }
        Instr::Gep { array, indices } => {
            h.u8(4);
            h.u64(u64::from(array.0));
            h.usize(indices.len());
            for idx in indices {
                h.opnd(idx);
            }
        }
        Instr::Load { ptr, ty } => {
            h.u8(5);
            h.u8(*ty as u8);
            h.opnd(ptr);
        }
        Instr::Store { ptr, value, ty } => {
            h.u8(6);
            h.u8(*ty as u8);
            h.opnd(ptr);
            h.opnd(value);
        }
        Instr::Phi { ty, incomings } => {
            h.u8(7);
            h.u8(*ty as u8);
            h.usize(incomings.len());
            for (b, o) in incomings {
                h.u64(u64::from(b.0));
                h.opnd(o);
            }
        }
        Instr::Call { callee, args, ty } => {
            h.u8(8);
            h.u64(u64::from(callee.0));
            match ty {
                None => h.u8(0),
                Some(t) => {
                    h.u8(1);
                    h.u8(*t as u8);
                }
            }
            h.usize(args.len());
            for a in args {
                h.opnd(a);
            }
        }
    }
}

fn hash_term(h: &mut Fnv, t: &Terminator) {
    match t {
        Terminator::Br(b) => {
            h.u8(0);
            h.u64(u64::from(b.0));
        }
        Terminator::CondBr {
            cond,
            then_bb,
            else_bb,
        } => {
            h.u8(1);
            h.opnd(cond);
            h.u64(u64::from(then_bb.0));
            h.u64(u64::from(else_bb.0));
        }
        Terminator::Ret(v) => {
            h.u8(2);
            match v {
                None => h.u8(0),
                Some(o) => {
                    h.u8(1);
                    h.opnd(o);
                }
            }
        }
    }
}

/// Content fingerprint of one function: every analysis-observable field in a
/// canonical order. Equal fingerprints ⇒ structurally identical functions ⇒
/// bit-identical per-function analysis, normalization and decode results.
pub fn fingerprint_function(f: &Function) -> u64 {
    let mut h = Fnv::new();
    h.str(&f.name);
    h.usize(f.params.len());
    for p in &f.params {
        h.u8(*p as u8);
    }
    match f.ret {
        None => h.u8(0),
        Some(t) => {
            h.u8(1);
            h.u8(t as u8);
        }
    }
    h.usize(f.blocks.len());
    for b in &f.blocks {
        h.str(&b.name);
        h.usize(b.instrs.len());
        for i in &b.instrs {
            h.u64(u64::from(i.0));
        }
        match &b.term {
            None => h.u8(0),
            Some(t) => {
                h.u8(1);
                hash_term(&mut h, t);
            }
        }
    }
    h.usize(f.instrs.len());
    for ins in &f.instrs {
        hash_instr(&mut h, ins);
    }
    h.usize(f.values.len());
    for v in &f.values {
        match *v {
            ValueDef::Param(i, ty) => {
                h.u8(0);
                h.u64(u64::from(i));
                h.u8(ty as u8);
            }
            ValueDef::Instr(id) => {
                h.u8(1);
                h.u64(u64::from(id.0));
            }
        }
    }
    h.usize(f.instr_results.len());
    for r in &f.instr_results {
        match r {
            None => h.u8(0),
            Some(v) => {
                h.u8(1);
                h.u64(u64::from(v.0));
            }
        }
    }
    h.finish()
}

/// Fingerprint of the array declarations (name, element type, dims). Arrays
/// shape gep legality, access footprints and initial memory, so they are
/// part of every whole-module query key.
pub fn fingerprint_arrays(arrays: &[ArrayDecl]) -> u64 {
    let mut h = Fnv::new();
    h.usize(arrays.len());
    for a in arrays {
        h.str(&a.name);
        h.u8(a.elem as u8);
        h.usize(a.dims.len());
        for d in &a.dims {
            h.usize(*d);
        }
    }
    h.finish()
}

/// Fingerprint of a whole module state, derived from the per-function
/// digests so callers that already hold them pay only the combine.
pub fn fingerprint_module_from_parts(name: &str, func_fps: &[u64], arrays_fp: u64) -> u64 {
    let mut h = Fnv::new();
    h.str(name);
    h.usize(func_fps.len());
    for fp in func_fps {
        h.u64(*fp);
    }
    h.u64(arrays_fp);
    h.finish()
}

/// Convenience: fingerprint a whole [`Module`] from scratch.
pub fn fingerprint_module(m: &Module) -> u64 {
    let fps: Vec<u64> = m.functions.iter().map(fingerprint_function).collect();
    fingerprint_module_from_parts(&m.name, &fps, fingerprint_arrays(&m.arrays))
}

/// Fingerprint of an initial [`Memory`] image by cell content (floats and
/// pointers by bit pattern). Profiling observes memory, so the profile query
/// key includes this; `IncrementalApp` computes it once per memory image,
/// not per edit.
pub fn fingerprint_memory(mem: &Memory) -> u64 {
    let mut h = Fnv::new();
    let cells = mem.cells();
    h.usize(cells.len());
    for c in cells {
        match *c {
            Value::I(i) => {
                h.u8(0);
                h.u64(i as u64);
            }
            Value::F(f) => {
                h.u8(1);
                h.u64(f.to_bits());
            }
            Value::B(b) => {
                h.u8(2);
                h.u8(u8::from(b));
            }
            Value::P(p) => {
                h.u8(3);
                h.usize(p);
            }
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::instr::{Imm, Operand};
    use crate::types::Type;

    fn sample(konst: i64) -> Module {
        let mut mb = ModuleBuilder::new("fp");
        let x = mb.array("x", Type::F64, &[8]);
        mb.function("main", &[], Some(Type::F64), |fb| {
            let init = fb.fconst(0.0);
            let out = fb.counted_loop_carry(0, 8, 1, &[(Type::F64, init)], |fb, i, c| {
                let shifted = fb.add(i, fb.iconst(konst));
                let idx = fb.and(shifted, fb.iconst(7));
                let v = fb.load_idx(x, &[idx]);
                vec![fb.fadd(c[0], v)]
            });
            fb.ret(Some(out[0]));
        });
        mb.finish()
    }

    #[test]
    fn identical_content_hashes_equal() {
        let (a, b) = (sample(3), sample(3));
        assert_eq!(
            fingerprint_function(&a.functions[0]),
            fingerprint_function(&b.functions[0])
        );
        assert_eq!(fingerprint_module(&a), fingerprint_module(&b));
    }

    #[test]
    fn single_constant_edit_changes_the_hash() {
        let (a, b) = (sample(3), sample(4));
        assert_ne!(
            fingerprint_function(&a.functions[0]),
            fingerprint_function(&b.functions[0])
        );
        assert_ne!(fingerprint_module(&a), fingerprint_module(&b));
    }

    #[test]
    fn float_immediates_hash_by_bits() {
        // 0.0 and -0.0 compare equal as f64 but are different constants to
        // const-fold; the fingerprint must separate them.
        let mk = |v: f64| {
            let mut mb = ModuleBuilder::new("fz");
            mb.function("main", &[], Some(Type::F64), |fb| {
                let a = fb.fadd(Operand::Const(Imm::Float(v)), fb.fconst(1.0));
                fb.ret(Some(a));
            });
            mb.finish()
        };
        assert_ne!(
            fingerprint_function(&mk(0.0).functions[0]),
            fingerprint_function(&mk(-0.0).functions[0])
        );
    }

    #[test]
    fn derived_block_map_does_not_perturb_the_hash() {
        let a = sample(5);
        let before = fingerprint_function(&a.functions[0]);
        let _ = a.functions[0].instr_block_map();
        assert_eq!(before, fingerprint_function(&a.functions[0]));
    }

    #[test]
    fn memory_fingerprint_sees_cell_edits() {
        let m = sample(1);
        let mem_a = Memory::for_module(&m);
        let mut mem_b = Memory::for_module(&m);
        assert_eq!(fingerprint_memory(&mem_a), fingerprint_memory(&mem_b));
        mem_b.set_f64(crate::module::ArrayId(0), 0, 42.0);
        assert_ne!(fingerprint_memory(&mem_a), fingerprint_memory(&mem_b));
    }
}
