//! Pre-decoded execution engine: flat opcode streams over a slot-indexed
//! register file.
//!
//! [`decode`] lowers each [`Function`] once into a [`DecodedFunc`]:
//!
//! * every block becomes a flat `Box<[DecodedOp]>` — a compact op enum whose
//!   operand slots are already resolved to register indices ([`Opnd::Reg`])
//!   or inline immediates ([`Opnd::Imm`]), so execution never touches the
//!   instruction arena, operand `Vec`s, or `result_of` lookups;
//! * phi moves are compiled into per-predecessor edge tables
//!   ([`EdgeMoves`]) applied at the branch site — no per-step incoming
//!   search and no `phi_updates` allocation (conflicting move sets are
//!   flagged `parallel` and applied through a reusable scratch buffer);
//! * terminators become direct block/edge indices ([`DecodedTerm`]);
//! * the register file is a flat `Vec<Value>` with **no** `Option` wrapping:
//!   a one-time, verifier-equivalent init check at decode time (definitions
//!   dominate uses; phi incomings checked at the predecessor edge;
//!   same-block defs precede uses) replaces the walker's per-read unwraps.
//!
//! Register slot `i` holds `ValueId(i)` (parameters first, then instruction
//! results, mirroring [`Function::values`]); one extra trailing *trash* slot
//! receives results of value-producing instructions whose result is unused,
//! so their side effects (division-by-zero, bounds errors) are preserved.
//!
//! `decode` is deliberately conservative: any structural irregularity the
//! init check cannot prove safe — missing terminators, out-of-range targets
//! or value ids, phis after non-phis or in the entry block, missing phi
//! incomings, unreachable blocks, gep/call shape mismatches — makes it
//! return `None`, and [`crate::interp::Interp::new`] falls back to the
//! reference walker so error *and* panic behavior on unverified modules
//! never diverges. Every verified module decodes.

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::instr::{BinOp, CmpPred, Imm, Instr, Operand, Terminator, UnaryOp};
use crate::interp::{exec_binary, exec_cmp, exec_unary, InterpError, Memory, Value};
use crate::module::{ArrayId, BlockId, FuncId, Function, Module, ValueDef};
use crate::types::Type;
use std::collections::HashMap;

/// Sentinel edge index for branches into blocks without phis.
const NO_EDGE: u32 = u32::MAX;

/// A decoded operand: a register slot or an inline immediate.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Opnd {
    /// Register slot (= `ValueId` index).
    Reg(u32),
    /// Immediate, already lifted to a dynamic [`Value`].
    Imm(Value),
}

#[inline(always)]
fn ev(regs: &[Value], o: Opnd) -> Value {
    match o {
        Opnd::Reg(r) => regs[r as usize],
        Opnd::Imm(v) => v,
    }
}

fn imm_value(imm: Imm) -> Value {
    match imm {
        Imm::Int(v) => Value::I(v),
        Imm::Float(v) => Value::F(v),
        Imm::Bool(v) => Value::B(v),
    }
}

/// One decoded gep dimension: index operand plus the statically known
/// stride/extent of that dimension.
#[derive(Debug, Clone)]
pub(crate) struct GepDim {
    idx: Opnd,
    stride: i64,
    size: usize,
    /// Dimension number, kept for the out-of-bounds error message.
    dim: u32,
}

/// A decoded instruction. `dst` slots for value-producing ops whose result
/// is unused point at the trash register.
#[derive(Debug, Clone)]
pub(crate) enum DecodedOp {
    Binary {
        op: BinOp,
        ty: Type,
        dst: u32,
        lhs: Opnd,
        rhs: Opnd,
    },
    Unary {
        op: UnaryOp,
        dst: u32,
        val: Opnd,
    },
    Cmp {
        pred: CmpPred,
        ty: Type,
        dst: u32,
        lhs: Opnd,
        rhs: Opnd,
    },
    Select {
        dst: u32,
        cond: Opnd,
        then_val: Opnd,
        else_val: Opnd,
    },
    Gep {
        dst: u32,
        array: ArrayId,
        dims: Box<[GepDim]>,
    },
    /// `Gep` whose trailing indices are integer constants already proven in
    /// bounds at decode time: their contribution is pre-summed into `base`,
    /// and only the variable prefix `dims` is evaluated and bounds-checked
    /// at runtime. Since the folded checks always pass, the remaining
    /// checks fire in the same order with the same messages as the generic
    /// form. After `-O1` normalization most fixed-column/row accesses take
    /// this path.
    GepConst {
        dst: u32,
        array: ArrayId,
        dims: Box<[GepDim]>,
        base: i64,
    },
    Load {
        dst: u32,
        ptr: Opnd,
    },
    Store {
        ptr: Opnd,
        value: Opnd,
    },
    Call {
        callee: FuncId,
        /// `Some` iff the instruction's result type is non-void (trash slot
        /// when the result is unused) — mirrors the walker's arity matching.
        dst: Option<u32>,
        args: Box<[Opnd]>,
    },
    // The hottest arithmetic patterns of the profiled kernels, specialised
    // at decode time so execution skips the generic `(op, ty)` dispatch of
    // `exec_binary`/`exec_cmp`. Semantics — including operand evaluation
    // order and type-confusion errors — are identical to the generic forms.
    FAdd {
        dst: u32,
        lhs: Opnd,
        rhs: Opnd,
    },
    FSub {
        dst: u32,
        lhs: Opnd,
        rhs: Opnd,
    },
    FMul {
        dst: u32,
        lhs: Opnd,
        rhs: Opnd,
    },
    FDiv {
        dst: u32,
        lhs: Opnd,
        rhs: Opnd,
    },
    /// `I64` add (the only integer width with no narrowing step).
    IAdd64 {
        dst: u32,
        lhs: Opnd,
        rhs: Opnd,
    },
    /// `I64` subtract — with `IAnd64` it was 83% of the remaining generic
    /// `(op, ty)` dispatch on the corpus (EXPERIMENTS.md dispatch mix).
    ISub64 {
        dst: u32,
        lhs: Opnd,
        rhs: Opnd,
    },
    /// `I64` bitwise and (`&` needs no narrowing at any width, but only the
    /// `I64` form is hot enough to earn a fast path).
    IAnd64 {
        dst: u32,
        lhs: Opnd,
        rhs: Opnd,
    },
    /// Signed integer `<` (all integer widths compare on `i64` storage).
    ICmpLt {
        dst: u32,
        lhs: Opnd,
        rhs: Opnd,
    },
    /// Integer `==`.
    ICmpEq {
        dst: u32,
        lhs: Opnd,
        rhs: Opnd,
    },
    /// An `FMul` whose single-use product feeds the *immediately following*
    /// `FAdd`, fused into one dispatch by [`fuse_fmul_fadd`]. The product
    /// and the sum keep their **separate IEEE roundings** — only the
    /// dispatch, the product's register write and its re-read are fused, so
    /// results stay bit-identical to the unfused pair. `product_on_lhs`
    /// records which side of the add the product sat on, preserving the
    /// add's operand order (NaN payload propagation) exactly.
    FMulAdd {
        dst: u32,
        a: Opnd,
        b: Opnd,
        c: Opnd,
        product_on_lhs: bool,
    },
}

/// Rewrites a generic `Binary`/`Cmp` into its specialised form when one
/// applies; everything else passes through unchanged.
fn specialise(op: DecodedOp) -> DecodedOp {
    match op {
        DecodedOp::Binary {
            op: BinOp::FAdd,
            dst,
            lhs,
            rhs,
            ..
        } => DecodedOp::FAdd { dst, lhs, rhs },
        DecodedOp::Binary {
            op: BinOp::FSub,
            dst,
            lhs,
            rhs,
            ..
        } => DecodedOp::FSub { dst, lhs, rhs },
        DecodedOp::Binary {
            op: BinOp::FMul,
            dst,
            lhs,
            rhs,
            ..
        } => DecodedOp::FMul { dst, lhs, rhs },
        DecodedOp::Binary {
            op: BinOp::FDiv,
            dst,
            lhs,
            rhs,
            ..
        } => DecodedOp::FDiv { dst, lhs, rhs },
        DecodedOp::Binary {
            op: BinOp::Add,
            ty: Type::I64,
            dst,
            lhs,
            rhs,
        } => DecodedOp::IAdd64 { dst, lhs, rhs },
        DecodedOp::Binary {
            op: BinOp::Sub,
            ty: Type::I64,
            dst,
            lhs,
            rhs,
        } => DecodedOp::ISub64 { dst, lhs, rhs },
        DecodedOp::Binary {
            op: BinOp::And,
            ty: Type::I64,
            dst,
            lhs,
            rhs,
        } => DecodedOp::IAnd64 { dst, lhs, rhs },
        DecodedOp::Cmp {
            pred: CmpPred::Lt,
            ty,
            dst,
            lhs,
            rhs,
        } if !ty.is_float() => DecodedOp::ICmpLt { dst, lhs, rhs },
        DecodedOp::Cmp {
            pred: CmpPred::Eq,
            ty,
            dst,
            lhs,
            rhs,
        } if !ty.is_float() => DecodedOp::ICmpEq { dst, lhs, rhs },
        other => other,
    }
}

/// Dynamic dispatch mix of the *generic* decoded ops: every
/// [`Instr::Binary`] / [`Instr::Cmp`] that [`specialise`] leaves on the
/// generic `(op, ty)` dispatch path, weighted by how often its block
/// executed in `exec`. Returns `(label, dynamic_count)` pairs sorted by
/// descending count — the specialization shortlist for future fast-path
/// [`DecodedOp`] variants.
pub fn generic_dispatch_mix(
    module: &Module,
    exec: &crate::interp::ExecProfile,
) -> Vec<(String, u64)> {
    let mut counts: HashMap<String, u64> = HashMap::new();
    for (fi, func) in module.functions.iter().enumerate() {
        let Some(bc) = exec.block_counts.get(fi) else {
            continue;
        };
        for b in func.block_ids() {
            let weight = bc.get(b.index()).copied().unwrap_or(0);
            if weight == 0 {
                continue;
            }
            for &iid in &func.block(b).instrs {
                // Re-run the real specialiser on a dummy decoding so the
                // shortlist can never drift from the dispatcher's rules.
                let probe = match *func.instr(iid) {
                    Instr::Binary { op, ty, .. } => DecodedOp::Binary {
                        op,
                        ty,
                        dst: 0,
                        lhs: Opnd::Reg(0),
                        rhs: Opnd::Reg(0),
                    },
                    Instr::Cmp { pred, ty, .. } => DecodedOp::Cmp {
                        pred,
                        ty,
                        dst: 0,
                        lhs: Opnd::Reg(0),
                        rhs: Opnd::Reg(0),
                    },
                    _ => continue,
                };
                let label = match specialise(probe) {
                    DecodedOp::Binary { op, ty, .. } => {
                        format!("{} {ty}", op.mnemonic())
                    }
                    DecodedOp::Cmp { pred, ty, .. } => {
                        format!("cmp {} {ty}", pred.mnemonic())
                    }
                    _ => continue, // has a fast path already
                };
                *counts.entry(label).or_insert(0) += weight;
            }
        }
    }
    let mut mix: Vec<(String, u64)> = counts.into_iter().collect();
    mix.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    mix
}

/// Fuses an [`DecodedOp::FMul`] directly followed by an [`DecodedOp::FAdd`]
/// that consumes its result as that result's only static use into one
/// [`DecodedOp::FMulAdd`].
///
/// Only *adjacent* pairs fuse: with no ops between the multiply and the
/// add, deferring the product's register write cannot reorder it past any
/// other effect or error, so operand evaluation order — and with it every
/// type-confusion error and both roundings — is exactly the unfused
/// sequence's. The single-use requirement (checked against whole-function
/// static use counts, phi incomings and terminators included) makes the
/// elided product register unobservable; `t + t` shapes keep both reads and
/// are left unfused, as is anything writing to the trash slot (its index is
/// past `use_count` and never qualifies).
fn fuse_fmul_fadd(ops: Vec<DecodedOp>, use_count: &[u32]) -> Vec<DecodedOp> {
    let mut out: Vec<DecodedOp> = Vec::with_capacity(ops.len());
    for op in ops {
        if let DecodedOp::FAdd { dst, lhs, rhs } = op {
            if let Some(&DecodedOp::FMul {
                dst: t,
                lhs: a,
                rhs: b,
            }) = out.last()
            {
                let lhs_is_t = matches!(lhs, Opnd::Reg(r) if r == t);
                let rhs_is_t = matches!(rhs, Opnd::Reg(r) if r == t);
                if (lhs_is_t != rhs_is_t)
                    && (t as usize) < use_count.len()
                    && use_count[t as usize] == 1
                {
                    out.pop();
                    out.push(DecodedOp::FMulAdd {
                        dst,
                        a,
                        b,
                        c: if lhs_is_t { rhs } else { lhs },
                        product_on_lhs: lhs_is_t,
                    });
                    continue;
                }
            }
            out.push(DecodedOp::FAdd { dst, lhs, rhs });
        } else {
            out.push(op);
        }
    }
    out
}

/// A decoded terminator with direct block and edge-table indices.
#[derive(Debug, Clone, Copy)]
pub(crate) enum DecodedTerm {
    Br {
        target: u32,
        edge: u32,
    },
    CondBr {
        cond: Opnd,
        then_target: u32,
        then_edge: u32,
        else_target: u32,
        else_edge: u32,
    },
    Ret(Option<Opnd>),
}

/// The compiled phi moves for one CFG edge, applied when the edge is taken.
#[derive(Debug, Clone)]
pub(crate) struct EdgeMoves {
    moves: Box<[(u32, Opnd)]>,
    /// Whether any move reads a register another move writes — if so the
    /// moves must be applied as a parallel assignment (via scratch).
    parallel: bool,
}

#[derive(Debug, Clone)]
pub(crate) struct DecodedBlock {
    ops: Box<[DecodedOp]>,
    term: DecodedTerm,
}

#[derive(Debug, Clone)]
pub(crate) struct DecodedFunc {
    params: usize,
    /// Register-file size: one slot per SSA value plus the trash slot.
    regs: usize,
    blocks: Vec<DecodedBlock>,
    edges: Vec<EdgeMoves>,
}

/// A fully decoded module. Functions index-align with
/// [`Module::functions`].
#[derive(Debug)]
pub(crate) struct DecodedModule {
    funcs: Vec<DecodedFunc>,
}

impl DecodedModule {
    /// Reassembles a decoded module from per-function decodings that were
    /// cached across edits (see [`crate::interp::DecodedFunction`]). The
    /// caller guarantees index alignment with the module the parts were
    /// decoded against.
    pub(crate) fn from_funcs(funcs: Vec<DecodedFunc>) -> DecodedModule {
        DecodedModule { funcs }
    }
}

/// Decodes a whole module, or `None` if any function has an irregularity
/// the init check cannot prove safe (the caller then uses the walker).
pub(crate) fn decode(module: &Module) -> Option<DecodedModule> {
    let mut funcs = Vec::with_capacity(module.functions.len());
    for func in &module.functions {
        funcs.push(decode_func(module, func)?);
    }
    Some(DecodedModule { funcs })
}

/// Resolves a non-phi operand use in block `b`, enforcing the init check:
/// the definition must dominate `b`, or precede the use within `b`.
fn use_opnd(
    func: &Function,
    dom: &DomTree,
    def_block: &[Option<BlockId>],
    defined_here: &[bool],
    b: BlockId,
    op: Operand,
) -> Option<Opnd> {
    match op {
        Operand::Const(imm) => Some(Opnd::Imm(imm_value(imm))),
        Operand::Value(v) => {
            if v.index() >= func.values.len() {
                return None;
            }
            let d = def_block[v.index()]?;
            if d == b {
                if !defined_here[v.index()] {
                    return None;
                }
            } else if !dom.dominates(d, b) {
                return None;
            }
            Some(Opnd::Reg(v.0))
        }
    }
}

pub(crate) fn decode_func(module: &Module, func: &Function) -> Option<DecodedFunc> {
    let nblocks = func.blocks.len();
    let nvalues = func.values.len();
    let trash = nvalues as u32;
    let entry = func.entry();

    // Terminator presence, target ranges and ret/signature conformance must
    // hold before Cfg::compute (which panics on their absence).
    for b in func.block_ids() {
        let term = func.block(b).term.as_ref()?;
        match term {
            Terminator::Br(t) => {
                if t.index() >= nblocks {
                    return None;
                }
            }
            Terminator::CondBr {
                then_bb, else_bb, ..
            } => {
                if then_bb.index() >= nblocks || else_bb.index() >= nblocks {
                    return None;
                }
            }
            Terminator::Ret(v) => {
                if matches!((v, func.ret), (Some(_), None) | (None, Some(_))) {
                    return None;
                }
            }
        }
    }

    let cfg = Cfg::compute(func);
    let dom = DomTree::dominators(func, &cfg);

    // Whole-function static use counts per value (operands, phi incomings
    // and terminators all included), for the fmul→fadd fusion below: a
    // product consumed exactly once may have its register write elided.
    let mut use_count = vec![0u32; nvalues];
    {
        let mut count = |op: Operand| {
            if let Operand::Value(v) = op {
                if v.index() < nvalues {
                    use_count[v.index()] += 1;
                }
            }
        };
        for b in func.block_ids() {
            let blk = func.block(b);
            for &iid in &blk.instrs {
                if iid.index() < func.instrs.len() {
                    func.instr(iid).for_each_operand(&mut count);
                }
            }
            if let Some(term) = blk.term.as_ref() {
                term.for_each_operand(&mut count);
            }
        }
    }

    // Defining block per value; `None` for instruction results whose
    // instruction is in no block (such values are never assigned).
    let mut def_block: Vec<Option<BlockId>> = vec![None; nvalues];
    for (i, vd) in func.values.iter().enumerate() {
        if matches!(vd, ValueDef::Param(..)) {
            def_block[i] = Some(entry);
        }
    }
    let mut placed = vec![false; func.instrs.len()];
    for b in func.block_ids() {
        for &iid in &func.block(b).instrs {
            if iid.index() >= func.instrs.len() || placed[iid.index()] {
                return None;
            }
            placed[iid.index()] = true;
            if let Some(v) = func.result_of(iid) {
                if v.index() >= nvalues {
                    return None;
                }
                def_block[v.index()] = Some(b);
            }
        }
    }

    let mut block_ops: Vec<Vec<DecodedOp>> = Vec::with_capacity(nblocks);
    let mut edges: Vec<EdgeMoves> = Vec::new();
    let mut edge_map: HashMap<(u32, u32), u32> = HashMap::new();
    // Decoded CondBr condition / Ret operand per block (checked in block
    // context here, consumed by the terminator pass below).
    let mut term_opnd: Vec<Option<Opnd>> = vec![None; nblocks];

    for b in func.block_ids() {
        let blk = func.block(b);
        let mut defined_here = vec![false; nvalues];
        if b == entry {
            for slot in defined_here.iter_mut().take(func.params.len()) {
                *slot = true;
            }
        }

        // Phi prefix → per-predecessor edge tables.
        let mut phis: Vec<(u32, &[(BlockId, Operand)])> = Vec::new();
        let mut n_phi = 0;
        for &iid in &blk.instrs {
            let Instr::Phi { incomings, .. } = func.instr(iid) else {
                break;
            };
            if b == entry {
                return None;
            }
            let dst = func.result_of(iid)?;
            phis.push((dst.0, incomings));
            n_phi += 1;
        }
        if blk.instrs[n_phi..]
            .iter()
            .any(|&iid| matches!(func.instr(iid), Instr::Phi { .. }))
        {
            return None;
        }
        // Phi results are assigned in the block prologue, before any
        // non-phi op runs.
        for &(dst, _) in &phis {
            defined_here[dst as usize] = true;
        }

        let mut seen_pred = vec![false; nblocks];
        for &p in &cfg.preds[b.index()] {
            if seen_pred[p.index()] {
                continue;
            }
            seen_pred[p.index()] = true;
            let mut moves = Vec::with_capacity(phis.len());
            for &(dst, incomings) in &phis {
                // First matching incoming, like the walker's `find`.
                let (_, op) = incomings.iter().find(|(pb, _)| *pb == p)?;
                let src = match *op {
                    Operand::Const(imm) => Opnd::Imm(imm_value(imm)),
                    Operand::Value(v) => {
                        if v.index() >= nvalues {
                            return None;
                        }
                        let d = def_block[v.index()]?;
                        // The definition must dominate the incoming edge,
                        // i.e. the predecessor block.
                        if !dom.dominates(d, p) {
                            return None;
                        }
                        Opnd::Reg(v.0)
                    }
                };
                moves.push((dst, src));
            }
            let parallel = moves
                .iter()
                .any(|&(_, src)| matches!(src, Opnd::Reg(r) if moves.iter().any(|&(d, _)| d == r)));
            let idx = u32::try_from(edges.len()).ok()?;
            edges.push(EdgeMoves {
                moves: moves.into_boxed_slice(),
                parallel,
            });
            edge_map.insert((p.0, b.0), idx);
        }

        // Non-phi ops.
        let mut ops = Vec::with_capacity(blk.instrs.len() - n_phi);
        for &iid in &blk.instrs[n_phi..] {
            let instr = func.instr(iid);
            let dst = func.result_of(iid).map_or(trash, |v| v.0);
            let opnd = |op: Operand| use_opnd(func, &dom, &def_block, &defined_here, b, op);
            match instr {
                Instr::Binary { op, ty, lhs, rhs } => ops.push(specialise(DecodedOp::Binary {
                    op: *op,
                    ty: *ty,
                    dst,
                    lhs: opnd(*lhs)?,
                    rhs: opnd(*rhs)?,
                })),
                Instr::Unary { op, val, .. } => ops.push(DecodedOp::Unary {
                    op: *op,
                    dst,
                    val: opnd(*val)?,
                }),
                Instr::Cmp { pred, ty, lhs, rhs } => ops.push(specialise(DecodedOp::Cmp {
                    pred: *pred,
                    ty: *ty,
                    dst,
                    lhs: opnd(*lhs)?,
                    rhs: opnd(*rhs)?,
                })),
                Instr::Select {
                    cond,
                    then_val,
                    else_val,
                    ..
                } => ops.push(DecodedOp::Select {
                    dst,
                    cond: opnd(*cond)?,
                    then_val: opnd(*then_val)?,
                    else_val: opnd(*else_val)?,
                }),
                Instr::Gep { array, indices } => {
                    if array.index() >= module.arrays.len() {
                        return None;
                    }
                    let decl = module.array(*array);
                    // The walker tolerates *fewer* indices than dimensions
                    // (a partial row-major prefix) but panics on more.
                    if indices.len() > decl.dims.len() {
                        return None;
                    }
                    let strides = decl.strides();
                    let mut dims = Vec::with_capacity(indices.len());
                    for (k, idx) in indices.iter().enumerate() {
                        dims.push(GepDim {
                            idx: opnd(*idx)?,
                            stride: strides[k] as i64,
                            size: decl.dims[k],
                            dim: k as u32,
                        });
                    }
                    // Fold the trailing run of in-bounds constant integer
                    // indices into a precomputed offset. Constants that are
                    // negative, out of bounds, or of the wrong runtime type
                    // stay as dims so their error behavior is unchanged.
                    let mut base = 0i64;
                    while let Some(d) = dims.last() {
                        match d.idx {
                            Opnd::Imm(Value::I(i)) if i >= 0 && (i as usize) < d.size => {
                                base += i * d.stride;
                                dims.pop();
                            }
                            _ => break,
                        }
                    }
                    if base != 0 || dims.len() < indices.len() {
                        ops.push(DecodedOp::GepConst {
                            dst,
                            array: *array,
                            dims: dims.into_boxed_slice(),
                            base,
                        });
                    } else {
                        ops.push(DecodedOp::Gep {
                            dst,
                            array: *array,
                            dims: dims.into_boxed_slice(),
                        });
                    }
                }
                Instr::Load { ptr, .. } => ops.push(DecodedOp::Load {
                    dst,
                    ptr: opnd(*ptr)?,
                }),
                Instr::Store { ptr, value, .. } => ops.push(DecodedOp::Store {
                    ptr: opnd(*ptr)?,
                    value: opnd(*value)?,
                }),
                Instr::Phi { .. } => unreachable!("phi prefix handled above"),
                Instr::Call { callee, args, ty } => {
                    if callee.index() >= module.functions.len() {
                        return None;
                    }
                    // A void call with a recorded result would make the
                    // walker fail in two different ways depending on what
                    // the callee returns; leave that to the walker.
                    if ty.is_none() && func.result_of(iid).is_some() {
                        return None;
                    }
                    let mut argv = Vec::with_capacity(args.len());
                    for a in args {
                        argv.push(opnd(*a)?);
                    }
                    ops.push(DecodedOp::Call {
                        callee: *callee,
                        dst: ty.map(|_| dst),
                        args: argv.into_boxed_slice(),
                    });
                }
            }
            if let Some(v) = func.result_of(iid) {
                defined_here[v.index()] = true;
            }
        }
        block_ops.push(fuse_fmul_fadd(ops, &use_count));

        match blk.terminator() {
            Terminator::CondBr { cond, .. } => {
                term_opnd[b.index()] =
                    Some(use_opnd(func, &dom, &def_block, &defined_here, b, *cond)?);
            }
            Terminator::Ret(Some(op)) => {
                term_opnd[b.index()] =
                    Some(use_opnd(func, &dom, &def_block, &defined_here, b, *op)?);
            }
            _ => {}
        }
    }

    // Terminators last: edge tables for forward branches now exist.
    let edge_of = |from: BlockId, to: BlockId| -> u32 {
        edge_map.get(&(from.0, to.0)).copied().unwrap_or(NO_EDGE)
    };
    let mut blocks = Vec::with_capacity(nblocks);
    for (b, ops) in func.block_ids().zip(block_ops) {
        let term = match func.block(b).terminator() {
            Terminator::Br(t) => DecodedTerm::Br {
                target: t.0,
                edge: edge_of(b, *t),
            },
            Terminator::CondBr {
                then_bb, else_bb, ..
            } => DecodedTerm::CondBr {
                cond: term_opnd[b.index()]?,
                then_target: then_bb.0,
                then_edge: edge_of(b, *then_bb),
                else_target: else_bb.0,
                else_edge: edge_of(b, *else_bb),
            },
            Terminator::Ret(v) => DecodedTerm::Ret(match v {
                Some(_) => Some(term_opnd[b.index()]?),
                None => None,
            }),
        };
        blocks.push(DecodedBlock {
            ops: ops.into_boxed_slice(),
            term,
        });
    }

    Some(DecodedFunc {
        params: func.params.len(),
        regs: nvalues + 1,
        blocks,
        edges,
    })
}

/// Execution context for the decoded engine: borrows the interpreter's
/// memory and counters so [`crate::interp::Interp::run`] semantics (shared
/// step budget, per-function counts) carry over exactly.
pub(crate) struct ExecCtx<'a, 'm> {
    pub(crate) module: &'m Module,
    pub(crate) dm: &'a DecodedModule,
    pub(crate) memory: &'a mut Memory,
    pub(crate) counts: &'a mut Vec<Vec<u64>>,
    pub(crate) steps: &'a mut u64,
    pub(crate) step_limit: u64,
    /// Reusable buffer for parallel phi-move application.
    pub(crate) scratch: Vec<Value>,
}

impl ExecCtx<'_, '_> {
    pub(crate) fn call(&mut self, f: FuncId, args: &[Value]) -> Result<Option<Value>, InterpError> {
        let fx = f.index();
        let dm = self.dm;
        let df = &dm.funcs[fx];
        if args.len() != df.params {
            let func = self.module.function(f);
            return Err(InterpError::new(format!(
                "function `{}` expects {} args, got {}",
                func.name,
                func.params.len(),
                args.len()
            )));
        }
        let mut regs = vec![Value::I(0); df.regs];
        regs[..args.len()].copy_from_slice(args);

        let mut block = 0usize;
        loop {
            *self.steps += 1;
            if *self.steps > self.step_limit {
                return Err(InterpError::new("step limit exceeded"));
            }
            self.counts[fx][block] += 1;
            let blk = &df.blocks[block];
            for op in blk.ops.iter() {
                self.exec_op(&mut regs, op)?;
            }
            match blk.term {
                DecodedTerm::Br { target, edge } => {
                    self.apply_edge(&mut regs, df, edge);
                    block = target as usize;
                }
                DecodedTerm::CondBr {
                    cond,
                    then_target,
                    then_edge,
                    else_target,
                    else_edge,
                } => {
                    let (target, edge) = if ev(&regs, cond).as_b()? {
                        (then_target, then_edge)
                    } else {
                        (else_target, else_edge)
                    };
                    self.apply_edge(&mut regs, df, edge);
                    block = target as usize;
                }
                DecodedTerm::Ret(v) => return Ok(v.map(|o| ev(&regs, o))),
            }
        }
    }

    #[inline]
    fn apply_edge(&mut self, regs: &mut [Value], df: &DecodedFunc, edge: u32) {
        if edge == NO_EDGE {
            return;
        }
        let em = &df.edges[edge as usize];
        if em.parallel {
            // Parallel assignment: read every source against the old
            // register state before writing any destination.
            self.scratch.clear();
            for &(_, src) in em.moves.iter() {
                self.scratch.push(ev(regs, src));
            }
            for (i, &(dst, _)) in em.moves.iter().enumerate() {
                regs[dst as usize] = self.scratch[i];
            }
        } else {
            for &(dst, src) in em.moves.iter() {
                regs[dst as usize] = ev(regs, src);
            }
        }
    }

    fn exec_op(&mut self, regs: &mut [Value], op: &DecodedOp) -> Result<(), InterpError> {
        match *op {
            DecodedOp::Binary {
                op,
                ty,
                dst,
                lhs,
                rhs,
            } => {
                let l = ev(regs, lhs);
                let r = ev(regs, rhs);
                regs[dst as usize] = exec_binary(op, ty, l, r)?;
            }
            DecodedOp::Unary { op, dst, val } => {
                regs[dst as usize] = exec_unary(op, ev(regs, val))?;
            }
            DecodedOp::Cmp {
                pred,
                ty,
                dst,
                lhs,
                rhs,
            } => {
                let l = ev(regs, lhs);
                let r = ev(regs, rhs);
                regs[dst as usize] = Value::B(exec_cmp(pred, ty, l, r)?);
            }
            DecodedOp::Select {
                dst,
                cond,
                then_val,
                else_val,
            } => {
                regs[dst as usize] = if ev(regs, cond).as_b()? {
                    ev(regs, then_val)
                } else {
                    ev(regs, else_val)
                };
            }
            DecodedOp::Gep {
                dst,
                array,
                ref dims,
            } => {
                let mut flat: i64 = 0;
                for d in dims.iter() {
                    let i = ev(regs, d.idx).as_i()?;
                    if i < 0 || i as usize >= d.size {
                        return Err(InterpError::new(format!(
                            "index {i} out of bounds for dim {} (size {}) of `{}`",
                            d.dim,
                            d.size,
                            self.module.array(array).name
                        )));
                    }
                    flat += i * d.stride;
                }
                let a = self.memory.addr(array, flat as usize)?;
                regs[dst as usize] = Value::P(a);
            }
            DecodedOp::GepConst {
                dst,
                array,
                ref dims,
                base,
            } => {
                let mut flat: i64 = base;
                for d in dims.iter() {
                    let i = ev(regs, d.idx).as_i()?;
                    if i < 0 || i as usize >= d.size {
                        return Err(InterpError::new(format!(
                            "index {i} out of bounds for dim {} (size {}) of `{}`",
                            d.dim,
                            d.size,
                            self.module.array(array).name
                        )));
                    }
                    flat += i * d.stride;
                }
                let a = self.memory.addr(array, flat as usize)?;
                regs[dst as usize] = Value::P(a);
            }
            DecodedOp::Load { dst, ptr } => {
                let p = ev(regs, ptr).as_p()?;
                regs[dst as usize] = self.memory.cells[p];
            }
            DecodedOp::Store { ptr, value } => {
                let p = ev(regs, ptr).as_p()?;
                self.memory.cells[p] = ev(regs, value);
            }
            DecodedOp::Call {
                callee,
                dst,
                ref args,
            } => {
                let mut argv = Vec::with_capacity(args.len());
                for &a in args.iter() {
                    argv.push(ev(regs, a));
                }
                let r = self.call(callee, &argv)?;
                match (r, dst) {
                    (Some(v), Some(d)) => regs[d as usize] = v,
                    (None, None) => {}
                    _ => return Err(InterpError::new("call result arity mismatch")),
                }
            }
            DecodedOp::FAdd { dst, lhs, rhs } => {
                let (a, b) = (ev(regs, lhs).as_f()?, ev(regs, rhs).as_f()?);
                regs[dst as usize] = Value::F(a + b);
            }
            DecodedOp::FSub { dst, lhs, rhs } => {
                let (a, b) = (ev(regs, lhs).as_f()?, ev(regs, rhs).as_f()?);
                regs[dst as usize] = Value::F(a - b);
            }
            DecodedOp::FMul { dst, lhs, rhs } => {
                let (a, b) = (ev(regs, lhs).as_f()?, ev(regs, rhs).as_f()?);
                regs[dst as usize] = Value::F(a * b);
            }
            DecodedOp::FDiv { dst, lhs, rhs } => {
                let (a, b) = (ev(regs, lhs).as_f()?, ev(regs, rhs).as_f()?);
                regs[dst as usize] = Value::F(a / b);
            }
            DecodedOp::IAdd64 { dst, lhs, rhs } => {
                let (a, b) = (ev(regs, lhs).as_i()?, ev(regs, rhs).as_i()?);
                regs[dst as usize] = Value::I(a.wrapping_add(b));
            }
            DecodedOp::ISub64 { dst, lhs, rhs } => {
                let (a, b) = (ev(regs, lhs).as_i()?, ev(regs, rhs).as_i()?);
                regs[dst as usize] = Value::I(a.wrapping_sub(b));
            }
            DecodedOp::IAnd64 { dst, lhs, rhs } => {
                let (a, b) = (ev(regs, lhs).as_i()?, ev(regs, rhs).as_i()?);
                regs[dst as usize] = Value::I(a & b);
            }
            DecodedOp::ICmpLt { dst, lhs, rhs } => {
                let (a, b) = (ev(regs, lhs).as_i()?, ev(regs, rhs).as_i()?);
                regs[dst as usize] = Value::B(a < b);
            }
            DecodedOp::ICmpEq { dst, lhs, rhs } => {
                let (a, b) = (ev(regs, lhs).as_i()?, ev(regs, rhs).as_i()?);
                regs[dst as usize] = Value::B(a == b);
            }
            DecodedOp::FMulAdd {
                dst,
                a,
                b,
                c,
                product_on_lhs,
            } => {
                // Product operands first, then the addend — the unfused
                // pair's evaluation (and error) order. Two roundings: the
                // product is rounded before the add, not contracted. The add
                // keeps the original operand order too: it only matters when
                // both sides are NaN (payload selection follows the lhs).
                let (x, y) = (ev(regs, a).as_f()?, ev(regs, b).as_f()?);
                let p = x * y;
                let cv = ev(regs, c).as_f()?;
                #[allow(clippy::if_same_then_else)]
                let sum = if product_on_lhs { p + cv } else { cv + p };
                regs[dst as usize] = Value::F(sum);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::interp::Interp;

    #[test]
    fn generic_dispatch_mix_counts_only_unspecialised_ops() {
        // `add i64`, `sub i64`, `and i64` and `fadd` have fast paths;
        // `mul i64` and `cmp ge i64` stay generic. Each loop body runs 8
        // times.
        let mut mb = ModuleBuilder::new("mix");
        mb.function("main", &[], Some(Type::I64), |fb| {
            let zero = fb.iconst(0);
            let out = fb.counted_loop_carry(0, 8, 1, &[(Type::I64, zero)], |fb, i, c| {
                let a = fb.add(c[0], i); // specialised: IAdd64
                let s = fb.sub(a, fb.iconst(1)); // specialised: ISub64
                let b = fb.binary(BinOp::Mul, Type::I64, s, fb.iconst(3)); // generic
                let ge = fb.cmp(CmpPred::Ge, Type::I64, b, fb.iconst(3)); // generic
                vec![fb.select(ge, Type::I64, b, a)]
            });
            fb.ret(Some(out[0]));
        });
        let m = mb.finish();
        m.verify().expect("verifies");
        let exec = Interp::new(&m).run(&[]).expect("runs");
        let mix = generic_dispatch_mix(&m, &exec);
        assert_eq!(
            mix,
            vec![("cmp ge i64".to_string(), 8), ("mul i64".to_string(), 8)],
            "exactly the unspecialised ops, weighted by 8 iterations"
        );
    }

    #[test]
    fn isub64_iand64_fast_paths_match_reference() {
        // A loop whose body leans on `sub i64` and `and i64` — the two ops
        // the corpus dispatch mix flagged — plus wrapping edge cases. The
        // decoded engine must agree bit-for-bit with the tree walker.
        let mut mb = ModuleBuilder::new("suband");
        mb.function("main", &[], Some(Type::I64), |fb| {
            let init = fb.iconst(i64::MIN + 2);
            let out = fb.counted_loop_carry(0, 16, 1, &[(Type::I64, init)], |fb, i, c| {
                let d = fb.sub(c[0], i); // wraps past i64::MIN
                let m = fb.and(d, fb.iconst(0x0f0f_0f0f_0f0f_0f0f));
                let low = fb.and(i, fb.iconst(7));
                vec![fb.sub(m, low)]
            });
            fb.ret(Some(out[0]));
        });
        let m = mb.finish();
        m.verify().expect("verifies");
        let mut fast = Interp::new(&m);
        assert_eq!(fast.engine_name(), "decoded");
        let a = fast.run(&[]).expect("decoded runs");
        let b = Interp::reference(&m).run(&[]).expect("reference runs");
        assert_eq!(a.return_value, b.return_value);
        assert_eq!(a.block_counts, b.block_counts);
        assert_eq!(a.total_cycles, b.total_cycles);
        // And both ops really left the generic dispatch path.
        assert!(
            generic_dispatch_mix(&m, &a).is_empty(),
            "sub/and i64 must be specialised"
        );
    }

    #[test]
    fn verified_builder_modules_decode() {
        let mut mb = ModuleBuilder::new("t");
        let x = mb.array("x", Type::F64, &[8]);
        mb.function("main", &[], Some(Type::F64), |fb| {
            let init = fb.fconst(0.0);
            let f = fb.counted_loop_carry(0, 8, 1, &[(Type::F64, init)], |fb, i, c| {
                let v = fb.load_idx(x, &[i]);
                vec![fb.fadd(c[0], v)]
            });
            fb.ret(Some(f[0]));
        });
        let m = mb.finish();
        m.verify().expect("verifies");
        assert!(decode(&m).is_some());
        assert_eq!(Interp::new(&m).engine_name(), "decoded");
        assert_eq!(Interp::reference(&m).engine_name(), "reference");
    }

    #[test]
    fn missing_terminator_falls_back() {
        let mut mb = ModuleBuilder::new("t");
        mb.function("f", &[], None, |fb| {
            fb.new_block("orphan");
            fb.ret(None);
        });
        let m = mb.finish();
        // Interp::new on such a module panics in the (engine-independent)
        // static-cycle pass, exactly as it did before the decoded engine;
        // decode itself must bow out first.
        assert!(decode(&m).is_none());
    }

    #[test]
    fn ret_signature_mismatch_falls_back() {
        let mut mb = ModuleBuilder::new("t");
        mb.function("f", &[], None, |fb| {
            let v = fb.iconst(3);
            fb.ret(Some(v));
        });
        let m = mb.finish();
        assert!(decode(&m).is_none());
        assert_eq!(Interp::new(&m).engine_name(), "reference");
    }

    #[test]
    fn swapping_carries_use_parallel_moves() {
        // Two loop-carried values rotated each iteration: the edge moves
        // (a ← b, b ← a) conflict, exercising the scratch-buffered parallel
        // application path.
        let mut mb = ModuleBuilder::new("t");
        mb.function("main", &[], Some(Type::I64), |fb| {
            let a0 = fb.iconst(1);
            let b0 = fb.iconst(2);
            let f =
                fb.counted_loop_carry(0, 5, 1, &[(Type::I64, a0), (Type::I64, b0)], |_, _, c| {
                    vec![c[1], c[0]]
                });
            fb.ret(Some(f[0]));
        });
        let m = mb.finish();
        m.verify().expect("verifies");
        let dm = decode(&m).expect("decodes");
        assert!(dm.funcs[0].edges.iter().any(|e| e.parallel));
        let decoded = Interp::new(&m).run(&[]).expect("runs");
        let walked = Interp::reference(&m).run(&[]).expect("runs");
        // 5 swaps starting from (1, 2) → a = 2.
        assert_eq!(decoded.return_value, Some(Value::I(2)));
        assert_eq!(decoded.return_value, walked.return_value);
        assert_eq!(decoded.block_counts, walked.block_counts);
        assert_eq!(decoded.total_cycles, walked.total_cycles);
    }

    fn gep_const_ops(df: &DecodedFunc) -> Vec<(usize, i64)> {
        df.blocks
            .iter()
            .flat_map(|b| b.ops.iter())
            .filter_map(|op| match op {
                DecodedOp::GepConst { dims, base, .. } => Some((dims.len(), *base)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn gep_constant_trailing_index_specialises() {
        // A[i][3] over a 4×8 array: the trailing constant column folds into
        // a base offset of 3, leaving one variable (bounds-checked) dim.
        let mut mb = ModuleBuilder::new("t");
        let a = mb.array("A", Type::F64, &[4, 8]);
        mb.function("main", &[], Some(Type::F64), |fb| {
            let init = fb.fconst(0.0);
            let col = fb.iconst(3);
            let f = fb.counted_loop_carry(0, 4, 1, &[(Type::F64, init)], |fb, i, c| {
                let v = fb.load_idx(a, &[i, col]);
                vec![fb.fadd(c[0], v)]
            });
            fb.ret(Some(f[0]));
        });
        let m = mb.finish();
        m.verify().expect("verifies");
        let dm = decode(&m).expect("decodes");
        assert_eq!(gep_const_ops(&dm.funcs[0]), vec![(1, 3)]);

        let mut di = Interp::new(&m);
        let mut wi = Interp::reference(&m);
        for k in 0..32 {
            di.memory.set_f64(a, k, k as f64);
            wi.memory.set_f64(a, k, k as f64);
        }
        let decoded = di.run(&[]).expect("runs");
        let walked = wi.run(&[]).expect("runs");
        // Σ A[i][3] for i in 0..4 = 3 + 11 + 19 + 27.
        assert_eq!(decoded.return_value, Some(Value::F(60.0)));
        assert_eq!(decoded.return_value, walked.return_value);
        assert_eq!(decoded.block_counts, walked.block_counts);
    }

    #[test]
    fn gep_all_constant_indices_fold_completely() {
        let mut mb = ModuleBuilder::new("t");
        let a = mb.array("A", Type::I64, &[4, 8]);
        mb.function("main", &[], Some(Type::I64), |fb| {
            let r = fb.iconst(2);
            let c = fb.iconst(5);
            let v = fb.load_idx_ty(a, &[r, c], Type::I64);
            fb.ret(Some(v));
        });
        let m = mb.finish();
        m.verify().expect("verifies");
        let dm = decode(&m).expect("decodes");
        // 2*8 + 5 = 21, no runtime dims left.
        assert_eq!(gep_const_ops(&dm.funcs[0]), vec![(0, 21)]);
        let mut interp = Interp::new(&m);
        for k in 0..32 {
            interp.memory.set_i64(a, k, k as i64 * 10);
        }
        let out = interp.run(&[]).expect("runs");
        assert_eq!(out.return_value, Some(Value::I(210)));
    }

    #[test]
    fn gep_out_of_bounds_constant_is_not_folded() {
        // A constant index past the dim extent must keep its runtime check
        // so the error (message and dim number) matches the walker exactly.
        let mut mb = ModuleBuilder::new("t");
        let a = mb.array("A", Type::F64, &[4, 8]);
        mb.function("main", &[], Some(Type::F64), |fb| {
            let r = fb.iconst(1);
            let c = fb.iconst(8);
            let v = fb.load_idx(a, &[r, c]);
            fb.ret(Some(v));
        });
        let m = mb.finish();
        m.verify().expect("verifies");
        let dm = decode(&m).expect("decodes");
        assert!(gep_const_ops(&dm.funcs[0]).is_empty());
        let e1 = Interp::new(&m).run(&[]).expect_err("oob");
        let e2 = Interp::reference(&m).run(&[]).expect_err("oob");
        assert_eq!(e1, e2);
        assert!(
            e1.message
                .contains("index 8 out of bounds for dim 1 (size 8)"),
            "{e1}"
        );
    }

    #[test]
    fn gep_zero_constant_still_specialises() {
        // Folding a 0 index adds nothing to the base but still removes the
        // runtime check; the decoder must pick GepConst, not generic Gep.
        let mut mb = ModuleBuilder::new("t");
        let a = mb.array("A", Type::F64, &[4, 8]);
        mb.function("main", &[Type::I64], Some(Type::F64), |fb| {
            let i = fb.param(0);
            let z = fb.iconst(0);
            let v = fb.load_idx(a, &[i, z]);
            fb.ret(Some(v));
        });
        let m = mb.finish();
        m.verify().expect("verifies");
        let dm = decode(&m).expect("decodes");
        assert_eq!(gep_const_ops(&dm.funcs[0]), vec![(1, 0)]);
        let mut interp = Interp::new(&m);
        for k in 0..32 {
            interp.memory.set_f64(a, k, k as f64);
        }
        let out = interp.run(&[Value::I(2)]).expect("runs");
        assert_eq!(out.return_value, Some(Value::F(16.0)));
    }

    #[test]
    fn gep_with_excess_indices_falls_back() {
        let mut mb = ModuleBuilder::new("t");
        let a = mb.array("A", Type::F64, &[4]);
        mb.function("f", &[], None, |fb| {
            let i = fb.iconst(0);
            let _ = fb.gep(a, &[i, i]);
            fb.ret(None);
        });
        let m = mb.finish();
        assert!(decode(&m).is_none());
    }

    #[test]
    fn errors_match_walker_on_oob_and_div_zero() {
        let mut mb = ModuleBuilder::new("t");
        let x = mb.array("x", Type::F64, &[4]);
        mb.function("main", &[Type::I64], Some(Type::F64), |fb| {
            let i = fb.param(0);
            let v = fb.load_idx(x, &[i]);
            fb.ret(Some(v));
        });
        let m = mb.finish();
        m.verify().expect("verifies");
        let e1 = Interp::new(&m).run(&[Value::I(9)]).expect_err("oob");
        let e2 = Interp::reference(&m).run(&[Value::I(9)]).expect_err("oob");
        assert_eq!(e1, e2);
        assert!(e1.message.contains("out of bounds"), "{e1}");

        let mut mb = ModuleBuilder::new("t");
        mb.function("main", &[Type::I64], Some(Type::I64), |fb| {
            let one = fb.iconst(1);
            let p = fb.param(0);
            let q = fb.binary(crate::instr::BinOp::Div, Type::I64, one, p);
            fb.ret(Some(q));
        });
        let m = mb.finish();
        m.verify().expect("verifies");
        let e1 = Interp::new(&m).run(&[Value::I(0)]).expect_err("div0");
        let e2 = Interp::reference(&m).run(&[Value::I(0)]).expect_err("div0");
        assert_eq!(e1, e2);
        assert_eq!(e1.message, "integer division by zero");
    }

    #[test]
    fn step_limit_matches_walker() {
        let mut mb = ModuleBuilder::new("t");
        mb.function("main", &[], None, |fb| {
            let spin = fb.new_block("spin");
            fb.br(spin);
            fb.switch_to(spin);
            fb.br(spin);
        });
        let m = mb.finish();
        let mut d = Interp::new(&m).with_step_limit(1000);
        assert_eq!(d.engine_name(), "decoded");
        let e1 = d.run(&[]).expect_err("limit");
        let e2 = Interp::reference(&m)
            .with_step_limit(1000)
            .run(&[])
            .expect_err("limit");
        assert_eq!(e1, e2);
        assert!(e1.message.contains("step limit"), "{e1}");
    }

    #[test]
    fn entry_arity_error_matches_walker() {
        let mut mb = ModuleBuilder::new("t");
        mb.function("main", &[Type::I64], Some(Type::I64), |fb| {
            let p = fb.param(0);
            fb.ret(Some(p));
        });
        let m = mb.finish();
        let e1 = Interp::new(&m).run(&[]).expect_err("arity");
        let e2 = Interp::reference(&m).run(&[]).expect_err("arity");
        assert_eq!(e1, e2);
        assert!(e1.message.contains("expects 1 args"), "{e1}");
    }

    fn fma_ops(df: &DecodedFunc) -> usize {
        df.blocks
            .iter()
            .flat_map(|b| b.ops.iter())
            .filter(|op| matches!(op, DecodedOp::FMulAdd { .. }))
            .count()
    }

    #[test]
    fn fmul_fadd_single_use_chain_fuses_and_matches_walker_bitwise() {
        // The canonical reduction shape: the loop-carried accumulator is
        // already in a register, so the fmul is immediately followed by the
        // fadd consuming its product — the pair must fuse and stay
        // bit-identical to the walker (separate roundings, no contraction).
        let mut mb = ModuleBuilder::new("t");
        let a = mb.array("a", Type::F64, &[16]);
        let b = mb.array("b", Type::F64, &[16]);
        mb.function("main", &[], Some(Type::F64), |fb| {
            let init = fb.fconst(0.0);
            let f = fb.counted_loop_carry(0, 16, 1, &[(Type::F64, init)], |fb, i, c| {
                let av = fb.load_idx(a, &[i]);
                let bv = fb.load_idx(b, &[i]);
                let p = fb.fmul(av, bv);
                vec![fb.fadd(c[0], p)]
            });
            fb.ret(Some(f[0]));
        });
        let m = mb.finish();
        m.verify().expect("verifies");
        let dm = decode(&m).expect("decodes");
        assert_eq!(fma_ops(&dm.funcs[0]), 1, "fmul→fadd chain fused");

        let mut di = Interp::new(&m);
        let mut wi = Interp::reference(&m);
        for k in 0..16 {
            // Values whose products round: a contracted (single-rounding)
            // fma would diverge bitwise and fail the comparison below.
            let x = 1.0 / (k as f64 + 3.0);
            let y = (k as f64 + 0.25).sqrt();
            di.memory.set_f64(a, k, x);
            wi.memory.set_f64(a, k, x);
            di.memory.set_f64(b, k, y);
            wi.memory.set_f64(b, k, y);
        }
        let decoded = di.run(&[]).expect("runs");
        let walked = wi.run(&[]).expect("runs");
        let (Some(Value::F(dv)), Some(Value::F(wv))) = (decoded.return_value, walked.return_value)
        else {
            panic!("float returns expected");
        };
        assert_eq!(dv.to_bits(), wv.to_bits(), "{dv} vs {wv}");
        assert_eq!(decoded.block_counts, walked.block_counts);
        assert_eq!(decoded.total_cycles, walked.total_cycles);
    }

    #[test]
    fn fused_chain_handles_product_on_either_side() {
        // fadd(p, c) and fadd(c, p) both fuse; the preserved operand order
        // must keep results bit-identical to the walker in both shapes.
        for product_first in [true, false] {
            let mut mb = ModuleBuilder::new("t");
            mb.function("main", &[Type::F64, Type::F64], Some(Type::F64), |fb| {
                let x = fb.param(0);
                let y = fb.param(1);
                let p = fb.fmul(x, y);
                let s = if product_first {
                    fb.fadd(p, y)
                } else {
                    fb.fadd(y, p)
                };
                fb.ret(Some(s));
            });
            let m = mb.finish();
            m.verify().expect("verifies");
            let dm = decode(&m).expect("decodes");
            assert_eq!(fma_ops(&dm.funcs[0]), 1, "product_first={product_first}");
            let args = [Value::F(1.1e-3), Value::F(-7.3)];
            let decoded = Interp::new(&m).run(&args).expect("runs");
            let walked = Interp::reference(&m).run(&args).expect("runs");
            let (Some(Value::F(dv)), Some(Value::F(wv))) =
                (decoded.return_value, walked.return_value)
            else {
                panic!("float returns expected");
            };
            assert_eq!(dv.to_bits(), wv.to_bits());
        }
    }

    #[test]
    fn multi_use_product_does_not_fuse() {
        // p feeds the adjacent fadd *and* a later op: eliding its register
        // write would lose the second read, so the pair must stay unfused.
        let mut mb = ModuleBuilder::new("t");
        mb.function("main", &[Type::F64], Some(Type::F64), |fb| {
            let x = fb.param(0);
            let p = fb.fmul(x, x);
            let s = fb.fadd(p, x);
            let t = fb.fadd(s, p);
            fb.ret(Some(t));
        });
        let m = mb.finish();
        m.verify().expect("verifies");
        let dm = decode(&m).expect("decodes");
        assert_eq!(fma_ops(&dm.funcs[0]), 0, "double-used product fused");
        let args = [Value::F(0.3)];
        let decoded = Interp::new(&m).run(&args).expect("runs");
        let walked = Interp::reference(&m).run(&args).expect("runs");
        assert_eq!(decoded.return_value, walked.return_value);
    }

    #[test]
    fn non_adjacent_fmul_fadd_does_not_fuse() {
        // A load sits between the multiply and the add (the in-memory
        // accumulation shape): deferring the multiply past it would reorder
        // errors, so only adjacent pairs fuse.
        let mut mb = ModuleBuilder::new("t");
        let a = mb.array("a", Type::F64, &[8]);
        let z = mb.array("z", Type::F64, &[8]);
        mb.function("main", &[], None, |fb| {
            fb.counted_loop(0, 8, 1, |fb, i| {
                let av = fb.load_idx(a, &[i]);
                let p = fb.fmul(av, av);
                let zv = fb.load_idx(z, &[i]);
                let s = fb.fadd(zv, p);
                fb.store_idx(z, &[i], s);
            });
            fb.ret(None);
        });
        let m = mb.finish();
        m.verify().expect("verifies");
        let dm = decode(&m).expect("decodes");
        assert_eq!(fma_ops(&dm.funcs[0]), 0, "non-adjacent pair fused");
    }

    #[test]
    fn fused_chain_error_order_matches_walker() {
        let mut mb = ModuleBuilder::new("t");
        mb.function("main", &[Type::F64, Type::F64], Some(Type::F64), |fb| {
            let x = fb.param(0);
            let y = fb.param(1);
            let p = fb.fmul(x, x);
            let s = fb.fadd(p, y);
            fb.ret(Some(s));
        });
        let m = mb.finish();
        m.verify().expect("verifies");
        assert_eq!(fma_ops(&decode(&m).expect("decodes").funcs[0]), 1);
        // Non-float addend: the fused op must report the add-side type error
        // after evaluating the product operands, exactly like the walker.
        let bad_addend = [Value::F(1.0), Value::I(7)];
        let e1 = Interp::new(&m).run(&bad_addend).expect_err("type");
        let e2 = Interp::reference(&m).run(&bad_addend).expect_err("type");
        assert_eq!(e1, e2);
        // Non-float product operand errors first even when the addend is
        // also non-float.
        let both_bad = [Value::I(1), Value::I(7)];
        let e1 = Interp::new(&m).run(&both_bad).expect_err("type");
        let e2 = Interp::reference(&m).run(&both_bad).expect_err("type");
        assert_eq!(e1, e2);
    }
}
