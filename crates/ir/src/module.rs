//! Modules, functions, blocks and value definitions.

use crate::instr::{Instr, Terminator};
use crate::types::Type;
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u32);

        impl $name {
            /// The raw index.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifies a function within a [`Module`].
    FuncId,
    "@f"
);
id_type!(
    /// Identifies a basic block within a [`Function`].
    BlockId,
    "bb"
);
id_type!(
    /// Identifies an instruction within a [`Function`]'s instruction arena.
    InstrId,
    "ins"
);
id_type!(
    /// Identifies an SSA value within a [`Function`] (parameter or
    /// instruction result).
    ValueId,
    "%"
);
id_type!(
    /// Identifies a globally declared array within a [`Module`].
    ArrayId,
    "@a"
);

/// A globally declared, statically sized array (the IR's memory objects).
///
/// All memory traffic in the IR goes through [`Instr::Gep`] /
/// [`Instr::Load`] / [`Instr::Store`] against these declarations, which is
/// what makes footprint analysis and scratchpad sizing statically decidable —
/// mirroring the role of `ScalarEvolution`-analysable accesses in the paper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayDecl {
    /// Human-readable name.
    pub name: String,
    /// Element type.
    pub elem: Type,
    /// Row-major dimensions; must be non-empty, each dimension non-zero.
    pub dims: Vec<usize>,
}

impl ArrayDecl {
    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Whether the array has zero elements (never true for verified modules).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row-major stride (in elements) for each dimension.
    ///
    /// `strides()[k]` is the number of elements skipped when index `k`
    /// increases by one.
    pub fn strides(&self) -> Vec<usize> {
        let mut s = vec![1usize; self.dims.len()];
        for k in (0..self.dims.len().saturating_sub(1)).rev() {
            s[k] = s[k + 1] * self.dims[k + 1];
        }
        s
    }
}

/// How an SSA value is defined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueDef {
    /// The `i`-th function parameter.
    Param(u32, Type),
    /// The result of an instruction.
    Instr(InstrId),
}

/// A basic block: a straight-line instruction list plus a terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Optional label for printing (`entry`, `loop.header`, ...).
    pub name: String,
    /// Instructions in program order.
    pub instrs: Vec<InstrId>,
    /// The block terminator. `None` only during construction.
    pub term: Option<Terminator>,
}

impl Block {
    /// The terminator.
    ///
    /// # Panics
    ///
    /// Panics if the block is still under construction (no terminator set);
    /// verified functions always have one.
    pub fn terminator(&self) -> &Terminator {
        self.term.as_ref().expect("block has no terminator")
    }
}

/// Lazily computed instruction→block map (see [`Function::instr_block_map`]).
///
/// Derived data, so it compares equal to everything and clones as empty (a
/// clone is typically about to be mutated). Code that mutates block
/// membership directly must call [`Function::invalidate_block_map`]; the
/// pass manager does so after every changing pass.
#[derive(Default)]
pub(crate) struct BlockMap(std::sync::OnceLock<Box<[u32]>>);

impl Clone for BlockMap {
    fn clone(&self) -> Self {
        BlockMap::default()
    }
}

impl PartialEq for BlockMap {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

impl fmt::Debug for BlockMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BlockMap({})",
            if self.0.get().is_some() {
                "cached"
            } else {
                "empty"
            }
        )
    }
}

/// Sentinel entry in [`Function::instr_block_map`] for instructions that are
/// in no block.
pub const NO_BLOCK: u32 = u32::MAX;

/// A function: parameters, an instruction arena and a CFG of basic blocks.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Parameter types.
    pub params: Vec<Type>,
    /// Return type (`None` = void).
    pub ret: Option<Type>,
    /// Basic blocks; `BlockId(0)` is the entry block.
    pub blocks: Vec<Block>,
    /// Instruction arena; referenced by [`Block::instrs`].
    pub instrs: Vec<Instr>,
    /// SSA value definitions. Parameters come first, then instruction
    /// results in creation order.
    pub values: Vec<ValueDef>,
    /// For each instruction that produces a value, its `ValueId`.
    pub instr_results: Vec<Option<ValueId>>,
    pub(crate) block_map: BlockMap,
}

impl Function {
    /// The entry block id.
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Instruction lookup.
    pub fn instr(&self, id: InstrId) -> &Instr {
        &self.instrs[id.index()]
    }

    /// Block lookup.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// The value produced by an instruction, if any.
    pub fn result_of(&self, id: InstrId) -> Option<ValueId> {
        self.instr_results[id.index()]
    }

    /// The type of a value.
    pub fn value_type(&self, v: ValueId) -> Option<Type> {
        match self.values[v.index()] {
            ValueDef::Param(_, ty) => Some(ty),
            ValueDef::Instr(i) => self.instr(i).result_type(),
        }
    }

    /// Iterate over all block ids.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// Number of instructions (arena size; includes all blocks).
    pub fn instr_count(&self) -> usize {
        self.instrs.len()
    }

    /// The instruction→block map, computed on first use and cached.
    ///
    /// `map[i]` is the raw [`BlockId`] of the block containing `InstrId(i)`,
    /// or [`NO_BLOCK`] when the instruction is in no block. Shared by
    /// [`Function::containing_block`] and the analysis crate's `FuncCtx`.
    pub fn instr_block_map(&self) -> &[u32] {
        self.block_map.0.get_or_init(|| {
            let mut map = vec![NO_BLOCK; self.instrs.len()];
            for b in self.block_ids() {
                for &iid in &self.block(b).instrs {
                    map[iid.index()] = b.0;
                }
            }
            map.into_boxed_slice()
        })
    }

    /// The block that contains an instruction, if any (cached map lookup).
    pub fn containing_block(&self, id: InstrId) -> Option<BlockId> {
        match self.instr_block_map().get(id.index()) {
            Some(&b) if b != NO_BLOCK => Some(BlockId(b)),
            _ => None,
        }
    }

    /// Drops the cached instruction→block map. Must be called after mutating
    /// block membership (adding/removing/moving instructions or blocks).
    pub fn invalidate_block_map(&mut self) {
        self.block_map = BlockMap::default();
    }
}

/// A whole application: functions plus globally declared arrays.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Module {
    /// Module name.
    pub name: String,
    /// Functions. The application entry point is by convention the function
    /// named `main`, falling back to `FuncId(0)`.
    pub functions: Vec<Function>,
    /// Declared arrays.
    pub arrays: Vec<ArrayDecl>,
}

impl Module {
    /// Creates an empty module.
    pub fn new(name: impl Into<String>) -> Self {
        Module {
            name: name.into(),
            functions: Vec::new(),
            arrays: Vec::new(),
        }
    }

    /// Function lookup.
    pub fn function(&self, id: FuncId) -> &Function {
        &self.functions[id.index()]
    }

    /// Array declaration lookup.
    pub fn array(&self, id: ArrayId) -> &ArrayDecl {
        &self.arrays[id.index()]
    }

    /// Find a function by name.
    pub fn function_by_name(&self, name: &str) -> Option<FuncId> {
        self.functions
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u32))
    }

    /// The entry function: `main` if present, else the first function.
    pub fn entry_function(&self) -> Option<FuncId> {
        self.function_by_name("main")
            .or(if self.functions.is_empty() {
                None
            } else {
                Some(FuncId(0))
            })
    }

    /// Iterate over all function ids.
    pub fn function_ids(&self) -> impl Iterator<Item = FuncId> + '_ {
        (0..self.functions.len() as u32).map(FuncId)
    }

    /// Iterate over all array ids.
    pub fn array_ids(&self) -> impl Iterator<Item = ArrayId> + '_ {
        (0..self.arrays.len() as u32).map(ArrayId)
    }

    /// Total bytes of declared array storage.
    pub fn total_data_bytes(&self) -> u64 {
        self.arrays
            .iter()
            .map(|a| a.len() as u64 * a.elem.byte_width())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_strides_row_major() {
        let a = ArrayDecl {
            name: "A".into(),
            elem: Type::F64,
            dims: vec![4, 5, 6],
        };
        assert_eq!(a.len(), 120);
        assert_eq!(a.strides(), vec![30, 6, 1]);
        let b = ArrayDecl {
            name: "b".into(),
            elem: Type::F64,
            dims: vec![7],
        };
        assert_eq!(b.strides(), vec![1]);
    }

    #[test]
    fn id_display() {
        assert_eq!(FuncId(1).to_string(), "@f1");
        assert_eq!(BlockId(2).to_string(), "bb2");
        assert_eq!(ValueId(3).to_string(), "%3");
        assert_eq!(ArrayId(4).to_string(), "@a4");
    }

    #[test]
    fn module_lookups() {
        let mut m = Module::new("m");
        m.arrays.push(ArrayDecl {
            name: "x".into(),
            elem: Type::F32,
            dims: vec![8],
        });
        assert_eq!(m.total_data_bytes(), 32);
        assert!(m.entry_function().is_none());
        assert!(m.function_by_name("nope").is_none());
    }
}
