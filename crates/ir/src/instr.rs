//! Instructions, operands and terminators.

use crate::module::{ArrayId, BlockId, FuncId, ValueId};
use crate::types::Type;
use std::fmt;

/// An immediate constant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Imm {
    /// Integer immediate (any integer type).
    Int(i64),
    /// Floating-point immediate.
    Float(f64),
    /// Boolean immediate.
    Bool(bool),
}

impl fmt::Display for Imm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Imm::Int(v) => write!(f, "{v}"),
            Imm::Float(v) => write!(f, "{v:?}"),
            Imm::Bool(v) => write!(f, "{v}"),
        }
    }
}

/// An instruction operand: either an SSA value or an immediate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Operand {
    /// Reference to an SSA value (function parameter or instruction result).
    Value(ValueId),
    /// Immediate constant.
    Const(Imm),
}

impl Operand {
    /// Integer immediate convenience constructor.
    pub fn int(v: i64) -> Self {
        Operand::Const(Imm::Int(v))
    }

    /// Float immediate convenience constructor.
    pub fn float(v: f64) -> Self {
        Operand::Const(Imm::Float(v))
    }

    /// The referenced value, if this operand is not an immediate.
    pub fn as_value(self) -> Option<ValueId> {
        match self {
            Operand::Value(v) => Some(v),
            Operand::Const(_) => None,
        }
    }

    /// The immediate integer, if this operand is `Const(Int(_))`.
    pub fn as_const_int(self) -> Option<i64> {
        match self {
            Operand::Const(Imm::Int(v)) => Some(v),
            _ => None,
        }
    }
}

impl From<ValueId> for Operand {
    fn from(v: ValueId) -> Self {
        Operand::Value(v)
    }
}

/// Binary arithmetic / logical opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BinOp {
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Signed integer division.
    Div,
    /// Signed integer remainder.
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Shift left.
    Shl,
    /// Arithmetic shift right.
    Shr,
    /// Integer minimum.
    Min,
    /// Integer maximum.
    Max,
    /// Floating addition.
    FAdd,
    /// Floating subtraction.
    FSub,
    /// Floating multiplication.
    FMul,
    /// Floating division.
    FDiv,
    /// Floating minimum.
    FMin,
    /// Floating maximum.
    FMax,
}

impl BinOp {
    /// Whether this opcode operates on floating-point values.
    pub fn is_float(self) -> bool {
        matches!(
            self,
            BinOp::FAdd | BinOp::FSub | BinOp::FMul | BinOp::FDiv | BinOp::FMin | BinOp::FMax
        )
    }

    /// Mnemonic used by the printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "sdiv",
            BinOp::Rem => "srem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "ashr",
            BinOp::Min => "smin",
            BinOp::Max => "smax",
            BinOp::FAdd => "fadd",
            BinOp::FSub => "fsub",
            BinOp::FMul => "fmul",
            BinOp::FDiv => "fdiv",
            BinOp::FMin => "fmin",
            BinOp::FMax => "fmax",
        }
    }
}

/// Unary opcodes, including the (small) set of math intrinsics the benchmark
/// suites need and the two numeric casts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum UnaryOp {
    /// Integer negation.
    Neg,
    /// Bitwise not.
    Not,
    /// Floating negation.
    FNeg,
    /// Floating absolute value.
    FAbs,
    /// Floating square root.
    Sqrt,
    /// Floating exponential.
    Exp,
    /// Floating natural logarithm.
    Log,
    /// Signed integer to floating conversion.
    SiToFp,
    /// Floating to signed integer conversion (truncating).
    FpToSi,
}

impl UnaryOp {
    /// Mnemonic used by the printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnaryOp::Neg => "neg",
            UnaryOp::Not => "not",
            UnaryOp::FNeg => "fneg",
            UnaryOp::FAbs => "fabs",
            UnaryOp::Sqrt => "sqrt",
            UnaryOp::Exp => "exp",
            UnaryOp::Log => "log",
            UnaryOp::SiToFp => "sitofp",
            UnaryOp::FpToSi => "fptosi",
        }
    }
}

/// Comparison predicates (work on both integer and floating operands; the
/// instruction's `ty` field disambiguates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CmpPred {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed / ordered less-than.
    Lt,
    /// Signed / ordered less-or-equal.
    Le,
    /// Signed / ordered greater-than.
    Gt,
    /// Signed / ordered greater-or-equal.
    Ge,
}

impl CmpPred {
    /// Mnemonic used by the printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpPred::Eq => "eq",
            CmpPred::Ne => "ne",
            CmpPred::Lt => "lt",
            CmpPred::Le => "le",
            CmpPred::Gt => "gt",
            CmpPred::Ge => "ge",
        }
    }
}

/// An IR instruction.
///
/// Every instruction except [`Instr::Store`] produces exactly one SSA value.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// Binary arithmetic: `res = op ty lhs, rhs`.
    Binary {
        /// Opcode.
        op: BinOp,
        /// Operand/result type.
        ty: Type,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// Unary arithmetic / cast: `res = op val`.
    Unary {
        /// Opcode.
        op: UnaryOp,
        /// Result type.
        ty: Type,
        /// Operand.
        val: Operand,
    },
    /// Comparison producing `i1`: `res = cmp pred ty lhs, rhs`.
    Cmp {
        /// Predicate.
        pred: CmpPred,
        /// Operand type.
        ty: Type,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// Conditional select: `res = select cond, then, else`.
    Select {
        /// `i1` condition.
        cond: Operand,
        /// Result type.
        ty: Type,
        /// Value when `cond` is true.
        then_val: Operand,
        /// Value when `cond` is false.
        else_val: Operand,
    },
    /// Address computation over a declared array (row-major):
    /// `res = gep @arr[idx0][idx1]...`.
    ///
    /// The number of indices must equal the number of dimensions of the array
    /// declaration; the resulting pointer addresses one element.
    Gep {
        /// Target array.
        array: ArrayId,
        /// One index per array dimension.
        indices: Vec<Operand>,
    },
    /// Memory load: `res = load ty, ptr`.
    Load {
        /// Pointer operand (a `gep` result).
        ptr: Operand,
        /// Loaded type (must match the array element type).
        ty: Type,
    },
    /// Memory store: `store ty val, ptr`. Produces no value.
    Store {
        /// Pointer operand (a `gep` result).
        ptr: Operand,
        /// Stored value.
        value: Operand,
        /// Stored type.
        ty: Type,
    },
    /// SSA phi: `res = phi ty [ (pred, val), ... ]`.
    Phi {
        /// Result type.
        ty: Type,
        /// One entry per CFG predecessor of the containing block.
        incomings: Vec<(BlockId, Operand)>,
    },
    /// Direct call: `res = call @f(args...)`.
    Call {
        /// Callee.
        callee: FuncId,
        /// Argument list (must match the callee's parameter types).
        args: Vec<Operand>,
        /// Result type (`None` for void callees).
        ty: Option<Type>,
    },
}

impl Instr {
    /// The type of the value this instruction produces, or `None` for
    /// instructions that produce no value (`store`, void `call`).
    pub fn result_type(&self) -> Option<Type> {
        match self {
            Instr::Binary { ty, .. } | Instr::Unary { ty, .. } | Instr::Select { ty, .. } => {
                Some(*ty)
            }
            Instr::Cmp { .. } => Some(Type::I1),
            Instr::Gep { .. } => Some(Type::Ptr),
            Instr::Load { ty, .. } => Some(*ty),
            Instr::Store { .. } => None,
            Instr::Phi { ty, .. } => Some(*ty),
            Instr::Call { ty, .. } => *ty,
        }
    }

    /// Whether this instruction reads or writes memory.
    pub fn is_mem_access(&self) -> bool {
        matches!(self, Instr::Load { .. } | Instr::Store { .. })
    }

    /// Visit every operand of the instruction.
    pub fn for_each_operand(&self, mut f: impl FnMut(Operand)) {
        match self {
            Instr::Binary { lhs, rhs, .. } | Instr::Cmp { lhs, rhs, .. } => {
                f(*lhs);
                f(*rhs);
            }
            Instr::Unary { val, .. } => f(*val),
            Instr::Select {
                cond,
                then_val,
                else_val,
                ..
            } => {
                f(*cond);
                f(*then_val);
                f(*else_val);
            }
            Instr::Gep { indices, .. } => {
                for idx in indices {
                    f(*idx);
                }
            }
            Instr::Load { ptr, .. } => f(*ptr),
            Instr::Store { ptr, value, .. } => {
                f(*ptr);
                f(*value);
            }
            Instr::Phi { incomings, .. } => {
                for (_, v) in incomings {
                    f(*v);
                }
            }
            Instr::Call { args, .. } => {
                for a in args {
                    f(*a);
                }
            }
        }
    }

    /// Visit every operand of the instruction mutably (the transform passes'
    /// rewrite hook — e.g. replacing a value use with a folded constant).
    pub fn for_each_operand_mut(&mut self, mut f: impl FnMut(&mut Operand)) {
        match self {
            Instr::Binary { lhs, rhs, .. } | Instr::Cmp { lhs, rhs, .. } => {
                f(lhs);
                f(rhs);
            }
            Instr::Unary { val, .. } => f(val),
            Instr::Select {
                cond,
                then_val,
                else_val,
                ..
            } => {
                f(cond);
                f(then_val);
                f(else_val);
            }
            Instr::Gep { indices, .. } => {
                for idx in indices {
                    f(idx);
                }
            }
            Instr::Load { ptr, .. } => f(ptr),
            Instr::Store { ptr, value, .. } => {
                f(ptr);
                f(value);
            }
            Instr::Phi { incomings, .. } => {
                for (_, v) in incomings {
                    f(v);
                }
            }
            Instr::Call { args, .. } => {
                for a in args {
                    f(a);
                }
            }
        }
    }

    /// A short opcode name for diagnostics and merging.
    pub fn opcode_name(&self) -> &'static str {
        match self {
            Instr::Binary { op, .. } => op.mnemonic(),
            Instr::Unary { op, .. } => op.mnemonic(),
            Instr::Cmp { .. } => "cmp",
            Instr::Select { .. } => "select",
            Instr::Gep { .. } => "gep",
            Instr::Load { .. } => "load",
            Instr::Store { .. } => "store",
            Instr::Phi { .. } => "phi",
            Instr::Call { .. } => "call",
        }
    }
}

/// Block terminator.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    /// Unconditional branch.
    Br(BlockId),
    /// Conditional branch on an `i1` operand.
    CondBr {
        /// Condition.
        cond: Operand,
        /// Successor when true.
        then_bb: BlockId,
        /// Successor when false.
        else_bb: BlockId,
    },
    /// Function return.
    Ret(Option<Operand>),
}

impl Terminator {
    /// CFG successors of this terminator.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Br(b) => vec![*b],
            Terminator::CondBr {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            Terminator::Ret(_) => vec![],
        }
    }

    /// Visit every operand of the terminator (`CondBr` conditions and `Ret`
    /// values — branch targets are not operands).
    pub fn for_each_operand(&self, mut f: impl FnMut(Operand)) {
        match self {
            Terminator::Br(_) | Terminator::Ret(None) => {}
            Terminator::CondBr { cond, .. } => f(*cond),
            Terminator::Ret(Some(v)) => f(*v),
        }
    }

    /// Visit every operand of the terminator mutably (`CondBr` conditions and
    /// `Ret` values — branch targets are not operands).
    pub fn for_each_operand_mut(&mut self, mut f: impl FnMut(&mut Operand)) {
        match self {
            Terminator::Br(_) | Terminator::Ret(None) => {}
            Terminator::CondBr { cond, .. } => f(cond),
            Terminator::Ret(Some(v)) => f(v),
        }
    }

    /// Visit every successor block id mutably (used when blocks are renumbered
    /// or merged).
    pub fn for_each_successor_mut(&mut self, mut f: impl FnMut(&mut BlockId)) {
        match self {
            Terminator::Br(b) => f(b),
            Terminator::CondBr {
                then_bb, else_bb, ..
            } => {
                f(then_bb);
                f(else_bb);
            }
            Terminator::Ret(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operand_helpers() {
        assert_eq!(Operand::int(7).as_const_int(), Some(7));
        assert_eq!(Operand::float(1.0).as_const_int(), None);
        let v = ValueId(3);
        assert_eq!(Operand::from(v).as_value(), Some(v));
    }

    #[test]
    fn result_types() {
        let add = Instr::Binary {
            op: BinOp::Add,
            ty: Type::I64,
            lhs: Operand::int(1),
            rhs: Operand::int(2),
        };
        assert_eq!(add.result_type(), Some(Type::I64));
        let st = Instr::Store {
            ptr: Operand::int(0),
            value: Operand::int(0),
            ty: Type::F64,
        };
        assert_eq!(st.result_type(), None);
        assert!(st.is_mem_access());
        let cmp = Instr::Cmp {
            pred: CmpPred::Lt,
            ty: Type::I64,
            lhs: Operand::int(1),
            rhs: Operand::int(2),
        };
        assert_eq!(cmp.result_type(), Some(Type::I1));
    }

    #[test]
    fn operand_visitation_counts() {
        let sel = Instr::Select {
            cond: Operand::int(1),
            ty: Type::I64,
            then_val: Operand::int(2),
            else_val: Operand::int(3),
        };
        let mut n = 0;
        sel.for_each_operand(|_| n += 1);
        assert_eq!(n, 3);
    }

    #[test]
    fn terminator_successors() {
        let t = Terminator::CondBr {
            cond: Operand::int(1),
            then_bb: BlockId(1),
            else_bb: BlockId(2),
        };
        assert_eq!(t.successors(), vec![BlockId(1), BlockId(2)]);
        assert!(Terminator::Ret(None).successors().is_empty());
    }

    #[test]
    fn float_opcode_classification() {
        assert!(BinOp::FAdd.is_float());
        assert!(!BinOp::Add.is_float());
        assert_eq!(BinOp::FMul.mnemonic(), "fmul");
        assert_eq!(UnaryOp::Sqrt.mnemonic(), "sqrt");
        assert_eq!(CmpPred::Ge.mnemonic(), "ge");
    }
}
