//! Convenient construction of IR modules.
//!
//! Workload kernels (PolyBench & co.) are written against this builder. It
//! produces well-formed SSA directly: loops are built with header phis,
//! conditionals as dominance diamonds, so the region analysis in
//! `cayman-analysis` sees exactly the structured CFGs that LLVM's
//! `RegionInfoAnalysis` would report for `-O3`-compiled benchmark code.

use crate::instr::{BinOp, CmpPred, Imm, Instr, Operand, Terminator, UnaryOp};
use crate::module::{
    ArrayDecl, ArrayId, Block, BlockId, FuncId, Function, InstrId, Module, ValueDef, ValueId,
};
use crate::types::Type;

/// Builds a [`Module`]: declare arrays, then build functions in order.
///
/// See the crate-level docs for an end-to-end example.
#[derive(Debug)]
pub struct ModuleBuilder {
    module: Module,
}

impl ModuleBuilder {
    /// Creates a builder for a new module.
    pub fn new(name: impl Into<String>) -> Self {
        ModuleBuilder {
            module: Module::new(name),
        }
    }

    /// Declares a global array and returns its id.
    pub fn array(&mut self, name: impl Into<String>, elem: Type, dims: &[usize]) -> ArrayId {
        assert!(!dims.is_empty(), "array must have at least one dimension");
        assert!(
            dims.iter().all(|&d| d > 0),
            "array dimensions must be non-zero"
        );
        let id = ArrayId(self.module.arrays.len() as u32);
        self.module.arrays.push(ArrayDecl {
            name: name.into(),
            elem,
            dims: dims.to_vec(),
        });
        id
    }

    /// Builds a function with the given parameter and return types. The
    /// closure receives a [`FunctionBuilder`] positioned in the entry block.
    ///
    /// Functions may call any function built *earlier* (no forward
    /// references), which is sufficient for the benchmark programs where
    /// `main` is built last.
    pub fn function(
        &mut self,
        name: impl Into<String>,
        params: &[Type],
        ret: Option<Type>,
        build: impl FnOnce(&mut FunctionBuilder),
    ) -> FuncId {
        let mut fb = FunctionBuilder::new(name.into(), params, ret);
        build(&mut fb);
        let id = FuncId(self.module.functions.len() as u32);
        self.module.functions.push(fb.finish());
        id
    }

    /// Finishes construction and returns the module.
    pub fn finish(self) -> Module {
        self.module
    }

    /// Read-only view of the module under construction.
    pub fn module(&self) -> &Module {
        &self.module
    }
}

/// Builds one [`Function`].
///
/// The builder maintains a *current block*; instruction-emitting methods
/// append there. Structured-control-flow helpers ([`counted_loop`],
/// [`if_then`], ...) manage blocks and phis for you.
///
/// [`counted_loop`]: FunctionBuilder::counted_loop
/// [`if_then`]: FunctionBuilder::if_then
#[derive(Debug)]
pub struct FunctionBuilder {
    func: Function,
    current: BlockId,
}

impl FunctionBuilder {
    fn new(name: String, params: &[Type], ret: Option<Type>) -> Self {
        let values = params
            .iter()
            .enumerate()
            .map(|(i, &ty)| ValueDef::Param(i as u32, ty))
            .collect();
        let func = Function {
            name,
            params: params.to_vec(),
            ret,
            blocks: vec![Block {
                name: "entry".into(),
                instrs: Vec::new(),
                term: None,
            }],
            instrs: Vec::new(),
            values,
            instr_results: Vec::new(),
            block_map: Default::default(),
        };
        FunctionBuilder {
            func,
            current: BlockId(0),
        }
    }

    fn finish(self) -> Function {
        self.func
    }

    /// The `i`-th parameter as an operand.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn param(&self, i: usize) -> Operand {
        assert!(i < self.func.params.len(), "parameter index out of range");
        Operand::Value(ValueId(i as u32))
    }

    /// Creates a new (empty, unterminated) block.
    pub fn new_block(&mut self, name: impl Into<String>) -> BlockId {
        let id = BlockId(self.func.blocks.len() as u32);
        self.func.blocks.push(Block {
            name: name.into(),
            instrs: Vec::new(),
            term: None,
        });
        id
    }

    /// Switches the insertion point to `b`.
    pub fn switch_to(&mut self, b: BlockId) {
        self.current = b;
    }

    /// The current insertion block.
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    fn push(&mut self, instr: Instr) -> Option<Operand> {
        assert!(
            self.func.blocks[self.current.index()].term.is_none(),
            "cannot append to a terminated block"
        );
        let iid = InstrId(self.func.instrs.len() as u32);
        let res_ty = instr.result_type();
        self.func.instrs.push(instr);
        let result = res_ty.map(|_| {
            let v = ValueId(self.func.values.len() as u32);
            self.func.values.push(ValueDef::Instr(iid));
            v
        });
        self.func.instr_results.push(result);
        self.func.blocks[self.current.index()].instrs.push(iid);
        result.map(Operand::Value)
    }

    // ---- constants -------------------------------------------------------

    /// Integer immediate.
    pub fn iconst(&self, v: i64) -> Operand {
        Operand::Const(Imm::Int(v))
    }

    /// Float immediate.
    pub fn fconst(&self, v: f64) -> Operand {
        Operand::Const(Imm::Float(v))
    }

    // ---- arithmetic ------------------------------------------------------

    /// Generic binary instruction.
    pub fn binary(&mut self, op: BinOp, ty: Type, lhs: Operand, rhs: Operand) -> Operand {
        self.push(Instr::Binary { op, ty, lhs, rhs })
            .expect("binary produces a value")
    }

    /// `i64` addition.
    pub fn add(&mut self, lhs: Operand, rhs: Operand) -> Operand {
        self.binary(BinOp::Add, Type::I64, lhs, rhs)
    }

    /// `i64` subtraction.
    pub fn sub(&mut self, lhs: Operand, rhs: Operand) -> Operand {
        self.binary(BinOp::Sub, Type::I64, lhs, rhs)
    }

    /// `i64` multiplication.
    pub fn mul(&mut self, lhs: Operand, rhs: Operand) -> Operand {
        self.binary(BinOp::Mul, Type::I64, lhs, rhs)
    }

    /// `i64` signed division.
    pub fn sdiv(&mut self, lhs: Operand, rhs: Operand) -> Operand {
        self.binary(BinOp::Div, Type::I64, lhs, rhs)
    }

    /// `i64` signed remainder.
    pub fn srem(&mut self, lhs: Operand, rhs: Operand) -> Operand {
        self.binary(BinOp::Rem, Type::I64, lhs, rhs)
    }

    /// `i64` bitwise and.
    pub fn and(&mut self, lhs: Operand, rhs: Operand) -> Operand {
        self.binary(BinOp::And, Type::I64, lhs, rhs)
    }

    /// `i64` bitwise xor.
    pub fn xor(&mut self, lhs: Operand, rhs: Operand) -> Operand {
        self.binary(BinOp::Xor, Type::I64, lhs, rhs)
    }

    /// `i64` shift left.
    pub fn shl(&mut self, lhs: Operand, rhs: Operand) -> Operand {
        self.binary(BinOp::Shl, Type::I64, lhs, rhs)
    }

    /// `i64` arithmetic shift right.
    pub fn shr(&mut self, lhs: Operand, rhs: Operand) -> Operand {
        self.binary(BinOp::Shr, Type::I64, lhs, rhs)
    }

    /// `f64` addition.
    pub fn fadd(&mut self, lhs: Operand, rhs: Operand) -> Operand {
        self.binary(BinOp::FAdd, Type::F64, lhs, rhs)
    }

    /// `f64` subtraction.
    pub fn fsub(&mut self, lhs: Operand, rhs: Operand) -> Operand {
        self.binary(BinOp::FSub, Type::F64, lhs, rhs)
    }

    /// `f64` multiplication.
    pub fn fmul(&mut self, lhs: Operand, rhs: Operand) -> Operand {
        self.binary(BinOp::FMul, Type::F64, lhs, rhs)
    }

    /// `f64` division.
    pub fn fdiv(&mut self, lhs: Operand, rhs: Operand) -> Operand {
        self.binary(BinOp::FDiv, Type::F64, lhs, rhs)
    }

    /// `f64` maximum.
    pub fn fmax(&mut self, lhs: Operand, rhs: Operand) -> Operand {
        self.binary(BinOp::FMax, Type::F64, lhs, rhs)
    }

    /// Generic unary instruction.
    pub fn unary(&mut self, op: UnaryOp, ty: Type, val: Operand) -> Operand {
        self.push(Instr::Unary { op, ty, val })
            .expect("unary produces a value")
    }

    /// `f64` square root.
    pub fn sqrt(&mut self, val: Operand) -> Operand {
        self.unary(UnaryOp::Sqrt, Type::F64, val)
    }

    /// `f64` exponential.
    pub fn exp(&mut self, val: Operand) -> Operand {
        self.unary(UnaryOp::Exp, Type::F64, val)
    }

    /// `f64` absolute value.
    pub fn fabs(&mut self, val: Operand) -> Operand {
        self.unary(UnaryOp::FAbs, Type::F64, val)
    }

    /// `i64` → `f64` conversion.
    pub fn sitofp(&mut self, val: Operand) -> Operand {
        self.unary(UnaryOp::SiToFp, Type::F64, val)
    }

    /// `f64` → `i64` conversion (truncating).
    pub fn fptosi(&mut self, val: Operand) -> Operand {
        self.unary(UnaryOp::FpToSi, Type::I64, val)
    }

    /// Comparison producing `i1`.
    pub fn cmp(&mut self, pred: CmpPred, ty: Type, lhs: Operand, rhs: Operand) -> Operand {
        self.push(Instr::Cmp { pred, ty, lhs, rhs })
            .expect("cmp produces a value")
    }

    /// `i64` less-than.
    pub fn icmp_lt(&mut self, lhs: Operand, rhs: Operand) -> Operand {
        self.cmp(CmpPred::Lt, Type::I64, lhs, rhs)
    }

    /// `i64` equality.
    pub fn icmp_eq(&mut self, lhs: Operand, rhs: Operand) -> Operand {
        self.cmp(CmpPred::Eq, Type::I64, lhs, rhs)
    }

    /// `f64` ordered greater-than.
    pub fn fcmp_gt(&mut self, lhs: Operand, rhs: Operand) -> Operand {
        self.cmp(CmpPred::Gt, Type::F64, lhs, rhs)
    }

    /// Conditional select.
    pub fn select(&mut self, cond: Operand, ty: Type, t: Operand, e: Operand) -> Operand {
        self.push(Instr::Select {
            cond,
            ty,
            then_val: t,
            else_val: e,
        })
        .expect("select produces a value")
    }

    // ---- memory ----------------------------------------------------------

    /// Address of `array[indices...]` (one index per dimension).
    pub fn gep(&mut self, array: ArrayId, indices: &[Operand]) -> Operand {
        self.push(Instr::Gep {
            array,
            indices: indices.to_vec(),
        })
        .expect("gep produces a value")
    }

    /// Load with explicit element type.
    pub fn load(&mut self, ptr: Operand, ty: Type) -> Operand {
        self.push(Instr::Load { ptr, ty })
            .expect("load produces a value")
    }

    /// Store with explicit element type.
    pub fn store(&mut self, ptr: Operand, value: Operand, ty: Type) {
        self.push(Instr::Store { ptr, value, ty });
    }

    /// Combined gep + load of `array[indices...]` with element type `F64`.
    ///
    /// Workload kernels are overwhelmingly `f64`; use [`load_idx_ty`] for
    /// other element types.
    ///
    /// [`load_idx_ty`]: FunctionBuilder::load_idx_ty
    pub fn load_idx(&mut self, array: ArrayId, indices: &[Operand]) -> Operand {
        self.load_idx_ty(array, indices, Type::F64)
    }

    /// Combined gep + load with explicit element type.
    pub fn load_idx_ty(&mut self, array: ArrayId, indices: &[Operand], ty: Type) -> Operand {
        let p = self.gep(array, indices);
        self.load(p, ty)
    }

    /// Combined gep + store of `array[indices...] = value` with type `F64`.
    pub fn store_idx(&mut self, array: ArrayId, indices: &[Operand], value: Operand) {
        self.store_idx_ty(array, indices, value, Type::F64);
    }

    /// Combined gep + store with explicit element type.
    pub fn store_idx_ty(&mut self, array: ArrayId, indices: &[Operand], value: Operand, ty: Type) {
        let p = self.gep(array, indices);
        self.store(p, value, ty);
    }

    // ---- phis & calls ----------------------------------------------------

    /// Creates a phi with the given incomings.
    pub fn phi(&mut self, ty: Type, incomings: Vec<(BlockId, Operand)>) -> Operand {
        self.push(Instr::Phi { ty, incomings })
            .expect("phi produces a value")
    }

    /// Adds an incoming edge to an existing phi.
    ///
    /// # Panics
    ///
    /// Panics if `phi` does not name a phi instruction.
    pub fn add_phi_incoming(&mut self, phi: Operand, pred: BlockId, val: Operand) {
        let vid = phi.as_value().expect("phi operand must be a value");
        let ValueDef::Instr(iid) = self.func.values[vid.index()] else {
            panic!("phi operand must be an instruction result");
        };
        match &mut self.func.instrs[iid.index()] {
            Instr::Phi { incomings, .. } => incomings.push((pred, val)),
            other => panic!("expected phi, found {}", other.opcode_name()),
        }
    }

    /// Direct call to a previously built function.
    pub fn call(&mut self, callee: FuncId, args: &[Operand], ty: Option<Type>) -> Option<Operand> {
        self.push(Instr::Call {
            callee,
            args: args.to_vec(),
            ty,
        })
    }

    // ---- terminators -----------------------------------------------------

    fn terminate(&mut self, t: Terminator) {
        let blk = &mut self.func.blocks[self.current.index()];
        assert!(blk.term.is_none(), "block {} already terminated", blk.name);
        blk.term = Some(t);
    }

    /// Unconditional branch; leaves the insertion point on the (now
    /// terminated) current block — call [`switch_to`] next.
    ///
    /// [`switch_to`]: FunctionBuilder::switch_to
    pub fn br(&mut self, target: BlockId) {
        self.terminate(Terminator::Br(target));
    }

    /// Conditional branch.
    pub fn cond_br(&mut self, cond: Operand, then_bb: BlockId, else_bb: BlockId) {
        self.terminate(Terminator::CondBr {
            cond,
            then_bb,
            else_bb,
        });
    }

    /// Return.
    pub fn ret(&mut self, val: Option<Operand>) {
        self.terminate(Terminator::Ret(val));
    }

    // ---- structured control flow ----------------------------------------

    /// Builds `for (i = start; i < end; i += step) body(i)` and leaves the
    /// insertion point in the loop's exit block. The induction variable is
    /// passed to `body`.
    ///
    /// The generated CFG is the canonical natural-loop shape: a dedicated
    /// header with the IV phi, a body subgraph, a latch increment and a
    /// single exit — i.e. a single-entry-single-exit *ctrl-flow* region in
    /// wPST terms.
    pub fn counted_loop(
        &mut self,
        start: i64,
        end: i64,
        step: i64,
        body: impl FnOnce(&mut Self, Operand),
    ) {
        let s = self.iconst(start);
        let e = self.iconst(end);
        self.counted_loop_dyn(s, e, step, body);
    }

    /// [`counted_loop`](FunctionBuilder::counted_loop) with operand bounds
    /// (e.g. loop limits that are function parameters or loaded values).
    pub fn counted_loop_dyn(
        &mut self,
        start: Operand,
        end: Operand,
        step: i64,
        body: impl FnOnce(&mut Self, Operand),
    ) {
        assert!(step != 0, "loop step must be non-zero");
        let header = self.new_block("loop.header");
        let body_bb = self.new_block("loop.body");
        let exit = self.new_block("loop.exit");

        let preheader = self.current;
        self.br(header);

        self.switch_to(header);
        let iv = self.phi(Type::I64, vec![(preheader, start)]);
        let cont = if step > 0 {
            self.cmp(CmpPred::Lt, Type::I64, iv, end)
        } else {
            self.cmp(CmpPred::Gt, Type::I64, iv, end)
        };
        self.cond_br(cont, body_bb, exit);

        self.switch_to(body_bb);
        body(self, iv);
        let latch = self.current;
        let stepc = self.iconst(step);
        let next = self.add(iv, stepc);
        self.add_phi_incoming(iv, latch, next);
        self.br(header);

        self.switch_to(exit);
    }

    /// Builds a counted loop that threads `carries` (loop-carried scalars)
    /// through header phis; `body` returns the next-iteration values, and the
    /// final values are returned for use after the loop.
    ///
    /// This is how reductions that stay in registers (e.g. a running `f64`
    /// sum) are expressed; memory-carried reductions (`z[i] += ...`) just use
    /// load/store inside a plain [`counted_loop`](FunctionBuilder::counted_loop).
    pub fn counted_loop_carry(
        &mut self,
        start: i64,
        end: i64,
        step: i64,
        carries: &[(Type, Operand)],
        body: impl FnOnce(&mut Self, Operand, &[Operand]) -> Vec<Operand>,
    ) -> Vec<Operand> {
        assert!(step != 0, "loop step must be non-zero");
        let header = self.new_block("loop.header");
        let body_bb = self.new_block("loop.body");
        let exit = self.new_block("loop.exit");

        let preheader = self.current;
        self.br(header);

        self.switch_to(header);
        let s = self.iconst(start);
        let iv = self.phi(Type::I64, vec![(preheader, s)]);
        let carry_phis: Vec<Operand> = carries
            .iter()
            .map(|&(ty, init)| self.phi(ty, vec![(preheader, init)]))
            .collect();
        let e = self.iconst(end);
        let cont = if step > 0 {
            self.cmp(CmpPred::Lt, Type::I64, iv, e)
        } else {
            self.cmp(CmpPred::Gt, Type::I64, iv, e)
        };
        self.cond_br(cont, body_bb, exit);

        self.switch_to(body_bb);
        let nexts = body(self, iv, &carry_phis);
        assert_eq!(
            nexts.len(),
            carries.len(),
            "body must return one value per carried scalar"
        );
        let latch = self.current;
        let stepc = self.iconst(step);
        let ivn = self.add(iv, stepc);
        self.add_phi_incoming(iv, latch, ivn);
        for (phi, next) in carry_phis.iter().zip(&nexts) {
            self.add_phi_incoming(*phi, latch, *next);
        }
        self.br(header);

        self.switch_to(exit);
        carry_phis
    }

    /// [`counted_loop_carry`](FunctionBuilder::counted_loop_carry) with
    /// operand bounds and a fixed `+1` step — used for triangular loop nests
    /// (`for k in 0..i`) common in factorisation kernels.
    pub fn counted_loop_carry_dyn(
        &mut self,
        start: Operand,
        end: Operand,
        carries: &[(Type, Operand)],
        body: impl FnOnce(&mut Self, Operand, &[Operand]) -> Vec<Operand>,
    ) -> Vec<Operand> {
        let header = self.new_block("loop.header");
        let body_bb = self.new_block("loop.body");
        let exit = self.new_block("loop.exit");

        let preheader = self.current;
        self.br(header);

        self.switch_to(header);
        let iv = self.phi(Type::I64, vec![(preheader, start)]);
        let carry_phis: Vec<Operand> = carries
            .iter()
            .map(|&(ty, init)| self.phi(ty, vec![(preheader, init)]))
            .collect();
        let cont = self.cmp(CmpPred::Lt, Type::I64, iv, end);
        self.cond_br(cont, body_bb, exit);

        self.switch_to(body_bb);
        let nexts = body(self, iv, &carry_phis);
        assert_eq!(
            nexts.len(),
            carries.len(),
            "body must return one value per carried scalar"
        );
        let latch = self.current;
        let one = self.iconst(1);
        let ivn = self.add(iv, one);
        self.add_phi_incoming(iv, latch, ivn);
        for (phi, next) in carry_phis.iter().zip(&nexts) {
            self.add_phi_incoming(*phi, latch, *next);
        }
        self.br(header);

        self.switch_to(exit);
        carry_phis
    }

    /// Builds `if (cond) { then }` as a dominance diamond with an empty else
    /// arm; leaves the insertion point in the join block.
    pub fn if_then(&mut self, cond: Operand, then_body: impl FnOnce(&mut Self)) {
        let then_bb = self.new_block("if.then");
        let join = self.new_block("if.join");
        self.cond_br(cond, then_bb, join);
        self.switch_to(then_bb);
        then_body(self);
        self.br(join);
        self.switch_to(join);
    }

    /// Builds `if (cond) { then } else { else }`; leaves the insertion point
    /// in the join block.
    pub fn if_then_else(
        &mut self,
        cond: Operand,
        then_body: impl FnOnce(&mut Self),
        else_body: impl FnOnce(&mut Self),
    ) {
        let then_bb = self.new_block("if.then");
        let else_bb = self.new_block("if.else");
        let join = self.new_block("if.join");
        self.cond_br(cond, then_bb, else_bb);
        self.switch_to(then_bb);
        then_body(self);
        self.br(join);
        self.switch_to(else_bb);
        else_body(self);
        self.br(join);
        self.switch_to(join);
    }

    /// Like [`if_then_else`](FunctionBuilder::if_then_else) but merges one
    /// value of type `ty` from the two arms via a phi in the join block.
    pub fn if_then_else_val(
        &mut self,
        cond: Operand,
        ty: Type,
        then_body: impl FnOnce(&mut Self) -> Operand,
        else_body: impl FnOnce(&mut Self) -> Operand,
    ) -> Operand {
        let then_bb = self.new_block("if.then");
        let else_bb = self.new_block("if.else");
        let join = self.new_block("if.join");
        self.cond_br(cond, then_bb, else_bb);
        self.switch_to(then_bb);
        let tv = then_body(self);
        let t_end = self.current;
        self.br(join);
        self.switch_to(else_bb);
        let ev = else_body(self);
        let e_end = self.current;
        self.br(join);
        self.switch_to(join);
        self.phi(ty, vec![(t_end, tv), (e_end, ev)])
    }

    /// Builds a general `while` loop: `cond` is evaluated in the header each
    /// iteration (it may carry state through phis created by the caller);
    /// this is used for irregular loops (string scanners, LZ matchers).
    pub fn while_loop(
        &mut self,
        cond: impl FnOnce(&mut Self) -> Operand,
        body: impl FnOnce(&mut Self),
    ) {
        let header = self.new_block("while.header");
        let body_bb = self.new_block("while.body");
        let exit = self.new_block("while.exit");
        self.br(header);
        self.switch_to(header);
        let c = cond(self);
        self.cond_br(c, body_bb, exit);
        self.switch_to(body_bb);
        body(self);
        self.br(header);
        self.switch_to(exit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_simple_loop_module() {
        let mut mb = ModuleBuilder::new("t");
        let x = mb.array("x", Type::F64, &[8]);
        let f = mb.function("f", &[], None, |fb| {
            fb.counted_loop(0, 8, 1, |fb, i| {
                let v = fb.load_idx(x, &[i]);
                let w = fb.fadd(v, fb.fconst(1.0));
                fb.store_idx(x, &[i], w);
            });
            fb.ret(None);
        });
        let m = mb.finish();
        let func = m.function(f);
        // entry, header, body, exit
        assert_eq!(func.blocks.len(), 4);
        assert!(func.blocks.iter().all(|b| b.term.is_some()));
        // phi lives in the header and has two incomings
        let header = &func.blocks[1];
        let phi = func.instr(header.instrs[0]);
        match phi {
            Instr::Phi { incomings, .. } => assert_eq!(incomings.len(), 2),
            other => panic!("expected phi first in header, got {}", other.opcode_name()),
        }
    }

    #[test]
    fn if_then_else_val_builds_diamond_with_phi() {
        let mut mb = ModuleBuilder::new("t");
        let f = mb.function("g", &[Type::I64], Some(Type::I64), |fb| {
            let p = fb.param(0);
            let z = fb.iconst(0);
            let c = fb.icmp_lt(p, z);
            let r = fb.if_then_else_val(
                c,
                Type::I64,
                |fb| {
                    let z = fb.iconst(0);
                    fb.sub(z, p)
                },
                |_| p,
            );
            fb.ret(Some(r));
        });
        let m = mb.finish();
        let func = m.function(f);
        assert_eq!(func.blocks.len(), 4); // entry, then, else, join
        let join = func.blocks.last().expect("join block");
        assert!(matches!(func.instr(join.instrs[0]), Instr::Phi { .. }));
    }

    #[test]
    fn carried_loop_threads_values() {
        let mut mb = ModuleBuilder::new("t");
        let x = mb.array("x", Type::F64, &[4]);
        mb.function("sum", &[], Some(Type::F64), |fb| {
            let init = fb.fconst(0.0);
            let finals = fb.counted_loop_carry(0, 4, 1, &[(Type::F64, init)], |fb, i, c| {
                let v = fb.load_idx(x, &[i]);
                vec![fb.fadd(c[0], v)]
            });
            fb.ret(Some(finals[0]));
        });
        let m = mb.finish();
        assert_eq!(m.functions.len(), 1);
    }

    #[test]
    #[should_panic(expected = "already terminated")]
    fn double_terminate_panics() {
        let mut mb = ModuleBuilder::new("t");
        mb.function("f", &[], None, |fb| {
            fb.ret(None);
            fb.ret(None);
        });
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_array_dim_panics() {
        let mut mb = ModuleBuilder::new("t");
        mb.array("bad", Type::F64, &[0]);
    }
}
