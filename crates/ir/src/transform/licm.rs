//! Loop-invariant code motion for pure scalar arithmetic.
//!
//! Moves computations whose operands are defined outside a loop from the
//! loop body into the loop's preheader. The pass is deliberately
//! **CFG-preserving**: it never creates blocks or edits terminators, only
//! re-homes instructions between existing blocks (loops without a unique
//! out-of-loop header predecessor are skipped). `InstrId`s and `ValueId`s
//! are untouched, which is what lets `cayman-core` run this pass on an
//! analysis shadow of a function and carry the results back by id.
//!
//! ## Trap safety
//!
//! The preheader executes even when the loop body does not (a zero-trip
//! loop), so only *total* operations may move: every integer/float binary
//! except `div`/`rem` with a possibly-zero divisor, unary ops, compares and
//! selects. `gep` stays put — the interpreter bounds-checks at gep
//! evaluation time, so hoisting one could introduce an out-of-bounds trap
//! the original program never reached. Loads, stores, calls and phis are
//! never moved.

use super::{Changed, Pass};
use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::instr::{BinOp, Imm, Instr, Operand};
use crate::loops::{LoopForest, LoopId};
use crate::module::{BlockId, FuncId, Function, Module, ValueDef, ValueId};
use std::collections::HashSet;

/// Hoists loop-invariant pure arithmetic into loop preheaders.
pub struct Licm;

impl Pass for Licm {
    fn name(&self) -> &'static str {
        "licm"
    }

    fn run(&mut self, module: &mut Module) -> Changed {
        let mut changed = false;
        for func in &mut module.functions {
            changed |= licm_function(func);
        }
        Changed::from_bool(changed)
    }

    fn run_fn(&mut self, module: &mut Module, func: FuncId) -> Changed {
        Changed::from_bool(licm_function(&mut module.functions[func.index()]))
    }
}

/// Whether `instr` may be recomputed speculatively: pure and incapable of
/// trapping on any operand values.
fn total_pure(instr: &Instr) -> bool {
    match instr {
        Instr::Binary { op, rhs, .. } => match op {
            // Division traps on a zero divisor; a non-zero constant divisor
            // is provably safe (`wrapping_div`/`wrapping_rem` are total).
            BinOp::Div | BinOp::Rem => matches!(rhs, Operand::Const(Imm::Int(c)) if *c != 0),
            _ => true,
        },
        Instr::Unary { .. } | Instr::Cmp { .. } | Instr::Select { .. } => true,
        // Gep bounds-checks eagerly; everything else has effects or is
        // position-sensitive.
        _ => false,
    }
}

fn licm_function(func: &mut Function) -> bool {
    let cfg = Cfg::compute(func);
    let dom = DomTree::dominators(func, &cfg);
    let forest = LoopForest::compute(func, &cfg, &dom);

    // Innermost loops first: an instruction hoisted into an inner preheader
    // that is still inside an outer loop gets another chance below.
    let mut loops: Vec<LoopId> = forest.ids().collect();
    loops.sort_by_key(|&l| std::cmp::Reverse(forest.get(l).depth));

    let mut changed = false;
    for l in loops {
        let lp = forest.get(l);
        // Unique out-of-loop predecessor of the header = the hoist target.
        let outside: Vec<BlockId> = cfg.preds[lp.header.index()]
            .iter()
            .copied()
            .filter(|p| !lp.blocks.contains(p))
            .collect();
        let [pre] = outside.as_slice() else {
            continue;
        };
        let pre = *pre;

        let in_loop: HashSet<BlockId> = lp.blocks.iter().copied().collect();
        // Results of instructions already hoisted from this loop count as
        // defined outside it, so invariant chains move together.
        let mut hoisted_vals: HashSet<ValueId> = HashSet::new();
        let mut moved: Vec<crate::module::InstrId> = Vec::new();

        // Visit loop blocks in RPO so producers are considered before their
        // in-loop consumers.
        for &b in cfg.rpo.iter().filter(|b| in_loop.contains(b)) {
            for &iid in &func.block(b).instrs {
                let instr = func.instr(iid);
                if !total_pure(instr) {
                    continue;
                }
                let mut invariant = true;
                instr.for_each_operand(|op| {
                    if let Operand::Value(v) = op {
                        if hoisted_vals.contains(&v) {
                            return;
                        }
                        let def_in_loop = match func.values[v.index()] {
                            ValueDef::Instr(i) => func
                                .containing_block(i)
                                .is_some_and(|db| in_loop.contains(&db)),
                            ValueDef::Param(..) => false,
                        };
                        if def_in_loop {
                            invariant = false;
                        }
                    }
                });
                if invariant {
                    moved.push(iid);
                    if let Some(v) = func.result_of(iid) {
                        hoisted_vals.insert(v);
                    }
                }
            }
        }

        if moved.is_empty() {
            continue;
        }
        let moved_set: HashSet<crate::module::InstrId> = moved.iter().copied().collect();
        for &b in &lp.blocks {
            func.blocks[b.index()]
                .instrs
                .retain(|i| !moved_set.contains(i));
        }
        // Append in discovery order (producers first) ahead of the
        // preheader's terminator.
        func.blocks[pre.index()].instrs.extend(moved);
        func.invalidate_block_map();
        changed = true;
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::interp::Interp;
    use crate::transform::Pass;
    use crate::{FuncId, Type};

    /// `src[i][j] = (i*7 + j) % 13` — the `i*7` multiply is invariant in the
    /// inner loop, the `%` depends on `j` and must stay.
    fn nested_kernel() -> crate::Module {
        let mut mb = ModuleBuilder::new("t");
        let src = mb.array("src", Type::I64, &[8, 4]);
        mb.function("main", &[], None, |fb| {
            fb.counted_loop(0, 8, 1, |fb, i| {
                fb.counted_loop(0, 4, 1, |fb, j| {
                    let seven = fb.iconst(7);
                    let t = fb.mul(i, seven);
                    let s = fb.add(t, j);
                    let thirteen = fb.iconst(13);
                    let v = fb.srem(s, thirteen);
                    fb.store_idx_ty(src, &[i, j], v, Type::I64);
                });
            });
            fb.ret(None);
        });
        mb.finish()
    }

    fn block_of_mul(m: &crate::Module) -> crate::BlockId {
        let f = m.function(FuncId(0));
        for b in f.block_ids() {
            for &iid in &f.block(b).instrs {
                if matches!(f.instr(iid), Instr::Binary { op: BinOp::Mul, .. }) {
                    return b;
                }
            }
        }
        panic!("mul not found");
    }

    #[test]
    fn hoists_inner_invariant_multiply() {
        let mut m = nested_kernel();
        let before = block_of_mul(&m);
        let mem_before = {
            let mut i = Interp::new(&m);
            i.run(&[]).expect("runs");
            i.memory.cells.clone()
        };
        assert_eq!(Licm.run(&mut m), Changed::Yes);
        m.verify().expect("still verifies");
        let after = block_of_mul(&m);
        assert_ne!(before, after, "i*7 left the inner body");
        // Observable behaviour unchanged.
        let mut i = Interp::new(&m);
        i.run(&[]).expect("still runs");
        assert_eq!(i.memory.cells, mem_before);
        // Idempotent.
        assert_eq!(Licm.run(&mut m), Changed::No);
    }

    #[test]
    fn keeps_loop_variant_ops_and_memory_ops() {
        let mut m = nested_kernel();
        Licm.run(&mut m);
        let f = m.function(FuncId(0));
        // The srem (depends on j) and the store stay in a loop block of the
        // inner loop.
        let cfg = Cfg::compute(f);
        let dom = DomTree::dominators(f, &cfg);
        let forest = LoopForest::compute(f, &cfg, &dom);
        let inner = forest
            .ids()
            .find(|&l| forest.get(l).depth == 2)
            .expect("inner loop");
        let inner_blocks: HashSet<_> = forest.get(inner).blocks.iter().copied().collect();
        let mut srem_in = false;
        let mut store_in = false;
        for &b in &inner_blocks {
            for &iid in &f.block(b).instrs {
                match f.instr(iid) {
                    Instr::Binary { op: BinOp::Rem, .. } => srem_in = true,
                    Instr::Store { .. } => store_in = true,
                    _ => {}
                }
            }
        }
        assert!(srem_in, "j-dependent rem must stay");
        assert!(store_in, "stores never move");
    }

    #[test]
    fn does_not_hoist_possibly_trapping_division() {
        // x / d with a loop-invariant but non-constant divisor: the loop
        // body never executes (trip guarded at 0 iterations would still run
        // the preheader), so the division must not move.
        let mut mb = ModuleBuilder::new("t");
        let out = mb.array("out", Type::I64, &[8]);
        mb.function("main", &[], None, |fb| {
            let zero = fb.iconst(0);
            let d = fb.add(zero, zero); // d = 0, opaque to this pass
            fb.counted_loop(0, 0, 1, |fb, i| {
                let hundred = fb.iconst(100);
                let q = fb.sdiv(hundred, d);
                fb.store_idx_ty(out, &[i], q, Type::I64);
            });
            fb.ret(None);
        });
        let mut m = mb.finish();
        let ok_before = Interp::new(&m).run(&[]).is_ok();
        Licm.run(&mut m);
        let ok_after = Interp::new(&m).run(&[]).is_ok();
        assert_eq!(ok_before, ok_after, "no trap introduced");
        assert!(ok_after, "zero-trip loop never divides");
    }

    #[test]
    fn invariant_chain_moves_together() {
        // t = i*4; u = t+3 inside the inner loop: both invariant, u depends
        // on t — they must hoist as a unit, producer first.
        let mut mb = ModuleBuilder::new("t");
        let a = mb.array("a", Type::I64, &[8, 4]);
        mb.function("main", &[], None, |fb| {
            fb.counted_loop(0, 8, 1, |fb, i| {
                fb.counted_loop(0, 4, 1, |fb, j| {
                    let four = fb.iconst(4);
                    let three = fb.iconst(3);
                    let t = fb.mul(i, four);
                    let u = fb.add(t, three);
                    let v = fb.add(u, j);
                    fb.store_idx_ty(a, &[i, j], v, Type::I64);
                });
            });
            fb.ret(None);
        });
        let mut m = mb.finish();
        assert_eq!(Licm.run(&mut m), Changed::Yes);
        m.verify().expect("verifies");
        let mut i = Interp::new(&m);
        i.run(&[]).expect("runs");
    }
}
