//! Constant folding through the interpreter's own arithmetic kernels.

use super::{replace_all_uses, Changed, Pass};
use crate::instr::{Imm, Instr, Operand};
use crate::interp::{exec_binary, exec_cmp, exec_unary, Value};
use crate::module::{FuncId, Function, InstrId, Module};

/// Replaces uses of instructions with all-constant inputs by their result.
///
/// Evaluation goes through the same `exec_*` kernels as the interpreter, so
/// wrapping arithmetic, `i32` narrowing and float semantics are bit-exact by
/// construction. An evaluation that would error at runtime (division by
/// zero, operand type confusion) is left in place — the instruction keeps
/// its runtime behavior. Folded instructions become unused but stay in
/// their blocks; [`super::Dce`] removes the ones it can prove trap-free.
///
/// Also folds:
/// * `select` on a constant condition → the chosen operand (constant or
///   not);
/// * phis whose incomings are all the same operand (bit-identical for float
///   constants) → that operand.
pub struct ConstFold;

impl Pass for ConstFold {
    fn name(&self) -> &'static str {
        "constfold"
    }

    fn run(&mut self, module: &mut Module) -> Changed {
        let mut changed = false;
        for func in &mut module.functions {
            changed |= fold_function(func);
        }
        Changed::from_bool(changed)
    }

    fn run_fn(&mut self, module: &mut Module, func: FuncId) -> Changed {
        Changed::from_bool(fold_function(&mut module.functions[func.index()]))
    }
}

fn imm_value(imm: Imm) -> Value {
    match imm {
        Imm::Int(v) => Value::I(v),
        Imm::Float(v) => Value::F(v),
        Imm::Bool(v) => Value::B(v),
    }
}

fn value_imm(v: Value) -> Option<Imm> {
    match v {
        Value::I(v) => Some(Imm::Int(v)),
        Value::F(v) => Some(Imm::Float(v)),
        Value::B(v) => Some(Imm::Bool(v)),
        Value::P(_) => None,
    }
}

fn const_of(op: Operand) -> Option<Imm> {
    match op {
        Operand::Const(imm) => Some(imm),
        Operand::Value(_) => None,
    }
}

/// Bit-exact operand equality (`-0.0 != 0.0`, `NaN == NaN` payload-wise),
/// unlike the derived `PartialEq` which follows IEEE comparison.
fn same_operand(a: Operand, b: Operand) -> bool {
    match (a, b) {
        (Operand::Value(x), Operand::Value(y)) => x == y,
        (Operand::Const(Imm::Float(x)), Operand::Const(Imm::Float(y))) => {
            x.to_bits() == y.to_bits()
        }
        (Operand::Const(x), Operand::Const(y)) => x == y,
        _ => false,
    }
}

/// The replacement operand for `instr` when its inputs are constant enough,
/// or `None` when it must be left alone.
fn folded(instr: &Instr) -> Option<Operand> {
    match instr {
        Instr::Binary { op, ty, lhs, rhs } => {
            let (l, r) = (const_of(*lhs)?, const_of(*rhs)?);
            let v = exec_binary(*op, *ty, imm_value(l), imm_value(r)).ok()?;
            Some(Operand::Const(value_imm(v)?))
        }
        Instr::Unary { op, val, .. } => {
            let v = exec_unary(*op, imm_value(const_of(*val)?)).ok()?;
            Some(Operand::Const(value_imm(v)?))
        }
        Instr::Cmp { pred, ty, lhs, rhs } => {
            let (l, r) = (const_of(*lhs)?, const_of(*rhs)?);
            let v = exec_cmp(*pred, *ty, imm_value(l), imm_value(r)).ok()?;
            Some(Operand::Const(Imm::Bool(v)))
        }
        Instr::Select {
            cond,
            then_val,
            else_val,
            ..
        } => match const_of(*cond)? {
            Imm::Bool(true) => Some(*then_val),
            Imm::Bool(false) => Some(*else_val),
            // A non-bool constant condition errors at runtime; keep it.
            _ => None,
        },
        Instr::Phi { incomings, .. } => {
            let (_, first) = *incomings.first()?;
            incomings
                .iter()
                .all(|&(_, v)| same_operand(v, first))
                .then_some(first)
        }
        _ => None,
    }
}

fn fold_function(func: &mut Function) -> bool {
    let mut changed = false;
    loop {
        let placed: Vec<InstrId> = func
            .blocks
            .iter()
            .flat_map(|b| b.instrs.iter().copied())
            .collect();
        let mut round = false;
        for iid in placed {
            let Some(result) = func.result_of(iid) else {
                continue;
            };
            if let Some(rep) = folded(func.instr(iid)) {
                if rep != Operand::Value(result) && replace_all_uses(func, result, rep) > 0 {
                    round = true;
                }
            }
        }
        if !round {
            return changed;
        }
        changed = true;
    }
}
