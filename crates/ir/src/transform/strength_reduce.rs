//! Strength reduction and canonicalization of integer address arithmetic.
//!
//! Rewrites integer `Binary` instructions **in place** — same `InstrId`,
//! same result `ValueId`, no new instructions, no deletions — so the pass
//! composes with [`super::licm::Licm`] on analysis shadows where instruction
//! identity must survive. Four wrapping-exact rewrites:
//!
//! 1. `shl x, c` (constant `0 <= c <= 62`) → `mul x, 1 << c`. SCEV only
//!    folds shifts by constants below 32 into [`LinExpr`] strides; as a
//!    multiply the full range becomes affine.
//! 2. `sub x, c` → `add x, -c` (two's-complement negation, exact even for
//!    `i64::MIN`), collapsing mixed add/sub index chains into adds.
//! 3. Constant-to-the-right normalization for commutative `add`/`mul`:
//!    `add c, x` → `add x, c`.
//! 4. Reassociation with constant folding: `add (add x, c1), c2` →
//!    `add x, c1+c2` and `mul (mul x, c1), c2` → `mul x, c1*c2` (the inner
//!    op is left for DCE). Wrapping arithmetic is associative mod 2^64, and
//!    `i32` narrowing commutes with it mod 2^32, so both widths are exact.
//!
//! Float ops are never touched (FP arithmetic is neither associative nor
//! commutative under rounding in general); `i1`/pointer ops are skipped.
//!
//! [`LinExpr`]: ../../../cayman_analysis/scev/struct.LinExpr.html

use super::{Changed, Pass};
use crate::instr::{BinOp, Imm, Instr, Operand};
use crate::module::{FuncId, Function, Module, ValueDef};
use crate::types::Type;

/// Strength-reduces and canonicalizes integer address arithmetic in place.
pub struct StrengthReduce;

impl Pass for StrengthReduce {
    fn name(&self) -> &'static str {
        "strength-reduce"
    }

    fn run(&mut self, module: &mut Module) -> Changed {
        let mut changed = false;
        for func in &mut module.functions {
            changed |= reduce_function(func);
        }
        Changed::from_bool(changed)
    }

    fn run_fn(&mut self, module: &mut Module, func: FuncId) -> Changed {
        Changed::from_bool(reduce_function(&mut module.functions[func.index()]))
    }
}

fn int_ty(ty: Type) -> bool {
    matches!(ty, Type::I32 | Type::I64)
}

fn const_int(op: Operand) -> Option<i64> {
    match op {
        Operand::Const(Imm::Int(c)) => Some(c),
        _ => None,
    }
}

/// The defining `Binary{op, lhs, rhs}` of `op`erand, when it is the result
/// of an integer binary of the wanted opcode and type.
fn def_binary(func: &Function, operand: Operand, want: BinOp, ty: Type) -> Option<(Operand, i64)> {
    let Operand::Value(v) = operand else {
        return None;
    };
    let ValueDef::Instr(i) = func.values[v.index()] else {
        return None;
    };
    match *func.instr(i) {
        Instr::Binary {
            op,
            ty: ity,
            lhs,
            rhs,
        } if op == want && ity == ty => Some((lhs, const_int(rhs)?)),
        _ => None,
    }
}

/// One rewrite step for a single instruction; returns the replacement.
fn reduce_instr(func: &Function, instr: &Instr) -> Option<Instr> {
    let &Instr::Binary { op, ty, lhs, rhs } = instr else {
        return None;
    };
    if !int_ty(ty) {
        return None;
    }
    match op {
        // shl x, c  →  mul x, 1<<c   (identical mod 2^64 for 0 <= c <= 62)
        BinOp::Shl => {
            let c = const_int(rhs)?;
            if !(0..=62).contains(&c) {
                return None;
            }
            Some(Instr::Binary {
                op: BinOp::Mul,
                ty,
                lhs,
                rhs: Operand::int(1i64 << c),
            })
        }
        // sub x, c  →  add x, -c
        BinOp::Sub => {
            let c = const_int(rhs)?;
            Some(Instr::Binary {
                op: BinOp::Add,
                ty,
                lhs,
                rhs: Operand::int(c.wrapping_neg()),
            })
        }
        BinOp::Add | BinOp::Mul => {
            // add c, x  →  add x, c (and likewise for mul)
            if const_int(lhs).is_some() && const_int(rhs).is_none() {
                return Some(Instr::Binary {
                    op,
                    ty,
                    lhs: rhs,
                    rhs: lhs,
                });
            }
            // add (add x, c1), c2  →  add x, c1+c2 (inner left for DCE)
            let c2 = const_int(rhs)?;
            let (x, c1) = def_binary(func, lhs, op, ty)?;
            let folded = match op {
                BinOp::Add => c1.wrapping_add(c2),
                _ => c1.wrapping_mul(c2),
            };
            Some(Instr::Binary {
                op,
                ty,
                lhs: x,
                rhs: Operand::int(folded),
            })
        }
        _ => None,
    }
}

fn reduce_function(func: &mut Function) -> bool {
    // Two-phase: pattern-match against an immutable view (reassociation
    // reads *other* instructions), then apply. Only placed instructions are
    // visited, in block order, for determinism.
    let mut rewrites: Vec<(usize, Instr)> = Vec::new();
    for b in func.block_ids() {
        for &iid in &func.block(b).instrs {
            if let Some(new) = reduce_instr(func, func.instr(iid)) {
                rewrites.push((iid.index(), new));
            }
        }
    }
    let changed = !rewrites.is_empty();
    for (idx, new) in rewrites {
        func.instrs[idx] = new;
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::interp::Interp;
    use crate::transform::Pass;
    use crate::FuncId;

    fn binaries(m: &crate::Module) -> Vec<(BinOp, Operand, Operand)> {
        let f = m.function(FuncId(0));
        let mut out = Vec::new();
        for b in f.block_ids() {
            for &iid in &f.block(b).instrs {
                if let Instr::Binary { op, lhs, rhs, .. } = *f.instr(iid) {
                    out.push((op, lhs, rhs));
                }
            }
        }
        out
    }

    #[test]
    fn shl_becomes_mul_within_the_exact_window() {
        let mut mb = ModuleBuilder::new("t");
        let a = mb.array("a", Type::I64, &[256]);
        mb.function("main", &[], None, |fb| {
            fb.counted_loop(0, 4, 1, |fb, i| {
                let c = fb.iconst(5);
                let addr = fb.shl(i, c); // i * 32
                let one = fb.iconst(1);
                fb.store_idx_ty(a, &[addr], one, Type::I64);
            });
            fb.ret(None);
        });
        let mut m = mb.finish();
        let mem_before = {
            let mut i = Interp::new(&m);
            i.run(&[]).expect("runs");
            i.memory.cells.clone()
        };
        assert_eq!(StrengthReduce.run(&mut m), Changed::Yes);
        m.verify().expect("verifies");
        assert!(
            binaries(&m)
                .iter()
                .any(|&(op, _, rhs)| op == BinOp::Mul && rhs == Operand::int(32)),
            "shl 5 should become mul 32"
        );
        assert!(
            binaries(&m).iter().all(|&(op, ..)| op != BinOp::Shl),
            "no shl left"
        );
        let mut i = Interp::new(&m);
        i.run(&[]).expect("still runs");
        assert_eq!(i.memory.cells, mem_before);
    }

    #[test]
    fn oversized_shift_is_left_alone() {
        let mut mb = ModuleBuilder::new("t");
        mb.function("main", &[Type::I64], Some(Type::I64), |fb| {
            let x = fb.param(0);
            let c = fb.iconst(63);
            let r = fb.shl(x, c);
            fb.ret(Some(r));
        });
        let mut m = mb.finish();
        assert_eq!(StrengthReduce.run(&mut m), Changed::No);
    }

    #[test]
    fn sub_const_becomes_add_and_chains_fold() {
        // ((x - 1) + 5) should end as a single  add x, 4  after fixpointing.
        let mut mb = ModuleBuilder::new("t");
        mb.function("main", &[Type::I64], Some(Type::I64), |fb| {
            let x = fb.param(0);
            let one = fb.iconst(1);
            let t = fb.sub(x, one);
            let five = fb.iconst(5);
            let r = fb.add(t, five);
            fb.ret(Some(r));
        });
        let mut m = mb.finish();
        // First sweep: sub → add x,-1. Second: reassociate through it.
        assert_eq!(StrengthReduce.run(&mut m), Changed::Yes);
        assert_eq!(StrengthReduce.run(&mut m), Changed::Yes);
        assert_eq!(StrengthReduce.run(&mut m), Changed::No);
        let f = m.function(FuncId(0));
        // The second add now reads the parameter directly with a folded 4.
        let last = f
            .block_ids()
            .flat_map(|b| f.block(b).instrs.clone())
            .filter_map(|iid| match *f.instr(iid) {
                Instr::Binary {
                    op: BinOp::Add,
                    lhs,
                    rhs,
                    ..
                } => Some((lhs, rhs)),
                _ => None,
            })
            .last()
            .expect("an add remains");
        assert_eq!(last.1, Operand::int(4));
        let mut i = Interp::new(&m);
        let out = i.run(&[crate::interp::Value::I(10)]).expect("runs");
        assert_eq!(out.return_value, Some(crate::interp::Value::I(14)));
    }

    #[test]
    fn constants_normalise_to_the_right() {
        let mut mb = ModuleBuilder::new("t");
        mb.function("main", &[Type::I64], Some(Type::I64), |fb| {
            let x = fb.param(0);
            let seven = fb.iconst(7);
            let r = fb.binary(BinOp::Mul, Type::I64, seven, x); // 7 * x
            fb.ret(Some(r));
        });
        let mut m = mb.finish();
        assert_eq!(StrengthReduce.run(&mut m), Changed::Yes);
        let bins = binaries(&m);
        assert_eq!(bins.len(), 1);
        assert_eq!(bins[0].2, Operand::int(7), "constant moved right");
        assert!(matches!(bins[0].1, Operand::Value(_)));
        assert_eq!(StrengthReduce.run(&mut m), Changed::No);
    }

    #[test]
    fn i32_narrowing_is_preserved() {
        // i32 wrapping: shl and mul must agree through the narrowing, and
        // reassociated constants may leave the i32 range without changing
        // the narrowed result.
        let mut mb = ModuleBuilder::new("t");
        mb.function("main", &[Type::I32], Some(Type::I32), |fb| {
            let x = fb.param(0);
            let c = fb.iconst(30);
            let big = fb.binary(BinOp::Shl, Type::I32, x, c);
            let m1 = fb.iconst(i32::MAX as i64);
            let t = fb.binary(BinOp::Add, Type::I32, big, m1);
            let m2 = fb.iconst(5);
            let r = fb.binary(BinOp::Add, Type::I32, t, m2);
            fb.ret(Some(r));
        });
        let mut m = mb.finish();
        let run = |m: &crate::Module, x: i64| {
            let mut i = Interp::new(m);
            i.run(&[crate::interp::Value::I(x)])
                .expect("runs")
                .return_value
        };
        let inputs = [0i64, 1, -1, 3, i32::MAX as i64, i32::MIN as i64];
        let before: Vec<_> = inputs.iter().map(|&x| run(&m, x)).collect();
        while StrengthReduce.run(&mut m) == Changed::Yes {}
        m.verify().expect("verifies");
        let after: Vec<_> = inputs.iter().map(|&x| run(&m, x)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn floats_and_unplaced_instrs_are_untouched() {
        let mut mb = ModuleBuilder::new("t");
        mb.function("main", &[Type::F64], Some(Type::F64), |fb| {
            let x = fb.param(0);
            let c = fb.fconst(1.5);
            let t = fb.fadd(c, x); // float const on the left stays put
            let r = fb.fadd(t, c);
            fb.ret(Some(r));
        });
        let mut m = mb.finish();
        assert_eq!(StrengthReduce.run(&mut m), Changed::No);
    }
}
