//! IR normalization: a pass manager and the standard `-O1`/`-O2` pipelines.
//!
//! Builder-generated (and especially parser-generated) modules carry
//! redundancy — constant subexpressions, duplicate address computations,
//! branches on known conditions — that inflates both profiling cost and the
//! wPST the analysis crate builds on top of the CFG. The paper's flow
//! piggybacks on LLVM `-O1` before instrumenting; this module is the
//! reproduction's equivalent: a small pipeline of semantics-preserving
//! rewrites run before profiling and region analysis.
//!
//! The `-O1` pipeline ([`normalize`]) iterates four passes to a fixed point
//! — [`SimplifyCfg`], [`ConstFold`], [`Gvn`], [`Dce`] — then runs
//! [`Compact`] to rebuild the instruction arena without the dropped
//! instructions. `-O2` adds the loop pipeline, [`StrengthReduce`] and
//! [`Licm`], whose job is to canonicalize gep address arithmetic (shifts to
//! multiplies, subtracts to adds, folded constant chains) and hoist the
//! loop-invariant parts, so the analysis crate's SCEV sees clean affine
//! induction expressions.
//!
//! [`address_canon`] packages just that loop pipeline with a guarantee the
//! full `-O2` pipeline does not make: it preserves `InstrId`s/`ValueId`s
//! and the CFG exactly (no [`Compact`], no deletions). `cayman-core` runs
//! it on per-function analysis *shadows* and maps the resulting facts back
//! onto the executed `-O1` body by instruction id.
//!
//! ## Semantics contract
//!
//! Passes preserve *observable behavior*: final memory image, return value,
//! and whether/with which message execution errors. For well-typed modules
//! this is exact. Verified-but-type-confused modules (the verifier does not
//! type-check most non-phi operands) may lose a runtime type error when the
//! offending instruction is unused — this mirrors LLVM, where UB-adjacent
//! dead code may be deleted. Concretely:
//!
//! * constant folding evaluates through the interpreter's own
//!   [`crate::interp`] kernels, so wrapping, `i32` narrowing and NaN
//!   behavior are bit-identical; fold attempts that would error at runtime
//!   (division by zero, type confusion) are simply not folded;
//! * DCE only deletes unused instructions it can prove side-effect- and
//!   trap-free (e.g. `sdiv` only with a non-zero constant divisor, `gep`
//!   only with provably in-bounds constant indices);
//! * GVN deletes an instruction only when an identical one (same opcode,
//!   same SSA operands) dominates it, so the surviving instance executes
//!   first on every path and traps first if either would.

mod constfold;
mod dce;
mod gvn;
mod licm;
mod simplify_cfg;
mod strength_reduce;

pub use constfold::ConstFold;
pub use dce::Dce;
pub use gvn::Gvn;
pub use licm::Licm;
pub use simplify_cfg::SimplifyCfg;
pub use strength_reduce::StrengthReduce;

use crate::instr::Operand;
use crate::module::{FuncId, Function, InstrId, Module, ValueDef, ValueId};
use crate::verify::VerifyError;
use std::fmt;

/// Whether a pass changed the module — drives fixed-point iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Changed {
    /// The pass rewrote something.
    Yes,
    /// The pass was a no-op on this module.
    No,
}

impl Changed {
    /// From a bool (`true` = changed).
    pub fn from_bool(b: bool) -> Self {
        if b {
            Changed::Yes
        } else {
            Changed::No
        }
    }

    /// As a bool (`true` = changed).
    pub fn as_bool(self) -> bool {
        self == Changed::Yes
    }
}

/// A module-level rewrite. Implementations must keep the module verifiable
/// (see the module docs for the semantics contract) and must report
/// [`Changed::Yes`] iff they mutated something — fixed-point iteration
/// relies on accurate reports for termination.
pub trait Pass {
    /// Short kebab-case name for stats and diagnostics.
    fn name(&self) -> &'static str;

    /// Runs the pass over every function of `module`.
    fn run(&mut self, module: &mut Module) -> Changed;

    /// Runs the pass over a single function of `module`.
    ///
    /// Every standard pass is *function-local* — it never reads or writes
    /// another function — so `run` is exactly this folded over all
    /// functions, and a per-function fixed point converges to the same
    /// content as the module-level one (extra sweeps at a function's fixed
    /// point are no-ops). This is what lets `cayman-core`'s incremental
    /// pipeline key normalization by function content.
    fn run_fn(&mut self, module: &mut Module, func: FuncId) -> Changed;
}

/// How aggressively [`normalize`] rewrites a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OptLevel {
    /// No rewrites; the module is analysed as built.
    O0,
    /// The standard pipeline: simplify-cfg, constant folding, GVN, DCE,
    /// iterated to a fixed point, then arena compaction.
    #[default]
    O1,
    /// `-O1` plus the loop pipeline: strength reduction of address
    /// arithmetic and loop-invariant code motion.
    O2,
}

impl OptLevel {
    /// Parses `"O0"` / `"-O0"` / `"O1"` / `"-O1"` / `"O2"` / `"-O2"`.
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim_start_matches('-') {
            "O0" => Some(OptLevel::O0),
            "O1" => Some(OptLevel::O1),
            "O2" => Some(OptLevel::O2),
            _ => None,
        }
    }
}

impl fmt::Display for OptLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptLevel::O0 => write!(f, "O0"),
            OptLevel::O1 => write!(f, "O1"),
            OptLevel::O2 => write!(f, "O2"),
        }
    }
}

/// Per-pass counters accumulated by [`PassManager::run`].
#[derive(Debug, Clone)]
pub struct PassStats {
    /// Pass name.
    pub name: &'static str,
    /// Number of times the pass ran.
    pub runs: u32,
    /// Number of runs that reported a change.
    pub changed: u32,
    /// Total time spent inside the pass, in microseconds.
    pub micros: u128,
}

/// Aggregate outcome of one [`PassManager::run`], printable in the same
/// single-line style as the selection engine's `SelectStats`.
#[derive(Debug, Clone, Default)]
pub struct PipelineStats {
    /// Per-pass counters, in pipeline order.
    pub passes: Vec<PassStats>,
    /// Fixed-point iterations executed.
    pub iterations: u32,
    /// Number of inter-pass verifier runs.
    pub verify_runs: u32,
    /// Wall-clock time of the whole run, in microseconds.
    pub wall_micros: u128,
}

impl PipelineStats {
    /// Total number of changing pass runs across the pipeline.
    pub fn total_changes(&self) -> u32 {
        self.passes.iter().map(|p| p.changed).sum()
    }

    /// Folds another run's counters into this one. Used to aggregate
    /// per-function [`PassManager::run_function`] stats into one
    /// module-level summary: passes are aligned by name (run/changed/time
    /// counters add), `iterations` reports the deepest per-function fixed
    /// point, and verifier runs and wall time accumulate.
    pub fn merge(&mut self, other: &PipelineStats) {
        for p in &other.passes {
            match self.passes.iter_mut().find(|q| q.name == p.name) {
                Some(q) => {
                    q.runs += p.runs;
                    q.changed += p.changed;
                    q.micros += p.micros;
                }
                None => self.passes.push(p.clone()),
            }
        }
        self.iterations = self.iterations.max(other.iterations);
        self.verify_runs += other.verify_runs;
        self.wall_micros += other.wall_micros;
    }
}

impl fmt::Display for PipelineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "normalize: {} iteration(s)", self.iterations)?;
        for p in &self.passes {
            write!(
                f,
                ", {} {}/{} changed in {:.2}ms",
                p.name,
                p.changed,
                p.runs,
                p.micros as f64 / 1000.0
            )?;
        }
        if self.verify_runs > 0 {
            write!(f, ", verified {}x", self.verify_runs)?;
        }
        write!(f, ", wall {:.2}ms", self.wall_micros as f64 / 1000.0)
    }
}

/// Runs a declarative list of passes, optionally to a fixed point, with
/// per-pass timing/changed counters and optional verification between
/// passes.
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
    verify_each: bool,
    max_iters: u32,
}

impl PassManager {
    /// An empty manager that runs its passes once, without verification.
    pub fn new() -> Self {
        PassManager {
            passes: Vec::new(),
            verify_each: false,
            max_iters: 1,
        }
    }

    /// The standard `-O1` pipeline: simplify-cfg → constfold → gvn → dce →
    /// compact, iterated to a fixed point.
    pub fn standard() -> Self {
        PassManager::new()
            .add(SimplifyCfg)
            .add(ConstFold)
            .add(Gvn)
            .add(Dce)
            .add(Compact)
            .fixpoint(10)
    }

    /// The standard `-O2` pipeline: `-O1` with strength reduction and LICM
    /// slotted in before compaction, iterated to a fixed point. The extra
    /// passes let GVN and DCE clean up the chains the rewrites strand.
    pub fn standard_o2() -> Self {
        PassManager::new()
            .add(SimplifyCfg)
            .add(ConstFold)
            .add(StrengthReduce)
            .add(Licm)
            .add(Gvn)
            .add(Dce)
            .add(Compact)
            .fixpoint(10)
    }

    /// The identity-preserving address-canonicalization pipeline:
    /// strength reduction + LICM to a fixed point, **without** compaction or
    /// any deleting pass. `InstrId`s, `ValueId`s, block set and terminators
    /// are exactly those of the input — only instruction operands/opcodes
    /// and block membership of pure scalar ops change. This is the pipeline
    /// `cayman-core` runs on per-function analysis shadows at `-O2`.
    pub fn address_canon() -> Self {
        PassManager::new()
            .add(StrengthReduce)
            .add(Licm)
            .fixpoint(10)
    }

    /// Appends a pass. (`add` is the established pass-manager idiom, not an
    /// arithmetic operation.)
    #[allow(clippy::should_implement_trait)]
    pub fn add(mut self, pass: impl Pass + 'static) -> Self {
        self.passes.push(Box::new(pass));
        self
    }

    /// Runs the verifier after every pass that changed the module (and once
    /// before the first pass), aborting the pipeline on the first failure.
    pub fn verify_each_pass(mut self, on: bool) -> Self {
        self.verify_each = on;
        self
    }

    /// Iterates the whole pass list until no pass reports a change, up to
    /// `max_iters` sweeps.
    pub fn fixpoint(mut self, max_iters: u32) -> Self {
        self.max_iters = max_iters.max(1);
        self
    }

    /// Runs the pipeline over `module`.
    ///
    /// With `verify_each_pass` enabled, returns the first verifier failure
    /// (the module is left in its mid-pipeline state for inspection).
    pub fn run(&mut self, module: &mut Module) -> Result<PipelineStats, VerifyError> {
        // One measurement source: the obs timed span both feeds the trace
        // (when enabled) and yields the nanos `PipelineStats` reports.
        let wall = cayman_obs::timed("normalize.pipeline");
        let mut stats = PipelineStats {
            passes: self
                .passes
                .iter()
                .map(|p| PassStats {
                    name: p.name(),
                    runs: 0,
                    changed: 0,
                    micros: 0,
                })
                .collect(),
            ..PipelineStats::default()
        };
        if self.verify_each {
            module.verify()?;
            stats.verify_runs += 1;
        }
        for _ in 0..self.max_iters {
            stats.iterations += 1;
            let mut any = false;
            for (i, pass) in self.passes.iter_mut().enumerate() {
                let t = cayman_obs::timed(("normalize.", pass.name()));
                let changed = pass.run(module).as_bool();
                stats.passes[i].micros += u128::from(t.finish()) / 1_000;
                stats.passes[i].runs += 1;
                if changed {
                    stats.passes[i].changed += 1;
                    any = true;
                    if self.verify_each {
                        module.verify().map_err(|e| VerifyError {
                            func: e.func,
                            message: format!("after pass `{}`: {}", pass.name(), e.message),
                        })?;
                        stats.verify_runs += 1;
                    }
                }
            }
            if !any {
                break;
            }
        }
        stats.wall_micros = u128::from(wall.finish()) / 1_000;
        Ok(stats)
    }

    /// Runs the pipeline over a single function of `module`, iterating to
    /// the same per-pass-list fixed point as [`PassManager::run`] restricted
    /// to that function.
    ///
    /// Because every standard pass is function-local (see [`Pass::run_fn`]),
    /// the function's final content is bit-identical to what a module-level
    /// run would leave in it — the module loop merely keeps sweeping other
    /// functions' no-op rounds. This is the unit of `cayman-core`'s
    /// content-keyed normalize query.
    ///
    /// With `verify_each_pass`, the whole module is verified before the
    /// first pass and after every changing pass (function-local verification
    /// would miss cross-function call-signature breaks).
    pub fn run_function(
        &mut self,
        module: &mut Module,
        func: FuncId,
    ) -> Result<PipelineStats, VerifyError> {
        let wall = cayman_obs::timed("normalize.pipeline");
        let mut stats = PipelineStats {
            passes: self
                .passes
                .iter()
                .map(|p| PassStats {
                    name: p.name(),
                    runs: 0,
                    changed: 0,
                    micros: 0,
                })
                .collect(),
            ..PipelineStats::default()
        };
        if self.verify_each {
            module.verify()?;
            stats.verify_runs += 1;
        }
        for _ in 0..self.max_iters {
            stats.iterations += 1;
            let mut any = false;
            for (i, pass) in self.passes.iter_mut().enumerate() {
                let t = cayman_obs::timed(("normalize.", pass.name()));
                let changed = pass.run_fn(module, func).as_bool();
                stats.passes[i].micros += u128::from(t.finish()) / 1_000;
                stats.passes[i].runs += 1;
                if changed {
                    stats.passes[i].changed += 1;
                    any = true;
                    if self.verify_each {
                        module.verify().map_err(|e| VerifyError {
                            func: e.func,
                            message: format!("after pass `{}`: {}", pass.name(), e.message),
                        })?;
                        stats.verify_runs += 1;
                    }
                }
            }
            if !any {
                break;
            }
        }
        stats.wall_micros = u128::from(wall.finish()) / 1_000;
        Ok(stats)
    }
}

impl Default for PassManager {
    fn default() -> Self {
        PassManager::new()
    }
}

/// Normalizes `module` at the given [`OptLevel`].
///
/// `O0` is a no-op (empty stats); `O1` runs [`PassManager::standard`]. With
/// `verify_each_pass`, the verifier runs before the pipeline and after every
/// changing pass.
pub fn normalize(
    module: &mut Module,
    level: OptLevel,
    verify_each_pass: bool,
) -> Result<PipelineStats, VerifyError> {
    match level {
        OptLevel::O0 => Ok(PipelineStats::default()),
        OptLevel::O1 => PassManager::standard()
            .verify_each_pass(verify_each_pass)
            .run(module),
        OptLevel::O2 => PassManager::standard_o2()
            .verify_each_pass(verify_each_pass)
            .run(module),
    }
}

/// Normalizes a single function of `module` at the given [`OptLevel`] —
/// [`normalize`] restricted to `func`; same fixed point, same final content
/// (see [`PassManager::run_function`] for why).
pub fn normalize_function(
    module: &mut Module,
    func: FuncId,
    level: OptLevel,
    verify_each_pass: bool,
) -> Result<PipelineStats, VerifyError> {
    match level {
        OptLevel::O0 => Ok(PipelineStats::default()),
        OptLevel::O1 => PassManager::standard()
            .verify_each_pass(verify_each_pass)
            .run_function(module, func),
        OptLevel::O2 => PassManager::standard_o2()
            .verify_each_pass(verify_each_pass)
            .run_function(module, func),
    }
}

/// Replaces every use of `from` (in placed instructions and terminators of
/// `func`) with `to`. Returns the number of uses rewritten.
pub fn replace_all_uses(func: &mut Function, from: ValueId, to: Operand) -> usize {
    let mut n = 0;
    let mut rewrite = |op: &mut Operand| {
        if *op == Operand::Value(from) {
            *op = to;
            n += 1;
        }
    };
    for instr in &mut func.instrs {
        instr.for_each_operand_mut(&mut rewrite);
    }
    for block in &mut func.blocks {
        if let Some(term) = &mut block.term {
            term.for_each_operand_mut(&mut rewrite);
        }
    }
    n
}

/// Per-value use counts over placed instructions and terminators.
pub(crate) fn use_counts(func: &Function) -> Vec<u32> {
    let mut counts = vec![0u32; func.values.len()];
    let mut count = |op: Operand| {
        if let Operand::Value(v) = op {
            counts[v.index()] += 1;
        }
    };
    for b in func.block_ids() {
        let block = func.block(b);
        for &iid in &block.instrs {
            func.instr(iid).for_each_operand(&mut count);
        }
        if let Some(term) = &block.term {
            term.for_each_operand(&mut count);
        }
    }
    counts
}

/// Rebuilds each function's instruction arena and value list without
/// instructions that are in no block (the leftovers DCE / GVN / simplify-cfg
/// unlink), renumbering [`InstrId`]s and [`ValueId`]s.
///
/// Idempotent: reports [`Changed::No`] once every arena instruction is
/// placed. Functions in which a *placed* instruction uses the result of an
/// *unplaced* one (legal per the verifier, which treats unplaced defs as
/// entry-block defs) are left untouched.
pub struct Compact;

impl Pass for Compact {
    fn name(&self) -> &'static str {
        "compact"
    }

    fn run(&mut self, module: &mut Module) -> Changed {
        let mut changed = false;
        for func in &mut module.functions {
            changed |= compact_function(func);
        }
        Changed::from_bool(changed)
    }

    fn run_fn(&mut self, module: &mut Module, func: FuncId) -> Changed {
        Changed::from_bool(compact_function(&mut module.functions[func.index()]))
    }
}

fn compact_function(func: &mut Function) -> bool {
    let placed = func.instr_block_map().to_vec();
    let live = placed
        .iter()
        .filter(|&&b| b != crate::module::NO_BLOCK)
        .count();
    if live == func.instrs.len() {
        return false;
    }
    // Bail if any placed instruction (or terminator) uses an unplaced def.
    let counts = use_counts(func);
    for (v, def) in func.values.iter().enumerate() {
        if let ValueDef::Instr(i) = def {
            if placed[i.index()] == crate::module::NO_BLOCK && counts[v] > 0 {
                return false;
            }
        }
    }

    // Renumber live instructions in arena order.
    let mut instr_map = vec![u32::MAX; func.instrs.len()];
    let mut new_instrs = Vec::with_capacity(live);
    for (i, instr) in func.instrs.iter().enumerate() {
        if placed[i] != crate::module::NO_BLOCK {
            instr_map[i] = new_instrs.len() as u32;
            new_instrs.push(instr.clone());
        }
    }
    // Rebuild values (params keep their slots; results of dropped
    // instructions disappear) and instr_results.
    let mut value_map = vec![u32::MAX; func.values.len()];
    let mut new_values = Vec::with_capacity(func.values.len());
    let mut new_results = vec![None; new_instrs.len()];
    for (v, def) in func.values.iter().enumerate() {
        match def {
            ValueDef::Param(..) => {
                value_map[v] = new_values.len() as u32;
                new_values.push(*def);
            }
            ValueDef::Instr(i) => {
                let ni = instr_map[i.index()];
                if ni != u32::MAX {
                    value_map[v] = new_values.len() as u32;
                    new_values.push(ValueDef::Instr(InstrId(ni)));
                    new_results[ni as usize] = Some(ValueId(new_values.len() as u32 - 1));
                }
            }
        }
    }
    // Rewrite operands and block instruction lists.
    let remap_op = |op: &mut Operand| {
        if let Operand::Value(v) = op {
            let nv = value_map[v.index()];
            debug_assert_ne!(nv, u32::MAX, "use of dropped value survived compaction");
            *v = ValueId(nv);
        }
    };
    for instr in &mut new_instrs {
        instr.for_each_operand_mut(remap_op);
    }
    for block in &mut func.blocks {
        for iid in &mut block.instrs {
            *iid = InstrId(instr_map[iid.index()]);
        }
        if let Some(term) = &mut block.term {
            term.for_each_operand_mut(remap_op);
        }
    }
    func.instrs = new_instrs;
    func.values = new_values;
    func.instr_results = new_results;
    func.invalidate_block_map();
    true
}
