//! CFG simplification: constant-branch folding, unreachable-block deletion
//! and straight-line block merging, with phi maintenance on every edit.

use super::{replace_all_uses, Changed, Pass};
use crate::instr::{Imm, Instr, Operand, Terminator};
use crate::module::{BlockId, FuncId, Function, Module};

/// Simplifies each function's CFG:
///
/// 1. `br %c ? bbX : bbY` with a constant (or duplicated-target) condition
///    becomes `br bbTaken`, removing the dead edge's phi incomings;
/// 2. blocks unreachable from the entry are physically deleted (the verifier
///    rejects unreachable blocks, so they cannot merely be unlinked) and
///    `BlockId`s renumbered;
/// 3. a block whose sole successor has it as its sole predecessor absorbs
///    that successor; single-incoming phis of the absorbed block are
///    replaced by their incoming operand, and phis in the absorbed block's
///    successors are retargeted to the surviving block.
pub struct SimplifyCfg;

impl Pass for SimplifyCfg {
    fn name(&self) -> &'static str {
        "simplify-cfg"
    }

    fn run(&mut self, module: &mut Module) -> Changed {
        let mut changed = false;
        for func in &mut module.functions {
            changed |= simplify_function(func);
        }
        Changed::from_bool(changed)
    }

    fn run_fn(&mut self, module: &mut Module, func: FuncId) -> Changed {
        Changed::from_bool(simplify_function(&mut module.functions[func.index()]))
    }
}

/// One function's simplify loop: iterate the three rewrites locally until
/// none fires (they feed each other), then invalidate the block map once.
fn simplify_function(func: &mut Function) -> bool {
    let mut local = false;
    loop {
        let mut round = false;
        round |= fold_constant_branches(func);
        round |= delete_unreachable_blocks(func);
        round |= merge_block_chains(func);
        if !round {
            break;
        }
        local = true;
    }
    if local {
        func.invalidate_block_map();
    }
    local
}

/// The phis of `block` (they are required to be at the top).
fn phi_range(func: &Function, b: BlockId) -> Vec<crate::module::InstrId> {
    func.block(b)
        .instrs
        .iter()
        .copied()
        .take_while(|&iid| matches!(func.instr(iid), Instr::Phi { .. }))
        .collect()
}

/// Removes one phi incoming for `pred` from every phi of `block` (exactly
/// one: duplicate edges contribute one incoming per edge, and dropping one
/// edge must drop exactly one incoming — the *last* matching entry, keeping
/// the first edge's value).
fn remove_phi_incoming(func: &mut Function, block: BlockId, pred: BlockId) {
    for iid in phi_range(func, block) {
        if let Instr::Phi { incomings, .. } = &mut func.instrs[iid.index()] {
            if let Some(pos) = incomings.iter().rposition(|(b, _)| *b == pred) {
                incomings.remove(pos);
            }
        }
    }
}

fn fold_constant_branches(func: &mut Function) -> bool {
    let mut changed = false;
    for b in 0..func.blocks.len() {
        let b = BlockId(b as u32);
        let Some(Terminator::CondBr {
            cond,
            then_bb,
            else_bb,
        }) = func.blocks[b.index()].term.clone()
        else {
            continue;
        };
        if then_bb == else_bb {
            // Both edges land on the same block: drop the duplicate edge.
            func.blocks[b.index()].term = Some(Terminator::Br(then_bb));
            remove_phi_incoming(func, then_bb, b);
            changed = true;
        } else if let Operand::Const(Imm::Bool(v)) = cond {
            let (taken, dead) = if v {
                (then_bb, else_bb)
            } else {
                (else_bb, then_bb)
            };
            func.blocks[b.index()].term = Some(Terminator::Br(taken));
            remove_phi_incoming(func, dead, b);
            changed = true;
        }
    }
    changed
}

fn delete_unreachable_blocks(func: &mut Function) -> bool {
    let n = func.blocks.len();
    let mut reachable = vec![false; n];
    let mut stack = vec![func.entry()];
    reachable[func.entry().index()] = true;
    while let Some(b) = stack.pop() {
        for s in func.block(b).terminator().successors() {
            if !reachable[s.index()] {
                reachable[s.index()] = true;
                stack.push(s);
            }
        }
    }
    if reachable.iter().all(|&r| r) {
        return false;
    }
    // Drop phi incomings that arrive from dying blocks.
    for b in 0..n {
        if !reachable[b] {
            continue;
        }
        for iid in phi_range(func, BlockId(b as u32)) {
            if let Instr::Phi { incomings, .. } = &mut func.instrs[iid.index()] {
                incomings.retain(|(p, _)| reachable[p.index()]);
            }
        }
    }
    // Renumber surviving blocks and rewrite every BlockId.
    let mut map = vec![u32::MAX; n];
    let mut kept = 0u32;
    for (b, &r) in reachable.iter().enumerate() {
        if r {
            map[b] = kept;
            kept += 1;
        }
    }
    let mut old_blocks = std::mem::take(&mut func.blocks);
    for (b, block) in old_blocks.iter_mut().enumerate() {
        if !reachable[b] {
            continue;
        }
        if let Some(term) = &mut block.term {
            term.for_each_successor_mut(|s| *s = BlockId(map[s.index()]));
        }
        func.blocks.push(std::mem::replace(
            block,
            crate::module::Block {
                name: String::new(),
                instrs: Vec::new(),
                term: None,
            },
        ));
    }
    for instr in &mut func.instrs {
        if let Instr::Phi { incomings, .. } = instr {
            for (p, _) in incomings {
                if map[p.index()] != u32::MAX {
                    *p = BlockId(map[p.index()]);
                }
            }
        }
    }
    true
}

fn merge_block_chains(func: &mut Function) -> bool {
    let mut changed = false;
    loop {
        let Some((a, b)) = find_mergeable_pair(func) else {
            return changed;
        };
        // Single-incoming phis of `b` become plain copies of their operand.
        for iid in phi_range(func, b) {
            let Instr::Phi { incomings, .. } = func.instr(iid).clone() else {
                unreachable!()
            };
            debug_assert_eq!(incomings.len(), 1, "sole-pred block phi has one incoming");
            let (_, operand) = incomings[0];
            if let Some(result) = func.result_of(iid) {
                replace_all_uses(func, result, operand);
            }
            func.blocks[b.index()].instrs.retain(|&i| i != iid);
        }
        // Move `b`'s body and terminator into `a`.
        let b_instrs = std::mem::take(&mut func.blocks[b.index()].instrs);
        let b_term = func.blocks[b.index()].term.take();
        func.blocks[a.index()].instrs.extend(b_instrs);
        func.blocks[a.index()].term = b_term;
        // `b`'s successors now see `a` as the predecessor on those edges.
        for s in func.blocks[a.index()].terminator().successors() {
            for iid in phi_range(func, s) {
                if let Instr::Phi { incomings, .. } = &mut func.instrs[iid.index()] {
                    for (p, _) in incomings {
                        if *p == b {
                            *p = a;
                        }
                    }
                }
            }
        }
        // `b` is now empty and unreachable; give it a self-loop terminator so
        // successor computation stays total until deletion removes it.
        func.blocks[b.index()].term = Some(Terminator::Br(b));
        delete_unreachable_blocks(func);
        changed = true;
    }
}

/// Finds `(a, b)` where `a` ends in `br b`, `b != entry`, `a != b`, and `a`
/// is `b`'s only predecessor (over one edge).
fn find_mergeable_pair(func: &Function) -> Option<(BlockId, BlockId)> {
    let n = func.blocks.len();
    let mut pred_edges = vec![0u32; n];
    let mut last_pred = vec![BlockId(u32::MAX); n];
    for b in func.block_ids() {
        for s in func.block(b).terminator().successors() {
            pred_edges[s.index()] += 1;
            last_pred[s.index()] = b;
        }
    }
    for a in func.block_ids() {
        if let Terminator::Br(b) = *func.block(a).terminator() {
            if b != func.entry()
                && b != a
                && pred_edges[b.index()] == 1
                && last_pred[b.index()] == a
            {
                return Some((a, b));
            }
        }
    }
    None
}
