//! Dead code elimination for provably trap-free unused instructions.

use super::{use_counts, Changed, Pass};
use crate::instr::{BinOp, Instr, Operand, UnaryOp};
use crate::module::{ArrayDecl, FuncId, Function, InstrId, Module, ValueDef};
use crate::types::Type;
use std::collections::HashSet;

/// Unlinks instructions whose result is unused *and* whose execution can be
/// proven side-effect- and trap-free, iterating until nothing else dies
/// (removing a load frees its gep, and so on).
///
/// The trap analysis is deliberately conservative so error behavior is
/// preserved exactly:
///
/// * `sdiv`/`srem` survive unless the divisor is a non-zero integer
///   constant;
/// * `gep` survives unless every index is a constant inside its dimension;
/// * `load` survives unless its pointer is a direct `gep` result (whose own
///   bounds check already dominates the load);
/// * operand *types* are checked against the opcode (the verifier does not),
///   so an unused instruction that would die with a type-confusion error at
///   runtime is kept;
/// * `store` and `call` always survive.
pub struct Dce;

impl Pass for Dce {
    fn name(&self) -> &'static str {
        "dce"
    }

    fn run(&mut self, module: &mut Module) -> Changed {
        let Module {
            arrays, functions, ..
        } = module;
        let mut changed = false;
        for func in functions.iter_mut() {
            changed |= dce_function(arrays, func);
        }
        Changed::from_bool(changed)
    }

    fn run_fn(&mut self, module: &mut Module, func: FuncId) -> Changed {
        let Module {
            arrays, functions, ..
        } = module;
        Changed::from_bool(dce_function(arrays, &mut functions[func.index()]))
    }
}

/// Runtime value class an operand belongs to, derived from static types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Class {
    Int,
    Float,
    Bool,
    Ptr,
}

fn operand_class(func: &Function, op: Operand) -> Option<Class> {
    let ty = match op {
        Operand::Const(imm) => {
            return Some(match imm {
                crate::instr::Imm::Int(_) => Class::Int,
                crate::instr::Imm::Float(_) => Class::Float,
                crate::instr::Imm::Bool(_) => Class::Bool,
            })
        }
        Operand::Value(v) => func.value_type(v)?,
    };
    Some(match ty {
        Type::I1 => Class::Bool,
        Type::I32 | Type::I64 => Class::Int,
        Type::F32 | Type::F64 => Class::Float,
        Type::Ptr => Class::Ptr,
    })
}

fn classes_are(func: &Function, ops: &[Operand], want: Class) -> bool {
    ops.iter().all(|&op| operand_class(func, op) == Some(want))
}

fn trap_free_when_unused(arrays: &[ArrayDecl], func: &Function, instr: &Instr) -> bool {
    match instr {
        Instr::Phi { .. } => true,
        Instr::Select { cond, .. } => operand_class(func, *cond) == Some(Class::Bool),
        Instr::Cmp { ty, lhs, rhs, .. } => {
            let want = if ty.is_float() {
                Class::Float
            } else {
                Class::Int
            };
            classes_are(func, &[*lhs, *rhs], want)
        }
        Instr::Unary { op, val, .. } => {
            let want = match op {
                UnaryOp::Neg | UnaryOp::Not | UnaryOp::SiToFp => Class::Int,
                _ => Class::Float,
            };
            operand_class(func, *val) == Some(want)
        }
        Instr::Binary { op, lhs, rhs, .. } => {
            if op.is_float() {
                classes_are(func, &[*lhs, *rhs], Class::Float)
            } else {
                let divisor_safe = !matches!(op, BinOp::Div | BinOp::Rem)
                    || matches!(rhs.as_const_int(), Some(d) if d != 0);
                divisor_safe && classes_are(func, &[*lhs, *rhs], Class::Int)
            }
        }
        Instr::Gep { array, indices } => {
            let decl = &arrays[array.index()];
            indices.iter().zip(&decl.dims).all(
                |(op, &dim)| matches!(op.as_const_int(), Some(i) if i >= 0 && (i as usize) < dim),
            )
        }
        Instr::Load { ptr, .. } => matches!(
            ptr,
            Operand::Value(v) if matches!(
                func.values[v.index()],
                ValueDef::Instr(g) if matches!(func.instr(g), Instr::Gep { .. })
            )
        ),
        Instr::Store { .. } | Instr::Call { .. } => false,
    }
}

fn dce_function(arrays: &[ArrayDecl], func: &mut Function) -> bool {
    let mut changed = false;
    loop {
        let counts = use_counts(func);
        let mut dead: HashSet<InstrId> = HashSet::new();
        for block in &func.blocks {
            for &iid in &block.instrs {
                let Some(result) = func.result_of(iid) else {
                    continue;
                };
                if counts[result.index()] == 0
                    && trap_free_when_unused(arrays, func, func.instr(iid))
                {
                    dead.insert(iid);
                }
            }
        }
        if dead.is_empty() {
            return changed;
        }
        for block in &mut func.blocks {
            block.instrs.retain(|iid| !dead.contains(iid));
        }
        func.invalidate_block_map();
        changed = true;
    }
}
