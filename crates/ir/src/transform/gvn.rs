//! Dominator-based global value numbering / common-subexpression
//! elimination.

use super::{Changed, Pass};
use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::instr::{BinOp, CmpPred, Imm, Instr, Operand, UnaryOp};
use crate::module::{ArrayId, BlockId, FuncId, Function, InstrId, Module, ValueId};
use crate::types::Type;
use std::collections::HashMap;

/// Deletes pure instructions that recompute an expression already computed
/// by a dominating instruction with identical SSA operands, rewriting uses
/// to the surviving value.
///
/// Only pure ops participate: binary/unary arithmetic, comparisons, selects
/// and geps. Loads are excluded (memory may change between the two sites);
/// stores, calls and phis likewise. Deleting the dominated copy is trap-safe
/// because the dominating instance executes first on every path with the
/// same operand values — if either would trap, the first one already did.
///
/// Keys are purely syntactic: no commutative normalization (for floats that
/// would conflate `NaN`-payload-sensitive operand orders) and constants
/// compare bit-exactly (`-0.0` ≠ `0.0`).
pub struct Gvn;

impl Pass for Gvn {
    fn name(&self) -> &'static str {
        "gvn"
    }

    fn run(&mut self, module: &mut Module) -> Changed {
        let mut changed = false;
        for func in &mut module.functions {
            changed |= gvn_function(func);
        }
        Changed::from_bool(changed)
    }

    fn run_fn(&mut self, module: &mut Module, func: FuncId) -> Changed {
        Changed::from_bool(gvn_function(&mut module.functions[func.index()]))
    }
}

/// Operand in a value-number key; float constants keyed by bit pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum OpKey {
    Val(ValueId),
    Int(i64),
    Float(u64),
    Bool(bool),
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum ExprKey {
    Binary(BinOp, Type, OpKey, OpKey),
    Unary(UnaryOp, Type, OpKey),
    Cmp(CmpPred, Type, OpKey, OpKey),
    Select(Type, OpKey, OpKey, OpKey),
    Gep(ArrayId, Vec<OpKey>),
}

fn op_key(repl: &HashMap<ValueId, ValueId>, op: Operand) -> OpKey {
    match op {
        Operand::Value(v) => OpKey::Val(repl.get(&v).copied().unwrap_or(v)),
        Operand::Const(Imm::Int(v)) => OpKey::Int(v),
        Operand::Const(Imm::Float(v)) => OpKey::Float(v.to_bits()),
        Operand::Const(Imm::Bool(v)) => OpKey::Bool(v),
    }
}

fn expr_key(repl: &HashMap<ValueId, ValueId>, instr: &Instr) -> Option<ExprKey> {
    let k = |op: &Operand| op_key(repl, *op);
    Some(match instr {
        Instr::Binary { op, ty, lhs, rhs } => ExprKey::Binary(*op, *ty, k(lhs), k(rhs)),
        Instr::Unary { op, ty, val } => ExprKey::Unary(*op, *ty, k(val)),
        Instr::Cmp { pred, ty, lhs, rhs } => ExprKey::Cmp(*pred, *ty, k(lhs), k(rhs)),
        Instr::Select {
            cond,
            ty,
            then_val,
            else_val,
        } => ExprKey::Select(*ty, k(cond), k(then_val), k(else_val)),
        Instr::Gep { array, indices } => {
            ExprKey::Gep(*array, indices.iter().map(|i| op_key(repl, *i)).collect())
        }
        Instr::Load { .. } | Instr::Store { .. } | Instr::Phi { .. } | Instr::Call { .. } => {
            return None
        }
    })
}

fn gvn_function(func: &mut Function) -> bool {
    let cfg = Cfg::compute(func);
    let dom = DomTree::dominators(func, &cfg);
    let n = cfg.block_count();
    let mut children: Vec<Vec<BlockId>> = vec![Vec::new(); n];
    for b in func.block_ids() {
        if let Some(p) = dom.idom_of(b) {
            children[p.index()].push(b);
        }
    }

    let mut table: HashMap<ExprKey, ValueId> = HashMap::new();
    let mut repl: HashMap<ValueId, ValueId> = HashMap::new();
    let mut dead: Vec<InstrId> = Vec::new();

    // Dominator-tree DFS with explicit enter/exit events; the expressions a
    // block adds to the table go out of scope when its subtree is done.
    enum Ev {
        Enter(BlockId),
        Exit(usize),
    }
    let mut stack = vec![Ev::Enter(func.entry())];
    let mut scopes: Vec<Vec<ExprKey>> = Vec::new();
    while let Some(ev) = stack.pop() {
        match ev {
            Ev::Enter(b) => {
                let mut inserted = Vec::new();
                for &iid in &func.block(b).instrs {
                    let Some(key) = expr_key(&repl, func.instr(iid)) else {
                        continue;
                    };
                    let result = func.result_of(iid).expect("pure instr has a result");
                    match table.get(&key) {
                        Some(&survivor) => {
                            repl.insert(result, survivor);
                            dead.push(iid);
                        }
                        None => {
                            table.insert(key.clone(), result);
                            inserted.push(key);
                        }
                    }
                }
                scopes.push(inserted);
                stack.push(Ev::Exit(scopes.len() - 1));
                for &c in children[b.index()].iter().rev() {
                    stack.push(Ev::Enter(c));
                }
            }
            Ev::Exit(scope) => {
                for key in scopes[scope].drain(..) {
                    table.remove(&key);
                }
            }
        }
    }

    if repl.is_empty() {
        return false;
    }
    let rewrite = |op: &mut Operand| {
        if let Operand::Value(v) = op {
            if let Some(&s) = repl.get(v) {
                *op = Operand::Value(s);
            }
        }
    };
    for instr in &mut func.instrs {
        instr.for_each_operand_mut(rewrite);
    }
    for block in &mut func.blocks {
        if let Some(term) = &mut block.term {
            term.for_each_operand_mut(rewrite);
        }
    }
    let dead: std::collections::HashSet<InstrId> = dead.into_iter().collect();
    for block in &mut func.blocks {
        block.instrs.retain(|iid| !dead.contains(iid));
    }
    func.invalidate_block_map();
    true
}
