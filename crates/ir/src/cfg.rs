//! Control-flow-graph utilities: predecessor/successor maps and orderings.

use crate::module::{BlockId, Function};

/// Predecessor/successor maps plus a reverse post-order for one function.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Successors per block.
    pub succs: Vec<Vec<BlockId>>,
    /// Predecessors per block.
    pub preds: Vec<Vec<BlockId>>,
    /// Reverse post-order from the entry block. Unreachable blocks are
    /// excluded.
    pub rpo: Vec<BlockId>,
    /// `rpo_index[b] = Some(position of b in rpo)`, `None` if unreachable.
    pub rpo_index: Vec<Option<usize>>,
    /// Blocks terminated by `ret` (CFG exits).
    pub exits: Vec<BlockId>,
}

impl Cfg {
    /// Computes the CFG for `func`.
    pub fn compute(func: &Function) -> Self {
        let n = func.blocks.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        let mut exits = Vec::new();
        for b in func.block_ids() {
            let term = func.block(b).terminator();
            let ss = term.successors();
            if ss.is_empty() {
                exits.push(b);
            }
            for s in &ss {
                preds[s.index()].push(b);
            }
            succs[b.index()] = ss;
        }

        // Iterative DFS post-order from entry.
        let mut post = Vec::with_capacity(n);
        let mut visited = vec![false; n];
        // (block, next successor index to visit)
        let mut stack: Vec<(BlockId, usize)> = vec![(func.entry(), 0)];
        visited[func.entry().index()] = true;
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            if *i < succs[b.index()].len() {
                let s = succs[b.index()][*i];
                *i += 1;
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        let rpo: Vec<BlockId> = post.into_iter().rev().collect();
        let mut rpo_index = vec![None; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_index[b.index()] = Some(i);
        }

        Cfg {
            succs,
            preds,
            rpo,
            rpo_index,
            exits,
        }
    }

    /// Whether `b` is reachable from the entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo_index[b.index()].is_some()
    }

    /// Number of blocks (including unreachable ones).
    pub fn block_count(&self) -> usize {
        self.succs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::types::Type;

    #[test]
    fn loop_cfg_shape() {
        let mut mb = ModuleBuilder::new("t");
        let x = mb.array("x", Type::F64, &[4]);
        let f = mb.function("f", &[], None, |fb| {
            fb.counted_loop(0, 4, 1, |fb, i| {
                let v = fb.load_idx(x, &[i]);
                fb.store_idx(x, &[i], v);
            });
            fb.ret(None);
        });
        let m = mb.finish();
        let func = m.function(f);
        let cfg = Cfg::compute(func);
        // entry(0) -> header(1) -> {body(2), exit(3)}; body -> header
        assert_eq!(cfg.succs[0], vec![BlockId(1)]);
        assert_eq!(cfg.succs[1], vec![BlockId(2), BlockId(3)]);
        assert_eq!(cfg.succs[2], vec![BlockId(1)]);
        assert!(cfg.succs[3].is_empty());
        assert_eq!(cfg.preds[1], vec![BlockId(0), BlockId(2)]);
        assert_eq!(cfg.exits, vec![BlockId(3)]);
        // RPO starts with entry and covers all four blocks.
        assert_eq!(cfg.rpo[0], BlockId(0));
        assert_eq!(cfg.rpo.len(), 4);
        assert!(cfg.is_reachable(BlockId(3)));
    }
}
