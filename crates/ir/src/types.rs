//! Scalar types of the IR.

use std::fmt;

/// A scalar IR type.
///
/// The IR is deliberately small: the benchmarks Cayman evaluates (PolyBench,
/// MachSuite, MediaBench, CoreMark-Pro) only need integer and floating-point
/// scalars plus pointers produced by address computation ([`crate::Instr::Gep`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Type {
    /// 1-bit boolean (comparison results, branch conditions).
    I1,
    /// 32-bit signed integer.
    I32,
    /// 64-bit signed integer (also used for address arithmetic).
    I64,
    /// 32-bit IEEE float.
    F32,
    /// 64-bit IEEE float.
    F64,
    /// Pointer into a declared array (produced by `gep`).
    Ptr,
}

impl Type {
    /// Whether the type is an integer type (including `I1`).
    pub fn is_int(self) -> bool {
        matches!(self, Type::I1 | Type::I32 | Type::I64)
    }

    /// Whether the type is a floating-point type.
    pub fn is_float(self) -> bool {
        matches!(self, Type::F32 | Type::F64)
    }

    /// Width of the type in bytes when stored in memory.
    ///
    /// Used to size scratchpad buffers from access footprints.
    pub fn byte_width(self) -> u64 {
        match self {
            Type::I1 => 1,
            Type::I32 | Type::F32 => 4,
            Type::I64 | Type::F64 | Type::Ptr => 8,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Type::I1 => "i1",
            Type::I32 => "i32",
            Type::I64 => "i64",
            Type::F32 => "f32",
            Type::F64 => "f64",
            Type::Ptr => "ptr",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(Type::I1.is_int());
        assert!(Type::I32.is_int());
        assert!(Type::I64.is_int());
        assert!(!Type::F32.is_int());
        assert!(Type::F32.is_float());
        assert!(Type::F64.is_float());
        assert!(!Type::Ptr.is_int());
        assert!(!Type::Ptr.is_float());
    }

    #[test]
    fn widths() {
        assert_eq!(Type::I1.byte_width(), 1);
        assert_eq!(Type::I32.byte_width(), 4);
        assert_eq!(Type::F64.byte_width(), 8);
    }

    #[test]
    fn display() {
        assert_eq!(Type::F64.to_string(), "f64");
        assert_eq!(Type::I1.to_string(), "i1");
    }
}
