//! The persistent design store's tracked benchmark: full-suite selection
//! latency cold vs disk-warm vs memory-warm, written to `BENCH_store.json`.
//!
//! For every registry kernel, selection is timed in three cache states
//! against one `Framework` (analysis cost excluded — this measures the
//! store, not the front end):
//!
//! * **cold** — empty memory cache, empty `DiskStore`: every `accel(v, R)`
//!   runs the model and writes through to disk,
//! * **disk-warm** — memory cache cleared, same store directory: every
//!   design loads off disk, the model never runs (asserted per kernel,
//!   along with a bit-identical front),
//! * **memory-warm** — repeat selection against the warm stripes: the
//!   in-process upper bound the disk level is measured against.
//!
//! The headline target (ISSUE 9): disk-warm full-suite selection ≥ 5×
//! faster than cold.
//!
//! ```text
//! cargo bench -p cayman-bench --bench store            # full registry, writes JSON
//! cargo bench -p cayman-bench --bench store -- --smoke # CI: 20 kernels, no JSON
//! ```

use cayman::{Framework, SelectOptions};
use cayman_bench::harness::fmt_duration;
use cayman_bench::json;
use cayman_store::{fronts_bits_equal, DiskStore};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

/// Timing repetitions per kernel per state (minimum reported; the paths are
/// deterministic, so min is the noise floor).
const REPS: usize = 3;

struct KernelPoint {
    name: &'static str,
    cold_s: f64,
    disk_warm_s: f64,
    mem_warm_s: f64,
    store_entries: usize,
}

fn measure_kernel(w: &cayman::workloads::Workload, scratch: &Path, index: usize) -> KernelPoint {
    let mut fw = Framework::from_workload(w).expect("registry kernel analyses");
    let opts = SelectOptions::default();

    // Cold: fresh store per rep so write-through cost is always included.
    let mut cold_s = f64::INFINITY;
    let mut cold_front = None;
    let mut warm_store = None;
    for rep in 0..REPS {
        let dir = scratch.join(format!("k{index}-r{rep}"));
        let store = Arc::new(DiskStore::open(&dir).expect("open store"));
        fw.clear_design_cache();
        fw.set_design_store(Arc::clone(&store) as _);
        let t0 = Instant::now();
        let res = fw.select(&opts);
        cold_s = cold_s.min(t0.elapsed().as_secs_f64());
        assert!(
            res.stats.configs_evaluated > 0,
            "{}: cold selection must run the model",
            w.name
        );
        cold_front = Some(res.pareto);
        warm_store = Some((store, dir));
    }
    let cold_front = cold_front.expect("at least one cold rep");
    let (store, warm_dir) = warm_store.expect("at least one cold rep");

    // Disk-warm: memory cleared, store kept — designs come off disk.
    let mut disk_warm_s = f64::INFINITY;
    for _ in 0..REPS {
        fw.clear_design_cache();
        let t0 = Instant::now();
        let res = fw.select(&opts);
        disk_warm_s = disk_warm_s.min(t0.elapsed().as_secs_f64());
        assert_eq!(
            res.stats.configs_evaluated, 0,
            "{}: disk-warm selection must never run the model",
            w.name
        );
        assert!(
            fronts_bits_equal(&res.pareto, &cold_front),
            "{}: disk-warm front diverges from cold front",
            w.name
        );
    }

    // Memory-warm: repeat selection, stripes already hot.
    let mut mem_warm_s = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let res = fw.select(&opts);
        mem_warm_s = mem_warm_s.min(t0.elapsed().as_secs_f64());
        assert_eq!(res.stats.configs_evaluated, 0, "{}", w.name);
    }

    let store_entries = store.entry_count();
    assert_eq!(store.stats().corrupt, 0, "{}: clean store", w.name);
    drop(store);
    let _ = std::fs::remove_dir_all(&warm_dir);

    KernelPoint {
        name: w.name,
        cold_s,
        disk_warm_s,
        mem_warm_s,
        store_entries,
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn stats_of(mut vals: Vec<f64>) -> (f64, f64, f64, f64, f64) {
    vals.sort_by(f64::total_cmp);
    (
        percentile(&vals, 0.0),
        percentile(&vals, 0.25),
        percentile(&vals, 0.5),
        percentile(&vals, 0.75),
        percentile(&vals, 1.0),
    )
}

fn metric_json(o: &mut json::Obj, name: &str, vals: Vec<f64>) {
    let (min, p25, med, p75, max) = stats_of(vals);
    o.obj(name, |o| {
        o.f64("min_s", min, 9);
        o.f64("p25_s", p25, 9);
        o.f64("median_s", med, 9);
        o.f64("p75_s", p75, 9);
        o.f64("max_s", max, 9);
    });
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut workloads = cayman::workloads::full();
    if smoke {
        workloads.truncate(20);
    }
    let scratch = std::env::temp_dir().join(format!("cayman-bench-store-{}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("create scratch dir");

    let points: Vec<KernelPoint> = workloads
        .iter()
        .enumerate()
        .map(|(i, w)| measure_kernel(w, &scratch, i))
        .collect();
    let _ = std::fs::remove_dir_all(&scratch);

    let cold_total: f64 = points.iter().map(|p| p.cold_s).sum();
    let disk_total: f64 = points.iter().map(|p| p.disk_warm_s).sum();
    let mem_total: f64 = points.iter().map(|p| p.mem_warm_s).sum();
    let entries_total: usize = points.iter().map(|p| p.store_entries).sum();
    let speedup_disk = cold_total / disk_total.max(1e-12);
    let speedup_mem = cold_total / mem_total.max(1e-12);
    println!(
        "# store over {} kernels: cold {} | disk-warm {} ({speedup_disk:.1}x) | \
         memory-warm {} ({speedup_mem:.1}x) | {entries_total} entries persisted",
        points.len(),
        fmt_duration(cold_total),
        fmt_duration(disk_total),
        fmt_duration(mem_total),
    );

    if smoke {
        assert!(
            disk_total < cold_total,
            "disk-warm total ({disk_total}s) must beat cold total ({cold_total}s)"
        );
        println!(
            "smoke mode: fronts bit-identical, disk-warm runs zero model evals; \
             BENCH_store.json left untouched"
        );
        return;
    }

    if speedup_disk < 5.0 {
        eprintln!("WARNING: disk-warm full-suite speedup {speedup_disk:.1}x below the 5x target");
    }

    let out = json::document(|o| {
        o.str("bench", "store");
        o.str(
            "note",
            "per-kernel minimum over repeated selection runs against one framework \
             (analysis excluded); cold = empty memory cache + empty DiskStore (model runs, \
             write-through), disk_warm = memory cache cleared + warm store (designs load \
             off disk, zero model evals, front asserted bit-identical), mem_warm = repeat \
             selection against warm stripes",
        );
        o.u64("kernels_measured", points.len() as u64);
        o.u64("store_entries_total", entries_total as u64);
        metric_json(o, "cold", points.iter().map(|p| p.cold_s).collect());
        metric_json(
            o,
            "disk_warm",
            points.iter().map(|p| p.disk_warm_s).collect(),
        );
        metric_json(o, "mem_warm", points.iter().map(|p| p.mem_warm_s).collect());
        o.f64("cold_total_s", cold_total, 6);
        o.f64("disk_warm_total_s", disk_total, 6);
        o.f64("mem_warm_total_s", mem_total, 6);
        o.f64("speedup_disk_warm_total", speedup_disk, 1);
        o.f64("speedup_mem_warm_total", speedup_mem, 1);
        o.arr("slowest_disk_warm", |a| {
            let mut by_disk: Vec<&KernelPoint> = points.iter().collect();
            by_disk.sort_by(|x, y| y.disk_warm_s.total_cmp(&x.disk_warm_s));
            for p in by_disk.iter().take(5) {
                a.obj(|o| {
                    o.str("name", p.name);
                    o.f64("cold_s", p.cold_s, 9);
                    o.f64("disk_warm_s", p.disk_warm_s, 9);
                    o.f64("mem_warm_s", p.mem_warm_s, 9);
                    o.u64("store_entries", p.store_entries as u64);
                });
            }
        });
    });
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_store.json");
    std::fs::write(&path, out).expect("write BENCH_store.json");
    println!("wrote {}", path.display());
}
