//! Profiling-throughput bench: the pre-decoded interpreter vs the reference
//! tree walker, in dynamic basic blocks per second, per benchmark suite.
//!
//! Each timed iteration profiles every workload of a suite end to end —
//! engine construction (including the decode pass; compile-once is part of
//! the honest cost), realistic memory image, full run. Throughput is
//! `blocks_executed / min_iteration_time`, so the reported ratio is exactly
//! the profiling speedup an `Application::analyse` call sees.
//!
//! ```text
//! cargo bench -p cayman-bench --bench profiling            # full, writes BENCH_profiling.json
//! cargo bench -p cayman-bench --bench profiling -- --smoke # CI smoke: 1 workload/suite, no JSON
//! ```

use cayman::ir::interp::Interp;
use cayman::workloads::{self, Suite, Workload};
use cayman_bench::harness::bench;
use cayman_bench::json;
use std::path::Path;

/// One suite's measurement.
struct SuiteResult {
    label: &'static str,
    benchmarks: usize,
    /// Dynamic blocks executed by one full pass over the suite.
    blocks: u64,
    decoded_blocks_per_s: f64,
    reference_blocks_per_s: f64,
}

impl SuiteResult {
    fn speedup(&self) -> f64 {
        self.decoded_blocks_per_s / self.reference_blocks_per_s.max(1e-12)
    }
}

fn suite_label(s: Suite) -> &'static str {
    match s {
        Suite::PolyBench => "polybench",
        Suite::MachSuite => "machsuite",
        Suite::MediaBench => "mediabench",
        Suite::CoreMarkPro => "coremark",
        Suite::Stencil => "stencil",
        Suite::Control => "control",
        Suite::Generated => "generated",
    }
}

/// Profiles every workload once under one engine; returns total dynamic
/// blocks (the throughput numerator, and a sanity anchor: both engines must
/// execute the identical number).
fn profile_all(ws: &[&Workload], decoded: bool) -> u64 {
    let mut total = 0u64;
    for w in ws {
        let mut interp = if decoded {
            Interp::new(&w.module)
        } else {
            Interp::reference(&w.module)
        };
        interp.memory = w.memory();
        total += interp
            .run(&[])
            .unwrap_or_else(|e| panic!("{}: {e}", w.name))
            .blocks_executed();
    }
    total
}

fn measure_suite(suite: Suite, ws: &[&Workload]) -> SuiteResult {
    let label = suite_label(suite);
    let blocks = profile_all(ws, true);
    assert_eq!(
        blocks,
        profile_all(ws, false),
        "{label}: engines disagree on dynamic block count"
    );
    let dec = bench(&format!("profiling/{label}/decoded"), || {
        profile_all(ws, true)
    });
    let walk = bench(&format!("profiling/{label}/reference"), || {
        profile_all(ws, false)
    });
    let r = SuiteResult {
        label,
        benchmarks: ws.len(),
        blocks,
        decoded_blocks_per_s: blocks as f64 / dec.min_s,
        reference_blocks_per_s: blocks as f64 / walk.min_s,
    };
    println!(
        "{:<22} {:>2} benchmarks {:>12} blocks | decoded {:>12.0} blk/s | walker {:>12.0} blk/s | {:>5.2}x",
        r.label,
        r.benchmarks,
        r.blocks,
        r.decoded_blocks_per_s,
        r.reference_blocks_per_s,
        r.speedup()
    );
    r
}

/// Machine-readable output via the shared `cayman_bench::json` writer.
fn to_json(results: &[SuiteResult]) -> String {
    json::document(|o| {
        o.str("bench", "profiling");
        o.str("unit", "blocks_per_second");
        o.arr("suites", |a| {
            for r in results {
                a.obj(|o| {
                    o.str("suite", r.label);
                    o.u64("benchmarks", r.benchmarks as u64);
                    o.u64("blocks_per_run", r.blocks);
                    o.f64("decoded_blocks_per_s", r.decoded_blocks_per_s, 0);
                    o.f64("reference_blocks_per_s", r.reference_blocks_per_s, 0);
                    o.f64("speedup", r.speedup(), 2);
                });
            }
        });
        let total_blocks: u64 = results.iter().map(|r| r.blocks).sum();
        let dec_s: f64 = results
            .iter()
            .map(|r| r.blocks as f64 / r.decoded_blocks_per_s)
            .sum();
        let walk_s: f64 = results
            .iter()
            .map(|r| r.blocks as f64 / r.reference_blocks_per_s)
            .sum();
        o.obj("overall", |o| {
            o.u64("blocks_per_run", total_blocks);
            o.f64("decoded_blocks_per_s", total_blocks as f64 / dec_s, 0);
            o.f64("reference_blocks_per_s", total_blocks as f64 / walk_s, 0);
            o.f64("speedup", walk_s / dec_s, 2);
        });
    })
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    println!(
        "# profiling throughput — pre-decoded engine vs reference walker{}",
        if smoke { " (smoke)" } else { "" }
    );

    let all = workloads::all();
    let suites = [
        Suite::PolyBench,
        Suite::MachSuite,
        Suite::MediaBench,
        Suite::CoreMarkPro,
    ];
    let mut results = Vec::new();
    for suite in suites {
        let mut ws: Vec<&Workload> = all.iter().filter(|w| w.suite == suite).collect();
        assert!(!ws.is_empty(), "suite {suite:?} has no workloads");
        if smoke {
            ws.truncate(1); // one representative per suite keeps CI fast
        }
        results.push(measure_suite(suite, &ws));
    }

    let poly = &results[0];
    println!(
        "\npolybench decoded-vs-walker speedup: {:.2}x (target >= 3x)",
        poly.speedup()
    );
    if smoke {
        assert!(
            poly.speedup() > 1.0,
            "decoded engine slower than the walker: {:.2}x",
            poly.speedup()
        );
        println!("smoke mode: BENCH_profiling.json left untouched");
        return;
    }
    if poly.speedup() < 3.0 {
        eprintln!(
            "WARNING: polybench speedup {:.2}x below the 3x target",
            poly.speedup()
        );
    }
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_profiling.json");
    std::fs::write(&path, to_json(&results)).expect("write BENCH_profiling.json");
    println!("wrote {}", path.display());
}
