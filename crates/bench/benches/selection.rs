//! Benches for the selection DP (Algorithm 1), on the dependency-free
//! `cayman_bench::harness`:
//!
//! * `selection_scaling/*` — selection time vs application size (the
//!   α-filter keeps per-node Pareto sequences logarithmic, so growth should
//!   be near-linear in the number of wPST vertices),
//! * `selection_threads/*` — the same application across thread budgets
//!   (independent wPST subtrees evaluated on scoped threads),
//! * `selection_cache/*` — cold vs memoised selection,
//! * `alpha_sweep/*` — the ablation for the `filter` spacing parameter,
//! * `workload/*` — end-to-end selection on representative real benchmarks,
//! * `selection_sched/*` — static chunking vs work stealing on balanced and
//!   skewed wPSTs across thread budgets, written to `BENCH_selection.json`.
//!
//! ```text
//! cargo bench -p cayman-bench --bench selection            # full, writes BENCH_selection.json
//! cargo bench -p cayman-bench --bench selection -- --smoke # CI smoke: scheduler equivalence only
//! ```

use cayman::ir::builder::{FunctionBuilder, ModuleBuilder};
use cayman::ir::{ArrayId, Type};
use cayman::select::{run_selection_cached, CaymanModel, DesignCache};
use cayman::{Framework, SchedKind, SelectOptions, Solution};
use cayman_bench::harness::{fmt_duration, run};
use cayman_bench::json;
use std::path::Path;
use std::time::Instant;

/// An application with `k` independent streaming kernels (scales the wPST).
fn synthetic_app(k: usize) -> cayman::ir::Module {
    let mut mb = ModuleBuilder::new(format!("synth{k}"));
    let mut funcs = Vec::new();
    for i in 0..k {
        let x = mb.array(format!("x{i}"), Type::F64, &[64]);
        let y = mb.array(format!("y{i}"), Type::F64, &[64]);
        let f = mb.function(format!("k{i}"), &[], None, |fb| {
            fb.counted_loop(0, 64, 1, |fb, ii| {
                let xv = fb.load_idx(x, &[ii]);
                let t = fb.fmul(xv, fb.fconst(1.5 + i as f64));
                let v = fb.fadd(t, fb.fconst(1.0));
                fb.store_idx(y, &[ii], v);
            });
            fb.ret(None);
        });
        funcs.push(f);
    }
    mb.function("main", &[], None, |fb| {
        for &f in &funcs {
            fb.call(f, &[], None);
        }
        fb.ret(None);
    });
    mb.finish()
}

/// Uncached selection (fresh cache each call), at a given thread budget.
fn select_uncached(fw: &Framework, opts: &SelectOptions) -> cayman::SelectionResult {
    let inputs = fw.app.inputs();
    let cache = DesignCache::new();
    run_selection_cached(
        &fw.app.module,
        &fw.app.wpst,
        &fw.app.profile,
        &inputs,
        opts,
        &CaymanModel(opts.model.clone()),
        &cache,
    )
}

fn bench_selection_scaling() {
    println!("# selection_scaling — wPST size sweep (uncached, threads=1)");
    for k in [2usize, 4, 8, 16] {
        let fw = Framework::from_module(synthetic_app(k)).expect("analyses");
        let opts = SelectOptions::default();
        run(&format!("selection_scaling/{k}"), || {
            select_uncached(&fw, &opts)
        });
    }
}

fn bench_selection_threads() {
    println!("# selection_threads — thread-budget sweep on 16 kernels (uncached)");
    let fw = Framework::from_module(synthetic_app(16)).expect("analyses");
    let mut baseline = None;
    for threads in [1usize, 2, 4, 8] {
        let opts = SelectOptions {
            threads,
            ..Default::default()
        };
        let m = run(&format!("selection_threads/{threads}"), || {
            select_uncached(&fw, &opts)
        });
        match baseline {
            None => baseline = Some(m.min_s),
            Some(b) => println!("{:<36} speedup over threads=1: {:.2}x", "", b / m.min_s),
        }
    }
}

fn bench_selection_cache() {
    println!("# selection_cache — cold vs memoised accel(v, R)");
    let fw = Framework::from_module(synthetic_app(8)).expect("analyses");
    let opts = SelectOptions::default();
    let cold = run("selection_cache/cold", || select_uncached(&fw, &opts));
    // warm: reuse the framework's shared cache (first call fills it)
    let first = fw.select(&opts);
    assert!(first.stats.cache_misses > 0);
    let warm = run("selection_cache/warm", || fw.select(&opts));
    let stats = fw.select(&opts).stats;
    println!(
        "{:<36} hit rate {:.0}%, model time saved {} per run, warm speedup {:.2}x",
        "",
        stats.cache_hit_rate() * 100.0,
        fmt_duration(first.stats.model_seconds()),
        cold.min_s / warm.min_s
    );
    assert!(stats.cache_hit_rate() > 0.0);
}

fn bench_alpha_sweep() {
    println!("# alpha_sweep — filter spacing ablation on 8 kernels");
    let fw = Framework::from_module(synthetic_app(8)).expect("analyses");
    for alpha in [1.01f64, 1.05, 1.1, 1.3, 2.0] {
        let opts = SelectOptions {
            alpha,
            ..Default::default()
        };
        run(&format!("alpha_sweep/{alpha}"), || {
            select_uncached(&fw, &opts)
        });
    }
}

fn bench_real_workloads() {
    println!("# workload_selection — end-to-end on real benchmarks (uncached)");
    for name in ["trisolv", "bicg", "spmv"] {
        let w = cayman::workloads::by_name(name).expect("exists");
        let fw = Framework::from_workload(&w).expect("analyses");
        let opts = SelectOptions::default();
        let m = run(&format!("workload_selection/{name}"), || {
            select_uncached(&fw, &opts)
        });
        let stats = select_uncached(&fw, &opts).stats;
        println!("{:<36} {} (best {})", "", stats, fmt_duration(m.min_s));
    }
}

/// One heavy 16×8 loop nest: enough instructions per wPST vertex that
/// `accel(v, R)` does real scheduling/pipelining work and dominates the
/// run (the regime the schedulers compete in).
fn emit_nest(fb: &mut FunctionBuilder, x: ArrayId, y: ArrayId, seed: f64) {
    fb.counted_loop(0, 16, 1, |fb, i| {
        fb.counted_loop(0, 8, 1, |fb, j| {
            let xv = fb.load_idx(x, &[i, j]);
            let yv = fb.load_idx(y, &[i, j]);
            let mut acc = fb.fmul(xv, yv);
            for k in 0..48 {
                acc = if k % 2 == 0 {
                    fb.fadd(acc, xv)
                } else {
                    fb.fmul(acc, fb.fconst(seed))
                };
            }
            fb.store_idx(y, &[i, j], acc);
        });
    });
}

/// Balanced wPST: 16 sibling functions, one heavy nest each — every root
/// child costs the same, so static chunking already spreads the work well.
fn balanced_app() -> cayman::ir::Module {
    let mut mb = ModuleBuilder::new("balanced");
    let arrays: Vec<_> = (0..16)
        .map(|i| {
            (
                mb.array(format!("x{i}"), Type::F64, &[16, 8]),
                mb.array(format!("y{i}"), Type::F64, &[16, 8]),
            )
        })
        .collect();
    let funcs: Vec<_> = arrays
        .iter()
        .enumerate()
        .map(|(i, &(x, y))| {
            mb.function(format!("k{i}"), &[], None, |fb| {
                emit_nest(fb, x, y, 1.25 + i as f64 * 0.125);
                fb.ret(None);
            })
        })
        .collect();
    mb.function("main", &[], None, |fb| {
        for &f in &funcs {
            fb.call(f, &[], None);
        }
        fb.ret(None);
    });
    mb.finish()
}

/// Skewed wPST: one hot function holding 12 heavy nests plus 8 trivial
/// siblings. Static chunking assigns the hot function — and with it almost
/// all the work — to a single sibling chunk, so its nests are evaluated with
/// only that chunk's slice of the thread budget; work stealing treats every
/// nest as an independent task and spreads them over all workers.
fn skewed_app() -> cayman::ir::Module {
    let mut mb = ModuleBuilder::new("skewed");
    let x = mb.array("x", Type::F64, &[16, 8]);
    let y = mb.array("y", Type::F64, &[16, 8]);
    let hot = mb.function("hot", &[], None, |fb| {
        for n in 0..12 {
            emit_nest(fb, x, y, 1.25 + n as f64 * 0.125);
        }
        fb.ret(None);
    });
    let trivial: Vec<_> = (0..8)
        .map(|i| {
            let z = mb.array(format!("z{i}"), Type::F64, &[4]);
            mb.function(format!("t{i}"), &[], None, |fb| {
                fb.counted_loop(0, 4, 1, |fb, j| {
                    let v = fb.load_idx(z, &[j]);
                    let w = fb.fadd(v, fb.fconst(1.0));
                    fb.store_idx(z, &[j], w);
                });
                fb.ret(None);
            })
        })
        .collect();
    mb.function("main", &[], None, |fb| {
        fb.call(hot, &[], None);
        for &f in &trivial {
            fb.call(f, &[], None);
        }
        fb.ret(None);
    });
    mb.finish()
}

fn fronts_identical(a: &[Solution], b: &[Solution]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.area.to_bits() == y.area.to_bits()
                && x.saved_seconds.to_bits() == y.saved_seconds.to_bits()
                && x.kernels.len() == y.kernels.len()
                && x.kernels
                    .iter()
                    .zip(&y.kernels)
                    .all(|(k, l)| k.node == l.node && k.design.blocks == l.design.blocks)
        })
}

/// One `(threads, scheduler)` measurement on one shape.
struct SchedPoint {
    threads: usize,
    sched: &'static str,
    wall_s: f64,
    busy_s: f64,
    makespan_s: f64,
    balance: f64,
}

/// Scheduler comparison over one wPST shape.
struct ShapeResult {
    shape: &'static str,
    wall_seq_s: f64,
    points: Vec<SchedPoint>,
}

impl ShapeResult {
    /// Modeled makespan of a `(threads, sched)` point, in seconds.
    fn makespan(&self, threads: usize, sched: &str) -> f64 {
        self.points
            .iter()
            .find(|p| p.threads == threads && p.sched == sched)
            .map(|p| p.makespan_s)
            .unwrap_or(0.0)
    }
}

/// The tentpole's tracked benchmark: selection wall time and per-worker busy
/// time on a balanced and a skewed wPST at 1/2/4/8 threads, under both the
/// static splitter and the work-stealing scheduler. Every parallel run's
/// front is asserted bit-identical to the sequential one.
///
/// Wall time only shows parallel speedup when the host has free cores; the
/// *modeled* makespan (see [`cayman::SelectStats::makespan_seconds`]) —
/// built from measured per-worker and per-task CPU time — compares
/// scheduler quality even on a saturated or single-core host.
fn bench_scheduler_comparison(smoke: bool) -> Vec<ShapeResult> {
    println!("# selection_sched — static chunking vs work stealing (uncached)");
    let mut out = Vec::new();
    for (shape, module) in [("balanced", balanced_app()), ("skewed", skewed_app())] {
        let fw = Framework::from_module(module).expect("analyses");
        // A wider α-spacing keeps the per-vertex Pareto sequences short, so
        // the runs are dominated by `accel(v, R)` model calls — the
        // distributable work — rather than by the serial root-level combine.
        let seq_opts = SelectOptions {
            alpha: 2.0,
            ..Default::default()
        };
        let reference = select_uncached(&fw, &seq_opts);
        let wall_seq_s = if smoke {
            let t0 = Instant::now();
            select_uncached(&fw, &seq_opts);
            t0.elapsed().as_secs_f64()
        } else {
            run(&format!("selection_sched/{shape}/seq"), || {
                select_uncached(&fw, &seq_opts)
            })
            .min_s
        };
        let mut points = Vec::new();
        for threads in [2usize, 4, 8] {
            for sched in [SchedKind::Static, SchedKind::WorkSteal] {
                let opts = SelectOptions {
                    threads,
                    sched,
                    ..seq_opts.clone()
                };
                let label = format!("selection_sched/{shape}/{}x{threads}", sched.label());
                let t0 = Instant::now();
                let res = select_uncached(&fw, &opts);
                let one_shot_s = t0.elapsed().as_secs_f64();
                assert!(
                    fronts_identical(&reference.pareto, &res.pareto),
                    "{shape}: {sched:?} threads={threads} diverged from sequential"
                );
                assert_eq!(res.visited, reference.visited, "{label}");
                assert_eq!(
                    res.configs_evaluated, reference.configs_evaluated,
                    "{label}"
                );
                let wall_s = if smoke {
                    one_shot_s
                } else {
                    run(&label, || select_uncached(&fw, &opts)).min_s
                };
                if threads == 8 {
                    println!(
                        "{:<36} {}x8: model {} + combine {}, max task {}, busy {}",
                        "",
                        res.stats.scheduler,
                        fmt_duration(res.stats.model_seconds()),
                        fmt_duration(res.stats.combine_seconds()),
                        fmt_duration(res.stats.max_task_nanos as f64 * 1e-9),
                        fmt_duration(res.stats.busy_seconds()),
                    );
                }
                points.push(SchedPoint {
                    threads,
                    sched: res.stats.scheduler,
                    wall_s,
                    busy_s: res.stats.busy_seconds(),
                    makespan_s: res.stats.makespan_seconds(),
                    balance: res.stats.load_balance(),
                });
            }
        }
        let result = ShapeResult {
            shape,
            wall_seq_s,
            points,
        };
        let (st, wk) = (result.makespan(8, "static"), result.makespan(8, "steal"));
        println!(
            "{:<36} modeled makespan @8 threads: static {} vs steal {} ({:.2}x)",
            "",
            fmt_duration(st),
            fmt_duration(wk),
            st / wk.max(1e-12)
        );
        out.push(result);
    }
    out
}

/// The tentpole's near-zero-cost claim, as a tracked number: nanoseconds per
/// disabled `span!` + counter pair on the selection hot-path shape. The
/// per-event cost must stay within a couple of atomic loads (the CI smoke
/// run asserts a generous microsecond bound; the zero-allocation property is
/// unit-tested in `cayman-obs`).
fn measure_obs_disabled_ns() -> f64 {
    assert!(
        !cayman_obs::enabled(),
        "tracing must stay disabled during benches"
    );
    let iters = 1_000_000u64;
    // Warm the thread-local tid/seq cells out of the measurement.
    let _ = std::hint::black_box(cayman_obs::span!("bench.obs.warmup"));
    let t0 = Instant::now();
    for i in 0..iters {
        let guard = cayman_obs::span!("select.task.accel", vertex = i);
        cayman_obs::counter("select.cache.hit", 1);
        let _ = std::hint::black_box(guard);
    }
    let ns = t0.elapsed().as_nanos() as f64 / iters as f64;
    println!(
        "{:<36} disabled span+counter: {ns:.1} ns/pair",
        "obs_overhead"
    );
    ns
}

/// Machine-readable output via the shared `cayman_bench::json` writer.
fn sched_json(results: &[ShapeResult], obs_disabled_ns: f64) -> String {
    let host = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    json::document(|o| {
        o.str("bench", "selection_sched");
        o.u64("host_parallelism", host as u64);
        o.str(
            "note",
            "wall_s shows no parallel speedup when the host has fewer free cores than \
             threads; makespan_s is the modeled parallel completion time from measured CPU time \
             (static: the busiest thread, including the caller's serial spine; steal: the greedy \
             bound max(total work / workers, most expensive single task))",
        );
        o.f64("obs_disabled_span_ns", obs_disabled_ns, 1);
        o.arr("shapes", |a| {
            for r in results {
                a.obj(|o| {
                    o.str("shape", r.shape);
                    o.f64("wall_seq_s", r.wall_seq_s, 6);
                    o.arr("runs", |a| {
                        for p in &r.points {
                            a.obj(|o| {
                                o.u64("threads", p.threads as u64);
                                o.str("sched", p.sched);
                                o.f64("wall_s", p.wall_s, 6);
                                o.f64("busy_s", p.busy_s, 6);
                                o.f64("makespan_s", p.makespan_s, 6);
                                o.f64("balance", p.balance, 3);
                            });
                        }
                    });
                });
            }
        });
        o.obj("modeled_speedup_at_8_threads", |o| {
            for r in results {
                let ratio = r.makespan(8, "static") / r.makespan(8, "steal").max(1e-12);
                o.f64(&format!("{}_steal_vs_static", r.shape), ratio, 2);
            }
        });
    })
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    if smoke {
        bench_scheduler_comparison(true);
        let obs_ns = measure_obs_disabled_ns();
        assert!(
            obs_ns < 1_000.0,
            "disabled tracing costs {obs_ns:.0} ns per span — not near-zero"
        );
        println!(
            "smoke mode: fronts bit-identical across schedulers and thread budgets; \
             BENCH_selection.json left untouched"
        );
        return;
    }
    bench_selection_scaling();
    bench_selection_threads();
    bench_selection_cache();
    bench_alpha_sweep();
    bench_real_workloads();
    let results = bench_scheduler_comparison(false);
    let obs_ns = measure_obs_disabled_ns();
    for r in &results {
        let ratio = r.makespan(8, "static") / r.makespan(8, "steal").max(1e-12);
        if r.shape == "skewed" && ratio < 1.5 {
            eprintln!(
                "WARNING: skewed steal-vs-static modeled speedup {ratio:.2}x below the 1.5x target"
            );
        }
        if r.shape == "balanced" && ratio < 0.95 {
            eprintln!(
                "WARNING: balanced work stealing modeled {ratio:.2}x vs static (target: within 5%)"
            );
        }
    }
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_selection.json");
    std::fs::write(&path, sched_json(&results, obs_ns)).expect("write BENCH_selection.json");
    println!("wrote {}", path.display());
}
