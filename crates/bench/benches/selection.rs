//! Criterion benches for the selection DP (Algorithm 1):
//!
//! * `selection_scaling/*` — selection time vs application size (the
//!   α-filter keeps per-node Pareto sequences logarithmic, so growth should
//!   be near-linear in the number of wPST vertices),
//! * `alpha_sweep/*` — the ablation for the `filter` spacing parameter,
//! * `workload/*` — end-to-end selection on representative real benchmarks.

use cayman::ir::builder::ModuleBuilder;
use cayman::ir::Type;
use cayman::{Framework, SelectOptions};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// An application with `k` independent streaming kernels (scales the wPST).
fn synthetic_app(k: usize) -> cayman::ir::Module {
    let mut mb = ModuleBuilder::new(format!("synth{k}"));
    let mut funcs = Vec::new();
    for i in 0..k {
        let x = mb.array(format!("x{i}"), Type::F64, &[64]);
        let y = mb.array(format!("y{i}"), Type::F64, &[64]);
        let f = mb.function(format!("k{i}"), &[], None, |fb| {
            fb.counted_loop(0, 64, 1, |fb, ii| {
                let xv = fb.load_idx(x, &[ii]);
                let t = fb.fmul(xv, fb.fconst(1.5 + i as f64));
                let v = fb.fadd(t, fb.fconst(1.0));
                fb.store_idx(y, &[ii], v);
            });
            fb.ret(None);
        });
        funcs.push(f);
    }
    mb.function("main", &[], None, |fb| {
        for &f in &funcs {
            fb.call(f, &[], None);
        }
        fb.ret(None);
    });
    mb.finish()
}

fn bench_selection_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("selection_scaling");
    group.sample_size(10);
    for k in [2usize, 4, 8, 16] {
        let fw = Framework::from_module(synthetic_app(k)).expect("analyses");
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| fw.select(&SelectOptions::default()));
        });
    }
    group.finish();
}

fn bench_alpha_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("alpha_sweep");
    group.sample_size(10);
    let fw = Framework::from_module(synthetic_app(8)).expect("analyses");
    for alpha in [1.01f64, 1.05, 1.1, 1.3, 2.0] {
        let opts = SelectOptions {
            alpha,
            ..Default::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{alpha}")),
            &alpha,
            |b, _| {
                b.iter(|| fw.select(&opts));
            },
        );
    }
    group.finish();
}

fn bench_real_workloads(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_selection");
    group.sample_size(10);
    for name in ["trisolv", "bicg", "spmv"] {
        let w = cayman::workloads::by_name(name).expect("exists");
        let fw = Framework::from_workload(&w).expect("analyses");
        group.bench_function(name, |b| {
            b.iter(|| fw.select(&SelectOptions::default()));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_selection_scaling,
    bench_alpha_sweep,
    bench_real_workloads
);
criterion_main!(benches);
