//! Benches for the selection DP (Algorithm 1), on the dependency-free
//! `cayman_bench::harness`:
//!
//! * `selection_scaling/*` — selection time vs application size (the
//!   α-filter keeps per-node Pareto sequences logarithmic, so growth should
//!   be near-linear in the number of wPST vertices),
//! * `selection_threads/*` — the same application across thread budgets
//!   (independent wPST subtrees evaluated on scoped threads),
//! * `selection_cache/*` — cold vs memoised selection,
//! * `alpha_sweep/*` — the ablation for the `filter` spacing parameter,
//! * `workload/*` — end-to-end selection on representative real benchmarks.
//!
//! ```text
//! cargo bench -p cayman-bench --bench selection
//! ```

use cayman::ir::builder::ModuleBuilder;
use cayman::ir::Type;
use cayman::select::{run_selection_cached, CaymanModel, DesignCache};
use cayman::{Framework, SelectOptions};
use cayman_bench::harness::{fmt_duration, run};

/// An application with `k` independent streaming kernels (scales the wPST).
fn synthetic_app(k: usize) -> cayman::ir::Module {
    let mut mb = ModuleBuilder::new(format!("synth{k}"));
    let mut funcs = Vec::new();
    for i in 0..k {
        let x = mb.array(format!("x{i}"), Type::F64, &[64]);
        let y = mb.array(format!("y{i}"), Type::F64, &[64]);
        let f = mb.function(format!("k{i}"), &[], None, |fb| {
            fb.counted_loop(0, 64, 1, |fb, ii| {
                let xv = fb.load_idx(x, &[ii]);
                let t = fb.fmul(xv, fb.fconst(1.5 + i as f64));
                let v = fb.fadd(t, fb.fconst(1.0));
                fb.store_idx(y, &[ii], v);
            });
            fb.ret(None);
        });
        funcs.push(f);
    }
    mb.function("main", &[], None, |fb| {
        for &f in &funcs {
            fb.call(f, &[], None);
        }
        fb.ret(None);
    });
    mb.finish()
}

/// Uncached selection (fresh cache each call), at a given thread budget.
fn select_uncached(fw: &Framework, opts: &SelectOptions) -> cayman::SelectionResult {
    let inputs = fw.app.inputs();
    let cache = DesignCache::new();
    run_selection_cached(
        &fw.app.module,
        &fw.app.wpst,
        &fw.app.profile,
        &inputs,
        opts,
        &CaymanModel(opts.model.clone()),
        &cache,
    )
}

fn bench_selection_scaling() {
    println!("# selection_scaling — wPST size sweep (uncached, threads=1)");
    for k in [2usize, 4, 8, 16] {
        let fw = Framework::from_module(synthetic_app(k)).expect("analyses");
        let opts = SelectOptions::default();
        run(&format!("selection_scaling/{k}"), || {
            select_uncached(&fw, &opts)
        });
    }
}

fn bench_selection_threads() {
    println!("# selection_threads — thread-budget sweep on 16 kernels (uncached)");
    let fw = Framework::from_module(synthetic_app(16)).expect("analyses");
    let mut baseline = None;
    for threads in [1usize, 2, 4, 8] {
        let opts = SelectOptions {
            threads,
            ..Default::default()
        };
        let m = run(&format!("selection_threads/{threads}"), || {
            select_uncached(&fw, &opts)
        });
        match baseline {
            None => baseline = Some(m.min_s),
            Some(b) => println!("{:<36} speedup over threads=1: {:.2}x", "", b / m.min_s),
        }
    }
}

fn bench_selection_cache() {
    println!("# selection_cache — cold vs memoised accel(v, R)");
    let fw = Framework::from_module(synthetic_app(8)).expect("analyses");
    let opts = SelectOptions::default();
    let cold = run("selection_cache/cold", || select_uncached(&fw, &opts));
    // warm: reuse the framework's shared cache (first call fills it)
    let first = fw.select(&opts);
    assert!(first.stats.cache_misses > 0);
    let warm = run("selection_cache/warm", || fw.select(&opts));
    let stats = fw.select(&opts).stats;
    println!(
        "{:<36} hit rate {:.0}%, model time saved {} per run, warm speedup {:.2}x",
        "",
        stats.cache_hit_rate() * 100.0,
        fmt_duration(first.stats.model_seconds()),
        cold.min_s / warm.min_s
    );
    assert!(stats.cache_hit_rate() > 0.0);
}

fn bench_alpha_sweep() {
    println!("# alpha_sweep — filter spacing ablation on 8 kernels");
    let fw = Framework::from_module(synthetic_app(8)).expect("analyses");
    for alpha in [1.01f64, 1.05, 1.1, 1.3, 2.0] {
        let opts = SelectOptions {
            alpha,
            ..Default::default()
        };
        run(&format!("alpha_sweep/{alpha}"), || {
            select_uncached(&fw, &opts)
        });
    }
}

fn bench_real_workloads() {
    println!("# workload_selection — end-to-end on real benchmarks (uncached)");
    for name in ["trisolv", "bicg", "spmv"] {
        let w = cayman::workloads::by_name(name).expect("exists");
        let fw = Framework::from_workload(&w).expect("analyses");
        let opts = SelectOptions::default();
        let m = run(&format!("workload_selection/{name}"), || {
            select_uncached(&fw, &opts)
        });
        let stats = select_uncached(&fw, &opts).stats;
        println!("{:<36} {} (best {})", "", stats, fmt_duration(m.min_s));
    }
}

fn main() {
    bench_selection_scaling();
    bench_selection_threads();
    bench_selection_cache();
    bench_alpha_sweep();
    bench_real_workloads();
}
