//! `caymand` service latency under concurrent clients (ISSUE 10), written
//! to `BENCH_service.json`.
//!
//! Boots the server in-process on a Unix socket, warms one corpus kernel,
//! then drives N ≥ 4 concurrent clients each running a fixed number of
//! memory-warm SELECTs and PINGs. Every client records request latency into
//! its own `cayman_obs` log-bucketed histogram; the shards are **merged**
//! at the end (exercising exactly the mergeability the histogram prop tests
//! pin) and reported as p50/p90/p99/max. The server's own metrics
//! exposition is scraped over the wire, validated with the dependency-free
//! parser, and its per-phase request counts are cross-checked against the
//! client-side tallies.
//!
//! ```text
//! cargo bench -p cayman-bench --bench service            # writes JSON
//! cargo bench -p cayman-bench --bench service -- --smoke # CI: fewer reqs, no JSON
//! ```

use cayman_bench::json;
use cayman_obs::hist::{HistSnapshot, Histogram};
use cayman_obs::promtext;
use cayman_store::{serve, Client, Endpoint, ServerOptions};
use std::path::Path;
use std::time::Instant;

/// Concurrent clients (the acceptance floor is 4).
const CLIENTS: usize = 8;

struct ClientRun {
    select: HistSnapshot,
    ping: HistSnapshot,
}

fn run_client(endpoint: &Endpoint, text: &str, reqs: usize) -> ClientRun {
    let mut client = Client::connect(endpoint).expect("bench client connects");
    let select = Histogram::new();
    let ping = Histogram::new();
    for i in 0..reqs {
        let t0 = Instant::now();
        if i % 4 == 3 {
            client.ping().expect("ping");
            ping.record(t0.elapsed().as_nanos() as u64);
        } else {
            let reply = client.select_text(text).expect("warm select");
            select.record(t0.elapsed().as_nanos() as u64);
            assert!(reply.framework_reused, "bench runs against a warm server");
            assert_eq!(reply.model_evals, 0, "warm select must skip the model");
            assert!(reply.request_id > 0, "server assigns request ids");
        }
    }
    ClientRun {
        select: select.snapshot(),
        ping: ping.snapshot(),
    }
}

fn quantiles_json(o: &mut json::Obj, name: &str, snap: &HistSnapshot) {
    o.obj(name, |o| {
        o.u64("count", snap.count());
        o.f64("p50_us", snap.p50() as f64 / 1e3, 3);
        o.f64("p90_us", snap.p90() as f64 / 1e3, 3);
        o.f64("p99_us", snap.p99() as f64 / 1e3, 3);
        o.f64("max_us", snap.max() as f64 / 1e3, 3);
    });
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let reqs_per_client = if smoke { 40 } else { 400 };

    let sock =
        std::env::temp_dir().join(format!("cayman-bench-service-{}.sock", std::process::id()));
    let server = serve(Endpoint::Unix(sock), ServerOptions::default()).expect("server starts");

    let corpus = cayman::workloads::corpus::corpus();
    let w = corpus.first().expect("corpus is non-empty");
    let text = w.module.to_text();

    // one cold request outside the measured window warms the framework
    let mut warmup = Client::connect(server.endpoint()).expect("warmup connects");
    let cold = warmup.select_text(&text).expect("cold select");
    assert!(!cold.framework_reused, "first request analyses");

    let wall = Instant::now();
    let runs: Vec<ClientRun> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let endpoint = server.endpoint().clone();
                let text = &text;
                s.spawn(move || run_client(&endpoint, text, reqs_per_client))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall_s = wall.elapsed().as_secs_f64();

    // merge the per-client shards — the wire-facing use of HistSnapshot::merge
    let mut select = HistSnapshot::default();
    let mut ping = HistSnapshot::default();
    for run in &runs {
        select.merge(&run.select);
        ping.merge(&run.ping);
    }
    let total_reqs = select.count() + ping.count();
    assert_eq!(total_reqs, (CLIENTS * reqs_per_client) as u64);

    // scrape + validate the server's own view and cross-check the counts
    let metrics = warmup.metrics().expect("metrics scrape");
    let exp = promtext::validate(&metrics.text).expect("exposition validates");
    let served = exp
        .value("cayman_req_total_nanos_count")
        .expect("per-phase histograms exported");
    assert!(
        served >= total_reqs as f64,
        "server counted {served} requests, clients sent at least {total_reqs}"
    );
    let server_p99_us = exp
        .value("cayman_req_total_nanos_sum")
        .map(|sum| sum / served / 1e3)
        .unwrap_or(0.0); // mean as exported; true p99 comes from the buckets

    println!(
        "# service: {CLIENTS} clients x {reqs_per_client} reqs in {wall_s:.2}s | \
         warm select p50 {:.1}us p99 {:.1}us | ping p50 {:.1}us p99 {:.1}us | \
         server mean {server_p99_us:.1}us over {served} reqs",
        select.p50() as f64 / 1e3,
        select.p99() as f64 / 1e3,
        ping.p50() as f64 / 1e3,
        ping.p99() as f64 / 1e3,
    );

    warmup.shutdown_server().expect("shutdown");
    server.wait();

    if smoke {
        assert!(select.count() > 0 && ping.count() > 0);
        assert!(
            select.p50() <= select.p99() && select.p99() <= select.max(),
            "quantiles are ordered"
        );
        println!(
            "smoke mode: exposition valid, quantiles ordered; BENCH_service.json left untouched"
        );
        return;
    }

    let out = json::document(|o| {
        o.str("bench", "service");
        o.str(
            "note",
            "in-process caymand on a unix socket; one cold warm-up select, then CLIENTS \
             concurrent clients each running reqs_per_client requests (3 warm SELECTs : 1 \
             PING). Latencies recorded client-side into per-thread log-bucketed histograms \
             and merged; quantile error bounded by one bucket (2^-3 relative). Server-side \
             per-phase histograms scraped over the wire and validated.",
        );
        o.u64("clients", CLIENTS as u64);
        o.u64("reqs_per_client", reqs_per_client as u64);
        o.u64("requests_total", total_reqs);
        o.f64("wall_s", wall_s, 3);
        o.f64("throughput_rps", total_reqs as f64 / wall_s.max(1e-9), 1);
        quantiles_json(o, "select_warm", &select);
        quantiles_json(o, "ping", &ping);
        o.f64("server_mean_total_us", server_p99_us, 3);
        o.u64("server_requests_counted", served as u64);
    });
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_service.json");
    std::fs::write(&path, out).expect("write BENCH_service.json");
    println!("wrote {}", path.display());
}
