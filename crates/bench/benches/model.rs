//! Benches for the accelerator model (§III-C), on the dependency-free
//! `cayman_bench::harness`:
//!
//! * `fig4_model` — the interface-impact computation behind Fig. 4
//!   (pipeline II + latency under each interface),
//! * `design_generation/*` — `accel(v, R)` cost per candidate, with a
//!   β-sweep ablation of the scratchpad heuristic,
//! * `merging` — the greedy §III-E merge on a multi-kernel solution (3mm).
//!
//! ```text
//! cargo bench -p cayman-bench --bench model
//! ```

use cayman::hls::design::generate_designs;
use cayman::hls::inputs::Candidate;
use cayman::hls::interface::{InterfaceSpec, ModelOptions};
use cayman::hls::pipeline::pipeline_loop;
use cayman::ir::builder::ModuleBuilder;
use cayman::ir::{FuncId, InstrId, Type};
use cayman::{Framework, SelectOptions};
use cayman_bench::harness::run;

fn saxpy(n: i64) -> cayman::ir::Module {
    let mut mb = ModuleBuilder::new("saxpy");
    let x = mb.array("x", Type::F64, &[n as usize]);
    let y = mb.array("y", Type::F64, &[n as usize]);
    mb.function("main", &[], None, |fb| {
        fb.counted_loop(0, n, 1, |fb, i| {
            let xv = fb.load_idx(x, &[i]);
            let t = fb.fmul(fb.fconst(3.0), xv);
            let v = fb.fadd(t, fb.fconst(1.0));
            fb.store_idx(y, &[i], v);
        });
        fb.ret(None);
    });
    mb.finish()
}

fn bench_fig4_model() {
    let fw = Framework::from_module(saxpy(256)).expect("analyses");
    let inputs = fw.app.inputs();
    let inp = &inputs[0];
    let l = fw.app.wpst.func_ctxs[0].forest.ids().next().expect("loop");
    let dec = |_: InstrId| Some(InterfaceSpec::decoupled());
    run("fig4_model", || pipeline_loop(inp, l, 2, &dec));
}

fn bench_design_generation() {
    println!("# design_generation — beta sweep of the scratchpad heuristic");
    let fw = Framework::from_module(saxpy(256)).expect("analyses");
    let inputs = fw.app.inputs();
    let inp = &inputs[0];
    let ctx = &fw.app.wpst.func_ctxs[0];
    let l = ctx.forest.ids().next().expect("loop");
    let cand = Candidate {
        func: FuncId(0),
        blocks: ctx.forest.get(l).blocks.clone(),
        entries: 1,
        cpu_cycles: fw.app.total_cycles(),
        is_bb: false,
        content_fp: inp.content_fp,
    };
    for beta in [2.0f64, 4.0, 8.0] {
        let opts = ModelOptions {
            beta,
            ..Default::default()
        };
        run(&format!("design_generation/beta={beta}"), || {
            generate_designs(inp, &cand, &opts)
        });
    }
}

fn bench_merging() {
    let w = cayman::workloads::by_name("3mm").expect("exists");
    let fw = Framework::from_workload(&w).expect("analyses");
    let res = fw.select(&SelectOptions::default());
    let sol = res.pareto.last().expect("solutions").clone();
    run("merging_3mm", || fw.merge(&sol));
}

fn main() {
    bench_fig4_model();
    bench_design_generation();
    bench_merging();
}
