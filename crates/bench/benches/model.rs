//! Criterion benches for the accelerator model (§III-C):
//!
//! * `fig4_model` — the interface-impact computation behind Fig. 4
//!   (pipeline II + latency under each interface),
//! * `design_generation/*` — `accel(v, R)` cost per candidate, with a
//!   β-sweep ablation of the scratchpad heuristic,
//! * `merging` — the greedy §III-E merge on a multi-kernel solution (3mm).

use cayman::hls::design::generate_designs;
use cayman::hls::inputs::Candidate;
use cayman::hls::interface::{InterfaceKind, ModelOptions};
use cayman::hls::pipeline::pipeline_loop;
use cayman::ir::builder::ModuleBuilder;
use cayman::ir::{FuncId, InstrId, Type};
use cayman::{Framework, SelectOptions};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn saxpy(n: i64) -> cayman::ir::Module {
    let mut mb = ModuleBuilder::new("saxpy");
    let x = mb.array("x", Type::F64, &[n as usize]);
    let y = mb.array("y", Type::F64, &[n as usize]);
    mb.function("main", &[], None, |fb| {
        fb.counted_loop(0, n, 1, |fb, i| {
            let xv = fb.load_idx(x, &[i]);
            let t = fb.fmul(fb.fconst(3.0), xv);
            let v = fb.fadd(t, fb.fconst(1.0));
            fb.store_idx(y, &[i], v);
        });
        fb.ret(None);
    });
    mb.finish()
}

fn bench_fig4_model(c: &mut Criterion) {
    let fw = Framework::from_module(saxpy(256)).expect("analyses");
    let inputs = fw.app.inputs();
    let inp = &inputs[0];
    let l = fw.app.wpst.func_ctxs[0].forest.ids().next().expect("loop");
    let dec = |_: InstrId| Some(InterfaceKind::Decoupled);
    c.bench_function("fig4_model", |b| {
        b.iter(|| pipeline_loop(inp, l, 2, &dec));
    });
}

fn bench_design_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("design_generation");
    let fw = Framework::from_module(saxpy(256)).expect("analyses");
    let inputs = fw.app.inputs();
    let inp = &inputs[0];
    let ctx = &fw.app.wpst.func_ctxs[0];
    let l = ctx.forest.ids().next().expect("loop");
    let cand = Candidate {
        func: FuncId(0),
        blocks: ctx.forest.get(l).blocks.clone(),
        entries: 1,
        cpu_cycles: fw.app.total_cycles(),
        is_bb: false,
    };
    for beta in [2.0f64, 4.0, 8.0] {
        let opts = ModelOptions {
            beta,
            ..Default::default()
        };
        group.bench_with_input(
            BenchmarkId::new("beta", format!("{beta}")),
            &beta,
            |b, _| {
                b.iter(|| generate_designs(inp, &cand, &opts));
            },
        );
    }
    group.finish();
}

fn bench_merging(c: &mut Criterion) {
    let w = cayman::workloads::by_name("3mm").expect("exists");
    let fw = Framework::from_workload(&w).expect("analyses");
    let res = fw.select(&SelectOptions::default());
    let sol = res.pareto.last().expect("solutions").clone();
    c.bench_function("merging_3mm", |b| {
        b.iter(|| fw.merge(&sol));
    });
}

criterion_group!(
    benches,
    bench_fig4_model,
    bench_design_generation,
    bench_merging
);
criterion_main!(benches);
