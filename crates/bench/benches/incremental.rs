//! The tentpole's tracked benchmark: incremental re-analysis latency over
//! the full workload corpus, written to `BENCH_incremental.json`.
//!
//! For every corpus kernel with a float-immediate site to edit, three
//! latencies are measured:
//!
//! * **cold** — a from-scratch `Application::analyse_with` + `run_selection`
//!   (the batch pipeline the incremental path must beat),
//! * **first edit** — `IncrementalApp::apply` + `select` for a
//!   *single-instruction edit* against a warm store: the whole-module
//!   execution query necessarily re-runs (the program's behaviour changed),
//!   but normalization/structure/decode/dataflow of clean functions and the
//!   clean subtrees' selection fronts all answer from cache,
//! * **warm toggle** — the salsa-style "change it back" path: the edit
//!   toggles between two previously analysed states, so the whole-app and
//!   selection queries hit outright and re-selection is two content-hash
//!   probes.
//!
//! The headline target (ISSUE 7): median warm-toggle re-selection ≥ 50×
//! faster than cold analyse+select, and median first-edit re-selection
//! under a millisecond. Every measured kernel's incremental front is
//! asserted bit-identical to the from-scratch front before it is timed.
//!
//! ```text
//! cargo bench -p cayman-bench --bench incremental            # full corpus, writes JSON
//! cargo bench -p cayman-bench --bench incremental -- --smoke # CI: 20 kernels, no JSON
//! ```

use cayman::ir::interp::Memory;
use cayman::select::run_selection;
use cayman::workloads::Workload;
use cayman::{AnalyseOptions, Application, Edit, IncrementalApp, SelectOptions, Solution};
use cayman_bench::diff::single_instr_edit;
use cayman_bench::harness::fmt_duration;
use cayman_bench::json;
use std::path::Path;
use std::time::Instant;

/// Timing repetitions per kernel (the minimum is reported, as in the other
/// benches — these paths are deterministic, so min is the noise floor).
const REPS: usize = 5;
/// Toggle cycles measured per kernel after warmup.
const TOGGLES: usize = 10;

struct KernelPoint {
    name: &'static str,
    cold_s: f64,
    first_edit_s: f64,
    warm_toggle_s: f64,
}

fn fronts_identical(a: &[Solution], b: &[Solution]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.area.to_bits() == y.area.to_bits()
                && x.saved_seconds.to_bits() == y.saved_seconds.to_bits()
                && x.kernels.len() == y.kernels.len()
                && x.kernels
                    .iter()
                    .zip(&y.kernels)
                    .all(|(k, l)| k.node == l.node && k.design.blocks == l.design.blocks)
        })
}

/// Fresh batch analyse+select, returning the front for equivalence checks.
fn batch_front(module: cayman::ir::Module, memory: &Memory, sel: &SelectOptions) -> Vec<Solution> {
    let app = Application::analyse_with(module, Some(memory.clone()), &AnalyseOptions::default())
        .expect("corpus kernel analyses");
    let inputs = app.inputs();
    run_selection(&app.module, &app.wpst, &app.profile, &inputs, sel).pareto
}

/// Measures one kernel, or `None` when it has no float immediate to edit.
fn measure_kernel(w: &Workload, smoke: bool) -> Option<KernelPoint> {
    let edit = single_instr_edit(&w.module, 0)?;
    let Edit::ReplaceFunction { func, ref body } = edit else {
        unreachable!("single_instr_edit only replaces functions");
    };
    let edited_body = body.clone();
    let original_body = w.module.functions[func.index()].clone();
    let memory = w.memory();
    let sel = SelectOptions::default();
    let opts = AnalyseOptions::default();

    // Cold: from-scratch analyse+select.
    let mut cold_s = f64::INFINITY;
    for _ in 0..REPS {
        let module = w.module.clone();
        let mem = memory.clone();
        let t0 = Instant::now();
        let app = Application::analyse_with(module, Some(mem), &opts).expect("analyses");
        let inputs = app.inputs();
        let res = run_selection(&app.module, &app.wpst, &app.profile, &inputs, &sel);
        cold_s = cold_s.min(t0.elapsed().as_secs_f64());
        std::hint::black_box(res);
    }

    // First edit: warm store, one single-instruction edit, re-select.
    // (Each rep rebuilds the store — the first edit is a one-shot event.)
    let mut first_edit_s = f64::INFINITY;
    let mut inc = None;
    for rep in 0..REPS {
        let mut app = IncrementalApp::new(w.module.clone(), Some(memory.clone()), opts.clone());
        app.select(&sel).expect("cold incremental select");
        let t0 = Instant::now();
        app.apply(Edit::ReplaceFunction {
            func,
            body: edited_body.clone(),
        })
        .expect("applies");
        let res = app.select(&sel).expect("re-selects");
        first_edit_s = first_edit_s.min(t0.elapsed().as_secs_f64());
        if rep == 0 {
            // Equivalence: the edited state's front must be bit-identical
            // to a from-scratch pipeline on the edited module.
            let mut edited = w.module.clone();
            edited.functions[func.index()] = edited_body.clone();
            let fresh = batch_front(edited, &memory, &sel);
            assert!(
                fronts_identical(&res.pareto, &fresh),
                "{}: incremental front diverges from fresh after the edit",
                w.name
            );
        }
        inc = Some(app);
    }
    let mut inc = inc.expect("at least one rep ran");

    // Warm toggle: revert/re-apply the same edit; after one full warmup
    // cycle both module states are fully cached.
    let toggle = |app: &mut IncrementalApp, to_original: bool| -> f64 {
        let body = if to_original {
            original_body.clone()
        } else {
            edited_body.clone()
        };
        let t0 = Instant::now();
        app.apply(Edit::ReplaceFunction { func, body })
            .expect("applies");
        std::hint::black_box(app.select(&SelectOptions::default()).expect("selects"));
        t0.elapsed().as_secs_f64()
    };
    toggle(&mut inc, true);
    toggle(&mut inc, false);
    let before = *inc.stats();
    let mut warm_toggle_s = f64::INFINITY;
    for i in 0..TOGGLES {
        warm_toggle_s = warm_toggle_s.min(toggle(&mut inc, i % 2 == 0));
    }
    let after = *inc.stats();
    if smoke {
        // The warm path must be answered entirely by the app + selection
        // caches: no query body re-runs once both states are cached.
        assert_eq!(
            after.app.hits - before.app.hits,
            TOGGLES as u64,
            "{}: warm toggles must hit the whole-app cache",
            w.name
        );
        assert_eq!(
            after.select.hits - before.select.hits,
            TOGGLES as u64,
            "{}: warm toggles must hit the selection cache",
            w.name
        );
        assert_eq!(after.app.misses, before.app.misses, "{}", w.name);
    }

    Some(KernelPoint {
        name: w.name,
        cold_s,
        first_edit_s,
        warm_toggle_s,
    })
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn stats_of(mut vals: Vec<f64>) -> (f64, f64, f64, f64, f64) {
    vals.sort_by(f64::total_cmp);
    (
        percentile(&vals, 0.0),
        percentile(&vals, 0.25),
        percentile(&vals, 0.5),
        percentile(&vals, 0.75),
        percentile(&vals, 1.0),
    )
}

fn metric_json(o: &mut json::Obj, name: &str, vals: Vec<f64>) {
    let (min, p25, med, p75, max) = stats_of(vals);
    o.obj(name, |o| {
        o.f64("min_s", min, 9);
        o.f64("p25_s", p25, 9);
        o.f64("median_s", med, 9);
        o.f64("p75_s", p75, 9);
        o.f64("max_s", max, 9);
    });
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut workloads = cayman::workloads::full();
    if smoke {
        workloads.truncate(20);
    }
    let total = workloads.len();

    let mut points = Vec::new();
    let mut skipped = 0usize;
    for w in &workloads {
        match measure_kernel(w, smoke) {
            Some(p) => points.push(p),
            None => skipped += 1,
        }
    }
    assert!(
        !points.is_empty(),
        "no corpus kernel had a float immediate to edit"
    );
    if skipped > 0 {
        println!("# incremental: {skipped}/{total} kernels skipped (no float-immediate edit site)");
    }

    let (_, _, cold_med, _, _) = stats_of(points.iter().map(|p| p.cold_s).collect());
    let (_, _, first_med, _, _) = stats_of(points.iter().map(|p| p.first_edit_s).collect());
    let (_, _, warm_med, _, _) = stats_of(points.iter().map(|p| p.warm_toggle_s).collect());
    let speedup_first = cold_med / first_med.max(1e-12);
    let speedup_warm = cold_med / warm_med.max(1e-12);
    println!(
        "# incremental over {} kernels: cold {} | first edit {} ({speedup_first:.1}x) | \
         warm toggle {} ({speedup_warm:.1}x)",
        points.len(),
        fmt_duration(cold_med),
        fmt_duration(first_med),
        fmt_duration(warm_med),
    );

    if smoke {
        assert!(
            warm_med < cold_med,
            "warm toggle ({warm_med}s) must beat cold analyse+select ({cold_med}s)"
        );
        println!(
            "smoke mode: fronts bit-identical, warm toggles fully cache-hit; \
             BENCH_incremental.json left untouched"
        );
        return;
    }

    if speedup_warm < 50.0 {
        eprintln!(
            "WARNING: warm-toggle re-selection speedup {speedup_warm:.1}x below the 50x target"
        );
    }
    if first_med >= 1e-3 {
        eprintln!(
            "WARNING: median first-edit re-selection {} is not sub-millisecond",
            fmt_duration(first_med)
        );
    }

    let out = json::document(|o| {
        o.str("bench", "incremental");
        o.str(
            "note",
            "per-kernel minimum over repeated runs; cold = from-scratch analyse+select, \
             first_edit = apply+select of one single-instruction edit against a warm query \
             store (whole-module execution legitimately re-runs), warm_toggle = apply+select \
             toggling between two cached module states (pure content-hash hits)",
        );
        o.u64("kernels_measured", points.len() as u64);
        o.u64("kernels_skipped_no_edit_site", skipped as u64);
        metric_json(o, "cold", points.iter().map(|p| p.cold_s).collect());
        metric_json(
            o,
            "first_edit",
            points.iter().map(|p| p.first_edit_s).collect(),
        );
        metric_json(
            o,
            "warm_toggle",
            points.iter().map(|p| p.warm_toggle_s).collect(),
        );
        o.f64("speedup_first_edit_median", speedup_first, 1);
        o.f64("speedup_warm_toggle_median", speedup_warm, 1);
        o.arr("slowest_first_edit", |a| {
            let mut by_first: Vec<&KernelPoint> = points.iter().collect();
            by_first.sort_by(|x, y| y.first_edit_s.total_cmp(&x.first_edit_s));
            for p in by_first.iter().take(5) {
                a.obj(|o| {
                    o.str("name", p.name);
                    o.f64("cold_s", p.cold_s, 9);
                    o.f64("first_edit_s", p.first_edit_s, 9);
                    o.f64("warm_toggle_s", p.warm_toggle_s, 9);
                });
            }
        });
    });
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_incremental.json");
    std::fs::write(&path, out).expect("write BENCH_incremental.json");
    println!("wrote {}", path.display());
}
