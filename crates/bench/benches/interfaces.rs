//! Interface-model ablation: the classic 3-kind interface model
//! (coupled/decoupled/scratchpad, [`ModelOptions::baseline3`]) against the
//! extended descriptor model (banked and double-buffered scratchpads, line
//! buffers), per corpus kernel, written to `BENCH_interfaces.json`.
//!
//! For every kernel both models run the full Algorithm 1 selection; at the
//! 65%-tile budget the report compares:
//!
//! * **modeled cycles** — the whole-program cycle count after acceleration
//!   (`T_all·F − saved·F`),
//! * **area** — of the budgeted pick,
//! * **front sizes** — Pareto-front cardinality under each model,
//! * **interface mix** — `#C/#D/#S/#LB` of the extended pick, and whether
//!   it actually deploys an extended interface (banked / double-buffered /
//!   line buffer),
//! * **strict improvement** — whether some extended-front point strictly
//!   Pareto-dominates a baseline-front point (≤ area *and* > savings).
//!
//! The acceptance gate (ISSUE 8): at least 5 stencil kernels must deploy a
//! line-buffer or banked interface *and* strictly improve on the 3-kind
//! baseline. `--smoke` restricts the sweep to the stencil suite plus a few
//! non-stencil controls, still asserts the gate, and leaves the tracked
//! JSON untouched.
//!
//! ```text
//! cargo bench -p cayman-bench --bench interfaces            # full corpus, writes JSON
//! cargo bench -p cayman-bench --bench interfaces -- --smoke # CI gate, no JSON
//! ```

use cayman::hls::interface::InterfaceKind;
use cayman::ir::cpu_model::CPU_FREQ_HZ;
use cayman::workloads::Suite;
use cayman::{Framework, ModelOptions, SelectOptions, Solution, CVA6_TILE_AREA};
use cayman_bench::json;
use std::path::Path;

/// Area budget the per-kernel picks are compared at (fraction of the CVA6
/// tile), matching the ablation binary.
const BUDGET: f64 = 0.65;

struct Pick {
    area: f64,
    speedup: f64,
    /// Whole-program cycles after acceleration under this pick.
    modeled_cycles: f64,
}

fn pick(sol: &Solution, total_cycles: u64) -> Pick {
    Pick {
        area: sol.area,
        speedup: sol.speedup(total_cycles),
        modeled_cycles: (total_cycles as f64 - sol.saved_seconds * CPU_FREQ_HZ).max(0.0),
    }
}

/// `true` when some `ext` front point strictly Pareto-dominates a `base`
/// front point: no more area, strictly more savings. The empty solution is
/// on every front, so any extended point with savings beyond the baseline's
/// best-at-its-area qualifies.
fn strictly_improves(ext: &[Solution], base: &[Solution]) -> bool {
    ext.iter().any(|e| {
        base.iter()
            .any(|b| e.area <= b.area && e.saved_seconds > b.saved_seconds)
    })
}

/// `true` when the solution deploys at least one extended interface.
fn uses_extended(sol: &Solution) -> bool {
    sol.kernels.iter().any(|k| {
        k.design.interfaces.iter().any(|(_, s)| {
            matches!(
                s.kind,
                InterfaceKind::BankedScratchpad
                    | InterfaceKind::DoubleBuffered
                    | InterfaceKind::LineBuffer
            )
        })
    })
}

struct Row {
    name: &'static str,
    suite: Suite,
    total_cycles: u64,
    front_base: usize,
    front_ext: usize,
    base: Pick,
    ext: Pick,
    iface: (usize, usize, usize, usize),
    uses_extended: bool,
    strict_improve: bool,
}

fn measure(w: &cayman::workloads::Workload) -> Row {
    let fw = Framework::from_workload(w).expect("corpus kernel analyses");
    let base_sel = fw.select(&SelectOptions {
        model: ModelOptions::baseline3(),
        ..Default::default()
    });
    let ext_sel = fw.select(&SelectOptions::default());
    let total = fw.app.total_cycles();
    let budget = BUDGET * CVA6_TILE_AREA;
    let base_best = base_sel.best_under(budget);
    let ext_best = ext_sel.best_under(budget);
    Row {
        name: w.name,
        suite: w.suite,
        total_cycles: total,
        front_base: base_sel.pareto.len(),
        front_ext: ext_sel.pareto.len(),
        base: pick(base_best, total),
        ext: pick(ext_best, total),
        iface: ext_best.iface_counts(),
        uses_extended: uses_extended(ext_best),
        strict_improve: strictly_improves(&ext_sel.pareto, &base_sel.pareto),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let all = cayman::workloads::full();
    let workloads: Vec<_> = if smoke {
        // The gate lives in the stencil suite; keep a few non-stencil
        // kernels as controls so regressions elsewhere still surface.
        let stencils = all.iter().filter(|w| w.suite == Suite::Stencil);
        let controls = all.iter().filter(|w| w.suite != Suite::Stencil).take(6);
        stencils.chain(controls).collect()
    } else {
        all.iter().collect()
    };

    let rows: Vec<Row> = workloads.iter().map(|w| measure(w)).collect();

    let improved = rows.iter().filter(|r| r.strict_improve).count();
    let extended_deployed = rows.iter().filter(|r| r.uses_extended).count();
    let stencil_wins = rows
        .iter()
        .filter(|r| r.suite == Suite::Stencil && r.uses_extended && r.strict_improve)
        .count();
    println!(
        "# interfaces over {} kernels: {} strictly improved, {} deploy extended interfaces, \
         {} stencil kernels win with line-buffer/banked",
        rows.len(),
        improved,
        extended_deployed,
        stencil_wins,
    );

    // Acceptance gate: the extended model must pay off on the stencil suite.
    assert!(
        stencil_wins >= 5,
        "only {stencil_wins} stencil kernels deploy an extended interface with a strict \
         Pareto improvement (need >= 5)"
    );
    // Baseline configurations are a subset of the extended enumeration, so
    // the extended model can essentially never be worse — but not *exactly*
    // never: Algorithm 1's α-spacing filter thins denser fronts, so adding
    // extended points near a baseline point can evict it from the filtered
    // front and nudge the budgeted pick. Allow that filtering artifact (≤1%)
    // and nothing more.
    for r in &rows {
        assert!(
            r.ext.speedup >= r.base.speedup * 0.99,
            "{}: extended pick ({:.4}x) worse than 3-kind baseline ({:.4}x) beyond the \
             alpha-spacing tolerance",
            r.name,
            r.ext.speedup,
            r.base.speedup
        );
    }

    if smoke {
        println!(
            "smoke mode: stencil gate holds, extended never worse; \
             BENCH_interfaces.json left untouched"
        );
        return;
    }

    let out = json::document(|o| {
        o.str("bench", "interfaces");
        o.str(
            "note",
            "3-kind interface baseline vs extended descriptor model; picks compared at the \
             65%-tile budget; modeled_cycles = whole-program cycles after acceleration; \
             strict_improve = some extended front point Pareto-dominates a baseline point",
        );
        o.f64("budget", BUDGET, 2);
        o.u64("kernels", rows.len() as u64);
        o.u64("strictly_improved", improved as u64);
        o.u64("extended_deployed", extended_deployed as u64);
        o.u64("stencil_wins", stencil_wins as u64);
        o.arr("rows", |a| {
            for r in &rows {
                a.obj(|o| {
                    o.str("name", r.name);
                    o.str("suite", &r.suite.to_string());
                    o.u64("total_cycles", r.total_cycles);
                    o.u64("front_base", r.front_base as u64);
                    o.u64("front_ext", r.front_ext as u64);
                    o.obj("base", |o| {
                        o.f64("area", r.base.area, 1);
                        o.f64("speedup", r.base.speedup, 4);
                        o.f64("modeled_cycles", r.base.modeled_cycles, 0);
                    });
                    o.obj("ext", |o| {
                        o.f64("area", r.ext.area, 1);
                        o.f64("speedup", r.ext.speedup, 4);
                        o.f64("modeled_cycles", r.ext.modeled_cycles, 0);
                    });
                    let (c, d, s, lb) = r.iface;
                    o.obj("ifaces", |o| {
                        o.u64("coupled", c as u64);
                        o.u64("decoupled", d as u64);
                        o.u64("scratchpad", s as u64);
                        o.u64("line_buffer", lb as u64);
                    });
                    o.bool("uses_extended", r.uses_extended);
                    o.bool("strict_improve", r.strict_improve);
                });
            }
        });
    });
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_interfaces.json");
    std::fs::write(&path, out).expect("write BENCH_interfaces.json");
    println!("wrote {}", path.display());
}
