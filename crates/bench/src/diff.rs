//! Differential checking of one IR module across the full pipeline.
//!
//! This is the shared core of the `fuzz` binary and the root-crate
//! `pipeline_fuzz` property test: a module (typically from
//! `testkit::program`) is pushed through every crossed configuration the
//! repo supports, and any divergence is reported as a [`DiffFailure`]
//! naming the stage and the mismatching observable.
//!
//! The crossed surfaces, and what must be *bit-identical* on each:
//!
//! 1. **decoded vs reference interpreter** — dynamic block counts, total
//!    cycles, return-value bits, final memory cells; or, for trapping
//!    programs, the exact same error message.
//! 2. **`-O0` vs `-O1` normalization** — return-value bits and final memory
//!    cells (counts and cycles legitimately change; observables must not).
//! 3. **static vs work-steal scheduler × {2, 3, 8} threads** — the selection
//!    Pareto front (area and saved-seconds bits per solution), the visited
//!    vertex count, and the merged best solution's area accounting.
//! 4. **`-O1` vs `-O2` staging** — the `-O2` application executes the
//!    `-O1` body (the extra canonicalization lives in analysis shadows), so
//!    the executed module text, region profile and return value must be
//!    bit-identical; and whenever the shadows are no-ops (same content
//!    fingerprints) the full selection Pareto front must match bit for bit.
//! 5. **incremental vs from-scratch re-analysis** ([`check_incremental`]) —
//!    after every seeded single-instruction edit, the [`IncrementalApp`]
//!    query pipeline must reproduce the from-scratch Pareto front, region
//!    profile and merge accounting bit for bit. (The visited-vertex count is
//!    deliberately *not* compared here: cached subtree fronts legitimately
//!    skip visits.)

use cayman::ir::interp::{Interp, Memory, Value};
use cayman::ir::transform::{normalize, OptLevel};
use cayman::ir::Module;
use cayman::merging::merge_solution;
use cayman::select::run_selection;
use cayman::{
    AnalyseOptions, Application, Edit, Framework, IncrementalApp, SchedKind, SelectOptions,
};
use std::fmt;

/// Runaway guard: generated programs terminate by construction, so the
/// limit only exists to convert a harness bug into a clean failure.
const STEP_LIMIT: u64 = 50_000_000;

/// The first divergence found for a module, with enough context to debug it
/// once the caller attaches the kernel text.
#[derive(Debug)]
pub struct DiffFailure {
    /// Which differential surface diverged.
    pub stage: &'static str,
    /// What diverged, with both sides.
    pub detail: String,
}

impl fmt::Display for DiffFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.stage, self.detail)
    }
}

impl std::error::Error for DiffFailure {}

fn fail(stage: &'static str, detail: impl Into<String>) -> Result<(), DiffFailure> {
    Err(DiffFailure {
        stage,
        detail: detail.into(),
    })
}

fn values_bit_equal(a: &Option<Value>, b: &Option<Value>) -> bool {
    match (a, b) {
        (Some(Value::F(x)), Some(Value::F(y))) => x.to_bits() == y.to_bits(),
        (x, y) => x == y,
    }
}

fn cells_bit_equal(a: &[Value], b: &[Value]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| match (x, y) {
            (Value::F(x), Value::F(y)) => x.to_bits() == y.to_bits(),
            (x, y) => x == y,
        })
}

/// Runs every differential surface over `m`.
///
/// Returns `Ok(true)` when the module executed cleanly and all surfaces
/// were compared, `Ok(false)` when the module traps identically under both
/// interpreters (the remaining surfaces need a clean profile and are
/// skipped), and the first [`DiffFailure`] otherwise.
///
/// # Errors
///
/// Any observable divergence between two configurations that must agree.
pub fn check_module(m: &Module) -> Result<bool, DiffFailure> {
    if let Err(e) = m.verify() {
        fail("verify", format!("generated module does not verify: {e}"))?;
    }

    // Surface 1: decoded vs reference interpreter on the raw module.
    let mut dec = Interp::new(m).with_step_limit(STEP_LIMIT);
    let dec_out = dec.run(&[]);
    let mut refi = Interp::reference(m).with_step_limit(STEP_LIMIT);
    let ref_out = refi.run(&[]);
    match (&dec_out, &ref_out) {
        (Err(de), Err(re)) => {
            if de.to_string() != re.to_string() {
                fail(
                    "decoded-vs-reference",
                    format!("error messages diverge:\n  decoded:   {de}\n  reference: {re}"),
                )?;
            }
            // Identical trap on both engines: nothing further to compare —
            // the pipeline (rightly) refuses trapping programs.
            return Ok(false);
        }
        (Ok(_), Err(re)) => fail(
            "decoded-vs-reference",
            format!("decoded runs clean but reference traps: {re}"),
        )?,
        (Err(de), Ok(_)) => fail(
            "decoded-vs-reference",
            format!("reference runs clean but decoded traps: {de}"),
        )?,
        (Ok(_), Ok(_)) => {}
    }
    let (dp, rp) = (dec_out.unwrap(), ref_out.unwrap());
    if dp.block_counts != rp.block_counts {
        fail("decoded-vs-reference", "dynamic block counts diverge")?;
    }
    if dp.total_cycles != rp.total_cycles {
        fail(
            "decoded-vs-reference",
            format!("cycles diverge: {} vs {}", dp.total_cycles, rp.total_cycles),
        )?;
    }
    if !values_bit_equal(&dp.return_value, &rp.return_value) {
        fail(
            "decoded-vs-reference",
            format!(
                "return values diverge: {:?} vs {:?}",
                dp.return_value, rp.return_value
            ),
        )?;
    }
    if !cells_bit_equal(dec.memory.cells(), refi.memory.cells()) {
        fail("decoded-vs-reference", "final memory images diverge")?;
    }

    // Surface 2: -O0 vs -O1 observables.
    let mut opt_module = m.clone();
    match normalize(&mut opt_module, OptLevel::O1, true) {
        Ok(_) => {}
        Err(e) => fail("o0-vs-o1", format!("normalization broke the module: {e}"))?,
    }
    let mut opt = Interp::new(&opt_module).with_step_limit(STEP_LIMIT);
    match opt.run(&[]) {
        Err(e) => fail(
            "o0-vs-o1",
            format!("-O0 runs clean but the -O1 module traps: {e}"),
        )?,
        Ok(op) => {
            if !values_bit_equal(&dp.return_value, &op.return_value) {
                fail(
                    "o0-vs-o1",
                    format!(
                        "return values diverge: {:?} vs {:?}",
                        dp.return_value, op.return_value
                    ),
                )?;
            }
            if !cells_bit_equal(dec.memory.cells(), opt.memory.cells()) {
                fail("o0-vs-o1", "final memory images diverge")?;
            }
        }
    }

    // Surface 3: scheduler × thread cross on selection and merging.
    let fw = match Framework::from_module(m.clone()) {
        Ok(fw) => fw,
        Err(e) => {
            fail("select", format!("pipeline front-end failed: {e}"))?;
            unreachable!()
        }
    };
    let reference = fw.select(&SelectOptions::default());
    if reference.pareto.is_empty() {
        fail("select", "selection produced an empty Pareto front")?;
    }
    let ref_merge = fw.merge(reference.best_under(f64::INFINITY));

    // Surface 4: -O1 vs -O2 staging, end to end.
    let fw2 = match Framework::from_module_with(m.clone(), &AnalyseOptions::o2()) {
        Ok(fw2) => fw2,
        Err(e) => {
            fail("o1-vs-o2", format!("-O2 pipeline front-end failed: {e}"))?;
            unreachable!()
        }
    };
    if fw.app.module.to_text() != fw2.app.module.to_text() {
        fail("o1-vs-o2", "-O2 executed module is not the -O1 body")?;
    }
    if fw.app.profile.block_counts != fw2.app.profile.block_counts {
        fail("o1-vs-o2", "region-profile block counts diverge")?;
    }
    if fw.app.profile.total_cycles != fw2.app.profile.total_cycles {
        fail(
            "o1-vs-o2",
            format!(
                "total cycles diverge: {} vs {}",
                fw.app.profile.total_cycles, fw2.app.profile.total_cycles
            ),
        )?;
    }
    if !values_bit_equal(&fw.app.exec.return_value, &fw2.app.exec.return_value) {
        fail(
            "o1-vs-o2",
            format!(
                "return values diverge: {:?} vs {:?}",
                fw.app.exec.return_value, fw2.app.exec.return_value
            ),
        )?;
    }
    let o2_sel = fw2.select(&SelectOptions::default());
    if o2_sel.pareto.is_empty() {
        fail("o1-vs-o2", "-O2 selection produced an empty Pareto front")?;
    }
    if fw.app.content_fps == fw2.app.content_fps {
        // No function's shadow changed anything: the analysis facts are the
        // same, so selection must land on the exact same front.
        if let Some(msg) = front_mismatch("noop-shadow", &o2_sel.pareto, &reference.pareto) {
            fail("o1-vs-o2", msg)?;
        }
    }
    for sched in [SchedKind::Static, SchedKind::WorkSteal] {
        for threads in [2usize, 3, 8] {
            let opts = SelectOptions {
                threads,
                sched,
                ..SelectOptions::default()
            };
            let res = fw.select(&opts);
            let cfg = format!("{sched:?}×{threads}");
            if res.pareto.len() != reference.pareto.len() {
                fail(
                    "select-cross",
                    format!(
                        "{cfg}: front size {} vs reference {}",
                        res.pareto.len(),
                        reference.pareto.len()
                    ),
                )?;
            }
            for (i, (a, b)) in res.pareto.iter().zip(&reference.pareto).enumerate() {
                if a.area.to_bits() != b.area.to_bits()
                    || a.saved_seconds.to_bits() != b.saved_seconds.to_bits()
                    || a.kernels.len() != b.kernels.len()
                {
                    fail(
                        "select-cross",
                        format!(
                            "{cfg}: front entry {i} diverges: \
                             (area {}, saved {}, kernels {}) vs (area {}, saved {}, kernels {})",
                            a.area,
                            a.saved_seconds,
                            a.kernels.len(),
                            b.area,
                            b.saved_seconds,
                            b.kernels.len()
                        ),
                    )?;
                }
            }
            if res.visited != reference.visited {
                fail(
                    "select-cross",
                    format!(
                        "{cfg}: visited {} vs reference {}",
                        res.visited, reference.visited
                    ),
                )?;
            }
            let merged = fw.merge(res.best_under(f64::INFINITY));
            if merged.area_before.to_bits() != ref_merge.area_before.to_bits()
                || merged.area_after.to_bits() != ref_merge.area_after.to_bits()
                || merged.merges != ref_merge.merges
                || merged.reusable.len() != ref_merge.reusable.len()
                || merged.units.len() != ref_merge.units.len()
            {
                fail(
                    "merge-cross",
                    format!(
                        "{cfg}: merged solution diverges: \
                         (before {}, after {}, merges {}, reusable {}, units {}) vs \
                         (before {}, after {}, merges {}, reusable {}, units {})",
                        merged.area_before,
                        merged.area_after,
                        merged.merges,
                        merged.reusable.len(),
                        merged.units.len(),
                        ref_merge.area_before,
                        ref_merge.area_after,
                        ref_merge.merges,
                        ref_merge.reusable.len(),
                        ref_merge.units.len()
                    ),
                )?;
            }
        }
    }
    Ok(true)
}

/// Builds a single-instruction [`Edit`]: nudge one float immediate in one
/// value position (binary/unary operand, select arm, stored value, phi
/// incoming, call argument — `pick` chooses the site). Float immediates in
/// those slots never feed address computations or integer loop bounds, so
/// the edited module stays verifiable and terminates exactly like the
/// original — only the computed values (and possibly value-dependent
/// branches) change.
///
/// Returns `None` when the module has no float-immediate site to edit.
pub fn single_instr_edit(m: &Module, pick: u64) -> Option<Edit> {
    use cayman::ir::instr::{Imm, Instr, Operand};

    // The value-only operand slots of an instruction — never pointers,
    // indices or conditions, so a float nudge cannot break verification.
    fn value_slots(instr: &mut Instr) -> Vec<&mut Operand> {
        match instr {
            Instr::Binary { lhs, rhs, .. } => vec![lhs, rhs],
            Instr::Unary { val, .. } => vec![val],
            Instr::Select {
                then_val, else_val, ..
            } => vec![then_val, else_val],
            Instr::Store { value, .. } => vec![value],
            Instr::Phi { incomings, .. } => incomings.iter_mut().map(|(_, v)| v).collect(),
            Instr::Call { args, .. } => args.iter_mut().collect(),
            _ => Vec::new(),
        }
    }

    let mut sites: Vec<(usize, usize, usize)> = Vec::new();
    for (fi, func) in m.functions.iter().enumerate() {
        let mut probe = func.clone();
        for (ii, instr) in probe.instrs.iter_mut().enumerate() {
            for (oi, op) in value_slots(instr).into_iter().enumerate() {
                if matches!(op, Operand::Const(Imm::Float(_))) {
                    sites.push((fi, ii, oi));
                }
            }
        }
    }
    if sites.is_empty() {
        return None;
    }
    let (fi, ii, oi) = sites[(pick % sites.len() as u64) as usize];
    let mut body = m.functions[fi].clone();
    if let Operand::Const(Imm::Float(v)) = *value_slots(&mut body.instrs[ii])[oi] {
        *value_slots(&mut body.instrs[ii])[oi] = Operand::float(v + 0.5);
    }
    Some(Edit::ReplaceFunction {
        func: cayman::ir::FuncId(fi as u32),
        body,
    })
}

/// Applies `edit` to a plain module the way [`IncrementalApp::apply`] would
/// (the reference side of the differential).
fn apply_to_module(m: &mut Module, edit: &Edit) {
    match edit {
        Edit::ReplaceFunction { func, body } => m.functions[func.index()] = body.clone(),
        _ => unreachable!("the differential only generates ReplaceFunction edits"),
    }
}

fn front_mismatch(cfg: &str, a: &[cayman::Solution], b: &[cayman::Solution]) -> Option<String> {
    if a.len() != b.len() {
        return Some(format!(
            "{cfg}: front size {} vs fresh {}",
            a.len(),
            b.len()
        ));
    }
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        if x.area.to_bits() != y.area.to_bits()
            || x.saved_seconds.to_bits() != y.saved_seconds.to_bits()
            || x.kernels.len() != y.kernels.len()
            || !x
                .kernels
                .iter()
                .zip(&y.kernels)
                .all(|(k, l)| k.node == l.node && k.design.blocks == l.design.blocks)
        {
            return Some(format!(
                "{cfg}: front entry {i} diverges: (area {}, saved {}, kernels {}) vs \
                 (area {}, saved {}, kernels {})",
                x.area,
                x.saved_seconds,
                x.kernels.len(),
                y.area,
                y.saved_seconds,
                y.kernels.len()
            ));
        }
    }
    None
}

/// Differential surface 4: incremental re-analysis vs from-scratch.
///
/// Drives `edits` seeded single-instruction edits (interleaved with
/// occasional reverts, the salsa-style "change it back" path) through one
/// [`IncrementalApp`] and, after every step, re-analyses the edited module
/// from scratch. The incremental result must be **bit-identical** at every
/// step: the selection Pareto front (area/saved-seconds bits, kernel node
/// ids and block sets), the region profile (block counts and total cycles),
/// and the merged best solution's area accounting.
///
/// Returns `Ok(false)` when the starting module traps under profiling (both
/// paths must then fail identically), `Ok(true)` otherwise.
///
/// # Errors
///
/// Any divergence between the incremental and from-scratch pipelines.
pub fn check_incremental(
    m: &Module,
    memory: Option<Memory>,
    seed: u64,
    edits: usize,
) -> Result<bool, DiffFailure> {
    let mut rng = cayman_testkit::Rng::new(seed ^ 0x1CAE);
    let opts = AnalyseOptions::default();
    let sel_opts = SelectOptions::default();
    let mut inc = IncrementalApp::new(m.clone(), memory.clone(), opts.clone());
    let mut reference = m.clone();

    for step in 0..=edits {
        if step > 0 {
            // Revert ~every fourth edit to the original body of a random
            // function (the cache-warm green path); otherwise nudge a float
            // immediate somewhere.
            let edit = if rng.range_usize(0, 3) == 0 {
                let fi = rng.range_usize(0, m.functions.len());
                Edit::ReplaceFunction {
                    func: cayman::ir::FuncId(fi as u32),
                    body: m.functions[fi].clone(),
                }
            } else {
                match single_instr_edit(&reference, rng.next_u64()) {
                    Some(e) => e,
                    // No float immediate anywhere: re-apply a function's own
                    // body (a content no-op that must still hit every cache).
                    None => Edit::ReplaceFunction {
                        func: cayman::ir::FuncId(0),
                        body: reference.functions[0].clone(),
                    },
                }
            };
            apply_to_module(&mut reference, &edit);
            if let Err(e) = inc.apply(edit) {
                fail("incremental", format!("step {step}: apply failed: {e}"))?;
            }
        }

        let fresh = Application::analyse_with(reference.clone(), memory.clone(), &opts);
        let inc_sel = inc.select(&sel_opts);
        let fresh_app = match (fresh, &inc_sel) {
            (Err(fe), Err(ie)) => {
                if fe.to_string() != ie.to_string() {
                    fail(
                        "incremental",
                        format!(
                            "step {step}: error messages diverge:\n  fresh:       {fe}\n  \
                             incremental: {ie}"
                        ),
                    )?;
                }
                return Ok(false);
            }
            (Ok(_), Err(ie)) => {
                fail(
                    "incremental",
                    format!("step {step}: fresh analyses but incremental fails: {ie}"),
                )?;
                unreachable!()
            }
            (Err(fe), Ok(_)) => {
                fail(
                    "incremental",
                    format!("step {step}: incremental analyses but fresh fails: {fe}"),
                )?;
                unreachable!()
            }
            (Ok(app), Ok(_)) => app,
        };
        let inc_sel = inc_sel.unwrap();
        let inc_app = inc.analyse().expect("selection already analysed");

        if fresh_app.profile.block_counts != inc_app.profile.block_counts {
            fail(
                "incremental",
                format!("step {step}: region-profile block counts diverge"),
            )?;
        }
        if fresh_app.profile.total_cycles != inc_app.profile.total_cycles {
            fail(
                "incremental",
                format!(
                    "step {step}: total cycles diverge: {} vs {}",
                    fresh_app.profile.total_cycles, inc_app.profile.total_cycles
                ),
            )?;
        }

        let fresh_inputs = fresh_app.inputs();
        let fresh_sel = run_selection(
            &fresh_app.module,
            &fresh_app.wpst,
            &fresh_app.profile,
            &fresh_inputs,
            &sel_opts,
        );
        if let Some(msg) =
            front_mismatch(&format!("step {step}"), &inc_sel.pareto, &fresh_sel.pareto)
        {
            fail("incremental", msg)?;
        }

        let fresh_merge = merge_solution(&fresh_app.module, fresh_sel.best_under(f64::INFINITY));
        let inc_merge = merge_solution(&inc_app.module, inc_sel.best_under(f64::INFINITY));
        if fresh_merge.area_before.to_bits() != inc_merge.area_before.to_bits()
            || fresh_merge.area_after.to_bits() != inc_merge.area_after.to_bits()
            || fresh_merge.merges != inc_merge.merges
            || fresh_merge.reusable.len() != inc_merge.reusable.len()
            || fresh_merge.units.len() != inc_merge.units.len()
        {
            fail(
                "incremental",
                format!(
                    "step {step}: merge accounting diverges: \
                     (before {}, after {}, merges {}, reusable {}, units {}) vs \
                     (before {}, after {}, merges {}, reusable {}, units {})",
                    inc_merge.area_before,
                    inc_merge.area_after,
                    inc_merge.merges,
                    inc_merge.reusable.len(),
                    inc_merge.units.len(),
                    fresh_merge.area_before,
                    fresh_merge.area_after,
                    fresh_merge.merges,
                    fresh_merge.reusable.len(),
                    fresh_merge.units.len()
                ),
            )?;
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cayman_testkit::program::arbitrary_module;
    use cayman_testkit::Rng;

    #[test]
    fn a_known_benchmark_passes_all_surfaces() {
        let w = cayman::workloads::by_name("atax").expect("atax exists");
        assert!(check_module(&w.module).expect("no divergence"));
    }

    #[test]
    fn incremental_matches_fresh_on_a_benchmark_and_generated_programs() {
        let w = cayman::workloads::by_name("bicg").expect("bicg exists");
        assert!(
            check_incremental(&w.module, Some(w.memory()), 7, 3).expect("no divergence"),
            "bicg profiles cleanly"
        );
        for seed in [3u64, 11] {
            let m = arbitrary_module(&mut Rng::new(seed));
            check_incremental(&m, None, seed, 3).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn generated_programs_pass_and_verdicts_are_deterministic() {
        for seed in [1u64, 7, 42] {
            let m = arbitrary_module(&mut Rng::new(seed));
            let a = check_module(&m).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            let b = check_module(&m).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert_eq!(a, b, "verdict changed between identical runs");
        }
    }
}
