//! Differential checking of one IR module across the full pipeline.
//!
//! This is the shared core of the `fuzz` binary and the root-crate
//! `pipeline_fuzz` property test: a module (typically from
//! `testkit::program`) is pushed through every crossed configuration the
//! repo supports, and any divergence is reported as a [`DiffFailure`]
//! naming the stage and the mismatching observable.
//!
//! The crossed surfaces, and what must be *bit-identical* on each:
//!
//! 1. **decoded vs reference interpreter** — dynamic block counts, total
//!    cycles, return-value bits, final memory cells; or, for trapping
//!    programs, the exact same error message.
//! 2. **`-O0` vs `-O1` normalization** — return-value bits and final memory
//!    cells (counts and cycles legitimately change; observables must not).
//! 3. **static vs work-steal scheduler × {2, 3, 8} threads** — the selection
//!    Pareto front (area and saved-seconds bits per solution), the visited
//!    vertex count, and the merged best solution's area accounting.

use cayman::ir::interp::{Interp, Value};
use cayman::ir::transform::{normalize, OptLevel};
use cayman::ir::Module;
use cayman::{Framework, SchedKind, SelectOptions};
use std::fmt;

/// Runaway guard: generated programs terminate by construction, so the
/// limit only exists to convert a harness bug into a clean failure.
const STEP_LIMIT: u64 = 50_000_000;

/// The first divergence found for a module, with enough context to debug it
/// once the caller attaches the kernel text.
#[derive(Debug)]
pub struct DiffFailure {
    /// Which differential surface diverged.
    pub stage: &'static str,
    /// What diverged, with both sides.
    pub detail: String,
}

impl fmt::Display for DiffFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.stage, self.detail)
    }
}

impl std::error::Error for DiffFailure {}

fn fail(stage: &'static str, detail: impl Into<String>) -> Result<(), DiffFailure> {
    Err(DiffFailure {
        stage,
        detail: detail.into(),
    })
}

fn values_bit_equal(a: &Option<Value>, b: &Option<Value>) -> bool {
    match (a, b) {
        (Some(Value::F(x)), Some(Value::F(y))) => x.to_bits() == y.to_bits(),
        (x, y) => x == y,
    }
}

fn cells_bit_equal(a: &[Value], b: &[Value]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| match (x, y) {
            (Value::F(x), Value::F(y)) => x.to_bits() == y.to_bits(),
            (x, y) => x == y,
        })
}

/// Runs every differential surface over `m`.
///
/// Returns `Ok(true)` when the module executed cleanly and all surfaces
/// were compared, `Ok(false)` when the module traps identically under both
/// interpreters (the remaining surfaces need a clean profile and are
/// skipped), and the first [`DiffFailure`] otherwise.
///
/// # Errors
///
/// Any observable divergence between two configurations that must agree.
pub fn check_module(m: &Module) -> Result<bool, DiffFailure> {
    if let Err(e) = m.verify() {
        fail("verify", format!("generated module does not verify: {e}"))?;
    }

    // Surface 1: decoded vs reference interpreter on the raw module.
    let mut dec = Interp::new(m).with_step_limit(STEP_LIMIT);
    let dec_out = dec.run(&[]);
    let mut refi = Interp::reference(m).with_step_limit(STEP_LIMIT);
    let ref_out = refi.run(&[]);
    match (&dec_out, &ref_out) {
        (Err(de), Err(re)) => {
            if de.to_string() != re.to_string() {
                fail(
                    "decoded-vs-reference",
                    format!("error messages diverge:\n  decoded:   {de}\n  reference: {re}"),
                )?;
            }
            // Identical trap on both engines: nothing further to compare —
            // the pipeline (rightly) refuses trapping programs.
            return Ok(false);
        }
        (Ok(_), Err(re)) => fail(
            "decoded-vs-reference",
            format!("decoded runs clean but reference traps: {re}"),
        )?,
        (Err(de), Ok(_)) => fail(
            "decoded-vs-reference",
            format!("reference runs clean but decoded traps: {de}"),
        )?,
        (Ok(_), Ok(_)) => {}
    }
    let (dp, rp) = (dec_out.unwrap(), ref_out.unwrap());
    if dp.block_counts != rp.block_counts {
        fail("decoded-vs-reference", "dynamic block counts diverge")?;
    }
    if dp.total_cycles != rp.total_cycles {
        fail(
            "decoded-vs-reference",
            format!("cycles diverge: {} vs {}", dp.total_cycles, rp.total_cycles),
        )?;
    }
    if !values_bit_equal(&dp.return_value, &rp.return_value) {
        fail(
            "decoded-vs-reference",
            format!(
                "return values diverge: {:?} vs {:?}",
                dp.return_value, rp.return_value
            ),
        )?;
    }
    if !cells_bit_equal(dec.memory.cells(), refi.memory.cells()) {
        fail("decoded-vs-reference", "final memory images diverge")?;
    }

    // Surface 2: -O0 vs -O1 observables.
    let mut opt_module = m.clone();
    match normalize(&mut opt_module, OptLevel::O1, true) {
        Ok(_) => {}
        Err(e) => fail("o0-vs-o1", format!("normalization broke the module: {e}"))?,
    }
    let mut opt = Interp::new(&opt_module).with_step_limit(STEP_LIMIT);
    match opt.run(&[]) {
        Err(e) => fail(
            "o0-vs-o1",
            format!("-O0 runs clean but the -O1 module traps: {e}"),
        )?,
        Ok(op) => {
            if !values_bit_equal(&dp.return_value, &op.return_value) {
                fail(
                    "o0-vs-o1",
                    format!(
                        "return values diverge: {:?} vs {:?}",
                        dp.return_value, op.return_value
                    ),
                )?;
            }
            if !cells_bit_equal(dec.memory.cells(), opt.memory.cells()) {
                fail("o0-vs-o1", "final memory images diverge")?;
            }
        }
    }

    // Surface 3: scheduler × thread cross on selection and merging.
    let fw = match Framework::from_module(m.clone()) {
        Ok(fw) => fw,
        Err(e) => {
            fail("select", format!("pipeline front-end failed: {e}"))?;
            unreachable!()
        }
    };
    let reference = fw.select(&SelectOptions::default());
    if reference.pareto.is_empty() {
        fail("select", "selection produced an empty Pareto front")?;
    }
    let ref_merge = fw.merge(reference.best_under(f64::INFINITY));
    for sched in [SchedKind::Static, SchedKind::WorkSteal] {
        for threads in [2usize, 3, 8] {
            let opts = SelectOptions {
                threads,
                sched,
                ..SelectOptions::default()
            };
            let res = fw.select(&opts);
            let cfg = format!("{sched:?}×{threads}");
            if res.pareto.len() != reference.pareto.len() {
                fail(
                    "select-cross",
                    format!(
                        "{cfg}: front size {} vs reference {}",
                        res.pareto.len(),
                        reference.pareto.len()
                    ),
                )?;
            }
            for (i, (a, b)) in res.pareto.iter().zip(&reference.pareto).enumerate() {
                if a.area.to_bits() != b.area.to_bits()
                    || a.saved_seconds.to_bits() != b.saved_seconds.to_bits()
                    || a.kernels.len() != b.kernels.len()
                {
                    fail(
                        "select-cross",
                        format!(
                            "{cfg}: front entry {i} diverges: \
                             (area {}, saved {}, kernels {}) vs (area {}, saved {}, kernels {})",
                            a.area,
                            a.saved_seconds,
                            a.kernels.len(),
                            b.area,
                            b.saved_seconds,
                            b.kernels.len()
                        ),
                    )?;
                }
            }
            if res.visited != reference.visited {
                fail(
                    "select-cross",
                    format!(
                        "{cfg}: visited {} vs reference {}",
                        res.visited, reference.visited
                    ),
                )?;
            }
            let merged = fw.merge(res.best_under(f64::INFINITY));
            if merged.area_before.to_bits() != ref_merge.area_before.to_bits()
                || merged.area_after.to_bits() != ref_merge.area_after.to_bits()
                || merged.merges != ref_merge.merges
                || merged.reusable.len() != ref_merge.reusable.len()
                || merged.units.len() != ref_merge.units.len()
            {
                fail(
                    "merge-cross",
                    format!(
                        "{cfg}: merged solution diverges: \
                         (before {}, after {}, merges {}, reusable {}, units {}) vs \
                         (before {}, after {}, merges {}, reusable {}, units {})",
                        merged.area_before,
                        merged.area_after,
                        merged.merges,
                        merged.reusable.len(),
                        merged.units.len(),
                        ref_merge.area_before,
                        ref_merge.area_after,
                        ref_merge.merges,
                        ref_merge.reusable.len(),
                        ref_merge.units.len()
                    ),
                )?;
            }
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cayman_testkit::program::arbitrary_module;
    use cayman_testkit::Rng;

    #[test]
    fn a_known_benchmark_passes_all_surfaces() {
        let w = cayman::workloads::by_name("atax").expect("atax exists");
        assert!(check_module(&w.module).expect("no divergence"));
    }

    #[test]
    fn generated_programs_pass_and_verdicts_are_deterministic() {
        for seed in [1u64, 7, 42] {
            let m = arbitrary_module(&mut Rng::new(seed));
            let a = check_module(&m).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            let b = check_module(&m).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert_eq!(a, b, "verdict changed between identical runs");
        }
    }
}
