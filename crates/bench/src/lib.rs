//! Shared machinery for the table/figure regeneration binaries.
//!
//! Every table and figure of the paper's evaluation (§IV) has a binary in
//! `src/bin/` that regenerates it:
//!
//! * `table2` — Table II (speedups over NOVIA/QsCores at 25%/65% budgets,
//!   #SB/#PR, #C/#D/#S/#LB, merging area savings, selection runtime),
//! * `fig4`  — Fig. 4 (interface impact on sequential/pipelined/unrolled
//!   loop latency),
//! * `fig6`  — Fig. 6 (Pareto fronts for NOVIA, QsCores, coupled-only
//!   Cayman and full Cayman on four benchmarks).
//!
//! `Instant`-based benches in `benches/` (see [`harness`]) cover selection
//! scaling (the α-filter complexity claim) and the accelerator-model hot
//! paths — no external benchmark framework, so everything builds offline.

use cayman::workloads::Workload;
use cayman::{
    AnalyseOptions, CacheStats, Framework, ModelOptions, OptLevel, SelectOptions, SelectStats,
    CVA6_TILE_AREA,
};
use cayman_store::DiskStore;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

pub mod diff;
pub mod harness;
pub mod json;

/// Parses the shared bench-binary CLI: an optional `-O0` / `-O1` flag
/// (default `-O1`, matching [`AnalyseOptions::default`]). Any other
/// argument prints usage and exits.
pub fn analyse_options_from_args() -> AnalyseOptions {
    let mut opts = AnalyseOptions::default();
    for arg in std::env::args().skip(1) {
        match OptLevel::parse(&arg) {
            Some(level) => opts.opt_level = level,
            None => {
                eprintln!("unknown argument `{arg}`; usage: [-O0|-O1|-O2] (default -O1)");
                std::process::exit(2);
            }
        }
    }
    opts
}

/// The shared CLI of the table-producing binaries (`table2`, `optstats`,
/// `ablation`): `-O0`/`-O1` staging, a `--json` switch for machine-readable
/// output (via [`json`]), and positional benchmark-name filters.
#[derive(Debug, Clone, Default)]
pub struct BenchArgs {
    /// Analyse staging options (`-O0` / `-O1`).
    pub analyse: AnalyseOptions,
    /// Emit one JSON document on stdout instead of the human tables.
    pub json: bool,
    /// Include the text-kernel corpus (`workloads::full()`) alongside the
    /// 28 builder benchmarks.
    pub corpus: bool,
    /// Benchmark names to restrict the run to (empty: all).
    pub filters: Vec<String>,
}

impl BenchArgs {
    /// Parses `std::env::args`; prints usage and exits on unknown flags.
    pub fn parse() -> Self {
        let mut args = BenchArgs::default();
        for arg in std::env::args().skip(1) {
            if let Some(level) = OptLevel::parse(&arg) {
                args.analyse.opt_level = level;
            } else if arg == "--json" {
                args.json = true;
            } else if arg == "--corpus" {
                args.corpus = true;
            } else if arg.starts_with('-') {
                eprintln!(
                    "unknown argument `{arg}`; usage: [-O0|-O1|-O2] [--json] [--corpus] [benchmark...]"
                );
                std::process::exit(2);
            } else {
                args.filters.push(arg);
            }
        }
        args
    }

    /// The workload set this run profiles: the 28 builder benchmarks, plus
    /// the text-kernel corpus when `--corpus` was passed.
    pub fn workload_set(&self) -> Vec<Workload> {
        if self.corpus {
            cayman::workloads::full()
        } else {
            cayman::workloads::all()
        }
    }

    /// Applies the positional benchmark-name filters to a workload list,
    /// preserving order. Exits with usage status when a filter matches no
    /// workload (a typo should not silently produce an empty table).
    pub fn select_workloads(&self, all: Vec<Workload>) -> Vec<Workload> {
        if self.filters.is_empty() {
            return all;
        }
        for f in &self.filters {
            if !all.iter().any(|w| w.name == f.as_str()) {
                eprintln!("unknown benchmark `{f}`");
                std::process::exit(2);
            }
        }
        all.into_iter()
            .filter(|w| self.filters.iter().any(|f| f.as_str() == w.name))
            .collect()
    }

    /// Keeps only names that pass the filters (for binaries with a built-in
    /// benchmark pick list).
    pub fn select_names(&self, names: &[&'static str]) -> Vec<&'static str> {
        if self.filters.is_empty() {
            return names.to_vec();
        }
        for f in &self.filters {
            if !names.contains(&f.as_str()) {
                eprintln!("unknown benchmark `{f}` (choices: {})", names.join(", "));
                std::process::exit(2);
            }
        }
        names
            .iter()
            .copied()
            .filter(|n| self.filters.iter().any(|f| f.as_str() == *n))
            .collect()
    }
}

/// Drains the trace recorder into the sinks named by the environment
/// (`CAYMAN_TRACE`, `CAYMAN_OBS_JSONL`, `CAYMAN_OBS_SUMMARY`) and reports
/// every written file on stderr — stdout stays machine-readable under
/// `--json`. Every bench binary calls this once before exiting.
pub fn flush_obs_outputs() {
    for (kind, path) in cayman_obs::flush_to_env() {
        eprintln!("{kind}: wrote {path}");
    }
}

/// The process-wide persistent design store named by `CAYMAN_STORE_DIR`,
/// opened once and shared by every framework this process builds — `None`
/// when the variable is unset. An unusable directory is reported once on
/// stderr and treated as unset (the store is an optimisation layer; a bad
/// path must not take a table run down).
pub fn env_design_store() -> Option<Arc<DiskStore>> {
    static STORE: OnceLock<Option<Arc<DiskStore>>> = OnceLock::new();
    STORE
        .get_or_init(|| match DiskStore::from_env() {
            Some(Ok(store)) => Some(Arc::new(store)),
            Some(Err(e)) => {
                eprintln!(
                    "{}: cannot open design store: {e}",
                    cayman_store::STORE_DIR_ENV
                );
                None
            }
            None => None,
        })
        .clone()
}

/// Builds the framework every bench binary uses: analyse the workload, then
/// back its design cache with the [`env_design_store`] when one is
/// configured — a second run over the same workload set is then served
/// disk-warm, with zero model evaluations.
///
/// # Panics
///
/// Panics if the workload fails to verify or execute (CI runs every
/// workload; a failure here is a kernel bug).
pub fn framework_for(w: &Workload, analyse: &AnalyseOptions) -> Framework {
    let mut fw = Framework::from_workload_with(w, analyse).expect("workload analyses");
    if let Some(store) = env_design_store() {
        fw.set_design_store(store as _);
    }
    fw
}

/// Selection options for the Table II protocol: the thread count comes from
/// `CAYMAN_SELECT_THREADS`, defaulting to the host parallelism clamped to
/// `2..=4` so the work-stealing scheduler — and its per-worker trace lanes —
/// is exercised even on single-core CI hosts. The Pareto front is
/// bit-identical for every thread count (asserted by the scheduler tests),
/// so this only affects wall time and observability.
pub fn select_options_from_env() -> SelectOptions {
    let threads = std::env::var("CAYMAN_SELECT_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&t| t >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
                .clamp(2, 4)
        });
    SelectOptions {
        threads,
        ..Default::default()
    }
}

/// One benchmark's Table II row.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Suite label.
    pub suite: String,
    /// Benchmark name.
    pub name: String,
    /// Per-budget numbers, in `BUDGETS` order.
    pub budgets: Vec<BudgetNumbers>,
    /// Cayman selection wall-clock runtime in seconds (cold design cache).
    pub runtime_s: f64,
    /// Selection runtime of a repeat run against the warm design cache.
    pub runtime_warm_s: f64,
    /// Observability snapshot of the warm run (cache hit rate, per-phase
    /// time, search-space counters).
    pub stats: SelectStats,
    /// Observability snapshot of the cold run; unlike `stats` its
    /// `top_accel` breakdown is populated (the warm run never invokes the
    /// model, so it has no calls to rank).
    pub cold_stats: SelectStats,
    /// Design-cache counter snapshot after all of the row's selection runs:
    /// per-stripe hit/miss/insert counts plus store-level (disk) hits and
    /// misses when `CAYMAN_STORE_DIR` backs the cache.
    pub cache: CacheStats,
}

/// The per-budget column group of Table II.
#[derive(Debug, Clone)]
pub struct BudgetNumbers {
    /// Budget fraction of a CVA6 tile.
    pub budget: f64,
    /// Cayman speedup ÷ NOVIA speedup.
    pub over_novia: f64,
    /// Cayman speedup ÷ QsCores speedup.
    pub over_qscores: f64,
    /// Cayman's own Eq.-(1) speedup.
    pub cayman_speedup: f64,
    /// Sequential basic blocks.
    pub sb: usize,
    /// Pipelined regions.
    pub pr: usize,
    /// Coupled interfaces.
    pub c: usize,
    /// Decoupled interfaces.
    pub d: usize,
    /// Scratchpad-family interfaces (plain, banked, double-buffered).
    pub s: usize,
    /// Line-buffer interfaces.
    pub lb: usize,
    /// Merging area saving, percent.
    pub area_saving_pct: f64,
    /// Average regions per reusable accelerator.
    pub avg_regions_per_reusable: f64,
}

/// The paper's two area budgets (§IV-B).
pub const BUDGETS: [f64; 2] = [0.25, 0.65];

/// Runs the full Table II protocol on one workload.
///
/// # Panics
///
/// Panics if the workload fails to verify or execute (CI runs every
/// workload; a failure here is a kernel bug).
pub fn table2_row(w: &Workload) -> Table2Row {
    table2_row_with(w, &AnalyseOptions::default())
}

/// [`table2_row`] with explicit analyse staging options (`-O0` / `-O1`).
///
/// # Panics
///
/// Panics if the workload fails to verify or execute.
pub fn table2_row_with(w: &Workload, analyse: &AnalyseOptions) -> Table2Row {
    let fw = framework_for(w, analyse);
    let opts = select_options_from_env();

    let t0 = Instant::now();
    let cayman = fw.select(&opts);
    let runtime_s = t0.elapsed().as_secs_f64();

    // Repeat against the framework's now-warm design cache: `accel(v, R)` is
    // answered from memoised designs, so this isolates the DP's own cost.
    let t1 = Instant::now();
    let warm = fw.select(&opts);
    let runtime_warm_s = t1.elapsed().as_secs_f64();

    let novia = fw.select_novia(&opts);
    let qscores = fw.select_qscores(&opts);

    let budgets = BUDGETS
        .iter()
        .map(|&b| {
            let budget = b * CVA6_TILE_AREA;
            let rep = fw.report(&cayman, b);
            let sp_n = fw.speedup(novia.best_under(budget));
            let sp_q = fw.speedup(qscores.best_under(budget));
            BudgetNumbers {
                budget: b,
                over_novia: rep.speedup / sp_n,
                over_qscores: rep.speedup / sp_q,
                cayman_speedup: rep.speedup,
                sb: rep.sb,
                pr: rep.pr,
                c: rep.c,
                d: rep.d,
                s: rep.s,
                lb: rep.lb,
                area_saving_pct: rep.area_saving_pct,
                avg_regions_per_reusable: rep.avg_regions_per_reusable,
            }
        })
        .collect();

    Table2Row {
        suite: w.suite.to_string(),
        name: w.name.to_string(),
        budgets,
        runtime_s,
        runtime_warm_s,
        stats: warm.stats,
        cold_stats: cayman.stats.clone(),
        cache: fw.cache_stats(),
    }
}

/// Computes Table II rows for many workloads on up to `threads` worker
/// threads (scoped threads, no external dependencies). Each row builds its
/// own [`Framework`], so rows are fully independent; results come back in
/// workload order regardless of which thread finished first.
pub fn table2_rows(workloads: &[Workload], threads: usize) -> Vec<Table2Row> {
    table2_rows_with(workloads, threads, &AnalyseOptions::default())
}

/// [`table2_rows`] with explicit analyse staging options (`-O0` / `-O1`).
pub fn table2_rows_with(
    workloads: &[Workload],
    threads: usize,
    analyse: &AnalyseOptions,
) -> Vec<Table2Row> {
    let threads = threads.max(1).min(workloads.len().max(1));
    if threads == 1 {
        return workloads
            .iter()
            .map(|w| table2_row_with(w, analyse))
            .collect();
    }
    let mut indexed: Vec<(usize, Table2Row)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move || {
                    workloads
                        .iter()
                        .enumerate()
                        .skip(t)
                        .step_by(threads)
                        .map(|(i, w)| (i, table2_row_with(w, analyse)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("table2 worker panicked"))
            .collect()
    });
    indexed.sort_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// Computes the arithmetic-mean summary row over a set of rows.
pub fn average_row(rows: &[Table2Row]) -> Table2Row {
    let n = rows.len().max(1) as f64;
    let budgets = (0..BUDGETS.len())
        .map(|bi| {
            let get = |f: &dyn Fn(&BudgetNumbers) -> f64| -> f64 {
                rows.iter().map(|r| f(&r.budgets[bi])).sum::<f64>() / n
            };
            BudgetNumbers {
                budget: BUDGETS[bi],
                over_novia: get(&|b| b.over_novia),
                over_qscores: get(&|b| b.over_qscores),
                cayman_speedup: get(&|b| b.cayman_speedup),
                sb: (get(&|b| b.sb as f64)).round() as usize,
                pr: (get(&|b| b.pr as f64)).round() as usize,
                c: (get(&|b| b.c as f64)).round() as usize,
                d: (get(&|b| b.d as f64)).round() as usize,
                s: (get(&|b| b.s as f64)).round() as usize,
                lb: (get(&|b| b.lb as f64)).round() as usize,
                area_saving_pct: get(&|b| b.area_saving_pct),
                avg_regions_per_reusable: get(&|b| b.avg_regions_per_reusable),
            }
        })
        .collect();
    let merge = |pick: &dyn Fn(&Table2Row) -> &SelectStats| -> SelectStats {
        let mut stats = SelectStats::default();
        for r in rows {
            let s = pick(r);
            stats.visited += s.visited;
            stats.pruned += s.pruned;
            stats.configs_considered += s.configs_considered;
            stats.configs_evaluated += s.configs_evaluated;
            stats.cache_hits += s.cache_hits;
            stats.cache_misses += s.cache_misses;
            stats.model_nanos += s.model_nanos;
            stats.combine_nanos += s.combine_nanos;
            stats.wall_nanos += s.wall_nanos;
            stats.threads = stats.threads.max(s.threads);
            stats.scheduler = s.scheduler;
            stats
                .worker_busy_nanos
                .extend_from_slice(&s.worker_busy_nanos);
            stats.top_accel.extend(s.top_accel.iter().cloned());
        }
        stats
            .top_accel
            .sort_unstable_by(|a, b| b.nanos.cmp(&a.nanos).then(a.label.cmp(&b.label)));
        stats.top_accel.truncate(cayman::TOP_ACCEL_K);
        stats.worker_busy_nanos.sort_unstable_by(|a, b| b.cmp(a));
        stats
    };
    let mut cache = CacheStats::default();
    for r in rows {
        cache.merge(&r.cache);
    }
    Table2Row {
        suite: String::new(),
        name: "average".into(),
        budgets,
        runtime_s: rows.iter().map(|r| r.runtime_s).sum::<f64>() / n,
        runtime_warm_s: rows.iter().map(|r| r.runtime_warm_s).sum::<f64>() / n,
        stats: merge(&|r| &r.stats),
        cold_stats: merge(&|r| &r.cold_stats),
        cache,
    }
}

/// The globally most expensive `accel(v, R)` calls across many rows' cold
/// runs, each label prefixed with its benchmark name
/// (`benchmark/function#vN`). At most [`cayman::TOP_ACCEL_K`] entries.
pub fn top_accel_across(rows: &[Table2Row]) -> Vec<cayman::AccelCallStat> {
    let mut pool: Vec<cayman::AccelCallStat> = rows
        .iter()
        .flat_map(|r| {
            r.cold_stats
                .top_accel
                .iter()
                .map(|c| cayman::AccelCallStat {
                    label: format!("{}/{}", r.name, c.label),
                    nanos: c.nanos,
                    designs: c.designs,
                })
        })
        .collect();
    pool.sort_unstable_by(|a, b| b.nanos.cmp(&a.nanos).then(a.label.cmp(&b.label)));
    pool.truncate(cayman::TOP_ACCEL_K);
    pool
}

/// One (area, speedup) Pareto point for Fig. 6.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParetoPoint {
    /// Area as a fraction of the CVA6 tile.
    pub area_frac: f64,
    /// Application speedup.
    pub speedup: f64,
}

/// The four Fig. 6 series for one benchmark.
#[derive(Debug, Clone)]
pub struct Fig6Series {
    /// Benchmark name.
    pub name: String,
    /// NOVIA Pareto front.
    pub novia: Vec<ParetoPoint>,
    /// QsCores Pareto front.
    pub qscores: Vec<ParetoPoint>,
    /// Coupled-only Cayman front (ablation).
    pub cayman_coupled: Vec<ParetoPoint>,
    /// Full Cayman front.
    pub cayman_full: Vec<ParetoPoint>,
}

/// Computes all four Fig. 6 fronts for one workload.
///
/// # Panics
///
/// Panics if the workload fails to analyse.
pub fn fig6_series(w: &Workload) -> Fig6Series {
    let fw = framework_for(w, &AnalyseOptions::default());
    let opts = SelectOptions::default();
    let coupled_opts = SelectOptions {
        model: ModelOptions::coupled_only(),
        ..Default::default()
    };
    let front = |res: &cayman::SelectionResult| -> Vec<ParetoPoint> {
        res.pareto
            .iter()
            .map(|s| ParetoPoint {
                area_frac: s.area / CVA6_TILE_AREA,
                speedup: fw.speedup(s),
            })
            .collect()
    };
    Fig6Series {
        name: w.name.to_string(),
        novia: front(&fw.select_novia(&opts)),
        qscores: front(&fw.select_qscores(&opts)),
        cayman_coupled: front(&fw.select(&coupled_opts)),
        cayman_full: front(&fw.select(&opts)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_row_for_a_small_benchmark() {
        let w = cayman::workloads::by_name("trisolv").expect("exists");
        let row = table2_row(&w);
        assert_eq!(row.budgets.len(), 2);
        for b in &row.budgets {
            assert!(b.cayman_speedup >= 1.0);
            assert!(b.over_novia >= 1.0, "cayman ≥ novia: {}", b.over_novia);
            assert!(
                b.over_qscores >= 1.0,
                "cayman ≥ qscores: {}",
                b.over_qscores
            );
        }
        // 65% budget can never be worse than 25%
        assert!(row.budgets[1].cayman_speedup >= row.budgets[0].cayman_speedup);
    }

    #[test]
    fn table2_row_reports_cache_effect() {
        let w = cayman::workloads::by_name("trisolv").expect("exists");
        let row = table2_row(&w);
        // the warm repeat run must be fully memoised…
        assert!(row.stats.cache_hit_rate() > 0.0, "{}", row.stats);
        assert_eq!(row.stats.cache_misses, 0, "{}", row.stats);
        assert_eq!(row.stats.configs_evaluated, 0, "model skipped when warm");
        // …and observability fields populated
        assert!(row.stats.wall_nanos > 0);
        assert!(row.runtime_s > 0.0 && row.runtime_warm_s > 0.0);
        // the cold run ranks its model invocations; the warm run has none
        assert!(!row.cold_stats.top_accel.is_empty());
        assert!(row.stats.top_accel.is_empty());
    }

    #[test]
    fn parallel_rows_match_sequential_and_preserve_order() {
        let names = ["trisolv", "bicg", "mvt"];
        let workloads: Vec<_> = names
            .iter()
            .map(|n| cayman::workloads::by_name(n).expect("exists"))
            .collect();
        let seq = table2_rows(&workloads, 1);
        let par = table2_rows(&workloads, 3);
        assert_eq!(seq.len(), par.len());
        for (s, p) in seq.iter().zip(&par) {
            assert_eq!(s.name, p.name, "row order preserved");
            for (sb, pb) in s.budgets.iter().zip(&p.budgets) {
                assert_eq!(sb.cayman_speedup.to_bits(), pb.cayman_speedup.to_bits());
                assert_eq!(sb.sb, pb.sb);
                assert_eq!(sb.pr, pb.pr);
            }
        }
        let ranked = top_accel_across(&par);
        assert!(!ranked.is_empty());
        assert!(ranked[0].label.contains('/'), "{}", ranked[0].label);
        for w in ranked.windows(2) {
            assert!(w[0].nanos >= w[1].nanos);
        }
    }

    #[test]
    fn fig6_fronts_are_monotone() {
        let w = cayman::workloads::by_name("bicg").expect("exists");
        let s = fig6_series(&w);
        for front in [&s.novia, &s.qscores, &s.cayman_coupled, &s.cayman_full] {
            for pair in front.windows(2) {
                assert!(pair[1].area_frac >= pair[0].area_frac);
                assert!(pair[1].speedup >= pair[0].speedup);
            }
        }
        // full Cayman's best point beats coupled-only's best
        let best = |f: &[ParetoPoint]| f.last().map(|p| p.speedup).unwrap_or(1.0);
        assert!(best(&s.cayman_full) >= best(&s.cayman_coupled));
        assert!(best(&s.cayman_full) > best(&s.novia));
    }

    #[test]
    fn average_row_averages() {
        let w = cayman::workloads::by_name("trisolv").expect("exists");
        let r = table2_row(&w);
        let avg = average_row(&[r.clone(), r.clone()]);
        assert!((avg.budgets[0].cayman_speedup - r.budgets[0].cayman_speedup).abs() < 1e-9);
        assert_eq!(avg.name, "average");
    }
}
