//! Reports the impact of IR normalization (`-O1` vs `-O0`) across the
//! 28-benchmark evaluation: static and dynamic instruction counts, wPST
//! region counts, and end-to-end analyse time — per benchmark and
//! aggregated per suite. The EXPERIMENTS.md normalization table is
//! generated from this output.
//!
//! ```text
//! cargo run --release -p cayman-bench --bin optstats [-- --json] [benchmark...]
//! ```
//!
//! Positional arguments restrict the run to the named benchmarks; `--json`
//! emits one machine-readable document on stdout instead of the tables.

use cayman::{AnalyseOptions, Application};
use cayman_bench::{json, BenchArgs};
use std::collections::BTreeMap;
use std::time::Instant;

struct Row {
    suite: String,
    name: &'static str,
    static0: u64,
    static1: u64,
    dyn0: u64,
    dyn1: u64,
    regions0: usize,
    regions1: usize,
    analyse0_ms: f64,
    analyse1_ms: f64,
}

fn analysed(w: &cayman::workloads::Workload, opts: &AnalyseOptions) -> (Application, f64) {
    let t = Instant::now();
    let app = Application::analyse_with(w.module.clone(), Some(w.memory()), opts)
        .unwrap_or_else(|e| panic!("{}: analyse failed: {e}", w.name));
    (app, t.elapsed().as_secs_f64() * 1e3)
}

fn static_instrs(m: &cayman::ir::Module) -> u64 {
    m.functions.iter().map(|f| f.instr_count() as u64).sum()
}

fn pct(a: u64, b: u64) -> f64 {
    if a == 0 {
        0.0
    } else {
        100.0 * (a as f64 - b as f64) / a as f64
    }
}

fn main() {
    let args = BenchArgs::parse();
    cayman_obs::init_from_env();

    let mut rows = Vec::new();
    // Dynamic executions still hitting the generic `(op, ty)` dispatch of
    // the decoded interpreter after -O1 — the specialization shortlist.
    let mut mix: BTreeMap<String, u64> = BTreeMap::new();
    for w in args.select_workloads(args.workload_set()) {
        let (app0, t0) = analysed(&w, &AnalyseOptions::o0());
        let (app1, t1) = analysed(&w, &AnalyseOptions::default());
        for (label, n) in cayman::ir::generic_dispatch_mix(&app1.module, &app1.exec) {
            *mix.entry(label).or_insert(0) += n;
        }
        rows.push(Row {
            suite: w.suite.to_string(),
            name: w.name,
            static0: static_instrs(&app0.module),
            static1: static_instrs(&app1.module),
            dyn0: app0.exec.dynamic_instrs(&app0.module),
            dyn1: app1.exec.dynamic_instrs(&app1.module),
            regions0: app0.wpst.region_count(),
            regions1: app1.wpst.region_count(),
            analyse0_ms: t0,
            analyse1_ms: t1,
        });
    }

    if args.json {
        let doc = json::document(|o| {
            o.str("bench", "optstats");
            o.arr("rows", |a| {
                for r in &rows {
                    a.obj(|o| {
                        o.str("suite", &r.suite);
                        o.str("name", r.name);
                        o.u64("static_o0", r.static0);
                        o.u64("static_o1", r.static1);
                        o.u64("dynamic_o0", r.dyn0);
                        o.u64("dynamic_o1", r.dyn1);
                        o.u64("regions_o0", r.regions0 as u64);
                        o.u64("regions_o1", r.regions1 as u64);
                        o.f64("analyse_o0_ms", r.analyse0_ms, 3);
                        o.f64("analyse_o1_ms", r.analyse1_ms, 3);
                    });
                }
            });
            o.arr("generic_dispatch_mix", |a| {
                let mut sorted: Vec<(&String, &u64)> = mix.iter().collect();
                sorted.sort_by(|x, y| y.1.cmp(x.1).then(x.0.cmp(y.0)));
                for (label, n) in sorted {
                    a.obj(|o| {
                        o.str("op", label);
                        o.u64("dynamic", *n);
                    });
                }
            });
            let all0 = rows.iter().map(|r| r.dyn0).sum::<u64>();
            let all1 = rows.iter().map(|r| r.dyn1).sum::<u64>();
            o.obj("totals", |o| {
                o.u64("dynamic_o0", all0);
                o.u64("dynamic_o1", all1);
                o.f64("dynamic_reduction_pct", pct(all0, all1), 1);
                o.f64(
                    "analyse_o0_ms",
                    rows.iter().map(|r| r.analyse0_ms).sum::<f64>(),
                    1,
                );
                o.f64(
                    "analyse_o1_ms",
                    rows.iter().map(|r| r.analyse1_ms).sum::<f64>(),
                    1,
                );
            });
        });
        print!("{doc}");
        cayman_bench::flush_obs_outputs();
        return;
    }

    println!(
        "IR normalization impact, -O0 vs -O1 ({} benchmarks)",
        rows.len()
    );
    println!(
        "{:<6} {:<26} | {:>8} {:>8} {:>6} | {:>11} {:>11} {:>6} | {:>5} {:>5} | {:>8} {:>8}",
        "suite",
        "benchmark",
        "stat-O0",
        "stat-O1",
        "red%",
        "dyn-O0",
        "dyn-O1",
        "red%",
        "reg-0",
        "reg-1",
        "t-O0 ms",
        "t-O1 ms"
    );
    println!("{}", "-".repeat(130));

    for r in &rows {
        println!(
            "{:<6} {:<26} | {:>8} {:>8} {:>5.1}% | {:>11} {:>11} {:>5.1}% | {:>5} {:>5} | {:>8.2} {:>8.2}",
            r.suite, r.name,
            r.static0, r.static1, pct(r.static0, r.static1),
            r.dyn0, r.dyn1, pct(r.dyn0, r.dyn1),
            r.regions0, r.regions1,
            r.analyse0_ms, r.analyse1_ms,
        );
    }

    println!("{}", "-".repeat(130));
    let mut suites: BTreeMap<&str, Vec<&Row>> = BTreeMap::new();
    for r in &rows {
        suites.entry(r.suite.as_str()).or_default().push(r);
    }
    println!("per-suite aggregates:");
    for (suite, rs) in &suites {
        let sum = |f: &dyn Fn(&Row) -> u64| rs.iter().map(|r| f(r)).sum::<u64>();
        let (s0, s1) = (sum(&|r| r.static0), sum(&|r| r.static1));
        let (d0, d1) = (sum(&|r| r.dyn0), sum(&|r| r.dyn1));
        let (g0, g1) = (
            rs.iter().map(|r| r.regions0).sum::<usize>(),
            rs.iter().map(|r| r.regions1).sum::<usize>(),
        );
        let (t0, t1) = (
            rs.iter().map(|r| r.analyse0_ms).sum::<f64>(),
            rs.iter().map(|r| r.analyse1_ms).sum::<f64>(),
        );
        println!(
            "  {:<12} static {:>7} -> {:>7} ({:>4.1}%) | dynamic {:>11} -> {:>11} ({:>4.1}%) | wPST regions {:>4} -> {:>4} | analyse {:>8.1} -> {:>8.1} ms",
            suite, s0, s1, pct(s0, s1), d0, d1, pct(d0, d1), g0, g1, t0, t1,
        );
    }
    let all0 = rows.iter().map(|r| r.dyn0).sum::<u64>();
    let all1 = rows.iter().map(|r| r.dyn1).sum::<u64>();
    let ta0 = rows.iter().map(|r| r.analyse0_ms).sum::<f64>();
    let ta1 = rows.iter().map(|r| r.analyse1_ms).sum::<f64>();
    println!(
        "total: dynamic instructions {all0} -> {all1} ({:.1}% fewer), analyse wall {ta0:.1} -> {ta1:.1} ms",
        pct(all0, all1)
    );

    let total_generic = mix.values().sum::<u64>();
    let mut sorted: Vec<(&String, &u64)> = mix.iter().collect();
    sorted.sort_by(|x, y| y.1.cmp(x.1).then(x.0.cmp(y.0)));
    println!(
        "\ngeneric dispatch mix after -O1 ({} dynamic executions on the generic path):",
        total_generic
    );
    for (label, n) in sorted.iter().take(12) {
        println!(
            "  {:<16} {:>12}  ({:>4.1}%)",
            label,
            n,
            100.0 * **n as f64 / total_generic.max(1) as f64
        );
    }

    cayman_bench::flush_obs_outputs();
}
