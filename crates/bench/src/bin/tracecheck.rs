//! Validates a Chrome trace emitted via `CAYMAN_TRACE` and prints a short
//! summary — the CI smoke gate for the observability pipeline.
//!
//! ```text
//! cargo run -p cayman-bench --bin tracecheck -- trace.json \
//!     [--require-prefix select.] [--require-lane select.worker.]
//! ```
//!
//! Checks performed (see `cayman_obs::trace::validate_chrome`): the file
//! parses as trace-format JSON, every `B` has a matching same-name `E` on
//! the same thread, timestamps are non-decreasing per thread, and the trace
//! is non-empty. `--require-prefix` additionally demands at least one
//! completed span whose name starts with the prefix (repeatable);
//! `--require-lane` demands a named thread lane with the prefix.

use cayman_obs::trace::validate_chrome;

fn fail(msg: &str) -> ! {
    eprintln!("tracecheck: {msg}");
    std::process::exit(1);
}

fn main() {
    let mut path = None;
    let mut prefixes = Vec::new();
    let mut lanes = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--require-prefix" => match args.next() {
                Some(p) => prefixes.push(p),
                None => fail("--require-prefix needs a value"),
            },
            "--require-lane" => match args.next() {
                Some(p) => lanes.push(p),
                None => fail("--require-lane needs a value"),
            },
            _ if a.starts_with('-') => {
                eprintln!(
                    "usage: tracecheck <trace.json> [--require-prefix <p>]... [--require-lane <p>]..."
                );
                std::process::exit(2);
            }
            _ => {
                if path.replace(a).is_some() {
                    fail("exactly one trace file expected");
                }
            }
        }
    }
    let Some(path) = path else {
        eprintln!(
            "usage: tracecheck <trace.json> [--require-prefix <p>]... [--require-lane <p>]..."
        );
        std::process::exit(2);
    };

    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    let summary = validate_chrome(&text)
        .unwrap_or_else(|e| fail(&format!("{path}: invalid Chrome trace: {e}")));
    if summary.events == 0 {
        fail(&format!("{path}: trace is empty"));
    }
    for p in &prefixes {
        if !summary.has_span_prefix(p) {
            fail(&format!("{path}: no completed span named `{p}*`"));
        }
    }
    for p in &lanes {
        if !summary.lanes.iter().any(|l| l.starts_with(p.as_str())) {
            fail(&format!(
                "{path}: no thread lane `{p}*` (lanes: {:?})",
                summary.lanes
            ));
        }
    }

    println!(
        "{path}: OK — {} events, {} completed spans ({} distinct names), {} lanes, {} counters, {} instants",
        summary.events,
        summary.spans,
        summary.span_names.len(),
        summary.lanes.len(),
        summary.counters.len(),
        summary.instants.len()
    );
}
