//! Regenerates **Fig. 6**: speedup (y) vs area (x) of the Pareto-optimal
//! solutions of NOVIA, QsCores, coupled-only Cayman and full Cayman on one
//! benchmark per suite: `3mm` (PolyBench), `fft` (MachSuite), `cjpeg`
//! (MediaBench) and `loops-all-mid-10k-sp` (CoreMark-Pro).
//!
//! Output is one CSV-like block per benchmark (series, area_frac, speedup) —
//! plottable directly.
//!
//! ```text
//! cargo run --release -p cayman-bench --bin fig6
//! ```

use cayman_bench::fig6_series;

const BENCHMARKS: [&str; 4] = ["3mm", "fft", "cjpeg", "loops-all-mid-10k-sp"];

fn main() {
    cayman_obs::init_from_env();
    println!("Fig. 6 — Pareto fronts (speedup vs area fraction of a CVA6 tile)");
    for name in BENCHMARKS {
        let w = cayman::workloads::by_name(name).expect("benchmark exists");
        let s = fig6_series(&w);
        println!("\n=== {} ===", s.name);
        println!("series,area_frac,speedup");
        for (label, front) in [
            ("novia", &s.novia),
            ("qscores", &s.qscores),
            ("cayman-coupled", &s.cayman_coupled),
            ("cayman-full", &s.cayman_full),
        ] {
            for p in front {
                println!("{label},{:.4},{:.3}", p.area_frac, p.speedup);
            }
        }
        // Headline check per the paper: full Cayman dominates; NOVIA sits in
        // the lower-left; QsCores scales worse with area.
        let best = |f: &[cayman_bench::ParetoPoint]| {
            f.last()
                .map(|p| (p.area_frac, p.speedup))
                .unwrap_or((0.0, 1.0))
        };
        let (na, ns) = best(&s.novia);
        let (qa, qs) = best(&s.qscores);
        let (_, cs) = best(&s.cayman_coupled);
        let (fa, fs) = best(&s.cayman_full);
        println!(
            "# summary: novia best ({na:.3},{ns:.2}) qscores best ({qa:.3},{qs:.2}) \
             coupled-only best {cs:.2} full best ({fa:.3},{fs:.2})"
        );
    }
    cayman_bench::flush_obs_outputs();
}
