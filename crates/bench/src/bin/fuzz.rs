//! `cayman-fuzz` — generative differential fuzzing of the full pipeline.
//!
//! Generates structured programs with `testkit::program` and pushes each
//! through every crossed configuration (see [`cayman_bench::diff`]): decoded
//! vs reference interpreter, `-O0` vs `-O1`, static vs work-steal scheduler
//! at 2/3/8 threads, `-O1` vs `-O2` staging (the analysis shadow must not
//! change the executed module, the profile, or observable results, and must
//! keep fronts bit-identical whenever it is a no-op), plus the merged best
//! solution. Any divergence prints
//! the offending kernel as re-parseable text — after shrinking it to the
//! smallest derivation of the same seed that still fails — and exits 1.
//!
//! The run is seed-deterministic: the same `--seed`/`--count` produce the
//! same programs and the same verdicts on every platform.
//!
//! With `--incremental`, every generated program is additionally driven
//! through the incremental-vs-from-scratch differential
//! ([`cayman_bench::diff::check_incremental`]): seeded single-instruction
//! edits through one `IncrementalApp`, each step compared bit for bit
//! against a fresh `analyse → select`. `--incremental-corpus N` runs the
//! same differential over the first `N` checked-in workload kernels
//! (`0` = all of them) — the corpus-wide equivalence gate.
//!
//! ```text
//! fuzz [--seed N] [--count N] [--trap-share PCT] [--corpus-gate]
//!      [--incremental] [--incremental-corpus N] [--edits N]
//!
//!   --seed N          base seed (default 0xCA11)
//!   --count N         number of generated programs (default 50)
//!   --trap-share PCT  percent of cases generated with `allow_trap`, to
//!                     exercise the interpreter error paths (default 10)
//!   --corpus-gate     additionally parse + verify + run every checked-in
//!                     corpus kernel (fails fast on a broken .cir file)
//!   --incremental     also check incremental re-analysis equivalence on
//!                     every generated program
//!   --incremental-corpus N
//!                     check incremental equivalence over the first N
//!                     workload kernels (0 = the full 132-kernel set)
//!   --edits N         edits per incremental differential (default 3)
//! ```

use cayman_bench::diff::{check_incremental, check_module};
use cayman_testkit::program::{arbitrary_module_with, GenOptions};
use cayman_testkit::{Rng, SHRINK_FACTORS};

struct Args {
    seed: u64,
    count: u64,
    trap_share: u64,
    corpus_gate: bool,
    incremental: bool,
    incremental_corpus: Option<u64>,
    edits: u64,
}

fn usage() -> ! {
    eprintln!(
        "usage: fuzz [--seed N] [--count N] [--trap-share PCT] [--corpus-gate] \
             [--incremental] [--incremental-corpus N] [--edits N]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: 0xCA11,
        count: 50,
        trap_share: 10,
        corpus_gate: false,
        incremental: false,
        incremental_corpus: None,
        edits: 3,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut num = |name: &str| -> u64 {
            let Some(v) = it.next() else {
                eprintln!("{name} needs a value");
                usage();
            };
            // Accept decimal or 0x-prefixed hex seeds.
            let parsed = v
                .strip_prefix("0x")
                .map(|h| u64::from_str_radix(h, 16))
                .unwrap_or_else(|| v.parse());
            parsed.unwrap_or_else(|_| {
                eprintln!("{name}: not a number: `{v}`");
                usage();
            })
        };
        match arg.as_str() {
            "--seed" => args.seed = num("--seed"),
            "--count" => args.count = num("--count"),
            "--trap-share" => args.trap_share = num("--trap-share").min(100),
            "--corpus-gate" => args.corpus_gate = true,
            "--incremental" => args.incremental = true,
            "--incremental-corpus" => {
                args.incremental_corpus = Some(num("--incremental-corpus"));
            }
            "--edits" => args.edits = num("--edits").max(1),
            _ => {
                eprintln!("unknown argument `{arg}`");
                usage();
            }
        }
    }
    args
}

/// Derives the per-case seed. Splitmix-style mixing keeps neighbouring
/// cases decorrelated while staying reproducible from `(seed, case)`.
fn case_seed(base: u64, case: u64) -> u64 {
    Rng::new(base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)).next_u64()
}

fn options_for(case: u64, trap_share: u64) -> GenOptions {
    GenOptions {
        // Trapping programs only exercise surface 1 (both engines must
        // report the identical error), so keep them a configurable minority.
        allow_trap: trap_share > 0 && case % 100 < trap_share,
        ..GenOptions::default()
    }
}

/// Re-checks a failing case at each shrink factor (most aggressive first)
/// and returns the smallest still-failing kernel with its factor and
/// failure, or `None` when only the unshrunk case fails.
fn shrink_case(
    seed: u64,
    opts: &GenOptions,
) -> Option<(f64, String, cayman_bench::diff::DiffFailure)> {
    for &factor in &SHRINK_FACTORS {
        let m = arbitrary_module_with(&mut Rng::with_shrink(seed, factor), opts);
        if let Err(f) = check_module(&m) {
            return Some((factor, m.to_text(), f));
        }
    }
    None
}

fn run_corpus_gate() -> usize {
    let ws = cayman::workloads::corpus::corpus();
    for w in &ws {
        w.module.verify().unwrap_or_else(|e| {
            eprintln!("corpus gate: {}: verification failed: {e}", w.name);
            std::process::exit(1);
        });
        let prof = w.run().unwrap_or_else(|e| {
            eprintln!("corpus gate: {}: execution failed: {e}", w.name);
            std::process::exit(1);
        });
        if prof.total_cycles == 0 {
            eprintln!("corpus gate: {}: did no work", w.name);
            std::process::exit(1);
        }
    }
    ws.len()
}

/// The corpus-wide incremental-equivalence gate: seeded single-instruction
/// edits over the first `limit` workload kernels (`0` = all 132), each step
/// compared bit for bit against from-scratch analysis.
fn run_incremental_corpus_gate(seed: u64, limit: u64, edits: u64) -> usize {
    let mut ws = cayman::workloads::full();
    if limit > 0 {
        ws.truncate(limit as usize);
    }
    for (i, w) in ws.iter().enumerate() {
        let kseed = case_seed(seed, 0x1D00 + i as u64);
        match check_incremental(&w.module, Some(w.memory()), kseed, edits as usize) {
            Ok(_) => {}
            Err(f) => {
                eprintln!(
                    "incremental corpus gate: {} (seed {kseed:#018x}) diverged: {f}",
                    w.name
                );
                std::process::exit(1);
            }
        }
    }
    ws.len()
}

fn main() {
    let args = parse_args();

    if args.corpus_gate {
        let n = run_corpus_gate();
        println!("corpus gate: {n} kernels parse, verify and run");
    }

    if let Some(limit) = args.incremental_corpus {
        let n = run_incremental_corpus_gate(args.seed, limit, args.edits);
        println!(
            "incremental corpus gate: {n} kernels re-analyse bit-identically \
             across {} seeded edits each",
            args.edits
        );
    }

    let mut clean = 0u64;
    let mut trapped = 0u64;
    for case in 0..args.count {
        let seed = case_seed(args.seed, case);
        let opts = options_for(case, args.trap_share);
        let m = arbitrary_module_with(&mut Rng::new(seed), &opts);
        let verdict = check_module(&m).and_then(|ok| {
            if args.incremental {
                check_incremental(&m, None, seed, args.edits as usize).map(|inc_ok| ok && inc_ok)
            } else {
                Ok(ok)
            }
        });
        match verdict {
            Ok(true) => clean += 1,
            Ok(false) => trapped += 1,
            Err(failure) => {
                eprintln!(
                    "fuzz: case {case}/{} (seed {seed:#018x}) diverged: {failure}",
                    args.count
                );
                match shrink_case(seed, &opts) {
                    Some((factor, text, small)) => {
                        eprintln!("shrunk (factor {factor}) failure: {small}");
                        eprintln!("minimal kernel (re-parseable):\n{text}");
                        eprintln!(
                            "replay: arbitrary_module_with(&mut Rng::with_shrink({seed:#018x}, \
                             {factor:?}), &opts)"
                        );
                    }
                    None => {
                        eprintln!("kernel (re-parseable):\n{}", m.to_text());
                        eprintln!(
                            "replay: arbitrary_module_with(&mut Rng::new({seed:#018x}), &opts)"
                        );
                    }
                }
                std::process::exit(1);
            }
        }
    }
    println!(
        "fuzz: {} programs agree across all configurations \
         ({clean} full pipeline, {trapped} identical-trap) [seed {:#x}]",
        args.count, args.seed
    );
}
