//! Regenerates **Table II**: results under the 25% and 65% area budgets for
//! all 28 benchmarks — Cayman's speedup over NOVIA and QsCores, selected
//! kernel configuration counts (#SB, #PR), interface counts (#C, #D, #S),
//! accelerator-merging area savings, and selection runtime.
//!
//! Rows are computed in parallel (one framework per benchmark, scoped
//! threads); set `CAYMAN_TABLE2_THREADS` to override the worker count
//! (`1` recovers the fully sequential run — same numbers either way).
//!
//! ```text
//! cargo run --release -p cayman-bench --bin table2 [-- -O0|-O1]
//! ```
//!
//! `-O1` (the default) normalizes each module through the IR transform
//! pipeline before profiling; `-O0` analyses modules exactly as built.

use cayman_bench::{
    analyse_options_from_args, average_row, table2_rows_with, top_accel_across, Table2Row,
};

fn print_row(r: &Table2Row) {
    let b0 = &r.budgets[0];
    let b1 = &r.budgets[1];
    println!(
        "{:<6} {:<26} | {:>7.1} {:>7.1} {:>7.1} | {:>4} {:>4} {:>4} {:>4} {:>4} {:>5.0} | {:>7.1} {:>7.1} {:>7.1} | {:>4} {:>4} {:>4} {:>4} {:>4} {:>5.0} | {:>8.2} {:>8.2} {:>5.0}",
        r.suite,
        r.name,
        b0.over_novia,
        b0.over_qscores,
        b0.cayman_speedup,
        b0.sb,
        b0.pr,
        b0.c,
        b0.d,
        b0.s,
        b0.area_saving_pct,
        b1.over_novia,
        b1.over_qscores,
        b1.cayman_speedup,
        b1.sb,
        b1.pr,
        b1.c,
        b1.d,
        b1.s,
        b1.area_saving_pct,
        r.runtime_s * 1e3,
        r.runtime_warm_s * 1e3,
        r.stats.cache_hit_rate() * 100.0,
    );
}

fn main() {
    let analyse = analyse_options_from_args();
    println!(
        "Table II — results under two area budgets (25% and 65% of a CVA6 tile), -{}",
        analyse.opt_level
    );
    println!(
        "{:<6} {:<26} | {:>7} {:>7} {:>7} | {:>4} {:>4} {:>4} {:>4} {:>4} {:>5} | {:>7} {:>7} {:>7} | {:>4} {:>4} {:>4} {:>4} {:>4} {:>5} | {:>8} {:>8} {:>5}",
        "Suite", "Benchmark",
        "ovN25", "ovQ25", "spd25", "#SB", "#PR", "#C", "#D", "#S", "sav%",
        "ovN65", "ovQ65", "spd65", "#SB", "#PR", "#C", "#D", "#S", "sav%",
        "cold(ms)", "warm(ms)", "hit%"
    );
    println!("{}", "-".repeat(176));

    let threads = std::env::var("CAYMAN_TABLE2_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        });
    let workloads = cayman::workloads::all();
    let rows = table2_rows_with(&workloads, threads, &analyse);
    for row in &rows {
        print_row(row);
    }
    println!("{}", "-".repeat(176));
    let avg = average_row(&rows);
    print_row(&avg);

    // Selection observability: cold vs memoised re-run, aggregated.
    let cold: f64 = rows.iter().map(|r| r.runtime_s).sum();
    let warm: f64 = rows.iter().map(|r| r.runtime_warm_s).sum();
    println!();
    println!("selection stats (warm re-runs, aggregated): {}", avg.stats);
    println!(
        "selection scheduler: {} with {} thread(s) per run (steer with CAYMAN_SELECT_SCHED=static|steal and SelectOptions::threads)",
        if avg.stats.scheduler.is_empty() {
            "seq"
        } else {
            avg.stats.scheduler
        },
        avg.stats.threads.max(1)
    );
    println!(
        "design cache: cold {:.1} ms total -> warm {:.1} ms total ({:.1}x faster)",
        cold * 1e3,
        warm * 1e3,
        cold / warm.max(1e-12)
    );

    // Where the model time goes: the globally most expensive accel(v, R)
    // invocations across all cold runs.
    println!();
    println!("most expensive accel(v, R) calls (cold runs, benchmark/function#vertex):");
    for c in top_accel_across(&rows) {
        println!(
            "  {:<40} {:>9.3} ms {:>4} designs",
            c.label,
            c.nanos as f64 * 1e-6,
            c.designs
        );
    }

    // The §IV-B merging claims: average regions per reusable accelerator.
    let avg_regions: f64 = rows
        .iter()
        .flat_map(|r| r.budgets.iter())
        .filter(|b| b.avg_regions_per_reusable > 0.0)
        .map(|b| b.avg_regions_per_reusable)
        .sum::<f64>()
        / rows
            .iter()
            .flat_map(|r| r.budgets.iter())
            .filter(|b| b.avg_regions_per_reusable > 0.0)
            .count()
            .max(1) as f64;
    println!();
    println!("avg regions per reusable accelerator: {avg_regions:.1} (paper: ~3)");
}
