//! Regenerates **Table II**: results under the 25% and 65% area budgets for
//! all 28 benchmarks — Cayman's speedup over NOVIA and QsCores, selected
//! kernel configuration counts (#SB, #PR), interface counts (#C, #D, #S, #LB),
//! accelerator-merging area savings, and selection runtime.
//!
//! Rows are computed in parallel (one framework per benchmark, scoped
//! threads); set `CAYMAN_TABLE2_THREADS` to override the worker count
//! (`1` recovers the fully sequential run — same numbers either way).
//! Within each row, selection itself runs on `CAYMAN_SELECT_THREADS`
//! work-stealing workers (default: host parallelism clamped to 2..=4).
//!
//! ```text
//! cargo run --release -p cayman-bench --bin table2 [-- -O0|-O1|-O2] [--json] [benchmark...]
//! ```
//!
//! `-O1` (the default) normalizes each module through the IR transform
//! pipeline before profiling; `-O0` analyses modules exactly as built.
//! Positional arguments restrict the run to the named benchmarks; `--json`
//! emits one machine-readable document on stdout instead of the table.
//! Set `CAYMAN_TRACE=out.json` to capture a Chrome trace of the whole run.

use cayman_bench::{average_row, json, table2_rows_with, top_accel_across, BenchArgs, Table2Row};

fn print_row(r: &Table2Row) {
    let b0 = &r.budgets[0];
    let b1 = &r.budgets[1];
    println!(
        "{:<6} {:<26} | {:>7.1} {:>7.1} {:>7.1} | {:>4} {:>4} {:>4} {:>4} {:>4} {:>4} {:>5.0} | {:>7.1} {:>7.1} {:>7.1} | {:>4} {:>4} {:>4} {:>4} {:>4} {:>4} {:>5.0} | {:>8.2} {:>8.2} {:>5.0}",
        r.suite,
        r.name,
        b0.over_novia,
        b0.over_qscores,
        b0.cayman_speedup,
        b0.sb,
        b0.pr,
        b0.c,
        b0.d,
        b0.s,
        b0.lb,
        b0.area_saving_pct,
        b1.over_novia,
        b1.over_qscores,
        b1.cayman_speedup,
        b1.sb,
        b1.pr,
        b1.c,
        b1.d,
        b1.s,
        b1.lb,
        b1.area_saving_pct,
        r.runtime_s * 1e3,
        r.runtime_warm_s * 1e3,
        r.stats.cache_hit_rate() * 100.0,
    );
}

fn json_row(o: &mut json::Obj, r: &Table2Row) {
    o.str("suite", &r.suite);
    o.str("name", &r.name);
    o.f64("runtime_s", r.runtime_s, 6);
    o.f64("runtime_warm_s", r.runtime_warm_s, 6);
    o.f64("cache_hit_rate", r.stats.cache_hit_rate(), 3);
    o.obj("cache", |o| {
        o.u64("hits", r.cache.hits());
        o.u64("misses", r.cache.misses());
        o.u64("inserts", r.cache.inserts());
        o.u64("entries", r.cache.entries() as u64);
        o.u64("stripes_used", r.cache.stripes_used() as u64);
        o.u64("disk_hits", r.cache.disk_hits);
        o.u64("disk_misses", r.cache.disk_misses);
        o.arr("stripes", |a| {
            for s in &r.cache.stripes {
                a.obj(|o| {
                    o.u64("hits", s.hits);
                    o.u64("misses", s.misses);
                    o.u64("inserts", s.inserts);
                    o.u64("entries", s.entries as u64);
                });
            }
        });
    });
    o.arr("budgets", |a| {
        for b in &r.budgets {
            a.obj(|o| {
                o.f64("budget", b.budget, 2);
                o.f64("over_novia", b.over_novia, 2);
                o.f64("over_qscores", b.over_qscores, 2);
                o.f64("cayman_speedup", b.cayman_speedup, 2);
                o.u64("sb", b.sb as u64);
                o.u64("pr", b.pr as u64);
                o.u64("c", b.c as u64);
                o.u64("d", b.d as u64);
                o.u64("s", b.s as u64);
                o.u64("lb", b.lb as u64);
                o.f64("area_saving_pct", b.area_saving_pct, 1);
                o.f64("avg_regions_per_reusable", b.avg_regions_per_reusable, 2);
            });
        }
    });
}

fn main() {
    let args = BenchArgs::parse();
    cayman_obs::init_from_env();

    let threads = std::env::var("CAYMAN_TABLE2_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        });
    let workloads = args.select_workloads(cayman::workloads::all());
    let rows = table2_rows_with(&workloads, threads, &args.analyse);
    let avg = average_row(&rows);

    if args.json {
        let doc = json::document(|o| {
            o.str("bench", "table2");
            o.str("opt_level", &args.analyse.opt_level.to_string());
            o.arr("rows", |a| {
                for r in &rows {
                    a.obj(|o| json_row(o, r));
                }
            });
            o.obj("average", |o| json_row(o, &avg));
            o.arr("top_accel", |a| {
                for c in top_accel_across(&rows) {
                    a.obj(|o| {
                        o.str("label", &c.label);
                        o.f64("ms", c.nanos as f64 * 1e-6, 3);
                        o.u64("designs", c.designs as u64);
                    });
                }
            });
            if let Some(store) = cayman_bench::env_design_store() {
                let s = store.stats();
                o.obj("store", |o| {
                    o.str("dir", &store.dir().display().to_string());
                    o.u64("hits", s.hits);
                    o.u64("misses", s.misses);
                    o.u64("writes", s.writes);
                    o.u64("corrupt", s.corrupt);
                    o.u64("version_skew", s.version_skew);
                    o.u64("key_mismatches", s.key_mismatches);
                    o.u64("evictions", s.evictions);
                });
            }
        });
        print!("{doc}");
        cayman_bench::flush_obs_outputs();
        return;
    }

    println!(
        "Table II — results under two area budgets (25% and 65% of a CVA6 tile), -{}",
        args.analyse.opt_level
    );
    println!(
        "{:<6} {:<26} | {:>7} {:>7} {:>7} | {:>4} {:>4} {:>4} {:>4} {:>4} {:>4} {:>5} | {:>7} {:>7} {:>7} | {:>4} {:>4} {:>4} {:>4} {:>4} {:>4} {:>5} | {:>8} {:>8} {:>5}",
        "Suite", "Benchmark",
        "ovN25", "ovQ25", "spd25", "#SB", "#PR", "#C", "#D", "#S", "#LB", "sav%",
        "ovN65", "ovQ65", "spd65", "#SB", "#PR", "#C", "#D", "#S", "#LB", "sav%",
        "cold(ms)", "warm(ms)", "hit%"
    );
    println!("{}", "-".repeat(186));
    for row in &rows {
        print_row(row);
    }
    println!("{}", "-".repeat(186));
    print_row(&avg);

    // Selection observability: cold vs memoised re-run, aggregated.
    let cold: f64 = rows.iter().map(|r| r.runtime_s).sum();
    let warm: f64 = rows.iter().map(|r| r.runtime_warm_s).sum();
    println!();
    println!("selection stats (warm re-runs, aggregated): {}", avg.stats);
    println!(
        "selection scheduler: {} with {} thread(s) per run (steer with CAYMAN_SELECT_SCHED=static|steal and CAYMAN_SELECT_THREADS)",
        if avg.stats.scheduler.is_empty() {
            "seq"
        } else {
            avg.stats.scheduler
        },
        avg.stats.threads.max(1)
    );
    println!(
        "design cache: cold {:.1} ms total -> warm {:.1} ms total ({:.1}x faster)",
        cold * 1e3,
        warm * 1e3,
        cold / warm.max(1e-12)
    );
    println!(
        "design cache stripes: {} entries over {} of 16 stripes, {} hits / {} misses / {} inserts",
        avg.cache.entries(),
        avg.cache.stripes_used(),
        avg.cache.hits(),
        avg.cache.misses(),
        avg.cache.inserts(),
    );
    if let Some(store) = cayman_bench::env_design_store() {
        let s = store.stats();
        println!(
            "design store {}: {} disk hits / {} misses this run, {} writes, {} corrupt, {} evicted",
            store.dir().display(),
            s.hits,
            s.misses,
            s.writes,
            s.corrupt,
            s.evictions,
        );
    }

    // Where the model time goes: the globally most expensive accel(v, R)
    // invocations across all cold runs.
    println!();
    println!("most expensive accel(v, R) calls (cold runs, benchmark/function#vertex:kind):");
    for c in top_accel_across(&rows) {
        println!(
            "  {:<40} {:>9.3} ms {:>4} designs",
            c.label,
            c.nanos as f64 * 1e-6,
            c.designs
        );
    }

    // The §IV-B merging claims: average regions per reusable accelerator.
    let avg_regions: f64 = rows
        .iter()
        .flat_map(|r| r.budgets.iter())
        .filter(|b| b.avg_regions_per_reusable > 0.0)
        .map(|b| b.avg_regions_per_reusable)
        .sum::<f64>()
        / rows
            .iter()
            .flat_map(|r| r.budgets.iter())
            .filter(|b| b.avg_regions_per_reusable > 0.0)
            .count()
            .max(1) as f64;
    println!();
    println!("avg regions per reusable accelerator: {avg_regions:.1} (paper: ~3)");

    cayman_bench::flush_obs_outputs();
}
