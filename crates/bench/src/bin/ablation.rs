//! Ablation study: how much each of Cayman's mechanisms contributes.
//!
//! For a representative benchmark per suite, the 65%-budget speedup is
//! reported with mechanisms removed one at a time:
//!
//! * **full** — the complete model,
//! * **−interfaces** — coupled-only (the paper's own Fig. 6 ablation),
//! * **−unroll** — unroll factors restricted to {1} (no partial-sum
//!   reductions, no inner unrolling),
//! * **−duplication** — duplication factors restricted to {1} (no parallel
//!   pipeline instances from outer-loop unrolling),
//! * **−merging** — area saving set aside (speedup unchanged; reported as
//!   the area delta instead).
//!
//! ```text
//! cargo run --release -p cayman-bench --bin ablation [-- -O0|-O1|-O2] [--json] [benchmark...]
//! ```
//!
//! Positional arguments restrict the study to the named picks; `--json`
//! emits one machine-readable document on stdout instead of the table.

use cayman::{Framework, ModelOptions, SelectOptions, CVA6_TILE_AREA};
use cayman_bench::{framework_for, json, BenchArgs};

const PICKS: [&str; 6] = ["3mm", "atax", "jacobi-2d", "spmv", "epic", "nnet-test"];

fn speedup_with(fw: &Framework, model: ModelOptions) -> f64 {
    let opts = SelectOptions {
        model,
        ..Default::default()
    };
    let sel = fw.select(&opts);
    fw.speedup(sel.best_under(0.65 * CVA6_TILE_AREA))
}

/// Repeat run of the full model: every `accel(v, R)` hits the design cache
/// warmed by the `full` pass, so this measures the DP itself.
fn warm_rerun(fw: &Framework) -> cayman::SelectionResult {
    fw.select(&SelectOptions::default())
}

struct AblationRow {
    name: &'static str,
    full: f64,
    no_iface: f64,
    no_unroll: f64,
    no_dup: f64,
    merge_save: f64,
    cache_hits: u64,
    cache_misses: u64,
    top_accel: Vec<String>,
    warm_stats: String,
    cache_len: usize,
}

fn main() {
    let args = BenchArgs::parse();
    cayman_obs::init_from_env();

    let mut rows = Vec::new();
    for name in args.select_names(&PICKS) {
        let w = cayman::workloads::by_name(name).expect("benchmark exists");
        let fw = framework_for(&w, &args.analyse);

        // The full-model pass is the cold one: keep its result so the top-k
        // accel(v, R) cost breakdown (populated only when the model actually
        // runs) can be reported per benchmark.
        let full_sel = fw.select(&SelectOptions::default());
        let full = fw.speedup(full_sel.best_under(0.65 * CVA6_TILE_AREA));
        let no_iface = speedup_with(&fw, ModelOptions::coupled_only());
        let no_unroll = speedup_with(
            &fw,
            ModelOptions {
                unroll_factors: vec![1],
                ..Default::default()
            },
        );
        let no_dup = speedup_with(
            &fw,
            ModelOptions {
                duplication_factors: vec![1],
                ..Default::default()
            },
        );
        let sel = warm_rerun(&fw);
        let merge_save = fw.report(&sel, 0.65).area_saving_pct;
        let (hits, misses) = fw.cache_totals();

        rows.push(AblationRow {
            name,
            full,
            no_iface,
            no_unroll,
            no_dup,
            merge_save,
            cache_hits: hits,
            cache_misses: misses,
            top_accel: full_sel
                .stats
                .top_accel_lines()
                .iter()
                .take(3)
                .cloned()
                .collect(),
            warm_stats: sel.stats.to_string(),
            cache_len: fw.cache_len(),
        });
    }

    if args.json {
        let doc = json::document(|o| {
            o.str("bench", "ablation");
            o.str("opt_level", &args.analyse.opt_level.to_string());
            o.f64("budget", 0.65, 2);
            o.arr("rows", |a| {
                for r in &rows {
                    a.obj(|o| {
                        o.str("name", r.name);
                        o.f64("full", r.full, 2);
                        o.f64("no_iface", r.no_iface, 2);
                        o.f64("no_unroll", r.no_unroll, 2);
                        o.f64("no_dup", r.no_dup, 2);
                        o.f64("merge_save_pct", r.merge_save, 1);
                        o.u64("cache_hits", r.cache_hits);
                        o.u64("cache_misses", r.cache_misses);
                        o.arr("top_accel", |a| {
                            for line in &r.top_accel {
                                a.str(line);
                            }
                        });
                    });
                }
            });
        });
        print!("{doc}");
        cayman_bench::flush_obs_outputs();
        return;
    }

    println!(
        "{:<12} | {:>8} {:>8} {:>8} {:>8} | {:>10}",
        "benchmark", "full", "-iface", "-unroll", "-dup", "merge-save"
    );
    println!("{}", "-".repeat(66));
    for r in &rows {
        println!(
            "{:<12} | {:>7.2}x {:>7.2}x {:>7.2}x {:>7.2}x | {:>9.0}%",
            r.name, r.full, r.no_iface, r.no_unroll, r.no_dup, r.merge_save
        );
        println!(
            "{:<12} |   warm re-run {} | framework cache: {} entries, {} hits / {} misses",
            "", r.warm_stats, r.cache_len, r.cache_hits, r.cache_misses
        );
        for line in &r.top_accel {
            println!("{:<12} |   accel {line}", "");
        }
    }
    println!();
    println!("-iface  : all accesses forced to the coupled interface");
    println!("-unroll : no inner-loop unrolling / partial-sum reductions");
    println!("-dup    : no parallel pipeline instances (outer-loop unrolling)");

    cayman_bench::flush_obs_outputs();
}
