//! Ablation study: how much each of Cayman's mechanisms contributes.
//!
//! For a representative benchmark per suite, the 65%-budget speedup is
//! reported with mechanisms removed one at a time:
//!
//! * **full** — the complete model,
//! * **−interfaces** — coupled-only (the paper's own Fig. 6 ablation),
//! * **−unroll** — unroll factors restricted to {1} (no partial-sum
//!   reductions, no inner unrolling),
//! * **−duplication** — duplication factors restricted to {1} (no parallel
//!   pipeline instances from outer-loop unrolling),
//! * **−merging** — area saving set aside (speedup unchanged; reported as
//!   the area delta instead).
//!
//! ```text
//! cargo run --release -p cayman-bench --bin ablation [-- -O0|-O1]
//! ```

use cayman::{Framework, ModelOptions, SelectOptions, CVA6_TILE_AREA};
use cayman_bench::analyse_options_from_args;

const PICKS: [&str; 6] = ["3mm", "atax", "jacobi-2d", "spmv", "epic", "nnet-test"];

fn speedup_with(fw: &Framework, model: ModelOptions) -> f64 {
    let opts = SelectOptions {
        model,
        ..Default::default()
    };
    let sel = fw.select(&opts);
    fw.speedup(sel.best_under(0.65 * CVA6_TILE_AREA))
}

/// Repeat run of the full model: every `accel(v, R)` hits the design cache
/// warmed by the `full` pass, so this measures the DP itself.
fn warm_rerun(fw: &Framework) -> cayman::SelectionResult {
    fw.select(&SelectOptions::default())
}

fn main() {
    let analyse = analyse_options_from_args();
    println!(
        "{:<12} | {:>8} {:>8} {:>8} {:>8} | {:>10}",
        "benchmark", "full", "-iface", "-unroll", "-dup", "merge-save"
    );
    println!("{}", "-".repeat(66));
    for name in PICKS {
        let w = cayman::workloads::by_name(name).expect("benchmark exists");
        let fw = Framework::from_workload_with(&w, &analyse).expect("analyses");

        // The full-model pass is the cold one: keep its result so the top-k
        // accel(v, R) cost breakdown (populated only when the model actually
        // runs) can be reported per benchmark.
        let full_sel = fw.select(&SelectOptions::default());
        let full = fw.speedup(full_sel.best_under(0.65 * CVA6_TILE_AREA));
        let no_iface = speedup_with(&fw, ModelOptions::coupled_only());
        let no_unroll = speedup_with(
            &fw,
            ModelOptions {
                unroll_factors: vec![1],
                ..Default::default()
            },
        );
        let no_dup = speedup_with(
            &fw,
            ModelOptions {
                duplication_factors: vec![1],
                ..Default::default()
            },
        );
        let sel = warm_rerun(&fw);
        let merge_save = fw.report(&sel, 0.65).area_saving_pct;

        println!(
            "{:<12} | {:>7.2}x {:>7.2}x {:>7.2}x {:>7.2}x | {:>9.0}%",
            name, full, no_iface, no_unroll, no_dup, merge_save
        );
        let (hits, misses) = fw.cache_totals();
        println!(
            "{:<12} |   warm re-run {} | framework cache: {} entries, {hits} hits / {misses} misses",
            "", sel.stats, fw.cache_len()
        );
        for line in full_sel.stats.top_accel_lines().iter().take(3) {
            println!("{:<12} |   accel {line}", "");
        }
    }
    println!();
    println!("-iface  : all accesses forced to the coupled interface");
    println!("-unroll : no inner-loop unrolling / partial-sum reductions");
    println!("-dup    : no parallel pipeline instances (outer-loop unrolling)");
}
