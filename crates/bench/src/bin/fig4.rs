//! Regenerates **Fig. 4**: the impact of data-access interfaces on
//! accelerator latency under three control-flow implementations of the
//! `y[i] = k·x[i] + b` loop:
//!
//! * **sequential loop** — per-iteration latency, coupled vs decoupled
//!   (paper: `6N` → `4N`),
//! * **loop pipelining** — achieved II, coupled vs decoupled
//!   (paper: II `3` → `1`),
//! * **loop unrolling ×2 (+ pipelining)** — per-pair initiation, coupled vs
//!   scratchpad with banking (paper: `9(N/2)` → `4(N/2)`).
//!
//! Interfaces are *forced* per column (this figure illustrates the interface
//! model itself, not the selection heuristic). Absolute cycle counts differ
//! from the paper's illustration; the orderings and linear-in-N scaling are
//! the reproduced shape.
//!
//! ```text
//! cargo run --release -p cayman-bench --bin fig4 [-- -O0|-O1|-O2]
//! ```

use cayman::hls::interface::InterfaceSpec;
use cayman::hls::pipeline::{pipeline_loop, res_mii};
use cayman::hls::schedule::schedule_block;
use cayman::ir::builder::ModuleBuilder;
use cayman::ir::instr::Instr;
use cayman::ir::{InstrId, Type};
use cayman::Framework;

fn saxpy(n: i64) -> cayman::ir::Module {
    let mut mb = ModuleBuilder::new("fig4");
    let x = mb.array("x", Type::F64, &[n as usize]);
    let y = mb.array("y", Type::F64, &[n as usize]);
    mb.function("main", &[], None, |fb| {
        fb.counted_loop(0, n, 1, |fb, i| {
            let xv = fb.load_idx(x, &[i]);
            let t = fb.fmul(fb.fconst(3.0), xv);
            let v = fb.fadd(t, fb.fconst(1.0));
            fb.store_idx(y, &[i], v);
        });
        fb.ret(None);
    });
    mb.finish()
}

fn main() {
    let analyse = cayman_bench::analyse_options_from_args();
    cayman_obs::init_from_env();
    println!("Fig. 4 — data-access interface impact on `y[i] = k*x[i]+b`");
    println!(
        "{:>6} | {:>11} {:>11} | {:>8} {:>8} | {:>11} {:>11}",
        "N", "seq-coup", "seq-dec", "II-coup", "II-dec", "u2-coup", "u2-spad"
    );
    for n in [64i64, 128, 256, 512, 1024] {
        let fw = Framework::from_module_with(saxpy(n), &analyse).expect("analyses");
        let inputs = fw.app.inputs();
        let inp = &inputs[0];
        let func = inp.func();
        let ctx = &fw.app.wpst.func_ctxs[0];
        let l = ctx.forest.ids().next().expect("one loop");
        let body_bb = ctx.forest.get(l).blocks[1]; // header, body, ...

        let force = |s: InterfaceSpec| {
            move |i: InstrId| {
                if matches!(func.instr(i), Instr::Load { .. } | Instr::Store { .. }) {
                    Some(s)
                } else {
                    Some(InterfaceSpec::coupled())
                }
            }
        };
        let coupled = force(InterfaceSpec::coupled());
        let decoupled = force(InterfaceSpec::decoupled());
        let spad = force(InterfaceSpec::scratchpad(2));

        // Sequential loop: N × per-iteration schedule length.
        let seq_coup = n as u64 * schedule_block(func, body_bb, &coupled, 1).length;
        let seq_dec = n as u64 * schedule_block(func, body_bb, &decoupled, 1).length;

        // Pipelined loop: achieved II.
        let pc = pipeline_loop(inp, l, 1, &coupled);
        let pd = pipeline_loop(inp, l, 1, &decoupled);

        // Unrolled ×2 (+ pipelined): total cycles per loop entry.
        let uc = pipeline_loop(inp, l, 2, &coupled);
        let us = pipeline_loop(inp, l, 2, &spad);

        println!(
            "{:>6} | {:>11} {:>11} | {:>8} {:>8} | {:>11.0} {:>11.0}",
            n, seq_coup, seq_dec, pc.ii, pd.ii, uc.cycles_per_entry, us.cycles_per_entry
        );
        // sanity: resMII drives the coupled pipelined case
        debug_assert!(
            res_mii(
                inp,
                &cayman::hls::pipeline::loop_body_instrs(inp, l),
                &coupled,
                1
            ) >= 2
        );
    }
    println!();
    println!("expected shape (paper): sequential 6N → 4N; pipelined II 3 → 1;");
    println!("unrolled-by-2 coupled ≫ scratchpad (9(N/2) → 4(N/2) in the paper's units).");
    cayman_bench::flush_obs_outputs();
}
