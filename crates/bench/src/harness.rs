//! A minimal, dependency-free micro-benchmark harness (replaces criterion,
//! which is unavailable offline).
//!
//! Policy: one untimed warm-up call, then timed batches until the total
//! measured time crosses a small budget (or an iteration cap), reporting the
//! mean and the minimum per-iteration time. The minimum is the robust
//! statistic for "how fast can this go"; the mean shows steady-state cost.

use std::hint::black_box;
use std::time::Instant;

/// Minimum total measured time before a benchmark stops, in seconds.
const TIME_BUDGET_S: f64 = 0.2;
/// Hard cap on timed iterations.
const MAX_ITERS: u32 = 200;
/// Minimum timed iterations, so `min` is meaningful even for slow cases.
const MIN_ITERS: u32 = 5;

/// One benchmark's measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark label.
    pub name: String,
    /// Timed iterations executed.
    pub iters: u32,
    /// Mean seconds per iteration.
    pub mean_s: f64,
    /// Minimum seconds per iteration.
    pub min_s: f64,
}

impl Measurement {
    /// One aligned report line: `name  min  mean  (iters)`.
    pub fn line(&self) -> String {
        format!(
            "{:<36} min {:>10} mean {:>10} ({} iters)",
            self.name,
            fmt_duration(self.min_s),
            fmt_duration(self.mean_s),
            self.iters
        )
    }
}

/// Formats seconds with an adaptive unit.
pub fn fmt_duration(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Times `f` under the harness policy and returns the measurement. The
/// closure's result is passed through [`black_box`] so the optimiser cannot
/// delete the work.
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) -> Measurement {
    black_box(f()); // warm-up (page-in, lazy allocations, branch training)
    let mut iters = 0u32;
    let mut total = 0.0f64;
    let mut min = f64::INFINITY;
    while (total < TIME_BUDGET_S || iters < MIN_ITERS) && iters < MAX_ITERS {
        let t0 = Instant::now();
        black_box(f());
        let dt = t0.elapsed().as_secs_f64();
        total += dt;
        min = min.min(dt);
        iters += 1;
    }
    Measurement {
        name: name.to_string(),
        iters,
        mean_s: total / iters as f64,
        min_s: min,
    }
}

/// Runs and prints a benchmark in one step.
pub fn run<T>(name: &str, f: impl FnMut() -> T) -> Measurement {
    let m = bench(name, f);
    println!("{}", m.line());
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_something() {
        let m = bench("spin", || {
            let mut acc = 0u64;
            for i in 0..1000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(m.iters >= MIN_ITERS);
        assert!(m.min_s > 0.0);
        assert!(m.mean_s >= m.min_s);
        assert!(m.line().contains("spin"));
    }

    #[test]
    fn durations_format_with_adaptive_units() {
        assert!(fmt_duration(2.5).ends_with(" s"));
        assert!(fmt_duration(2.5e-3).ends_with(" ms"));
        assert!(fmt_duration(2.5e-6).ends_with(" µs"));
        assert!(fmt_duration(2.5e-9).ends_with(" ns"));
    }
}
