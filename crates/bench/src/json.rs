//! A small shared JSON writer for machine-readable bench output: the
//! `BENCH_*.json` artifacts and the bins' `--json` mode all serialise
//! through this one module instead of hand-rolling `write!` calls.
//! Dependency-free (the workspace builds offline); output is pretty-printed
//! with two-space indentation, stable field order, and `{:.N}` float
//! precision chosen per field.

use std::fmt::Write as _;

/// Escapes a string for a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Builds one pretty-printed JSON object and returns the document text
/// (with a trailing newline, ready for `fs::write`).
pub fn document(build: impl FnOnce(&mut Obj)) -> String {
    let mut w = Writer {
        out: String::new(),
        indent: 0,
    };
    w.out.push('{');
    w.indent += 1;
    let mut obj = Obj {
        w: &mut w,
        first: true,
    };
    build(&mut obj);
    let first = obj.first;
    w.indent -= 1;
    if !first {
        w.newline();
    }
    w.out.push_str("}\n");
    w.out
}

struct Writer {
    out: String,
    indent: usize,
}

impl Writer {
    fn newline(&mut self) {
        self.out.push('\n');
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
    }
}

/// Writes the fields of one JSON object.
pub struct Obj<'a> {
    w: &'a mut Writer,
    first: bool,
}

impl Obj<'_> {
    fn key(&mut self, key: &str) {
        if !self.first {
            self.w.out.push(',');
        }
        self.first = false;
        self.w.newline();
        let _ = write!(self.w.out, "\"{}\": ", escape(key));
    }

    /// A string field.
    pub fn str(&mut self, key: &str, value: &str) {
        self.key(key);
        let _ = write!(self.w.out, "\"{}\"", escape(value));
    }

    /// An unsigned integer field.
    pub fn u64(&mut self, key: &str, value: u64) {
        self.key(key);
        let _ = write!(self.w.out, "{value}");
    }

    /// A float field rendered with `precision` decimal places.
    pub fn f64(&mut self, key: &str, value: f64, precision: usize) {
        self.key(key);
        if value.is_finite() {
            let _ = write!(self.w.out, "{value:.precision$}");
        } else {
            self.w.out.push_str("null");
        }
    }

    /// A boolean field.
    pub fn bool(&mut self, key: &str, value: bool) {
        self.key(key);
        let _ = write!(self.w.out, "{value}");
    }

    /// A nested object field.
    pub fn obj(&mut self, key: &str, build: impl FnOnce(&mut Obj)) {
        self.key(key);
        self.w.out.push('{');
        self.w.indent += 1;
        let mut inner = Obj {
            w: self.w,
            first: true,
        };
        build(&mut inner);
        let first = inner.first;
        self.w.indent -= 1;
        if !first {
            self.w.newline();
        }
        self.w.out.push('}');
    }

    /// A nested array field.
    pub fn arr(&mut self, key: &str, build: impl FnOnce(&mut Arr)) {
        self.key(key);
        self.w.out.push('[');
        self.w.indent += 1;
        let mut inner = Arr {
            w: self.w,
            first: true,
        };
        build(&mut inner);
        let first = inner.first;
        self.w.indent -= 1;
        if !first {
            self.w.newline();
        }
        self.w.out.push(']');
    }
}

/// Writes the elements of one JSON array.
pub struct Arr<'a> {
    w: &'a mut Writer,
    first: bool,
}

impl Arr<'_> {
    fn sep(&mut self) {
        if !self.first {
            self.w.out.push(',');
        }
        self.first = false;
        self.w.newline();
    }

    /// An object element.
    pub fn obj(&mut self, build: impl FnOnce(&mut Obj)) {
        self.sep();
        self.w.out.push('{');
        self.w.indent += 1;
        let mut inner = Obj {
            w: self.w,
            first: true,
        };
        build(&mut inner);
        let first = inner.first;
        self.w.indent -= 1;
        if !first {
            self.w.newline();
        }
        self.w.out.push('}');
    }

    /// A string element.
    pub fn str(&mut self, value: &str) {
        self.sep();
        let _ = write!(self.w.out, "\"{}\"", escape(value));
    }

    /// A float element with `precision` decimal places.
    pub fn f64(&mut self, value: f64, precision: usize) {
        self.sep();
        if value.is_finite() {
            let _ = write!(self.w.out, "{value:.precision$}");
        } else {
            self.w.out.push_str("null");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_shape_and_escaping() {
        let doc = document(|o| {
            o.str("name", "a \"quoted\"\nthing");
            o.u64("count", 3);
            o.f64("ratio", 1.0 / 3.0, 3);
            o.bool("ok", true);
            o.f64("bad", f64::NAN, 2);
            o.arr("items", |a| {
                a.obj(|o| o.u64("i", 0));
                a.obj(|o| o.u64("i", 1));
                a.f64(2.5, 1);
                a.str("x");
            });
            o.obj("empty", |_| {});
            o.obj("nested", |o| o.str("k", "v"));
        });
        // Parses under the obs JSON parser (round-trip compatibility).
        let parsed = cayman_obs::trace::parse_json(&doc).expect("valid JSON");
        assert_eq!(
            parsed.get("name").and_then(|v| v.as_str()),
            Some("a \"quoted\"\nthing")
        );
        assert_eq!(parsed.get("count").and_then(|v| v.as_f64()), Some(3.0));
        assert_eq!(parsed.get("ratio").and_then(|v| v.as_f64()), Some(0.333));
        assert_eq!(
            parsed
                .get("bad")
                .map(|v| matches!(v, cayman_obs::trace::Json::Null)),
            Some(true)
        );
        assert_eq!(
            parsed
                .get("items")
                .and_then(|v| v.as_arr())
                .map(|a| a.len()),
            Some(4)
        );
        assert!(doc.ends_with("}\n"));
    }
}
