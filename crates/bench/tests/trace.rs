//! End-to-end trace test: a traced Table II run over one benchmark must
//! produce a well-formed Chrome trace — balanced B/E pairs, monotone
//! per-thread timestamps (both checked by `validate_chrome`), spans from
//! every pipeline stage, and one lane per work-stealing selection worker.

use cayman_obs::trace::{parse_json, validate_chrome};

#[test]
fn traced_table2_run_emits_wellformed_chrome_trace() {
    cayman_obs::enable();
    cayman_obs::lane(|| "main".to_string());
    let w = cayman::workloads::by_name("trisolv").expect("exists");
    let row = cayman_bench::table2_row(&w);
    cayman_obs::disable();
    let trace = cayman_obs::drain();
    assert_eq!(row.budgets.len(), 2);
    assert!(!trace.events.is_empty());

    // The Chrome export passes the full validator: parses, every B closed by
    // a same-name E on its thread, per-thread timestamps non-decreasing.
    let chrome = trace.to_chrome();
    let summary = validate_chrome(&chrome).expect("valid Chrome trace");
    assert!(summary.spans > 0);

    // Spans from all five pipeline stages are present.
    for prefix in ["normalize.", "profile.", "select.", "model.", "merge."] {
        assert!(
            summary.has_span_prefix(prefix),
            "no `{prefix}*` span; got {:?}",
            summary.span_names
        );
    }

    // One lane per work-stealing worker (table2 selection defaults to >= 2
    // threads), plus the lane this test named.
    assert!(
        summary.lanes.iter().any(|l| l == "main"),
        "{:?}",
        summary.lanes
    );
    assert!(
        summary
            .lanes
            .iter()
            .any(|l| l.starts_with("select.worker.")),
        "no worker lane; got {:?}",
        summary.lanes
    );

    // The design-cache counters rode along (the warm re-run hits, the cold
    // run misses).
    assert!(
        summary
            .counters
            .iter()
            .any(|c| c.starts_with("select.cache.")),
        "{:?}",
        summary.counters
    );

    // Every JSONL line is a standalone JSON object.
    let jsonl = trace.to_jsonl();
    assert!(!jsonl.is_empty());
    for line in jsonl.lines() {
        parse_json(line).unwrap_or_else(|e| panic!("bad JSONL line `{line}`: {e}"));
    }

    // The human summary names the selection span.
    let text = trace.summary();
    assert!(text.contains("select.run"), "{text}");
}
