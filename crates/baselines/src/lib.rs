//! # cayman-baselines
//!
//! Models of the two state-of-the-art frameworks Cayman is evaluated against
//! (paper §IV, Table II, Fig. 6):
//!
//! * [`novia`] — **NOVIA** \[MICRO'21\], a custom-functional-unit (CFU)
//!   synthesis framework: candidates are *data-flow graphs inside basic
//!   blocks only* — no control flow, no memory access; operands enter and
//!   results leave through scalar registers. The win is intra-block ILP; the
//!   cost is that loads, stores and all loop control stay on the CPU.
//! * [`qscores`] — **QsCores** \[MICRO'11\], an off-core accelerator (OCA)
//!   synthesis framework: candidates may contain control flow and memory
//!   accesses, but the synthesised control logic is *sequential* (no
//!   pipelining, no unrolling) and data access goes through a slow
//!   scan-chain-style interface with high latency and low bandwidth.
//!
//! Both are implemented as [`cayman_select::AccelModel`]s so the identical
//! Algorithm 1 selection machinery (with the identical profile) produces
//! their Pareto fronts — the comparison isolates the *accelerator model*
//! differences exactly as Table I frames them.

pub mod novia;
pub mod qscores;

pub use novia::NoviaModel;
pub use qscores::QsCoresModel;
