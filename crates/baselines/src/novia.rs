//! The NOVIA baseline: inline custom functional units over basic-block
//! data-flow graphs.
//!
//! NOVIA discovers "non-conventional inline accelerators": the compute
//! portion of a basic block (excluding memory accesses, address computation
//! and control) is collapsed into one fused in-pipeline functional unit
//! clocked with the CPU. The modelled gain is the difference between issuing
//! every operation on the in-order core and evaluating the DFG's critical
//! path in the fused unit; loads/stores remain ordinary CPU instructions.

use cayman_hls::design::AcceleratorDesign;
use cayman_hls::inputs::{Candidate, FuncInputs};
use cayman_hls::oplib::{dedicated_area, ACCEL_FREQ_HZ};
use cayman_hls::schedule::critical_path_with;
use cayman_ir::cpu_model::{instr_cycles, CPU_FREQ_HZ};
use cayman_ir::instr::Instr;
use cayman_ir::InstrId;
use cayman_select::{AccelModel, ModelId};

/// Per-invocation overhead of triggering the inline unit (operand routing).
pub const NOVIA_INVOKE_CYCLES: u64 = 2;

/// The NOVIA accelerator model.
///
/// Only *bb* candidates yield designs; ctrl-flow regions are rejected —
/// NOVIA "fails to support control flow and memory accesses" (§IV-B).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoviaModel;

impl AccelModel for NoviaModel {
    fn designs(&self, inputs: &FuncInputs<'_>, cand: &Candidate) -> Vec<AcceleratorDesign> {
        if !cand.is_bb || cand.entries == 0 {
            return Vec::new();
        }
        let func = inputs.func();
        let [block] = cand.blocks.as_slice() else {
            return Vec::new();
        };

        // The offloadable DFG: compute ops only.
        let dfg: Vec<InstrId> = func
            .block(*block)
            .instrs
            .iter()
            .copied()
            .filter(|&i| {
                !matches!(
                    func.instr(i),
                    Instr::Load { .. }
                        | Instr::Store { .. }
                        | Instr::Gep { .. }
                        | Instr::Phi { .. }
                        | Instr::Call { .. }
                )
            })
            .collect();
        if dfg.len() < 2 {
            // A single operation gains nothing from fusion.
            return Vec::new();
        }

        // CPU cycles the DFG costs when issued sequentially on the core.
        let cpu_dfg: u64 = dfg.iter().map(|&i| instr_cycles(func.instr(i))).sum();
        // Fused unit evaluates the DFG along its critical path (CPU clock;
        // per-op latencies match the core's functional units).
        let latency = |i: InstrId| instr_cycles(func.instr(i)).max(1);
        let cp = critical_path_with(func, &dfg, &latency) + NOVIA_INVOKE_CYCLES;

        let count = inputs.count(*block);
        let cpu_cycles_covered = cpu_dfg * count;
        // Express the inline unit's time in accelerator-frequency cycles so
        // `saved_seconds` (which divides by ACCEL_FREQ_HZ) is exact.
        let accel_cycles_total = cp as f64 * count as f64 * (ACCEL_FREQ_HZ / CPU_FREQ_HZ);

        let area: f64 = dfg.iter().map(|&i| dedicated_area(func.instr(i))).sum();

        vec![AcceleratorDesign {
            func: cand.func,
            blocks: cand.blocks.clone(),
            unroll: 1,
            pipelined: Vec::new(),
            pipelined_detail: Vec::new(),
            interfaces: Vec::new(), // scalar-only: no memory interfaces
            seq_blocks: 1,
            accel_cycles_total,
            area,
            cpu_cycles: cpu_cycles_covered,
            entries: cand.entries,
        }]
    }

    fn cache_id(&self) -> Option<ModelId> {
        Some(ModelId {
            name: "novia",
            options: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cayman_analysis::access::AccessAnalysis;
    use cayman_analysis::ctx::FuncCtx;
    use cayman_analysis::memdep::analyse_loop_deps;
    use cayman_analysis::scev::Scev;
    use cayman_ir::builder::ModuleBuilder;
    use cayman_ir::{FuncId, Module, Type};

    struct Owned {
        module: Module,
        ctx: FuncCtx,
        accesses: AccessAnalysis,
        deps: Vec<cayman_analysis::memdep::LoopDeps>,
    }

    fn prepare(module: Module) -> Owned {
        let f = module.function(FuncId(0));
        let ctx = FuncCtx::compute(f);
        let mut scev = Scev::new(f, &ctx);
        let accesses = AccessAnalysis::run(&module, f, &ctx, &mut scev);
        let deps = analyse_loop_deps(f, &ctx, &mut scev, &accesses);
        Owned {
            ctx,
            accesses,
            deps,
            module,
        }
    }

    fn compute_heavy_module() -> Module {
        let mut mb = ModuleBuilder::new("t");
        let x = mb.array("x", Type::F64, &[64]);
        mb.function("main", &[], None, |fb| {
            fb.counted_loop(0, 64, 1, |fb, i| {
                let v = fb.load_idx(x, &[i]);
                // a wide DFG with exploitable ILP
                let a = fb.fmul(v, fb.fconst(1.1));
                let b = fb.fmul(v, fb.fconst(2.2));
                let c = fb.fmul(v, fb.fconst(3.3));
                let d = fb.fadd(a, b);
                let e = fb.fadd(c, d);
                fb.store_idx(x, &[i], e);
            });
            fb.ret(None);
        });
        mb.finish()
    }

    #[test]
    fn bb_candidate_gets_a_cfu() {
        let o = prepare(compute_heavy_module());
        let inp = FuncInputs {
            module: &o.module,
            func_id: FuncId(0),
            ctx: &o.ctx,
            accesses: &o.accesses,
            deps: &o.deps,
            trips: &[64.0],
            block_counts: &[1, 65, 64, 1],
            content_fp: cayman_ir::fingerprint_function(o.module.function(FuncId(0))),
        };
        let cand = Candidate {
            func: FuncId(0),
            blocks: vec![cayman_ir::BlockId(2)],
            entries: 64,
            cpu_cycles: 64 * 40,
            is_bb: true,
            content_fp: inp.content_fp,
        };
        let designs = NoviaModel.designs(&inp, &cand);
        assert_eq!(designs.len(), 1);
        let d = &designs[0];
        // scalar-only: no memory interfaces
        assert!(d.interfaces.is_empty());
        // the fused unit saves time (ILP: 3 parallel fmuls)
        assert!(d.saved_seconds() > 0.0, "saved {}", d.saved_seconds());
        // it must not claim the whole block's CPU time (loads excluded)
        assert!(d.cpu_cycles < cand.cpu_cycles);
        assert!(d.area > 0.0);
    }

    #[test]
    fn ctrl_flow_candidates_are_rejected() {
        let o = prepare(compute_heavy_module());
        let inp = FuncInputs {
            module: &o.module,
            func_id: FuncId(0),
            ctx: &o.ctx,
            accesses: &o.accesses,
            deps: &o.deps,
            trips: &[64.0],
            block_counts: &[1, 65, 64, 1],
            content_fp: cayman_ir::fingerprint_function(o.module.function(FuncId(0))),
        };
        let l = o.ctx.forest.ids().next().expect("loop");
        let cand = Candidate {
            func: FuncId(0),
            blocks: o.ctx.forest.get(l).blocks.clone(),
            entries: 1,
            cpu_cycles: 5000,
            is_bb: false,
            content_fp: inp.content_fp,
        };
        assert!(NoviaModel.designs(&inp, &cand).is_empty());
    }

    #[test]
    fn trivial_blocks_are_rejected() {
        let o = prepare(compute_heavy_module());
        let inp = FuncInputs {
            module: &o.module,
            func_id: FuncId(0),
            ctx: &o.ctx,
            accesses: &o.accesses,
            deps: &o.deps,
            trips: &[64.0],
            block_counts: &[1, 65, 64, 1],
            content_fp: cayman_ir::fingerprint_function(o.module.function(FuncId(0))),
        };
        // entry block has no compute DFG
        let cand = Candidate {
            func: FuncId(0),
            blocks: vec![cayman_ir::BlockId(0)],
            entries: 1,
            cpu_cycles: 10,
            is_bb: true,
            content_fp: inp.content_fp,
        };
        assert!(NoviaModel.designs(&inp, &cand).is_empty());
    }
}
