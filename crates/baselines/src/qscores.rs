//! The QsCores baseline: off-core accelerators with sequential control and a
//! slow scan-chain data-access interface.
//!
//! QsCores ("quasi-specific cores") extract whole regions — control flow and
//! memory access included — but synthesise *sequential* control logic: one
//! basic block at a time, each scheduled on a time-shared datapath, with no
//! loop pipelining or unrolling. Memory operations traverse a scan-chain
//! interface "characterized by high latency and low bandwidth" (§II-B): every
//! load pays a long round-trip and accesses serialise on the single chain.

use cayman_hls::design::AcceleratorDesign;
use cayman_hls::inputs::{Candidate, FuncInputs};
use cayman_hls::interface::InterfaceSpec;
use cayman_hls::oplib::{accel_latency, fu_area, fu_class, FuClass, FSM_STATE_AREA, REG_AREA};
use cayman_hls::schedule::critical_path_with;
use cayman_ir::instr::Instr;
use cayman_ir::InstrId;
use cayman_select::{AccelModel, ModelId};
use std::collections::BTreeMap;

/// Scan-chain load latency in accelerator cycles.
pub const SCAN_LOAD_LATENCY: u64 = 3;
/// Scan-chain store latency in accelerator cycles.
pub const SCAN_STORE_LATENCY: u64 = 2;
/// Area of the scan-chain interface (one per accelerator).
pub const SCAN_CHAIN_AREA: f64 = 1_000.0;
/// Offload/synchronisation cycles per invocation (scan-in of live values,
/// start, scan-out of results).
pub const QSCORES_INVOKE_CYCLES: f64 = 40.0;

/// The QsCores accelerator model.
#[derive(Debug, Clone, Copy, Default)]
pub struct QsCoresModel;

impl AccelModel for QsCoresModel {
    fn designs(&self, inputs: &FuncInputs<'_>, cand: &Candidate) -> Vec<AcceleratorDesign> {
        if cand.entries == 0 {
            return Vec::new();
        }
        let func = inputs.func();

        let latency = |i: InstrId| -> u64 {
            match func.instr(i) {
                Instr::Load { .. } => SCAN_LOAD_LATENCY,
                Instr::Store { .. } => SCAN_STORE_LATENCY,
                other => accel_latency(other),
            }
        };

        let mut accel_cycles = 0.0f64;
        let mut states = 0u64;
        let mut seq_blocks = 0usize;
        let mut classes: BTreeMap<FuClass, f64> = BTreeMap::new();
        let mut regs = 0.0f64;
        let mut interfaces: Vec<(InstrId, InterfaceSpec)> = Vec::new();

        for &b in &cand.blocks {
            let instrs = &func.block(b).instrs;
            let cp = critical_path_with(func, instrs, &latency);
            // Scan-chain bandwidth: one access in flight at a time — the
            // block cannot finish faster than the serialised accesses.
            let mem_serial: u64 = instrs
                .iter()
                .filter(|&&i| matches!(func.instr(i), Instr::Load { .. } | Instr::Store { .. }))
                .map(|&i| latency(i))
                .sum();
            let len = cp.max(mem_serial).max(1);
            accel_cycles += inputs.count(b) as f64 * len as f64;
            states += len;
            let mut nontrivial = false;
            for &i in instrs {
                let instr = func.instr(i);
                if !matches!(instr, Instr::Phi { .. }) {
                    nontrivial = true;
                }
                if let Some(c) = fu_class(instr) {
                    let e = classes.entry(c).or_insert(0.0);
                    *e = e.max(fu_area(c));
                }
                regs += REG_AREA;
                if matches!(instr, Instr::Load { .. } | Instr::Store { .. }) {
                    // QsCores' slow interface is closest to "coupled" in the
                    // taxonomy; counted for reporting symmetry.
                    interfaces.push((i, InterfaceSpec::coupled()));
                }
            }
            if nontrivial {
                seq_blocks += 1;
            }
        }

        accel_cycles += cand.entries as f64 * QSCORES_INVOKE_CYCLES;

        let area =
            classes.values().sum::<f64>() + regs + SCAN_CHAIN_AREA + FSM_STATE_AREA * states as f64;

        vec![AcceleratorDesign {
            func: cand.func,
            blocks: cand.blocks.clone(),
            unroll: 1,
            pipelined: Vec::new(),
            pipelined_detail: Vec::new(),
            interfaces,
            seq_blocks,
            accel_cycles_total: accel_cycles,
            area,
            cpu_cycles: cand.cpu_cycles,
            entries: cand.entries,
        }]
    }

    fn cache_id(&self) -> Option<ModelId> {
        Some(ModelId {
            name: "qscores",
            options: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cayman_analysis::access::AccessAnalysis;
    use cayman_analysis::ctx::FuncCtx;
    use cayman_analysis::memdep::analyse_loop_deps;
    use cayman_analysis::scev::Scev;
    use cayman_hls::interface::ModelOptions;
    use cayman_ir::builder::ModuleBuilder;
    use cayman_ir::interp::Interp;
    use cayman_ir::{FuncId, Module, Type};

    struct Owned {
        module: Module,
        ctx: FuncCtx,
        accesses: AccessAnalysis,
        deps: Vec<cayman_analysis::memdep::LoopDeps>,
        counts: Vec<u64>,
        total_cycles: u64,
    }

    fn prepare(module: Module) -> Owned {
        module.verify().expect("verifies");
        let exec = Interp::new(&module).run(&[]).expect("runs");
        let f = module.function(FuncId(0));
        let ctx = FuncCtx::compute(f);
        let mut scev = Scev::new(f, &ctx);
        let accesses = AccessAnalysis::run(&module, f, &ctx, &mut scev);
        let deps = analyse_loop_deps(f, &ctx, &mut scev, &accesses);
        Owned {
            ctx,
            accesses,
            deps,
            counts: exec.block_counts[0].clone(),
            total_cycles: exec.total_cycles,
            module,
        }
    }

    fn streaming_kernel() -> Module {
        let mut mb = ModuleBuilder::new("t");
        let x = mb.array("x", Type::F64, &[512]);
        let y = mb.array("y", Type::F64, &[512]);
        mb.function("main", &[], None, |fb| {
            fb.counted_loop(0, 512, 1, |fb, i| {
                let xv = fb.load_idx(x, &[i]);
                let t = fb.fmul(fb.fconst(3.0), xv);
                let v = fb.fadd(t, fb.fconst(1.0));
                fb.store_idx(y, &[i], v);
            });
            fb.ret(None);
        });
        mb.finish()
    }

    fn loop_candidate(o: &Owned) -> (FuncInputs<'_>, Candidate) {
        let inp = FuncInputs {
            module: &o.module,
            func_id: FuncId(0),
            ctx: &o.ctx,
            accesses: &o.accesses,
            deps: &o.deps,
            trips: &[512.0],
            block_counts: &o.counts,
            content_fp: cayman_ir::fingerprint_function(o.module.function(FuncId(0))),
        };
        let l = o.ctx.forest.ids().next().expect("loop");
        let lp = o.ctx.forest.get(l);
        let cpu: u64 = lp
            .blocks
            .iter()
            .map(|&b| o.counts[b.index()] * cayman_ir::cpu_model::block_cycles(inp.func(), b))
            .sum();
        let cand = Candidate {
            func: FuncId(0),
            blocks: lp.blocks.clone(),
            entries: 1,
            cpu_cycles: cpu,
            is_bb: false,
            content_fp: inp.content_fp,
        };
        (inp, cand)
    }

    #[test]
    fn qscores_accepts_control_flow_but_is_slow() {
        let o = prepare(streaming_kernel());
        let (inp, cand) = loop_candidate(&o);
        let qs = QsCoresModel.designs(&inp, &cand);
        assert_eq!(qs.len(), 1);
        let cayman = cayman_hls::design::generate_designs(&inp, &cand, &ModelOptions::default());
        let best_cayman = cayman
            .iter()
            .map(|d| d.accel_cycles_total)
            .fold(f64::INFINITY, f64::min);
        assert!(
            qs[0].accel_cycles_total > 3.0 * best_cayman,
            "scan-chain + sequential control loses big: {} vs {}",
            qs[0].accel_cycles_total,
            best_cayman
        );
        // but QsCores is area-lean (shared FUs, no AGUs/scratchpads)
        let best_cayman_pipe = cayman
            .iter()
            .filter(|d| !d.pipelined.is_empty())
            .map(|d| d.area)
            .fold(f64::INFINITY, f64::min);
        assert!(qs[0].area < best_cayman_pipe);
        let _ = o.total_cycles;
    }

    #[test]
    fn qscores_never_pipelines_or_unrolls() {
        let o = prepare(streaming_kernel());
        let (inp, cand) = loop_candidate(&o);
        let qs = QsCoresModel.designs(&inp, &cand);
        assert!(qs[0].pipelined.is_empty());
        assert_eq!(qs[0].unroll, 1);
    }
}
