//! # cayman-testkit
//!
//! A dependency-free test kit so the whole workspace builds and tests with
//! **zero network access**: a deterministic [`Rng`] (splitmix64) replacing
//! `rand`, and a minimal property-test harness ([`prop_check!`]) replacing
//! `proptest`.
//!
//! The harness runs a fixed number of deterministic cases per property; on
//! failure it reports the case index and the 64-bit seed that reproduces it,
//! so a failing case can be replayed with [`Rng::new`] in a scratch test.
//!
//! ## Shrinking
//!
//! On failure the harness additionally *shrinks*: it replays the failing
//! seed with the generator's draw ranges narrowed toward their lower bounds
//! ([`Rng::with_shrink`]), from most to least aggressive factor, and reports
//! the smallest case that still fails alongside the original. Generators get
//! this for free when they put the "simpler" end of every range at `lo` and
//! the simpler variants first in [`Rng::choose`] slices — sizes shrink,
//! optional features (drawn via [`Rng::bool`]) drop out.
//!
//! ```
//! use cayman_testkit::{prop_check, prop_assert, prop_assert_eq};
//!
//! prop_check!(cases = 64, |rng| {
//!     let a = rng.range_i64(-100, 100);
//!     let b = rng.range_i64(-100, 100);
//!     prop_assert_eq!(a + b, b + a);
//!     prop_assert!((a + b) - b == a, "round trip failed for a={a} b={b}");
//!     Ok(())
//! });
//! ```

pub mod program;
pub mod tree;

use std::fmt::Write as _;

/// Default number of cases [`prop_check!`] runs when none is given.
pub const DEFAULT_CASES: u64 = 96;

/// A splitmix64 pseudo-random generator: tiny, fast, and statistically solid
/// for test-data generation. Deterministic for a given seed on every
/// platform.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
    /// Shrink factor in `[0, 1]`: `0.0` draws from full ranges, larger
    /// values narrow every `range_*` toward its lower bound and bias
    /// [`Rng::bool`] toward `false`.
    shrink: f64,
}

impl Rng {
    /// Creates a generator from a seed (no shrinking).
    pub fn new(seed: u64) -> Self {
        Rng::with_shrink(seed, 0.0)
    }

    /// Creates a generator whose draws are shrunk by `shrink`: every
    /// `range_*(lo, hi)` keeps only the lowest `1 - shrink` fraction of its
    /// span (at least one value), and [`Rng::bool`] returns `true` with
    /// probability `(1 - shrink) / 2`. `with_shrink(seed, 0.0)` is exactly
    /// [`Rng::new`]`(seed)`, draw for draw.
    ///
    /// # Panics
    ///
    /// Panics if `shrink` is not in `[0, 1]`.
    pub fn with_shrink(seed: u64, shrink: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&shrink),
            "shrink factor {shrink} outside [0, 1]"
        );
        Rng {
            state: seed,
            shrink,
        }
    }

    /// The shrink factor this generator was built with.
    pub fn shrink_factor(&self) -> f64 {
        self.shrink
    }

    /// The next raw 64-bit value (the splitmix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The next 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform `f64` in `[0, 1)` (53 random mantissa bits).
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.f64() * (hi - lo) * (1.0 - self.shrink)
    }

    /// A uniform `i64` in `[lo, hi)`; under shrinking, in the lowest
    /// `1 - shrink` fraction of that range.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let mut span = hi.wrapping_sub(lo) as u64;
        if self.shrink > 0.0 {
            span = ((span as f64 * (1.0 - self.shrink)).ceil() as u64).clamp(1, span);
        }
        lo.wrapping_add((self.next_u64() % span) as i64)
    }

    /// A uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_i64(lo as i64, hi as i64) as usize
    }

    /// A uniform `u32` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.range_i64(lo as i64, hi as i64) as u32
    }

    /// A fair coin flip; under shrinking, biased toward `false` (so
    /// bool-gated generator features drop out of shrunk cases).
    pub fn bool(&mut self) -> bool {
        if self.shrink > 0.0 {
            self.f64() < 0.5 * (1.0 - self.shrink)
        } else {
            self.next_u64() & 1 == 1
        }
    }

    /// A uniformly chosen element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.range_usize(0, items.len())]
    }
}

/// Derives the per-case seed for `prop_check!` from a property name and case
/// index. Exposed so a failing case can be replayed exactly.
pub fn case_seed(name: &str, case: u64) -> u64 {
    // FNV-1a over the name, mixed with the case index through one splitmix
    // step for avalanche.
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    Rng::new(h ^ case.wrapping_mul(0x2545_F491_4F6C_DD1D)).next_u64()
}

/// The shrink factors `run_prop` tries on a failing seed, most aggressive
/// first; the first that still fails is reported as the minimal case.
pub const SHRINK_FACTORS: [f64; 3] = [0.75, 0.5, 0.25];

/// Extracts a displayable message from a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(p) => match p.downcast::<&'static str>() {
            Ok(s) => (*s).to_string(),
            Err(_) => "<non-string panic>".to_string(),
        },
    }
}

/// Replays `property` on `seed` at each [`SHRINK_FACTORS`] entry (most
/// aggressive narrowing first) and returns the first factor that still
/// fails, with its failure message. Panics inside the property count as
/// failures: a shrunk case may trip a different assertion than the original.
fn shrink_failure<F>(seed: u64, property: &mut F) -> Option<(f64, String)>
where
    F: FnMut(&mut Rng) -> Result<(), String>,
{
    for &factor in &SHRINK_FACTORS {
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            property(&mut Rng::with_shrink(seed, factor))
        }));
        match outcome {
            Ok(Ok(())) => {}
            Ok(Err(msg)) => return Some((factor, msg)),
            Err(payload) => return Some((factor, panic_message(payload))),
        }
    }
    None
}

/// Runs `cases` deterministic cases of `property`, panicking with a
/// seed-report on the first failure. Before reporting, the failing seed is
/// replayed at the [`SHRINK_FACTORS`] to find a smaller case that still
/// fails (see the module docs on shrinking). Prefer the [`prop_check!`]
/// macro, which fills in the enclosing test's name.
///
/// # Panics
///
/// Panics when the property returns `Err` for any case.
pub fn run_prop<F>(name: &str, cases: u64, mut property: F)
where
    F: FnMut(&mut Rng) -> Result<(), String>,
{
    for case in 0..cases {
        let seed = case_seed(name, case);
        let mut rng = Rng::new(seed);
        if let Err(msg) = property(&mut rng) {
            let mut report = String::new();
            let _ = write!(
                report,
                "property `{name}` failed at case {case}/{cases} (seed {seed:#018x}):\n  {msg}\n"
            );
            match shrink_failure(seed, &mut property) {
                Some((factor, small)) => {
                    let _ = write!(
                        report,
                        "minimal case (shrink factor {factor}):\n  {small}\n\
                         replay with `Rng::with_shrink({seed:#018x}, {factor:?})` \
                         (unshrunk: `Rng::new({seed:#018x})`)"
                    );
                }
                None => {
                    let _ = write!(report, "replay with `Rng::new({seed:#018x})`");
                }
            }
            panic!("{report}");
        }
    }
}

/// Runs a property over `cases` deterministic random cases.
///
/// The closure receives `&mut Rng` and returns `Result<(), String>`; use
/// [`prop_assert!`] / [`prop_assert_eq!`] inside it. On failure the case
/// index and seed are reported.
#[macro_export]
macro_rules! prop_check {
    (cases = $cases:expr, |$rng:ident| $body:block) => {{
        // `concat!(file!(), ...)` keeps seeds stable across runs but distinct
        // across properties.
        let name = concat!(file!(), ":", line!(), ":", column!());
        $crate::run_prop(name, $cases, |$rng: &mut $crate::Rng| $body);
    }};
    (|$rng:ident| $body:block) => {
        $crate::prop_check!(cases = $crate::DEFAULT_CASES, |$rng| $body)
    };
}

/// `assert!` for [`prop_check!`] bodies: returns `Err` with a formatted
/// message instead of panicking, so the harness can attach the seed report.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// `assert_eq!` for [`prop_check!`] bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_matches_reference() {
        // Reference values for splitmix64 with seed 1234567
        // (from the public-domain reference implementation).
        let mut rng = Rng::new(1234567);
        let a = rng.next_u64();
        let b = rng.next_u64();
        let mut rng2 = Rng::new(1234567);
        assert_eq!(a, rng2.next_u64());
        assert_eq!(b, rng2.next_u64());
        assert_ne!(a, b);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng::new(42);
        for _ in 0..10_000 {
            let f = rng.range_f64(-2.5, 7.5);
            assert!((-2.5..7.5).contains(&f));
            let i = rng.range_i64(-100, 100);
            assert!((-100..100).contains(&i));
            let u = rng.range_usize(3, 17);
            assert!((3..17).contains(&u));
        }
    }

    #[test]
    fn unit_interval_is_roughly_uniform() {
        let mut rng = Rng::new(7);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn choose_covers_all_items() {
        let mut rng = Rng::new(9);
        let items = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[*rng.choose(&items) as usize - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn case_seeds_differ_across_cases_and_names() {
        assert_ne!(case_seed("a", 0), case_seed("a", 1));
        assert_ne!(case_seed("a", 0), case_seed("b", 0));
        assert_eq!(case_seed("a", 3), case_seed("a", 3));
    }

    #[test]
    fn shrink_zero_matches_plain_rng_draw_for_draw() {
        let mut a = Rng::new(5);
        let mut b = Rng::with_shrink(5, 0.0);
        for _ in 0..200 {
            assert_eq!(a.range_i64(-50, 50), b.range_i64(-50, 50));
            assert_eq!(a.bool(), b.bool());
            assert_eq!(a.range_f64(0.0, 3.0), b.range_f64(0.0, 3.0));
        }
    }

    #[test]
    fn shrunk_draws_narrow_toward_the_lower_bound() {
        let mut rng = Rng::with_shrink(11, 0.75);
        let mut trues = 0;
        for _ in 0..2000 {
            let v = rng.range_i64(0, 100);
            assert!((0..25).contains(&v), "{v} outside shrunk range");
            let f = rng.range_f64(1.0, 9.0);
            assert!((1.0..3.0).contains(&f), "{f} outside shrunk range");
            trues += rng.bool() as u32;
        }
        // bool() should be true with probability (1 - 0.75) / 2 = 12.5%.
        assert!((100..400).contains(&trues), "{trues} trues out of 2000");
        // Even full shrink keeps every range non-empty.
        let mut hard = Rng::with_shrink(11, 1.0);
        assert_eq!(hard.range_i64(7, 20), 7);
        assert_eq!(hard.range_usize(3, 9), 3);
    }

    #[test]
    fn failing_seed_is_shrunk_to_a_minimal_case() {
        // Fails for any x >= 1: virtually every case fails, and the shrunk
        // replays fail too, so the report must carry a minimal case whose
        // value is drawn from a narrowed range.
        let failed = std::panic::catch_unwind(|| {
            run_prop("shrinks-to-minimal", 8, |rng| {
                let x = rng.range_i64(0, 1000);
                if x >= 1 {
                    Err(format!("x={x}"))
                } else {
                    Ok(())
                }
            });
        });
        let msg = *failed
            .expect_err("must fail")
            .downcast::<String>()
            .expect("string");
        assert!(msg.contains("minimal case (shrink factor 0.75)"), "{msg}");
        assert!(msg.contains("with_shrink"), "{msg}");
        // The shrunk failing value must come from the narrowed range
        // [0, 250) — parse it back out of the minimal-case line.
        let small: i64 = msg
            .lines()
            .skip_while(|l| !l.contains("minimal case"))
            .nth(1)
            .and_then(|l| l.trim().strip_prefix("x="))
            .expect("minimal case line")
            .parse()
            .expect("number");
        assert!(small < 250, "shrunk value {small} not narrowed");
    }

    #[test]
    fn unshrinkable_failure_reports_the_original_seed_only() {
        // Fails only for large x: every shrunk replay draws from at most
        // [0, 750) and passes, so the report falls back to the plain seed
        // line.
        let failed = std::panic::catch_unwind(|| {
            run_prop("never-shrinks", 64, |rng| {
                let x = rng.range_i64(0, 1000);
                if x >= 750 {
                    Err(format!("x={x}"))
                } else {
                    Ok(())
                }
            });
        });
        let msg = *failed
            .expect_err("must fail")
            .downcast::<String>()
            .expect("string");
        assert!(msg.contains("replay with `Rng::new("), "{msg}");
        assert!(!msg.contains("minimal case"), "{msg}");
    }

    #[test]
    fn panicking_shrunk_replay_counts_as_a_reproduction() {
        let failed = std::panic::catch_unwind(|| {
            run_prop("panics-when-shrunk", 4, |rng| {
                let x = rng.range_i64(0, 1000);
                assert!(rng.shrink_factor() == 0.0, "boom at shrink");
                if x >= 0 {
                    Err("always".into())
                } else {
                    Ok(())
                }
            });
        });
        let msg = *failed
            .expect_err("must fail")
            .downcast::<String>()
            .expect("string");
        assert!(msg.contains("boom at shrink"), "{msg}");
        assert!(msg.contains("minimal case"), "{msg}");
    }

    #[test]
    fn prop_check_passes_and_reports_failures() {
        prop_check!(cases = 32, |rng| {
            let x = rng.range_i64(0, 10);
            prop_assert!((0..10).contains(&x));
            prop_assert_eq!(x, x);
            Ok(())
        });
        let failed = std::panic::catch_unwind(|| {
            run_prop("always-fails", 4, |_| Err("nope".into()));
        });
        let msg = *failed
            .expect_err("must fail")
            .downcast::<String>()
            .expect("string");
        assert!(msg.contains("seed"), "{msg}");
        assert!(msg.contains("nope"), "{msg}");
    }
}
