//! Structured-program generation: random but *valid* IR modules with
//! controllable shape, for differential fuzzing of the whole pipeline.
//!
//! The generator draws from a statement grammar and builds through
//! [`cayman_ir::builder`], so every emitted module is well-formed SSA by
//! construction (and [`Module::verify`]-clean — pinned by the unit tests):
//!
//! ```text
//! program  := arrays¹⁻³ [matrix] [helper] main
//! main     := init-loops body… checksum ret
//! body     := stmt{1..max_stmts}
//! stmt     := loop-nest | state-machine | diamond | triangle
//!           | float-chain | array-update
//! loop-nest     := for i in 0..trip carrying f64s { body }   (may nest)
//! state-machine := for i { state := branch-ladder(state, A[idx]) }
//! diamond  := v := if cmp { chain } else { chain }           (phi merge)
//! triangle := if cmp { store }
//! index    := (a·i + b [+ helper(i)]) mod dim                (gep-safe)
//! ```
//!
//! Programs always terminate (all loops are counted with constant trips),
//! never index out of bounds (every gep index is reduced `mod` the array
//! dimension and built from non-negative terms), and — unless
//! [`GenOptions::allow_trap`] is set — never divide by zero, so they run
//! cleanly under both interpreter engines and the full analyse→select
//! pipeline.
//!
//! Generation is **seed-deterministic**: one module is a pure function of
//! the [`Rng`] stream and the options. Draw ranges put the simplest shape at
//! the low end and optional features behind [`Rng::bool`], so
//! [`crate::prop_check!`] shrinking narrows a failing program toward a
//! minimal counterexample; print it with [`Module::to_text`] and it replays
//! through `Module::parse_text` as a standalone text kernel.

use crate::Rng;
use cayman_ir::builder::{FunctionBuilder, ModuleBuilder};
use cayman_ir::{ArrayId, FuncId, Module, Operand, Type};

/// Shape limits for [`arbitrary_module_with`].
#[derive(Debug, Clone)]
pub struct GenOptions {
    /// Maximum number of 1-D `f64` arrays (at least 1 is always declared).
    pub max_arrays: usize,
    /// Maximum control-flow nesting depth (loops and branches combined).
    pub max_depth: usize,
    /// Maximum trip count of any generated loop.
    pub max_trip: i64,
    /// Maximum statements drawn per body block.
    pub max_stmts: usize,
    /// Permit a possibly-zero constant divisor feeding `sdiv` — exercises
    /// the interpreter error path, so generated programs may trap. Leave
    /// off when the program must survive analyse→select.
    pub allow_trap: bool,
}

impl Default for GenOptions {
    fn default() -> Self {
        GenOptions {
            max_arrays: 3,
            max_depth: 3,
            max_trip: 6,
            max_stmts: 3,
            allow_trap: false,
        }
    }
}

/// Everything the statement grammar can reference at one program point.
/// Cloned when entering a nested body, so values born inside a loop or
/// branch arm never leak past their dominance region.
#[derive(Clone)]
struct Scope {
    /// In-scope non-negative `i64` values (induction variables).
    ivs: Vec<Operand>,
    /// In-scope `f64` values.
    fvals: Vec<Operand>,
}

struct Env {
    /// 1-D `f64` arrays with their lengths.
    arrays: Vec<(ArrayId, i64)>,
    /// Optional 2-D `f64` array with its dimensions.
    matrix: Option<(ArrayId, i64, i64)>,
    /// Optional `i64 → i64` helper (non-negative preserving).
    helper: Option<FuncId>,
    opts: GenOptions,
    /// Remaining statement budget, bounding total module size.
    budget: usize,
}

/// A random module drawn with [`GenOptions::default`].
pub fn arbitrary_module(rng: &mut Rng) -> Module {
    arbitrary_module_with(rng, &GenOptions::default())
}

/// A random module with explicit shape limits. The result verifies, its
/// `main() -> f64` terminates on every input, and (without
/// [`GenOptions::allow_trap`]) it runs error-free on zeroed memory.
pub fn arbitrary_module_with(rng: &mut Rng, opts: &GenOptions) -> Module {
    let mut mb = ModuleBuilder::new("fuzz");

    let n_arrays = rng.range_usize(1, opts.max_arrays.max(1) + 1);
    let arrays: Vec<(ArrayId, i64)> = (0..n_arrays)
        .map(|k| {
            let size = rng.range_usize(4, 17) as i64;
            (mb.array(format!("a{k}"), Type::F64, &[size as usize]), size)
        })
        .collect();
    let matrix = rng.bool().then(|| {
        let r = rng.range_usize(3, 9) as i64;
        let c = rng.range_usize(3, 9) as i64;
        (mb.array("m0", Type::F64, &[r as usize, c as usize]), r, c)
    });
    let helper = rng.bool().then(|| {
        let mul = rng.range_i64(1, 4);
        let add = rng.range_i64(0, 3);
        mb.function("helper", &[Type::I64], Some(Type::I64), |fb| {
            let p = fb.param(0);
            let m = fb.iconst(mul);
            let a = fb.iconst(add);
            let t = fb.mul(p, m);
            let r = fb.add(t, a);
            fb.ret(Some(r));
        })
    });

    let mut env = Env {
        arrays,
        matrix,
        helper,
        opts: opts.clone(),
        budget: 24,
    };

    // Per-array init constants, drawn before entering the closure so the
    // draw order is independent of builder internals.
    let inits: Vec<(i64, f64, f64)> = (0..env.arrays.len() + env.matrix.iter().len())
        .map(|_| {
            (
                rng.range_i64(3, 9),
                rng.range_f64(0.1, 0.6),
                rng.range_f64(-1.0, 0.5),
            )
        })
        .collect();
    let depth = rng.range_usize(1, opts.max_depth.max(1) + 1);

    mb.function("main", &[], Some(Type::F64), |fb| {
        // Self-initialising inputs: a[i] = scale·(i mod m) + offset keeps
        // every cell small, finite, and derived from the seed alone.
        let mut init_iter = inits.iter();
        for &(array, size) in &env.arrays.clone() {
            let &(m, scale, offset) = init_iter.next().expect("one init per array");
            fb.counted_loop(0, size, 1, |fb, i| {
                let mc = fb.iconst(m);
                let rem = fb.srem(i, mc);
                let f = fb.sitofp(rem);
                let s = fb.fmul(f, fb.fconst(scale));
                let v = fb.fadd(s, fb.fconst(offset));
                fb.store_idx(array, &[i], v);
            });
        }
        if let Some((mat, rows, cols)) = env.matrix {
            let &(m, scale, offset) = init_iter.next().expect("matrix init");
            fb.counted_loop(0, rows, 1, |fb, i| {
                fb.counted_loop(0, cols, 1, |fb, j| {
                    let cc = fb.iconst(cols);
                    let flat = fb.mul(i, cc);
                    let flat = fb.add(flat, j);
                    let mc = fb.iconst(m);
                    let rem = fb.srem(flat, mc);
                    let f = fb.sitofp(rem);
                    let s = fb.fmul(f, fb.fconst(scale));
                    let v = fb.fadd(s, fb.fconst(offset));
                    fb.store_idx(mat, &[i, j], v);
                });
            });
        }

        let mut scope = Scope {
            ivs: Vec::new(),
            fvals: vec![fb.fconst(0.25)],
        };
        gen_body(fb, rng, &mut env, &mut scope, depth);

        // Checksum so every store is observable through the return value.
        let (a0, n0) = env.arrays[0];
        let zero = fb.fconst(0.0);
        let sum = fb.counted_loop_carry(0, n0, 1, &[(Type::F64, zero)], |fb, i, c| {
            let v = fb.load_idx(a0, &[i]);
            vec![fb.fadd(c[0], v)]
        });
        let last = *scope.fvals.last().expect("scope never empty");
        let out = fb.fadd(sum[0], last);
        fb.ret(Some(out));
    });

    mb.finish()
}

/// A gep-safe index: `(a·iv + b [+ helper(iv)]) mod dim`, all terms
/// non-negative so the `srem` result stays in `[0, dim)`.
fn gen_index(
    fb: &mut FunctionBuilder,
    rng: &mut Rng,
    env: &Env,
    scope: &Scope,
    dim: i64,
) -> Operand {
    let base = if scope.ivs.is_empty() {
        fb.iconst(rng.range_i64(0, dim))
    } else {
        let iv = *rng.choose(&scope.ivs);
        let a = rng.range_i64(1, 4);
        let b = rng.range_i64(0, 4);
        let ac = fb.iconst(a);
        let t = fb.mul(iv, ac);
        let bc = fb.iconst(b);
        fb.add(t, bc)
    };
    let base = match env.helper {
        Some(h) if !scope.ivs.is_empty() && rng.bool() => {
            let iv = *rng.choose(&scope.ivs);
            let r = fb.call(h, &[iv], Some(Type::I64)).expect("helper returns");
            fb.add(base, r)
        }
        _ => base,
    };
    let d = fb.iconst(dim);
    fb.srem(base, d)
}

/// A bounded float expression over the scope: loads, constants and chains
/// of `fadd/fsub/fmul/fmin/fmax/fneg/fabs/sqrt∘fabs/fdiv-by-const`.
fn gen_float_expr(fb: &mut FunctionBuilder, rng: &mut Rng, env: &Env, scope: &Scope) -> Operand {
    use cayman_ir::BinOp;
    let leaf = |fb: &mut FunctionBuilder, rng: &mut Rng| -> Operand {
        match rng.range_usize(0, 3) {
            0 => fb.fconst(rng.range_f64(-2.0, 2.0)),
            1 if !scope.fvals.is_empty() => *rng.choose(&scope.fvals),
            _ => {
                let (a, n) = *rng.choose(&env.arrays);
                let idx = gen_index(fb, rng, env, scope, n);
                fb.load_idx(a, &[idx])
            }
        }
    };
    let mut acc = leaf(fb, rng);
    let links = rng.range_usize(0, 4);
    for _ in 0..links {
        acc = match rng.range_usize(0, 7) {
            0 => {
                let r = leaf(fb, rng);
                fb.fadd(acc, r)
            }
            1 => {
                let r = leaf(fb, rng);
                fb.fsub(acc, r)
            }
            2 => {
                let r = leaf(fb, rng);
                fb.fmul(acc, r)
            }
            3 => {
                let r = leaf(fb, rng);
                fb.binary(BinOp::FMin, Type::F64, acc, r)
            }
            4 => {
                let r = leaf(fb, rng);
                fb.binary(BinOp::FMax, Type::F64, acc, r)
            }
            5 => {
                let abs = fb.fabs(acc);
                fb.sqrt(abs)
            }
            _ => {
                let d = fb.fconst(rng.range_f64(1.0, 4.0));
                fb.fdiv(acc, d)
            }
        };
    }
    acc
}

/// One body: `1..=max_stmts` statements appended at the current insertion
/// point. Values created here stay valid for the rest of the body (every
/// structured statement returns with the insertion point in a block the
/// statement's entry dominates).
fn gen_body(
    fb: &mut FunctionBuilder,
    rng: &mut Rng,
    env: &mut Env,
    scope: &mut Scope,
    depth: usize,
) {
    let stmts = rng.range_usize(1, env.opts.max_stmts.max(1) + 1);
    for _ in 0..stmts {
        if env.budget == 0 {
            return;
        }
        env.budget -= 1;
        gen_stmt(fb, rng, env, scope, depth);
    }
}

fn gen_stmt(
    fb: &mut FunctionBuilder,
    rng: &mut Rng,
    env: &mut Env,
    scope: &mut Scope,
    depth: usize,
) {
    // Simplest variants first: shrinking reduces the draw toward plain
    // straight-line statements.
    let max_kind = if depth > 0 { 6 } else { 4 };
    match rng.range_usize(0, max_kind) {
        // Straight-line float chain joining the scope.
        0 => {
            let v = gen_float_expr(fb, rng, env, scope);
            push_fval(scope, v);
        }
        // Array update: a[idx] ← expr (read-modify-write half the time).
        1 => {
            let (a, n) = *rng.choose(&env.arrays);
            let idx = gen_index(fb, rng, env, scope, n);
            let mut v = gen_float_expr(fb, rng, env, scope);
            if rng.bool() {
                let old = fb.load_idx(a, &[idx]);
                v = fb.fadd(old, v);
            }
            fb.store_idx(a, &[idx], v);
        }
        // Matrix update when a matrix exists, else another chain.
        2 => match env.matrix {
            Some((m, r, c)) => {
                let i = gen_index(fb, rng, env, scope, r);
                let j = gen_index(fb, rng, env, scope, c);
                let v = gen_float_expr(fb, rng, env, scope);
                fb.store_idx(m, &[i, j], v);
            }
            None => {
                let v = gen_float_expr(fb, rng, env, scope);
                push_fval(scope, v);
            }
        },
        // Optional trap: integer division by a sometimes-zero constant.
        3 if env.opts.allow_trap && rng.bool() => {
            let d = rng.range_i64(0, 3);
            let lhs = if scope.ivs.is_empty() {
                fb.iconst(rng.range_i64(0, 8))
            } else {
                *rng.choose(&scope.ivs)
            };
            let dc = fb.iconst(d);
            let q = fb.sdiv(lhs, dc);
            let f = fb.sitofp(q);
            push_fval(scope, f);
        }
        // Diamond (data-dependent when arrays feed the compare) merging a
        // value, or a triangle guarding a store.
        3 => {
            let lhs = gen_float_expr(fb, rng, env, scope);
            let cond = fb.fcmp_gt(lhs, fb.fconst(rng.range_f64(-1.0, 1.0)));
            if rng.bool() {
                // Triangle: conditional store, empty else arm.
                let (a, n) = *rng.choose(&env.arrays);
                let env_ref = &*env;
                let snapshot = scope.clone();
                let idx = gen_index(fb, rng, env_ref, &snapshot, n);
                let consts: (f64, f64) = (rng.range_f64(-1.0, 1.0), rng.range_f64(0.5, 1.5));
                fb.if_then(cond, |fb| {
                    let base = fb.load_idx(a, &[idx]);
                    let s = fb.fmul(base, fb.fconst(consts.1));
                    let v = fb.fadd(s, fb.fconst(consts.0));
                    fb.store_idx(a, &[idx], v);
                });
            } else {
                let (ct, ce) = (rng.range_f64(0.5, 1.5), rng.range_f64(-1.5, -0.5));
                let v = fb.if_then_else_val(
                    cond,
                    Type::F64,
                    |fb| fb.fmul(lhs, fb.fconst(ct)),
                    |fb| fb.fadd(lhs, fb.fconst(ce)),
                );
                push_fval(scope, v);
            }
        }
        // Loop nest with carried f64 reductions (recursing into the body).
        4 => {
            let zero_trip = rng.bool();
            let trip = if zero_trip {
                0
            } else {
                rng.range_i64(1, env.opts.max_trip.max(1) + 1)
            };
            let n_carry = rng.range_usize(1, 3);
            let init: Vec<(Type, Operand)> = (0..n_carry)
                .map(|k| {
                    let v = if k == 0 && !scope.fvals.is_empty() {
                        *rng.choose(&scope.fvals)
                    } else {
                        fb.fconst(rng.range_f64(-1.0, 1.0))
                    };
                    (Type::F64, v)
                })
                .collect();
            let finals = fb.counted_loop_carry(0, trip, 1, &init, |fb, i, carries| {
                let mut inner = scope.clone();
                inner.ivs.push(i);
                inner.fvals.extend_from_slice(carries);
                gen_body(fb, rng, env, &mut inner, depth - 1);
                carries
                    .iter()
                    .map(|&c| {
                        let v = gen_float_expr(fb, rng, env, &inner);
                        let damp = fb.fmul(c, fb.fconst(0.5));
                        fb.fadd(damp, v)
                    })
                    .collect()
            });
            for f in finals {
                push_fval(scope, f);
            }
        }
        // Control-heavy state machine: an i64 state threaded through a
        // branch ladder inside a loop, CGRA-style.
        _ => {
            let trip = rng.range_i64(1, env.opts.max_trip.max(1) + 1);
            let (a, n) = *rng.choose(&env.arrays);
            let thresh = rng.range_f64(-0.5, 0.5);
            let zero = fb.iconst(0);
            let acc0 = fb.fconst(0.0);
            let finals = fb.counted_loop_carry(
                0,
                trip,
                1,
                &[(Type::I64, zero), (Type::F64, acc0)],
                |fb, i, c| {
                    let (state, acc) = (c[0], c[1]);
                    let mut inner = scope.clone();
                    inner.ivs.push(i);
                    let idx = gen_index(fb, rng, env, &inner, n);
                    let x = fb.load_idx(a, &[idx]);
                    let hot = fb.fcmp_gt(x, fb.fconst(thresh));
                    // state' = hot ? min(state+1, 3) : 0  — as control flow.
                    let next_state = fb.if_then_else_val(
                        hot,
                        Type::I64,
                        |fb| {
                            let one = fb.iconst(1);
                            let up = fb.add(state, one);
                            let three = fb.iconst(3);
                            fb.binary(cayman_ir::BinOp::Min, Type::I64, up, three)
                        },
                        |fb| fb.iconst(0),
                    );
                    // acc' contribution is state-dependent — a second,
                    // data-dependent diamond.
                    let two = fb.iconst(2);
                    let sat = fb.cmp(cayman_ir::CmpPred::Ge, Type::I64, next_state, two);
                    let contrib = fb.if_then_else_val(
                        sat,
                        Type::F64,
                        |fb| fb.fmul(x, fb.fconst(2.0)),
                        |fb| fb.fabs(x),
                    );
                    let acc2 = fb.fadd(acc, contrib);
                    vec![next_state, acc2]
                },
            );
            let f = fb.sitofp(finals[0]);
            let merged = fb.fadd(f, finals[1]);
            push_fval(scope, merged);
        }
    }
}

fn push_fval(scope: &mut Scope, v: Operand) {
    scope.fvals.push(v);
    // Bound the pool so later draws stay O(1) and shrunk cases stay small.
    if scope.fvals.len() > 8 {
        scope.fvals.remove(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cayman_ir::interp::Interp;

    #[test]
    fn generation_is_seed_deterministic() {
        for seed in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
            let a = arbitrary_module(&mut Rng::new(seed));
            let b = arbitrary_module(&mut Rng::new(seed));
            assert_eq!(a.to_text(), b.to_text(), "seed {seed:#x}");
        }
        let a = arbitrary_module(&mut Rng::new(7));
        let b = arbitrary_module(&mut Rng::new(8));
        assert_ne!(a.to_text(), b.to_text(), "distinct seeds vary");
    }

    #[test]
    fn generated_modules_verify_and_run_clean() {
        for seed in 0..200u64 {
            let m = arbitrary_module(&mut Rng::new(seed));
            m.verify()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{}", m.to_text()));
            let mut interp = Interp::new(&m).with_step_limit(5_000_000);
            assert_eq!(interp.engine_name(), "decoded", "seed {seed}");
            let p = interp
                .run(&[])
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{}", m.to_text()));
            assert!(p.total_cycles > 0, "seed {seed}: no work");
            if let Some(cayman_ir::interp::Value::F(f)) = p.return_value {
                assert!(f.is_finite(), "seed {seed}: non-finite checksum {f}");
            }
        }
    }

    #[test]
    fn shrunk_draws_still_generate_valid_modules() {
        for &factor in &crate::SHRINK_FACTORS {
            for seed in 0..40u64 {
                let m = arbitrary_module(&mut Rng::with_shrink(seed, factor));
                m.verify()
                    .unwrap_or_else(|e| panic!("seed {seed} shrink {factor}: {e}"));
                Interp::new(&m)
                    .with_step_limit(5_000_000)
                    .run(&[])
                    .unwrap_or_else(|e| panic!("seed {seed} shrink {factor}: {e}"));
            }
        }
    }

    #[test]
    fn generated_modules_roundtrip_through_text() {
        for seed in 0..40u64 {
            let m = arbitrary_module(&mut Rng::new(seed));
            let once = Module::parse_text(&m.to_text())
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{}", m.to_text()));
            once.verify().expect("parsed module verifies");
            // Structure is preserved; the text is a fixpoint after one
            // parse (value numbering may legitimately differ on the first).
            assert_eq!(once.functions.len(), m.functions.len());
            for (a, b) in once.functions.iter().zip(&m.functions) {
                assert_eq!(a.blocks.len(), b.blocks.len(), "seed {seed}");
                assert_eq!(a.instrs.len(), b.instrs.len(), "seed {seed}");
            }
            let twice = Module::parse_text(&once.to_text()).expect("reparses");
            assert_eq!(
                once.to_text(),
                twice.to_text(),
                "seed {seed}: not a fixpoint"
            );
        }
    }

    #[test]
    fn trap_option_reaches_the_error_path() {
        let opts = GenOptions {
            allow_trap: true,
            ..GenOptions::default()
        };
        let mut trapped = 0;
        for seed in 0..120u64 {
            let m = arbitrary_module_with(&mut Rng::new(seed), &opts);
            m.verify().expect("still verifies");
            if Interp::new(&m).with_step_limit(5_000_000).run(&[]).is_err() {
                trapped += 1;
            }
        }
        assert!(trapped > 0, "no seed reached the division-by-zero path");
    }
}
