//! Random workload *tree shapes* for scheduler property tests.
//!
//! The selection DP walks the wPST, whose shape mirrors the loop and call
//! structure of the workload: sibling functions become independent subtrees,
//! nested loops become chains, and one hot function skews the whole tree.
//! [`TreeShape`] describes such a workload abstractly — a list of sibling
//! functions, each a perfect loop nest — so crates that own an IR builder
//! can materialise it into a module while this kit stays dependency-free.
//!
//! Generators follow the shrinking contract (see the crate docs): every
//! drawn range puts the *simpler* end at its lower bound and
//! [`Rng::choose`] slices list simpler variants first, so a failing case
//! shrinks toward fewer, shallower, lighter functions.
//!
//! Generated shapes are deliberately small: [`TreeShape::iterations`] is
//! bounded by [`MAX_CASE_ITERATIONS`], so profiling a materialised case
//! stays fast even over a hundred property cases.

use crate::Rng;

/// Maximum loop-nest depth a generated [`FuncShape`] can have.
pub const MAX_DEPTH: usize = 3;

/// Upper bound (exclusive) on generated per-level trip counts.
pub const MAX_TRIP: u32 = 8;

/// Upper bound on [`TreeShape::iterations`] for any generated shape: one
/// hot function contributes at most `(MAX_TRIP - 1)^MAX_DEPTH` innermost
/// iterations and at most 9 siblings contribute a shallow nest each.
pub const MAX_CASE_ITERATIONS: u64 = 4096;

/// How the work in a generated shape is distributed over the tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TreeStyle {
    /// A few similar functions with similar nests: no skew.
    Balanced,
    /// Many shallow sibling functions: wide fan-out at the root.
    Fanout,
    /// One or two deeply nested functions: long wPST chains.
    Chain,
    /// One heavy function plus trivial siblings: a hot single subtree.
    HotSubtree,
}

/// Loop-nest description of one generated function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncShape {
    /// Trip counts, outermost first; the nest depth is `trips.len()` ≥ 1.
    pub trips: Vec<u32>,
    /// Extra floating-point ops in the innermost body (work per iteration).
    pub body_ops: u32,
    /// Whether the innermost body carries an if/else diamond (adds a
    /// ctrl-flow region to the function's wPST subtree).
    pub diamond: bool,
}

impl FuncShape {
    /// Draws a nest of depth `[depth_lo, depth_hi)` with per-level trips in
    /// `[trip_lo, trip_hi)` and up to `ops_hi` extra body ops.
    fn random(
        rng: &mut Rng,
        depth_lo: usize,
        depth_hi: usize,
        trip_lo: u32,
        trip_hi: u32,
        ops_hi: u32,
    ) -> FuncShape {
        let depth = rng.range_usize(depth_lo, depth_hi);
        FuncShape {
            trips: (0..depth)
                .map(|_| rng.range_u32(trip_lo, trip_hi))
                .collect(),
            body_ops: rng.range_u32(0, ops_hi),
            diamond: rng.bool(),
        }
    }

    /// Total innermost iterations of this function's nest.
    pub fn iterations(&self) -> u64 {
        self.trips.iter().map(|&t| u64::from(t)).product()
    }
}

/// An abstract workload: sibling functions called in order from a `main`,
/// each a perfect loop nest described by a [`FuncShape`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeShape {
    /// The skew style this shape was drawn from.
    pub style: TreeStyle,
    /// The functions, in call order.
    pub funcs: Vec<FuncShape>,
}

impl TreeShape {
    /// Draws a random shape: a style first (simpler styles listed first for
    /// shrinking), then functions matching that style's skew.
    pub fn arbitrary(rng: &mut Rng) -> TreeShape {
        let style = *rng.choose(&[
            TreeStyle::Balanced,
            TreeStyle::Fanout,
            TreeStyle::Chain,
            TreeStyle::HotSubtree,
        ]);
        let funcs = match style {
            TreeStyle::Balanced => {
                let n = rng.range_usize(1, 5);
                (0..n)
                    .map(|_| FuncShape::random(rng, 1, 3, 2, 6, 3))
                    .collect()
            }
            TreeStyle::Fanout => {
                let n = rng.range_usize(3, 10);
                (0..n)
                    .map(|_| FuncShape::random(rng, 1, 2, 2, MAX_TRIP, 2))
                    .collect()
            }
            TreeStyle::Chain => {
                let n = rng.range_usize(1, 3);
                (0..n)
                    .map(|_| FuncShape::random(rng, 2, MAX_DEPTH + 1, 2, 5, 2))
                    .collect()
            }
            TreeStyle::HotSubtree => {
                let mut funcs = vec![FuncShape::random(rng, 2, MAX_DEPTH + 1, 4, MAX_TRIP, 6)];
                let n = rng.range_usize(2, 7);
                funcs.extend((0..n).map(|_| FuncShape::random(rng, 1, 2, 2, 3, 1)));
                funcs
            }
        };
        TreeShape { style, funcs }
    }

    /// Total innermost iterations over all functions — the work bound that
    /// keeps generated cases fast to profile.
    pub fn iterations(&self) -> u64 {
        self.funcs.iter().map(FuncShape::iterations).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_shapes_stay_in_bounds() {
        for seed in 0..500 {
            let shape = TreeShape::arbitrary(&mut Rng::new(seed));
            assert!(!shape.funcs.is_empty(), "seed {seed}: no functions");
            for f in &shape.funcs {
                assert!(
                    (1..=MAX_DEPTH).contains(&f.trips.len()),
                    "seed {seed}: depth {}",
                    f.trips.len()
                );
                assert!(
                    f.trips.iter().all(|&t| (2..MAX_TRIP).contains(&t)),
                    "seed {seed}: trips {:?}",
                    f.trips
                );
                assert!(f.body_ops < 8, "seed {seed}: body_ops {}", f.body_ops);
            }
            assert!(
                shape.iterations() <= MAX_CASE_ITERATIONS,
                "seed {seed}: {} iterations",
                shape.iterations()
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = TreeShape::arbitrary(&mut Rng::new(0xFEED));
        let b = TreeShape::arbitrary(&mut Rng::new(0xFEED));
        assert_eq!(a, b);
    }

    #[test]
    fn all_styles_are_reachable() {
        let mut seen = std::collections::HashSet::new();
        for seed in 0..200 {
            seen.insert(TreeShape::arbitrary(&mut Rng::new(seed)).style);
        }
        assert_eq!(seen.len(), 4, "styles seen: {seen:?}");
    }

    #[test]
    fn hot_subtree_shapes_are_actually_skewed() {
        for seed in 0..400 {
            let shape = TreeShape::arbitrary(&mut Rng::new(seed));
            if shape.style != TreeStyle::HotSubtree {
                continue;
            }
            let hot = shape.funcs[0].iterations();
            let max_rest = shape.funcs[1..]
                .iter()
                .map(FuncShape::iterations)
                .max()
                .expect("siblings");
            assert!(
                hot >= 4 * max_rest,
                "seed {seed}: hot {hot} vs sibling {max_rest}"
            );
        }
    }

    #[test]
    fn shrunk_shapes_are_simpler_on_average() {
        let total = |shrink: f64| -> u64 {
            (0..200)
                .map(|seed| TreeShape::arbitrary(&mut Rng::with_shrink(seed, shrink)).iterations())
                .sum()
        };
        let full = total(0.0);
        let shrunk = total(0.75);
        assert!(
            shrunk * 2 < full,
            "shrunk cases not smaller: {shrunk} vs {full}"
        );
    }
}
