//! Loop pipelining model: initiation-interval computation and pipelined-loop
//! latency (§III-C, Fig. 4).
//!
//! `II = max(recMII, resMII)`:
//!
//! * **recMII** from loop-carried dependence cycles (memory and scalar
//!   recurrences reported by `cayman-analysis::memdep`): the summed
//!   accelerator latency around the cycle divided by the dependence distance,
//! * **resMII** from memory contention: coupled accesses share one LSU
//!   port; each buffered array's accesses share the ports its
//!   [`InterfaceSpec`] exposes (`banks × 2` for scratchpads); decoupled
//!   FIFOs and line-buffer fills have private channels but share the
//!   off-chip stream bandwidth — one word per decoupled access, one word
//!   per line-buffered *array*. This is why Fig. 4's pipelined loop reaches
//!   II = 1 with the decoupled interface but II = 3 with the coupled one,
//!   and why a line buffer beats a bundle of decoupled taps on a stencil.

use crate::inputs::FuncInputs;
use crate::interface::{InterfaceKind, InterfaceSpec, STREAM_WORDS_PER_CYCLE};
use crate::schedule::{access_array, asap_schedule, latency_with_iface, IfaceOf};
use cayman_ir::instr::Instr;
use cayman_ir::loops::LoopId;
use cayman_ir::InstrId;

/// Pipelining outcome for one loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineEstimate {
    /// Initiation interval.
    pub ii: u64,
    /// Pipeline depth (cycles from iteration issue to completion).
    pub depth: u64,
    /// Iterations per loop entry after unrolling (`trips / unroll`).
    pub iters: f64,
    /// Cycles per loop entry: `depth + II · (iters − 1)`.
    pub cycles_per_entry: f64,
}

/// Instructions of the loop body in a producer-before-consumer order
/// (reverse post-order over the loop's blocks).
pub fn loop_body_instrs(inputs: &FuncInputs<'_>, l: LoopId) -> Vec<InstrId> {
    let func = inputs.func();
    let lp = inputs.ctx.forest.get(l);
    let mut instrs = Vec::new();
    for &b in &inputs.ctx.cfg.rpo {
        if lp.blocks.contains(&b) {
            instrs.extend(func.block(b).instrs.iter().copied());
        }
    }
    instrs
}

/// Recurrence-constrained minimum II for loop `l` under the given interface
/// assignment.
pub fn rec_mii(inputs: &FuncInputs<'_>, l: LoopId, iface: &IfaceOf<'_>) -> u64 {
    let func = inputs.func();
    let deps = &inputs.deps[l.index()];
    let mut mii = 1u64;
    if deps.conservative {
        // Unanalysable accesses force sequential iteration issue: the next
        // iteration's access may depend on this iteration's store.
        let seq: u64 = loop_body_instrs(inputs, l)
            .iter()
            .filter(|&&i| matches!(func.instr(i), Instr::Load { .. } | Instr::Store { .. }))
            .map(|&i| latency_with_iface(func, i, iface))
            .max()
            .unwrap_or(1);
        mii = mii.max(seq);
    }
    for m in &deps.mem {
        let lat: u64 = m
            .chain
            .iter()
            .map(|&i| latency_with_iface(func, i, iface))
            .sum();
        mii = mii.max(lat.div_ceil(m.distance.max(1)));
    }
    for s in &deps.scalar {
        let lat: u64 = s
            .chain
            .iter()
            .map(|&i| latency_with_iface(func, i, iface))
            .sum();
        mii = mii.max(lat.max(1));
    }
    mii
}

/// Resource-constrained minimum II from memory contention.
///
/// Unrolling multiplies every access by `unroll`. Three resources bound the
/// issue rate:
///
/// * the single shared **coupled** port,
/// * each buffered array's **ports** (from its spec),
/// * the off-chip **stream bandwidth** shared by decoupled FIFOs and
///   line-buffer fills — a line buffer pulls one new word per iteration per
///   array, a decoupled bundle one word per access.
pub fn res_mii(inputs: &FuncInputs<'_>, body: &[InstrId], iface: &IfaceOf<'_>, unroll: u32) -> u64 {
    let func = inputs.func();
    let mut coupled = 0u64;
    let mut stream_words = 0u64;
    let mut per_array: std::collections::HashMap<u32, (u64, u64)> = Default::default();
    let mut lb_arrays: std::collections::HashSet<u32> = Default::default();
    for &i in body {
        if matches!(func.instr(i), Instr::Load { .. } | Instr::Store { .. }) {
            let spec = iface(i).unwrap_or_else(InterfaceSpec::coupled);
            match spec.kind {
                InterfaceKind::Coupled => coupled += 1,
                InterfaceKind::Decoupled => stream_words += 1,
                InterfaceKind::LineBuffer => {
                    lb_arrays.insert(access_array(func, i).unwrap_or(u32::MAX));
                }
                _ => {
                    if let Some(p) = spec.mem_ports() {
                        let arr = access_array(func, i).unwrap_or(u32::MAX);
                        let e = per_array.entry(arr).or_insert((0, 0));
                        e.0 += 1;
                        e.1 = e.1.max(p);
                    }
                }
            }
        }
    }
    stream_words += lb_arrays.len() as u64; // one fill stream per buffered array
    let u = u64::from(unroll.max(1));
    let mut ii = (coupled * u).max(1); // one shared coupled port
    ii = ii.max((stream_words * u).div_ceil(STREAM_WORDS_PER_CYCLE));
    for &(uses, ports) in per_array.values() {
        ii = ii.max((uses * u).div_ceil(ports.max(1)));
    }
    ii
}

/// Pipelines loop `l` with the given unroll factor and interface assignment.
///
/// Scratchpad partitioning follows the paper ("memory partitioning is
/// configured for scratchpad interfaces inside unrolled loops"): partitions =
/// unroll factor.
pub fn pipeline_loop(
    inputs: &FuncInputs<'_>,
    l: LoopId,
    unroll: u32,
    iface: &IfaceOf<'_>,
) -> PipelineEstimate {
    let func = inputs.func();
    let body = loop_body_instrs(inputs, l);
    let sched = asap_schedule(func, &body, iface, 1, false);
    let depth = sched.critical_path.max(1);
    let ii = rec_mii(inputs, l, iface).max(res_mii(inputs, &body, iface, unroll));
    let trips = inputs.trip(l).max(1.0);
    let iters = (trips / f64::from(unroll.max(1))).ceil().max(1.0);
    PipelineEstimate {
        ii,
        depth,
        iters,
        cycles_per_entry: depth as f64 + ii as f64 * (iters - 1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cayman_analysis::access::AccessAnalysis;
    use cayman_analysis::ctx::FuncCtx;
    use cayman_analysis::memdep::analyse_loop_deps;
    use cayman_analysis::scev::Scev;
    use cayman_ir::builder::ModuleBuilder;
    use cayman_ir::{FuncId, Module, Type};

    struct Owned {
        module: Module,
        ctx: FuncCtx,
        accesses: AccessAnalysis,
        deps: Vec<cayman_analysis::memdep::LoopDeps>,
        counts: Vec<u64>,
    }

    fn prepare(module: Module) -> Owned {
        let f = module.function(FuncId(0));
        let ctx = FuncCtx::compute(f);
        let mut scev = Scev::new(f, &ctx);
        let accesses = AccessAnalysis::run(&module, f, &ctx, &mut scev);
        let deps = analyse_loop_deps(f, &ctx, &mut scev, &accesses);
        let counts = vec![1; module.function(FuncId(0)).blocks.len()];
        // SAFETY-free trick: re-borrow after moves by rebuilding.
        let ctx2 = FuncCtx::compute(module.function(FuncId(0)));
        Owned {
            ctx: ctx2,
            accesses,
            deps,
            counts,
            module,
        }
    }

    fn inputs<'a>(o: &'a Owned, trips: &'a [f64]) -> FuncInputs<'a> {
        FuncInputs {
            module: &o.module,
            func_id: FuncId(0),
            ctx: &o.ctx,
            accesses: &o.accesses,
            deps: &o.deps,
            trips,
            block_counts: &o.counts,
            content_fp: cayman_ir::fingerprint_function(o.module.function(FuncId(0))),
        }
    }

    fn saxpy() -> Module {
        let mut mb = ModuleBuilder::new("t");
        let x = mb.array("x", Type::F64, &[64]);
        let y = mb.array("y", Type::F64, &[64]);
        mb.function("f", &[], None, |fb| {
            fb.counted_loop(0, 64, 1, |fb, i| {
                let xv = fb.load_idx(x, &[i]);
                let t = fb.fmul(fb.fconst(3.0), xv);
                let v = fb.fadd(t, fb.fconst(1.0));
                fb.store_idx(y, &[i], v);
            });
            fb.ret(None);
        });
        mb.finish()
    }

    #[test]
    fn decoupled_reaches_ii_1_coupled_does_not() {
        let o = prepare(saxpy());
        let inp = inputs(&o, &[64.0]);
        let l = o.ctx.forest.ids().next().expect("loop");
        let coupled = |_: InstrId| Some(InterfaceSpec::coupled());
        let dec = |i: InstrId| {
            let f = inp.func();
            if matches!(f.instr(i), Instr::Load { .. } | Instr::Store { .. }) {
                Some(InterfaceSpec::decoupled())
            } else {
                Some(InterfaceSpec::coupled())
            }
        };
        let pc = pipeline_loop(&inp, l, 1, &coupled);
        let pd = pipeline_loop(&inp, l, 1, &dec);
        // Fig. 4: coupled pipelining is port-bound (2 accesses → II ≥ 2);
        // decoupled reaches II = 1.
        assert!(pc.ii >= 2, "coupled II {}", pc.ii);
        assert_eq!(pd.ii, 1, "decoupled II");
        assert!(pd.cycles_per_entry < pc.cycles_per_entry);
    }

    #[test]
    fn accumulation_constrains_ii() {
        // z[0] += x[i]: memory recurrence load+fadd+store every iteration.
        let mut mb = ModuleBuilder::new("t");
        let x = mb.array("x", Type::F64, &[64]);
        let z = mb.array("z", Type::F64, &[1]);
        mb.function("f", &[], None, |fb| {
            fb.counted_loop(0, 64, 1, |fb, i| {
                let xv = fb.load_idx(x, &[i]);
                let zero = fb.iconst(0);
                let zv = fb.load_idx(z, &[zero]);
                let s = fb.fadd(zv, xv);
                fb.store_idx(z, &[zero], s);
            });
            fb.ret(None);
        });
        let o = prepare(mb.finish());
        let inp = inputs(&o, &[64.0]);
        let l = o.ctx.forest.ids().next().expect("loop");
        let dec = |_: InstrId| Some(InterfaceSpec::decoupled());
        let p = pipeline_loop(&inp, l, 1, &dec);
        // chain: load z (1) + fadd (2) + store z (1) = 4 → II ≥ 4.
        assert!(p.ii >= 4, "II {}", p.ii);
    }

    #[test]
    fn unrolling_scales_iterations_with_scratchpad() {
        let o = prepare(saxpy());
        let inp = inputs(&o, &[64.0]);
        let l = o.ctx.forest.ids().next().expect("loop");
        // Partitioning follows unroll: the design layer assigns
        // `scratchpad(u)` to accesses in a loop unrolled by `u`.
        let spad = |parts: u32| {
            let inp = &inp;
            move |i: InstrId| {
                let f = inp.func();
                if matches!(f.instr(i), Instr::Load { .. } | Instr::Store { .. }) {
                    Some(InterfaceSpec::scratchpad(parts))
                } else {
                    Some(InterfaceSpec::coupled())
                }
            }
        };
        let p1 = pipeline_loop(&inp, l, 1, &spad(1));
        let p4 = pipeline_loop(&inp, l, 4, &spad(4));
        assert_eq!(p1.iters, 64.0);
        assert_eq!(p4.iters, 16.0);
        // scratchpad ports scale with partitions = unroll, so II stays low
        assert!(p4.ii <= 2 * p1.ii);
        assert!(p4.cycles_per_entry < p1.cycles_per_entry);
    }
}
