//! # cayman-hls
//!
//! The accelerator model of the Cayman reproduction (paper §III-C): a
//! characterised component library, an interface-aware HLS-style scheduler,
//! a loop-pipelining model, and configuration generation with performance and
//! area estimation.
//!
//! * [`oplib`] — per-operation latency/area (the OpenROAD/Nangate45
//!   characterisation substitute) and global constants (500 MHz target,
//!   CVA6 tile area),
//! * [`interface`] — the *coupled* / *decoupled* / *scratchpad* data-access
//!   interfaces and [`interface::ModelOptions`],
//! * [`schedule`] — ASAP list scheduling with interface latencies, memory
//!   ordering and port constraints,
//! * [`pipeline`] — initiation-interval computation (recMII/resMII) and
//!   pipelined-loop latency,
//! * [`inputs`] — the per-function analysis bundle and [`inputs::Candidate`],
//! * [`design`] — configuration generation and estimation producing
//!   [`design::AcceleratorDesign`]s (the `accel(v, R)` of Algorithm 1),
//! * [`rtl`] — structural Verilog emission for configured accelerators
//!   (the "synthesize into complete hardware" back-end).
//!
//! ## Example
//!
//! Estimating a streaming loop under default options:
//!
//! ```
//! use cayman_ir::builder::ModuleBuilder;
//! use cayman_ir::interp::Interp;
//! use cayman_ir::{FuncId, Type};
//! use cayman_analysis::{ctx::FuncCtx, scev::Scev, access::AccessAnalysis};
//! use cayman_analysis::memdep::analyse_loop_deps;
//! use cayman_hls::inputs::{Candidate, FuncInputs};
//! use cayman_hls::interface::ModelOptions;
//! use cayman_hls::design::generate_designs;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut mb = ModuleBuilder::new("app");
//! let x = mb.array("x", Type::F64, &[128]);
//! mb.function("main", &[], None, |fb| {
//!     fb.counted_loop(0, 128, 1, |fb, i| {
//!         let v = fb.load_idx(x, &[i]);
//!         let w = fb.fmul(v, fb.fconst(2.0));
//!         fb.store_idx(x, &[i], w);
//!     });
//!     fb.ret(None);
//! });
//! let module = mb.finish();
//! module.verify()?;
//! let exec = Interp::new(&module).run(&[])?;
//!
//! let f = module.function(FuncId(0));
//! let ctx = FuncCtx::compute(f);
//! let mut scev = Scev::new(f, &ctx);
//! let accesses = AccessAnalysis::run(&module, f, &ctx, &mut scev);
//! let deps = analyse_loop_deps(f, &ctx, &mut scev, &accesses);
//! let inputs = FuncInputs {
//!     module: &module,
//!     func_id: FuncId(0),
//!     ctx: &ctx,
//!     accesses: &accesses,
//!     deps: &deps,
//!     trips: &[128.0],
//!     block_counts: &exec.block_counts[0],
//!     content_fp: cayman_ir::fingerprint_function(f),
//! };
//! let lp = ctx.forest.ids().next().expect("one loop");
//! let blocks = ctx.forest.get(lp).blocks.clone();
//! let cand = Candidate {
//!     func: FuncId(0),
//!     blocks,
//!     entries: 1,
//!     cpu_cycles: exec.total_cycles,
//!     is_bb: false,
//!     content_fp: inputs.content_fp,
//! };
//! let designs = generate_designs(&inputs, &cand, &ModelOptions::default());
//! assert!(!designs.is_empty());
//! # Ok(())
//! # }
//! ```

pub mod design;
pub mod inputs;
pub mod interface;
pub mod oplib;
pub mod pipeline;
pub mod rtl;
pub mod schedule;

pub use design::{generate_designs, AcceleratorDesign};
pub use inputs::{Candidate, FuncInputs};
pub use interface::{InterfaceKind, ModelOptions};
pub use oplib::{ACCEL_FREQ_HZ, CVA6_TILE_AREA};
