//! Accelerator configuration generation and performance/area estimation
//! (§III-C "Accelerator Configuration" and "Performance and Area Estimation").
//!
//! Given a [`Candidate`] region, [`generate_designs`] explores the paper's
//! fast configuration space:
//!
//! 1. a **sequential** configuration (no pipelining; functional units are
//!    time-shared — minimum area),
//! 2. **pipelined** configurations: innermost loops pipelined, unrolled by
//!    factors from [`ModelOptions::unroll_factors`] when they carry no
//!    loop-carried dependence,
//!
//! each with heuristic data-access interface assignment: *scratchpad* when
//! the access count exceeds β × footprint, *decoupled* for stream accesses in
//! pipelined loops, *coupled* otherwise.
//!
//! When [`ModelOptions::extended`] is set, every configuration additionally
//! enumerates **memory plans** that upgrade the heuristic assignment where
//! the analyzer can prove legality:
//!
//! * **line buffers** for arrays whose loads form a stencil window
//!   ([`cayman_analysis::banking::stencil_window`]) — one off-chip fetch per
//!   iteration instead of one per tap, no DMA, cheap taps;
//! * **banked scratchpads** where every unrolled access stride is proven
//!   conflict-free ([`cayman_analysis::banking::bank_conflict_free`]) —
//!   more ports than the heuristic partitioning, lowering resMII;
//! * **double-buffered scratchpads** when the candidate is entered more than
//!   once — the DMA fill of entry *n+1* hides behind the compute of entry
//!   *n*, so only the first fill is exposed, for twice the buffer area.
//!
//! All plans of a configuration are emitted; Pareto pruning upstream keeps
//! the useful ones.
//!
//! Estimation decomposes the candidate into pipelined loop regions `P` and
//! sequential basic blocks `B` (the paper's bottom-up scheme): pipelined
//! loops contribute `entries · (depth + II·(iters−1))`, sequential blocks
//! contribute `executions · schedule_length`, and every candidate entry pays
//! offload synchronisation plus scratchpad DMA fill/drain and line-buffer
//! warm-up.

use crate::inputs::{Candidate, FuncInputs};
use crate::interface::{
    InterfaceKind, InterfaceSpec, ModelOptions, COUPLED_LSU_AREA, DMA_AREA, DMA_BYTES_PER_CYCLE,
};
use crate::oplib::{
    dedicated_area, fu_area, fu_class, ACCEL_FREQ_HZ, FSM_STATE_AREA, OFFLOAD_SYNC_CYCLES, REG_AREA,
};
use crate::pipeline::{loop_body_instrs, pipeline_loop};
use crate::schedule::schedule_block;
use cayman_analysis::access::footprint;
use cayman_analysis::banking::{bank_conflict_free, stencil_window};
use cayman_ir::cpu_model::CPU_FREQ_HZ;
use cayman_ir::instr::Instr;
use cayman_ir::loops::LoopId;
use cayman_ir::{BlockId, FuncId, InstrId};
use std::collections::{BTreeMap, HashMap};

/// One fully configured accelerator design for a candidate region.
#[derive(Debug, Clone)]
pub struct AcceleratorDesign {
    /// Containing function.
    pub func: FuncId,
    /// Blocks covered (the candidate region).
    pub blocks: Vec<BlockId>,
    /// Unroll factor applied to eligible innermost loops.
    pub unroll: u32,
    /// Pipelined loops (`#PR` contribution).
    pub pipelined: Vec<LoopId>,
    /// Per pipelined loop: its block set and effective unroll factor —
    /// consumed by the merging pass to extract datapath units.
    pub pipelined_detail: Vec<(LoopId, Vec<BlockId>, u32)>,
    /// Interface assignment per memory access instruction.
    pub interfaces: Vec<(InstrId, InterfaceSpec)>,
    /// Number of sequential basic blocks synthesised (`#SB` contribution).
    pub seq_blocks: usize,
    /// Total accelerator cycles over the program run (`Cycle_cand` share).
    pub accel_cycles_total: f64,
    /// Estimated accelerator area.
    pub area: f64,
    /// Profiled CPU cycles the candidate replaces.
    pub cpu_cycles: u64,
    /// Profiled entries of the candidate.
    pub entries: u64,
}

impl AcceleratorDesign {
    /// Wall-clock seconds saved by offloading (Eq. (1) numerator term):
    /// `T_cand − Cycle_cand / F`.
    pub fn saved_seconds(&self) -> f64 {
        self.cpu_cycles as f64 / CPU_FREQ_HZ - self.accel_cycles_total / ACCEL_FREQ_HZ
    }

    /// CPU seconds replaced (`T_cand`).
    pub fn cpu_seconds(&self) -> f64 {
        self.cpu_cycles as f64 / CPU_FREQ_HZ
    }

    /// Accelerator seconds spent (`Cycle_cand / F`).
    pub fn accel_seconds(&self) -> f64 {
        self.accel_cycles_total / ACCEL_FREQ_HZ
    }

    /// `(coupled, decoupled, scratchpad-family, line-buffer)` interface
    /// counts (#C, #D, #S, #LB). The scratchpad-family bucket covers plain,
    /// banked and double-buffered scratchpads.
    pub fn iface_counts(&self) -> (usize, usize, usize, usize) {
        let mut c = (0, 0, 0, 0);
        for (_, spec) in &self.interfaces {
            match spec.kind {
                InterfaceKind::Coupled => c.0 += 1,
                InterfaceKind::Decoupled => c.1 += 1,
                InterfaceKind::Scratchpad
                | InterfaceKind::BankedScratchpad
                | InterfaceKind::DoubleBuffered => c.2 += 1,
                InterfaceKind::LineBuffer => c.3 += 1,
            }
        }
        c
    }
}

/// One interface assignment for a configuration: the per-access spec map
/// plus the line-buffer storage each array needs (which is a window
/// property, not a footprint).
struct MemPlan {
    map: HashMap<InstrId, InterfaceSpec>,
    /// Array id → line-buffer storage bytes (`(rows − 1) · row_stride ·
    /// elem_bytes`).
    lb_bytes: BTreeMap<u32, f64>,
    /// Line-buffer warm-up cycles per candidate entry (rows that must
    /// stream in before the first full window).
    lb_warmup: f64,
}

/// Generates the candidate's accelerator configurations (the `accel(v, R)`
/// call of Algorithm 1). Designs that would not save any time are still
/// returned; Pareto pruning upstream discards them.
pub fn generate_designs(
    inputs: &FuncInputs<'_>,
    cand: &Candidate,
    opts: &ModelOptions,
) -> Vec<AcceleratorDesign> {
    let _s = cayman_obs::span!("hls.generate", blocks = cand.blocks.len(), bb = cand.is_bb,);
    if cand.entries == 0 {
        return Vec::new();
    }
    let innermost = cand.innermost_loops(inputs.ctx);
    let mut designs = Vec::new();

    // Sequential configuration (always available).
    designs.extend(estimate_design(inputs, cand, opts, &[], 1, 1));

    if !innermost.is_empty() {
        // Pipelined configurations: inner unroll × outer duplication.
        let func = inputs.func();
        let any_unrollable = innermost.iter().any(|&l| {
            !inputs.deps[l.index()].has_carried() || inputs.deps[l.index()].is_reduction_only(func)
        });
        let any_duplicable = innermost
            .iter()
            .any(|&l| dup_parent_eligible(inputs, cand, l, 2));
        for &u in &opts.unroll_factors {
            if u > 1 && !any_unrollable {
                break;
            }
            for &d in &opts.duplication_factors {
                if d > 1 && !any_duplicable {
                    break;
                }
                if u.saturating_mul(d) > 16 {
                    continue;
                }
                designs.extend(estimate_design(inputs, cand, opts, &innermost, u, d));
            }
        }
    }
    designs
}

/// Whether pipelined loop `l` can be duplicated `d`-fold: its parent loop is
/// inside the candidate, carries no dependence, and iterates at least `d`
/// times (outer-loop unrolling distributes parent iterations over parallel
/// pipeline instances).
fn dup_parent_eligible(inputs: &FuncInputs<'_>, cand: &Candidate, l: LoopId, d: u32) -> bool {
    let ctx = inputs.ctx;
    let Some(p) = ctx.forest.get(l).parent else {
        return false;
    };
    let within = ctx
        .forest
        .get(p)
        .blocks
        .iter()
        .all(|b| cand.blocks.contains(b));
    within && !inputs.deps[p.index()].has_carried() && inputs.trip(p) >= f64::from(d)
}

/// Builds one configuration and estimates every memory plan of it. The
/// heuristic 3-kind plan always comes first; extended plans follow when
/// enabled and legal.
fn estimate_design(
    inputs: &FuncInputs<'_>,
    cand: &Candidate,
    opts: &ModelOptions,
    pipelined: &[LoopId],
    unroll: u32,
    dup: u32,
) -> Vec<AcceleratorDesign> {
    let func = inputs.func();
    let ctx = inputs.ctx;

    // Effective unroll per pipelined loop: 1 when the loop carries a
    // dependence — except pure scalar reductions, which unroll into partial
    // sums (throughput scales; the recurrence II is preserved by
    // `pipeline_loop`).
    let unroll_of = |l: LoopId| -> u32 {
        let deps = &inputs.deps[l.index()];
        if deps.has_carried() && !deps.is_reduction_only(func) {
            1
        } else {
            unroll
        }
    };

    // Loops in candidate with trip counts, for footprint computation.
    let loops_within = cand.loops_within(ctx);
    let loops_trips: Vec<(LoopId, f64)> =
        loops_within.iter().map(|&l| (l, inputs.trip(l))).collect();

    // The innermost *pipelined* loop covering an access, if any.
    let pipelined_loop_of = |b: BlockId| -> Option<LoopId> {
        ctx.forest.innermost_loop(b).and_then(|l| {
            pipelined
                .iter()
                .find(|&&p| p == l || ctx.forest.contains(p, l))
                .map(|_| l)
        })
    };

    // ---- phase 1: classic 3-kind heuristic ---------------------------------
    let mut kind_map: HashMap<InstrId, InterfaceKind> = HashMap::new();
    for a in inputs.accesses.within(&cand.blocks) {
        let kind = if opts.coupled_only {
            InterfaceKind::Coupled
        } else {
            let total_count = inputs.count(a.block) as f64 / cand.entries as f64;
            let fp = footprint(a, &cand.blocks, &loops_trips);
            let elem_bytes = inputs.module.array(a.array).elem.byte_width() as f64;
            let in_pipelined = pipelined_loop_of(a.block).is_some();
            match fp {
                Some(fp)
                    if total_count >= opts.beta * fp && fp * elem_bytes <= opts.spad_max_bytes =>
                {
                    InterfaceKind::Scratchpad
                }
                Some(_) if in_pipelined && a.is_stream_within(&cand.blocks) => {
                    InterfaceKind::Decoupled
                }
                _ => InterfaceKind::Coupled,
            }
        };
        kind_map.insert(a.instr, kind);
    }

    // Effective duplication per pipelined loop: parallel pipeline instances
    // fed by unrolling a dependence-free parent loop. Coupled accesses
    // serialise on the single LSU port, so they veto duplication.
    let dup_of = |l: LoopId| -> u32 {
        if dup <= 1 || !dup_parent_eligible(inputs, cand, l, dup) {
            return 1;
        }
        let has_coupled = ctx.forest.get(l).blocks.iter().any(|b| {
            func.block(*b).instrs.iter().any(|i| {
                matches!(func.instr(*i), Instr::Load { .. } | Instr::Store { .. })
                    && kind_map.get(i) == Some(&InterfaceKind::Coupled)
            })
        });
        if has_coupled {
            1
        } else {
            dup
        }
    };

    // ---- phase 2: base specs -----------------------------------------------
    // Scratchpad partitions per array: unroll × duplication of the access's
    // pipelined loop (parallel unroll copies need parallel banks). Taking
    // the per-array max keeps one buffer per array.
    let mut spad_parts: BTreeMap<u32, u32> = BTreeMap::new();
    for a in inputs.accesses.within(&cand.blocks) {
        if kind_map.get(&a.instr) == Some(&InterfaceKind::Scratchpad) {
            let p = pipelined_loop_of(a.block)
                .map(|l| unroll_of(l) * dup_of(l))
                .unwrap_or(1);
            let e = spad_parts.entry(a.array.0).or_insert(1);
            *e = (*e).max(p);
        }
    }
    let mut base: HashMap<InstrId, InterfaceSpec> = HashMap::new();
    for a in inputs.accesses.within(&cand.blocks) {
        let Some(kind) = kind_map.get(&a.instr) else {
            continue;
        };
        let spec = match kind {
            InterfaceKind::Coupled => InterfaceSpec::coupled(),
            InterfaceKind::Decoupled => InterfaceSpec::decoupled(),
            _ => InterfaceSpec::scratchpad(spad_parts.get(&a.array.0).copied().unwrap_or(1)),
        };
        base.insert(a.instr, spec);
    }

    // ---- extended memory plans ---------------------------------------------
    let mut plans: Vec<MemPlan> = vec![MemPlan {
        map: base.clone(),
        lb_bytes: BTreeMap::new(),
        lb_warmup: 0.0,
    }];
    if opts.extended && !opts.coupled_only {
        if let Some(p) = line_buffer_plan(inputs, cand, opts, pipelined, &base) {
            plans.push(p);
        }
        if let Some(p) = banked_plan(inputs, cand, opts, pipelined, &base, &spad_parts, &|l| {
            unroll_of(l) * dup_of(l)
        }) {
            plans.push(p);
        }
        if cand.entries > 1 && !spad_parts.is_empty() {
            // Ping-pong every scratchpad buffer: only the first fill shows.
            let map = base
                .iter()
                .map(|(&i, &s)| {
                    let s = if s.kind == InterfaceKind::Scratchpad {
                        InterfaceSpec::double_buffered(u32::from(s.banks))
                    } else {
                        s
                    };
                    (i, s)
                })
                .collect();
            plans.push(MemPlan {
                map,
                lb_bytes: BTreeMap::new(),
                lb_warmup: 0.0,
            });
        }
    }

    plans
        .into_iter()
        .map(|plan| {
            estimate_plan(
                inputs,
                cand,
                pipelined,
                unroll,
                &unroll_of,
                &dup_of,
                &pipelined_loop_of,
                &loops_trips,
                plan,
            )
        })
        .collect()
}

/// A plan replacing stencil loads by line-buffer taps, when any pipelined
/// loop nest carries a provable window.
fn line_buffer_plan(
    inputs: &FuncInputs<'_>,
    cand: &Candidate,
    opts: &ModelOptions,
    pipelined: &[LoopId],
    base: &HashMap<InstrId, InterfaceSpec>,
) -> Option<MemPlan> {
    let ctx = inputs.ctx;
    let mut map = base.clone();
    let mut lb_bytes = BTreeMap::new();
    let mut lb_warmup = 0.0f64;
    let mut changed = false;
    for &l in pipelined {
        // The row loop must also run inside the candidate, or the buffered
        // rows are thrown away at every entry.
        let Some(row) = ctx.forest.get(l).parent else {
            continue;
        };
        if !ctx
            .forest
            .get(row)
            .blocks
            .iter()
            .all(|b| cand.blocks.contains(b))
        {
            continue;
        }
        let blocks = &ctx.forest.get(l).blocks;
        // Group this loop's loads by array; stores to the array anywhere in
        // the candidate invalidate the buffered rows.
        let mut loads: BTreeMap<u32, Vec<&cayman_analysis::access::AccessInfo>> = BTreeMap::new();
        let mut stored: std::collections::BTreeSet<u32> = Default::default();
        for a in inputs.accesses.within(&cand.blocks) {
            if a.is_store {
                stored.insert(a.array.0);
            } else if blocks.contains(&a.block) {
                loads.entry(a.array.0).or_default().push(a);
            }
        }
        for (arr, accs) in &loads {
            if stored.contains(arr) {
                continue;
            }
            let Some(addrs): Option<Vec<_>> = accs.iter().map(|a| a.addr.clone()).collect() else {
                continue;
            };
            let Some(win) = stencil_window(&addrs, row, l) else {
                continue;
            };
            if win.rows > opts.lb_max_rows {
                continue;
            }
            let elem_bytes = inputs
                .module
                .array(cayman_ir::ArrayId(*arr))
                .elem
                .byte_width() as f64;
            let spec = InterfaceSpec::line_buffer(win.rows);
            for a in accs {
                map.insert(a.instr, spec);
            }
            lb_bytes.insert(
                *arr,
                (win.rows as f64 - 1.0) * win.row_stride as f64 * elem_bytes,
            );
            lb_warmup += (win.rows as f64 - 1.0) * win.row_stride as f64 + win.cols as f64;
            changed = true;
        }
    }
    changed.then_some(MemPlan {
        map,
        lb_bytes,
        lb_warmup,
    })
}

/// A plan replacing heuristically partitioned scratchpads by conflict-proven
/// banked ones with strictly more ports, where every unrolled access stride
/// admits it.
fn banked_plan(
    inputs: &FuncInputs<'_>,
    cand: &Candidate,
    opts: &ModelOptions,
    pipelined: &[LoopId],
    base: &HashMap<InstrId, InterfaceSpec>,
    spad_parts: &BTreeMap<u32, u32>,
    eff_unroll: &dyn Fn(LoopId) -> u32,
) -> Option<MemPlan> {
    let ctx = inputs.ctx;
    let mut banks_of: BTreeMap<u32, u32> = BTreeMap::new();
    for (&arr, &parts) in spad_parts {
        let mut best: Option<u32> = None;
        'factor: for &b in &opts.bank_factors {
            if b <= parts {
                continue; // no new ports over the heuristic partitioning
            }
            for a in inputs.accesses.within(&cand.blocks) {
                if a.array.0 != arr
                    || base.get(&a.instr).map(|s| s.kind) != Some(InterfaceKind::Scratchpad)
                {
                    continue;
                }
                let Some(l) = ctx.forest.innermost_loop(a.block).filter(|l| {
                    pipelined
                        .iter()
                        .any(|&p| p == *l || ctx.forest.contains(p, *l))
                }) else {
                    continue; // not in a pipelined loop: one copy, no conflict
                };
                let u = eff_unroll(l);
                if u <= 1 {
                    continue;
                }
                let Some(stride) = a.addr.as_ref().map(|e| e.coeff(l)) else {
                    continue 'factor; // unknown stride: unprovable at this (or any) factor
                };
                if !bank_conflict_free(stride, b, u) {
                    continue 'factor;
                }
            }
            best = Some(b);
        }
        if let Some(b) = best {
            banks_of.insert(arr, b);
        }
    }
    if banks_of.is_empty() {
        return None;
    }
    let mut map = base.clone();
    for a in inputs.accesses.within(&cand.blocks) {
        if let Some(&b) = banks_of.get(&a.array.0) {
            if base.get(&a.instr).map(|s| s.kind) == Some(InterfaceKind::Scratchpad) {
                map.insert(a.instr, InterfaceSpec::banked(b));
            }
        }
    }
    Some(MemPlan {
        map,
        lb_bytes: BTreeMap::new(),
        lb_warmup: 0.0,
    })
}

/// Estimates one configuration under one memory plan.
#[allow(clippy::too_many_arguments)]
fn estimate_plan(
    inputs: &FuncInputs<'_>,
    cand: &Candidate,
    pipelined: &[LoopId],
    unroll: u32,
    unroll_of: &dyn Fn(LoopId) -> u32,
    dup_of: &dyn Fn(LoopId) -> u32,
    pipelined_loop_of: &dyn Fn(BlockId) -> Option<LoopId>,
    loops_trips: &[(LoopId, f64)],
    plan: MemPlan,
) -> AcceleratorDesign {
    let func = inputs.func();
    let ctx = inputs.ctx;
    let iface_map = plan.map;
    let iface = |i: InstrId| iface_map.get(&i).copied();

    // ---- performance --------------------------------------------------------
    let mut pipelined_blocks: Vec<BlockId> = Vec::new();
    let mut pipelined_detail: Vec<(LoopId, Vec<BlockId>, u32)> = Vec::new();
    for &l in pipelined {
        let blocks = ctx.forest.get(l).blocks.clone();
        pipelined_blocks.extend(blocks.iter().copied());
        pipelined_detail.push((l, blocks, unroll_of(l) * dup_of(l)));
    }

    let mut accel_cycles = 0.0f64;
    let mut pipe_area = 0.0f64;
    for &l in pipelined {
        let u = unroll_of(l);
        let d = dup_of(l);
        let est = pipeline_loop(inputs, l, u, &iface);
        let lp = ctx.forest.get(l);
        let back: u64 = lp.latches.iter().map(|&b| inputs.count(b)).sum();
        let entries = inputs.count(lp.header).saturating_sub(back).max(1);
        // d parallel instances each take a share of the loop's entries.
        accel_cycles += entries as f64 * est.cycles_per_entry / f64::from(d);
        // Fully spatial datapath, duplicated per unroll copy and instance.
        for i in loop_body_instrs(inputs, l) {
            pipe_area += dedicated_area(func.instr(i)) * f64::from(u * d);
        }
    }

    // Sequential blocks: candidate blocks outside every pipelined loop.
    let seq: Vec<BlockId> = cand
        .blocks
        .iter()
        .copied()
        .filter(|b| !pipelined_blocks.contains(b))
        .collect();
    let mut seq_states = 0u64;
    let mut seq_blocks = 0usize;
    let mut seq_classes: BTreeMap<crate::oplib::FuClass, f64> = BTreeMap::new();
    let mut seq_reg_area = 0.0f64;
    for &b in &seq {
        let sched = schedule_block(func, b, &iface, 1);
        accel_cycles += inputs.count(b) as f64 * sched.length as f64;
        seq_states += sched.length;
        let nontrivial = func
            .block(b)
            .instrs
            .iter()
            .any(|&i| !matches!(func.instr(i), Instr::Phi { .. }));
        if nontrivial {
            seq_blocks += 1;
        }
        for &i in &func.block(b).instrs {
            if let Some(c) = fu_class(func.instr(i)) {
                let a = fu_area(c);
                let entry = seq_classes.entry(c).or_insert(0.0);
                *entry = entry.max(a);
            }
            seq_reg_area += REG_AREA;
        }
    }

    // ---- interface performance & area costs --------------------------------
    // One buffer per DMA-filled array, sized by the max footprint, with the
    // spec the plan assigned to that array's accesses.
    let mut spad_bytes_per_array: BTreeMap<u32, f64> = BTreeMap::new();
    let mut spad_spec_per_array: BTreeMap<u32, InterfaceSpec> = BTreeMap::new();
    let mut n_coupled = 0usize;
    let mut iface_area = 0.0f64;
    for a in inputs.accesses.within(&cand.blocks) {
        let Some(&spec) = iface_map.get(&a.instr) else {
            continue;
        };
        // The enclosing pipelined loop's duplication factor replicates the
        // access's interface hardware.
        let acc_dup = pipelined_loop_of(a.block).map(dup_of).unwrap_or(1);
        iface_area += spec.per_access_area() * f64::from(acc_dup);
        match spec.kind {
            InterfaceKind::Coupled => n_coupled += 1,
            _ if spec.needs_dma() => {
                let fp = footprint(a, &cand.blocks, loops_trips).unwrap_or(1.0);
                let bytes = fp * inputs.module.array(a.array).elem.byte_width() as f64;
                let e = spad_bytes_per_array.entry(a.array.0).or_insert(0.0);
                *e = e.max(bytes);
                spad_spec_per_array.insert(a.array.0, spec);
            }
            _ => {}
        }
    }

    // DMA fill/drain: per candidate entry, except double-buffered arrays,
    // whose refill hides behind the previous entry's compute — only the
    // first fill is exposed.
    let mut dma_per_entry = 0.0f64;
    let mut dma_once = 0.0f64;
    for (arr, bytes) in &spad_bytes_per_array {
        let cycles = bytes / DMA_BYTES_PER_CYCLE;
        if spad_spec_per_array[arr].kind == InterfaceKind::DoubleBuffered {
            dma_once += cycles;
        } else {
            dma_per_entry += cycles;
        }
    }
    accel_cycles +=
        cand.entries as f64 * (OFFLOAD_SYNC_CYCLES + dma_per_entry + plan.lb_warmup) + dma_once;

    // ---- area roll-up --------------------------------------------------------
    let mut area = pipe_area + seq_classes.values().sum::<f64>() + seq_reg_area + iface_area;
    area += FSM_STATE_AREA * (seq_states + 3 * pipelined.len() as u64) as f64;
    if n_coupled > 0 {
        area += COUPLED_LSU_AREA;
    }
    if !spad_bytes_per_array.is_empty() {
        area += DMA_AREA;
        for (arr, bytes) in &spad_bytes_per_array {
            area += spad_spec_per_array[arr].buffer_area(*bytes);
        }
    }
    for bytes in plan.lb_bytes.values() {
        area += InterfaceSpec::line_buffer(2).buffer_area(*bytes);
    }

    AcceleratorDesign {
        func: cand.func,
        blocks: cand.blocks.clone(),
        unroll,
        pipelined: pipelined.to_vec(),
        pipelined_detail,
        interfaces: {
            let mut v: Vec<(InstrId, InterfaceSpec)> = iface_map.into_iter().collect();
            v.sort_unstable_by_key(|(i, _)| *i);
            v
        },
        seq_blocks,
        accel_cycles_total: accel_cycles,
        area,
        cpu_cycles: cand.cpu_cycles,
        entries: cand.entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cayman_analysis::access::AccessAnalysis;
    use cayman_analysis::ctx::FuncCtx;
    use cayman_analysis::memdep::analyse_loop_deps;
    use cayman_analysis::scev::Scev;
    use cayman_ir::builder::ModuleBuilder;
    use cayman_ir::interp::Interp;
    use cayman_ir::{FuncId, Module, Type};

    struct Owned {
        module: Module,
        ctx: FuncCtx,
        accesses: AccessAnalysis,
        deps: Vec<cayman_analysis::memdep::LoopDeps>,
        counts: Vec<u64>,
    }

    fn prepare(module: Module) -> Owned {
        module.verify().expect("verifies");
        let mut interp = Interp::new(&module);
        let exec = interp.run(&[]).expect("runs");
        let f = module.function(FuncId(0));
        let ctx = FuncCtx::compute(f);
        let mut scev = Scev::new(f, &ctx);
        let accesses = AccessAnalysis::run(&module, f, &ctx, &mut scev);
        let deps = analyse_loop_deps(f, &ctx, &mut scev, &accesses);
        let counts = exec.block_counts[0].clone();
        Owned {
            ctx,
            accesses,
            deps,
            counts,
            module,
        }
    }

    fn inputs<'a>(o: &'a Owned, trips: &'a [f64]) -> FuncInputs<'a> {
        FuncInputs {
            module: &o.module,
            func_id: FuncId(0),
            ctx: &o.ctx,
            accesses: &o.accesses,
            deps: &o.deps,
            trips,
            block_counts: &o.counts,
            content_fp: cayman_ir::fingerprint_function(o.module.function(FuncId(0))),
        }
    }

    fn loop_candidate(o: &Owned, inp: &FuncInputs<'_>) -> Candidate {
        let l = o
            .ctx
            .forest
            .ids()
            .find(|&l| o.ctx.forest.get(l).depth == 1)
            .expect("loop");
        let lp = o.ctx.forest.get(l);
        let back: u64 = lp.latches.iter().map(|&b| inp.count(b)).sum();
        let entries = inp.count(lp.header) - back;
        let cpu: u64 = lp
            .blocks
            .iter()
            .map(|&b| inp.count(b) * cayman_ir::cpu_model::block_cycles(inp.func(), b))
            .sum();
        Candidate {
            func: FuncId(0),
            blocks: lp.blocks.clone(),
            entries,
            cpu_cycles: cpu,
            is_bb: false,
            content_fp: inp.content_fp,
        }
    }

    fn streaming_kernel(n: i64) -> Module {
        let mut mb = ModuleBuilder::new("t");
        let x = mb.array("x", Type::F64, &[n as usize]);
        let y = mb.array("y", Type::F64, &[n as usize]);
        mb.function("main", &[], None, |fb| {
            fb.counted_loop(0, n, 1, |fb, i| {
                let xv = fb.load_idx(x, &[i]);
                let t = fb.fmul(fb.fconst(3.0), xv);
                let v = fb.fadd(t, fb.fconst(1.0));
                fb.store_idx(y, &[i], v);
            });
            fb.ret(None);
        });
        mb.finish()
    }

    /// A 3×3 convolution over `h × w` — the canonical line-buffer shape.
    fn conv3x3_kernel(h: i64, w: i64) -> Module {
        let mut mb = ModuleBuilder::new("t");
        let src = mb.array("src", Type::F64, &[h as usize, w as usize]);
        let dst = mb.array("dst", Type::F64, &[h as usize, w as usize]);
        mb.function("main", &[], None, |fb| {
            fb.counted_loop(1, h - 1, 1, |fb, r| {
                fb.counted_loop(1, w - 1, 1, |fb, c| {
                    let mut acc = fb.fconst(0.0);
                    for dr in -1..=1i64 {
                        for dc in -1..=1i64 {
                            let rr = fb.add(r, fb.iconst(dr));
                            let cc = fb.add(c, fb.iconst(dc));
                            let v = fb.load_idx(src, &[rr, cc]);
                            acc = fb.fadd(acc, v);
                        }
                    }
                    fb.store_idx(dst, &[r, c], acc);
                });
            });
            fb.ret(None);
        });
        mb.finish()
    }

    #[test]
    fn pipelined_designs_beat_sequential() {
        let o = prepare(streaming_kernel(256));
        let inp = inputs(&o, &[256.0]);
        let cand = loop_candidate(&o, &inp);
        let designs = generate_designs(&inp, &cand, &ModelOptions::default());
        assert!(designs.len() >= 3, "seq + several unrolls");
        let seq = designs
            .iter()
            .find(|d| d.pipelined.is_empty())
            .expect("seq");
        let pipe = designs
            .iter()
            .find(|d| !d.pipelined.is_empty())
            .expect("pipelined");
        assert!(
            pipe.accel_cycles_total < seq.accel_cycles_total,
            "pipelining helps: {} vs {}",
            pipe.accel_cycles_total,
            seq.accel_cycles_total
        );
        assert!(pipe.area > seq.area, "pipelining costs area");
        // streaming loop saves time vs the CPU
        assert!(pipe.saved_seconds() > 0.0);
    }

    #[test]
    fn coupled_only_is_slower() {
        let o = prepare(streaming_kernel(256));
        let inp = inputs(&o, &[256.0]);
        let cand = loop_candidate(&o, &inp);
        let full = generate_designs(&inp, &cand, &ModelOptions::default());
        let coupled = generate_designs(&inp, &cand, &ModelOptions::coupled_only());
        let best_full = full
            .iter()
            .map(|d| d.accel_cycles_total)
            .fold(f64::INFINITY, f64::min);
        let best_coupled = coupled
            .iter()
            .map(|d| d.accel_cycles_total)
            .fold(f64::INFINITY, f64::min);
        assert!(
            best_full < best_coupled,
            "interface specialisation matters: {best_full} vs {best_coupled}"
        );
        // every interface in the ablation is coupled
        for d in &coupled {
            let (c, de, s, lb) = d.iface_counts();
            assert_eq!((de, s, lb), (0, 0, 0));
            assert!(c > 0);
        }
    }

    #[test]
    fn interfaces_follow_the_heuristic() {
        let o = prepare(streaming_kernel(256));
        let inp = inputs(&o, &[256.0]);
        let cand = loop_candidate(&o, &inp);
        let designs = generate_designs(&inp, &cand, &ModelOptions::default());
        // pipelined design: stream accesses with footprint = trip count get
        // decoupled (count == footprint < β·footprint)
        let pipe = designs
            .iter()
            .find(|d| !d.pipelined.is_empty())
            .expect("pipelined");
        let (_, d, _, _) = pipe.iface_counts();
        assert!(d >= 2, "x load and y store should be decoupled: {pipe:?}");
    }

    #[test]
    fn reused_small_array_gets_a_scratchpad() {
        // w[j] reused across outer iterations: count = N·M accesses over
        // footprint M → scratchpad.
        let mut mb = ModuleBuilder::new("t");
        let w = mb.array("w", Type::F64, &[8]);
        let x = mb.array("x", Type::F64, &[64]);
        let y = mb.array("y", Type::F64, &[64]);
        mb.function("main", &[], None, |fb| {
            fb.counted_loop(0, 64, 1, |fb, i| {
                fb.counted_loop(0, 8, 1, |fb, j| {
                    let wv = fb.load_idx(w, &[j]);
                    let xv = fb.load_idx(x, &[i]);
                    let p = fb.fmul(wv, xv);
                    fb.store_idx(y, &[i], p);
                });
            });
            fb.ret(None);
        });
        let o = prepare(mb.finish());
        let trips: Vec<f64> = o
            .ctx
            .forest
            .ids()
            .map(|l| {
                if o.ctx.forest.get(l).depth == 1 {
                    64.0
                } else {
                    8.0
                }
            })
            .collect();
        let inp = inputs(&o, &trips);
        let cand = loop_candidate(&o, &inp);
        let designs = generate_designs(&inp, &cand, &ModelOptions::default());
        let any_spad = designs.iter().any(|d| d.iface_counts().2 > 0);
        assert!(any_spad, "w should be cached in a scratchpad");
    }

    #[test]
    fn stencil_loads_get_a_line_buffer_plan() {
        let o = prepare(conv3x3_kernel(16, 16));
        let trips: Vec<f64> = o.ctx.forest.ids().map(|_| 14.0).collect();
        let inp = inputs(&o, &trips);
        let cand = loop_candidate(&o, &inp);
        let designs = generate_designs(&inp, &cand, &ModelOptions::default());
        let lb: Vec<&AcceleratorDesign> =
            designs.iter().filter(|d| d.iface_counts().3 > 0).collect();
        assert!(!lb.is_empty(), "conv3x3 should produce line-buffer plans");
        // All nine src taps go through the line buffer.
        assert!(lb.iter().any(|d| d.iface_counts().3 == 9), "{lb:?}");
        // The baseline 3-kind model never emits one.
        let base = generate_designs(&inp, &cand, &ModelOptions::baseline3());
        assert!(base.iter().all(|d| d.iface_counts().3 == 0));
        // And the line-buffer plan strictly Pareto-improves over every
        // baseline design: fewer modeled cycles at equal-or-lower area.
        let improves = lb.iter().any(|d| {
            let twins: Vec<_> = base
                .iter()
                .filter(|b| b.unroll == d.unroll && b.pipelined_detail == d.pipelined_detail)
                .collect();
            !twins.is_empty()
                && twins
                    .iter()
                    .all(|b| d.accel_cycles_total < b.accel_cycles_total && d.area <= b.area)
        });
        assert!(improves, "line buffer should dominate its baseline config");
    }

    #[test]
    fn double_buffering_hides_refill_on_reentry() {
        // Outer-entered candidate: the inner loop region is entered 64
        // times, each entry refilling the w scratchpad.
        let o = prepare({
            let mut mb = ModuleBuilder::new("t");
            let w = mb.array("w", Type::F64, &[8]);
            let y = mb.array("y", Type::F64, &[64]);
            mb.function("main", &[], None, |fb| {
                fb.counted_loop(0, 64, 1, |fb, i| {
                    fb.counted_loop(0, 8, 1, |fb, j| {
                        let wv = fb.load_idx(w, &[j]);
                        let p = fb.fmul(wv, fb.fconst(2.0));
                        fb.store_idx(y, &[i], p);
                    });
                });
                fb.ret(None);
            });
            mb.finish()
        });
        let trips: Vec<f64> = o
            .ctx
            .forest
            .ids()
            .map(|l| {
                if o.ctx.forest.get(l).depth == 1 {
                    64.0
                } else {
                    8.0
                }
            })
            .collect();
        let inp = inputs(&o, &trips);
        // Candidate = the inner loop only, entered once per outer iteration.
        let l = o
            .ctx
            .forest
            .ids()
            .find(|&l| o.ctx.forest.get(l).depth == 2)
            .expect("inner loop");
        let lp = o.ctx.forest.get(l);
        let back: u64 = lp.latches.iter().map(|&b| inp.count(b)).sum();
        let entries = inp.count(lp.header) - back;
        let cpu: u64 = lp
            .blocks
            .iter()
            .map(|&b| inp.count(b) * cayman_ir::cpu_model::block_cycles(inp.func(), b))
            .sum();
        let cand = Candidate {
            func: FuncId(0),
            blocks: lp.blocks.clone(),
            entries,
            cpu_cycles: cpu,
            is_bb: false,
            content_fp: inp.content_fp,
        };
        assert!(cand.entries > 1);
        let designs = generate_designs(&inp, &cand, &ModelOptions::default());
        let dbl: Vec<&AcceleratorDesign> = designs
            .iter()
            .filter(|d| {
                d.interfaces
                    .iter()
                    .any(|(_, s)| s.kind == InterfaceKind::DoubleBuffered)
            })
            .collect();
        if dbl.is_empty() {
            // The heuristic found no scratchpad at all — nothing to hide.
            assert!(designs.iter().all(|d| d.iface_counts().2 == 0));
            return;
        }
        // A double-buffered twin exists for some base design: fewer cycles,
        // more buffer area.
        let improves = dbl.iter().any(|d| {
            designs
                .iter()
                .filter(|b| {
                    b.pipelined == d.pipelined
                        && b.unroll == d.unroll
                        && b.interfaces
                            .iter()
                            .all(|(_, s)| s.kind != InterfaceKind::DoubleBuffered)
                        && b.iface_counts().2 > 0
                })
                .any(|b| d.accel_cycles_total < b.accel_cycles_total && d.area > b.area)
        });
        assert!(improves, "double buffering trades area for hidden refills");
    }

    #[test]
    fn bb_candidate_yields_one_sequential_design() {
        let o = prepare(streaming_kernel(64));
        let inp = inputs(&o, &[64.0]);
        // candidate = the loop body block alone
        let body = cayman_ir::BlockId(2);
        let cand = Candidate {
            func: FuncId(0),
            blocks: vec![body],
            entries: inp.count(body),
            cpu_cycles: inp.count(body) * cayman_ir::cpu_model::block_cycles(inp.func(), body),
            is_bb: true,
            content_fp: inp.content_fp,
        };
        let designs = generate_designs(&inp, &cand, &ModelOptions::default());
        assert_eq!(designs.len(), 1);
        assert!(designs[0].pipelined.is_empty());
        assert_eq!(designs[0].seq_blocks, 1);
    }

    #[test]
    fn zero_entry_candidate_yields_nothing() {
        let o = prepare(streaming_kernel(64));
        let inp = inputs(&o, &[64.0]);
        let cand = Candidate {
            func: FuncId(0),
            blocks: vec![cayman_ir::BlockId(2)],
            entries: 0,
            cpu_cycles: 0,
            is_bb: true,
            content_fp: inp.content_fp,
        };
        assert!(generate_designs(&inp, &cand, &ModelOptions::default()).is_empty());
    }
}
