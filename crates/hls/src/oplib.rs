//! Characterised component library: per-operation latency and area.
//!
//! The paper retrieves operation and interface delay/area "by synthesizing
//! them with OpenROAD targeting the Nangate45 PDK" (§III-F). Synthesis tools
//! are not available here, so this module is a fixed characterisation table
//! with Nangate45-flavoured *relative* costs at the paper's 500 MHz target
//! clock (§IV-A). Areas are abstract µm²-like units; what matters downstream
//! is their ratios and the normalisation against [`CVA6_TILE_AREA`].

use cayman_ir::instr::{BinOp, Instr, UnaryOp};

/// Accelerator target clock frequency in Hz (paper §IV-A: 500 MHz).
pub const ACCEL_FREQ_HZ: f64 = 500.0e6;

/// Area of one CVA6 RISC-V tile in library units; accelerator area budgets
/// are expressed as fractions of this (paper §IV-A, reference \[32\]).
pub const CVA6_TILE_AREA: f64 = 1_200_000.0;

/// Area of a pipeline/output register per value.
pub const REG_AREA: f64 = 150.0;

/// Area of one 2:1 multiplexer input leg (merging overhead, §III-E).
pub const MUX_INPUT_AREA: f64 = 80.0;

/// Area of one AGU + FIFO pair (per decoupled access; re-exported by
/// `crate::interface`).
pub const AGU_FIFO_AREA: f64 = 2_500.0;

/// Area of one reconfiguration bit register used by merged datapaths.
pub const CONFIG_BIT_AREA: f64 = 10.0;

/// Area per FSM state of the sequential controller.
pub const FSM_STATE_AREA: f64 = 60.0;

/// Fixed offload/synchronisation penalty per accelerator invocation, in
/// accelerator cycles (driver write, start pulse, completion signal).
pub const OFFLOAD_SYNC_CYCLES: f64 = 50.0;

/// Latency in accelerator cycles of one *computational* instruction at the
/// 500 MHz target (memory accesses are interface-dependent and handled by
/// [`crate::interface`]).
///
/// `load`/`store` here return the *coupled*-interface default; schedulers
/// override per assigned interface.
pub fn accel_latency(instr: &Instr) -> u64 {
    match instr {
        Instr::Binary { op, .. } => match op {
            BinOp::Add
            | BinOp::Sub
            | BinOp::And
            | BinOp::Or
            | BinOp::Xor
            | BinOp::Shl
            | BinOp::Shr
            | BinOp::Min
            | BinOp::Max => 1,
            BinOp::Mul => 1,
            BinOp::Div | BinOp::Rem => 6,
            BinOp::FAdd | BinOp::FSub | BinOp::FMin | BinOp::FMax => 2,
            BinOp::FMul => 3,
            BinOp::FDiv => 10,
        },
        Instr::Unary { op, .. } => match op {
            UnaryOp::Neg | UnaryOp::Not | UnaryOp::FNeg | UnaryOp::FAbs => 1,
            UnaryOp::Sqrt => 10,
            UnaryOp::Exp | UnaryOp::Log => 16,
            UnaryOp::SiToFp | UnaryOp::FpToSi => 1,
        },
        Instr::Cmp { .. } | Instr::Select { .. } => 1,
        Instr::Gep { .. } => 1,
        Instr::Load { .. } => crate::interface::COUPLED_LOAD_LATENCY,
        Instr::Store { .. } => 1,
        Instr::Phi { .. } => 0,
        // Calls are never inside accelerable candidates; charged defensively.
        Instr::Call { .. } => 1,
    }
}

/// Functional-unit class for sequential resource sharing: ops of the same
/// class can time-share one unit in a sequential datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FuClass {
    /// Integer ALU (add/sub/logic/shift/min/max/cmp/select/gep).
    IntAlu,
    /// Integer multiplier.
    IntMul,
    /// Integer divider.
    IntDiv,
    /// Floating adder/subtractor (also fmin/fmax).
    FAdd,
    /// Floating multiplier.
    FMul,
    /// Floating divider / square root.
    FDivSqrt,
    /// Transcendental unit (exp/log).
    FTrans,
    /// Type converter.
    Cvt,
    /// Memory port logic (the per-access datapath side; interface area is
    /// charged separately).
    Mem,
    /// Pipeline/output register (one per operation instance). Mergeable:
    /// identical datapaths share registers too.
    Reg,
    /// Address-generation unit + FIFO (one per decoupled access).
    AguFifo,
}

/// Area of one functional unit of each class.
pub fn fu_area(class: FuClass) -> f64 {
    match class {
        FuClass::IntAlu => 500.0,
        FuClass::IntMul => 3_000.0,
        FuClass::IntDiv => 8_000.0,
        FuClass::FAdd => 4_000.0,
        FuClass::FMul => 6_000.0,
        FuClass::FDivSqrt => 15_000.0,
        FuClass::FTrans => 25_000.0,
        FuClass::Cvt => 800.0,
        FuClass::Mem => 300.0,
        FuClass::Reg => REG_AREA,
        FuClass::AguFifo => AGU_FIFO_AREA,
    }
}

/// The functional-unit class implementing an instruction, or `None` for
/// instructions that need no datapath unit (phi).
pub fn fu_class(instr: &Instr) -> Option<FuClass> {
    Some(match instr {
        Instr::Binary { op, .. } => match op {
            BinOp::Add
            | BinOp::Sub
            | BinOp::And
            | BinOp::Or
            | BinOp::Xor
            | BinOp::Shl
            | BinOp::Shr
            | BinOp::Min
            | BinOp::Max => FuClass::IntAlu,
            BinOp::Mul => FuClass::IntMul,
            BinOp::Div | BinOp::Rem => FuClass::IntDiv,
            BinOp::FAdd | BinOp::FSub | BinOp::FMin | BinOp::FMax => FuClass::FAdd,
            BinOp::FMul => FuClass::FMul,
            BinOp::FDiv => FuClass::FDivSqrt,
        },
        Instr::Unary { op, .. } => match op {
            UnaryOp::Neg | UnaryOp::Not => FuClass::IntAlu,
            UnaryOp::FNeg | UnaryOp::FAbs => FuClass::FAdd,
            UnaryOp::Sqrt => FuClass::FDivSqrt,
            UnaryOp::Exp | UnaryOp::Log => FuClass::FTrans,
            UnaryOp::SiToFp | UnaryOp::FpToSi => FuClass::Cvt,
        },
        Instr::Cmp { .. } | Instr::Select { .. } | Instr::Gep { .. } => FuClass::IntAlu,
        Instr::Load { .. } | Instr::Store { .. } => FuClass::Mem,
        Instr::Phi { .. } => return None,
        Instr::Call { .. } => FuClass::IntAlu,
    })
}

/// Dedicated (fully spatial) area of one instruction instance: its FU plus an
/// output register. Used for pipelined datapaths where units are not shared.
pub fn dedicated_area(instr: &Instr) -> f64 {
    match fu_class(instr) {
        Some(c) => fu_area(c) + REG_AREA,
        None => REG_AREA, // phi = a register/mux
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cayman_ir::instr::Operand;
    use cayman_ir::Type;

    fn bin(op: BinOp) -> Instr {
        Instr::Binary {
            op,
            ty: if op.is_float() { Type::F64 } else { Type::I64 },
            lhs: Operand::int(0),
            rhs: Operand::int(0),
        }
    }

    #[test]
    fn latency_ordering_is_sane() {
        assert!(accel_latency(&bin(BinOp::FDiv)) > accel_latency(&bin(BinOp::FMul)));
        assert!(accel_latency(&bin(BinOp::FMul)) > accel_latency(&bin(BinOp::FAdd)));
        assert!(accel_latency(&bin(BinOp::FAdd)) > accel_latency(&bin(BinOp::Add)));
        assert_eq!(
            accel_latency(&Instr::Phi {
                ty: Type::F64,
                incomings: vec![]
            }),
            0
        );
    }

    #[test]
    fn area_ordering_is_sane() {
        assert!(fu_area(FuClass::FDivSqrt) > fu_area(FuClass::FMul));
        assert!(fu_area(FuClass::FMul) > fu_area(FuClass::IntAlu));
        assert!(dedicated_area(&bin(BinOp::FMul)) > fu_area(FuClass::FMul));
    }

    #[test]
    fn fu_classification() {
        assert_eq!(fu_class(&bin(BinOp::Add)), Some(FuClass::IntAlu));
        assert_eq!(fu_class(&bin(BinOp::FMul)), Some(FuClass::FMul));
        assert_eq!(
            fu_class(&Instr::Phi {
                ty: Type::F64,
                incomings: vec![]
            }),
            None
        );
    }

    #[test]
    fn budgets_are_meaningful_fractions() {
        // A 25% budget should fit a handful of pipelined FP datapaths.
        let budget = 0.25 * CVA6_TILE_AREA;
        assert!(budget > 20.0 * fu_area(FuClass::FMul));
    }
}
