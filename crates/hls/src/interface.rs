//! Processor–accelerator data-access interfaces (§III-C, Fig. 3).
//!
//! Interfaces are described by an [`InterfaceSpec`]: a kind plus its
//! banking factor, buffering depth and port count, with per-spec
//! latency/area cost functions. Six kinds:
//!
//! * **coupled** — a plain load/store unit; the accelerator stalls for the
//!   full memory round-trip and all coupled accesses serialise on one port.
//! * **decoupled** — a dedicated address-generation unit (AGU) + FIFO per
//!   access; addresses are produced independently of the datapath, so loads
//!   complete ahead of use and stores drain behind. Only legal for *stream*
//!   accesses (the AGU must be able to compute the address sequence).
//! * **scratchpad** — a private buffer caching the access footprint, filled
//!   and drained by a DMA engine at region entry/exit; single-cycle access
//!   and partitionable for parallelism, at a prominent area cost.
//! * **banked scratchpad** — a scratchpad cyclically interleaved across
//!   `banks` independent SRAMs. Legal only when the analyzer proves every
//!   unrolled access stride conflict-free
//!   (`cayman_analysis::banking::bank_conflict_free`); buys `banks × 2`
//!   ports for a per-bank area overhead.
//! * **double-buffered scratchpad** — two copies of the buffer in
//!   ping-pong: the DMA fills one while compute reads the other, hiding the
//!   fill behind the previous entry's compute on all but the first entry.
//!   Twice the buffer area.
//! * **line buffer** — `rows - 1` row shift-registers plus a tap window for
//!   stencil loads; each iteration fetches one new element and re-reads the
//!   rest from the buffer. Legal only when the loads form a provable
//!   stencil window (`cayman_analysis::banking::stencil_window`). No DMA,
//!   no port contention, small area.

use crate::oplib;
use std::fmt;

/// Coupled-interface load latency (accelerator cycles): request, memory
/// round-trip, response.
pub const COUPLED_LOAD_LATENCY: u64 = 4;
/// Coupled-interface store latency (posted to the port).
pub const COUPLED_STORE_LATENCY: u64 = 1;
/// Decoupled-interface effective latency: data waits in the FIFO.
pub const DECOUPLED_LATENCY: u64 = 1;
/// Scratchpad access latency.
pub const SCRATCHPAD_LATENCY: u64 = 1;
/// Line-buffer tap latency: the window is held in registers.
pub const LINE_BUFFER_LATENCY: u64 = 1;

/// Area of the single shared coupled load/store unit.
pub const COUPLED_LSU_AREA: f64 = 1_500.0;
pub use crate::oplib::AGU_FIFO_AREA;
/// Area of the DMA engine (one per accelerator that uses scratchpads).
pub const DMA_AREA: f64 = 5_000.0;
/// Scratchpad SRAM area per byte.
pub const SPAD_BYTE_AREA: f64 = 5.0;
/// Extra banking overhead per additional scratchpad partition or bank
/// (fraction of the buffer area: decoders, bank muxes).
pub const SPAD_BANK_OVERHEAD: f64 = 0.10;
/// Scratchpad ports per partition (dual-ported SRAM).
pub const SPAD_PORTS_PER_PARTITION: u64 = 2;
/// DMA transfer bandwidth in bytes per accelerator cycle.
pub const DMA_BYTES_PER_CYCLE: f64 = 8.0;
/// Default scratchpad capacity cap in bytes.
pub const SPAD_MAX_BYTES: f64 = 32.0 * 1024.0;
/// Off-chip stream bandwidth in words per accelerator cycle, shared by all
/// decoupled FIFOs and line-buffer fill streams of one accelerator. A line
/// buffer pulls **one** new word per iteration however wide its tap window
/// is — which is exactly where it beats a bundle of decoupled streams.
pub const STREAM_WORDS_PER_CYCLE: u64 = 2;
/// Area of one line-buffer tap: window register + shift mux. Cheaper than
/// an AGU+FIFO — the address sequence is implicit in the shift.
pub const LINE_BUFFER_TAP_AREA: f64 = 400.0;

/// The species of interface assigned to one memory access operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum InterfaceKind {
    /// Stalling load/store unit.
    Coupled,
    /// AGU + FIFO stream interface.
    Decoupled,
    /// Private buffer + DMA (partitioned by the unroll heuristic).
    Scratchpad,
    /// Cyclically banked scratchpad (conflict-freedom proven).
    BankedScratchpad,
    /// Ping-pong double-buffered scratchpad (fill hidden behind compute).
    DoubleBuffered,
    /// Row shift-registers + tap window for stencil loads.
    LineBuffer,
}

impl fmt::Display for InterfaceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InterfaceKind::Coupled => "coupled",
            InterfaceKind::Decoupled => "decoupled",
            InterfaceKind::Scratchpad => "scratchpad",
            InterfaceKind::BankedScratchpad => "banked-scratchpad",
            InterfaceKind::DoubleBuffered => "double-buffered",
            InterfaceKind::LineBuffer => "linebuf",
        };
        f.write_str(s)
    }
}

impl InterfaceKind {
    /// Whether this kind caches data in a DMA-filled private buffer.
    pub fn is_scratchpad_family(self) -> bool {
        matches!(
            self,
            InterfaceKind::Scratchpad
                | InterfaceKind::BankedScratchpad
                | InterfaceKind::DoubleBuffered
        )
    }

    /// Datapath-visible latency of a load through this interface.
    pub fn load_latency(self) -> u64 {
        match self {
            InterfaceKind::Coupled => COUPLED_LOAD_LATENCY,
            InterfaceKind::Decoupled => DECOUPLED_LATENCY,
            InterfaceKind::LineBuffer => LINE_BUFFER_LATENCY,
            _ => SCRATCHPAD_LATENCY,
        }
    }

    /// Datapath-visible latency of a store through this interface.
    pub fn store_latency(self) -> u64 {
        match self {
            InterfaceKind::Coupled => COUPLED_STORE_LATENCY,
            InterfaceKind::Decoupled => DECOUPLED_LATENCY,
            InterfaceKind::LineBuffer => LINE_BUFFER_LATENCY,
            _ => SCRATCHPAD_LATENCY,
        }
    }

    /// Per-access interface area (buffers are charged separately per array;
    /// see [`crate::design`]).
    pub fn per_access_area(self) -> f64 {
        match self {
            InterfaceKind::Decoupled => AGU_FIFO_AREA,
            InterfaceKind::LineBuffer => LINE_BUFFER_TAP_AREA,
            _ => oplib::fu_area(oplib::FuClass::Mem),
        }
    }
}

/// A concrete interface configuration: kind plus banking factor, buffering
/// depth and port count. This is what designs carry per access, what the
/// scheduler prices, and what `FrontStore` fingerprints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InterfaceSpec {
    /// Interface species.
    pub kind: InterfaceKind,
    /// Banks (scratchpad family: partitions/banks; otherwise 1).
    pub banks: u16,
    /// Buffering depth: 2 for ping-pong double buffering, the window height
    /// (rows) for line buffers, 1 otherwise.
    pub depth: u16,
    /// Structural memory ports the interface exposes to the datapath.
    pub ports: u16,
}

impl InterfaceSpec {
    /// The stalling load/store-unit interface.
    pub fn coupled() -> Self {
        InterfaceSpec {
            kind: InterfaceKind::Coupled,
            banks: 1,
            depth: 1,
            ports: 1,
        }
    }

    /// The AGU + FIFO stream interface.
    pub fn decoupled() -> Self {
        InterfaceSpec {
            kind: InterfaceKind::Decoupled,
            banks: 1,
            depth: 1,
            ports: 1,
        }
    }

    /// A plain scratchpad with `parts` partitions (the legacy unroll-driven
    /// partitioning; `parts` is clamped to at least 1).
    pub fn scratchpad(parts: u32) -> Self {
        let parts = parts.max(1).min(u16::MAX as u32) as u16;
        InterfaceSpec {
            kind: InterfaceKind::Scratchpad,
            banks: parts,
            depth: 1,
            ports: saturating_ports(parts),
        }
    }

    /// A conflict-proven cyclically banked scratchpad.
    pub fn banked(banks: u32) -> Self {
        let banks = banks.max(1).min(u16::MAX as u32) as u16;
        InterfaceSpec {
            kind: InterfaceKind::BankedScratchpad,
            banks,
            depth: 1,
            ports: saturating_ports(banks),
        }
    }

    /// A ping-pong double-buffered scratchpad over `banks` banks.
    pub fn double_buffered(banks: u32) -> Self {
        let banks = banks.max(1).min(u16::MAX as u32) as u16;
        InterfaceSpec {
            kind: InterfaceKind::DoubleBuffered,
            banks,
            depth: 2,
            ports: saturating_ports(banks),
        }
    }

    /// A line buffer retaining a `rows`-high stencil window.
    pub fn line_buffer(rows: u32) -> Self {
        let rows = rows.max(2).min(u16::MAX as u32) as u16;
        InterfaceSpec {
            kind: InterfaceKind::LineBuffer,
            banks: 1,
            depth: rows,
            ports: rows,
        }
    }

    /// Datapath-visible latency of a load through this interface.
    pub fn load_latency(&self) -> u64 {
        self.kind.load_latency()
    }

    /// Datapath-visible latency of a store through this interface.
    pub fn store_latency(&self) -> u64 {
        self.kind.store_latency()
    }

    /// Per-access interface area (buffer storage is charged separately via
    /// [`InterfaceSpec::buffer_area`]).
    pub fn per_access_area(&self) -> f64 {
        self.kind.per_access_area()
    }

    /// Area of the private buffer holding `bytes` of footprint, including
    /// banking overhead and double-buffer duplication. Zero for interfaces
    /// without a buffer (coupled; decoupled's FIFO is in the per-access
    /// area).
    pub fn buffer_area(&self, bytes: f64) -> f64 {
        let banked =
            |b: f64| b * SPAD_BYTE_AREA * (1.0 + (self.banks as f64 - 1.0) * SPAD_BANK_OVERHEAD);
        match self.kind {
            InterfaceKind::Coupled | InterfaceKind::Decoupled => 0.0,
            InterfaceKind::Scratchpad | InterfaceKind::BankedScratchpad => banked(bytes),
            InterfaceKind::DoubleBuffered => 2.0 * banked(bytes),
            // rows-1 row shift registers; the tap window itself is in
            // per-access area.
            InterfaceKind::LineBuffer => bytes * SPAD_BYTE_AREA,
        }
    }

    /// Memory ports bounding concurrent same-array accesses in the
    /// scheduler, or `None` when the interface does not contend (streams:
    /// every decoupled access owns its FIFO, every line-buffer tap its
    /// register).
    pub fn mem_ports(&self) -> Option<u64> {
        match self.kind {
            InterfaceKind::Decoupled | InterfaceKind::LineBuffer => None,
            _ => Some(self.ports as u64),
        }
    }

    /// Whether region entry/exit must run DMA fill/drain for this
    /// interface.
    pub fn needs_dma(&self) -> bool {
        self.kind.is_scratchpad_family()
    }

    /// Parses the [`fmt::Display`] surface back into a spec:
    /// `coupled`, `decoupled`, `scratchpad`, `scratchpad[parts=2]`,
    /// `scratchpad[banks=4]`, `scratchpad[banks=4,dbl]`, `scratchpad[dbl]`,
    /// `linebuf[rows=3]`.
    pub fn parse(s: &str) -> Option<Self> {
        let s = s.trim();
        let (head, params) = match s.find('[') {
            Some(i) => {
                let rest = s[i + 1..].strip_suffix(']')?;
                (&s[..i], Some(rest))
            }
            None => (s, None),
        };
        let mut parts: Option<u32> = None;
        let mut banks: Option<u32> = None;
        let mut rows: Option<u32> = None;
        let mut dbl = false;
        if let Some(params) = params {
            for p in params.split(',') {
                let p = p.trim();
                if p == "dbl" {
                    dbl = true;
                } else if let Some(v) = p.strip_prefix("parts=") {
                    parts = Some(v.parse().ok()?);
                } else if let Some(v) = p.strip_prefix("banks=") {
                    banks = Some(v.parse().ok()?);
                } else if let Some(v) = p.strip_prefix("rows=") {
                    rows = Some(v.parse().ok()?);
                } else {
                    return None;
                }
            }
        }
        match head {
            "coupled" if params.is_none() => Some(InterfaceSpec::coupled()),
            "decoupled" if params.is_none() => Some(InterfaceSpec::decoupled()),
            "scratchpad" if rows.is_none() => match (parts, banks, dbl) {
                (None, None, false) => Some(InterfaceSpec::scratchpad(1)),
                (Some(p), None, false) => Some(InterfaceSpec::scratchpad(p)),
                (None, Some(b), false) => Some(InterfaceSpec::banked(b)),
                (None, b, true) => Some(InterfaceSpec::double_buffered(b.unwrap_or(1))),
                _ => None,
            },
            "linebuf" => match (parts, banks, rows, dbl) {
                (None, None, Some(r), false) if r >= 2 => Some(InterfaceSpec::line_buffer(r)),
                _ => None,
            },
            _ => None,
        }
    }
}

fn saturating_ports(banks: u16) -> u16 {
    u64::from(banks)
        .saturating_mul(SPAD_PORTS_PER_PARTITION)
        .min(u16::MAX as u64) as u16
}

impl fmt::Display for InterfaceSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            InterfaceKind::Coupled => f.write_str("coupled"),
            InterfaceKind::Decoupled => f.write_str("decoupled"),
            InterfaceKind::Scratchpad => {
                if self.banks > 1 {
                    write!(f, "scratchpad[parts={}]", self.banks)
                } else {
                    f.write_str("scratchpad")
                }
            }
            InterfaceKind::BankedScratchpad => write!(f, "scratchpad[banks={}]", self.banks),
            InterfaceKind::DoubleBuffered => {
                if self.banks > 1 {
                    write!(f, "scratchpad[banks={},dbl]", self.banks)
                } else {
                    f.write_str("scratchpad[dbl]")
                }
            }
            InterfaceKind::LineBuffer => write!(f, "linebuf[rows={}]", self.depth),
        }
    }
}

/// Options steering interface selection and configuration generation.
#[derive(Debug, Clone)]
pub struct ModelOptions {
    /// Scratchpad heuristic threshold β: use a scratchpad when the total
    /// access count is at least β × footprint (§III-C).
    pub beta: f64,
    /// Candidate unroll factors explored for eligible innermost loops.
    pub unroll_factors: Vec<u32>,
    /// Candidate duplication factors: parallel pipeline instances created by
    /// unrolling a dependence-free *outer* loop (§III-C "tries unrolling
    /// loops without loop-carried dependencies"). Spends area for speedup
    /// when the inner II is dependence-bound.
    pub duplication_factors: Vec<u32>,
    /// Restrict every access to the coupled interface (the paper's
    /// "coupled-only Cayman" ablation in Fig. 6).
    pub coupled_only: bool,
    /// Scratchpad capacity cap in bytes.
    pub spad_max_bytes: f64,
    /// Enumerate the extended interfaces (banked / double-buffered
    /// scratchpads, line buffers) in addition to the classic three. `false`
    /// reproduces the 3-kind baseline exactly.
    pub extended: bool,
    /// Candidate banking factors tried for conflict-proven banked
    /// scratchpads.
    pub bank_factors: Vec<u32>,
    /// Tallest stencil window a line buffer may retain.
    pub lb_max_rows: u32,
}

impl Default for ModelOptions {
    fn default() -> Self {
        ModelOptions {
            beta: 4.0,
            unroll_factors: vec![1, 2, 4, 8],
            duplication_factors: vec![1, 2, 4, 8, 16],
            coupled_only: false,
            spad_max_bytes: SPAD_MAX_BYTES,
            extended: true,
            bank_factors: vec![2, 4, 8],
            lb_max_rows: 8,
        }
    }
}

impl ModelOptions {
    /// The coupled-only ablation configuration.
    pub fn coupled_only() -> Self {
        ModelOptions {
            coupled_only: true,
            ..Default::default()
        }
    }

    /// The classic 3-kind interface model (coupled/decoupled/scratchpad
    /// only) — the baseline the extended model is ablated against.
    pub fn baseline3() -> Self {
        ModelOptions {
            extended: false,
            ..Default::default()
        }
    }

    /// A stable 64-bit fingerprint of this configuration, usable as (part
    /// of) a design-cache key. Two options with equal fingerprints generate
    /// identical designs for the same candidate.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash as _, Hasher as _};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.hash(&mut h);
        h.finish()
    }
}

// `ModelOptions` must be usable as a `HashMap` key for design memoisation.
// The `f64` fields are compared/hashed by bit pattern: configurations are
// constructed from literals, so bitwise identity is the right equivalence
// (and NaN never appears in a sane configuration).
impl PartialEq for ModelOptions {
    fn eq(&self, other: &Self) -> bool {
        self.beta.to_bits() == other.beta.to_bits()
            && self.unroll_factors == other.unroll_factors
            && self.duplication_factors == other.duplication_factors
            && self.coupled_only == other.coupled_only
            && self.spad_max_bytes.to_bits() == other.spad_max_bytes.to_bits()
            && self.extended == other.extended
            && self.bank_factors == other.bank_factors
            && self.lb_max_rows == other.lb_max_rows
    }
}

impl Eq for ModelOptions {}

impl std::hash::Hash for ModelOptions {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.beta.to_bits().hash(state);
        self.unroll_factors.hash(state);
        self.duplication_factors.hash(state);
        self.coupled_only.hash(state);
        self.spad_max_bytes.to_bits().hash(state);
        self.extended.hash(state);
        self.bank_factors.hash(state);
        self.lb_max_rows.hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_favor_specialised_interfaces() {
        assert!(InterfaceKind::Coupled.load_latency() > InterfaceKind::Decoupled.load_latency());
        assert_eq!(
            InterfaceKind::Scratchpad.load_latency(),
            InterfaceKind::Decoupled.load_latency()
        );
        assert_eq!(
            InterfaceSpec::line_buffer(3).load_latency(),
            LINE_BUFFER_LATENCY
        );
    }

    #[test]
    fn areas_favor_coupled() {
        assert!(
            InterfaceKind::Decoupled.per_access_area() > InterfaceKind::Coupled.per_access_area()
        );
        // A line-buffer tap undercuts a full AGU+FIFO.
        assert!(InterfaceKind::LineBuffer.per_access_area() < AGU_FIFO_AREA);
    }

    #[test]
    fn display_names() {
        assert_eq!(InterfaceKind::Coupled.to_string(), "coupled");
        assert_eq!(InterfaceKind::Decoupled.to_string(), "decoupled");
        assert_eq!(InterfaceKind::Scratchpad.to_string(), "scratchpad");
    }

    #[test]
    fn spec_display_parse_roundtrip() {
        let specs = [
            InterfaceSpec::coupled(),
            InterfaceSpec::decoupled(),
            InterfaceSpec::scratchpad(1),
            InterfaceSpec::scratchpad(4),
            InterfaceSpec::banked(2),
            InterfaceSpec::banked(8),
            InterfaceSpec::double_buffered(1),
            InterfaceSpec::double_buffered(4),
            InterfaceSpec::line_buffer(3),
            InterfaceSpec::line_buffer(5),
        ];
        for s in specs {
            let text = s.to_string();
            let back = InterfaceSpec::parse(&text)
                .unwrap_or_else(|| panic!("`{text}` failed to parse back"));
            assert_eq!(s, back, "roundtrip through `{text}`");
        }
    }

    #[test]
    fn parse_named_forms() {
        assert_eq!(
            InterfaceSpec::parse("scratchpad[banks=4,dbl]"),
            Some(InterfaceSpec::double_buffered(4))
        );
        assert_eq!(
            InterfaceSpec::parse(" scratchpad[dbl] "),
            Some(InterfaceSpec::double_buffered(1))
        );
        assert_eq!(
            InterfaceSpec::parse("linebuf[rows=3]"),
            Some(InterfaceSpec::line_buffer(3))
        );
        assert_eq!(
            InterfaceSpec::parse("scratchpad[banks=4]"),
            Some(InterfaceSpec::banked(4))
        );
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "",
            "coupledd",
            "coupled[banks=2]",
            "scratchpad[banks=4,parts=2]",
            "scratchpad[rows=3]",
            "scratchpad[banks=x]",
            "linebuf",
            "linebuf[rows=1]",
            "linebuf[rows=3,dbl]",
            "linebuf[rows=3",
        ] {
            assert_eq!(InterfaceSpec::parse(bad), None, "`{bad}` should not parse");
        }
    }

    #[test]
    fn cost_functions_follow_the_descriptor() {
        // More banks: same bytes cost more area but expose more ports.
        let plain = InterfaceSpec::scratchpad(1);
        let banked = InterfaceSpec::banked(4);
        assert!(banked.buffer_area(1024.0) > plain.buffer_area(1024.0));
        assert!(banked.mem_ports().unwrap() > plain.mem_ports().unwrap());
        // Double buffering doubles the banked buffer area.
        let dbl = InterfaceSpec::double_buffered(4);
        assert_eq!(dbl.buffer_area(1024.0), 2.0 * banked.buffer_area(1024.0));
        // Streams do not contend on ports and need no DMA.
        assert_eq!(InterfaceSpec::decoupled().mem_ports(), None);
        assert_eq!(InterfaceSpec::line_buffer(3).mem_ports(), None);
        assert!(!InterfaceSpec::line_buffer(3).needs_dma());
        assert!(dbl.needs_dma());
        // Coupled buffers nothing.
        assert_eq!(InterfaceSpec::coupled().buffer_area(1024.0), 0.0);
    }

    #[test]
    fn default_options() {
        let o = ModelOptions::default();
        assert_eq!(o.beta, 4.0);
        assert!(!o.coupled_only);
        assert!(o.extended);
        assert!(ModelOptions::coupled_only().coupled_only);
        assert!(!ModelOptions::baseline3().extended);
    }

    #[test]
    fn options_hash_and_eq_follow_configuration() {
        let a = ModelOptions::default();
        let b = ModelOptions::default();
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = ModelOptions::coupled_only();
        assert_ne!(a, c);
        assert_ne!(a.fingerprint(), c.fingerprint());
        let d = ModelOptions {
            beta: 8.0,
            ..Default::default()
        };
        assert_ne!(a, d);
        assert_ne!(a.fingerprint(), d.fingerprint());
        // The extended-model dimension is part of the key: baseline and
        // extended fronts must never share design-cache entries.
        let e = ModelOptions::baseline3();
        assert_ne!(a, e);
        assert_ne!(a.fingerprint(), e.fingerprint());
    }
}
