//! Processor–accelerator data-access interfaces (§III-C, Fig. 3).
//!
//! Three interface species with distinct latency/area/legality trade-offs:
//!
//! * **coupled** — a plain load/store unit; the accelerator stalls for the
//!   full memory round-trip and all coupled accesses serialise on one port.
//! * **decoupled** — a dedicated address-generation unit (AGU) + FIFO per
//!   access; addresses are produced independently of the datapath, so loads
//!   complete ahead of use and stores drain behind. Only legal for *stream*
//!   accesses (the AGU must be able to compute the address sequence).
//! * **scratchpad** — a private buffer caching the access footprint, filled
//!   and drained by a DMA engine at region entry/exit; single-cycle access
//!   and bankable for parallelism, at a prominent area cost.

use crate::oplib;
use std::fmt;

/// Coupled-interface load latency (accelerator cycles): request, memory
/// round-trip, response.
pub const COUPLED_LOAD_LATENCY: u64 = 4;
/// Coupled-interface store latency (posted to the port).
pub const COUPLED_STORE_LATENCY: u64 = 1;
/// Decoupled-interface effective latency: data waits in the FIFO.
pub const DECOUPLED_LATENCY: u64 = 1;
/// Scratchpad access latency.
pub const SCRATCHPAD_LATENCY: u64 = 1;

/// Area of the single shared coupled load/store unit.
pub const COUPLED_LSU_AREA: f64 = 1_500.0;
pub use crate::oplib::AGU_FIFO_AREA;
/// Area of the DMA engine (one per accelerator that uses scratchpads).
pub const DMA_AREA: f64 = 5_000.0;
/// Scratchpad SRAM area per byte.
pub const SPAD_BYTE_AREA: f64 = 5.0;
/// Extra banking overhead per additional scratchpad partition (fraction of
/// the buffer area).
pub const SPAD_BANK_OVERHEAD: f64 = 0.10;
/// Scratchpad ports per partition (dual-ported SRAM).
pub const SPAD_PORTS_PER_PARTITION: u64 = 2;
/// DMA transfer bandwidth in bytes per accelerator cycle.
pub const DMA_BYTES_PER_CYCLE: f64 = 8.0;
/// Default scratchpad capacity cap in bytes.
pub const SPAD_MAX_BYTES: f64 = 32.0 * 1024.0;

/// The interface assigned to one memory access operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum InterfaceKind {
    /// Stalling load/store unit.
    Coupled,
    /// AGU + FIFO stream interface.
    Decoupled,
    /// Private buffer + DMA.
    Scratchpad,
}

impl fmt::Display for InterfaceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InterfaceKind::Coupled => "coupled",
            InterfaceKind::Decoupled => "decoupled",
            InterfaceKind::Scratchpad => "scratchpad",
        };
        f.write_str(s)
    }
}

impl InterfaceKind {
    /// Datapath-visible latency of a load through this interface.
    pub fn load_latency(self) -> u64 {
        match self {
            InterfaceKind::Coupled => COUPLED_LOAD_LATENCY,
            InterfaceKind::Decoupled => DECOUPLED_LATENCY,
            InterfaceKind::Scratchpad => SCRATCHPAD_LATENCY,
        }
    }

    /// Datapath-visible latency of a store through this interface.
    pub fn store_latency(self) -> u64 {
        match self {
            InterfaceKind::Coupled => COUPLED_STORE_LATENCY,
            InterfaceKind::Decoupled => DECOUPLED_LATENCY,
            InterfaceKind::Scratchpad => SCRATCHPAD_LATENCY,
        }
    }

    /// Per-access interface area (buffers are charged separately per array;
    /// see [`crate::design`]).
    pub fn per_access_area(self) -> f64 {
        match self {
            InterfaceKind::Coupled => oplib::fu_area(oplib::FuClass::Mem),
            InterfaceKind::Decoupled => AGU_FIFO_AREA,
            InterfaceKind::Scratchpad => oplib::fu_area(oplib::FuClass::Mem),
        }
    }
}

/// Options steering interface selection and configuration generation.
#[derive(Debug, Clone)]
pub struct ModelOptions {
    /// Scratchpad heuristic threshold β: use a scratchpad when the total
    /// access count is at least β × footprint (§III-C).
    pub beta: f64,
    /// Candidate unroll factors explored for eligible innermost loops.
    pub unroll_factors: Vec<u32>,
    /// Candidate duplication factors: parallel pipeline instances created by
    /// unrolling a dependence-free *outer* loop (§III-C "tries unrolling
    /// loops without loop-carried dependencies"). Spends area for speedup
    /// when the inner II is dependence-bound.
    pub duplication_factors: Vec<u32>,
    /// Restrict every access to the coupled interface (the paper's
    /// "coupled-only Cayman" ablation in Fig. 6).
    pub coupled_only: bool,
    /// Scratchpad capacity cap in bytes.
    pub spad_max_bytes: f64,
}

impl Default for ModelOptions {
    fn default() -> Self {
        ModelOptions {
            beta: 4.0,
            unroll_factors: vec![1, 2, 4, 8],
            duplication_factors: vec![1, 2, 4, 8, 16],
            coupled_only: false,
            spad_max_bytes: SPAD_MAX_BYTES,
        }
    }
}

impl ModelOptions {
    /// The coupled-only ablation configuration.
    pub fn coupled_only() -> Self {
        ModelOptions {
            coupled_only: true,
            ..Default::default()
        }
    }

    /// A stable 64-bit fingerprint of this configuration, usable as (part
    /// of) a design-cache key. Two options with equal fingerprints generate
    /// identical designs for the same candidate.
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash as _, Hasher as _};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.hash(&mut h);
        h.finish()
    }
}

// `ModelOptions` must be usable as a `HashMap` key for design memoisation.
// The `f64` fields are compared/hashed by bit pattern: configurations are
// constructed from literals, so bitwise identity is the right equivalence
// (and NaN never appears in a sane configuration).
impl PartialEq for ModelOptions {
    fn eq(&self, other: &Self) -> bool {
        self.beta.to_bits() == other.beta.to_bits()
            && self.unroll_factors == other.unroll_factors
            && self.duplication_factors == other.duplication_factors
            && self.coupled_only == other.coupled_only
            && self.spad_max_bytes.to_bits() == other.spad_max_bytes.to_bits()
    }
}

impl Eq for ModelOptions {}

impl std::hash::Hash for ModelOptions {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.beta.to_bits().hash(state);
        self.unroll_factors.hash(state);
        self.duplication_factors.hash(state);
        self.coupled_only.hash(state);
        self.spad_max_bytes.to_bits().hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_favor_specialised_interfaces() {
        assert!(InterfaceKind::Coupled.load_latency() > InterfaceKind::Decoupled.load_latency());
        assert_eq!(
            InterfaceKind::Scratchpad.load_latency(),
            InterfaceKind::Decoupled.load_latency()
        );
    }

    #[test]
    fn areas_favor_coupled() {
        assert!(
            InterfaceKind::Decoupled.per_access_area() > InterfaceKind::Coupled.per_access_area()
        );
    }

    #[test]
    fn display_names() {
        assert_eq!(InterfaceKind::Coupled.to_string(), "coupled");
        assert_eq!(InterfaceKind::Decoupled.to_string(), "decoupled");
        assert_eq!(InterfaceKind::Scratchpad.to_string(), "scratchpad");
    }

    #[test]
    fn default_options() {
        let o = ModelOptions::default();
        assert_eq!(o.beta, 4.0);
        assert!(!o.coupled_only);
        assert!(ModelOptions::coupled_only().coupled_only);
    }

    #[test]
    fn options_hash_and_eq_follow_configuration() {
        let a = ModelOptions::default();
        let b = ModelOptions::default();
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = ModelOptions::coupled_only();
        assert_ne!(a, c);
        assert_ne!(a.fingerprint(), c.fingerprint());
        let d = ModelOptions {
            beta: 8.0,
            ..Default::default()
        };
        assert_ne!(a, d);
        assert_ne!(a.fingerprint(), d.fingerprint());
    }
}
