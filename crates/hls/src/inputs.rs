//! Input bundle handed to the accelerator model for one function, plus the
//! candidate descriptor.
//!
//! The driver (the `cayman` facade crate) computes analysis + profiling once
//! per function and the model consumes these read-only views.

use cayman_analysis::access::AccessAnalysis;
use cayman_analysis::ctx::FuncCtx;
use cayman_analysis::memdep::LoopDeps;
use cayman_ir::loops::LoopId;
use cayman_ir::{BlockId, FuncId, Function, Module};

/// Everything the model needs to know about one function.
#[derive(Debug)]
pub struct FuncInputs<'a> {
    /// The whole module (for array declarations).
    pub module: &'a Module,
    /// The function id.
    pub func_id: FuncId,
    /// CFG/dominator/loop analyses.
    pub ctx: &'a FuncCtx,
    /// Memory-access analysis.
    pub accesses: &'a AccessAnalysis,
    /// Loop-carried dependence analysis, indexed by `LoopId`.
    pub deps: &'a [LoopDeps],
    /// Trip count per loop (static when available, else profiled average),
    /// indexed by `LoopId`. Borrowed from the analysis store so repeated
    /// (incremental) selections never re-allocate per-function profile
    /// vectors.
    pub trips: &'a [f64],
    /// Profiled dynamic execution count per block, indexed by `BlockId`.
    /// Borrowed like `trips`.
    pub block_counts: &'a [u64],
    /// Content fingerprint of the (normalized) function, from
    /// [`cayman_ir::fingerprint_function`]. Part of [`CandidateKey`]: it
    /// ties cached designs to the function body they were modelled against,
    /// which is what lets one `DesignCache` be shared soundly across edits
    /// of the same application.
    pub content_fp: u64,
}

impl<'a> FuncInputs<'a> {
    /// The function itself.
    pub fn func(&self) -> &'a Function {
        self.module.function(self.func_id)
    }

    /// Trip count of a loop.
    pub fn trip(&self, l: LoopId) -> f64 {
        self.trips[l.index()]
    }

    /// Profiled execution count of a block.
    pub fn count(&self, b: BlockId) -> u64 {
        self.block_counts[b.index()]
    }
}

/// One acceleration candidate: a SESE region plus its profile.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Containing function.
    pub func: FuncId,
    /// Blocks spanned by the region.
    pub blocks: Vec<BlockId>,
    /// Profiled entries of the region.
    pub entries: u64,
    /// Profiled CPU cycles spent inside the region over the whole run
    /// (`T_cand · F_cpu`).
    pub cpu_cycles: u64,
    /// Whether the candidate is a single basic block (*bb* region).
    pub is_bb: bool,
    /// Content fingerprint of the containing (normalized) function — see
    /// [`FuncInputs::content_fp`].
    pub content_fp: u64,
}

/// A hashable identity for a [`Candidate`]: everything the accelerator
/// models read from the candidate itself, plus the content fingerprint of
/// the function the candidate lives in. Two candidates with equal keys
/// yield identical design vectors for the same model, because the model
/// only ever reads the candidate and its function's analyses — and the
/// fingerprint pins the function body, so a design cache keyed by this
/// stays sound even when the module is edited between selections.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CandidateKey {
    /// Containing function.
    pub func: FuncId,
    /// Content fingerprint of the containing (normalized) function.
    pub content_fp: u64,
    /// Blocks spanned by the region (region block order is deterministic).
    pub blocks: Vec<BlockId>,
    /// Profiled entries.
    pub entries: u64,
    /// Profiled CPU cycles.
    pub cpu_cycles: u64,
    /// Single-basic-block region flag.
    pub is_bb: bool,
}

impl Candidate {
    /// This candidate's cache key.
    pub fn key(&self) -> CandidateKey {
        CandidateKey {
            func: self.func,
            content_fp: self.content_fp,
            blocks: self.blocks.clone(),
            entries: self.entries,
            cpu_cycles: self.cpu_cycles,
            is_bb: self.is_bb,
        }
    }

    /// Loops entirely contained in the candidate.
    pub fn loops_within(&self, ctx: &FuncCtx) -> Vec<LoopId> {
        ctx.forest
            .ids()
            .filter(|&l| {
                ctx.forest
                    .get(l)
                    .blocks
                    .iter()
                    .all(|b| self.blocks.contains(b))
            })
            .collect()
    }

    /// Innermost loops among [`loops_within`](Candidate::loops_within).
    pub fn innermost_loops(&self, ctx: &FuncCtx) -> Vec<LoopId> {
        let within = self.loops_within(ctx);
        within
            .iter()
            .copied()
            .filter(|&l| {
                ctx.forest
                    .get(l)
                    .children
                    .iter()
                    .all(|c| !within.contains(c))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cayman_ir::builder::ModuleBuilder;
    use cayman_ir::Type;

    #[test]
    fn candidate_loop_queries() {
        let mut mb = ModuleBuilder::new("t");
        let a = mb.array("A", Type::F64, &[4, 4]);
        mb.function("f", &[], None, |fb| {
            fb.counted_loop(0, 4, 1, |fb, i| {
                fb.counted_loop(0, 4, 1, |fb, j| {
                    let v = fb.load_idx(a, &[i, j]);
                    fb.store_idx(a, &[i, j], v);
                });
            });
            fb.ret(None);
        });
        let m = mb.finish();
        let f = m.function(FuncId(0));
        let ctx = FuncCtx::compute(f);
        // candidate = the outer loop region (all loop blocks)
        let outer = ctx
            .forest
            .ids()
            .find(|&l| ctx.forest.get(l).depth == 1)
            .expect("outer");
        let cand = Candidate {
            func: FuncId(0),
            blocks: ctx.forest.get(outer).blocks.clone(),
            entries: 1,
            cpu_cycles: 1000,
            is_bb: false,
            content_fp: cayman_ir::fingerprint_function(f),
        };
        assert_eq!(cand.loops_within(&ctx).len(), 2);
        let inner = cand.innermost_loops(&ctx);
        assert_eq!(inner.len(), 1);
        assert_eq!(ctx.forest.get(inner[0]).depth, 2);

        // candidate = only the inner loop
        let cand2 = Candidate {
            func: FuncId(0),
            blocks: ctx.forest.get(inner[0]).blocks.clone(),
            entries: 4,
            cpu_cycles: 800,
            is_bb: false,
            content_fp: cayman_ir::fingerprint_function(f),
        };
        assert_eq!(cand2.loops_within(&ctx).len(), 1);
        assert_eq!(cand2.innermost_loops(&ctx).len(), 1);
    }
}
