//! ASAP list scheduling with interface-aware latencies and port constraints.
//!
//! This is the reproduction's stand-in for an HLS scheduler: given a set of
//! instructions (one basic block, or a whole pipelined loop body), it
//! computes the critical-path schedule length under
//!
//! * per-operation latencies from [`crate::oplib`],
//! * interface-specific memory latencies (§III-C: the scheduler "considers
//!   diverse interface-specific latencies ... when scheduling data access
//!   operations"),
//! * memory-ordering edges (stores serialise against other accesses to the
//!   same array),
//! * memory-port capacity (coupled accesses share one LSU port; each
//!   buffered array exposes the ports its [`InterfaceSpec`] declares —
//!   `banks × 2` for scratchpads — while stream interfaces (decoupled,
//!   line buffer) never contend).

use crate::interface::{InterfaceKind, InterfaceSpec};
use crate::oplib;
use cayman_ir::instr::{Instr, Operand};
use cayman_ir::module::ValueDef;
use cayman_ir::{Function, InstrId};
use std::collections::HashMap;

/// Interface assignment lookup used by the scheduler.
pub type IfaceOf<'a> = dyn Fn(InstrId) -> Option<InterfaceSpec> + 'a;

/// Outcome of scheduling one instruction set.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Critical-path length in cycles (data + ordering edges only).
    pub critical_path: u64,
    /// Port-constrained schedule length (≥ critical path).
    pub length: u64,
    /// Start cycle per instruction (ASAP).
    pub start: HashMap<InstrId, u64>,
}

/// Latency of one instruction given its interface assignment.
pub fn latency_with_iface(func: &Function, iid: InstrId, iface: &IfaceOf<'_>) -> u64 {
    match func.instr(iid) {
        Instr::Load { .. } => iface(iid)
            .unwrap_or_else(InterfaceSpec::coupled)
            .load_latency(),
        Instr::Store { .. } => iface(iid)
            .unwrap_or_else(InterfaceSpec::coupled)
            .store_latency(),
        other => oplib::accel_latency(other),
    }
}

/// ASAP-schedules `instrs` (in program order) and returns the schedule.
///
/// `coupled_ports` is the size of the shared LSU port pool (normally 1).
/// With `bound_mem_ports`, buffered (scratchpad-family) accesses are
/// additionally bounded per array by the ports their [`InterfaceSpec`]
/// exposes; pipelined loop bodies pass `false` because the II model prices
/// port contention itself (`resMII`).
pub fn asap_schedule(
    func: &Function,
    instrs: &[InstrId],
    iface: &IfaceOf<'_>,
    coupled_ports: u64,
    bound_mem_ports: bool,
) -> Schedule {
    let in_set: HashMap<InstrId, usize> = instrs.iter().enumerate().map(|(i, &x)| (x, i)).collect();

    // Map producing instruction per value for def-use edges.
    let producer = |op: Operand| -> Option<InstrId> {
        let v = op.as_value()?;
        match func.values[v.index()] {
            ValueDef::Instr(i) if in_set.contains_key(&i) => Some(i),
            _ => None,
        }
    };

    let mut start: HashMap<InstrId, u64> = HashMap::new();
    // Last store / accesses per array for ordering edges.
    let mut last_store: HashMap<u32, InstrId> = HashMap::new();
    let mut accesses_since_store: HashMap<u32, Vec<InstrId>> = HashMap::new();

    let mut critical_path = 0u64;
    for &iid in instrs {
        let instr = func.instr(iid);
        let mut ready = 0u64;
        instr.for_each_operand(|op| {
            if let Some(p) = producer(op) {
                // Phis feed back across iterations; treated as available at 0
                // (loop-carried constraints are handled by recMII).
                if matches!(func.instr(p), Instr::Phi { .. }) {
                    return;
                }
                let p_end =
                    start.get(&p).copied().unwrap_or(0) + latency_with_iface(func, p, iface);
                ready = ready.max(p_end);
            }
        });

        // Memory ordering.
        if let Instr::Load { .. } | Instr::Store { .. } = instr {
            if let Some(arr) = access_array(func, iid) {
                if let Some(&st) = last_store.get(&arr) {
                    let st_end =
                        start.get(&st).copied().unwrap_or(0) + latency_with_iface(func, st, iface);
                    ready = ready.max(st_end);
                }
                if matches!(instr, Instr::Store { .. }) {
                    // Stores also wait for earlier loads of the same array.
                    for &a in accesses_since_store.get(&arr).into_iter().flatten() {
                        let a_end = start.get(&a).copied().unwrap_or(0)
                            + latency_with_iface(func, a, iface);
                        ready = ready.max(a_end);
                    }
                    last_store.insert(arr, iid);
                    accesses_since_store.remove(&arr);
                } else {
                    accesses_since_store.entry(arr).or_default().push(iid);
                }
            }
        }

        start.insert(iid, ready);
        critical_path = critical_path.max(ready + latency_with_iface(func, iid, iface));
    }

    // Port-constrained lower bounds: one shared pool for coupled accesses,
    // and per-array bounds for buffered interfaces (every array's buffer
    // has its own ports, so arrays do not contend with each other).
    let mut coupled_uses = 0u64;
    let mut per_array: HashMap<u32, (u64, u64)> = HashMap::new(); // (uses, ports)
    for &iid in instrs {
        if matches!(func.instr(iid), Instr::Load { .. } | Instr::Store { .. }) {
            let spec = iface(iid).unwrap_or_else(InterfaceSpec::coupled);
            match spec.kind {
                InterfaceKind::Coupled => coupled_uses += 1,
                _ => {
                    if let Some(p) = spec.mem_ports() {
                        let arr = access_array(func, iid).unwrap_or(u32::MAX);
                        let e = per_array.entry(arr).or_insert((0, 0));
                        e.0 += 1;
                        e.1 = e.1.max(p);
                    }
                }
            }
        }
    }
    let mut length = critical_path.max(1);
    if coupled_ports > 0 {
        length = length.max(coupled_uses.div_ceil(coupled_ports));
    }
    if bound_mem_ports {
        for &(uses, ports) in per_array.values() {
            if ports > 0 {
                length = length.max(uses.div_ceil(ports));
            }
        }
    }

    Schedule {
        critical_path: critical_path.max(1),
        length,
        start,
    }
}

/// Critical-path length of `instrs` (program order) under an arbitrary
/// per-instruction latency function, with the same def-use and
/// memory-ordering edges as [`asap_schedule`]. Used by the baseline models
/// (e.g. QsCores' scan-chain latencies) which are not expressible as
/// [`InterfaceKind`]s.
pub fn critical_path_with(
    func: &Function,
    instrs: &[InstrId],
    latency: &dyn Fn(InstrId) -> u64,
) -> u64 {
    let in_set: HashMap<InstrId, usize> = instrs.iter().enumerate().map(|(i, &x)| (x, i)).collect();
    let producer = |op: Operand| -> Option<InstrId> {
        let v = op.as_value()?;
        match func.values[v.index()] {
            ValueDef::Instr(i) if in_set.contains_key(&i) => Some(i),
            _ => None,
        }
    };
    let mut start: HashMap<InstrId, u64> = HashMap::new();
    let mut last_store: HashMap<u32, InstrId> = HashMap::new();
    let mut accesses_since_store: HashMap<u32, Vec<InstrId>> = HashMap::new();
    let mut cp = 0u64;
    for &iid in instrs {
        let instr = func.instr(iid);
        let mut ready = 0u64;
        instr.for_each_operand(|op| {
            if let Some(p) = producer(op) {
                if matches!(func.instr(p), Instr::Phi { .. }) {
                    return;
                }
                ready = ready.max(start.get(&p).copied().unwrap_or(0) + latency(p));
            }
        });
        if let Instr::Load { .. } | Instr::Store { .. } = instr {
            if let Some(arr) = access_array(func, iid) {
                if let Some(&st) = last_store.get(&arr) {
                    ready = ready.max(start.get(&st).copied().unwrap_or(0) + latency(st));
                }
                if matches!(instr, Instr::Store { .. }) {
                    for &a in accesses_since_store.get(&arr).into_iter().flatten() {
                        ready = ready.max(start.get(&a).copied().unwrap_or(0) + latency(a));
                    }
                    last_store.insert(arr, iid);
                    accesses_since_store.remove(&arr);
                } else {
                    accesses_since_store.entry(arr).or_default().push(iid);
                }
            }
        }
        start.insert(iid, ready);
        cp = cp.max(ready + latency(iid));
    }
    cp.max(1)
}

/// The array accessed by a load/store (via its gep), as a raw id.
pub fn access_array(func: &Function, iid: InstrId) -> Option<u32> {
    let ptr = match func.instr(iid) {
        Instr::Load { ptr, .. } => *ptr,
        Instr::Store { ptr, .. } => *ptr,
        _ => return None,
    };
    let v = ptr.as_value()?;
    match func.values[v.index()] {
        ValueDef::Instr(g) => match func.instr(g) {
            Instr::Gep { array, .. } => Some(array.0),
            _ => None,
        },
        _ => None,
    }
}

/// Schedules all instructions of one basic block.
pub fn schedule_block(
    func: &Function,
    b: cayman_ir::BlockId,
    iface: &IfaceOf<'_>,
    coupled_ports: u64,
) -> Schedule {
    asap_schedule(func, &func.block(b).instrs, iface, coupled_ports, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cayman_ir::builder::ModuleBuilder;
    use cayman_ir::{FuncId, Type};

    fn coupled(_: InstrId) -> Option<InterfaceSpec> {
        Some(InterfaceSpec::coupled())
    }
    fn decoupled(_: InstrId) -> Option<InterfaceSpec> {
        Some(InterfaceSpec::decoupled())
    }

    /// Builds `y[i] = k*x[i]+b` body and returns (module, body block).
    fn saxpy_body() -> (cayman_ir::Module, cayman_ir::BlockId) {
        let mut mb = ModuleBuilder::new("t");
        let x = mb.array("x", Type::F64, &[8]);
        let y = mb.array("y", Type::F64, &[8]);
        mb.function("f", &[], None, |fb| {
            fb.counted_loop(0, 8, 1, |fb, i| {
                let xv = fb.load_idx(x, &[i]);
                let k = fb.fconst(3.0);
                let c = fb.fconst(1.0);
                let t = fb.fmul(k, xv);
                let v = fb.fadd(t, c);
                fb.store_idx(y, &[i], v);
            });
            fb.ret(None);
        });
        (mb.finish(), cayman_ir::BlockId(2))
    }

    #[test]
    fn decoupled_shortens_critical_path() {
        let (m, body) = saxpy_body();
        let f = m.function(FuncId(0));
        let s_coupled = schedule_block(f, body, &coupled, 1);
        let s_dec = schedule_block(f, body, &decoupled, 1);
        // gep(1) + load(4 vs 1) + fmul(4) + fadd(3) + gep+store(1)
        assert!(
            s_dec.critical_path + 3 == s_coupled.critical_path,
            "coupled {} vs decoupled {}",
            s_coupled.critical_path,
            s_dec.critical_path
        );
        assert!(s_dec.length < s_coupled.length);
    }

    #[test]
    fn port_bound_kicks_in() {
        // Eight independent coupled loads on one port need ≥ 8 cycles even
        // though each is latency 4 in parallel.
        let mut mb = ModuleBuilder::new("t");
        let x = mb.array("x", Type::F64, &[8]);
        let y = mb.array("y", Type::F64, &[8]);
        mb.function("f", &[], None, |fb| {
            let mut acc = fb.fconst(0.0);
            for i in 0..8 {
                let idx = fb.iconst(i);
                let v = fb.load_idx(x, &[idx]);
                acc = fb.fadd(acc, v);
            }
            let z = fb.iconst(0);
            fb.store_idx(y, &[z], acc);
            fb.ret(None);
        });
        let m = mb.finish();
        let f = m.function(FuncId(0));
        let s = schedule_block(f, cayman_ir::BlockId(0), &coupled, 1);
        assert!(s.length >= 9, "8 loads + 1 store on one port: {}", s.length);
    }

    #[test]
    fn store_orders_after_load_same_array() {
        let mut mb = ModuleBuilder::new("t");
        let x = mb.array("x", Type::F64, &[8]);
        mb.function("f", &[], None, |fb| {
            let i0 = fb.iconst(0);
            let i1 = fb.iconst(1);
            let v = fb.load_idx(x, &[i0]);
            fb.store_idx(x, &[i1], v);
            fb.ret(None);
        });
        let m = mb.finish();
        let f = m.function(FuncId(0));
        let s = schedule_block(f, cayman_ir::BlockId(0), &coupled, 1);
        // load at ≥1 (after gep), store only after load completes (4 cycles).
        let block = &f.block(cayman_ir::BlockId(0)).instrs;
        let load = block[1];
        let store = block[3];
        assert!(s.start[&store] >= s.start[&load] + 4);
    }

    #[test]
    fn empty_block_has_unit_length() {
        let mut mb = ModuleBuilder::new("t");
        mb.function("f", &[], None, |fb| fb.ret(None));
        let m = mb.finish();
        let f = m.function(FuncId(0));
        let s = schedule_block(f, cayman_ir::BlockId(0), &coupled, 1);
        assert_eq!(s.length, 1);
    }
}
