//! Property-based tests of the accelerator model: for arbitrary rectangular
//! streaming kernels, generated designs must satisfy the invariants the
//! selection DP assumes.

use cayman_analysis::access::AccessAnalysis;
use cayman_analysis::ctx::FuncCtx;
use cayman_analysis::memdep::{analyse_loop_deps, LoopDeps};
use cayman_analysis::scev::Scev;
use cayman_hls::design::generate_designs;
use cayman_hls::inputs::{Candidate, FuncInputs};
use cayman_hls::interface::{InterfaceKind, ModelOptions};
use cayman_ir::builder::ModuleBuilder;
use cayman_ir::interp::Interp;
use cayman_ir::{FuncId, Module, Type};
use cayman_testkit::{prop_assert, prop_assert_eq, prop_check};

/// Modelling a kernel end-to-end is much heavier than a pure-math property,
/// so these suites run fewer cases (matching the old proptest config).
const CASES: u64 = 48;

struct Owned {
    module: Module,
    ctx: FuncCtx,
    accesses: AccessAnalysis,
    deps: Vec<LoopDeps>,
    counts: Vec<u64>,
    total: u64,
    trips: Vec<f64>,
}

/// A parameterised 2-level kernel: outer `n`, inner `m`, with either an
/// element-wise body or a reduction body.
fn build(n: i64, m: i64, reduction: bool) -> Owned {
    let mut mb = ModuleBuilder::new("prop");
    let a = mb.array("A", Type::F64, &[n as usize, m as usize]);
    let out = mb.array("out", Type::F64, &[n as usize, m as usize]);
    let red = mb.array("red", Type::F64, &[n as usize]);
    mb.function("main", &[], None, move |fb| {
        fb.counted_loop(0, n, 1, move |fb, i| {
            if reduction {
                let zero = fb.fconst(0.0);
                let acc = fb.counted_loop_carry(0, m, 1, &[(Type::F64, zero)], |fb, j, c| {
                    let v = fb.load_idx(a, &[i, j]);
                    let p = fb.fmul(v, v);
                    vec![fb.fadd(c[0], p)]
                });
                fb.store_idx(red, &[i], acc[0]);
            } else {
                fb.counted_loop(0, m, 1, |fb, j| {
                    let v = fb.load_idx(a, &[i, j]);
                    let w = fb.fmul(v, fb.fconst(2.0));
                    fb.store_idx(out, &[i, j], w);
                });
            }
        });
        fb.ret(None);
    });
    let module = mb.finish();
    module.verify().expect("verifies");
    let exec = Interp::new(&module).run(&[]).expect("runs");
    let f = module.function(FuncId(0));
    let ctx = FuncCtx::compute(f);
    let mut scev = Scev::new(f, &ctx);
    let accesses = AccessAnalysis::run(&module, f, &ctx, &mut scev);
    let deps = analyse_loop_deps(f, &ctx, &mut scev, &accesses);
    let trips: Vec<f64> = ctx
        .forest
        .ids()
        .map(|l| {
            cayman_analysis::access::static_trip_count(f, &ctx, l)
                .map(|t| t as f64)
                .unwrap_or(1.0)
        })
        .collect();
    Owned {
        ctx,
        accesses,
        deps,
        counts: exec.block_counts[0].clone(),
        total: exec.total_cycles,
        trips,
        module,
    }
}

fn candidate(o: &Owned) -> (FuncInputs<'_>, Candidate) {
    let inp = FuncInputs {
        module: &o.module,
        func_id: FuncId(0),
        ctx: &o.ctx,
        accesses: &o.accesses,
        deps: &o.deps,
        trips: &o.trips,
        block_counts: &o.counts,
        content_fp: cayman_ir::fingerprint_function(o.module.function(FuncId(0))),
    };
    let outer = o
        .ctx
        .forest
        .ids()
        .find(|&l| o.ctx.forest.get(l).depth == 1)
        .expect("outer loop");
    let lp = o.ctx.forest.get(outer);
    let cand = Candidate {
        func: FuncId(0),
        blocks: lp.blocks.clone(),
        entries: 1,
        cpu_cycles: o.total,
        is_bb: false,
        content_fp: inp.content_fp,
    };
    (inp, cand)
}

/// Every generated design has positive area and cycles, interface
/// assignments covering exactly the candidate's accesses, and the
/// sequential configuration is always the smallest.
#[test]
fn designs_are_well_formed() {
    prop_check!(cases = CASES, |rng| {
        let n = rng.range_i64(2, 16);
        let m = rng.range_i64(2, 16);
        let reduction = rng.bool();
        let o = build(n, m, reduction);
        let (inp, cand) = candidate(&o);
        let n_accesses = inp.accesses.within(&cand.blocks).count();
        let designs = generate_designs(&inp, &cand, &ModelOptions::default());
        prop_assert!(!designs.is_empty());
        let seq = &designs[0];
        prop_assert!(seq.pipelined.is_empty());
        for d in &designs {
            prop_assert!(d.area > 0.0);
            prop_assert!(d.accel_cycles_total > 0.0);
            prop_assert!(d.accel_cycles_total.is_finite());
            prop_assert_eq!(d.interfaces.len(), n_accesses);
            prop_assert!(d.area >= seq.area - 1e-9, "sequential is minimal area");
            let (c, de, s, lb) = d.iface_counts();
            prop_assert_eq!(c + de + s + lb, n_accesses);
        }
        Ok(())
    });
}

/// More unrolling never makes a pipelined configuration slower (the paper's
/// area-performance trade-off must be monotone within a candidate's
/// configuration family).
#[test]
fn unrolling_is_monotone() {
    prop_check!(cases = CASES, |rng| {
        let n = rng.range_i64(2, 16);
        let m = rng.range_i64(2, 16);
        let reduction = rng.bool();
        let o = build(n, m, reduction);
        let (inp, cand) = candidate(&o);
        let designs = generate_designs(&inp, &cand, &ModelOptions::default());
        // Compare only the heuristic base plans: extended plans (banked,
        // double-buffered) trade differently and may beat a higher unroll.
        let mut pipelined: Vec<_> = designs
            .iter()
            .filter(|d| {
                !d.pipelined.is_empty()
                    && d.interfaces.iter().all(|(_, s)| {
                        matches!(
                            s.kind,
                            InterfaceKind::Coupled
                                | InterfaceKind::Decoupled
                                | InterfaceKind::Scratchpad
                        )
                    })
            })
            .collect();
        pipelined.sort_by_key(|d| d.unroll);
        for w in pipelined.windows(2) {
            if w[0].unroll < w[1].unroll
                && w[0].pipelined_detail.iter().map(|(_, _, f)| f).sum::<u32>()
                    < w[1].pipelined_detail.iter().map(|(_, _, f)| f).sum::<u32>()
            {
                prop_assert!(
                    w[1].accel_cycles_total <= w[0].accel_cycles_total + 1e-6,
                    "unroll {} slower than {}: {} vs {}",
                    w[1].unroll,
                    w[0].unroll,
                    w[1].accel_cycles_total,
                    w[0].accel_cycles_total
                );
            }
        }
        Ok(())
    });
}

/// The coupled-only ablation never beats the full model (it explores a
/// strict subset of the interface space).
#[test]
fn coupled_only_never_wins() {
    prop_check!(cases = CASES, |rng| {
        let n = rng.range_i64(2, 16);
        let m = rng.range_i64(2, 16);
        let reduction = rng.bool();
        let o = build(n, m, reduction);
        let (inp, cand) = candidate(&o);
        let best = |opts: &ModelOptions| -> f64 {
            generate_designs(&inp, &cand, opts)
                .iter()
                .map(|d| d.accel_cycles_total)
                .fold(f64::INFINITY, f64::min)
        };
        let full = best(&ModelOptions::default());
        let coupled = best(&ModelOptions::coupled_only());
        prop_assert!(full <= coupled + 1e-6, "full {full} vs coupled {coupled}");
        Ok(())
    });
}

/// Reduction kernels carry a dependence yet still unroll (partial sums);
/// element-wise kernels carry none. Either way at least one pipelined
/// configuration with unroll > 1 must appear.
#[test]
fn reduction_unrolling_is_available() {
    prop_check!(cases = CASES, |rng| {
        let n = rng.range_i64(2, 16);
        let m = rng.range_i64(4, 16);
        let o = build(n, m, true);
        let (inp, cand) = candidate(&o);
        let inner = o
            .ctx
            .forest
            .ids()
            .find(|&l| o.ctx.forest.get(l).depth == 2)
            .expect("inner");
        prop_assert!(o.deps[inner.index()].has_carried());
        prop_assert!(o.deps[inner.index()].is_reduction_only(o.module.function(FuncId(0))));
        let designs = generate_designs(&inp, &cand, &ModelOptions::default());
        prop_assert!(
            designs
                .iter()
                .any(|d| d.unroll > 1 && !d.pipelined.is_empty()),
            "partial-sum unrolling missing"
        );
        Ok(())
    });
}
