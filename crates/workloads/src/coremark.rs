//! The six CoreMark-Pro workloads of Table II.
//!
//! EEMBC CoreMark-Pro sources are proprietary; these are synthetic
//! re-creations preserving each workload's documented character (DESIGN.md
//! §2):
//!
//! * **cjpeg-rose7-preset** — JPEG compression with an entropy-coding-style
//!   bit-counting stage (branch-heavy integer work on top of FP transforms),
//! * **zip-test** — LZ-style compression: hash-chain match search with
//!   irregular `while` loops plus an Adler-style checksum,
//! * **parser-125k** — text tokeniser: character classification with nested
//!   conditionals and a small state machine,
//! * **nnet-test** — neural-net forward pass: two dense layers with a
//!   sigmoid (exp) activation,
//! * **linear-alg-mid-100x100-sp** — dense solver: matrix–vector products +
//!   Gaussian elimination,
//! * **loops-all-mid-10k-sp** — many small loops with *even* heat
//!   distribution, most carrying floating-point recurrences (the paper calls
//!   this out: carried FP dependencies restrict the achievable II, so the
//!   coupled-only ablation nearly matches full Cayman here).

use crate::data::Fill;
use crate::{Suite, Workload};
use cayman_ir::builder::ModuleBuilder;
use cayman_ir::{CmpPred, Type};

const F64: Type = Type::F64;
const I64: Type = Type::I64;

fn wl(
    name: &'static str,
    module: cayman_ir::Module,
    fills: Vec<(cayman_ir::ArrayId, Fill)>,
) -> Workload {
    Workload {
        suite: Suite::CoreMarkPro,
        name,
        module,
        fills,
    }
}

/// `cjpeg-rose7-preset` (see module docs).
pub fn cjpeg_rose() -> Workload {
    const W: i64 = 24;
    const B: i64 = 8;
    let mut mb = ModuleBuilder::new("cjpeg-rose7-preset");
    let d = W as usize;
    let img = mb.array("img", F64, &[d, d]);
    let dctc = mb.array("dctc", F64, &[B as usize, B as usize]);
    let freq = mb.array("freq", F64, &[d, d]);
    let coded = mb.array("coded", I64, &[d, d]);
    let bits = mb.array("bits", I64, &[d]);

    // 1-D DCT pass per block row (lighter than full cjpeg).
    let f_dct = mb.function("row_dct", &[], None, |fb| {
        let blocks = W / B;
        fb.counted_loop(0, W, 1, |fb, i| {
            fb.counted_loop(0, blocks, 1, |fb, bj| {
                let base = fb.mul(bj, fb.iconst(B));
                fb.counted_loop(0, B, 1, |fb, v| {
                    let zero = fb.fconst(0.0);
                    let acc = fb.counted_loop_carry(0, B, 1, &[(F64, zero)], |fb, k, c| {
                        let gj = fb.add(base, k);
                        let pv = fb.load_idx(img, &[i, gj]);
                        let cv = fb.load_idx(dctc, &[v, k]);
                        let p = fb.fmul(pv, cv);
                        vec![fb.fadd(c[0], p)]
                    });
                    let gj = fb.add(base, v);
                    fb.store_idx(freq, &[i, gj], acc[0]);
                });
            });
        });
        fb.ret(None);
    });

    // Quantise with truncation.
    let f_quant = mb.function("quantize", &[], None, |fb| {
        fb.counted_loop(0, W, 1, |fb, i| {
            fb.counted_loop(0, W, 1, |fb, j| {
                let fv = fb.load_idx(freq, &[i, j]);
                let q = fb.fdiv(fv, fb.fconst(16.0));
                let c = fb.fptosi(q);
                fb.store_idx_ty(coded, &[i, j], c, I64);
            });
        });
        fb.ret(None);
    });

    // Entropy-coding-style bit counting: magnitude category per coefficient
    // via a shift loop (irregular iteration count), summed per row.
    let f_bits = mb.function("bit_count", &[], None, |fb| {
        fb.counted_loop(0, W, 1, |fb, i| {
            let zero_i = fb.iconst(0);
            let total = fb.counted_loop_carry(0, W, 1, &[(I64, zero_i)], |fb, j, c| {
                let cv = fb.load_idx_ty(coded, &[i, j], I64);
                // |cv| via conditional negate
                let z = fb.iconst(0);
                let neg = fb.icmp_lt(cv, z);
                let nv = fb.sub(z, cv);
                let mag = fb.select(neg, I64, nv, cv);
                // category = number of shifts until zero (≤ 8 here)
                let zero_i2 = fb.iconst(0);
                let cat = fb.counted_loop_carry(0, 8, 1, &[(I64, zero_i2)], |fb, _s, cc| {
                    let one = fb.iconst(1);
                    let shifted = fb.shr(mag, cc[0]);
                    let nz = fb.icmp_eq(shifted, fb.iconst(0));
                    let inc = fb.add(cc[0], one);
                    vec![fb.select(nz, I64, cc[0], inc)]
                });
                vec![fb.add(c[0], cat[0])]
            });
            fb.store_idx_ty(bits, &[i], total[0], I64);
        });
        fb.ret(None);
    });

    mb.function("main", &[], None, |fb| {
        fb.call(f_dct, &[], None);
        fb.call(f_quant, &[], None);
        fb.call(f_bits, &[], None);
        fb.ret(None);
    });
    wl(
        "cjpeg-rose7-preset",
        mb.finish(),
        vec![
            (img, Fill::F64Uniform { lo: 0.0, hi: 255.0 }),
            (dctc, Fill::F64Uniform { lo: -0.5, hi: 0.5 }),
        ],
    )
}

/// `zip-test` (see module docs).
pub fn zip_test() -> Workload {
    const N: i64 = 512; // input length
    const WIN: i64 = 32; // match window
    let mut mb = ModuleBuilder::new("zip-test");
    let input = mb.array("input", I64, &[N as usize]);
    let match_len = mb.array("match_len", I64, &[N as usize]);
    let checksum = mb.array("checksum", I64, &[2]);

    // Adler-style checksum: two carried integer accumulators with modulo.
    let f_adler = mb.function("adler", &[], None, |fb| {
        let one_i = fb.iconst(1);
        let zero_i = fb.iconst(0);
        let sums = fb.counted_loop_carry(0, N, 1, &[(I64, one_i), (I64, zero_i)], |fb, i, c| {
            let v = fb.load_idx_ty(input, &[i], I64);
            let a = fb.add(c[0], v);
            let m = fb.iconst(65521);
            let am = fb.srem(a, m);
            let b = fb.add(c[1], am);
            let bm = fb.srem(b, m);
            vec![am, bm]
        });
        let z = fb.iconst(0);
        let o = fb.iconst(1);
        fb.store_idx_ty(checksum, &[z], sums[0], I64);
        fb.store_idx_ty(checksum, &[o], sums[1], I64);
        fb.ret(None);
    });

    // LZ match: for each position, scan back up to WIN and record the best
    // run length (bounded inner scans with data-dependent early exit via
    // select/min — branchy, indirect-ish access pattern).
    let f_match = mb.function("lz_match", &[], None, |fb| {
        fb.counted_loop(WIN, N - WIN, 1, |fb, pos| {
            let zero_i = fb.iconst(0);
            let best = fb.counted_loop_carry(1, WIN, 1, &[(I64, zero_i)], |fb, back, c| {
                // length of match between input[pos..] and input[pos-back..]
                let zero_i2 = fb.iconst(0);
                let len = fb.counted_loop_carry(0, 8, 1, &[(I64, zero_i2)], |fb, k, cc| {
                    let p1 = fb.add(pos, k);
                    let p0s = fb.sub(pos, back);
                    let p0 = fb.add(p0s, k);
                    let v1 = fb.load_idx_ty(input, &[p1], I64);
                    let v0 = fb.load_idx_ty(input, &[p0], I64);
                    let eq = fb.icmp_eq(v1, v0);
                    // extend only if all previous matched: len == k
                    let cont = fb.icmp_eq(cc[0], k);
                    let one_c = fb.iconst(1);
                    let zero_c = fb.iconst(0);
                    let eq_i = fb.select(eq, I64, one_c, zero_c);
                    let cont_i = fb.select(cont, I64, one_c, zero_c);
                    let both = fb.and(eq_i, cont_i);
                    let one = fb.iconst(1);
                    let ext = fb.icmp_eq(both, one);
                    let inc = fb.add(cc[0], one);
                    vec![fb.select(ext, I64, inc, cc[0])]
                });
                let better = fb.cmp(CmpPred::Gt, I64, len[0], c[0]);
                vec![fb.select(better, I64, len[0], c[0])]
            });
            fb.store_idx_ty(match_len, &[pos], best[0], I64);
        });
        fb.ret(None);
    });

    mb.function("main", &[], None, |fb| {
        fb.call(f_adler, &[], None);
        fb.call(f_match, &[], None);
        fb.ret(None);
    });
    wl(
        "zip-test",
        mb.finish(),
        vec![(input, Fill::I64Uniform { lo: 0, hi: 16 })],
    )
}

/// `parser-125k` (see module docs).
pub fn parser() -> Workload {
    const N: i64 = 2048; // characters
    let mut mb = ModuleBuilder::new("parser-125k");
    let text = mb.array("text", I64, &[N as usize]);
    let counts = mb.array("counts", I64, &[4]); // digits, alphas, spaces, tokens
    let f = mb.function("tokenize", &[], None, |fb| {
        let zero_i = fb.iconst(0);
        let finals = fb.counted_loop_carry(
            0,
            N,
            1,
            &[
                (I64, zero_i), // digits
                (I64, zero_i), // alphas
                (I64, zero_i), // spaces
                (I64, zero_i), // tokens
                (I64, zero_i), // in_token state
            ],
            |fb, i, c| {
                let ch = fb.load_idx_ty(text, &[i], I64);
                let one = fb.iconst(1);
                // class boundaries: 0-9 digit, 10-35 alpha, 36+ space
                let ten = fb.iconst(10);
                let thirty_six = fb.iconst(36);
                let is_digit = fb.icmp_lt(ch, ten);
                let below_alpha = fb.icmp_lt(ch, thirty_six);
                let dig_inc = fb.add(c[0], one);
                let digits = fb.select(is_digit, I64, dig_inc, c[0]);
                let zero_c = fb.iconst(0);
                let one_c = fb.iconst(1);
                let below_i = fb.select(below_alpha, I64, one_c, zero_c);
                let alpha_flag = fb.select(is_digit, I64, zero_c, below_i);
                let is_alpha = fb.icmp_eq(alpha_flag, one);
                let alpha_inc = fb.add(c[1], one);
                let alphas = fb.select(is_alpha, I64, alpha_inc, c[1]);
                let is_space = fb.cmp(CmpPred::Ge, I64, ch, thirty_six);
                let space_inc = fb.add(c[2], one);
                let spaces = fb.select(is_space, I64, space_inc, c[2]);
                // token counting: entering a non-space run
                let nonspace = fb.select(is_space, I64, fb.iconst(0), fb.iconst(1));
                let was_out = fb.icmp_eq(c[4], fb.iconst(0));
                let was_out_i = fb.select(was_out, I64, one_c, zero_c);
                let entering = fb.and(nonspace, was_out_i);
                let is_entering = fb.icmp_eq(entering, one);
                let tok_inc = fb.add(c[3], one);
                let tokens = fb.select(is_entering, I64, tok_inc, c[3]);
                vec![digits, alphas, spaces, tokens, nonspace]
            },
        );
        for (k, v) in finals.iter().take(4).enumerate() {
            let idx = fb.iconst(k as i64);
            fb.store_idx_ty(counts, &[idx], *v, I64);
        }
        fb.ret(None);
    });
    mb.function("main", &[], None, |fb| {
        fb.call(f, &[], None);
        fb.ret(None);
    });
    wl(
        "parser-125k",
        mb.finish(),
        vec![(text, Fill::I64Uniform { lo: 0, hi: 48 })],
    )
}

/// `nnet-test` (see module docs).
pub fn nnet() -> Workload {
    const IN: i64 = 24;
    const HID: i64 = 16;
    const OUT: i64 = 8;
    const SAMPLES: i64 = 12;
    let mut mb = ModuleBuilder::new("nnet-test");
    let x = mb.array("x", F64, &[SAMPLES as usize, IN as usize]);
    let w1 = mb.array("w1", F64, &[HID as usize, IN as usize]);
    let h = mb.array("h", F64, &[HID as usize]);
    let w2 = mb.array("w2", F64, &[OUT as usize, HID as usize]);
    let y = mb.array("y", F64, &[SAMPLES as usize, OUT as usize]);
    let f = mb.function("forward", &[], None, |fb| {
        fb.counted_loop(0, SAMPLES, 1, |fb, s| {
            // hidden layer with sigmoid
            fb.counted_loop(0, HID, 1, |fb, i| {
                let zero = fb.fconst(0.0);
                let acc = fb.counted_loop_carry(0, IN, 1, &[(F64, zero)], |fb, j, c| {
                    let wv = fb.load_idx(w1, &[i, j]);
                    let xv = fb.load_idx(x, &[s, j]);
                    let p = fb.fmul(wv, xv);
                    vec![fb.fadd(c[0], p)]
                });
                // sigmoid(z) = 1/(1+exp(−z))
                let nz = fb.unary(cayman_ir::UnaryOp::FNeg, F64, acc[0]);
                let e = fb.exp(nz);
                let one = fb.fconst(1.0);
                let den = fb.fadd(one, e);
                let sig = fb.fdiv(one, den);
                fb.store_idx(h, &[i], sig);
            });
            // output layer (linear)
            fb.counted_loop(0, OUT, 1, |fb, o| {
                let zero = fb.fconst(0.0);
                let acc = fb.counted_loop_carry(0, HID, 1, &[(F64, zero)], |fb, j, c| {
                    let wv = fb.load_idx(w2, &[o, j]);
                    let hv = fb.load_idx(h, &[j]);
                    let p = fb.fmul(wv, hv);
                    vec![fb.fadd(c[0], p)]
                });
                fb.store_idx(y, &[s, o], acc[0]);
            });
        });
        fb.ret(None);
    });
    mb.function("main", &[], None, |fb| {
        fb.call(f, &[], None);
        fb.ret(None);
    });
    wl(
        "nnet-test",
        mb.finish(),
        vec![
            (x, Fill::F64Uniform { lo: -1.0, hi: 1.0 }),
            (w1, Fill::F64Uniform { lo: -0.5, hi: 0.5 }),
            (w2, Fill::F64Uniform { lo: -0.5, hi: 0.5 }),
        ],
    )
}

/// `linear-alg-mid-100x100-sp` (see module docs).
pub fn linear_alg() -> Workload {
    const N: i64 = 26;
    let mut mb = ModuleBuilder::new("linear-alg-mid-100x100-sp");
    let d = N as usize;
    let a = mb.array("A", F64, &[d, d]);
    let b = mb.array("b", F64, &[d]);
    let v = mb.array("v", F64, &[d]);
    let w = mb.array("w", F64, &[d]);
    // matvec: w = A·v
    let f_mv = mb.function("matvec", &[], None, |fb| {
        fb.counted_loop(0, N, 1, |fb, i| {
            let zero = fb.fconst(0.0);
            let acc = fb.counted_loop_carry(0, N, 1, &[(F64, zero)], |fb, j, c| {
                let av = fb.load_idx(a, &[i, j]);
                let vv = fb.load_idx(v, &[j]);
                let p = fb.fmul(av, vv);
                vec![fb.fadd(c[0], p)]
            });
            fb.store_idx(w, &[i], acc[0]);
        });
        fb.ret(None);
    });
    // Gaussian elimination (no pivoting; SPD input keeps it stable).
    let f_ge = mb.function("gauss_eliminate", &[], None, |fb| {
        fb.counted_loop(0, N - 1, 1, |fb, k| {
            let one = fb.iconst(1);
            let kp1 = fb.add(k, one);
            let n_end = fb.iconst(N);
            fb.counted_loop_dyn(kp1, n_end, 1, |fb, i| {
                let aik = fb.load_idx(a, &[i, k]);
                let akk = fb.load_idx(a, &[k, k]);
                let m = fb.fdiv(aik, akk);
                let n_end2 = fb.iconst(N);
                fb.counted_loop_dyn(k, n_end2, 1, |fb, j| {
                    let akj = fb.load_idx(a, &[k, j]);
                    let aij = fb.load_idx(a, &[i, j]);
                    let p = fb.fmul(m, akj);
                    let nv = fb.fsub(aij, p);
                    fb.store_idx(a, &[i, j], nv);
                });
                let bk = fb.load_idx(b, &[k]);
                let bi = fb.load_idx(b, &[i]);
                let p = fb.fmul(m, bk);
                let nb = fb.fsub(bi, p);
                fb.store_idx(b, &[i], nb);
            });
        });
        fb.ret(None);
    });
    mb.function("main", &[], None, |fb| {
        fb.call(f_mv, &[], None);
        fb.call(f_ge, &[], None);
        fb.ret(None);
    });
    wl(
        "linear-alg-mid-100x100-sp",
        mb.finish(),
        vec![
            (a, Fill::SpdMatrix),
            (b, Fill::F64Uniform { lo: -1.0, hi: 1.0 }),
            (v, Fill::F64Uniform { lo: -1.0, hi: 1.0 }),
        ],
    )
}

/// `loops-all-mid-10k-sp` (see module docs): twelve small loops spread over
/// four functions; ten carry floating-point recurrences.
pub fn loops_all() -> Workload {
    const N: i64 = 400;
    let mut mb = ModuleBuilder::new("loops-all-mid-10k-sp");
    let d = N as usize;
    let bufs: Vec<_> = (0..13)
        .map(|k| mb.array(format!("buf{k}"), F64, &[d]))
        .collect();

    // Each group function hosts three loops with *different* operation
    // mixes (the real workload's loops are diverse); most carry a
    // floating-point recurrence, which is what restricts the achievable II
    // (§IV-B's explanation for the small coupled-vs-full gap here).
    let mut funcs = Vec::new();
    for gf in 0..4usize {
        let name = format!("group{gf}");
        let src0 = bufs[gf * 3];
        let src1 = bufs[gf * 3 + 1];
        let src2 = bufs[gf * 3 + 2];
        let dst = bufs[(gf * 3 + 3) % 13];
        let f = mb.function(name, &[], None, move |fb| {
            // loop 1: first-order IIR recurrence — op mix varies per group.
            let zero = fb.fconst(0.0);
            fb.counted_loop_carry(0, N, 1, &[(F64, zero)], move |fb, i, c| {
                let xv = fb.load_idx(src0, &[i]);
                let v = match gf {
                    0 => {
                        let t = fb.fmul(fb.fconst(0.9), c[0]);
                        fb.fadd(t, xv)
                    }
                    1 => {
                        let t = fb.fdiv(c[0], fb.fconst(1.1));
                        fb.fadd(t, xv)
                    }
                    2 => {
                        let t = fb.fsub(xv, c[0]);
                        let u = fb.fabs(t);
                        fb.fadd(c[0], u)
                    }
                    _ => {
                        let t = fb.fmul(c[0], c[0]);
                        let u = fb.fmul(t, fb.fconst(0.001));
                        let w = fb.fadd(u, xv);
                        fb.fmul(w, fb.fconst(0.5))
                    }
                };
                fb.store_idx(dst, &[i], v);
                vec![v]
            });
            // loop 2: a second recurrence with a different shape per group.
            let zero2 = fb.fconst(0.0);
            fb.counted_loop_carry(0, N, 1, &[(F64, zero2)], move |fb, i, c| {
                let xv = fb.load_idx(src1, &[i]);
                let v = if gf % 2 == 0 {
                    let t = fb.fmul(fb.fconst(0.5), c[0]);
                    fb.fadd(t, xv)
                } else {
                    let t = fb.fmax(c[0], xv);
                    fb.fmul(t, fb.fconst(0.999))
                };
                fb.store_idx(src1, &[i], v);
                vec![v]
            });
            // loop 3: element-wise (no recurrence) — the minority; op mix
            // differs per group too.
            fb.counted_loop(0, N, 1, move |fb, i| {
                let xv = fb.load_idx(src2, &[i]);
                let v = match gf {
                    0 => fb.fmul(xv, fb.fconst(1.01)),
                    1 => {
                        let a = fb.fabs(xv);
                        fb.sqrt(a)
                    }
                    2 => {
                        let t = fb.fmul(xv, xv);
                        fb.fadd(t, fb.fconst(1.0))
                    }
                    _ => fb.fdiv(fb.fconst(1.0), xv),
                };
                fb.store_idx(src2, &[i], v);
            });
            fb.ret(None);
        });
        funcs.push(f);
    }
    mb.function("main", &[], None, |fb| {
        for &f in &funcs {
            fb.call(f, &[], None);
        }
        fb.ret(None);
    });
    let fills = bufs
        .iter()
        .map(|&b| (b, Fill::F64Uniform { lo: -1.0, hi: 1.0 }))
        .collect();
    wl("loops-all-mid-10k-sp", mb.finish(), fills)
}

/// All six CoreMark-Pro workloads.
pub fn all() -> Vec<Workload> {
    vec![
        cjpeg_rose(),
        zip_test(),
        parser(),
        nnet(),
        linear_alg(),
        loops_all(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cayman_ir::interp::Interp;

    #[test]
    fn parser_counts_partition_the_text() {
        let w = parser();
        let mut interp = Interp::new(&w.module);
        interp.memory = w.memory();
        interp.run(&[]).expect("runs");
        let ids: Vec<cayman_ir::ArrayId> = w.module.array_ids().collect();
        let counts = ids[1];
        let digits = interp.memory.get_i64(counts, 0);
        let alphas = interp.memory.get_i64(counts, 1);
        let spaces = interp.memory.get_i64(counts, 2);
        let tokens = interp.memory.get_i64(counts, 3);
        assert_eq!(digits + alphas + spaces, 2048, "classes partition chars");
        assert!(tokens > 0 && tokens <= 2048 - spaces + 1);
    }

    #[test]
    fn zip_checksum_is_in_range() {
        let w = zip_test();
        let mut interp = Interp::new(&w.module);
        interp.memory = w.memory();
        interp.run(&[]).expect("runs");
        let ids: Vec<cayman_ir::ArrayId> = w.module.array_ids().collect();
        let checksum = ids[2];
        let a = interp.memory.get_i64(checksum, 0);
        let b = interp.memory.get_i64(checksum, 1);
        assert!((0..65521).contains(&a));
        assert!((0..65521).contains(&b));
        // match lengths bounded by the 8-char probe
        let ml = ids[1];
        for i in 32..(512 - 32) {
            let v = interp.memory.get_i64(ml, i);
            assert!((0..=8).contains(&v), "pos {i}: {v}");
        }
    }

    #[test]
    fn nnet_hidden_activations_are_sigmoidal() {
        let w = nnet();
        let mut interp = Interp::new(&w.module);
        interp.memory = w.memory();
        interp.run(&[]).expect("runs");
        let ids: Vec<cayman_ir::ArrayId> = w.module.array_ids().collect();
        let h = ids[2];
        for i in 0..16 {
            let v = interp.memory.get_f64(h, i);
            assert!((0.0..=1.0).contains(&v), "h[{i}] = {v}");
        }
    }

    #[test]
    fn loops_all_has_even_heat() {
        let w = loops_all();
        let prof = w.run().expect("runs");
        // four group functions: each should take a similar share of time
        let mut func_cycles: Vec<u64> = Vec::new();
        for f in w.module.function_ids() {
            if w.module.function(f).name.starts_with("group") {
                let total: u64 = w
                    .module
                    .function(f)
                    .block_ids()
                    .map(|b| {
                        prof.block_counts[f.index()][b.index()]
                            * cayman_ir::cpu_model::block_cycles(w.module.function(f), b)
                    })
                    .sum();
                func_cycles.push(total);
            }
        }
        assert_eq!(func_cycles.len(), 4);
        let max = *func_cycles.iter().max().expect("non-empty") as f64;
        let min = *func_cycles.iter().min().expect("non-empty") as f64;
        assert!(max / min < 3.0, "roughly even hotspots: {func_cycles:?}");
    }

    #[test]
    fn all_coremark_run() {
        for w in all() {
            w.module
                .verify()
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            w.run().unwrap_or_else(|e| panic!("{}: {e}", w.name));
        }
    }
}
