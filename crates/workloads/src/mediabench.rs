//! The two MediaBench applications of Table II: `cjpeg` and `epic`.
//!
//! The original MediaBench sources are not available as IR, so these are
//! synthetic-but-representative re-creations preserving each application's
//! control-flow and memory-access character (the substitution rule of
//! DESIGN.md §2):
//!
//! * **cjpeg** — JPEG compression front-end: colour-space conversion
//!   (element-wise FP), 8×8 block DCT (two 1-D matrix passes), quantisation
//!   (division + truncation + zero-counting conditional), and a zig-zag
//!   run-length scan (branch-heavy integer loop). Many distinct medium-heat
//!   regions — which is why Table II shows cjpeg with dozens of selected
//!   blocks and relatively low speedup.
//! * **epic** — efficient pyramid image coder: separable low-pass filtering,
//!   2:1 down-sampling, and threshold quantisation with conditionals over
//!   two pyramid levels.

use crate::data::Fill;
use crate::{Suite, Workload};
use cayman_ir::builder::ModuleBuilder;
use cayman_ir::{CmpPred, Type};

const F64: Type = Type::F64;
const I64: Type = Type::I64;

fn wl(
    name: &'static str,
    module: cayman_ir::Module,
    fills: Vec<(cayman_ir::ArrayId, Fill)>,
) -> Workload {
    Workload {
        suite: Suite::MediaBench,
        name,
        module,
        fills,
    }
}

/// `cjpeg`: JPEG compression front-end (see module docs).
pub fn cjpeg() -> Workload {
    const W: i64 = 32; // image width/height
    const B: i64 = 8; // DCT block size
    let mut mb = ModuleBuilder::new("cjpeg");
    let d = W as usize;
    let bs = B as usize;
    let r = mb.array("r", F64, &[d, d]);
    let g = mb.array("g", F64, &[d, d]);
    let b_ = mb.array("b", F64, &[d, d]);
    let ycc = mb.array("ycc", F64, &[d, d]);
    let dctc = mb.array("dctc", F64, &[bs, bs]); // DCT coefficient matrix
    let tmp = mb.array("tmp", F64, &[bs, bs]);
    let freq = mb.array("freq", F64, &[d, d]);
    let quant = mb.array("quant", F64, &[bs, bs]);
    let coded = mb.array("coded", I64, &[d, d]);
    let runlen = mb.array("runlen", I64, &[d]);

    // Colour conversion: Y = 0.299 R + 0.587 G + 0.114 B (element-wise).
    let f_ycc = mb.function("rgb_to_ycc", &[], None, |fb| {
        fb.counted_loop(0, W, 1, |fb, i| {
            fb.counted_loop(0, W, 1, |fb, j| {
                let rv = fb.load_idx(r, &[i, j]);
                let gv = fb.load_idx(g, &[i, j]);
                let bv = fb.load_idx(b_, &[i, j]);
                let t1 = fb.fmul(fb.fconst(0.299), rv);
                let t2 = fb.fmul(fb.fconst(0.587), gv);
                let t3 = fb.fmul(fb.fconst(0.114), bv);
                let s1 = fb.fadd(t1, t2);
                let y = fb.fadd(s1, t3);
                fb.store_idx(ycc, &[i, j], y);
            });
        });
        fb.ret(None);
    });

    // Per-block 2-D DCT via two 1-D passes: tmp = C·block, freq = tmp·Cᵀ.
    let f_dct = mb.function("block_dct", &[], None, |fb| {
        let blocks = W / B;
        fb.counted_loop(0, blocks, 1, |fb, bi| {
            fb.counted_loop(0, blocks, 1, |fb, bj| {
                let bbase_i = fb.mul(bi, fb.iconst(B));
                let bbase_j = fb.mul(bj, fb.iconst(B));
                // tmp = C · block
                fb.counted_loop(0, B, 1, |fb, u| {
                    fb.counted_loop(0, B, 1, |fb, x| {
                        let zero = fb.fconst(0.0);
                        let acc = fb.counted_loop_carry(0, B, 1, &[(F64, zero)], |fb, k, c| {
                            let cv = fb.load_idx(dctc, &[u, k]);
                            let gi = fb.add(bbase_i, k);
                            let gj = fb.add(bbase_j, x);
                            let pv = fb.load_idx(ycc, &[gi, gj]);
                            let p = fb.fmul(cv, pv);
                            vec![fb.fadd(c[0], p)]
                        });
                        fb.store_idx(tmp, &[u, x], acc[0]);
                    });
                });
                // freq = tmp · Cᵀ
                fb.counted_loop(0, B, 1, |fb, u| {
                    fb.counted_loop(0, B, 1, |fb, v| {
                        let zero = fb.fconst(0.0);
                        let acc = fb.counted_loop_carry(0, B, 1, &[(F64, zero)], |fb, k, c| {
                            let tv = fb.load_idx(tmp, &[u, k]);
                            let cv = fb.load_idx(dctc, &[v, k]);
                            let p = fb.fmul(tv, cv);
                            vec![fb.fadd(c[0], p)]
                        });
                        let gi = fb.add(bbase_i, u);
                        let gj = fb.add(bbase_j, v);
                        fb.store_idx(freq, &[gi, gj], acc[0]);
                    });
                });
            });
        });
        fb.ret(None);
    });

    // Quantisation: coded = trunc(freq / q); count zeroes per row.
    let f_quant = mb.function("quantize", &[], None, |fb| {
        fb.counted_loop(0, W, 1, |fb, i| {
            fb.counted_loop(0, W, 1, |fb, j| {
                let fv = fb.load_idx(freq, &[i, j]);
                let qi = fb.srem(i, fb.iconst(B));
                let qj = fb.srem(j, fb.iconst(B));
                let qv = fb.load_idx(quant, &[qi, qj]);
                let dq = fb.fdiv(fv, qv);
                let code = fb.fptosi(dq);
                fb.store_idx_ty(coded, &[i, j], code, I64);
            });
        });
        fb.ret(None);
    });

    // Zig-zag-ish run-length scan (per row): count zero runs — branch-heavy.
    let f_rle = mb.function("rle_scan", &[], None, |fb| {
        fb.counted_loop(0, W, 1, |fb, i| {
            let zero_i = fb.iconst(0);
            let runs = fb.counted_loop_carry(0, W, 1, &[(I64, zero_i)], |fb, j, c| {
                let cv = fb.load_idx_ty(coded, &[i, j], I64);
                let z = fb.iconst(0);
                let is_zero = fb.icmp_eq(cv, z);
                let one = fb.iconst(1);
                let inc = fb.add(c[0], one);
                vec![fb.select(is_zero, I64, inc, c[0])]
            });
            fb.store_idx_ty(runlen, &[i], runs[0], I64);
        });
        fb.ret(None);
    });

    mb.function("main", &[], None, |fb| {
        fb.call(f_ycc, &[], None);
        fb.call(f_dct, &[], None);
        fb.call(f_quant, &[], None);
        fb.call(f_rle, &[], None);
        fb.ret(None);
    });
    wl(
        "cjpeg",
        mb.finish(),
        vec![
            (r, Fill::F64Uniform { lo: 0.0, hi: 255.0 }),
            (g, Fill::F64Uniform { lo: 0.0, hi: 255.0 }),
            (b_, Fill::F64Uniform { lo: 0.0, hi: 255.0 }),
            (dctc, Fill::F64Uniform { lo: -0.5, hi: 0.5 }),
            (quant, Fill::F64Uniform { lo: 4.0, hi: 32.0 }),
        ],
    )
}

/// `epic`: pyramid image coder (see module docs).
pub fn epic() -> Workload {
    const W: i64 = 32;
    let mut mb = ModuleBuilder::new("epic");
    let d = W as usize;
    let img = mb.array("img", F64, &[d, d]);
    let hfilt = mb.array("hfilt", F64, &[d, d]);
    let lvl1 = mb.array("lvl1", F64, &[d / 2, d / 2]);
    let lvl2 = mb.array("lvl2", F64, &[d / 4, d / 4]);
    let qout = mb.array("qout", I64, &[d / 2, d / 2]);
    let taps = mb.array("taps", F64, &[5]);

    // Horizontal 5-tap low-pass over the full image.
    let f_filter = mb.function("lowpass_h", &[], None, |fb| {
        fb.counted_loop(0, W, 1, |fb, i| {
            fb.counted_loop(2, W - 2, 1, |fb, j| {
                let zero = fb.fconst(0.0);
                let acc = fb.counted_loop_carry(0, 5, 1, &[(F64, zero)], |fb, t, c| {
                    let two = fb.iconst(2);
                    let off = fb.sub(t, two);
                    let jj = fb.add(j, off);
                    let pv = fb.load_idx(img, &[i, jj]);
                    let tv = fb.load_idx(taps, &[t]);
                    let p = fb.fmul(pv, tv);
                    vec![fb.fadd(c[0], p)]
                });
                fb.store_idx(hfilt, &[i, j], acc[0]);
            });
        });
        fb.ret(None);
    });

    // 2:1 down-sample into level 1.
    let f_down1 = mb.function("downsample1", &[], None, |fb| {
        fb.counted_loop(0, W / 2, 1, |fb, i| {
            fb.counted_loop(0, W / 2, 1, |fb, j| {
                let two = fb.iconst(2);
                let si = fb.mul(i, two);
                let sj = fb.mul(j, two);
                let v = fb.load_idx(hfilt, &[si, sj]);
                fb.store_idx(lvl1, &[i, j], v);
            });
        });
        fb.ret(None);
    });

    // Level-2 build: 2×2 averaging of level 1.
    let f_down2 = mb.function("downsample2", &[], None, |fb| {
        fb.counted_loop(0, W / 4, 1, |fb, i| {
            fb.counted_loop(0, W / 4, 1, |fb, j| {
                let two = fb.iconst(2);
                let one = fb.iconst(1);
                let si = fb.mul(i, two);
                let sj = fb.mul(j, two);
                let si1 = fb.add(si, one);
                let sj1 = fb.add(sj, one);
                let v00 = fb.load_idx(lvl1, &[si, sj]);
                let v01 = fb.load_idx(lvl1, &[si, sj1]);
                let v10 = fb.load_idx(lvl1, &[si1, sj]);
                let v11 = fb.load_idx(lvl1, &[si1, sj1]);
                let s1 = fb.fadd(v00, v01);
                let s2 = fb.fadd(v10, v11);
                let s = fb.fadd(s1, s2);
                let q = fb.fmul(s, fb.fconst(0.25));
                fb.store_idx(lvl2, &[i, j], q);
            });
        });
        fb.ret(None);
    });

    // Threshold quantisation of level 1 (dead-zone): |v| < θ → 0 else ±⌊v/Δ⌋.
    let f_quant = mb.function("threshold_quant", &[], None, |fb| {
        fb.counted_loop(0, W / 2, 1, |fb, i| {
            fb.counted_loop(0, W / 2, 1, |fb, j| {
                let v = fb.load_idx(lvl1, &[i, j]);
                let av = fb.fabs(v);
                let theta = fb.fconst(8.0);
                let below = fb.cmp(CmpPred::Lt, F64, av, theta);
                fb.if_then_else(
                    below,
                    |fb| {
                        let z = fb.iconst(0);
                        fb.store_idx_ty(qout, &[i, j], z, I64);
                    },
                    |fb| {
                        let delta = fb.fconst(4.0);
                        let q = fb.fdiv(v, delta);
                        let qi = fb.fptosi(q);
                        fb.store_idx_ty(qout, &[i, j], qi, I64);
                    },
                );
            });
        });
        fb.ret(None);
    });

    mb.function("main", &[], None, |fb| {
        fb.call(f_filter, &[], None);
        fb.call(f_down1, &[], None);
        fb.call(f_down2, &[], None);
        fb.call(f_quant, &[], None);
        fb.ret(None);
    });
    wl(
        "epic",
        mb.finish(),
        vec![
            (img, Fill::F64Uniform { lo: 0.0, hi: 255.0 }),
            (taps, Fill::F64Uniform { lo: 0.1, hi: 0.3 }),
        ],
    )
}

/// Both MediaBench workloads.
pub fn all() -> Vec<Workload> {
    vec![cjpeg(), epic()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cayman_ir::interp::Interp;

    #[test]
    fn cjpeg_produces_quantised_codes() {
        let w = cjpeg();
        w.module.verify().expect("verifies");
        let mut interp = Interp::new(&w.module);
        interp.memory = w.memory();
        interp.run(&[]).expect("runs");
        let ids: Vec<cayman_ir::ArrayId> = w.module.array_ids().collect();
        let coded = ids[8];
        let runlen = ids[9];
        // codes exist and run-lengths are within row bounds
        let nonzero = (0..32 * 32)
            .filter(|&i| interp.memory.get_i64(coded, i) != 0)
            .count();
        assert!(nonzero > 0, "quantisation produced all zeros");
        for i in 0..32 {
            let rl = interp.memory.get_i64(runlen, i);
            assert!((0..=32).contains(&rl), "row {i} runlen {rl}");
        }
    }

    #[test]
    fn epic_pyramid_levels_are_consistent() {
        let w = epic();
        let mut interp = Interp::new(&w.module);
        interp.memory = w.memory();
        interp.run(&[]).expect("runs");
        let ids: Vec<cayman_ir::ArrayId> = w.module.array_ids().collect();
        let (lvl1, lvl2) = (ids[2], ids[3]);
        // level-2 cell = average of its 2×2 level-1 block
        let l1 = |i: usize, j: usize| interp.memory.get_f64(lvl1, i * 16 + j);
        let expect = 0.25 * (l1(2, 2) + l1(2, 3) + l1(3, 2) + l1(3, 3));
        let got = interp.memory.get_f64(lvl2, 8 + 1);
        assert!((got - expect).abs() < 1e-9, "{got} vs {expect}");
    }

    #[test]
    fn all_mediabench_run() {
        for w in all() {
            w.module
                .verify()
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            w.run().unwrap_or_else(|e| panic!("{}: {e}", w.name));
        }
    }
}
