//! Declarative input-data specifications for workload arrays.

use cayman_ir::interp::Memory;
use cayman_ir::{ArrayId, Module};
use cayman_testkit::Rng;

/// How to fill one array before execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fill {
    /// Uniform `f64` values in `[lo, hi)`.
    F64Uniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Uniform `i64` values in `[lo, hi)`.
    I64Uniform {
        /// Lower bound (inclusive).
        lo: i64,
        /// Upper bound (exclusive).
        hi: i64,
    },
    /// `f64` ramp: element `i` gets `scale · (i mod m) + offset`.
    F64Ramp {
        /// Multiplier.
        scale: f64,
        /// Modulus applied to the index.
        m: usize,
        /// Additive offset.
        offset: f64,
    },
    /// `i64` ramp modulo `m`: element `i` gets `i mod m` (ascending index
    /// streams, CSR-ish column patterns).
    I64Mod {
        /// Modulus.
        m: i64,
    },
    /// `i64` ramp: element `i` gets `scale · i` (CSR row pointers with a
    /// fixed number of non-zeros per row).
    I64Ramp {
        /// Multiplier.
        scale: i64,
    },
    /// A symmetric-positive-definite-ish matrix (for cholesky/lu): strong
    /// diagonal, small off-diagonal noise. Array must be 2-D square.
    SpdMatrix,
    /// Leave zero-initialised.
    Zero,
}

/// Applies a fill to one array (deterministic given `seed`).
pub fn apply(module: &Module, mem: &mut Memory, array: ArrayId, fill: Fill, seed: u64) {
    let decl = module.array(array);
    let n = decl.len();
    let mut rng = Rng::new(seed ^ (array.0 as u64).wrapping_mul(0x9E37_79B9));
    match fill {
        Fill::F64Uniform { lo, hi } => {
            for i in 0..n {
                mem.set_f64(array, i, rng.range_f64(lo, hi));
            }
        }
        Fill::I64Uniform { lo, hi } => {
            for i in 0..n {
                mem.set_i64(array, i, rng.range_i64(lo, hi));
            }
        }
        Fill::F64Ramp { scale, m, offset } => {
            for i in 0..n {
                mem.set_f64(array, i, scale * ((i % m) as f64) + offset);
            }
        }
        Fill::I64Mod { m } => {
            for i in 0..n {
                mem.set_i64(array, i, (i as i64) % m);
            }
        }
        Fill::I64Ramp { scale } => {
            for i in 0..n {
                mem.set_i64(array, i, scale * i as i64);
            }
        }
        Fill::SpdMatrix => {
            let d = decl.dims[0];
            assert_eq!(decl.dims.len(), 2, "SpdMatrix needs a 2-D array");
            assert_eq!(decl.dims[0], decl.dims[1], "SpdMatrix needs a square array");
            for i in 0..d {
                for j in 0..d {
                    let v = if i == j {
                        d as f64 + rng.f64()
                    } else {
                        rng.range_f64(-0.1, 0.1)
                    };
                    mem.set_f64(array, i * d + j, v);
                }
            }
        }
        Fill::Zero => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cayman_ir::builder::ModuleBuilder;
    use cayman_ir::Type;

    #[test]
    fn fills_are_deterministic() {
        let mut mb = ModuleBuilder::new("t");
        let a = mb.array("a", Type::F64, &[16]);
        let m = mb.finish();
        let mut m1 = Memory::for_module(&m);
        let mut m2 = Memory::for_module(&m);
        apply(&m, &mut m1, a, Fill::F64Uniform { lo: 0.0, hi: 1.0 }, 7);
        apply(&m, &mut m2, a, Fill::F64Uniform { lo: 0.0, hi: 1.0 }, 7);
        for i in 0..16 {
            assert_eq!(m1.get_f64(a, i), m2.get_f64(a, i));
            assert!((0.0..1.0).contains(&m1.get_f64(a, i)));
        }
    }

    #[test]
    fn spd_matrix_is_diagonally_dominant() {
        let mut mb = ModuleBuilder::new("t");
        let a = mb.array("a", Type::F64, &[8, 8]);
        let m = mb.finish();
        let mut mem = Memory::for_module(&m);
        apply(&m, &mut mem, a, Fill::SpdMatrix, 1);
        for i in 0..8 {
            let diag = mem.get_f64(a, i * 8 + i);
            let off_sum: f64 = (0..8)
                .filter(|&j| j != i)
                .map(|j| mem.get_f64(a, i * 8 + j).abs())
                .sum();
            assert!(diag > off_sum, "row {i}: {diag} vs {off_sum}");
        }
    }

    #[test]
    fn ramps_and_mods() {
        let mut mb = ModuleBuilder::new("t");
        let a = mb.array("a", Type::F64, &[8]);
        let b = mb.array("b", Type::I64, &[8]);
        let m = mb.finish();
        let mut mem = Memory::for_module(&m);
        apply(
            &m,
            &mut mem,
            a,
            Fill::F64Ramp {
                scale: 2.0,
                m: 4,
                offset: 1.0,
            },
            0,
        );
        apply(&m, &mut mem, b, Fill::I64Mod { m: 3 }, 0);
        assert_eq!(mem.get_f64(a, 5), 2.0 * 1.0 + 1.0);
        assert_eq!(mem.get_i64(b, 5), 2);
    }
}
