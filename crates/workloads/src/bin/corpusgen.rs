//! Regenerates the text-fixture kernel corpus under `crates/workloads/kernels/`.
//!
//! The corpus has three domains, each a subdirectory of `kernels/`:
//!
//! * `stencil/` — line-buffer-friendly image stencils (conv2d, sobel,
//!   gaussian, erosion, ...) built explicitly against `ir::builder`,
//! * `control/` — control-heavy CGRA-style kernels (state machines inside
//!   loops, data-dependent branches and stores),
//! * `gen/` — structured programs from `testkit::program` at fixed seeds.
//!
//! Every emitted kernel is verified, executed under the profiling
//! interpreter (it must terminate cleanly with a finite checksum) and
//! round-tripped through `parse_text` before it is written, so a committed
//! `.cir` file is a known-good pipeline input by construction. Output is
//! byte-deterministic: running this binary twice produces identical files.
//!
//! Usage: `cargo run -p cayman-workloads --bin corpusgen`

use cayman_ir::builder::{FunctionBuilder, ModuleBuilder};
use cayman_ir::interp::Interp;
use cayman_ir::{ArrayId, BinOp, CmpPred, Module, Operand, Type};
use cayman_testkit::program::{arbitrary_module_with, GenOptions};
use cayman_testkit::Rng;
use std::fs;
use std::path::{Path, PathBuf};

/// Image side length for the stencil domain (interior = 10×10 pixels).
const IMG: i64 = 12;
/// Input length for the control domain.
const SIG: i64 = 96;
/// Number of generated (`gen/`) kernels.
const GEN_COUNT: u64 = 80;

fn main() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("kernels");
    let mut written = 0usize;
    written += emit_domain(&root, "stencil", stencil_kernels());
    written += emit_domain(&root, "control", control_kernels());
    written += emit_domain(&root, "gen", generated_kernels());
    println!(
        "corpusgen: wrote {written} kernels under {}",
        root.display()
    );
}

/// Writes one domain directory, replacing any stale `.cir` files.
fn emit_domain(root: &Path, domain: &str, kernels: Vec<(String, Module)>) -> usize {
    let dir = root.join(domain);
    fs::create_dir_all(&dir).unwrap_or_else(|e| panic!("create {}: {e}", dir.display()));
    for stale in stale_files(&dir) {
        fs::remove_file(&stale).unwrap_or_else(|e| panic!("remove {}: {e}", stale.display()));
    }
    let n = kernels.len();
    for (name, module) in kernels {
        check(&name, &module);
        let path = dir.join(format!("{name}.cir"));
        fs::write(&path, module.to_text())
            .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    }
    println!("  {domain}: {n} kernels");
    n
}

fn stale_files(dir: &Path) -> Vec<PathBuf> {
    let Ok(rd) = fs::read_dir(dir) else {
        return Vec::new();
    };
    rd.filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "cir"))
        .collect()
}

/// A committed kernel must verify, terminate with a finite checksum, and
/// survive the text round-trip.
fn check(name: &str, m: &Module) {
    m.verify().unwrap_or_else(|e| panic!("{name}: {e}"));
    let profile = Interp::new(m)
        .run(&[])
        .unwrap_or_else(|e| panic!("{name}: does not run: {e}"));
    assert!(profile.total_cycles > 0, "{name}: did no work");
    if let Some(cayman_ir::interp::Value::F(f)) = profile.return_value {
        assert!(f.is_finite(), "{name}: non-finite checksum {f}");
    }
    let reparsed = Module::parse_text(&m.to_text())
        .unwrap_or_else(|e| panic!("{name}: emitted text does not parse: {e}"));
    reparsed
        .verify()
        .unwrap_or_else(|e| panic!("{name}: reparsed module broken: {e}"));
}

// ---- stencil domain --------------------------------------------------------

/// What to do with a convolution sum before storing it.
#[derive(Clone, Copy)]
enum Post {
    /// Store the raw sum.
    Id,
    /// Store `|sum|` (gradient magnitude style).
    Abs,
    /// Store `max(sum, 0)` (ReLU-clamped response).
    Relu,
}

fn stencil_kernels() -> Vec<(String, Module)> {
    let mut v: Vec<(String, Module)> = Vec::new();
    let conv = |name: &str, taps: [[f64; 3]; 3], post: Post| {
        (name.to_string(), conv3x3_module(name, taps, post))
    };
    v.push(conv(
        "conv2d-3x3",
        [[0.05, 0.1, 0.05], [0.1, 0.4, 0.1], [0.05, 0.1, 0.05]],
        Post::Id,
    ));
    let g = 1.0 / 16.0;
    v.push(conv(
        "gaussian-3x3",
        [
            [g, 2.0 * g, g],
            [2.0 * g, 4.0 * g, 2.0 * g],
            [g, 2.0 * g, g],
        ],
        Post::Id,
    ));
    let b = 1.0 / 9.0;
    v.push(conv("box-blur", [[b; 3]; 3], Post::Id));
    v.push(conv(
        "sharpen",
        [[0.0, -1.0, 0.0], [-1.0, 5.0, -1.0], [0.0, -1.0, 0.0]],
        Post::Id,
    ));
    v.push(conv(
        "sobel-x",
        [[-1.0, 0.0, 1.0], [-2.0, 0.0, 2.0], [-1.0, 0.0, 1.0]],
        Post::Abs,
    ));
    v.push(conv(
        "sobel-y",
        [[-1.0, -2.0, -1.0], [0.0, 0.0, 0.0], [1.0, 2.0, 1.0]],
        Post::Abs,
    ));
    v.push(conv(
        "prewitt-x",
        [[-1.0, 0.0, 1.0], [-1.0, 0.0, 1.0], [-1.0, 0.0, 1.0]],
        Post::Abs,
    ));
    v.push(conv(
        "laplacian",
        [[0.0, 1.0, 0.0], [1.0, -4.0, 1.0], [0.0, 1.0, 0.0]],
        Post::Relu,
    ));
    v.push(conv(
        "emboss",
        [[-2.0, -1.0, 0.0], [-1.0, 1.0, 1.0], [0.0, 1.0, 2.0]],
        Post::Id,
    ));
    v.push((
        "erosion-3x3".into(),
        morph3x3_module("erosion-3x3", BinOp::FMin),
    ));
    v.push((
        "dilation-3x3".into(),
        morph3x3_module("dilation-3x3", BinOp::FMax),
    ));
    v.push(("gradient-mag".into(), gradient_mag_module()));
    v
}

/// `src[i][j] = 0.25 * ((i*7 + j*3) mod 13 - 6)` — a deterministic, sign-rich
/// test pattern shared by the whole stencil domain.
fn init_image(fb: &mut FunctionBuilder, src: ArrayId) {
    fb.counted_loop(0, IMG, 1, |fb, i| {
        fb.counted_loop(0, IMG, 1, |fb, j| {
            let ti = fb.mul(i, fb.iconst(7));
            let tj = fb.mul(j, fb.iconst(3));
            let s = fb.add(ti, tj);
            let r = fb.srem(s, fb.iconst(13));
            let c = fb.sub(r, fb.iconst(6));
            let f = fb.sitofp(c);
            let v = fb.fmul(f, fb.fconst(0.25));
            fb.store_idx(src, &[i, j], v);
        });
    });
}

/// Sums `dst` into a carried `f64` and returns it.
fn checksum_image(fb: &mut FunctionBuilder, dst: ArrayId) -> Operand {
    let zero = fb.fconst(0.0);
    let outer = fb.counted_loop_carry(0, IMG, 1, &[(Type::F64, zero)], |fb, i, c| {
        let inner = fb.counted_loop_carry(0, IMG, 1, &[(Type::F64, c[0])], |fb, j, cc| {
            let v = fb.load_idx(dst, &[i, j]);
            vec![fb.fadd(cc[0], v)]
        });
        vec![inner[0]]
    });
    outer[0]
}

/// One 3×3 convolution over the interior, taps applied at build time
/// (zero taps are skipped, matching what an unroller would emit).
fn conv3x3_module(name: &str, taps: [[f64; 3]; 3], post: Post) -> Module {
    let mut mb = ModuleBuilder::new(name);
    let src = mb.array("src", Type::F64, &[IMG as usize, IMG as usize]);
    let dst = mb.array("dst", Type::F64, &[IMG as usize, IMG as usize]);
    mb.function("main", &[], Some(Type::F64), |fb| {
        init_image(fb, src);
        fb.counted_loop(1, IMG - 1, 1, |fb, i| {
            fb.counted_loop(1, IMG - 1, 1, |fb, j| {
                let mut acc = fb.fconst(0.0);
                for (di, row) in taps.iter().enumerate() {
                    for (dj, &w) in row.iter().enumerate() {
                        if w == 0.0 {
                            continue;
                        }
                        let ri = fb.add(i, fb.iconst(di as i64 - 1));
                        let rj = fb.add(j, fb.iconst(dj as i64 - 1));
                        let px = fb.load_idx(src, &[ri, rj]);
                        let t = fb.fmul(px, fb.fconst(w));
                        acc = fb.fadd(acc, t);
                    }
                }
                let out = match post {
                    Post::Id => acc,
                    Post::Abs => fb.fabs(acc),
                    Post::Relu => fb.fmax(acc, fb.fconst(0.0)),
                };
                fb.store_idx(dst, &[i, j], out);
            });
        });
        let sum = checksum_image(fb, dst);
        fb.ret(Some(sum));
    });
    mb.finish()
}

/// Morphological erosion/dilation: running `fmin`/`fmax` over the 3×3 window.
fn morph3x3_module(name: &str, op: BinOp) -> Module {
    let mut mb = ModuleBuilder::new(name);
    let src = mb.array("src", Type::F64, &[IMG as usize, IMG as usize]);
    let dst = mb.array("dst", Type::F64, &[IMG as usize, IMG as usize]);
    mb.function("main", &[], Some(Type::F64), |fb| {
        init_image(fb, src);
        fb.counted_loop(1, IMG - 1, 1, |fb, i| {
            fb.counted_loop(1, IMG - 1, 1, |fb, j| {
                let mut acc = None;
                for di in -1i64..=1 {
                    for dj in -1i64..=1 {
                        let ri = fb.add(i, fb.iconst(di));
                        let rj = fb.add(j, fb.iconst(dj));
                        let px = fb.load_idx(src, &[ri, rj]);
                        acc = Some(match acc {
                            None => px,
                            Some(a) => fb.binary(op, Type::F64, a, px),
                        });
                    }
                }
                fb.store_idx(dst, &[i, j], acc.expect("window is non-empty"));
            });
        });
        let sum = checksum_image(fb, dst);
        fb.ret(Some(sum));
    });
    mb.finish()
}

/// Sobel gradient magnitude: two directional convolutions fused in one loop
/// nest, combined with `sqrt(gx² + gy²)` — a long straight-line float chain.
fn gradient_mag_module() -> Module {
    let mut mb = ModuleBuilder::new("gradient-mag");
    let src = mb.array("src", Type::F64, &[IMG as usize, IMG as usize]);
    let dst = mb.array("dst", Type::F64, &[IMG as usize, IMG as usize]);
    let gx_taps = [[-1.0, 0.0, 1.0], [-2.0, 0.0, 2.0], [-1.0, 0.0, 1.0]];
    let gy_taps = [[-1.0, -2.0, -1.0], [0.0, 0.0, 0.0], [1.0, 2.0, 1.0]];
    mb.function("main", &[], Some(Type::F64), |fb| {
        init_image(fb, src);
        fb.counted_loop(1, IMG - 1, 1, |fb, i| {
            fb.counted_loop(1, IMG - 1, 1, |fb, j| {
                let mut gx = fb.fconst(0.0);
                let mut gy = fb.fconst(0.0);
                for di in 0..3usize {
                    for dj in 0..3usize {
                        let (wx, wy) = (gx_taps[di][dj], gy_taps[di][dj]);
                        if wx == 0.0 && wy == 0.0 {
                            continue;
                        }
                        let ri = fb.add(i, fb.iconst(di as i64 - 1));
                        let rj = fb.add(j, fb.iconst(dj as i64 - 1));
                        let px = fb.load_idx(src, &[ri, rj]);
                        if wx != 0.0 {
                            let t = fb.fmul(px, fb.fconst(wx));
                            gx = fb.fadd(gx, t);
                        }
                        if wy != 0.0 {
                            let t = fb.fmul(px, fb.fconst(wy));
                            gy = fb.fadd(gy, t);
                        }
                    }
                }
                let gx2 = fb.fmul(gx, gx);
                let gy2 = fb.fmul(gy, gy);
                let s = fb.fadd(gx2, gy2);
                let mag = fb.sqrt(s);
                fb.store_idx(dst, &[i, j], mag);
            });
        });
        let sum = checksum_image(fb, dst);
        fb.ret(Some(sum));
    });
    mb.finish()
}

// ---- control domain --------------------------------------------------------

fn control_kernels() -> Vec<(String, Module)> {
    vec![
        ("fsm-scan".into(), fsm_scan_module()),
        ("rle-encode".into(), rle_encode_module()),
        ("saturate-acc".into(), saturate_acc_module()),
        ("hysteresis".into(), hysteresis_module()),
        ("zero-cross".into(), zero_cross_module()),
        ("peak-detect".into(), peak_detect_module()),
        ("quantize-ladder".into(), quantize_ladder_module()),
        ("debounce".into(), debounce_module()),
        ("clip-count".into(), clip_count_module()),
        ("branch-mix".into(), branch_mix_module()),
        ("argmax-scan".into(), argmax_scan_module()),
        ("run-threshold".into(), run_threshold_module()),
    ]
}

/// `data[i] = (i*a + b) mod m` over an `i64` signal array.
fn init_isignal(fb: &mut FunctionBuilder, data: ArrayId, a: i64, b: i64, m: i64) {
    fb.counted_loop(0, SIG, 1, |fb, i| {
        let t = fb.mul(i, fb.iconst(a));
        let s = fb.add(t, fb.iconst(b));
        let r = fb.srem(s, fb.iconst(m));
        fb.store_idx_ty(data, &[i], r, Type::I64);
    });
}

/// `data[i] = 0.2 * ((i*a + b) mod m - m/2)` over an `f64` signal array —
/// oscillates through zero so threshold kernels exercise both arms.
fn init_fsignal(fb: &mut FunctionBuilder, data: ArrayId, a: i64, b: i64, m: i64) {
    fb.counted_loop(0, SIG, 1, |fb, i| {
        let t = fb.mul(i, fb.iconst(a));
        let s = fb.add(t, fb.iconst(b));
        let r = fb.srem(s, fb.iconst(m));
        let c = fb.sub(r, fb.iconst(m / 2));
        let f = fb.sitofp(c);
        let v = fb.fmul(f, fb.fconst(0.2));
        fb.store_idx(data, &[i], v);
    });
}

/// Four-state accept scanner: `state' = d > 4 ? min(state+1, 3) : 0`,
/// counting visits to the accept state — the MLIR-CGRA style loop-carried
/// state machine with a data-dependent diamond in the loop body.
fn fsm_scan_module() -> Module {
    let mut mb = ModuleBuilder::new("fsm-scan");
    let data = mb.array("data", Type::I64, &[SIG as usize]);
    mb.function("main", &[], Some(Type::I64), |fb| {
        init_isignal(fb, data, 13, 5, 9);
        let zero = fb.iconst(0);
        let finals = fb.counted_loop_carry(
            0,
            SIG,
            1,
            &[(Type::I64, zero), (Type::I64, zero)],
            |fb, i, c| {
                let (state, accepts) = (c[0], c[1]);
                let d = fb.load_idx_ty(data, &[i], Type::I64);
                let hot = fb.cmp(CmpPred::Gt, Type::I64, d, fb.iconst(4));
                let next = fb.if_then_else_val(
                    hot,
                    Type::I64,
                    |fb| {
                        let s1 = fb.add(state, fb.iconst(1));
                        fb.binary(BinOp::Min, Type::I64, s1, fb.iconst(3))
                    },
                    |fb| fb.iconst(0),
                );
                let accept = fb.icmp_eq(next, fb.iconst(3));
                let inc = fb.select(accept, Type::I64, fb.iconst(1), fb.iconst(0));
                let accepts2 = fb.add(accepts, inc);
                vec![next, accepts2]
            },
        );
        fb.ret(Some(finals[1]));
    });
    mb.finish()
}

/// Run-length encoder: emits `(value, run)` pairs when the carried previous
/// value changes; the emission happens inside the taken branch only.
fn rle_encode_module() -> Module {
    let mut mb = ModuleBuilder::new("rle-encode");
    let data = mb.array("data", Type::I64, &[SIG as usize]);
    let runs = mb.array("runs", Type::I64, &[SIG as usize]);
    mb.function("main", &[], Some(Type::I64), |fb| {
        // Plateau-shaped input: d[i] = (i/7) mod 5 — runs of length 7.
        fb.counted_loop(0, SIG, 1, |fb, i| {
            let q = fb.sdiv(i, fb.iconst(7));
            let r = fb.srem(q, fb.iconst(5));
            fb.store_idx_ty(data, &[i], r, Type::I64);
        });
        let first = fb.load_idx_ty(data, &[fb.iconst(0)], Type::I64);
        let zero = fb.iconst(0);
        let one = fb.iconst(1);
        let finals = fb.counted_loop_carry(
            1,
            SIG,
            1,
            &[
                (Type::I64, first), // prev value
                (Type::I64, one),   // current run length
                (Type::I64, zero),  // output cursor
            ],
            |fb, i, c| {
                let (prev, run, pos) = (c[0], c[1], c[2]);
                let d = fb.load_idx_ty(data, &[i], Type::I64);
                let same = fb.icmp_eq(d, prev);
                let run2 = fb.if_then_else_val(
                    same,
                    Type::I64,
                    |fb| fb.add(run, fb.iconst(1)),
                    |fb| {
                        fb.store_idx_ty(runs, &[pos], run, Type::I64);
                        fb.iconst(1)
                    },
                );
                let pos_inc = fb.select(same, Type::I64, fb.iconst(0), fb.iconst(1));
                let pos2 = fb.add(pos, pos_inc);
                vec![d, run2, pos2]
            },
        );
        fb.ret(Some(finals[2]));
    });
    mb.finish()
}

/// Saturating accumulator: the sum is clamped to a cap through a branch (not
/// a select), and saturation events are counted.
fn saturate_acc_module() -> Module {
    let mut mb = ModuleBuilder::new("saturate-acc");
    let data = mb.array("data", Type::F64, &[SIG as usize]);
    mb.function("main", &[], Some(Type::F64), |fb| {
        init_fsignal(fb, data, 31, 3, 17);
        let fzero = fb.fconst(0.0);
        let izero = fb.iconst(0);
        let finals = fb.counted_loop_carry(
            0,
            SIG,
            1,
            &[(Type::F64, fzero), (Type::I64, izero)],
            |fb, i, c| {
                let (acc, sats) = (c[0], c[1]);
                let x = fb.load_idx(data, &[i]);
                let ax = fb.fabs(x);
                let sum = fb.fadd(acc, ax);
                let over = fb.fcmp_gt(sum, fb.fconst(8.0));
                let acc2 = fb.if_then_else_val(over, Type::F64, |fb| fb.fconst(8.0), |_| sum);
                let inc = fb.select(over, Type::I64, fb.iconst(1), fb.iconst(0));
                let sats2 = fb.add(sats, inc);
                vec![acc2, sats2]
            },
        );
        let sf = fb.sitofp(finals[1]);
        let out = fb.fadd(finals[0], sf);
        fb.ret(Some(out));
    });
    mb.finish()
}

/// Schmitt-trigger hysteresis: distinct high/low thresholds keyed on a
/// carried on/off state — nested data-dependent diamonds.
fn hysteresis_module() -> Module {
    let mut mb = ModuleBuilder::new("hysteresis");
    let data = mb.array("data", Type::F64, &[SIG as usize]);
    mb.function("main", &[], Some(Type::I64), |fb| {
        init_fsignal(fb, data, 37, 11, 19);
        let zero = fb.iconst(0);
        let finals = fb.counted_loop_carry(
            0,
            SIG,
            1,
            &[(Type::I64, zero), (Type::I64, zero)],
            |fb, i, c| {
                let (state, edges) = (c[0], c[1]);
                let x = fb.load_idx(data, &[i]);
                let off = fb.icmp_eq(state, fb.iconst(0));
                let next = fb.if_then_else_val(
                    off,
                    Type::I64,
                    |fb| {
                        let hi = fb.fcmp_gt(x, fb.fconst(1.2));
                        fb.select(hi, Type::I64, fb.iconst(1), fb.iconst(0))
                    },
                    |fb| {
                        let lo = fb.cmp(CmpPred::Lt, Type::F64, x, fb.fconst(-0.8));
                        fb.select(lo, Type::I64, fb.iconst(0), fb.iconst(1))
                    },
                );
                let flipped = fb.cmp(CmpPred::Ne, Type::I64, next, state);
                let inc = fb.select(flipped, Type::I64, fb.iconst(1), fb.iconst(0));
                let edges2 = fb.add(edges, inc);
                vec![next, edges2]
            },
        );
        fb.ret(Some(finals[1]));
    });
    mb.finish()
}

/// Zero-crossing counter over a carried previous sample.
fn zero_cross_module() -> Module {
    let mut mb = ModuleBuilder::new("zero-cross");
    let data = mb.array("data", Type::F64, &[SIG as usize]);
    mb.function("main", &[], Some(Type::I64), |fb| {
        init_fsignal(fb, data, 23, 7, 15);
        let first = fb.load_idx(data, &[fb.iconst(0)]);
        let zero = fb.iconst(0);
        let finals = fb.counted_loop_carry(
            1,
            SIG,
            1,
            &[(Type::F64, first), (Type::I64, zero)],
            |fb, i, c| {
                let (prev, count) = (c[0], c[1]);
                let x = fb.load_idx(data, &[i]);
                let prod = fb.fmul(prev, x);
                let neg = fb.cmp(CmpPred::Lt, Type::F64, prod, fb.fconst(0.0));
                let count2 = fb.if_then_else_val(
                    neg,
                    Type::I64,
                    |fb| fb.add(count, fb.iconst(1)),
                    |_| count,
                );
                vec![x, count2]
            },
        );
        fb.ret(Some(finals[1]));
    });
    mb.finish()
}

/// Local-maximum detector: nested `if` with a store on the doubly-guarded
/// path, so the hot path has memory side effects behind two branches.
fn peak_detect_module() -> Module {
    let mut mb = ModuleBuilder::new("peak-detect");
    let data = mb.array("data", Type::F64, &[SIG as usize]);
    let peaks = mb.array("peaks", Type::I64, &[SIG as usize]);
    mb.function("main", &[], Some(Type::I64), |fb| {
        init_fsignal(fb, data, 29, 2, 23);
        let zero = fb.iconst(0);
        let finals = fb.counted_loop_carry(1, SIG - 1, 1, &[(Type::I64, zero)], |fb, i, c| {
            let count = c[0];
            let im1 = fb.sub(i, fb.iconst(1));
            let ip1 = fb.add(i, fb.iconst(1));
            let a = fb.load_idx(data, &[im1]);
            let b = fb.load_idx(data, &[i]);
            let cc = fb.load_idx(data, &[ip1]);
            let gt_prev = fb.fcmp_gt(b, a);
            let count2 = fb.if_then_else_val(
                gt_prev,
                Type::I64,
                |fb| {
                    let gt_next = fb.fcmp_gt(b, cc);
                    fb.if_then_else_val(
                        gt_next,
                        Type::I64,
                        |fb| {
                            fb.store_idx_ty(peaks, &[count], i, Type::I64);
                            fb.add(count, fb.iconst(1))
                        },
                        |_| count,
                    )
                },
                |_| count,
            );
            vec![count2]
        });
        fb.ret(Some(finals[0]));
    });
    mb.finish()
}

/// Four-level quantizer: an if/else ladder whose result indexes a histogram —
/// a data-dependent store address fed by control flow.
fn quantize_ladder_module() -> Module {
    let mut mb = ModuleBuilder::new("quantize-ladder");
    let data = mb.array("data", Type::F64, &[SIG as usize]);
    let hist = mb.array("hist", Type::I64, &[4]);
    mb.function("main", &[], Some(Type::I64), |fb| {
        init_fsignal(fb, data, 41, 13, 21);
        fb.counted_loop(0, SIG, 1, |fb, i| {
            let x = fb.load_idx(data, &[i]);
            let lt0 = fb.cmp(CmpPred::Lt, Type::F64, x, fb.fconst(-1.0));
            let level = fb.if_then_else_val(
                lt0,
                Type::I64,
                |fb| fb.iconst(0),
                |fb| {
                    let lt1 = fb.cmp(CmpPred::Lt, Type::F64, x, fb.fconst(0.0));
                    fb.if_then_else_val(
                        lt1,
                        Type::I64,
                        |fb| fb.iconst(1),
                        |fb| {
                            let lt2 = fb.cmp(CmpPred::Lt, Type::F64, x, fb.fconst(1.0));
                            fb.select(lt2, Type::I64, fb.iconst(2), fb.iconst(3))
                        },
                    )
                },
            );
            let old = fb.load_idx_ty(hist, &[level], Type::I64);
            let new = fb.add(old, fb.iconst(1));
            fb.store_idx_ty(hist, &[level], new, Type::I64);
        });
        let h0 = fb.load_idx_ty(hist, &[fb.iconst(0)], Type::I64);
        let h1 = fb.load_idx_ty(hist, &[fb.iconst(1)], Type::I64);
        let h3 = fb.load_idx_ty(hist, &[fb.iconst(3)], Type::I64);
        let s = fb.add(h0, h1);
        let t = fb.mul(h3, fb.iconst(1000));
        let out = fb.add(s, t);
        fb.ret(Some(out));
    });
    mb.finish()
}

/// Debouncer: a counter-based state machine that only commits a new level
/// after three consecutive confirming samples.
fn debounce_module() -> Module {
    let mut mb = ModuleBuilder::new("debounce");
    let data = mb.array("data", Type::I64, &[SIG as usize]);
    mb.function("main", &[], Some(Type::I64), |fb| {
        init_isignal(fb, data, 19, 4, 11);
        let zero = fb.iconst(0);
        let finals = fb.counted_loop_carry(
            0,
            SIG,
            1,
            &[
                (Type::I64, zero), // committed level
                (Type::I64, zero), // confirmation counter
                (Type::I64, zero), // commits
            ],
            |fb, i, c| {
                let (level, cnt, commits) = (c[0], c[1], c[2]);
                let d = fb.load_idx_ty(data, &[i], Type::I64);
                let raw = fb.cmp(CmpPred::Gt, Type::I64, d, fb.iconst(5));
                let raw_lvl = fb.select(raw, Type::I64, fb.iconst(1), fb.iconst(0));
                let same = fb.icmp_eq(raw_lvl, level);
                let cnt2 = fb.if_then_else_val(
                    same,
                    Type::I64,
                    |fb| fb.iconst(0),
                    |fb| fb.add(cnt, fb.iconst(1)),
                );
                let commit = fb.cmp(CmpPred::Ge, Type::I64, cnt2, fb.iconst(3));
                let level2 = fb.select(commit, Type::I64, raw_lvl, level);
                let cnt3 = fb.select(commit, Type::I64, fb.iconst(0), cnt2);
                let inc = fb.select(commit, Type::I64, fb.iconst(1), fb.iconst(0));
                let commits2 = fb.add(commits, inc);
                vec![level2, cnt3, commits2]
            },
        );
        fb.ret(Some(finals[2]));
    });
    mb.finish()
}

/// Clipper: clamps samples to `[-1, 1]` through a two-armed ladder of real
/// branches and counts how many samples were clipped.
fn clip_count_module() -> Module {
    let mut mb = ModuleBuilder::new("clip-count");
    let data = mb.array("data", Type::F64, &[SIG as usize]);
    let out = mb.array("out", Type::F64, &[SIG as usize]);
    mb.function("main", &[], Some(Type::F64), |fb| {
        init_fsignal(fb, data, 43, 9, 25);
        let zero = fb.iconst(0);
        let finals = fb.counted_loop_carry(0, SIG, 1, &[(Type::I64, zero)], |fb, i, c| {
            let clips = c[0];
            let x = fb.load_idx(data, &[i]);
            let hi = fb.fcmp_gt(x, fb.fconst(1.0));
            let clips2 = fb.if_then_else_val(
                hi,
                Type::I64,
                |fb| {
                    fb.store_idx(out, &[i], fb.fconst(1.0));
                    fb.add(clips, fb.iconst(1))
                },
                |fb| {
                    let lo = fb.cmp(CmpPred::Lt, Type::F64, x, fb.fconst(-1.0));
                    fb.if_then_else_val(
                        lo,
                        Type::I64,
                        |fb| {
                            fb.store_idx(out, &[i], fb.fconst(-1.0));
                            fb.add(clips, fb.iconst(1))
                        },
                        |fb| {
                            fb.store_idx(out, &[i], x);
                            clips
                        },
                    )
                },
            );
            vec![clips2]
        });
        let sum = fb.counted_loop_carry(0, SIG, 1, &[(Type::F64, fb.fconst(0.0))], {
            |fb, i, c| {
                let v = fb.load_idx(out, &[i]);
                vec![fb.fadd(c[0], v)]
            }
        });
        let cf = fb.sitofp(finals[0]);
        let r = fb.fadd(sum[0], cf);
        fb.ret(Some(r));
    });
    mb.finish()
}

/// Parity-split update with a sign-dependent inner branch — the classic
/// branch-mix microkernel for predication studies.
fn branch_mix_module() -> Module {
    let mut mb = ModuleBuilder::new("branch-mix");
    let data = mb.array("data", Type::F64, &[SIG as usize]);
    let out = mb.array("out", Type::F64, &[SIG as usize]);
    mb.function("main", &[], Some(Type::F64), |fb| {
        init_fsignal(fb, data, 17, 6, 13);
        fb.counted_loop(0, SIG, 1, |fb, i| {
            let x = fb.load_idx(data, &[i]);
            let par = fb.and(i, fb.iconst(1));
            let even = fb.icmp_eq(par, fb.iconst(0));
            let v = fb.if_then_else_val(
                even,
                Type::F64,
                |fb| {
                    let pos = fb.fcmp_gt(x, fb.fconst(0.0));
                    fb.if_then_else_val(
                        pos,
                        Type::F64,
                        |fb| fb.fmul(x, x),
                        |fb| fb.fmul(x, fb.fconst(-0.5)),
                    )
                },
                |fb| fb.fadd(x, fb.fconst(1.0)),
            );
            fb.store_idx(out, &[i], v);
        });
        let sum = fb.counted_loop_carry(0, SIG, 1, &[(Type::F64, fb.fconst(0.0))], {
            |fb, i, c| {
                let v = fb.load_idx(out, &[i]);
                vec![fb.fadd(c[0], v)]
            }
        });
        fb.ret(Some(sum[0]));
    });
    mb.finish()
}

/// Argmax scan: carries the running maximum and its index through a branch.
fn argmax_scan_module() -> Module {
    let mut mb = ModuleBuilder::new("argmax-scan");
    let data = mb.array("data", Type::F64, &[SIG as usize]);
    mb.function("main", &[], Some(Type::I64), |fb| {
        init_fsignal(fb, data, 47, 21, 29);
        let first = fb.load_idx(data, &[fb.iconst(0)]);
        let zero = fb.iconst(0);
        let finals = fb.counted_loop_carry(
            1,
            SIG,
            1,
            &[(Type::F64, first), (Type::I64, zero)],
            |fb, i, c| {
                let (best, besti) = (c[0], c[1]);
                let x = fb.load_idx(data, &[i]);
                let better = fb.fcmp_gt(x, best);
                let best2 = fb.if_then_else_val(better, Type::F64, |_| x, |_| best);
                let besti2 = fb.select(better, Type::I64, i, besti);
                vec![best2, besti2]
            },
        );
        fb.ret(Some(finals[1]));
    });
    mb.finish()
}

/// Counts maximal runs of above-threshold samples: increments only on the
/// rising edge of the carried in-run flag.
fn run_threshold_module() -> Module {
    let mut mb = ModuleBuilder::new("run-threshold");
    let data = mb.array("data", Type::F64, &[SIG as usize]);
    mb.function("main", &[], Some(Type::I64), |fb| {
        init_fsignal(fb, data, 53, 17, 27);
        let zero = fb.iconst(0);
        let finals = fb.counted_loop_carry(
            0,
            SIG,
            1,
            &[(Type::I64, zero), (Type::I64, zero)],
            |fb, i, c| {
                let (inrun, runs) = (c[0], c[1]);
                let x = fb.load_idx(data, &[i]);
                let above = fb.fcmp_gt(x, fb.fconst(0.6));
                let inrun2 = fb.select(above, Type::I64, fb.iconst(1), fb.iconst(0));
                let was_out = fb.icmp_eq(inrun, fb.iconst(0));
                let runs2 = fb.if_then_else_val(
                    above,
                    Type::I64,
                    |fb| {
                        let inc = fb.select(was_out, Type::I64, fb.iconst(1), fb.iconst(0));
                        fb.add(runs, inc)
                    },
                    |_| runs,
                );
                vec![inrun2, runs2]
            },
        );
        fb.ret(Some(finals[1]));
    });
    mb.finish()
}

// ---- generated domain ------------------------------------------------------

/// Structured programs from `testkit::program` at fixed seeds, cycling three
/// shape flavours: default, deep (nesting-heavy), wide (statement-heavy).
fn generated_kernels() -> Vec<(String, Module)> {
    let deep = GenOptions {
        max_depth: 4,
        max_stmts: 2,
        ..GenOptions::default()
    };
    let wide = GenOptions {
        max_stmts: 5,
        max_arrays: 4,
        ..GenOptions::default()
    };
    let default = GenOptions::default();
    (0..GEN_COUNT)
        .map(|seed| {
            let opts = match seed % 3 {
                0 => &default,
                1 => &deep,
                _ => &wide,
            };
            let mut m = arbitrary_module_with(&mut Rng::new(0xC0_0501 + seed), opts);
            let name = format!("gen-s{seed:03}");
            m.name = name.clone();
            (name, m)
        })
        .collect()
}
