//! # cayman-workloads
//!
//! The 28 benchmark applications of the paper's evaluation (§IV-A), written
//! against the `cayman-ir` builder:
//!
//! * [`polybench`] — 16 PolyBench kernels (3mm … floyd-warshall),
//! * [`machsuite`] — fft, md, spmv, nw,
//! * [`mediabench`] — cjpeg, epic,
//! * [`coremark`] — cjpeg-rose, zip-test, parser, nnet-test, linear-alg,
//!   loops-all-mid-10k-sp.
//!
//! The PolyBench/MachSuite kernels follow their reference semantics at
//! reduced problem sizes (the interpreter is our profiling substrate; what
//! selection needs is the hotspot *structure*, which is size-independent).
//! The MediaBench/CoreMark-Pro programs are synthetic-but-representative
//! re-creations preserving each benchmark's control-flow and memory-access
//! character (documented per builder); the originals are not available as IR.
//!
//! ## Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let w = cayman_workloads::by_name("atax").expect("atax exists");
//! let profile = w.run()?;
//! assert!(profile.total_cycles > 0);
//! # Ok(())
//! # }
//! ```

pub mod coremark;
pub mod corpus;
pub mod data;
pub mod machsuite;
pub mod mediabench;
pub mod polybench;

use cayman_ir::interp::{ExecProfile, Interp, InterpError, Memory};
use cayman_ir::{ArrayId, Module};
use data::Fill;
use std::fmt;

/// Benchmark suite provenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Suite {
    /// PolyBench/C numerical kernels.
    PolyBench,
    /// MachSuite accelerator benchmarks.
    MachSuite,
    /// MediaBench multimedia applications.
    MediaBench,
    /// EEMBC CoreMark-Pro workloads.
    CoreMarkPro,
    /// Image-processing stencil kernels (text corpus, `kernels/stencil/`).
    Stencil,
    /// Control-heavy CGRA-style kernels (text corpus, `kernels/control/`).
    Control,
    /// Generator-derived structured programs (text corpus, `kernels/gen/`).
    Generated,
}

impl fmt::Display for Suite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Suite::PolyBench => "PolyB",
            Suite::MachSuite => "MachS",
            Suite::MediaBench => "Media",
            Suite::CoreMarkPro => "CoreM",
            Suite::Stencil => "Stenc",
            Suite::Control => "Contr",
            Suite::Generated => "Gener",
        };
        f.write_str(s)
    }
}

/// One benchmark application: a verified module plus input-data specs.
pub struct Workload {
    /// Suite provenance.
    pub suite: Suite,
    /// Benchmark name as reported in Table II.
    pub name: &'static str,
    /// The application.
    pub module: Module,
    /// Input fills, applied in order; unlisted arrays stay zeroed.
    pub fills: Vec<(ArrayId, Fill)>,
}

impl fmt::Debug for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Workload")
            .field("suite", &self.suite)
            .field("name", &self.name)
            .field("functions", &self.module.functions.len())
            .finish()
    }
}

impl Workload {
    /// A memory image with all inputs filled (deterministic).
    pub fn memory(&self) -> Memory {
        let mut mem = Memory::for_module(&self.module);
        for &(a, fill) in &self.fills {
            data::apply(&self.module, &mut mem, a, fill, 0xCA_1321);
        }
        mem
    }

    /// Runs the workload under the profiling interpreter.
    ///
    /// # Errors
    ///
    /// Propagates interpreter failures (which indicate a kernel bug — the
    /// suite's tests execute every workload).
    pub fn run(&self) -> Result<ExecProfile, InterpError> {
        let mut interp = Interp::new(&self.module);
        interp.memory = self.memory();
        interp.run(&[])
    }
}

/// All 28 benchmarks, in Table II order.
pub fn all() -> Vec<Workload> {
    let mut v = polybench::all();
    v.extend(machsuite::all());
    v.extend(mediabench::all());
    v.extend(coremark::all());
    v
}

/// The full registry: the 28 builder benchmarks followed by the text-fixture
/// [`corpus`] (100+ kernels under `kernels/`).
pub fn full() -> Vec<Workload> {
    let mut v = all();
    v.extend(corpus::corpus());
    v
}

/// Looks a workload up by name, searching the Table II benchmarks first and
/// then the text corpus.
pub fn by_name(name: &str) -> Option<Workload> {
    all()
        .into_iter()
        .find(|w| w.name == name)
        .or_else(|| corpus::corpus().into_iter().find(|w| w.name == name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_28_benchmarks() {
        let ws = all();
        assert_eq!(ws.len(), 28);
        assert_eq!(
            ws.iter().filter(|w| w.suite == Suite::PolyBench).count(),
            16
        );
        assert_eq!(ws.iter().filter(|w| w.suite == Suite::MachSuite).count(), 4);
        assert_eq!(
            ws.iter().filter(|w| w.suite == Suite::MediaBench).count(),
            2
        );
        assert_eq!(
            ws.iter().filter(|w| w.suite == Suite::CoreMarkPro).count(),
            6
        );
        // unique names
        let mut names: Vec<&str> = ws.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 28);
    }

    #[test]
    fn every_workload_verifies_and_runs() {
        for w in all() {
            w.module
                .verify()
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            let prof = w.run().unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert!(prof.total_cycles > 0, "{} did no work", w.name);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("3mm").is_some());
        assert!(by_name("loops-all-mid-10k-sp").is_some());
        assert!(by_name("nonexistent").is_none());
    }
}
