//! The four MachSuite benchmarks of Table II: `fft`, `md`, `spmv`, `nw`.
//!
//! Semantics follow the MachSuite reference kernels (fft/strided, md/knn,
//! spmv/crs, nw) at reduced sizes. These four stress exactly the behaviours
//! Table II attributes to them: symbolic strides (fft → coupled interfaces),
//! indirect neighbour/column indices (md, spmv → non-stream accesses), and
//! wavefront dependencies with conditionals (nw).

use crate::data::Fill;
use crate::{Suite, Workload};
use cayman_ir::builder::ModuleBuilder;
use cayman_ir::{BinOp, CmpPred, Type};

const F64: Type = Type::F64;
const I64: Type = Type::I64;

fn wl(
    name: &'static str,
    module: cayman_ir::Module,
    fills: Vec<(cayman_ir::ArrayId, Fill)>,
) -> Workload {
    Workload {
        suite: Suite::MachSuite,
        name,
        module,
        fills,
    }
}

/// `fft`: iterative radix-2 FFT over 64 points (strided butterflies; stride
/// changes per stage, so addresses are symbolic and stay on the coupled
/// interface — matching Table II's `#C = 4` for fft).
pub fn fft() -> Workload {
    const N: i64 = 64;
    const LOG_N: i64 = 6;
    let mut mb = ModuleBuilder::new("fft");
    let re = mb.array("re", F64, &[N as usize]);
    let im = mb.array("im", F64, &[N as usize]);
    let tw_re = mb.array("tw_re", F64, &[(N / 2) as usize]);
    let tw_im = mb.array("tw_im", F64, &[(N / 2) as usize]);
    let f = mb.function("fft_kernel", &[], None, |fb| {
        fb.counted_loop(0, LOG_N, 1, |fb, s| {
            let one = fb.iconst(1);
            let span = fb.shl(one, s); // 1 << s
            fb.counted_loop(0, N / 2, 1, |fb, k| {
                // group = k / span, pos = k % span
                let group = fb.sdiv(k, span);
                let pos = fb.srem(k, span);
                let two = fb.iconst(2);
                let g2 = fb.mul(group, two);
                let base = fb.mul(g2, span);
                let i0 = fb.add(base, pos);
                let i1 = fb.add(i0, span);
                // twiddle index = pos * (N/2 / span)
                let half = fb.iconst(N / 2);
                let tstep = fb.sdiv(half, span);
                let ti = fb.mul(pos, tstep);

                let er = fb.load_idx(re, &[i0]);
                let ei = fb.load_idx(im, &[i0]);
                let or_ = fb.load_idx(re, &[i1]);
                let oi = fb.load_idx(im, &[i1]);
                let wr = fb.load_idx(tw_re, &[ti]);
                let wi = fb.load_idx(tw_im, &[ti]);
                // t = w * odd
                let t1 = fb.fmul(wr, or_);
                let t2 = fb.fmul(wi, oi);
                let tr = fb.fsub(t1, t2);
                let t3 = fb.fmul(wr, oi);
                let t4 = fb.fmul(wi, or_);
                let tj = fb.fadd(t3, t4);
                // butterflies
                let nr0 = fb.fadd(er, tr);
                let ni0 = fb.fadd(ei, tj);
                let nr1 = fb.fsub(er, tr);
                let ni1 = fb.fsub(ei, tj);
                fb.store_idx(re, &[i0], nr0);
                fb.store_idx(im, &[i0], ni0);
                fb.store_idx(re, &[i1], nr1);
                fb.store_idx(im, &[i1], ni1);
            });
        });
        fb.ret(None);
    });
    mb.function("main", &[], None, |fb| {
        fb.call(f, &[], None);
        fb.ret(None);
    });
    wl(
        "fft",
        mb.finish(),
        vec![
            (re, Fill::F64Uniform { lo: -1.0, hi: 1.0 }),
            (im, Fill::F64Uniform { lo: -1.0, hi: 1.0 }),
            (tw_re, Fill::F64Uniform { lo: -1.0, hi: 1.0 }),
            (tw_im, Fill::F64Uniform { lo: -1.0, hi: 1.0 }),
        ],
    )
}

/// `md`: molecular-dynamics k-nearest-neighbour force computation
/// (Lennard-Jones; indirect neighbour indices defeat stream analysis).
pub fn md() -> Workload {
    const ATOMS: i64 = 48;
    const NEIGH: i64 = 12;
    let mut mb = ModuleBuilder::new("md");
    let px = mb.array("px", F64, &[ATOMS as usize]);
    let py = mb.array("py", F64, &[ATOMS as usize]);
    let pz = mb.array("pz", F64, &[ATOMS as usize]);
    let fx = mb.array("fx", F64, &[ATOMS as usize]);
    let fy = mb.array("fy", F64, &[ATOMS as usize]);
    let fz = mb.array("fz", F64, &[ATOMS as usize]);
    let neigh = mb.array("neigh", I64, &[ATOMS as usize, NEIGH as usize]);
    let f = mb.function("md_kernel", &[], None, |fb| {
        fb.counted_loop(0, ATOMS, 1, |fb, i| {
            let xi = fb.load_idx(px, &[i]);
            let yi = fb.load_idx(py, &[i]);
            let zi = fb.load_idx(pz, &[i]);
            let zero = fb.fconst(0.0);
            let sums = fb.counted_loop_carry(
                0,
                NEIGH,
                1,
                &[(F64, zero), (F64, zero), (F64, zero)],
                |fb, j, c| {
                    let n = fb.load_idx_ty(neigh, &[i, j], I64);
                    let xn = fb.load_idx(px, &[n]);
                    let yn = fb.load_idx(py, &[n]);
                    let zn = fb.load_idx(pz, &[n]);
                    let dx = fb.fsub(xi, xn);
                    let dy = fb.fsub(yi, yn);
                    let dz = fb.fsub(zi, zn);
                    let dx2 = fb.fmul(dx, dx);
                    let dy2 = fb.fmul(dy, dy);
                    let dz2 = fb.fmul(dz, dz);
                    let s1 = fb.fadd(dx2, dy2);
                    let r2 = fb.fadd(s1, dz2);
                    let eps = fb.fconst(0.01);
                    let r2e = fb.fadd(r2, eps);
                    let one = fb.fconst(1.0);
                    let r2inv = fb.fdiv(one, r2e);
                    let r4 = fb.fmul(r2inv, r2inv);
                    let r6 = fb.fmul(r4, r2inv);
                    let half = fb.fconst(0.5);
                    let rm = fb.fsub(r6, half);
                    let t = fb.fmul(r6, rm);
                    let force = fb.fmul(t, r2inv);
                    let fxd = fb.fmul(force, dx);
                    let fyd = fb.fmul(force, dy);
                    let fzd = fb.fmul(force, dz);
                    vec![fb.fadd(c[0], fxd), fb.fadd(c[1], fyd), fb.fadd(c[2], fzd)]
                },
            );
            fb.store_idx(fx, &[i], sums[0]);
            fb.store_idx(fy, &[i], sums[1]);
            fb.store_idx(fz, &[i], sums[2]);
        });
        fb.ret(None);
    });
    mb.function("main", &[], None, |fb| {
        fb.call(f, &[], None);
        fb.ret(None);
    });
    wl(
        "md",
        mb.finish(),
        vec![
            (px, Fill::F64Uniform { lo: 0.0, hi: 10.0 }),
            (py, Fill::F64Uniform { lo: 0.0, hi: 10.0 }),
            (pz, Fill::F64Uniform { lo: 0.0, hi: 10.0 }),
            (neigh, Fill::I64Uniform { lo: 0, hi: ATOMS }),
        ],
    )
}

/// `spmv`: CSR sparse matrix–vector product with dynamic row bounds and an
/// indirect column gather.
pub fn spmv() -> Workload {
    const ROWS: i64 = 64;
    const NNZ_PER_ROW: i64 = 8;
    const NNZ: i64 = ROWS * NNZ_PER_ROW;
    let mut mb = ModuleBuilder::new("spmv");
    let vals = mb.array("vals", F64, &[NNZ as usize]);
    let cols = mb.array("cols", I64, &[NNZ as usize]);
    let rowptr = mb.array("rowptr", I64, &[(ROWS + 1) as usize]);
    let x = mb.array("x", F64, &[ROWS as usize]);
    let y = mb.array("y", F64, &[ROWS as usize]);
    let f = mb.function("spmv_kernel", &[], None, |fb| {
        fb.counted_loop(0, ROWS, 1, |fb, i| {
            let begin = fb.load_idx_ty(rowptr, &[i], I64);
            let one = fb.iconst(1);
            let ip1 = fb.add(i, one);
            let end = fb.load_idx_ty(rowptr, &[ip1], I64);
            let zero = fb.fconst(0.0);
            let acc = fb.counted_loop_carry_dyn(begin, end, &[(F64, zero)], |fb, k, c| {
                let v = fb.load_idx(vals, &[k]);
                let col = fb.load_idx_ty(cols, &[k], I64);
                let xv = fb.load_idx(x, &[col]);
                let p = fb.fmul(v, xv);
                vec![fb.fadd(c[0], p)]
            });
            fb.store_idx(y, &[i], acc[0]);
        });
        fb.ret(None);
    });
    mb.function("main", &[], None, |fb| {
        fb.call(f, &[], None);
        fb.ret(None);
    });
    wl(
        "spmv",
        mb.finish(),
        vec![
            (vals, Fill::F64Uniform { lo: -1.0, hi: 1.0 }),
            (cols, Fill::I64Uniform { lo: 0, hi: ROWS }),
            (rowptr, Fill::I64Ramp { scale: NNZ_PER_ROW }),
            (x, Fill::F64Uniform { lo: -1.0, hi: 1.0 }),
        ],
    )
}

/// `nw`: Needleman–Wunsch sequence alignment — an integer dynamic-programming
/// wavefront with a match/mismatch conditional per cell.
pub fn nw() -> Workload {
    const N: i64 = 40;
    let mut mb = ModuleBuilder::new("nw");
    let d = (N + 1) as usize;
    let seq_a = mb.array("seq_a", I64, &[N as usize]);
    let seq_b = mb.array("seq_b", I64, &[N as usize]);
    let score = mb.array("score", I64, &[d, d]);
    let f = mb.function("nw_kernel", &[], None, |fb| {
        let gap = fb.iconst(-1);
        let mtch = fb.iconst(2);
        let miss = fb.iconst(-1);
        // boundary rows/cols
        fb.counted_loop(0, N + 1, 1, |fb, i| {
            let g = fb.mul(i, gap);
            let z = fb.iconst(0);
            fb.store_idx_ty(score, &[i, z], g, I64);
            fb.store_idx_ty(score, &[z, i], g, I64);
        });
        fb.counted_loop(1, N + 1, 1, |fb, i| {
            fb.counted_loop(1, N + 1, 1, |fb, j| {
                let one = fb.iconst(1);
                let im1 = fb.sub(i, one);
                let jm1 = fb.sub(j, one);
                let av = fb.load_idx_ty(seq_a, &[im1], I64);
                let bv = fb.load_idx_ty(seq_b, &[jm1], I64);
                let eq = fb.cmp(CmpPred::Eq, I64, av, bv);
                let sc = fb.select(eq, I64, mtch, miss);
                let diag = fb.load_idx_ty(score, &[im1, jm1], I64);
                let up = fb.load_idx_ty(score, &[im1, j], I64);
                let left = fb.load_idx_ty(score, &[i, jm1], I64);
                let c1 = fb.add(diag, sc);
                let c2 = fb.add(up, gap);
                let c3 = fb.add(left, gap);
                let m1 = fb.binary(BinOp::Max, I64, c1, c2);
                let m2 = fb.binary(BinOp::Max, I64, m1, c3);
                fb.store_idx_ty(score, &[i, j], m2, I64);
            });
        });
        fb.ret(None);
    });
    mb.function("main", &[], None, |fb| {
        fb.call(f, &[], None);
        fb.ret(None);
    });
    wl(
        "nw",
        mb.finish(),
        vec![
            (seq_a, Fill::I64Uniform { lo: 0, hi: 4 }),
            (seq_b, Fill::I64Uniform { lo: 0, hi: 4 }),
        ],
    )
}

/// All four MachSuite workloads.
pub fn all() -> Vec<Workload> {
    vec![fft(), md(), spmv(), nw()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cayman_ir::interp::Interp;

    #[test]
    fn spmv_matches_reference() {
        let w = spmv();
        w.module.verify().expect("verifies");
        let mem0 = w.memory();
        let mut interp = Interp::new(&w.module);
        interp.memory = w.memory();
        interp.run(&[]).expect("runs");
        let ids: Vec<cayman_ir::ArrayId> = w.module.array_ids().collect();
        let (vals, cols, rowptr, x, y) = (ids[0], ids[1], ids[2], ids[3], ids[4]);
        for i in 0..64usize {
            let b = mem0.get_i64(rowptr, i) as usize;
            let e = mem0.get_i64(rowptr, i + 1) as usize;
            let expect: f64 = (b..e)
                .map(|k| mem0.get_f64(vals, k) * mem0.get_f64(x, mem0.get_i64(cols, k) as usize))
                .sum();
            let got = interp.memory.get_f64(y, i);
            assert!((got - expect).abs() < 1e-9, "row {i}: {got} vs {expect}");
        }
    }

    #[test]
    fn nw_fills_the_score_matrix() {
        let w = nw();
        let mut interp = Interp::new(&w.module);
        interp.memory = w.memory();
        interp.run(&[]).expect("runs");
        let ids: Vec<cayman_ir::ArrayId> = w.module.array_ids().collect();
        let score = ids[2];
        // corner cell must be bounded by best/worst possible alignment score
        let corner = interp.memory.get_i64(score, 41 * 41 - 1);
        assert!((-3 * 40..=2 * 40).contains(&corner), "corner {corner}");
        // boundary is the gap ramp
        assert_eq!(interp.memory.get_i64(score, 3), -3);
    }

    #[test]
    fn fft_outputs_stay_finite() {
        let w = fft();
        let mut interp = Interp::new(&w.module);
        interp.memory = w.memory();
        interp.run(&[]).expect("runs");
        let ids: Vec<cayman_ir::ArrayId> = w.module.array_ids().collect();
        let re = ids[0];
        let sum: f64 = (0..64).map(|i| interp.memory.get_f64(re, i).abs()).sum();
        assert!(sum.is_finite() && sum > 0.0);
    }

    #[test]
    fn all_machsuite_run() {
        for w in all() {
            w.module
                .verify()
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            w.run().unwrap_or_else(|e| panic!("{}: {e}", w.name));
        }
    }
}
