//! The 16 PolyBench kernels of Table II, following the PolyBench/C reference
//! semantics at reduced problem sizes.
//!
//! Each benchmark is a whole *application*: kernels live in their own
//! functions, called from `main` — the shape the wPST's function vertices
//! expect (Fig. 2).

use crate::data::Fill;
use crate::{Suite, Workload};
use cayman_ir::builder::{FunctionBuilder, ModuleBuilder};
use cayman_ir::Type;

const F64: Type = Type::F64;

fn wl(
    name: &'static str,
    module: cayman_ir::Module,
    fills: Vec<(cayman_ir::ArrayId, Fill)>,
) -> Workload {
    Workload {
        suite: Suite::PolyBench,
        name,
        module,
        fills,
    }
}

fn uni() -> Fill {
    Fill::F64Uniform { lo: -1.0, hi: 1.0 }
}

/// Builds a dense matrix-multiply function `Z = X · Y` (`n×m · m×p`).
#[allow(clippy::too_many_arguments)]
fn mm_func(
    mb: &mut ModuleBuilder,
    name: &str,
    x: cayman_ir::ArrayId,
    y: cayman_ir::ArrayId,
    z: cayman_ir::ArrayId,
    n: i64,
    m: i64,
    p: i64,
) -> cayman_ir::FuncId {
    mb.function(name, &[], None, |fb| {
        fb.counted_loop(0, n, 1, |fb, i| {
            fb.counted_loop(0, p, 1, |fb, j| {
                let zero = fb.fconst(0.0);
                let acc = fb.counted_loop_carry(0, m, 1, &[(F64, zero)], |fb, k, c| {
                    let xv = fb.load_idx(x, &[i, k]);
                    let yv = fb.load_idx(y, &[k, j]);
                    let prod = fb.fmul(xv, yv);
                    vec![fb.fadd(c[0], prod)]
                });
                fb.store_idx(z, &[i, j], acc[0]);
            });
        });
        fb.ret(None);
    })
}

/// `3mm`: E = A·B, F = C·D, G = E·F — three structurally identical kernels,
/// the paper's showcase for accelerator merging (74% area saving).
pub fn three_mm() -> Workload {
    const N: i64 = 18;
    let mut mb = ModuleBuilder::new("3mm");
    let d = N as usize;
    let a = mb.array("A", F64, &[d, d]);
    let b = mb.array("B", F64, &[d, d]);
    let c = mb.array("C", F64, &[d, d]);
    let dd = mb.array("D", F64, &[d, d]);
    let e = mb.array("E", F64, &[d, d]);
    let f = mb.array("F", F64, &[d, d]);
    let g = mb.array("G", F64, &[d, d]);
    let f0 = mm_func(&mut mb, "mm_e", a, b, e, N, N, N);
    let f1 = mm_func(&mut mb, "mm_f", c, dd, f, N, N, N);
    let f2 = mm_func(&mut mb, "mm_g", e, f, g, N, N, N);
    mb.function("main", &[], None, |fb| {
        fb.call(f0, &[], None);
        fb.call(f1, &[], None);
        fb.call(f2, &[], None);
        fb.ret(None);
    });
    wl(
        "3mm",
        mb.finish(),
        vec![(a, uni()), (b, uni()), (c, uni()), (dd, uni())],
    )
}

/// `atax`: y = Aᵀ·(A·x).
pub fn atax() -> Workload {
    const N: i64 = 28;
    const M: i64 = 24;
    let mut mb = ModuleBuilder::new("atax");
    let a = mb.array("A", F64, &[N as usize, M as usize]);
    let x = mb.array("x", F64, &[M as usize]);
    let y = mb.array("y", F64, &[M as usize]);
    let f = mb.function("atax_kernel", &[], None, |fb| {
        fb.counted_loop(0, N, 1, |fb, i| {
            let zero = fb.fconst(0.0);
            let tmp = fb.counted_loop_carry(0, M, 1, &[(F64, zero)], |fb, j, c| {
                let av = fb.load_idx(a, &[i, j]);
                let xv = fb.load_idx(x, &[j]);
                let p = fb.fmul(av, xv);
                vec![fb.fadd(c[0], p)]
            });
            fb.counted_loop(0, M, 1, |fb, j| {
                let av = fb.load_idx(a, &[i, j]);
                let yv = fb.load_idx(y, &[j]);
                let p = fb.fmul(av, tmp[0]);
                let s = fb.fadd(yv, p);
                fb.store_idx(y, &[j], s);
            });
        });
        fb.ret(None);
    });
    mb.function("main", &[], None, |fb| {
        fb.call(f, &[], None);
        fb.ret(None);
    });
    wl("atax", mb.finish(), vec![(a, uni()), (x, uni())])
}

/// `bicg`: s = Aᵀ·r, q = A·p.
pub fn bicg() -> Workload {
    const N: i64 = 28;
    const M: i64 = 24;
    let mut mb = ModuleBuilder::new("bicg");
    let a = mb.array("A", F64, &[N as usize, M as usize]);
    let r = mb.array("r", F64, &[N as usize]);
    let p = mb.array("p", F64, &[M as usize]);
    let s = mb.array("s", F64, &[M as usize]);
    let q = mb.array("q", F64, &[N as usize]);
    let f = mb.function("bicg_kernel", &[], None, |fb| {
        fb.counted_loop(0, N, 1, |fb, i| {
            let rv = fb.load_idx(r, &[i]);
            let zero = fb.fconst(0.0);
            let qacc = fb.counted_loop_carry(0, M, 1, &[(F64, zero)], |fb, j, c| {
                let av = fb.load_idx(a, &[i, j]);
                let sv = fb.load_idx(s, &[j]);
                let t = fb.fmul(rv, av);
                let ns = fb.fadd(sv, t);
                fb.store_idx(s, &[j], ns);
                let pv = fb.load_idx(p, &[j]);
                let t2 = fb.fmul(av, pv);
                vec![fb.fadd(c[0], t2)]
            });
            fb.store_idx(q, &[i], qacc[0]);
        });
        fb.ret(None);
    });
    mb.function("main", &[], None, |fb| {
        fb.call(f, &[], None);
        fb.ret(None);
    });
    wl(
        "bicg",
        mb.finish(),
        vec![(a, uni()), (r, uni()), (p, uni())],
    )
}

/// `doitgen`: multiresolution analysis kernel — one centralised 4-deep nest.
pub fn doitgen() -> Workload {
    const R: i64 = 10;
    const Q: i64 = 10;
    const P: i64 = 12;
    let mut mb = ModuleBuilder::new("doitgen");
    let a = mb.array("A", F64, &[R as usize, Q as usize, P as usize]);
    let c4 = mb.array("C4", F64, &[P as usize, P as usize]);
    let sum = mb.array("sum", F64, &[P as usize]);
    let f = mb.function("doitgen_kernel", &[], None, |fb| {
        fb.counted_loop(0, R, 1, |fb, rr| {
            fb.counted_loop(0, Q, 1, |fb, qq| {
                fb.counted_loop(0, P, 1, |fb, pp| {
                    let zero = fb.fconst(0.0);
                    let acc = fb.counted_loop_carry(0, P, 1, &[(F64, zero)], |fb, ss, c| {
                        let av = fb.load_idx(a, &[rr, qq, ss]);
                        let cv = fb.load_idx(c4, &[ss, pp]);
                        let p = fb.fmul(av, cv);
                        vec![fb.fadd(c[0], p)]
                    });
                    fb.store_idx(sum, &[pp], acc[0]);
                });
                fb.counted_loop(0, P, 1, |fb, pp| {
                    let sv = fb.load_idx(sum, &[pp]);
                    fb.store_idx(a, &[rr, qq, pp], sv);
                });
            });
        });
        fb.ret(None);
    });
    mb.function("main", &[], None, |fb| {
        fb.call(f, &[], None);
        fb.ret(None);
    });
    wl("doitgen", mb.finish(), vec![(a, uni()), (c4, uni())])
}

/// `mvt`: x1 += A·y1, x2 += Aᵀ·y2.
pub fn mvt() -> Workload {
    const N: i64 = 28;
    let mut mb = ModuleBuilder::new("mvt");
    let d = N as usize;
    let a = mb.array("A", F64, &[d, d]);
    let x1 = mb.array("x1", F64, &[d]);
    let x2 = mb.array("x2", F64, &[d]);
    let y1 = mb.array("y1", F64, &[d]);
    let y2 = mb.array("y2", F64, &[d]);
    let f = mb.function("mvt_kernel", &[], None, |fb| {
        fb.counted_loop(0, N, 1, |fb, i| {
            let init = fb.load_idx(x1, &[i]);
            let acc = fb.counted_loop_carry(0, N, 1, &[(F64, init)], |fb, j, c| {
                let av = fb.load_idx(a, &[i, j]);
                let yv = fb.load_idx(y1, &[j]);
                let p = fb.fmul(av, yv);
                vec![fb.fadd(c[0], p)]
            });
            fb.store_idx(x1, &[i], acc[0]);
        });
        fb.counted_loop(0, N, 1, |fb, i| {
            let init = fb.load_idx(x2, &[i]);
            let acc = fb.counted_loop_carry(0, N, 1, &[(F64, init)], |fb, j, c| {
                let av = fb.load_idx(a, &[j, i]);
                let yv = fb.load_idx(y2, &[j]);
                let p = fb.fmul(av, yv);
                vec![fb.fadd(c[0], p)]
            });
            fb.store_idx(x2, &[i], acc[0]);
        });
        fb.ret(None);
    });
    mb.function("main", &[], None, |fb| {
        fb.call(f, &[], None);
        fb.ret(None);
    });
    wl(
        "mvt",
        mb.finish(),
        vec![
            (a, uni()),
            (x1, uni()),
            (x2, uni()),
            (y1, uni()),
            (y2, uni()),
        ],
    )
}

/// `symm`: symmetric matrix multiply (triangular inner loop).
pub fn symm() -> Workload {
    const N: i64 = 20;
    let mut mb = ModuleBuilder::new("symm");
    let d = N as usize;
    let a = mb.array("A", F64, &[d, d]);
    let b = mb.array("B", F64, &[d, d]);
    let c = mb.array("C", F64, &[d, d]);
    let f = mb.function("symm_kernel", &[], None, |fb| {
        let alpha = fb.fconst(1.5);
        let beta = fb.fconst(1.2);
        fb.counted_loop(0, N, 1, |fb, i| {
            fb.counted_loop(0, N, 1, |fb, j| {
                let bij = fb.load_idx(b, &[i, j]);
                let ab = fb.fmul(alpha, bij);
                let zero = fb.fconst(0.0);
                let s = fb.iconst(0);
                let temp2 = fb.counted_loop_carry_dyn(s, i, &[(F64, zero)], |fb, k, cc| {
                    let ckj = fb.load_idx(c, &[k, j]);
                    let aik = fb.load_idx(a, &[i, k]);
                    let t = fb.fmul(ab, aik);
                    let nc = fb.fadd(ckj, t);
                    fb.store_idx(c, &[k, j], nc);
                    let bkj = fb.load_idx(b, &[k, j]);
                    let t2 = fb.fmul(bkj, aik);
                    vec![fb.fadd(cc[0], t2)]
                });
                let cij = fb.load_idx(c, &[i, j]);
                let bc = fb.fmul(beta, cij);
                let aii = fb.load_idx(a, &[i, i]);
                let t3 = fb.fmul(ab, aii);
                let t4 = fb.fmul(alpha, temp2[0]);
                let s1 = fb.fadd(bc, t3);
                let s2 = fb.fadd(s1, t4);
                fb.store_idx(c, &[i, j], s2);
            });
        });
        fb.ret(None);
    });
    mb.function("main", &[], None, |fb| {
        fb.call(f, &[], None);
        fb.ret(None);
    });
    wl(
        "symm",
        mb.finish(),
        vec![(a, uni()), (b, uni()), (c, uni())],
    )
}

/// `syrk`: C = α·A·Aᵀ + β·C over the lower triangle.
pub fn syrk() -> Workload {
    const N: i64 = 20;
    const M: i64 = 16;
    let mut mb = ModuleBuilder::new("syrk");
    let a = mb.array("A", F64, &[N as usize, M as usize]);
    let c = mb.array("C", F64, &[N as usize, N as usize]);
    let f = mb.function("syrk_kernel", &[], None, |fb| {
        let alpha = fb.fconst(1.5);
        let beta = fb.fconst(1.2);
        fb.counted_loop(0, N, 1, |fb, i| {
            let one = fb.iconst(1);
            let iend = fb.add(i, one);
            let z = fb.iconst(0);
            fb.counted_loop_dyn(z, iend, 1, |fb, j| {
                let cv = fb.load_idx(c, &[i, j]);
                let sv = fb.fmul(cv, beta);
                fb.store_idx(c, &[i, j], sv);
            });
            fb.counted_loop(0, M, 1, |fb, k| {
                let z = fb.iconst(0);
                fb.counted_loop_dyn(z, iend, 1, |fb, j| {
                    let aik = fb.load_idx(a, &[i, k]);
                    let ajk = fb.load_idx(a, &[j, k]);
                    let t = fb.fmul(alpha, aik);
                    let t2 = fb.fmul(t, ajk);
                    let cv = fb.load_idx(c, &[i, j]);
                    let s = fb.fadd(cv, t2);
                    fb.store_idx(c, &[i, j], s);
                });
            });
        });
        fb.ret(None);
    });
    mb.function("main", &[], None, |fb| {
        fb.call(f, &[], None);
        fb.ret(None);
    });
    wl("syrk", mb.finish(), vec![(a, uni()), (c, uni())])
}

/// `trmm`: triangular matrix multiply.
pub fn trmm() -> Workload {
    const N: i64 = 20;
    let mut mb = ModuleBuilder::new("trmm");
    let d = N as usize;
    let a = mb.array("A", F64, &[d, d]);
    let b = mb.array("B", F64, &[d, d]);
    let f = mb.function("trmm_kernel", &[], None, |fb| {
        let alpha = fb.fconst(1.5);
        fb.counted_loop(0, N, 1, |fb, i| {
            fb.counted_loop(0, N, 1, |fb, j| {
                let one = fb.iconst(1);
                let start = fb.add(i, one);
                let init = fb.load_idx(b, &[i, j]);
                let n_end = fb.iconst(N);
                let acc = fb.counted_loop_carry_dyn(start, n_end, &[(F64, init)], |fb, k, c| {
                    let aki = fb.load_idx(a, &[k, i]);
                    let bkj = fb.load_idx(b, &[k, j]);
                    let p = fb.fmul(aki, bkj);
                    vec![fb.fadd(c[0], p)]
                });
                let scaled = fb.fmul(alpha, acc[0]);
                fb.store_idx(b, &[i, j], scaled);
            });
        });
        fb.ret(None);
    });
    mb.function("main", &[], None, |fb| {
        fb.call(f, &[], None);
        fb.ret(None);
    });
    wl("trmm", mb.finish(), vec![(a, uni()), (b, uni())])
}

/// `cholesky`: in-place Cholesky factorisation (sqrt + divisions, triangular
/// dynamic loop bounds).
pub fn cholesky() -> Workload {
    const N: i64 = 20;
    let mut mb = ModuleBuilder::new("cholesky");
    let d = N as usize;
    let a = mb.array("A", F64, &[d, d]);
    let f = mb.function("cholesky_kernel", &[], None, |fb| {
        fb.counted_loop(0, N, 1, |fb, i| {
            let z = fb.iconst(0);
            fb.counted_loop_dyn(z, i, 1, |fb, j| {
                let z2 = fb.iconst(0);
                let init = fb.load_idx(a, &[i, j]);
                let acc = fb.counted_loop_carry_dyn(z2, j, &[(F64, init)], |fb, k, c| {
                    let aik = fb.load_idx(a, &[i, k]);
                    let ajk = fb.load_idx(a, &[j, k]);
                    let p = fb.fmul(aik, ajk);
                    vec![fb.fsub(c[0], p)]
                });
                let ajj = fb.load_idx(a, &[j, j]);
                let q = fb.fdiv(acc[0], ajj);
                fb.store_idx(a, &[i, j], q);
            });
            let z3 = fb.iconst(0);
            let init = fb.load_idx(a, &[i, i]);
            let acc = fb.counted_loop_carry_dyn(z3, i, &[(F64, init)], |fb, k, c| {
                let aik = fb.load_idx(a, &[i, k]);
                let p = fb.fmul(aik, aik);
                vec![fb.fsub(c[0], p)]
            });
            let r = fb.sqrt(acc[0]);
            fb.store_idx(a, &[i, i], r);
        });
        fb.ret(None);
    });
    mb.function("main", &[], None, |fb| {
        fb.call(f, &[], None);
        fb.ret(None);
    });
    wl("cholesky", mb.finish(), vec![(a, Fill::SpdMatrix)])
}

/// `gramschmidt`: modified Gram–Schmidt QR.
pub fn gramschmidt() -> Workload {
    const N: i64 = 18; // rows
    const M: i64 = 14; // cols
    let mut mb = ModuleBuilder::new("gramschmidt");
    let a = mb.array("A", F64, &[N as usize, M as usize]);
    let q = mb.array("Q", F64, &[N as usize, M as usize]);
    let r = mb.array("R", F64, &[M as usize, M as usize]);
    let f = mb.function("gramschmidt_kernel", &[], None, |fb| {
        fb.counted_loop(0, M, 1, |fb, k| {
            let zero = fb.fconst(0.0);
            let nrm = fb.counted_loop_carry(0, N, 1, &[(F64, zero)], |fb, i, c| {
                let av = fb.load_idx(a, &[i, k]);
                let p = fb.fmul(av, av);
                vec![fb.fadd(c[0], p)]
            });
            let rkk = fb.sqrt(nrm[0]);
            fb.store_idx(r, &[k, k], rkk);
            fb.counted_loop(0, N, 1, |fb, i| {
                let av = fb.load_idx(a, &[i, k]);
                let qv = fb.fdiv(av, rkk);
                fb.store_idx(q, &[i, k], qv);
            });
            let one = fb.iconst(1);
            let kp1 = fb.add(k, one);
            let m_end = fb.iconst(M);
            fb.counted_loop_dyn(kp1, m_end, 1, |fb, j| {
                let zero = fb.fconst(0.0);
                let rkj = fb.counted_loop_carry(0, N, 1, &[(F64, zero)], |fb, i, c| {
                    let qv = fb.load_idx(q, &[i, k]);
                    let av = fb.load_idx(a, &[i, j]);
                    let p = fb.fmul(qv, av);
                    vec![fb.fadd(c[0], p)]
                });
                fb.store_idx(r, &[k, j], rkj[0]);
                fb.counted_loop(0, N, 1, |fb, i| {
                    let av = fb.load_idx(a, &[i, j]);
                    let qv = fb.load_idx(q, &[i, k]);
                    let p = fb.fmul(qv, rkj[0]);
                    let nv = fb.fsub(av, p);
                    fb.store_idx(a, &[i, j], nv);
                });
            });
        });
        fb.ret(None);
    });
    mb.function("main", &[], None, |fb| {
        fb.call(f, &[], None);
        fb.ret(None);
    });
    wl(
        "gramschmidt",
        mb.finish(),
        vec![(a, Fill::F64Uniform { lo: 0.5, hi: 2.0 })],
    )
}

/// `lu`: in-place LU decomposition (triangular dynamic bounds).
pub fn lu() -> Workload {
    const N: i64 = 20;
    let mut mb = ModuleBuilder::new("lu");
    let d = N as usize;
    let a = mb.array("A", F64, &[d, d]);
    let f = mb.function("lu_kernel", &[], None, |fb| {
        fb.counted_loop(0, N, 1, |fb, i| {
            let z = fb.iconst(0);
            fb.counted_loop_dyn(z, i, 1, |fb, j| {
                let z2 = fb.iconst(0);
                let init = fb.load_idx(a, &[i, j]);
                let acc = fb.counted_loop_carry_dyn(z2, j, &[(F64, init)], |fb, k, c| {
                    let aik = fb.load_idx(a, &[i, k]);
                    let akj = fb.load_idx(a, &[k, j]);
                    let p = fb.fmul(aik, akj);
                    vec![fb.fsub(c[0], p)]
                });
                let ajj = fb.load_idx(a, &[j, j]);
                let q = fb.fdiv(acc[0], ajj);
                fb.store_idx(a, &[i, j], q);
            });
            let n_end = fb.iconst(N);
            fb.counted_loop_dyn(i, n_end, 1, |fb, j| {
                let z3 = fb.iconst(0);
                let init = fb.load_idx(a, &[i, j]);
                let acc = fb.counted_loop_carry_dyn(z3, i, &[(F64, init)], |fb, k, c| {
                    let aik = fb.load_idx(a, &[i, k]);
                    let akj = fb.load_idx(a, &[k, j]);
                    let p = fb.fmul(aik, akj);
                    vec![fb.fsub(c[0], p)]
                });
                fb.store_idx(a, &[i, j], acc[0]);
            });
        });
        fb.ret(None);
    });
    mb.function("main", &[], None, |fb| {
        fb.call(f, &[], None);
        fb.ret(None);
    });
    wl("lu", mb.finish(), vec![(a, Fill::SpdMatrix)])
}

/// `trisolv`: forward substitution for a lower-triangular system.
pub fn trisolv() -> Workload {
    const N: i64 = 32;
    let mut mb = ModuleBuilder::new("trisolv");
    let d = N as usize;
    let l = mb.array("L", F64, &[d, d]);
    let x = mb.array("x", F64, &[d]);
    let b = mb.array("b", F64, &[d]);
    let f = mb.function("trisolv_kernel", &[], None, |fb| {
        fb.counted_loop(0, N, 1, |fb, i| {
            let z = fb.iconst(0);
            let init = fb.load_idx(b, &[i]);
            let acc = fb.counted_loop_carry_dyn(z, i, &[(F64, init)], |fb, j, c| {
                let lv = fb.load_idx(l, &[i, j]);
                let xv = fb.load_idx(x, &[j]);
                let p = fb.fmul(lv, xv);
                vec![fb.fsub(c[0], p)]
            });
            let lii = fb.load_idx(l, &[i, i]);
            let xv = fb.fdiv(acc[0], lii);
            fb.store_idx(x, &[i], xv);
        });
        fb.ret(None);
    });
    mb.function("main", &[], None, |fb| {
        fb.call(f, &[], None);
        fb.ret(None);
    });
    wl(
        "trisolv",
        mb.finish(),
        vec![(l, Fill::SpdMatrix), (b, uni())],
    )
}

/// `covariance`: mean subtraction + upper-triangular covariance.
pub fn covariance() -> Workload {
    const N: i64 = 20; // observations
    const M: i64 = 16; // variables
    let mut mb = ModuleBuilder::new("covariance");
    let data = mb.array("data", F64, &[N as usize, M as usize]);
    let mean = mb.array("mean", F64, &[M as usize]);
    let cov = mb.array("cov", F64, &[M as usize, M as usize]);
    let f = mb.function("covariance_kernel", &[], None, |fb| {
        let nf = fb.fconst(N as f64);
        fb.counted_loop(0, M, 1, |fb, j| {
            let zero = fb.fconst(0.0);
            let acc = fb.counted_loop_carry(0, N, 1, &[(F64, zero)], |fb, i, c| {
                let dv = fb.load_idx(data, &[i, j]);
                vec![fb.fadd(c[0], dv)]
            });
            let m = fb.fdiv(acc[0], nf);
            fb.store_idx(mean, &[j], m);
        });
        fb.counted_loop(0, N, 1, |fb, i| {
            fb.counted_loop(0, M, 1, |fb, j| {
                let dv = fb.load_idx(data, &[i, j]);
                let mv = fb.load_idx(mean, &[j]);
                let nd = fb.fsub(dv, mv);
                fb.store_idx(data, &[i, j], nd);
            });
        });
        let nm1 = fb.fconst((N - 1) as f64);
        fb.counted_loop(0, M, 1, |fb, i| {
            let m_end = fb.iconst(M);
            fb.counted_loop_dyn(i, m_end, 1, |fb, j| {
                let zero = fb.fconst(0.0);
                let acc = fb.counted_loop_carry(0, N, 1, &[(F64, zero)], |fb, k, c| {
                    let d1 = fb.load_idx(data, &[k, i]);
                    let d2 = fb.load_idx(data, &[k, j]);
                    let p = fb.fmul(d1, d2);
                    vec![fb.fadd(c[0], p)]
                });
                let v = fb.fdiv(acc[0], nm1);
                fb.store_idx(cov, &[i, j], v);
                fb.store_idx(cov, &[j, i], v);
            });
        });
        fb.ret(None);
    });
    mb.function("main", &[], None, |fb| {
        fb.call(f, &[], None);
        fb.ret(None);
    });
    wl("covariance", mb.finish(), vec![(data, uni())])
}

/// `jacobi-2d`: 5-point stencil, alternating buffers, T time steps.
pub fn jacobi_2d() -> Workload {
    const N: i64 = 20;
    const T: i64 = 6;
    let mut mb = ModuleBuilder::new("jacobi-2d");
    let d = N as usize;
    let a = mb.array("A", F64, &[d, d]);
    let b = mb.array("B", F64, &[d, d]);
    let stencil = |fb: &mut FunctionBuilder, src: cayman_ir::ArrayId, dst: cayman_ir::ArrayId| {
        fb.counted_loop(1, N - 1, 1, |fb, i| {
            fb.counted_loop(1, N - 1, 1, |fb, j| {
                let one = fb.iconst(1);
                let im1 = fb.sub(i, one);
                let ip1 = fb.add(i, one);
                let jm1 = fb.sub(j, one);
                let jp1 = fb.add(j, one);
                let c = fb.load_idx(src, &[i, j]);
                let l = fb.load_idx(src, &[i, jm1]);
                let r = fb.load_idx(src, &[i, jp1]);
                let u = fb.load_idx(src, &[im1, j]);
                let dn = fb.load_idx(src, &[ip1, j]);
                let s1 = fb.fadd(c, l);
                let s2 = fb.fadd(s1, r);
                let s3 = fb.fadd(s2, u);
                let s4 = fb.fadd(s3, dn);
                let k = fb.fconst(0.2);
                let v = fb.fmul(k, s4);
                fb.store_idx(dst, &[i, j], v);
            });
        });
    };
    let f = mb.function("jacobi_kernel", &[], None, |fb| {
        fb.counted_loop(0, T, 1, |fb, _t| {
            stencil(fb, a, b);
            stencil(fb, b, a);
        });
        fb.ret(None);
    });
    mb.function("main", &[], None, |fb| {
        fb.call(f, &[], None);
        fb.ret(None);
    });
    wl("jacobi-2d", mb.finish(), vec![(a, uni())])
}

/// `deriche`: recursive edge-detection filter — serial scan recurrences give
/// genuine floating-point loop-carried dependencies (the paper reports only
/// modest speedups here).
pub fn deriche() -> Workload {
    const W: i64 = 24;
    const H: i64 = 20;
    let mut mb = ModuleBuilder::new("deriche");
    let img = mb.array("img", F64, &[H as usize, W as usize]);
    let y1 = mb.array("y1", F64, &[H as usize, W as usize]);
    let y2 = mb.array("y2", F64, &[H as usize, W as usize]);
    let out = mb.array("out", F64, &[H as usize, W as usize]);
    let f = mb.function("deriche_kernel", &[], None, |fb| {
        let a1 = fb.fconst(0.25);
        let b1 = fb.fconst(0.6);
        // horizontal forward scan: y1[i][j] = a1·x[i][j] + b1·y1[i][j-1]
        fb.counted_loop(0, H, 1, |fb, i| {
            let zero = fb.fconst(0.0);
            fb.counted_loop_carry(0, W, 1, &[(F64, zero)], |fb, j, c| {
                let xv = fb.load_idx(img, &[i, j]);
                let t1 = fb.fmul(a1, xv);
                let t2 = fb.fmul(b1, c[0]);
                let v = fb.fadd(t1, t2);
                fb.store_idx(y1, &[i, j], v);
                vec![v]
            });
        });
        // horizontal backward scan into y2
        fb.counted_loop(0, H, 1, |fb, i| {
            let zero = fb.fconst(0.0);
            fb.counted_loop_carry(W - 1, -1, -1, &[(F64, zero)], |fb, j, c| {
                let xv = fb.load_idx(img, &[i, j]);
                let t1 = fb.fmul(a1, xv);
                let t2 = fb.fmul(b1, c[0]);
                let v = fb.fadd(t1, t2);
                fb.store_idx(y2, &[i, j], v);
                vec![v]
            });
        });
        // combine
        fb.counted_loop(0, H, 1, |fb, i| {
            fb.counted_loop(0, W, 1, |fb, j| {
                let v1 = fb.load_idx(y1, &[i, j]);
                let v2 = fb.load_idx(y2, &[i, j]);
                let s = fb.fadd(v1, v2);
                fb.store_idx(out, &[i, j], s);
            });
        });
        // vertical forward scan over out (in place through y1 as scratch)
        fb.counted_loop(0, W, 1, |fb, j| {
            let zero = fb.fconst(0.0);
            fb.counted_loop_carry(0, H, 1, &[(F64, zero)], |fb, i, c| {
                let xv = fb.load_idx(out, &[i, j]);
                let t1 = fb.fmul(a1, xv);
                let t2 = fb.fmul(b1, c[0]);
                let v = fb.fadd(t1, t2);
                fb.store_idx(y1, &[i, j], v);
                vec![v]
            });
        });
        fb.ret(None);
    });
    mb.function("main", &[], None, |fb| {
        fb.call(f, &[], None);
        fb.ret(None);
    });
    wl(
        "deriche",
        mb.finish(),
        vec![(img, Fill::F64Uniform { lo: 0.0, hi: 255.0 })],
    )
}

/// `floyd-warshall`: all-pairs shortest paths (min-plus, 3-deep nest).
pub fn floyd_warshall() -> Workload {
    const N: i64 = 16;
    let mut mb = ModuleBuilder::new("floyd-warshall");
    let d = N as usize;
    let path = mb.array("path", F64, &[d, d]);
    let f = mb.function("floyd_kernel", &[], None, |fb| {
        fb.counted_loop(0, N, 1, |fb, k| {
            fb.counted_loop(0, N, 1, |fb, i| {
                fb.counted_loop(0, N, 1, |fb, j| {
                    let dij = fb.load_idx(path, &[i, j]);
                    let dik = fb.load_idx(path, &[i, k]);
                    let dkj = fb.load_idx(path, &[k, j]);
                    let via = fb.fadd(dik, dkj);
                    let m = fb.binary(cayman_ir::BinOp::FMin, F64, dij, via);
                    fb.store_idx(path, &[i, j], m);
                });
            });
        });
        fb.ret(None);
    });
    mb.function("main", &[], None, |fb| {
        fb.call(f, &[], None);
        fb.ret(None);
    });
    wl(
        "floyd-warshall",
        mb.finish(),
        vec![(path, Fill::F64Uniform { lo: 1.0, hi: 100.0 })],
    )
}

/// All 16 PolyBench workloads in Table II order.
pub fn all() -> Vec<Workload> {
    vec![
        three_mm(),
        atax(),
        bicg(),
        doitgen(),
        mvt(),
        symm(),
        syrk(),
        trmm(),
        cholesky(),
        gramschmidt(),
        lu(),
        trisolv(),
        covariance(),
        jacobi_2d(),
        deriche(),
        floyd_warshall(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cayman_ir::interp::Interp;

    #[test]
    fn three_mm_computes_a_matrix_product() {
        let w = three_mm();
        w.module.verify().expect("verifies");
        let mut interp = Interp::new(&w.module);
        interp.memory = w.memory();
        interp.run(&[]).expect("runs");
        // G = (A·B)·(C·D): spot-check one element against a host-side
        // reference computation.
        let n = 18usize;
        let m = &w.module;
        let ids: Vec<cayman_ir::ArrayId> = m.array_ids().collect();
        let (a, b, c, d, g) = (ids[0], ids[1], ids[2], ids[3], ids[6]);
        let mem0 = w.memory();
        let e_ref = |i: usize, j: usize| -> f64 {
            (0..n)
                .map(|k| mem0.get_f64(a, i * n + k) * mem0.get_f64(b, k * n + j))
                .sum()
        };
        let f_ref = |i: usize, j: usize| -> f64 {
            (0..n)
                .map(|k| mem0.get_f64(c, i * n + k) * mem0.get_f64(d, k * n + j))
                .sum()
        };
        let g_ref: f64 = (0..n).map(|k| e_ref(2, k) * f_ref(k, 3)).sum();
        let got = interp.memory.get_f64(g, 2 * n + 3);
        assert!((got - g_ref).abs() < 1e-9, "{got} vs {g_ref}");
    }

    #[test]
    fn trisolv_solves_the_system() {
        let w = trisolv();
        let mut interp = Interp::new(&w.module);
        interp.memory = w.memory();
        interp.run(&[]).expect("runs");
        // verify L·x ≈ b
        let ids: Vec<cayman_ir::ArrayId> = w.module.array_ids().collect();
        let (l, x, b) = (ids[0], ids[1], ids[2]);
        let mem0 = w.memory();
        let n = 32usize;
        for i in 0..n {
            let lhs: f64 = (0..=i)
                .map(|j| mem0.get_f64(l, i * n + j) * interp.memory.get_f64(x, j))
                .sum();
            let rhs = mem0.get_f64(b, i);
            assert!((lhs - rhs).abs() < 1e-6, "row {i}: {lhs} vs {rhs}");
        }
    }

    #[test]
    fn cholesky_reproduces_the_matrix() {
        let w = cholesky();
        let mut interp = Interp::new(&w.module);
        interp.memory = w.memory();
        interp.run(&[]).expect("runs");
        // L·Lᵀ ≈ original A (lower triangle result)
        let ids: Vec<cayman_ir::ArrayId> = w.module.array_ids().collect();
        let a = ids[0];
        let mem0 = w.memory();
        let n = 20usize;
        for i in 0..n {
            for j in 0..=i {
                let recon: f64 = (0..=j)
                    .map(|k| {
                        interp.memory.get_f64(a, i * n + k) * interp.memory.get_f64(a, j * n + k)
                    })
                    .sum();
                let orig = mem0.get_f64(a, i * n + j);
                assert!((recon - orig).abs() < 1e-6, "({i},{j}): {recon} vs {orig}");
            }
        }
    }

    #[test]
    fn floyd_warshall_shrinks_paths_monotonically() {
        let w = floyd_warshall();
        let mem0 = w.memory();
        let mut interp = Interp::new(&w.module);
        interp.memory = w.memory();
        interp.run(&[]).expect("runs");
        let ids: Vec<cayman_ir::ArrayId> = w.module.array_ids().collect();
        let p = ids[0];
        for i in 0..16 * 16 {
            assert!(interp.memory.get_f64(p, i) <= mem0.get_f64(p, i) + 1e-12);
        }
    }

    #[test]
    fn all_polybench_run() {
        for w in all() {
            w.module
                .verify()
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            w.run().unwrap_or_else(|e| panic!("{}: {e}", w.name));
        }
    }
}
