//! Differential proof that `-O1` normalization is observationally
//! equivalent to `-O0` on every benchmark of the evaluation: bit-identical
//! final memory image and return value under realistic inputs.
//!
//! Dynamic block counts and cycle totals are *expected* to change — that is
//! the point of normalization — so only the observable outputs are compared.

use cayman_ir::interp::{Interp, Value};
use cayman_ir::transform::{normalize, OptLevel};

fn values_bit_equal(a: &Option<Value>, b: &Option<Value>) -> bool {
    match (a, b) {
        (Some(Value::F(x)), Some(Value::F(y))) => x.to_bits() == y.to_bits(),
        (x, y) => x == y,
    }
}

fn cells_bit_equal(a: &[Value], b: &[Value]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| match (x, y) {
            (Value::F(x), Value::F(y)) => x.to_bits() == y.to_bits(),
            (x, y) => x == y,
        })
}

/// Every benchmark normalizes with the verifier green after every pass, and
/// the normalized module computes a bit-identical memory image and return
/// value while executing no more dynamic instructions than the original.
#[test]
fn o1_matches_o0_on_all_benchmarks() {
    let mut checked = 0;
    for w in cayman_workloads::all() {
        let mut raw = Interp::new(&w.module);
        raw.memory = w.memory();
        let raw_profile = raw
            .run(&[])
            .unwrap_or_else(|e| panic!("{}: -O0 run failed: {e}", w.name));
        let raw_instrs = raw_profile.dynamic_instrs(&w.module);

        let mut opt_module = w.module.clone();
        let stats = normalize(&mut opt_module, OptLevel::O1, true)
            .unwrap_or_else(|e| panic!("{}: normalize failed: {e}", w.name));
        assert!(stats.iterations >= 1, "{}: pipeline did not run", w.name);
        opt_module
            .verify()
            .unwrap_or_else(|e| panic!("{}: normalized module broken: {e}", w.name));

        let mut opt = Interp::new(&opt_module);
        opt.memory = w.memory();
        let opt_profile = opt
            .run(&[])
            .unwrap_or_else(|e| panic!("{}: -O1 run failed: {e}", w.name));
        let opt_instrs = opt_profile.dynamic_instrs(&opt_module);

        assert!(
            values_bit_equal(&raw_profile.return_value, &opt_profile.return_value),
            "{}: return values diverge: {:?} vs {:?}",
            w.name,
            raw_profile.return_value,
            opt_profile.return_value
        );
        assert!(
            cells_bit_equal(raw.memory.cells(), opt.memory.cells()),
            "{}: final memory diverges",
            w.name
        );
        assert!(
            opt_instrs <= raw_instrs,
            "{}: -O1 executes more instructions ({opt_instrs} > {raw_instrs})",
            w.name
        );
        checked += 1;
    }
    assert_eq!(checked, 28, "expected the full 28-benchmark evaluation set");
}

/// Normalization is idempotent: a second `-O1` run changes nothing.
#[test]
fn normalization_is_idempotent() {
    for w in cayman_workloads::all() {
        let mut m = w.module.clone();
        normalize(&mut m, OptLevel::O1, false).expect("first run");
        let stats = normalize(&mut m, OptLevel::O1, true).expect("second run");
        assert_eq!(
            stats.total_changes(),
            0,
            "{}: second normalize still changed the module",
            w.name
        );
    }
}

/// `-O0` is the identity.
#[test]
fn o0_is_identity() {
    let w = &cayman_workloads::all()[0];
    let mut m = w.module.clone();
    let stats = normalize(&mut m, OptLevel::O0, true).expect("O0 never fails");
    assert_eq!(stats.iterations, 0);
    assert_eq!(m, w.module);
}
