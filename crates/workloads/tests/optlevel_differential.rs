//! Differential proof that `-O1` normalization is observationally
//! equivalent to `-O0` on every benchmark of the evaluation: bit-identical
//! final memory image and return value under realistic inputs.
//!
//! Dynamic block counts and cycle totals are *expected* to change — that is
//! the point of normalization — so only the observable outputs are compared.

use cayman_ir::interp::{Interp, Value};
use cayman_ir::transform::{normalize, OptLevel, PassManager};
use cayman_ir::Instr;

fn values_bit_equal(a: &Option<Value>, b: &Option<Value>) -> bool {
    match (a, b) {
        (Some(Value::F(x)), Some(Value::F(y))) => x.to_bits() == y.to_bits(),
        (x, y) => x == y,
    }
}

fn cells_bit_equal(a: &[Value], b: &[Value]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| match (x, y) {
            (Value::F(x), Value::F(y)) => x.to_bits() == y.to_bits(),
            (x, y) => x == y,
        })
}

/// Every benchmark normalizes with the verifier green after every pass, and
/// the normalized module computes a bit-identical memory image and return
/// value while executing no more dynamic instructions than the original.
#[test]
fn o1_matches_o0_on_all_benchmarks() {
    let mut checked = 0;
    for w in cayman_workloads::all() {
        let mut raw = Interp::new(&w.module);
        raw.memory = w.memory();
        let raw_profile = raw
            .run(&[])
            .unwrap_or_else(|e| panic!("{}: -O0 run failed: {e}", w.name));
        let raw_instrs = raw_profile.dynamic_instrs(&w.module);

        let mut opt_module = w.module.clone();
        let stats = normalize(&mut opt_module, OptLevel::O1, true)
            .unwrap_or_else(|e| panic!("{}: normalize failed: {e}", w.name));
        assert!(stats.iterations >= 1, "{}: pipeline did not run", w.name);
        opt_module
            .verify()
            .unwrap_or_else(|e| panic!("{}: normalized module broken: {e}", w.name));

        let mut opt = Interp::new(&opt_module);
        opt.memory = w.memory();
        let opt_profile = opt
            .run(&[])
            .unwrap_or_else(|e| panic!("{}: -O1 run failed: {e}", w.name));
        let opt_instrs = opt_profile.dynamic_instrs(&opt_module);

        assert!(
            values_bit_equal(&raw_profile.return_value, &opt_profile.return_value),
            "{}: return values diverge: {:?} vs {:?}",
            w.name,
            raw_profile.return_value,
            opt_profile.return_value
        );
        assert!(
            cells_bit_equal(raw.memory.cells(), opt.memory.cells()),
            "{}: final memory diverges",
            w.name
        );
        assert!(
            opt_instrs <= raw_instrs,
            "{}: -O1 executes more instructions ({opt_instrs} > {raw_instrs})",
            w.name
        );
        checked += 1;
    }
    assert_eq!(checked, 28, "expected the full 28-benchmark evaluation set");
}

/// The `-O2` pipeline (strength reduction + LICM on top of `-O1`) is
/// observationally equivalent to `-O0` on the full 132-kernel workload set:
/// bit-identical return value and final memory image, never more dynamic
/// instructions.
#[test]
fn o2_matches_o0_on_all_workloads() {
    let mut checked = 0;
    for w in cayman_workloads::full() {
        let mut raw = Interp::new(&w.module);
        raw.memory = w.memory();
        let raw_profile = raw
            .run(&[])
            .unwrap_or_else(|e| panic!("{}: -O0 run failed: {e}", w.name));
        let raw_instrs = raw_profile.dynamic_instrs(&w.module);

        let mut opt_module = w.module.clone();
        normalize(&mut opt_module, OptLevel::O2, true)
            .unwrap_or_else(|e| panic!("{}: -O2 normalize failed: {e}", w.name));

        let mut opt = Interp::new(&opt_module);
        opt.memory = w.memory();
        let opt_profile = opt
            .run(&[])
            .unwrap_or_else(|e| panic!("{}: -O2 run failed: {e}", w.name));
        let opt_instrs = opt_profile.dynamic_instrs(&opt_module);

        assert!(
            values_bit_equal(&raw_profile.return_value, &opt_profile.return_value),
            "{}: return values diverge at -O2: {:?} vs {:?}",
            w.name,
            raw_profile.return_value,
            opt_profile.return_value
        );
        assert!(
            cells_bit_equal(raw.memory.cells(), opt.memory.cells()),
            "{}: final memory diverges at -O2",
            w.name
        );
        assert!(
            opt_instrs <= raw_instrs,
            "{}: -O2 executes more instructions ({opt_instrs} > {raw_instrs})",
            w.name
        );
        checked += 1;
    }
    assert_eq!(checked, 132, "expected the full 132-kernel workload set");
}

/// The shadow pipeline ([`PassManager::address_canon`]) keeps its
/// identity-preservation contract on every workload: same arena sizes, same
/// blocks and terminators, every memory/phi/call instruction untouched and
/// in its original block — and the module still computes the same thing.
#[test]
fn address_canon_preserves_identity_on_all_workloads() {
    for w in cayman_workloads::full() {
        let mut o1 = w.module.clone();
        normalize(&mut o1, OptLevel::O1, false).expect("O1 normalize");
        let base = o1.clone();
        PassManager::address_canon()
            .verify_each_pass(true)
            .run(&mut o1)
            .unwrap_or_else(|e| panic!("{}: address_canon failed: {e}", w.name));

        assert_eq!(base.functions.len(), o1.functions.len());
        for (bf, sf) in base.functions.iter().zip(&o1.functions) {
            assert_eq!(bf.instrs.len(), sf.instrs.len(), "{}: arena grew", w.name);
            assert_eq!(bf.values.len(), sf.values.len(), "{}: values grew", w.name);
            assert_eq!(bf.blocks.len(), sf.blocks.len(), "{}: blocks", w.name);
            for (bb, sb) in bf.blocks.iter().zip(&sf.blocks) {
                assert_eq!(bb.term, sb.term, "{}: terminator changed", w.name);
            }
            for (i, instr) in bf.instrs.iter().enumerate() {
                let pinned = !matches!(
                    instr,
                    Instr::Binary { .. }
                        | Instr::Unary { .. }
                        | Instr::Cmp { .. }
                        | Instr::Select { .. }
                );
                if pinned {
                    let iid = cayman_ir::InstrId(i as u32);
                    assert_eq!(instr, &sf.instrs[i], "{}: pinned instr rewritten", w.name);
                    assert_eq!(
                        bf.containing_block(iid),
                        sf.containing_block(iid),
                        "{}: pinned instr moved blocks",
                        w.name
                    );
                }
            }
        }

        // Same observables as the O1 module it shadows.
        let mut a = Interp::new(&base);
        a.memory = w.memory();
        let pa = a.run(&[]).expect("O1 runs");
        let mut b = Interp::new(&o1);
        b.memory = w.memory();
        let pb = b.run(&[]).expect("shadow runs");
        assert!(
            values_bit_equal(&pa.return_value, &pb.return_value),
            "{}: shadow return diverges",
            w.name
        );
        assert!(
            cells_bit_equal(a.memory.cells(), b.memory.cells()),
            "{}: shadow memory diverges",
            w.name
        );
    }
}

/// Normalization is idempotent: a second `-O1` run changes nothing.
#[test]
fn normalization_is_idempotent() {
    for w in cayman_workloads::all() {
        let mut m = w.module.clone();
        normalize(&mut m, OptLevel::O1, false).expect("first run");
        let stats = normalize(&mut m, OptLevel::O1, true).expect("second run");
        assert_eq!(
            stats.total_changes(),
            0,
            "{}: second normalize still changed the module",
            w.name
        );
    }
}

/// `-O0` is the identity.
#[test]
fn o0_is_identity() {
    let w = &cayman_workloads::all()[0];
    let mut m = w.module.clone();
    let stats = normalize(&mut m, OptLevel::O0, true).expect("O0 never fails");
    assert_eq!(stats.iterations, 0);
    assert_eq!(m, w.module);
}
